(* Regenerates every data exhibit of the paper's evaluation (Section V):
   Tables I-IV, the Fig. 3 worked example, the Theorem-1 length curves,
   and the two ablations called out in DESIGN.md. Every run is
   deterministic in the seed. *)

let process = Tech.Process.default

let lib = Tech.Lib.default_library

let kmax = 16

type bench = {
  nets : (Steiner.Net.t * Rctree.Tree.t) list;
  cfg : Workload.config;
  jobs : int;  (** worker domains for the batch tables *)
}

let make_bench ~nets ~seed ~jobs =
  let cfg = { Workload.default_config with nets; seed } in
  let jobs = if jobs <= 0 then Engine.Pool.default_domains () else jobs in
  { nets = Workload.trees process (Workload.generate cfg); cfg; jobs }

(* chunk sizing and shard balance for the batch tables key off each
   net's sink count, like Engine.optimize *)
let net_costs bench =
  Array.of_list (List.map (fun (n, _) -> Steiner.Net.degree n) bench.nets)

(* wall-clock seconds (Util.Clock): Sys.time is CPU seconds and
   double-counts under the batch engine's parallelism *)
let timed f = Util.Clock.timed f

let ps x = Printf.sprintf "%.1f" (x *. 1e12)

(* ------------------------------------------------------------------ *)
(* Table I: sink distribution of the test nets                         *)

let table1 bench =
  let nets = List.map fst bench.nets in
  let tab =
    Util.Ftab.create
      ~title:(Printf.sprintf "Table I: sink distribution of the %d test nets" (List.length nets))
      ~headers:[ "sinks"; "nets"; "share" ]
  in
  List.iter
    (fun (label, n) ->
      Util.Ftab.add_row tab
        [ label; string_of_int n; Printf.sprintf "%.1f%%" (100.0 *. float_of_int n /. float_of_int (List.length nets)) ])
    (Workload.sink_histogram ~buckets:bench.cfg.Workload.mix nets);
  let wl = Util.Stats.of_list (List.map (fun (_, t) -> Rctree.Tree.total_wirelength t *. 1e3) bench.nets) in
  Util.Ftab.add_row tab
    [ "wirelength"; Printf.sprintf "%.1f-%.1f mm" (Util.Stats.min wl) (Util.Stats.max wl);
      Printf.sprintf "avg %.1f mm" (Util.Stats.mean wl) ];
  Util.Ftab.print tab

(* ------------------------------------------------------------------ *)
(* Table II: violations before/after BuffOpt, metric vs simulation     *)

let buffopt_run tree =
  match Bufins.Buffopt.optimize ~kmax Bufins.Buffopt.Buffopt ~lib tree with
  | Some r -> r
  | None -> failwith "BuffOpt infeasible even after segmenting retries"

let table2 bench =
  let metric_before = ref 0 and sim_before = ref 0 in
  let metric_after = ref 0 and sim_after = ref 0 in
  let bound_violations = ref 0 in
  let total = List.length bench.nets in
  let per_net (_, tree) =
    let seg = Rctree.Segment.refine tree ~max_len:500e-6 in
    let before = Noisesim.Verify.net process seg in
    let r = buffopt_run tree in
    let after = Noisesim.Verify.net process r.Bufins.Buffopt.report.Bufins.Eval.tree in
    (before, after)
  in
  let outcomes, _ = Engine.map ~domains:bench.jobs ~costs:(net_costs bench) per_net bench.nets in
  Array.iter
    (function
      | Engine.Done (before, after) ->
          if before.Noisesim.Verify.metric_violations > 0 then incr metric_before;
          if before.Noisesim.Verify.sim_violations > 0 then incr sim_before;
          if not before.Noisesim.Verify.bound_ok then incr bound_violations;
          if after.Noisesim.Verify.metric_violations > 0 then incr metric_after;
          if after.Noisesim.Verify.sim_violations > 0 then incr sim_after;
          if not after.Noisesim.Verify.bound_ok then incr bound_violations
      | Engine.Failed { error; _ } -> failwith error)
    outcomes;
  let tab =
    Util.Ftab.create
      ~title:
        (Printf.sprintf
           "Table II: nets with noise violations before/after BuffOpt (%d nets; simulator = 3dnoise substitute)"
           total)
      ~headers:[ "analysis"; "before BuffOpt"; "after BuffOpt" ]
  in
  Util.Ftab.add_row tab
    [ "Devgan metric (BuffOpt's view)"; string_of_int !metric_before; string_of_int !metric_after ];
  Util.Ftab.add_row tab
    [ "transient simulation"; string_of_int !sim_before; string_of_int !sim_after ];
  Util.Ftab.print tab;
  Printf.printf "upper-bound check: metric >= simulated peak on every leaf of every net: %s\n\n"
    (if !bound_violations = 0 then "PASS" else Printf.sprintf "FAIL (%d nets)" !bound_violations)

(* ------------------------------------------------------------------ *)
(* Table III: BuffOpt vs DelayOpt(k)                                   *)

let count_hist counts =
  (* "nets with b buffers" rendering, e.g. 0x77 1x161 2x232 *)
  let tbl = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c))) counts;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare
  |> List.map (fun (k, v) -> Printf.sprintf "%dx%d" k v)
  |> String.concat " "

let table3 bench =
  let tab =
    Util.Ftab.create
      ~title:"Table III: noise avoidance, BuffOpt vs DelayOpt(k)"
      ~headers:
        [ "algorithm"; "nets w/ metric viol."; "nets w/ sim viol."; "total buffers"; "nets by count"; "wall (s)" ]
  in
  let eval_algo name algo =
    let per_net (_, tree) =
      match Bufins.Buffopt.optimize ~kmax algo ~lib tree with
      | Some r ->
          let report = r.Bufins.Buffopt.report in
          let m = if Bufins.Eval.noise_clean report then 0 else 1 in
          let s =
            let v = Noisesim.Verify.net process report.Bufins.Eval.tree in
            if v.Noisesim.Verify.sim_violations > 0 then 1 else 0
          in
          Some (r.Bufins.Buffopt.count, m, s)
      | None -> None
    in
    let outcomes, t = Engine.map ~domains:bench.jobs ~costs:(net_costs bench) per_net bench.nets in
    let counts, metric_bad, sim_bad =
      Array.fold_left
        (fun (counts, mbad, sbad) -> function
          | Engine.Done (Some (c, m, s)) -> (c :: counts, mbad + m, sbad + s)
          | Engine.Done None -> (counts, mbad + 1, sbad + 1)
          | Engine.Failed { error; _ } -> failwith error)
        ([], 0, 0) outcomes
    in
    let total = List.fold_left ( + ) 0 counts in
    Util.Ftab.add_row tab
      [
        name;
        string_of_int metric_bad;
        string_of_int sim_bad;
        string_of_int total;
        count_hist counts;
        Printf.sprintf "%.2f" t.Engine.wall_s;
      ]
  in
  eval_algo "BuffOpt" Bufins.Buffopt.Buffopt;
  for k = 1 to 4 do
    eval_algo (Printf.sprintf "DelayOpt(%d)" k) (Bufins.Buffopt.Delayopt k)
  done;
  Util.Ftab.print tab

(* ------------------------------------------------------------------ *)
(* Table IV: delay penalty of noise avoidance                          *)

let table4 bench =
  (* pair BuffOpt with DelayOpt at the same buffer count, per the paper *)
  let groups = Hashtbl.create 8 in
  let add k (base, bo, dly) =
    let cur = Option.value ~default:[] (Hashtbl.find_opt groups k) in
    Hashtbl.replace groups k ((base, bo, dly) :: cur)
  in
  let per_net (_, tree) =
    let r = buffopt_run tree in
    let k = r.Bufins.Buffopt.count in
    if k = 0 then None
    else begin
      let base = (Bufins.Eval.of_tree r.Bufins.Buffopt.segmented).Bufins.Eval.worst_delay in
      let bo = r.Bufins.Buffopt.report.Bufins.Eval.worst_delay in
      let by = Bufins.Vangin.by_count ~kmax ~lib r.Bufins.Buffopt.segmented in
      let dly =
        match by.(k) with
        | Some d -> (Bufins.Eval.apply r.Bufins.Buffopt.segmented d.Bufins.Dp.placements).Bufins.Eval.worst_delay
        | None -> bo
      in
      Some (k, (base, bo, dly))
    end
  in
  let outcomes, _ = Engine.map ~domains:bench.jobs ~costs:(net_costs bench) per_net bench.nets in
  Array.iter
    (function
      | Engine.Done (Some (k, row)) -> add k row
      | Engine.Done None -> ()
      | Engine.Failed { error; _ } -> failwith error)
    outcomes;
  let tab =
    Util.Ftab.create ~title:"Table IV: average delay reduction (ps) at equal buffer count"
      ~headers:[ "buffers"; "nets"; "BuffOpt red."; "DelayOpt red."; "penalty" ]
  in
  let tot_n = ref 0 and tot_bo = ref 0.0 and tot_dl = ref 0.0 in
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) groups []
  |> List.sort compare
  |> List.iter (fun (k, rows) ->
         let n = List.length rows in
         let red f = List.fold_left (fun a r -> a +. f r) 0.0 rows /. float_of_int n in
         let bo = red (fun (b, o, _) -> b -. o) and dl = red (fun (b, _, d) -> b -. d) in
         tot_n := !tot_n + n;
         tot_bo := !tot_bo +. (bo *. float_of_int n);
         tot_dl := !tot_dl +. (dl *. float_of_int n);
         Util.Ftab.add_row tab
           [
             string_of_int k;
             string_of_int n;
             ps bo;
             ps dl;
             Printf.sprintf "%.1f%%" (Util.Fx.pct dl bo);
           ]);
  let avg_bo = !tot_bo /. float_of_int !tot_n and avg_dl = !tot_dl /. float_of_int !tot_n in
  Util.Ftab.add_row tab
    [
      "all";
      string_of_int !tot_n;
      ps avg_bo;
      ps avg_dl;
      Printf.sprintf "%.2f%%" (Util.Fx.pct avg_dl avg_bo);
    ];
  Util.Ftab.print tab;
  Printf.printf
    "paper: average delay penalty of optimizing noise+delay vs delay alone was 1.99%%\n\n"

(* ------------------------------------------------------------------ *)
(* Fig. 3: worked noise-computation example                            *)

let fig3 () =
  let tree = Fixtures.fig3 () in
  Printf.printf "Fig. 3 worked example (abstract units, see Fixtures.fig3):\n";
  List.iter
    (fun (v, noise, margin) ->
      Printf.printf "  noise at node %d = %.1f (margin %.1f)%s\n" v noise margin
        (if noise > margin then "  VIOLATION" else ""))
    (Noise.leaf_noise tree);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Theorem 1 curves (the paper's Fig. 6/7 setting)                     *)

let fig_maxlen () =
  let r_per_m = process.Tech.Process.r_per_m in
  let i_per_m = Tech.Process.i_per_m process in
  let ns = process.Tech.Process.nm_default in
  Printf.printf "Theorem 1: max noise-safe wire length vs driver resistance (ns=%.2f V)\n" ns;
  Printf.printf "  %-12s %-14s %-14s\n" "r_b (ohm)" "l_max (mm)" "simple approx";
  let approx = sqrt (2.0 *. ns /. (r_per_m *. i_per_m)) in
  List.iter
    (fun r_b ->
      match Noise.max_safe_length ~r_b ~i_down:0.0 ~ns ~r_per_m ~i_per_m with
      | Some l -> Printf.printf "  %-12.0f %-14.3f %-14.3f\n" r_b (l *. 1e3) (approx *. 1e3)
      | None -> ())
    [ 0.0; 36.0; 65.0; 120.0; 230.0; 440.0; 850.0 ];
  Printf.printf "\nTheorem 1: max length vs coupling ratio lambda (r_b = 36 ohm)\n";
  Printf.printf "  %-12s %-14s\n" "lambda" "l_max (mm)";
  List.iter
    (fun lambda ->
      let i = lambda *. process.Tech.Process.c_per_m *. Tech.Process.slope process in
      match Noise.max_safe_length ~r_b:36.0 ~i_down:0.0 ~ns ~r_per_m ~i_per_m:i with
      | Some l -> Printf.printf "  %-12.2f %-14.3f\n" lambda (l *. 1e3)
      | None -> ())
    [ 0.1; 0.2; 0.3; 0.5; 0.7; 0.9; 1.0 ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Ablation A: wire segmenting granularity (Alpert-Devgan trade-off)   *)

let ablation_seg bench =
  let sample = List.filteri (fun i _ -> i < 60) bench.nets in
  let tab =
    Util.Ftab.create ~title:"Ablation A: segmenting strategy vs quality/run time (Alg. 3, 60 nets)"
      ~headers:[ "segmenting"; "avg slack (ps)"; "avg buffers"; "candidates"; "wall (s)" ]
  in
  let row label refine =
    let (slacks, bufs, cands), cpu =
      timed (fun () ->
          List.fold_left
            (fun (ss, bs, cs) (_, tree) ->
              match Bufins.Alg3.run ~lib (refine tree) with
              | Some r -> (r.Bufins.Dp.slack :: ss, r.Bufins.Dp.count + bs, r.Bufins.Dp.stats.Bufins.Dp.generated + cs)
              | None -> (ss, bs, cs))
            ([], 0, 0) sample)
    in
    let n = float_of_int (List.length slacks) in
    Util.Ftab.add_row tab
      [
        label;
        ps (List.fold_left ( +. ) 0.0 slacks /. n);
        Printf.sprintf "%.2f" (float_of_int bufs /. n);
        string_of_int cands;
        Printf.sprintf "%.2f" cpu;
      ]
  in
  List.iter
    (fun seg_um ->
      row
        (Printf.sprintf "uniform %.0f um" seg_um)
        (fun tree -> Rctree.Segment.refine tree ~max_len:(seg_um *. 1e-6)))
    [ 2000.0; 1000.0; 500.0; 250.0; 125.0 ];
  (* footnote 3: spend candidate nodes where Theorem 1 says they matter *)
  row "noise-driven (fn. 3)" (fun tree -> Bufins.Segmenting.noise_driven ~lib tree);
  Util.Ftab.print tab

(* ------------------------------------------------------------------ *)
(* Ablation B: candidate pruning                                       *)

let ablation_prune () =
  let bench = make_bench ~nets:20 ~seed:7 ~jobs:1 in
  let trees = List.map snd bench.nets in
  let tab =
    Util.Ftab.create ~title:"Ablation B: candidate population (20 workload nets)"
      ~headers:[ "engine"; "generated"; "pruned"; "wall (s)" ]
  in
  let measure name f =
    let (gen, prn), cpu =
      timed (fun () ->
          List.fold_left
            (fun (g, p) t ->
              let s : Bufins.Dp.stats = f (Rctree.Segment.refine t ~max_len:400e-6) in
              (g + s.Bufins.Dp.generated, p + s.Bufins.Dp.pruned))
            (0, 0) trees)
    in
    Util.Ftab.add_row tab
      [ name; string_of_int gen; string_of_int prn; Printf.sprintf "%.3f" cpu ]
  in
  measure "Van Ginneken, pruned" (fun t ->
      (Bufins.Dp.run ~noise:false ~mode:Bufins.Dp.Single ~lib t).Bufins.Dp.stats);
  measure "Alg. 3 (noise), pruned" (fun t ->
      (Bufins.Dp.run ~noise:true ~mode:Bufins.Dp.Single ~lib t).Bufins.Dp.stats);
  measure "Van Ginneken, no pruning" (fun t ->
      (Bufins.Dp.run ~prune:false ~noise:false ~mode:Bufins.Dp.Single ~lib t).Bufins.Dp.stats);
  measure "Alg. 3 (noise), no pruning" (fun t ->
      (Bufins.Dp.run ~prune:false ~noise:true ~mode:Bufins.Dp.Single ~lib t).Bufins.Dp.stats);
  Util.Ftab.print tab;
  Printf.printf
    "paper: Alg. 3 generates only the noise-legal subset of Van Ginneken's candidates,\nwhich is why BuffOpt's CPU time undercuts DelayOpt's in Table III.\n\n"

(* ------------------------------------------------------------------ *)
(* Extension: simultaneous wire sizing (Lillis et al. [18])            *)

let extension_wiresize bench =
  let sample = List.filteri (fun i _ -> i < 60) bench.nets in
  let tab =
    Util.Ftab.create
      ~title:"Extension: buffer insertion with simultaneous wire sizing (noise-constrained, 60 nets)"
      ~headers:[ "width menu"; "avg slack (ps)"; "avg buffers"; "wires widened"; "wall (s)" ]
  in
  List.iter
    (fun (label, widths) ->
      let (slacks, bufs, widened), cpu =
        timed (fun () ->
            List.fold_left
              (fun (ss, bs, ws) (_, tree) ->
                let seg = Rctree.Segment.refine tree ~max_len:500e-6 in
                match Bufins.Wiresize.run ~widths ~noise:true ~lib seg with
                | Some r ->
                    ( r.Bufins.Wiresize.slack :: ss,
                      bs + r.Bufins.Wiresize.count,
                      ws + List.length r.Bufins.Wiresize.sizes )
                | None -> (ss, bs, ws))
              ([], 0, 0) sample)
      in
      let n = float_of_int (List.length slacks) in
      Util.Ftab.add_row tab
        [
          label;
          ps (List.fold_left ( +. ) 0.0 slacks /. n);
          Printf.sprintf "%.2f" (float_of_int bufs /. n);
          string_of_int widened;
          Printf.sprintf "%.2f" cpu;
        ])
    [ ("1x", [ 1.0 ]); ("1x 2x", [ 1.0; 2.0 ]); ("1x 2x 4x", [ 1.0; 2.0; 4.0 ]) ];
  Util.Ftab.print tab

(* ------------------------------------------------------------------ *)
(* Verifier stack: Devgan metric vs AWE moments vs transient           *)

let verifiers bench =
  let sample = List.filteri (fun i _ -> i < 100) bench.nets in
  let trees = List.map (fun (_, t) -> Rctree.Segment.refine t ~max_len:500e-6) sample in
  let tab =
    Util.Ftab.create
      ~title:"Verifier comparison on 100 unbuffered nets (leaves over margin)"
      ~headers:[ "analysis"; "violating leaves"; "violating nets"; "wall (s)" ]
  in
  let row name f =
    let (leaves, nets), cpu =
      timed (fun () ->
          List.fold_left
            (fun (l, n) tree ->
              let bad = f tree in
              (l + bad, n + if bad > 0 then 1 else 0))
            (0, 0) trees)
    in
    Util.Ftab.add_row tab [ name; string_of_int leaves; string_of_int nets; Printf.sprintf "%.2f" cpu ]
  in
  row "Devgan metric (eq. 9)" (fun t -> List.length (Noise.violations t));
  row "AWE 1-pole peak (RICE-class)" (fun t ->
      List.length
        (List.filter
           (fun (leaf, est) -> est.Noisesim.Awe.peak > Noise.margin t leaf +. 1e-9)
           (Noisesim.Awe.net process t)));
  row "transient simulation" (fun t ->
      (Noisesim.Verify.net process t).Noisesim.Verify.sim_violations);
  Util.Ftab.print tab;
  Printf.printf
    "expected ordering: metric >= AWE ~= transient in flagged leaves; AWE runs at\na fraction of the transient cost — the 3dnoise design point.\n\n"

(* ------------------------------------------------------------------ *)
(* Full-design mode: STA-driven optimization of whole gate netlists     *)

let design_flow () =
  let tab =
    Util.Ftab.create ~title:"Full-design mode: STA -> BuffOpt -> STA on random gate netlists"
      ~headers:
        [ "gates"; "nets"; "wns before"; "wns after"; "tns before (ns)"; "noisy before"; "noisy after"; "buffers"; "wall (s)" ]
  in
  List.iter
    (fun (gates, seed) ->
      let design = Sta.Gen.random { Sta.Gen.default_config with Sta.Gen.gates; seed } in
      let r, cpu = timed (fun () -> Sta.Flow.optimize process ~lib design) in
      Util.Ftab.add_row tab
        [
          string_of_int gates;
          string_of_int (Array.length design.Sta.Design.nets);
          ps r.Sta.Flow.before.Sta.Engine.wns;
          ps r.Sta.Flow.after.Sta.Engine.wns;
          Printf.sprintf "%.1f" (r.Sta.Flow.before.Sta.Engine.tns *. 1e9);
          string_of_int r.Sta.Flow.before.Sta.Engine.noisy_nets;
          string_of_int r.Sta.Flow.after.Sta.Engine.noisy_nets;
          string_of_int r.Sta.Flow.inserted_buffers;
          Printf.sprintf "%.2f" cpu;
        ])
    [ (60, 3); (120, 7); (240, 11); (400, 13) ];
  Util.Ftab.print tab

(* ------------------------------------------------------------------ *)
(* Sensitivity: violation counts vs margin and coupling ratio          *)

let fig_sensitivity bench =
  let sample = List.filteri (fun i _ -> i < 150) bench.nets in
  let tab =
    Util.Ftab.create
      ~title:"Sensitivity: nets with metric violations vs margin and coupling (150 nets)"
      ~headers:[ "noise margin (V)"; "lambda 0.3"; "lambda 0.5"; "lambda 0.7"; "lambda 0.9" ]
  in
  List.iter
    (fun nm ->
      let row =
        List.map
          (fun lambda ->
            let p = { process with Tech.Process.lambda } in
            let bad =
              List.length
                (List.filter
                   (fun (net, _) ->
                     (* rebuild at this lambda; compare against a uniform
                        margin for the sweep *)
                     let tree = Steiner.Build.tree_of_net p net in
                     List.exists (fun (_, noise, _) -> noise > nm) (Noise.leaf_noise tree))
                   sample)
            in
            string_of_int bad)
          [ 0.3; 0.5; 0.7; 0.9 ]
      in
      Util.Ftab.add_row tab (Printf.sprintf "%.1f" nm :: row))
    [ 0.4; 0.6; 0.8; 1.0; 1.2 ];
  Util.Ftab.print tab;
  Printf.printf
    "the eq. 13 trade: violation counts fall with margin and rise with coupling;\nthe paper's corner (0.8 V, lambda 0.7) sits mid-slope.\n\n"

(* ------------------------------------------------------------------ *)
(* Estimation mode vs explicit aggressor spans                          *)

let ext_coupling bench =
  let sample = List.filteri (fun i _ -> i < 120) bench.nets in
  let rng = Util.Rng.create 42 in
  let explicit_tree tree =
    (* strip estimation currents, then couple ~60% of each wire to one or
       two explicit aggressors of the process slope *)
    let bare = Rctree.Tree.map_wires tree (fun _ w -> { w with Rctree.Tree.cur = 0.0 }) in
    let slope = Tech.Process.slope process in
    let spans =
      List.filter_map
        (fun v ->
          if v = Rctree.Tree.root bare then None
          else begin
            let w = Rctree.Tree.wire_to bare v in
            if w.Rctree.Tree.length <= 1e-6 then None
            else begin
              let len = w.Rctree.Tree.length in
              let cover a b =
                {
                  Coupling.near = a *. len;
                  far = b *. len;
                  lambda = process.Tech.Process.lambda;
                  slope;
                }
              in
              let lo = Util.Rng.range rng 0.0 0.4 in
              Some (v, [ cover lo (lo +. Util.Rng.range rng 0.3 0.6) ])
            end
          end)
        (Rctree.Tree.postorder bare)
    in
    Coupling.annotate bare ~spans
  in
  let est_bad = ref 0 and exp_bad = ref 0 and est_buf = ref 0 and exp_buf = ref 0 in
  List.iter
    (fun (_, tree) ->
      if Noise.violations tree <> [] then incr est_bad;
      (match Bufins.Buffopt.optimize Bufins.Buffopt.Buffopt ~lib tree with
      | Some r -> est_buf := !est_buf + r.Bufins.Buffopt.count
      | None -> ());
      let ann = explicit_tree tree in
      let t = Coupling.tree ann in
      if Noise.violations t <> [] then incr exp_bad;
      match Bufins.Buffopt.optimize Bufins.Buffopt.Buffopt ~lib t with
      | Some r -> exp_buf := !exp_buf + r.Bufins.Buffopt.count
      | None -> ())
    sample;
  let tab =
    Util.Ftab.create
      ~title:"Estimation mode vs explicit aggressor spans (120 nets, ~60% coverage)"
      ~headers:[ "coupling model"; "nets w/ violations"; "BuffOpt buffers" ]
  in
  Util.Ftab.add_row tab
    [ "estimation (every wire coupled)"; string_of_int !est_bad; string_of_int !est_buf ];
  Util.Ftab.add_row tab
    [ "explicit spans (Fig. 2)"; string_of_int !exp_bad; string_of_int !exp_buf ];
  Util.Ftab.print tab;
  Printf.printf
    "estimation mode is the pre-route worst case (paper Sect. II-B): with real\nspans both the violations and the buffers needed to fix them shrink.\n\n"

(* ------------------------------------------------------------------ *)
(* Ablation C: buffer library strength                                  *)

let ablation_lib bench =
  let sample = List.filteri (fun i _ -> i < 100) bench.nets in
  let tab =
    Util.Ftab.create ~title:"Ablation C: library strength (BuffOpt, 100 nets)"
      ~headers:[ "library"; "feasible"; "nets w/ viol."; "buffers"; "avg slack (ps)" ]
  in
  let weak =
    List.filter
      (fun (b : Tech.Buffer.t) -> b.Tech.Buffer.r_b >= 200.0)
      (Tech.Lib.non_inverting lib)
  in
  let strongest = [ Tech.Lib.min_resistance lib ] in
  let row name sub =
    let feas = ref 0 and bad = ref 0 and bufs = ref 0 and slack = ref 0.0 in
    List.iter
      (fun (_, tree) ->
        match Bufins.Buffopt.optimize Bufins.Buffopt.Buffopt ~lib:sub tree with
        | Some r ->
            incr feas;
            if not (Bufins.Eval.noise_clean r.Bufins.Buffopt.report) then incr bad;
            bufs := !bufs + r.Bufins.Buffopt.count;
            slack := !slack +. r.Bufins.Buffopt.report.Bufins.Eval.slack
        | None -> ())
      sample;
    Util.Ftab.add_row tab
      [
        name;
        Printf.sprintf "%d/%d" !feas (List.length sample);
        string_of_int !bad;
        string_of_int !bufs;
        ps (!slack /. float_of_int (max 1 !feas));
      ]
  in
  row "full (11 buffers)" lib;
  row "strongest only" strongest;
  row "weak only (r >= 200)" weak;
  Util.Ftab.print tab

(* ------------------------------------------------------------------ *)
(* Extraction: eq. 17's spacing trade on a routed parallel bus         *)

let ext_extract () =
  let cfg = Extract.default_config process in
  let tab =
    Util.Ftab.create
      ~title:"Extraction: 16-bit 10 mm bus, middle bit, vs pitch (eq. 17 lambda = kappa/spacing)"
      ~headers:[ "pitch (nm)"; "lambda/side"; "metric noise (V)"; "buffers needed"; "sim clean" ]
  in
  List.iter
    (fun pitch ->
      let routed =
        List.map (Extract.route process) (Workload.parallel_bus ~bits:16 ~pitch ~len:10_000_000 ())
      in
      let victim = List.nth routed 8 in
      let aggressors = List.filteri (fun i _ -> i <> 8) routed in
      let ann = Extract.annotate cfg ~victim ~aggressors in
      let tree = Coupling.tree ann in
      let noise = match Noise.leaf_noise tree with (_, n, _) :: _ -> n | [] -> 0.0 in
      let r = Bufins.Alg2.run ~lib tree in
      let ann' = Coupling.buffered ann r.Bufins.Alg2.placements in
      let v = Noisesim.Verify.net ~density:(Coupling.density ann') process (Coupling.tree ann') in
      Util.Ftab.add_row tab
        [
          string_of_int pitch;
          Printf.sprintf "%.3f" (Extract.lambda_of_spacing cfg pitch);
          Printf.sprintf "%.3f" noise;
          string_of_int r.Bufins.Alg2.count;
          (if v.Noisesim.Verify.sim_violations = 0 then "yes" else "NO");
        ])
    [ 400; 600; 800; 1000; 1200; 1600 ];
  Util.Ftab.print tab;
  Printf.printf
    "doubling the spacing halves lambda (eq. 17); past the coupling window the bus\nneeds no repeaters at all — buffering and spacing trade against each other.\n\n";
  (* whole-bus repair: every bit optimized against its extracted
     neighbours, each verified with its own multi-aggressor decks *)
  let routed =
    List.map (Extract.route process) (Workload.parallel_bus ~bits:16 ~len:10_000_000 ())
  in
  let total_buffers = ref 0 and dirty = ref 0 in
  List.iteri
    (fun i victim ->
      let aggressors = List.filteri (fun j _ -> j <> i) routed in
      let ann = Extract.annotate cfg ~victim ~aggressors in
      let r = Bufins.Alg2.run ~lib (Coupling.tree ann) in
      total_buffers := !total_buffers + r.Bufins.Alg2.count;
      let ann' = Coupling.buffered ann r.Bufins.Alg2.placements in
      let v = Noisesim.Verify.net ~density:(Coupling.density ann') process (Coupling.tree ann') in
      if v.Noisesim.Verify.sim_violations > 0 then incr dirty)
    routed;
  Printf.printf
    "whole 16-bit bus repaired: %d repeaters total, %d bits still violating in simulation\n\n"
    !total_buffers !dirty

(* ------------------------------------------------------------------ *)
(* Metal corner: aluminum vs copper (the introduction's claim)          *)

let fig_metal () =
  let tab =
    Util.Ftab.create
      ~title:"Metal corner: the same 150 nets in aluminum vs copper wiring"
      ~headers:
        [ "metal"; "nets w/ viol."; "BuffOpt buffers"; "avg buffered delay (ps)"; "max safe span (mm)" ]
  in
  let nets = Workload.generate { Workload.default_config with nets = 150 } in
  let corner name p =
    let bad = ref 0 and bufs = ref 0 and delays = ref [] in
    List.iter
      (fun net ->
        let tree = Steiner.Build.tree_of_net p net in
        if Noise.violations tree <> [] then incr bad;
        match Bufins.Buffopt.optimize Bufins.Buffopt.Buffopt ~lib tree with
        | Some r ->
            bufs := !bufs + r.Bufins.Buffopt.count;
            delays := r.Bufins.Buffopt.report.Bufins.Eval.worst_delay :: !delays
        | None -> ())
      nets;
    let span =
      match
        Noise.max_safe_length
          ~r_b:(Tech.Lib.min_resistance lib).Tech.Buffer.r_b ~i_down:0.0
          ~ns:p.Tech.Process.nm_default ~r_per_m:p.Tech.Process.r_per_m
          ~i_per_m:(Tech.Process.i_per_m p)
      with
      | Some l -> l
      | None -> nan
    in
    let n = float_of_int (List.length !delays) in
    Util.Ftab.add_row tab
      [
        name;
        string_of_int !bad;
        string_of_int !bufs;
        ps (List.fold_left ( +. ) 0.0 !delays /. n);
        Printf.sprintf "%.2f" (span *. 1e3);
      ]
  in
  corner "aluminum (0.080 ohm/um)" process;
  corner "copper (0.044 ohm/um)" Tech.Process.copper;
  Util.Ftab.print tab;
  Printf.printf
    "copper stretches Theorem 1's safe span by ~35%% and trims buffers and delay,\nbut violations persist on long nets — the paper's \"temporary relief\".\n\n"

(* ------------------------------------------------------------------ *)
(* Extension: power-delay trade-off under an energy-budgeted DP         *)

(* the scaling bench's 800-sink caterpillar (bench/dp_scaling.ml) *)
let power_tree sinks =
  let rng = Util.Rng.create 99 in
  let b = Rctree.Builder.create () in
  let so = Rctree.Builder.add_source b ~r_drv:100.0 ~d_drv:30e-12 in
  let attach = ref [ so ] in
  for k = 0 to sinks - 1 do
    let parent = List.nth !attach (Util.Rng.int rng (List.length !attach)) in
    let v =
      Rctree.Builder.add_internal b ~parent
        ~wire:(Rctree.Tree.wire_of_length process (Util.Rng.range rng 0.2e-3 1.5e-3))
        ()
    in
    attach := v :: !attach;
    ignore
      (Rctree.Builder.add_sink b ~parent:v
         ~wire:(Rctree.Tree.wire_of_length process (Util.Rng.range rng 0.2e-3 1e-3))
         ~name:(Printf.sprintf "s%d" k) ~c_sink:15e-15 ~rat:4e-9 ~nm:0.8)
  done;
  Rctree.Builder.finish b

let monotone name slacks =
  let ok =
    fst
      (List.fold_left
         (fun (ok, prev) s -> (ok && s >= prev, s))
         (true, neg_infinity) slacks)
  in
  Printf.printf "%s frontier monotone (more energy never hurts slack): %s\n\n" name
    (if ok then "yes" else "NO");
  if not ok then exit 1

let fig_power jobs =
  (* Part 1: the scaling bench's 800-sink net. The budgeted DP carries a
     3-axis (load, slack, energy) frontier whose width grows much faster
     than the 2-axis one, so the big-net curve uses the four weakest
     buffer types and kmax = 8 — enough library variety for the budget
     to pick sizes, small enough to keep the sweep under a minute. *)
  let plib = List.filteri (fun i _ -> i < 4) lib in
  let kmax = 8 in
  let seg = Rctree.Segment.refine (power_tree 800) ~max_len:500e-6 in
  let best_exn (o : Bufins.Dp.outcome) = Option.get o.Bufins.Dp.best in
  let unc =
    best_exn (Bufins.Dp.run ~noise:false ~mode:(Bufins.Dp.Per_count kmax) ~lib:plib seg)
  in
  let tab =
    Util.Ftab.create
      ~title:
        (Printf.sprintf
           "Power-delay trade-off: 800-sink net, 4 buffer types, kmax = %d (unconstrained: \
            %s ps at %.1f fJ)"
           kmax (ps unc.Bufins.Dp.slack)
           (unc.Bufins.Dp.energy *. 1e15))
      ~headers:
        [ "budget (fJ)"; "slack (ps)"; "energy (fJ)"; "buffers"; "generated"; "power-pruned" ]
  in
  let slacks =
    List.map
      (fun frac ->
        let budget = frac *. unc.Bufins.Dp.energy in
        let o =
          Bufins.Dp.run ~noise:false
            ~mode:(Bufins.Dp.Power_bounded { budget; kmax })
            ~lib:plib seg
        in
        let r = best_exn o in
        let s = o.Bufins.Dp.stats in
        Util.Ftab.add_row tab
          [
            Printf.sprintf "%.1f" (budget *. 1e15);
            ps r.Bufins.Dp.slack;
            Printf.sprintf "%.1f" (r.Bufins.Dp.energy *. 1e15);
            string_of_int r.Bufins.Dp.count;
            string_of_int s.Bufins.Dp.generated;
            string_of_int s.Bufins.Dp.power_pruned;
          ];
        r.Bufins.Dp.slack)
      [ 0.125; 0.25; 0.5; 0.75; 1.0 ]
  in
  Util.Ftab.print tab;
  monotone "800-sink" slacks;
  (* Part 2: the block200 BLIF corpus through the batch engine, every
     net under the same per-net budget; the worst slack over the design
     is monotone because each net's is. *)
  let design, _buffers, warnings = Ingest.Elab.load "examples/blif/block200.blif" in
  if warnings > 0 then Printf.printf "front-end: %d warning(s)\n" warnings;
  let nets = Sta.Engine.batch_jobs process design in
  let domains = if jobs <= 0 then Engine.Pool.default_domains () else jobs in
  let run algorithm = Engine.optimize ~domains ~algorithm ~lib nets in
  let unbounded = run Bufins.Buffopt.Vangin_max_slack in
  let per_net_max =
    Array.fold_left
      (fun acc (nr : Engine.net_result) ->
        match nr.Engine.outcome with
        | Engine.Done r -> Float.max acc r.Bufins.Buffopt.energy
        | Engine.Failed _ -> acc)
      0.0 unbounded.Engine.results
  in
  let tab =
    Util.Ftab.create
      ~title:
        (Printf.sprintf
           "Power-delay trade-off: block200.blif, %d nets, per-net energy budget (richest \
            unconstrained net: %.1f fJ)"
           (List.length nets) (per_net_max *. 1e15))
      ~headers:
        [ "budget (fJ/net)"; "optimized"; "buffers"; "energy (fJ)"; "worst slack (ps)" ]
  in
  let row name (r : Engine.report) =
    Util.Ftab.add_row tab
      [
        name;
        Printf.sprintf "%d/%d" r.Engine.ok (List.length nets);
        string_of_int r.Engine.buffers;
        Printf.sprintf "%.1f" (r.Engine.energy *. 1e15);
        ps r.Engine.worst_slack;
      ];
    r.Engine.worst_slack
  in
  let slacks =
    List.map
      (fun frac ->
        let budget = frac *. per_net_max in
        row
          (Printf.sprintf "%.1f" (budget *. 1e15))
          (run (Bufins.Buffopt.Power_bounded budget)))
      [ 0.0; 0.125; 0.25; 0.5; 1.0 ]
  in
  let unb = row "unbounded" unbounded in
  Util.Ftab.print tab;
  monotone "block200" (slacks @ [ unb ]);
  Printf.printf
    "the budget ladder walks the power-delay frontier: cheap solutions stop at the\n\
     few placements that pay for themselves, the full budget recovers the\n\
     unconstrained slack at (often) less than the unconstrained energy.\n\n"

(* ------------------------------------------------------------------ *)

open Cmdliner

let nets_arg =
  Arg.(value & opt int 500 & info [ "nets" ] ~docv:"N" ~doc:"Number of workload nets.")

let seed_arg = Arg.(value & opt int 1998 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "jobs" ] ~docv:"N"
        ~doc:"Worker domains for the batch tables (0 = one per recommended core).")

let with_bench f nets seed jobs = f (make_bench ~nets ~seed ~jobs)

let cmd name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const (with_bench f) $ nets_arg $ seed_arg $ jobs_arg)

let cmd0 name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())

let all bench =
  table1 bench;
  table2 bench;
  table3 bench;
  table4 bench;
  fig3 ();
  fig_maxlen ();
  ablation_seg bench;
  ablation_prune ();
  extension_wiresize bench;
  verifiers bench;
  design_flow ();
  fig_sensitivity bench;
  ext_coupling bench;
  ablation_lib bench;
  ext_extract ();
  fig_metal ()

(* Tables I-IV on a real-format netlist (the ingest front end) instead
   of the synthetic workload. *)
let blif_cmd path liberty jobs =
  let design, _buffers, warnings = Ingest.Elab.load ?liberty path in
  if warnings > 0 then Printf.printf "front-end: %d warning(s)\n" warnings;
  Printf.printf "design: %s\n" (Sta.Design.stats design);
  let nets = Sta.Engine.batch_jobs process design in
  let jobs = if jobs <= 0 then Engine.Pool.default_domains () else jobs in
  let bench = { nets; cfg = Workload.default_config; jobs } in
  table1 bench;
  table2 bench;
  table3 bench;
  table4 bench

let () =
  let cmds =
    [
      cmd "table1" "Sink distribution of the test nets (Table I)." table1;
      cmd "table2" "Noise violations before/after BuffOpt (Table II)." table2;
      cmd "table3" "BuffOpt vs DelayOpt(k) (Table III)." table3;
      cmd "table4" "Delay penalty of noise avoidance (Table IV)." table4;
      cmd0 "fig3" "Worked noise-computation example (Fig. 3)." fig3;
      cmd0 "fig-maxlen" "Theorem 1 maximum-length curves." fig_maxlen;
      cmd "ablation-seg" "Wire-segmenting granularity trade-off." ablation_seg;
      cmd0 "ablation-prune" "Candidate pruning ablation." ablation_prune;
      cmd "ext-wiresize" "Simultaneous wire sizing extension." extension_wiresize;
      cmd "verifiers" "Metric vs AWE vs transient comparison." verifiers;
      cmd0 "design-flow" "STA-driven whole-design optimization." design_flow;
      cmd "fig-sensitivity" "Violations vs margin and coupling ratio." fig_sensitivity;
      cmd "ext-coupling" "Estimation mode vs explicit aggressor spans." ext_coupling;
      cmd "ablation-lib" "Buffer library strength ablation." ablation_lib;
      cmd0 "ext-extract" "Routed-bus coupling extraction vs pitch." ext_extract;
      cmd0 "fig-metal" "Aluminum vs copper wiring corner." fig_metal;
      Cmd.v
        (Cmd.info "power" ~doc:"Power-delay trade-off curves (energy-budgeted DP).")
        Term.(const fig_power $ jobs_arg);
      cmd "all" "Run every experiment." all;
      (let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"DESIGN") in
       let liberty =
         Arg.(
           value
           & opt (some file) None
           & info [ "liberty" ] ~docv:"FILE" ~doc:"Liberty-subset cell library.")
       in
       Cmd.v
         (Cmd.info "blif" ~doc:"Tables I-IV on a real netlist (.blif or .design).")
         Term.(const blif_cmd $ path $ liberty $ jobs_arg));
    ]
  in
  exit (Cmd.eval (Cmd.group (Cmd.info "experiments" ~doc:"Reproduce the paper's evaluation.") cmds))
