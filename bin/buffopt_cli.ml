(* buffopt: command-line buffer insertion for noise and delay.
   Net files are parsed by [Steiner.Netfile], design files by
   [Sta.Netfmt]; see those modules for the formats. *)

let process = Tech.Process.default

let lib = Tech.Lib.default_library

let algo_of_string = function
  | "buffopt" -> Ok Bufins.Buffopt.Buffopt
  | "alg3" -> Ok Bufins.Buffopt.Alg3_max_slack
  | "vangin" | "delayopt" -> Ok Bufins.Buffopt.Vangin_max_slack
  | s -> (
      match String.index_opt s '-' with
      | Some i when String.sub s 0 i = "delayopt" -> (
          match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some k -> Ok (Bufins.Buffopt.Delayopt k)
          | None -> Error (`Msg ("bad algorithm: " ^ s)))
      | Some i when String.sub s 0 i = "power" -> (
          (* budget is given in fJ on the command line; the library works in J *)
          match float_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some fj when fj >= 0.0 -> Ok (Bufins.Buffopt.Power_bounded (fj *. 1e-15))
          | Some _ | None -> Error (`Msg ("bad algorithm: " ^ s)))
      | _ -> Error (`Msg ("bad algorithm: " ^ s)))

let describe_report prefix (r : Bufins.Eval.report) =
  Printf.printf "%s: buffers=%d slack=%.1f ps worst-delay=%.1f ps noise-violations=%d\n" prefix
    r.Bufins.Eval.buffers (r.Bufins.Eval.slack *. 1e12)
    (r.Bufins.Eval.worst_delay *. 1e12)
    (List.length r.Bufins.Eval.noise_violations)

let run_cmd file algo seg_um kmax simulate =
  match algo_of_string algo with
  | Error (`Msg m) ->
      prerr_endline m;
      1
  | Ok algorithm -> (
      let net = Steiner.Netfile.read file in
      let tree = Steiner.Build.tree_of_net process net in
      describe_report "unbuffered" (Bufins.Eval.of_tree tree);
      match
        Bufins.Buffopt.optimize ~seg_len:(seg_um *. 1e-6) ~kmax algorithm ~lib tree
      with
      | None ->
          prerr_endline "no noise-feasible solution found";
          1
      | Some r ->
          describe_report "optimized" r.Bufins.Buffopt.report;
          Printf.printf "energy: %.2f fJ in inserted buffers\n"
            (r.Bufins.Buffopt.energy *. 1e15);
          let s = r.Bufins.Buffopt.stats in
          Printf.printf
            "engine: candidates generated=%d pruned=%d pred-pruned=%d power-pruned=%d \
             peak-frontier=%d trace-arena=%d alloc=%.1f/%.1f Mwords minor/major\n"
            s.Bufins.Dp.generated s.Bufins.Dp.pruned s.Bufins.Dp.pred_pruned
            s.Bufins.Dp.power_pruned s.Bufins.Dp.peak_width s.Bufins.Dp.arena
            (s.Bufins.Dp.minor_words /. 1e6)
            (s.Bufins.Dp.major_words /. 1e6);
          List.iter
            (fun (p : Rctree.Surgery.placement) ->
              Printf.printf "  insert %s on the parent wire of node %d, %.1f um above it\n"
                p.Rctree.Surgery.buffer.Tech.Buffer.name p.Rctree.Surgery.node
                (p.Rctree.Surgery.dist *. 1e6))
            r.Bufins.Buffopt.placements;
          if simulate then begin
            let v = Noisesim.Verify.net process r.Bufins.Buffopt.report.Bufins.Eval.tree in
            Printf.printf "simulation: %d violating leaves (metric bound holds: %b)\n"
              v.Noisesim.Verify.sim_violations v.Noisesim.Verify.bound_ok
          end;
          0)

let report_cmd file simulate =
  let net = Steiner.Netfile.read file in
  let tree = Steiner.Build.tree_of_net process net in
  let r = Bufins.Eval.of_tree tree in
  describe_report "unbuffered" r;
  List.iter
    (fun (v, noise, margin) ->
      Printf.printf "  leaf %d: metric noise %.3f V (margin %.2f V)\n" v noise margin;
      if noise > margin then
        (* name the spans a designer would move, shield or buffer *)
        List.iteri
          (fun i (c : Noise.contribution) ->
            if i < 3 then
              match c.Noise.element with
              | `Driver g -> Printf.printf "      %.3f V from the driver at node %d\n" c.Noise.amount g
              | `Wire w ->
                  Printf.printf "      %.3f V from the %.2f mm wire above node %d\n" c.Noise.amount
                    ((Rctree.Tree.wire_to tree w).Rctree.Tree.length *. 1e3)
                    w)
          (Noise.attribute tree ~leaf:v))
    (Noise.leaf_noise tree);
  if simulate then begin
    let v = Noisesim.Verify.net process tree in
    List.iter
      (fun (l : Noisesim.Verify.leaf_report) ->
        Printf.printf "  leaf %d: simulated peak %.3f V\n" l.Noisesim.Verify.leaf
          l.Noisesim.Verify.peak)
      v.Noisesim.Verify.leaves
  end;
  0

let dot_cmd file out optimize =
  let net = Steiner.Netfile.read file in
  let tree = Steiner.Build.tree_of_net process net in
  let tree =
    if not optimize then tree
    else
      match Bufins.Buffopt.optimize Bufins.Buffopt.Buffopt ~lib tree with
      | Some r -> r.Bufins.Buffopt.report.Bufins.Eval.tree
      | None -> tree
  in
  (match out with
  | Some path -> Rctree.Dot.to_file ~name:net.Steiner.Net.nname tree path
  | None -> print_string (Rctree.Dot.render ~name:net.Steiner.Net.nname tree));
  0

(* the front end: .blif or .design input, optional .lib cell/buffer
   libraries, one warning line when the readers skipped anything *)
let load_design file cells liberty =
  let options =
    match cells with
    | Some c -> { Ingest.Elab.default_options with Ingest.Elab.cells = Sta.Cellfile.read c }
    | None -> Ingest.Elab.default_options
  in
  let design, buffers, warnings = Ingest.Elab.load ~options ?liberty file in
  if warnings > 0 then Printf.eprintf "front-end: %d warning(s)\n" warnings;
  Printf.printf "design: %s\n" (Sta.Design.stats design);
  (design, buffers)

let batch_cmd file algo seg_um kmax jobs retries liberty =
  match algo_of_string algo with
  | Error (`Msg m) ->
      prerr_endline m;
      1
  | Ok algorithm ->
      let design, lib = load_design file None liberty in
      (* one STA pass supplies every net's RATs measured from its driving
         pin — the same derivation the full flow uses per round *)
      let jobs_list = Sta.Engine.batch_jobs process design in
      let domains = if jobs <= 0 then Engine.Pool.default_domains () else jobs in
      let r =
        Engine.optimize ~domains ~retries ~seg_len:(seg_um *. 1e-6) ~kmax ~algorithm ~lib
          jobs_list
      in
      print_endline (Engine.summary r);
      (match Engine.failed_nets r with
      | [] -> 0
      | bad ->
          List.iter (Printf.eprintf "infeasible net: %s\n") bad;
          1)

let flow_cmd file iterations cells liberty =
  let design, lib = load_design file cells liberty in
  let r = Sta.Flow.optimize ~iterations process ~lib design in
  print_endline (Sta.Flow.summary r);
  if r.Sta.Flow.after.Sta.Engine.noisy_nets > 0 || r.Sta.Flow.after.Sta.Engine.wns < 0.0 then 1
  else 0

let gen_design_cmd gates seed out =
  let design = Sta.Gen.random { Sta.Gen.default_config with Sta.Gen.gates; seed } in
  (match out with
  | Some path when Filename.check_suffix path ".blif" ->
      Ingest.Blif.write path (Ingest.Elab.blif_of_design design)
  | Some path -> Sta.Netfmt.write path design
  | None -> print_string (Sta.Netfmt.to_string design));
  0

let gen_lib_cmd out =
  let text =
    Ingest.Liberty.to_string ~name:"buffopt" ~buffers:Tech.Lib.default_library Sta.Cell.library
  in
  (match out with
  | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)
  | None -> print_string text);
  0

let sample_cmd () =
  print_string Steiner.Netfile.sample;
  0

let endpoint_of socket port =
  match (socket, port) with
  | Some path, None -> Ok (Serve.Unix_path path)
  | None, Some p -> Ok (Serve.Tcp_port p)
  | None, None -> Error "one of --socket or --port is required"
  | Some _, Some _ -> Error "--socket and --port are mutually exclusive"

let serve_cmd socket port algo seg_um kmax jobs verbose =
  match endpoint_of socket port with
  | Error m ->
      prerr_endline m;
      1
  | Ok endpoint -> (
      match algo_of_string algo with
      | Error (`Msg m) ->
          prerr_endline m;
          1
      | Ok algorithm ->
          let options =
            {
              Serve.Session.default_options with
              Serve.Session.algorithm;
              seg_len = seg_um *. 1e-6;
              kmax;
            }
          in
          let domains = if jobs <= 0 then None else Some jobs in
          let log = if verbose then prerr_endline else ignore in
          Serve.serve ~options ?domains ~log endpoint;
          0)

let client_cmd socket port script =
  match endpoint_of socket port with
  | Error m ->
      prerr_endline m;
      1
  | Ok endpoint ->
      let read_lines ic =
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go []
      in
      let requests =
        (match script with
        | "-" -> read_lines stdin
        | path ->
            let ic = open_in path in
            Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_lines ic))
        |> List.filter (fun l -> String.trim l <> "" && l.[0] <> '#')
      in
      let replies = Serve.Client.script endpoint requests in
      let bad = ref 0 in
      List.iter2
        (fun req reply ->
          Printf.printf "> %s\n< %s\n" req reply;
          if not (String.length reply >= 2 && String.sub reply 0 2 = "ok") then incr bad)
        requests replies;
      if !bad > 0 then 1 else 0

let mutation_of_string = function
  | "" -> Ok None
  | "cq-noise-prune" -> Ok (Some Bufins.Dp.Cq_noise_prune)
  | "no-attach-guard" -> Ok (Some Bufins.Dp.No_attach_guard)
  | "loose-pred-bound" -> Ok (Some Bufins.Dp.Loose_pred_bound)
  | "stale-memo" -> Ok (Some Bufins.Dp.Stale_memo)
  | "bad-power-bound" -> Ok (Some Bufins.Dp.Bad_power_bound)
  | s ->
      Error
        ("bad mutation (want cq-noise-prune, no-attach-guard, loose-pred-bound, \
          stale-memo or bad-power-bound): " ^ s)

let oracle_of_string = function
  | None -> Ok None
  | Some s -> (
      match Check.Instance.oracle_of_name s with
      | Some o -> Ok (Some o)
      | None ->
          Error
            (Printf.sprintf "bad oracle %s (want one of: %s)" s
               (String.concat ", "
                  (List.map Check.Instance.oracle_name Check.Instance.all_oracles))))

let fuzz_cmd seed count jobs minutes corpus mutate oracle replay_path =
  match (mutation_of_string mutate, oracle_of_string oracle) with
  | Error m, _ | _, Error m ->
      prerr_endline m;
      1
  | Ok mutation, Ok oracle -> (
      match replay_path with
      | Some path ->
          let results = Check.Fuzz.replay ?mutation path in
          let bad = ref 0 in
          List.iter
            (fun (file, verdict) ->
              match verdict with
              | Check.Diff.Pass -> Printf.printf "PASS %s\n" file
              | Check.Diff.Skip m -> Printf.printf "SKIP %s (%s)\n" file m
              | Check.Diff.Fail m ->
                  incr bad;
                  Printf.printf "FAIL %s\n  %s\n" file m)
            results;
          Printf.printf "replayed %d corpus entries, %d failed\n" (List.length results) !bad;
          if !bad > 0 then 1 else 0
      | None ->
          let r =
            Check.Fuzz.campaign ?mutation ?oracle ~jobs ~minutes ?corpus_dir:corpus
              ~seed ~count ()
          in
          print_endline (Check.Fuzz.summary r);
          (* a failure's minimized repro goes to stdout so a report needs
             no corpus directory to be actionable *)
          List.iter
            (fun (f : Check.Fuzz.failure) ->
              print_endline "minimized counterexample:";
              print_string (Check.Corpus.to_string f.Check.Fuzz.shrunk))
            r.Check.Fuzz.failures;
          if r.Check.Fuzz.failures <> [] then 1 else 0)

open Cmdliner

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"NETFILE")

let algo_arg =
  Arg.(
    value
    & opt string "buffopt"
    & info [ "algo" ] ~docv:"ALGO"
        ~doc:
          "One of buffopt, alg3, vangin, delayopt-$(i,k) (e.g. delayopt-4), or \
           power-$(i,fJ) for a delay optimization under a buffer-energy budget in \
           femtojoules (e.g. power-60).")

let seg_arg =
  Arg.(value & opt float 500.0 & info [ "seg" ] ~docv:"UM" ~doc:"Wire-segmenting length, um.")

let kmax_arg =
  Arg.(value & opt int 16 & info [ "kmax" ] ~docv:"K" ~doc:"Buffer-count search bound.")

let sim_arg =
  Arg.(value & flag & info [ "simulate" ] ~doc:"Also run the transient noise simulator.")

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "jobs" ] ~docv:"N"
        ~doc:"Worker domains for batch optimization (0 = one per recommended core).")

let retries_arg =
  Arg.(
    value
    & opt int 0
    & info [ "retries" ] ~docv:"R" ~doc:"Re-runs of a net whose optimization raised.")

let liberty_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "liberty" ] ~docv:"FILE"
        ~doc:"Liberty-subset library supplying gate cells and the buffer library.")

let () =
  let run =
    Cmd.v
      (Cmd.info "run" ~doc:"Optimize a net and print the buffer placements.")
      Term.(const run_cmd $ file_arg $ algo_arg $ seg_arg $ kmax_arg $ sim_arg)
  in
  let report =
    Cmd.v
      (Cmd.info "report" ~doc:"Analyze a net without inserting buffers.")
      Term.(const report_cmd $ file_arg $ sim_arg)
  in
  let sample =
    Cmd.v (Cmd.info "sample" ~doc:"Print a sample net file.") Term.(const sample_cmd $ const ())
  in
  let dot =
    let out =
      Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Output path.")
    in
    let optimize =
      Arg.(value & flag & info [ "optimize" ] ~doc:"Render the BuffOpt solution, not the raw tree.")
    in
    Cmd.v
      (Cmd.info "dot" ~doc:"Export the routing tree as Graphviz.")
      Term.(const dot_cmd $ file_arg $ out $ optimize)
  in
  let batch =
    Cmd.v
      (Cmd.info "batch"
         ~doc:
           "Optimize every net of a design (.design or .blif, see buffopt gen-design) on a \
            domain pool. Exits nonzero when any net is infeasible, naming it on stderr.")
      Term.(
        const batch_cmd $ file_arg $ algo_arg $ seg_arg $ kmax_arg $ jobs_arg $ retries_arg
        $ liberty_arg)
  in
  let flow =
    let iters =
      Arg.(value & opt int 2 & info [ "iterations" ] ~docv:"N" ~doc:"STA/optimize rounds.")
    in
    let cells =
      Arg.(
        value
        & opt (some file) None
        & info [ "cells" ] ~docv:"FILE" ~doc:"Cell library file (see Sta.Cellfile).")
    in
    Cmd.v
      (Cmd.info "flow"
         ~doc:
           "Run the STA-driven whole-design flow on a design file or BLIF netlist (see \
            buffopt gen-design).")
      Term.(const flow_cmd $ file_arg $ iters $ cells $ liberty_arg)
  in
  let fuzz =
    let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Campaign master seed.") in
    let count =
      Arg.(value & opt int 1000 & info [ "count" ] ~docv:"N" ~doc:"Instances to test.")
    in
    let minutes =
      Arg.(
        value
        & opt float 0.0
        & info [ "minutes" ] ~docv:"M"
            ~doc:"Stop drawing new instances after $(docv) minutes (0 = no budget).")
    in
    let corpus =
      Arg.(
        value
        & opt (some string) None
        & info [ "corpus" ] ~docv:"DIR"
            ~doc:"Save every minimized counterexample under $(docv) as a .corpus file.")
    in
    let mutate =
      Arg.(
        value
        & opt string ""
        & info [ "mutate" ] ~docv:"NAME"
            ~doc:
              "Run against a deliberately broken DP engine (cq-noise-prune, \
               no-attach-guard, loose-pred-bound, stale-memo or bad-power-bound); \
               the campaign is expected to fail.")
    in
    let oracle =
      Arg.(
        value
        & opt (some string) None
        & info [ "oracle" ] ~docv:"NAME"
            ~doc:
              "Pin every instance to one oracle (e.g. parser, dp-invariants) instead \
               of drawing uniformly over all of them.")
    in
    let replay =
      Arg.(
        value
        & opt (some string) None
        & info [ "replay" ] ~docv:"PATH"
            ~doc:
              "Instead of a campaign, replay a .corpus file or a directory of them; \
               exits nonzero when any entry fails.")
    in
    Cmd.v
      (Cmd.info "fuzz"
         ~doc:
           "Differential fuzzing of the optimizers: random instances are cross-checked \
            against brute force and each other on a domain pool; failures are shrunk \
            to minimal counterexamples and printed (and saved with --corpus).")
      Term.(
        const fuzz_cmd $ seed $ count $ jobs_arg $ minutes $ corpus $ mutate $ oracle
        $ replay)
  in
  let gen_design =
    let gates = Arg.(value & opt int 120 & info [ "gates" ] ~docv:"N" ~doc:"Gate count.") in
    let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"Generator seed.") in
    let out =
      Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Output path.")
    in
    Cmd.v
      (Cmd.info "gen-design"
         ~doc:"Emit a random design for the flow (.blif output path emits BLIF).")
      Term.(const gen_design_cmd $ gates $ seed $ out)
  in
  let gen_lib =
    let out =
      Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Output path.")
    in
    Cmd.v
      (Cmd.info "gen-lib"
         ~doc:
           "Emit the built-in gate cells and buffer library as a Liberty-subset file \
            (for buffopt batch/flow --liberty).")
      Term.(const gen_lib_cmd $ out)
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")
  in
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT" ~doc:"TCP port on loopback.")
  in
  let serve =
    let verbose =
      Arg.(value & flag & info [ "verbose" ] ~doc:"Log connections to stderr.")
    in
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Run the persistent optimization daemon: designs stay resident, repeated \
            optimize requests are answered from the result cache or incrementally \
            (only the edited path of the tree is recomputed), and worker domains \
            stay warm between requests. Stop it with the shutdown request.")
      Term.(
        const serve_cmd $ socket_arg $ port_arg $ algo_arg $ seg_arg $ kmax_arg
        $ jobs_arg $ verbose)
  in
  let client =
    let script =
      Arg.(
        value
        & pos 0 string "-"
        & info [] ~docv:"SCRIPT"
            ~doc:"Request file, one request per line ('-' = stdin; '#' comments).")
    in
    Cmd.v
      (Cmd.info "client"
         ~doc:
           "Send a request script to a running daemon and print each reply; exits \
            nonzero when any reply is an error.")
      Term.(const client_cmd $ socket_arg $ port_arg $ script)
  in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "buffopt" ~doc:"Buffer insertion for noise and delay optimization.")
          [ run; report; sample; dot; batch; flow; fuzz; gen_design; gen_lib; serve; client ]))
