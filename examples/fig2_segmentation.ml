(* The paper's Fig. 2: a victim wire crossed by several aggressor nets is
   segmented so that every piece couples to a fixed aggressor set, then
   analyzed with the full multi-aggressor form of eq. (6) and verified by
   a multi-source transient deck.

     dune exec examples/fig2_segmentation.exe *)

module T = Rctree.Tree

let process = Tech.Process.default

let lib = Tech.Lib.default_library

let () =
  let slope = Tech.Process.slope process in
  (* an 9 mm victim with no a-priori coupling assumption *)
  let b = Rctree.Builder.create () in
  let so = Rctree.Builder.add_source b ~r_drv:90.0 ~d_drv:30e-12 in
  let w = T.wire_of_length process 9e-3 in
  ignore
    (Rctree.Builder.add_sink b ~parent:so ~wire:{ w with T.cur = 0.0 } ~name:"s" ~c_sink:25e-15
       ~rat:2e-9 ~nm:0.8);
  let victim = Rctree.Builder.finish b in

  (* four aggressors running alongside different spans (distances are
     measured from the sink), two of them fast dynamic-logic nets *)
  let span near far lambda slope = { Coupling.near; far; lambda; slope } in
  let ann =
    Coupling.annotate victim
      ~spans:
        [
          ( 1,
            [
              span 1.0e-3 4.0e-3 0.35 slope;
              span 3.0e-3 6.0e-3 0.30 (slope *. 1.5);
              span 5.0e-3 7.0e-3 0.30 slope;
              span 8.0e-3 9.0e-3 0.40 (slope *. 0.5);
            ] );
        ]
  in
  let tree = Coupling.tree ann in
  Printf.printf "victim segmented into %d pieces (Fig. 2):\n" (T.node_count tree - 1);
  List.iter
    (fun v ->
      if v <> T.root tree then begin
        let w = T.wire_to tree v in
        Printf.printf "  piece %.1f mm, %d aggressor(s), coupled current %.2f mA\n"
          (w.T.length *. 1e3)
          (List.length (Coupling.density ann v))
          (w.T.cur *. 1e3)
      end)
    (List.rev (T.postorder tree));

  let report tag tr density =
    let metric = List.hd (Noise.leaf_noise tr) in
    let sim = Noisesim.Verify.net ~density process tr in
    let _, m, margin = metric in
    Printf.printf "%-28s metric %.3f V, simulated %.3f V (margin %.2f)%s\n" tag m
      (List.fold_left (fun a l -> Float.max a l.Noisesim.Verify.peak) 0.0 sim.Noisesim.Verify.leaves)
      margin
      (if sim.Noisesim.Verify.sim_violations > 0 then "  VIOLATION" else "")
  in
  print_newline ();
  report "unbuffered" tree (Coupling.density ann);

  (* fix it with Algorithm 1 and re-verify against the same aggressors *)
  let a1 = Bufins.Alg1.run ~lib tree in
  Printf.printf "\nAlgorithm 1 inserts %d buffer(s):\n" a1.Bufins.Alg1.count;
  let ann' = Coupling.buffered ann a1.Bufins.Alg1.placements in
  report "buffered (Algorithm 1)" (Coupling.tree ann') (Coupling.density ann')
