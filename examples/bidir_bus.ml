(* A bidirectional (multi-source) bus, after Lillis [17]: terminals A and
   B alternately drive the same 10 mm wire, so repeaters must keep both
   modes noise-safe. Re-rooting expresses "B drives" exactly.

     dune exec examples/bidir_bus.exe *)

module T = Rctree.Tree
module MS = Bufins.Multisource

let process = Tech.Process.default

let lib = Tech.Lib.default_library

let () =
  (* terminal A is the tree source; terminal B is sink 1, which may also
     drive through 120 ohms *)
  let tree = Fixtures.two_pin ~r_drv:100.0 ~c_sink:15e-15 process ~len:10e-3 in
  let a_pin = { T.sname = "A_pin"; c_sink = 15e-15; rat = 2.5e-9; nm = 0.8 } in
  let b = { MS.pnode = 1; p_r_drv = 120.0; p_d_drv = 30e-12 } in

  Printf.printf "mode A drives: %d metric violations unbuffered\n"
    (List.length (Noise.violations tree));
  let b_view = MS.rerooted tree ~old_source:a_pin b in
  Printf.printf "mode B drives: %d metric violations unbuffered (re-rooted tree)\n\n"
    (List.length (Noise.violations b_view));

  let r = MS.run ~lib ~old_source:a_pin ~ports:[ b ] tree in
  Printf.printf "merged solution: %d bidirectional repeaters\n" r.MS.count;
  List.iter
    (fun (p : Rctree.Surgery.placement) ->
      Printf.printf "  %s at %.2f mm from terminal B\n" p.Rctree.Surgery.buffer.Tech.Buffer.name
        (p.Rctree.Surgery.dist *. 1e3))
    r.MS.placements;
  print_newline ();
  List.iter
    (fun (m : MS.mode_report) ->
      Printf.printf "mode %-8s violations %d, worst delay %.0f ps\n"
        (if m.MS.driver = -1 then "A drives" else "B drives")
        (List.length m.MS.eval.Bufins.Eval.noise_violations)
        (m.MS.eval.Bufins.Eval.worst_delay *. 1e12))
    r.MS.modes;
  Printf.printf "\nall modes noise-clean: %b\n" (MS.all_modes_clean r)
