(* A realistic multi-sink net with mixed static and dynamic-logic sinks:
   Algorithm 2's forced-branch decisions, and how the three optimizers
   trade buffers for slack.

     dune exec examples/multisink_tree.exe *)

module T = Rctree.Tree

let process = Tech.Process.default

let lib = Tech.Lib.default_library

let () =
  (* an 8-sink net spread over ~10 x 6 mm; two sinks are noise-sensitive
     dynamic-logic inputs (0.5 V margin) *)
  let pin name x y nm =
    { Steiner.Net.pname = name; at = Geometry.Point.make x y; c_sink = 25e-15; rat = 1.5e-9; nm }
  in
  let net =
    Steiner.Net.make ~name:"fanout8" ~source:(Geometry.Point.make 0 3_000_000) ~r_drv:100.0
      ~d_drv:40e-12
      ~pins:
        [
          pin "s0" 2_500_000 5_500_000 0.8;
          pin "s1" 4_000_000 6_000_000 0.8;
          pin "s2" 6_500_000 5_000_000 0.5;
          pin "s3" 9_500_000 5_800_000 0.8;
          pin "s4" 3_000_000 500_000 0.8;
          pin "s5" 5_500_000 1_000_000 0.5;
          pin "s6" 8_000_000 200_000 0.8;
          pin "s7" 10_000_000 2_500_000 0.8;
        ]
  in
  let tree = Steiner.Build.tree_of_net process net in
  Format.printf "net: %d sinks, %.1f mm of wire, %a@." (List.length (T.sinks tree))
    (T.total_wirelength tree *. 1e3)
    T.pp_summary tree;

  let before = Bufins.Eval.of_tree tree in
  Printf.printf "unbuffered: %d noise violations, worst noise/margin = %.2f\n"
    (List.length before.Bufins.Eval.noise_violations)
    before.Bufins.Eval.worst_noise_ratio;

  (* Problem 1: fewest buffers for noise alone, continuous placement *)
  let a2 = Bufins.Alg2.run ~lib tree in
  let a2_report = Bufins.Eval.apply tree a2.Bufins.Alg2.placements in
  Printf.printf "\nAlgorithm 2 (problem 1): %d buffers, violations %d, delay %.0f ps\n"
    a2.Bufins.Alg2.count
    (List.length a2_report.Bufins.Eval.noise_violations)
    (a2_report.Bufins.Eval.worst_delay *. 1e12);

  (* Problems 2 and 3 on the segmented tree *)
  List.iter
    (fun (tag, algo) ->
      match Bufins.Buffopt.optimize algo ~lib tree with
      | Some r ->
          Printf.printf "%-24s %d buffers, slack %7.0f ps, violations %d\n" tag
            r.Bufins.Buffopt.count
            (r.Bufins.Buffopt.report.Bufins.Eval.slack *. 1e12)
            (List.length r.Bufins.Buffopt.report.Bufins.Eval.noise_violations)
      | None -> Printf.printf "%-24s infeasible\n" tag)
    [
      ("Van Ginneken (delay)", Bufins.Buffopt.Vangin_max_slack);
      ("Algorithm 3 (problem 2)", Bufins.Buffopt.Alg3_max_slack);
      ("BuffOpt (problem 3)", Bufins.Buffopt.Buffopt);
      ("DelayOpt(2)", Bufins.Buffopt.Delayopt 2);
    ]
