(* Full-design mode: a placed combinational design, static timing
   analysis, and the STA -> RAT derivation -> BuffOpt loop — the
   physical-synthesis environment the paper's tool runs inside.

     dune exec examples/design_flow.exe *)

let process = Tech.Process.default

let lib = Tech.Lib.default_library

let () =
  let design = Sta.Gen.random Sta.Gen.default_config in
  Printf.printf "design: %s\n" (Sta.Design.stats design);

  let before = Sta.Engine.analyze process design in
  Printf.printf "\nbefore optimization:\n";
  Printf.printf "  wns %.0f ps, tns %.1f ns, %d nets with noise violations\n"
    (before.Sta.Engine.wns *. 1e12)
    (before.Sta.Engine.tns *. 1e9)
    before.Sta.Engine.noisy_nets;

  let r = Sta.Flow.optimize process ~lib design in
  Printf.printf "\nafter %s:\n" "STA -> BuffOpt -> STA (2 rounds)";
  Printf.printf "  wns %.0f ps, tns %.1f ns, %d noisy nets, %d buffers on %d nets\n"
    (r.Sta.Flow.after.Sta.Engine.wns *. 1e12)
    (r.Sta.Flow.after.Sta.Engine.tns *. 1e9)
    r.Sta.Flow.after.Sta.Engine.noisy_nets r.Sta.Flow.inserted_buffers
    r.Sta.Flow.optimized_nets;

  Printf.printf "\nfive most critical endpoints after optimization:\n";
  Sta.Engine.endpoint_slacks design r.Sta.Flow.after
  |> List.sort (fun (_, a) (_, b) -> compare a b)
  |> List.filteri (fun i _ -> i < 5)
  |> List.iter (fun (name, slack) -> Printf.printf "  %-6s %8.0f ps\n" name (slack *. 1e12));

  Printf.printf "\n%s\n" (Sta.Flow.summary r)
