(* Quickstart: route a small placed net, check its noise and timing, and
   let BuffOpt fix it.

     dune exec examples/quickstart.exe *)

let () =
  let process = Tech.Process.default in
  let lib = Tech.Lib.default_library in

  (* 1. Describe a placed net: a driver and three sinks, coordinates in
     nanometres (about a 9 x 5 mm spread). *)
  let pin name x y =
    {
      Steiner.Net.pname = name;
      at = Geometry.Point.make x y;
      c_sink = 20e-15;
      rat = 1.2e-9;
      nm = 0.8;
    }
  in
  let net =
    Steiner.Net.make ~name:"quickstart" ~source:(Geometry.Point.make 0 0) ~r_drv:120.0
      ~d_drv:30e-12
      ~pins:[ pin "alu" 9_000_000 1_000_000; pin "lsu" 7_000_000 4_800_000; pin "fpu" 4_000_000 2_500_000 ]
  in

  (* 2. Build a Steiner topology and look at the unoptimized tree. *)
  let tree = Steiner.Build.tree_of_net process net in
  let before = Bufins.Eval.of_tree tree in
  Printf.printf "before: slack = %.0f ps, noise violations = %d\n"
    (before.Bufins.Eval.slack *. 1e12)
    (List.length before.Bufins.Eval.noise_violations);

  (* 3. BuffOpt (Problem 3): fewest buffers meeting both noise margins and
     required arrival times. *)
  (match Bufins.Buffopt.optimize Bufins.Buffopt.Buffopt ~lib tree with
  | None -> print_endline "no feasible solution (try finer segmenting)"
  | Some r ->
      Printf.printf "after:  slack = %.0f ps, noise violations = %d, buffers = %d\n"
        (r.Bufins.Buffopt.report.Bufins.Eval.slack *. 1e12)
        (List.length r.Bufins.Buffopt.report.Bufins.Eval.noise_violations)
        r.Bufins.Buffopt.count;
      List.iter
        (fun (p : Rctree.Surgery.placement) ->
          Printf.printf "  %s inserted %.2f mm above node %d\n"
            p.Rctree.Surgery.buffer.Tech.Buffer.name
            (p.Rctree.Surgery.dist *. 1e3) p.Rctree.Surgery.node)
        r.Bufins.Buffopt.placements;

      (* 4. Cross-check with the transient noise simulator (3dnoise role). *)
      let v = Noisesim.Verify.net process r.Bufins.Buffopt.report.Bufins.Eval.tree in
      Printf.printf "simulation: %d violating leaves; metric upper bound holds: %b\n"
        v.Noisesim.Verify.sim_violations v.Noisesim.Verify.bound_ok)
