(* The paper's Fig. 3 worked example, reproduced step by step: computing
   the Devgan noise metric by hand (eqs. 7-9) and confirming the library
   agrees with every intermediate quantity.

     dune exec examples/fig3_noise.exe *)

module T = Rctree.Tree

let () =
  let tree = Fixtures.fig3 () in
  (* topology: so --w1--> v1, v1 --w2--> s1, v1 --w3--> s2 *)
  let v1 = 1 and s1 = 2 and s2 = 3 in

  print_endline "Fig. 3 worked example (abstract units):";
  print_endline "  so -(R=2, I=4)-> v1 -(R=3, I=2)-> s1 [margin 200]";
  print_endline "                    \\-(R=2, I=6)-> s2 [margin 150]";
  print_endline "  driver resistance at so: 10";
  print_newline ();

  (* eq. (7): total downstream currents *)
  let curs = Noise.cur_at tree in
  Printf.printf "eq. 7  downstream currents: I(v1) = %.0f  I(s1) = I(s2) = %.0f\n" curs.(v1)
    curs.(s1);
  Printf.printf "       current through the driver: %.0f\n"
    (Noise.drive_current tree curs (T.root tree));

  (* eq. (8): per-wire noise, pi-distributing each wire's own current *)
  let wn v = Noise.wire_noise (T.wire_to tree v) ~downstream:curs.(v) in
  Printf.printf "eq. 8  Noise(w1) = 2*(8 + 4/2)  = %.0f\n" (wn v1);
  Printf.printf "       Noise(w2) = 3*(0 + 2/2)  = %.0f\n" (wn s1);
  Printf.printf "       Noise(w3) = 2*(0 + 6/2)  = %.0f\n" (wn s2);

  (* eq. (9): sink noise = driver term + path wire noise *)
  print_newline ();
  List.iter
    (fun (v, noise, margin) ->
      Printf.printf "eq. 9  noise at %s = 10*12 + ... = %.0f (margin %.0f) %s\n"
        (match T.kind tree v with T.Sink s -> s.T.sname | _ -> "?")
        noise margin
        (if noise <= margin then "OK" else "VIOLATION"))
    (Noise.leaf_noise tree);

  (* eq. (12): noise slacks *)
  let ns = Noise.noise_slack tree in
  print_newline ();
  Printf.printf "eq. 12 noise slack at v1 = min(200-3, 150-6) = %.0f\n" ns.(v1);
  Printf.printf "       noise slack at so = 144 - Noise(w1)   = %.0f\n" ns.(0);
  Printf.printf "       driver term 10*12 = 120 <= 124, so the net is safe\n"
