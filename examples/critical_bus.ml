(* A 14 mm point-to-point bus wire — the Fig. 6/7 setting: Theorem 1's
   maximal spacing, Algorithm 1's placement, and what delay-only
   optimization would have done instead.

     dune exec examples/critical_bus.exe *)

module T = Rctree.Tree

let process = Tech.Process.default

let lib = Tech.Lib.default_library

let show tag (r : Bufins.Eval.report) =
  Printf.printf "%-22s %d buffers, delay %6.0f ps, worst noise/margin %.2f, violations %d\n" tag
    r.Bufins.Eval.buffers
    (r.Bufins.Eval.worst_delay *. 1e12)
    r.Bufins.Eval.worst_noise_ratio
    (List.length r.Bufins.Eval.noise_violations)

let () =
  let len = 14e-3 in
  let tree = Fixtures.two_pin ~r_drv:150.0 ~rat:2e-9 process ~len in

  (* Theorem 1: how far apart can the strongest buffer's repeaters be? *)
  let b = Tech.Lib.min_resistance lib in
  (match
     Noise.max_safe_length ~r_b:b.Tech.Buffer.r_b ~i_down:0.0 ~ns:process.Tech.Process.nm_default
       ~r_per_m:process.Tech.Process.r_per_m ~i_per_m:(Tech.Process.i_per_m process)
   with
  | Some l ->
      Printf.printf "Theorem 1: %s may drive at most %.2f mm of coupled wire (0.8 V margin)\n"
        b.Tech.Buffer.name (l *. 1e3)
  | None -> assert false);
  Printf.printf "the bus is %.0f mm, so at least %.0f buffers are needed for noise alone\n\n"
    (len *. 1e3)
    (Float.of_int (Bufins.Alg1.run ~lib tree).Bufins.Alg1.count);

  show "unbuffered" (Bufins.Eval.of_tree tree);

  (* Algorithm 1: minimum buffers for noise, placed at maximal offsets *)
  let a1 = Bufins.Alg1.run ~lib tree in
  show "Algorithm 1 (noise)" (Bufins.Eval.apply tree a1.Bufins.Alg1.placements);
  List.iter
    (fun (p : Rctree.Surgery.placement) ->
      Printf.printf "    %s at %.2f mm from the sink\n" p.Rctree.Surgery.buffer.Tech.Buffer.name
        (p.Rctree.Surgery.dist *. 1e3))
    a1.Bufins.Alg1.placements;

  (* Delay-only optimization inserts more buffers for speed... *)
  (match Bufins.Buffopt.optimize Bufins.Buffopt.Vangin_max_slack ~lib tree with
  | Some r -> show "Van Ginneken (delay)" r.Bufins.Buffopt.report
  | None -> assert false);

  (* ...while Algorithm 3 gets the same speed noise-safely, and BuffOpt
     backs off to the fewest buffers that still meet the 2 ns RAT. *)
  (match Bufins.Buffopt.optimize Bufins.Buffopt.Alg3_max_slack ~lib tree with
  | Some r -> show "Algorithm 3" r.Bufins.Buffopt.report
  | None -> assert false);
  match Bufins.Buffopt.optimize Bufins.Buffopt.Buffopt ~lib tree with
  | Some r -> show "BuffOpt (problem 3)" r.Bufins.Buffopt.report
  | None -> assert false
