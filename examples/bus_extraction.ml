(* Routing -> extraction -> analysis: a 16-bit parallel bus, the classic
   coupling victim. Extraction finds the parallel runs geometrically,
   eq. 17's lambda = kappa/spacing model rates each neighbour, and the
   middle bit is repaired and re-verified with true multi-aggressor
   transient decks.

     dune exec examples/bus_extraction.exe *)

module T = Rctree.Tree

let process = Tech.Process.default

let lib = Tech.Lib.default_library

let () =
  let cfg = Extract.default_config process in
  let routed = List.map (Extract.route process) (Workload.parallel_bus ~bits:16 ~len:10_000_000 ()) in
  let victim = List.nth routed 8 in
  let aggressors = List.filteri (fun i _ -> i <> 8) routed in

  Printf.printf "16-bit bus, 10 mm, %d nm pitch; victim = bit8\n" cfg.Extract.pitch;
  let spans = Extract.victim_spans cfg ~victim ~aggressors in
  List.iter
    (fun (v, ss) ->
      Printf.printf "  wire at node %d: %d coupled span(s), lambdas: %s\n" v (List.length ss)
        (String.concat ", "
           (List.map (fun (s : Coupling.span) -> Printf.sprintf "%.2f" s.Coupling.lambda) ss)))
    spans;

  let ann = Extract.annotate cfg ~victim ~aggressors in
  let tree = Coupling.tree ann in
  (match Noise.leaf_noise tree with
  | (_, noise, margin) :: _ ->
      Printf.printf "\nmetric noise at the far sink: %.3f V (margin %.2f V)%s\n" noise margin
        (if noise > margin then "  VIOLATION" else "")
  | [] -> ());

  (* repair with Algorithm 2 and re-verify against the same aggressors *)
  let r = Bufins.Alg2.run ~lib tree in
  Printf.printf "\nAlgorithm 2 inserts %d buffer(s)\n" r.Bufins.Alg2.count;
  let ann' = Coupling.buffered ann r.Bufins.Alg2.placements in
  let v = Noisesim.Verify.net ~density:(Coupling.density ann') process (Coupling.tree ann') in
  Printf.printf "multi-aggressor transient check: %d violating leaves (bound holds: %b)\n"
    v.Noisesim.Verify.sim_violations v.Noisesim.Verify.bound_ok;

  (* eq. 17 in action: how much pitch buys freedom from buffering *)
  Printf.printf "\nminimum repeaters for the middle bit vs bus pitch (10 mm bus):\n";
  List.iter
    (fun pitch ->
      let routed = List.map (Extract.route process) (Workload.parallel_bus ~bits:16 ~pitch ~len:10_000_000 ()) in
      let victim = List.nth routed 8 in
      let aggressors = List.filteri (fun i _ -> i <> 8) routed in
      let ann = Extract.annotate cfg ~victim ~aggressors in
      let r = Bufins.Alg2.run ~lib (Coupling.tree ann) in
      Printf.printf "  pitch %4d nm: %d buffer(s)\n" pitch r.Bufins.Alg2.count)
    [ 400; 600; 800; 1200; 1600 ]
