(* Coupling-ratio study (eqs. 16-17): how aggressive a neighbour can a
   wire tolerate before it needs a buffer, what spacing that implies
   under the lambda = kappa / spacing model, and how the transient
   simulator tracks the metric across the sweep.

     dune exec examples/aggressor_study.exe *)

let process = Tech.Process.default

let () =
  let b = Tech.Lib.min_resistance Tech.Lib.default_library in
  let r_b = b.Tech.Buffer.r_b in
  let r_per_m = process.Tech.Process.r_per_m in
  let c_per_m = process.Tech.Process.c_per_m in
  let slope = Tech.Process.slope process in
  let ns = process.Tech.Process.nm_default in

  Printf.printf "largest tolerable coupling ratio for a %s-driven wire (eq. 16):\n"
    b.Tech.Buffer.name;
  Printf.printf "  %-12s %-12s %-22s\n" "length (mm)" "lambda_max" "min spacing (kappa=0.35)";
  List.iter
    (fun len_mm ->
      let lambda =
        Noise.lambda_bound ~r_b ~i_down:0.0 ~ns ~r_per_m ~c_per_m ~slope ~length:(len_mm *. 1e-3)
      in
      let spacing =
        (* lambda = kappa / spacing, spacing in pitch units *)
        if lambda <= 0.0 then infinity else 0.35 /. lambda
      in
      Printf.printf "  %-12.1f %-12.3f %-22s\n" len_mm lambda
        (if lambda >= 1.0 then "any neighbour is safe"
         else Printf.sprintf "%.2f pitches" spacing))
    [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 ];

  (* simulate a 3 mm wire across coupling ratios and compare to the metric *)
  print_newline ();
  Printf.printf "3 mm wire, 100 ohm driver: metric vs transient simulation\n";
  Printf.printf "  %-8s %-12s %-12s %-8s\n" "lambda" "metric (V)" "sim (V)" "ratio";
  List.iter
    (fun lambda ->
      let p = { process with Tech.Process.lambda } in
      let tree = Fixtures.two_pin p ~len:3e-3 in
      let metric = match Noise.leaf_noise tree with [ (_, n, _) ] -> n | _ -> assert false in
      let rep = Noisesim.Verify.net p tree in
      let peak = (List.hd rep.Noisesim.Verify.leaves).Noisesim.Verify.peak in
      Printf.printf "  %-8.2f %-12.3f %-12.3f %-8.2f\n" lambda metric peak (metric /. peak))
    [ 0.1; 0.3; 0.5; 0.7; 0.9 ]
