module T = Rctree.Tree

let cur_at t =
  let curs = Array.make (T.node_count t) 0.0 in
  List.iter
    (fun v ->
      curs.(v) <-
        (match T.kind t v with
        | T.Sink _ | T.Buffered _ -> 0.0
        | T.Internal | T.Source _ ->
            List.fold_left
              (fun acc c -> acc +. (T.wire_to t c).T.cur +. curs.(c))
              0.0 (T.children t v)))
    (T.postorder t);
  curs

let drive_current t curs g =
  List.fold_left (fun acc c -> acc +. (T.wire_to t c).T.cur +. curs.(c)) 0.0 (T.children t g)

let wire_noise (w : T.wire) ~downstream = w.T.res *. (downstream +. (w.T.cur /. 2.0))

let margin t v =
  match T.kind t v with
  | T.Sink s -> s.T.nm
  | T.Buffered b -> b.Tech.Buffer.nm
  | T.Source _ | T.Internal -> invalid_arg "Noise.margin: not a stage leaf"

let gate_resistance t g =
  match T.kind t g with
  | T.Source d -> d.T.r_drv
  | T.Buffered b -> b.Tech.Buffer.r_b
  | T.Sink _ | T.Internal -> invalid_arg "Noise.gate_resistance: not a gate"

(* Accumulated path noise from each node's stage root down to the node,
   including the stage driver's R_g * I(g) term at the stage root. *)
let accumulated t =
  let curs = cur_at t in
  let acc = Array.make (T.node_count t) 0.0 in
  List.iter
    (fun v ->
      if T.is_gate t v then acc.(v) <- gate_resistance t v *. drive_current t curs v
      else begin
        let u = T.parent t v in
        acc.(v) <- acc.(u) +. wire_noise (T.wire_to t v) ~downstream:curs.(v)
      end)
    (List.rev (T.postorder t));
  acc

let leaf_noise t =
  let curs = cur_at t in
  let acc = accumulated t in
  List.filter_map
    (fun v ->
      (* Noise at the input pin of stage leaf [v]: the upstream stage's
         accumulation at the parent plus the parent wire's contribution.
         (For a Buffered [v], acc.(v) itself restarts at [v]'s output.) *)
      let input_noise () =
        acc.(T.parent t v) +. wire_noise (T.wire_to t v) ~downstream:curs.(v)
      in
      match T.kind t v with
      | T.Sink s -> Some (v, input_noise (), s.T.nm)
      | T.Buffered b -> Some (v, input_noise (), b.Tech.Buffer.nm)
      | T.Source _ | T.Internal -> None)
    (T.postorder t)

type contribution = { element : [ `Driver of int | `Wire of int ]; amount : float }

let attribute t ~leaf =
  (match T.kind t leaf with
  | T.Sink _ | T.Buffered _ -> ()
  | T.Source _ | T.Internal -> invalid_arg "Noise.attribute: not a stage leaf");
  let curs = cur_at t in
  (* walk up to the stage's driving gate, collecting per-wire terms *)
  let rec up v acc =
    let u = T.parent t v in
    let acc = { element = `Wire v; amount = wire_noise (T.wire_to t v) ~downstream:curs.(v) } :: acc in
    if T.is_gate t u then
      { element = `Driver u; amount = gate_resistance t u *. drive_current t curs u } :: acc
    else up u acc
  in
  up leaf [] |> List.sort (fun a b -> compare b.amount a.amount)

let violations ?(eps = 1e-9) t =
  List.filter (fun (_, noise, m) -> noise > m +. eps) (leaf_noise t)

let noise_slack t =
  let curs = cur_at t in
  let ns = Array.make (T.node_count t) infinity in
  List.iter
    (fun v ->
      match T.kind t v with
      | T.Sink s -> ns.(v) <- s.T.nm
      | T.Buffered b -> ns.(v) <- b.Tech.Buffer.nm
      | T.Internal | T.Source _ ->
          ns.(v) <-
            List.fold_left
              (fun acc c ->
                let w = T.wire_to t c in
                Float.min acc (ns.(c) -. wire_noise w ~downstream:curs.(c)))
              infinity (T.children t v))
    (T.postorder t);
  ns

let miller t ~slope ~factor =
  assert (slope > 0.0 && factor >= 0.0);
  T.map_wires t (fun _ w ->
      let c_couple = w.T.cur /. slope in
      { w with T.cap = w.T.cap +. ((factor -. 1.0) *. c_couple) })

let max_safe_length ~r_b ~i_down ~ns ~r_per_m ~i_per_m =
  assert (r_b >= 0.0 && i_down >= 0.0 && r_per_m >= 0.0 && i_per_m >= 0.0);
  let c = (r_b *. i_down) -. ns in
  if c > 0.0 then None
  else begin
    let a = r_per_m *. i_per_m /. 2.0 in
    let b = (r_per_m *. i_down) +. (r_b *. i_per_m) in
    if a = 0.0 then if b = 0.0 then Some infinity else Some (-.c /. b)
    else begin
      let disc = (b *. b) -. (4.0 *. a *. c) in
      assert (disc >= 0.0);
      Some ((-.b +. sqrt disc) /. (2.0 *. a))
    end
  end

let lambda_bound ~r_b ~i_down ~ns ~r_per_m ~c_per_m ~slope ~length =
  assert (length > 0.0 && c_per_m > 0.0 && slope > 0.0);
  let wire_res_term = (r_per_m *. length) +. r_b in
  let numer = ns -. (wire_res_term *. i_down) in
  let denom = slope *. c_per_m *. length *. ((r_per_m *. length /. 2.0) +. r_b) in
  if denom = 0.0 then infinity else numer /. denom
