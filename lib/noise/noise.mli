(** The Devgan coupled-noise metric on routing trees (paper Section II-B)
    and the maximum noise-safe wire length of Theorem 1.

    Eq. (6): each wire [w] carries a coupled current
    [cur_w = sum_j lambda_j * C_w * slope_j] (stored in the wire record).
    Eq. (7): [I(v)] is the total current of the wires downstream of [v]
    within [v]'s stage (buffers are restoring gates, so coupled current
    does not propagate through them).
    Eq. (8): a wire [w = (u,v)] adds [Noise(w) = R_w * (I(v) + cur_w/2)]
    — the pi-model places half of the wire's own current at its far end.
    Eq. (9): the noise at a stage leaf [s] whose stage is driven by gate
    [g] is [R_g * I(g) + sum of Noise(w) over the path g -> s].
    Eq. (11)/(12): the circuit is electrically safe iff every sink and
    buffer input sees noise below its margin; the noise slack at [v] is
    the worst downstream margin minus the path noise from [v].

    Like the Elmore metric, the quantities are additive along paths and
    incremental bottom-up; the metric upper-bounds the true coupled noise
    of the corresponding RC circuit (verified against [Noisesim]). *)

val cur_at : Rctree.Tree.t -> float array
(** Downstream current each node presents to its stage (eq. 7): sinks and
    buffer inputs present [0.]; internal nodes sum child wire currents and
    child values. The source entry is its stage's total current. *)

val drive_current : Rctree.Tree.t -> float array -> int -> float
(** [drive_current t curs g]: total coupled current returned through gate
    [g]'s output resistance — the sum over children of wire current plus
    the child's [cur_at]. [curs] must come from {!cur_at}. *)

val wire_noise : Rctree.Tree.wire -> downstream:float -> float
(** Eq. (8): [res *. (downstream +. cur /. 2.)]. *)

val leaf_noise : Rctree.Tree.t -> (int * float * float) list
(** For every stage leaf (sink or buffer input): the node, its total
    coupled noise per eq. (9), and its margin (sink [nm] or buffer [nm]).
    Order follows the tree. *)

val violations : ?eps:float -> Rctree.Tree.t -> (int * float * float) list
(** The subset of {!leaf_noise} with [noise > margin +. eps]
    (default [eps = 1e-9] volts). Empty iff the tree is noise-safe. *)

val noise_slack : Rctree.Tree.t -> float array
(** Eq. (12) evaluated within stages: for internal nodes and the source,
    [ns.(v)] is the minimum over stage leaves [s] downstream of [v]
    (within [v]'s stage) of [margin s -. path_noise (v -> s)] — at the
    source it bounds the allowed [R_so * I(so)]. At a stage leaf (sink or
    buffer input) it is the leaf's own margin, i.e. its slack as seen by
    the {e upstream} stage. *)

val margin : Rctree.Tree.t -> int -> float
(** Noise margin of a stage leaf ([nm] of the sink or buffer). *)

type contribution = {
  element : [ `Driver of int | `Wire of int ];  (** gate node or wire's child node *)
  amount : float;  (** volts added to the leaf's total (eqs. 8-9 terms) *)
}

val attribute : Rctree.Tree.t -> leaf:int -> contribution list
(** Decompose the eq. (9) noise at a stage leaf into its additive terms —
    the driving gate's [R_g * I(g)] and each path wire's eq. (8) noise —
    sorted largest first. The amounts sum to the leaf's {!leaf_noise}
    value (additivity is what makes the metric, like Elmore, suitable for
    optimization); the report tells a designer {e which} span to move,
    shield or buffer. *)

val miller : Rctree.Tree.t -> slope:float -> factor:float -> Rctree.Tree.t
(** The crosstalk {e delay} view of a coupled tree: each wire's coupling
    capacitance (recovered from its current as [cur /. slope], inverting
    eq. 6) is counted [factor] times in the total — the classical Miller
    factor is 2 for an opposite-phase aggressor, 1 for a quiet one.
    Running [Elmore] on the result gives worst-case (delta-delay) timing;
    currents, and hence the noise analyses, are unchanged. Requires
    [factor >= 0.]. *)

val max_safe_length :
  r_b:float -> i_down:float -> ns:float -> r_per_m:float -> i_per_m:float -> float option
(** Theorem 1: the largest wire length [l] a buffer of output resistance
    [r_b] may drive, above a point with downstream current [i_down] and
    noise slack [ns], over a wire with per-metre resistance [r_per_m] and
    per-metre coupled current [i_per_m], such that
    [r_b*(i_down + i_per_m*l) + (r_per_m*l)*(i_down + i_per_m*l/2) <= ns].
    [None] when [r_b *. i_down > ns] (no non-negative length works — a
    buffer should have been inserted earlier); [Some infinity] when the
    constraint never binds (e.g. no coupling and no downstream current). *)

val lambda_bound :
  r_b:float ->
  i_down:float ->
  ns:float ->
  r_per_m:float ->
  c_per_m:float ->
  slope:float ->
  length:float ->
  float
(** Eq. (16)/(17) companion: the largest coupling ratio [lambda] under
    which a wire of the given length passes. With the paper's
    [lambda = kappa /. spacing] model, the minimum aggressor spacing is
    [kappa /. lambda_bound ...]. The result may exceed 1 (any neighbour is
    safe) or be non-positive (no spacing is safe). *)
