type t = {
  r_per_m : float;
  c_per_m : float;
  lambda : float;
  vdd : float;
  t_rise : float;
  nm_default : float;
}

let make ~r_per_m ~c_per_m ~lambda ~vdd ~t_rise ~nm_default =
  assert (r_per_m >= 0.0 && c_per_m >= 0.0);
  assert (lambda >= 0.0 && lambda <= 1.0);
  assert (vdd > 0.0 && t_rise > 0.0 && nm_default > 0.0);
  { r_per_m; c_per_m; lambda; vdd; t_rise; nm_default }

let default =
  make ~r_per_m:8e4 (* 0.08 ohm/um *) ~c_per_m:2e-10 (* 0.2 fF/um *) ~lambda:0.7 ~vdd:1.8
    ~t_rise:0.25e-9 ~nm_default:0.8

let copper = { default with r_per_m = 4.4e4 }

let slope t = t.vdd /. t.t_rise

let i_per_m t = t.lambda *. t.c_per_m *. slope t

let of_nm n = float_of_int n *. 1e-9

let wire_r t len = t.r_per_m *. len

let wire_c t len = t.c_per_m *. len

let wire_i t len = i_per_m t *. len
