let buf name ~inverting ~c_in ~r_b ~d_b =
  Buffer.make ~name ~inverting ~c_in ~r_b ~d_b ~nm:0.8 ()

let default_library =
  [
    buf "bufx1" ~inverting:false ~c_in:3e-15 ~r_b:850.0 ~d_b:45e-12;
    buf "bufx2" ~inverting:false ~c_in:5e-15 ~r_b:440.0 ~d_b:42e-12;
    buf "bufx4" ~inverting:false ~c_in:9e-15 ~r_b:230.0 ~d_b:40e-12;
    buf "bufx8" ~inverting:false ~c_in:16e-15 ~r_b:120.0 ~d_b:38e-12;
    buf "bufx16" ~inverting:false ~c_in:28e-15 ~r_b:65.0 ~d_b:36e-12;
    buf "bufx32" ~inverting:false ~c_in:48e-15 ~r_b:36.0 ~d_b:35e-12;
    buf "invx1" ~inverting:true ~c_in:2.2e-15 ~r_b:780.0 ~d_b:24e-12;
    buf "invx2" ~inverting:true ~c_in:3.8e-15 ~r_b:400.0 ~d_b:22e-12;
    buf "invx4" ~inverting:true ~c_in:7e-15 ~r_b:210.0 ~d_b:21e-12;
    buf "invx8" ~inverting:true ~c_in:13e-15 ~r_b:110.0 ~d_b:20e-12;
    buf "invx16" ~inverting:true ~c_in:23e-15 ~r_b:58.0 ~d_b:19e-12;
  ]

let non_inverting lib = List.filter (fun (b : Buffer.t) -> not b.inverting) lib

let inverting lib = List.filter (fun (b : Buffer.t) -> b.inverting) lib

let min_resistance = function
  | [] -> invalid_arg "Lib.min_resistance: empty library"
  | b :: bs ->
      List.fold_left (fun (best : Buffer.t) (x : Buffer.t) -> if x.r_b < best.r_b then x else best) b bs

let find lib name = List.find_opt (fun (b : Buffer.t) -> b.name = name) lib

type prepared = {
  bufs : Buffer.t array;
  by_r : Buffer.t array;
  r_min : float;
  c_in : float array;
  r_b : float array;
  d_b : float array;
  nm : float array;
  inverting : bool array;
  energy : float array;
}

let prepare lib =
  if lib = [] then invalid_arg "Lib.prepare: empty library";
  let bufs = Array.of_list lib in
  let by_r = Array.copy bufs in
  Array.sort (fun (a : Buffer.t) (b : Buffer.t) -> Float.compare a.r_b b.r_b) by_r;
  {
    bufs;
    by_r;
    r_min = by_r.(0).r_b;
    c_in = Array.map (fun (b : Buffer.t) -> b.c_in) bufs;
    r_b = Array.map (fun (b : Buffer.t) -> b.r_b) bufs;
    d_b = Array.map (fun (b : Buffer.t) -> b.d_b) bufs;
    nm = Array.map (fun (b : Buffer.t) -> b.nm) bufs;
    inverting = Array.map (fun (b : Buffer.t) -> b.inverting) bufs;
    energy = Array.map (fun (b : Buffer.t) -> b.energy) bufs;
  }

let size p = Array.length p.bufs

let index_of p (b : Buffer.t) =
  let n = Array.length p.bufs in
  let rec go i = if i >= n then -1 else if p.bufs.(i) == b then i else go (i + 1) in
  go 0
