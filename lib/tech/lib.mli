(** Buffer libraries.

    The paper's experiments use a library of 11 buffers — 5 inverting and 6
    non-inverting — of varying power levels. [default_library] provides a
    plausible stand-in spanning roughly a 20x drive range (the IBM cell
    library is proprietary; see DESIGN.md, substitution 3). *)

val default_library : Buffer.t list
(** 11 buffers: 6 non-inverting ([bufx1] .. [bufx32]) and 5 inverting
    ([invx1] .. [invx16]), all with a 0.8 V input noise margin. *)

val non_inverting : Buffer.t list -> Buffer.t list

val inverting : Buffer.t list -> Buffer.t list

val min_resistance : Buffer.t list -> Buffer.t
(** The strongest buffer (smallest [r_b]) of a non-empty library; used by
    Algorithms 1 and 2, whose optimal solutions only ever need it
    (Section III-B). *)

val find : Buffer.t list -> string -> Buffer.t option
(** Look a buffer up by name. *)
