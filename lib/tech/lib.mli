(** Buffer libraries.

    The paper's experiments use a library of 11 buffers — 5 inverting and 6
    non-inverting — of varying power levels. [default_library] provides a
    plausible stand-in spanning roughly a 20x drive range (the IBM cell
    library is proprietary; see DESIGN.md, substitution 3). *)

val default_library : Buffer.t list
(** 11 buffers: 6 non-inverting ([bufx1] .. [bufx32]) and 5 inverting
    ([invx1] .. [invx16]), all with a 0.8 V input noise margin. *)

val non_inverting : Buffer.t list -> Buffer.t list

val inverting : Buffer.t list -> Buffer.t list

val min_resistance : Buffer.t list -> Buffer.t
(** The strongest buffer (smallest [r_b]) of a non-empty library; used by
    Algorithms 1 and 2, whose optimal solutions only ever need it
    (Section III-B). *)

val find : Buffer.t list -> string -> Buffer.t option
(** Look a buffer up by name. *)

type prepared = {
  bufs : Buffer.t array;  (** the library, in its original list order *)
  by_r : Buffer.t array;  (** the same buffers sorted by [r_b] ascending *)
  r_min : float;  (** smallest drive resistance in the library, ohm *)
  c_in : float array;  (** attach parameters in [bufs] order, unboxed *)
  r_b : float array;
  d_b : float array;
  nm : float array;
  inverting : bool array;
  energy : float array;  (** per-insertion switching energy in [bufs] order, J *)
}
(** A buffer library preprocessed once per optimizer run: the DP inner
    loops iterate the unboxed parameter arrays instead of chasing a
    [Buffer.t] record per attach, [r_min] feeds the predictive-pruning
    upstream-resistance bound ({!Rctree.Upbound}), and [by_r] gives the
    drive-strength order Li–Shi-style per-type reasoning wants. [bufs]
    keeps the original list order because candidate tie-breaking is
    defined by library iteration order. *)

val prepare : Buffer.t list -> prepared
(** Raises [Invalid_argument] on an empty library. *)

val size : prepared -> int

val index_of : prepared -> Buffer.t -> int
(** Index of a buffer (by physical identity) in [bufs]; [-1] when the
    buffer is not from this library. Used to bucket candidates into
    per-type statistics. *)
