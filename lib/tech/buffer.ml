type t = {
  name : string;
  inverting : bool;
  c_in : float;
  r_b : float;
  d_b : float;
  nm : float;
}

let make ~name ~inverting ~c_in ~r_b ~d_b ~nm =
  assert (c_in >= 0.0 && r_b > 0.0 && d_b >= 0.0 && nm > 0.0);
  { name; inverting; c_in; r_b; d_b; nm }

let equal a b = a.name = b.name

let gate_delay t ~load = t.d_b +. (t.r_b *. load)

let pp ppf t =
  Format.fprintf ppf "%s%s(r=%.0f c=%.1ff d=%.0fp)" t.name
    (if t.inverting then "~" else "")
    t.r_b (t.c_in *. 1e15) (t.d_b *. 1e12)
