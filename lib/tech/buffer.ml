type t = {
  name : string;
  inverting : bool;
  c_in : float;
  r_b : float;
  d_b : float;
  nm : float;
  energy : float;
}

(* Default switching energy from the drive class: E ~ c_in * Vdd^2 with
   Vdd = 1.2 V, so larger drives (bigger input pins) cost more per
   insertion. Monotone in c_in, which is all the power DP needs when the
   library carries no explicit energy annotation. *)
let default_energy ~c_in = c_in *. 1.44

let make ~name ~inverting ~c_in ~r_b ~d_b ~nm ?energy () =
  assert (c_in >= 0.0 && r_b > 0.0 && d_b >= 0.0 && nm > 0.0);
  let energy = match energy with Some e -> e | None -> default_energy ~c_in in
  assert (energy >= 0.0);
  { name; inverting; c_in; r_b; d_b; nm; energy }

let equal a b = a.name = b.name

let gate_delay t ~load = t.d_b +. (t.r_b *. load)

let pp ppf t =
  Format.fprintf ppf "%s%s(r=%.0f c=%.1ff d=%.0fp)" t.name
    (if t.inverting then "~" else "")
    t.r_b (t.c_in *. 1e15) (t.d_b *. 1e12)
