(** Process / interconnect technology parameters.

    The paper's experiments (Section V) run in "estimation mode": every wire
    is assumed coupled to a single simultaneously switching aggressor with
    slope [slope = vdd /. t_rise], and a fixed fraction [lambda] of each
    wire's total capacitance is coupling capacitance, so the coupled current
    of a wire of capacitance [c] is [lambda *. c *. slope] (eq. 6).

    Units are SI. Geometry lengths are metres; [of_nm] converts the integer
    nanometre grid used by {!Geometry}. *)

type t = {
  r_per_m : float;  (** wire resistance per metre, ohm/m *)
  c_per_m : float;  (** total wire capacitance per metre, F/m *)
  lambda : float;  (** coupling-to-total capacitance ratio, 0..1 *)
  vdd : float;  (** supply voltage, V *)
  t_rise : float;  (** aggressor rise time at its driver output, s *)
  nm_default : float;  (** default sink noise margin, V *)
}

val make :
  r_per_m:float ->
  c_per_m:float ->
  lambda:float ->
  vdd:float ->
  t_rise:float ->
  nm_default:float ->
  t

val default : t
(** The paper's setup: 0.25 um-era global wire (0.08 ohm/um, 0.2 fF/um),
    [lambda = 0.7], [vdd = 1.8] V, [t_rise = 0.25] ns (slope 7.2 V/ns),
    noise margin 0.8 V. Aluminum wiring; see {!copper}. *)

val copper : t
(** [default] rewired in copper: ~55% of the aluminum sheet resistance
    (0.044 ohm/um), everything else unchanged. The paper's introduction
    notes copper "can only provide temporary relief" — the metal-corner
    experiment quantifies how much. *)

val slope : t -> float
(** Aggressor signal slope [vdd /. t_rise], V/s (the paper's sigma). *)

val i_per_m : t -> float
(** Coupled current per metre of victim wire in estimation mode:
    [lambda *. c_per_m *. slope], A/m. *)

val of_nm : int -> float
(** Grid length (nm) to metres. *)

val wire_r : t -> float -> float
(** Resistance of a wire of the given length (m). *)

val wire_c : t -> float -> float
(** Total capacitance of a wire of the given length (m). *)

val wire_i : t -> float -> float
(** Estimation-mode coupled current of a wire of the given length (m). *)
