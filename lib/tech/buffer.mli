(** Buffer (repeater) cell model.

    The paper uses the linear gate model of eq. (3): a buffer [b] has input
    capacitance [c_in], intrinsic output resistance [r_b], intrinsic delay
    [d_b], and a tolerable input noise margin [nm] (Section II). Buffers may
    be inverting (Lillis et al. [18]); polarity is tracked by the dynamic
    programs. All values are SI: farads, ohms, seconds, volts.

    Each buffer additionally carries a per-insertion switching [energy]
    (joules), the cost coordinate of the power-aware DP (DESIGN.md §16).
    Libraries without an explicit annotation get a drive-class default. *)

type t = {
  name : string;
  inverting : bool;
  c_in : float;  (** input pin capacitance, F *)
  r_b : float;  (** output (driving) resistance, ohm *)
  d_b : float;  (** intrinsic delay, s *)
  nm : float;  (** tolerable input noise margin, V *)
  energy : float;  (** per-insertion switching energy, J *)
}

val default_energy : c_in:float -> float
(** Drive-class default when a library has no annotation: [c_in * Vdd^2]
    with Vdd = 1.2 V — monotone in drive strength. *)

val make :
  name:string ->
  inverting:bool ->
  c_in:float ->
  r_b:float ->
  d_b:float ->
  nm:float ->
  ?energy:float ->
  unit ->
  t
(** [energy] defaults to {!default_energy} of [c_in]. *)

val equal : t -> t -> bool

val gate_delay : t -> load:float -> float
(** Eq. (3): [d_b + r_b *. load]. *)

val pp : Format.formatter -> t -> unit
