(** Buffer (repeater) cell model.

    The paper uses the linear gate model of eq. (3): a buffer [b] has input
    capacitance [c_in], intrinsic output resistance [r_b], intrinsic delay
    [d_b], and a tolerable input noise margin [nm] (Section II). Buffers may
    be inverting (Lillis et al. [18]); polarity is tracked by the dynamic
    programs. All values are SI: farads, ohms, seconds, volts. *)

type t = {
  name : string;
  inverting : bool;
  c_in : float;  (** input pin capacitance, F *)
  r_b : float;  (** output (driving) resistance, ohm *)
  d_b : float;  (** intrinsic delay, s *)
  nm : float;  (** tolerable input noise margin, V *)
}

val make :
  name:string -> inverting:bool -> c_in:float -> r_b:float -> d_b:float -> nm:float -> t

val equal : t -> t -> bool

val gate_delay : t -> load:float -> float
(** Eq. (3): [d_b + r_b *. load]. *)

val pp : Format.formatter -> t -> unit
