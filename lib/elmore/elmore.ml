module T = Rctree.Tree

let cap_at t =
  let caps = Array.make (T.node_count t) 0.0 in
  List.iter
    (fun v ->
      caps.(v) <-
        (match T.kind t v with
        | T.Sink s -> s.T.c_sink
        | T.Buffered b -> b.Tech.Buffer.c_in
        | T.Internal | T.Source _ ->
            List.fold_left
              (fun acc c -> acc +. (T.wire_to t c).T.cap +. caps.(c))
              0.0 (T.children t v)))
    (T.postorder t);
  caps

let drive_load t caps g =
  List.fold_left (fun acc c -> acc +. (T.wire_to t c).T.cap +. caps.(c)) 0.0 (T.children t g)

let wire_delay (w : T.wire) ~load = w.T.res *. ((w.T.cap /. 2.0) +. load)

let arrivals t =
  let caps = cap_at t in
  let arr = Array.make (T.node_count t) 0.0 in
  let gate_delay v =
    match T.kind t v with
    | T.Source d -> d.T.d_drv +. (d.T.r_drv *. drive_load t caps v)
    | T.Buffered b -> Tech.Buffer.gate_delay b ~load:(drive_load t caps v)
    | T.Sink _ | T.Internal -> 0.0
  in
  List.iter
    (fun v ->
      if v = T.root t then arr.(v) <- gate_delay v
      else begin
        let w = T.wire_to t v in
        arr.(v) <- arr.(T.parent t v) +. wire_delay w ~load:caps.(v) +. gate_delay v
      end)
    (T.postorder t |> List.rev);
  arr

let sink_arrivals t =
  let arr = arrivals t in
  List.map (fun s -> (s, arr.(s))) (T.sinks t)

let slack t =
  List.fold_left
    (fun acc (s, a) ->
      match T.kind t s with
      | T.Sink sk -> Float.min acc (sk.T.rat -. a)
      | T.Source _ | T.Internal | T.Buffered _ -> acc)
    infinity (sink_arrivals t)

let worst_delay t = List.fold_left (fun acc (_, a) -> Float.max acc a) neg_infinity (sink_arrivals t)
