(** Elmore delay analysis on routing trees (paper Section II-A).

    Implements eqs. (1)-(5): lumped downstream loads, wire delays
    [R_w (C_w/2 + C(v))], the linear gate delay [d + r * load], per-sink
    source-to-sink path delays, and timing slack. Buffered nodes delimit
    stages: the capacitance behind a buffer never loads the upstream
    stage — the stage sees only the buffer's input capacitance.

    These functions recompute everything from scratch; the dynamic
    programs in [Bufins] maintain the same quantities incrementally and
    are tested against this module. *)

val cap_at : Rctree.Tree.t -> float array
(** [cap_at t] maps every node [v] to the capacitance it presents to the
    stage above it (eq. 1): a sink presents [c_sink], a buffered node
    presents its buffer's [c_in], and internal nodes present the sum of
    child wire capacitances and child [cap_at] values. The source entry is
    its stage load. *)

val drive_load : Rctree.Tree.t -> float array -> int -> float
(** [drive_load t caps g] is the load driven by gate [g] (the source or a
    buffered node): the sum over its children of wire capacitance plus the
    child's [cap_at]. [caps] must come from {!cap_at}. *)

val wire_delay : Rctree.Tree.wire -> load:float -> float
(** Eq. (2): [res *. (cap /. 2. +. load)] where [load] is the lumped
    capacitance at the wire's target. *)

val arrivals : Rctree.Tree.t -> float array
(** Arrival time at every node assuming the source input switches at
    [t = 0] (eq. 4): gate delays at the source and at every buffer, wire
    delays along the path. The entry for a buffered node is the time at
    the buffer's {e output}. *)

val sink_arrivals : Rctree.Tree.t -> (int * float) list
(** Arrival times of the real sinks, in tree order. *)

val slack : Rctree.Tree.t -> float
(** Eq. (5): [min over sinks (rat - arrival)]. The circuit meets timing
    iff the result is non-negative. *)

val worst_delay : Rctree.Tree.t -> float
(** Maximum source-to-sink delay. *)
