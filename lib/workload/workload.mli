(** Synthetic testbench standing in for the paper's 500 nets
    (DESIGN.md, substitution 1).

    The paper selects the 500 largest-total-capacitance nets of a PowerPC
    microprocessor — long global nets, mostly few-sink, spanning
    millimetres. We reproduce that population generatively: a sink-count
    mix (Table I's shape), bounding boxes of 2-16 mm half-perimeter,
    plausible driver/sink electricals, and required arrival times set to
    a small margin above a linear buffered-delay estimate so the timing
    constraints of Problem 3 bite without being unreachable. Everything
    is derived deterministically from the seed. *)

type bucket = { label : string; min_sinks : int; max_sinks : int; share : float }

val default_mix : bucket list
(** Sink-count mix: 1 sink 50%, 2 sinks 20%, 3-5 18%, 6-10 9%,
    11-20 3%. *)

type config = {
  nets : int;
  seed : int;
  mix : bucket list;
  hp_min : int;  (** min bbox half-perimeter, nm *)
  hp_max : int;  (** max bbox half-perimeter, nm *)
  rat_margin : float * float;  (** RAT = estimate * uniform margin range *)
}

val default_config : config
(** 500 nets, seed 1998, default mix, 2-16 mm half-perimeter,
    RAT margin 1.05-1.30. *)

val generate : config -> Steiner.Net.t list

val sink_histogram : buckets:bucket list -> Steiner.Net.t list -> (string * int) list
(** Nets per sink-count bucket — the data of Table I. *)

val trees : Tech.Process.t -> Steiner.Net.t list -> (Steiner.Net.t * Rctree.Tree.t) list
(** Steiner topologies for every net. *)

val parallel_bus :
  ?bits:int -> ?pitch:int -> ?len:int -> ?r_drv:float -> ?nm:float -> unit -> Steiner.Net.t list
(** The classic coupling victim: [bits] point-to-point wires of [len] nm
    running in parallel at [pitch] nm (defaults: 16 bits, 400 nm pitch,
    8 mm, 120 ohm drivers, 0.8 V margins). Bit k is named [bitk]. Used
    by the extraction experiments. *)
