module P = Geometry.Point

type bucket = { label : string; min_sinks : int; max_sinks : int; share : float }

let default_mix =
  [
    { label = "1"; min_sinks = 1; max_sinks = 1; share = 0.50 };
    { label = "2"; min_sinks = 2; max_sinks = 2; share = 0.20 };
    { label = "3-5"; min_sinks = 3; max_sinks = 5; share = 0.18 };
    { label = "6-10"; min_sinks = 6; max_sinks = 10; share = 0.09 };
    { label = "11-20"; min_sinks = 11; max_sinks = 20; share = 0.03 };
  ]

type config = {
  nets : int;
  seed : int;
  mix : bucket list;
  hp_min : int;
  hp_max : int;
  rat_margin : float * float;
}

let default_config =
  {
    nets = 500;
    seed = 1998;
    mix = default_mix;
    hp_min = 2_000_000;
    hp_max = 16_000_000;
    rat_margin = (1.05, 1.30);
  }

let pick_bucket rng mix =
  let x = Util.Rng.float rng 1.0 in
  let rec go acc = function
    | [ last ] -> last
    | b :: rest -> if x < acc +. b.share then b else go (acc +. b.share) rest
    | [] -> invalid_arg "Workload: empty mix"
  in
  go 0.0 mix

(* A rough buffered-delay estimate used only to set required arrival
   times: well-buffered global wire runs near-linearly in distance
   (~55 ps/mm in the default technology) plus a driver/gate constant. *)
let rat_estimate dist_nm = (55e-12 *. (float_of_int dist_nm /. 1e6)) +. 150e-12

let gen_net rng cfg idx =
  let b = pick_bucket rng cfg.mix in
  let sinks = b.min_sinks + Util.Rng.int rng (b.max_sinks - b.min_sinks + 1) in
  let hp = cfg.hp_min + Util.Rng.int rng (max 1 (cfg.hp_max - cfg.hp_min)) in
  (* split the half-perimeter into width and height, not too skewed *)
  let w = int_of_float (float_of_int hp *. Util.Rng.range rng 0.25 0.75) in
  let h = hp - w in
  let seen = Hashtbl.create 16 in
  let rec fresh_point () =
    let p = P.make (Util.Rng.int rng (max 1 w)) (Util.Rng.int rng (max 1 h)) in
    if Hashtbl.mem seen p then fresh_point ()
    else begin
      Hashtbl.replace seen p ();
      p
    end
  in
  let source = fresh_point () in
  (* the paper picks the largest-capacitance (longest) nets: keep every
     sink at a global distance from its driver *)
  let rec far_point () =
    let p = fresh_point () in
    if P.manhattan source p * 3 >= hp then p else far_point ()
  in
  let lo, hi = cfg.rat_margin in
  let pins =
    List.init sinks (fun k ->
        let at = far_point () in
        let dist = P.manhattan source at in
        {
          Steiner.Net.pname = Printf.sprintf "s%d" k;
          at;
          c_sink = Util.Rng.range rng 5e-15 50e-15;
          rat = rat_estimate dist *. Util.Rng.range rng lo hi;
          (* static gates tolerate 0.8 V; a fraction of sinks are noise-
             sensitive dynamic-logic inputs (the paper's motivation) *)
          nm =
            (let x = Util.Rng.float rng 1.0 in
             if x < 0.70 then 0.8 else if x < 0.85 then 0.65 else 0.5);
        })
  in
  Steiner.Net.make ~name:(Printf.sprintf "net%03d" idx) ~source
    ~r_drv:(Util.Rng.range rng 30.0 250.0)
    ~d_drv:(Util.Rng.range rng 20e-12 60e-12)
    ~pins

let generate cfg =
  let rng = Util.Rng.create cfg.seed in
  List.init cfg.nets (fun idx -> gen_net rng cfg idx)

let sink_histogram ~buckets nets =
  List.map
    (fun b ->
      let n =
        List.length
          (List.filter
             (fun net ->
               let d = Steiner.Net.degree net in
               d >= b.min_sinks && d <= b.max_sinks)
             nets)
      in
      (b.label, n))
    buckets

let trees process nets =
  List.map (fun net -> (net, Steiner.Build.tree_of_net process net)) nets

let parallel_bus ?(bits = 16) ?(pitch = 400) ?(len = 8_000_000) ?(r_drv = 120.0) ?(nm = 0.8) () =
  List.init bits (fun k ->
      let y = k * pitch in
      Steiner.Net.make
        ~name:(Printf.sprintf "bit%d" k)
        ~source:(P.make 0 y) ~r_drv ~d_drv:30e-12
        ~pins:
          [
            {
              Steiner.Net.pname = Printf.sprintf "bit%d_sink" k;
              at = P.make len y;
              c_sink = 20e-15;
              rat = 3e-9;
              nm;
            };
          ])
