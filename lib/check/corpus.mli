(** Serialized counterexamples: write, parse, replay.

    A corpus entry is one {!Instance.t} in a compact s-expression text
    format, precise enough to replay bit-for-bit ([%.17g] floats) and
    plain enough to read in a diff:

    {v
    (instance
     (oracle alg3-vs-brute)
     (seg-len 0.0015)
     (lib
      (buffer b0 ninv 2e-15 100 3e-11 0.6))
     (tree
      (source 220 1.2e-11)
      (internal 0 feas (wire 0.002 114 2.4e-13 4.3e-05))
      (sink 1 s0 1.5e-14 8e-10 0.5 (wire 0.001 57 1.2e-13 2.1e-05))))
    v}

    Tree nodes are listed depth-first so every parent precedes its
    children; a node's id is its position in the list (the source is 0)
    and [parent] fields refer to those positions. Buffers are
    [(buffer name inv|ninv c_in r_b d_b nm)]; wires are
    [(wire length res cap cur)].

    Failing fuzz instances are shrunk and saved under [test/corpus/];
    committed entries document bugs that were fixed and are replayed by
    CI and the test suite as regressions. *)

val to_string : Instance.t -> string

val of_string : string -> (Instance.t, string) result
(** Never raises: syntax errors, unknown oracles and malformed trees all
    come back as [Error]. [of_string (to_string i)] rebuilds [i]. *)

val save : dir:string -> Instance.t -> string
(** Write the instance under [dir] (created if missing) as
    [<oracle>-<digest8>.corpus] — the digest keys the content, so saving
    the same counterexample twice is idempotent. Returns the path. *)

val load_file : string -> (Instance.t, string) result

val load_dir : string -> (string * (Instance.t, string) result) list
(** Every [*.corpus] file in the directory, sorted by name. Empty when
    the directory does not exist. *)
