type failure = {
  index : int;
  seed : int;
  message : string;
  shrunk : Instance.t;
  shrunk_message : string;
  corpus_path : string option;
}

type report = {
  requested : int;
  tested : int;
  passed : int;
  skipped : int;
  failures : failure list;
  wall_s : float;
  per_s : float;
  jobs : int;
  sched : Engine.Pool.stats;
}

let instance_of_seed ?oracle seed =
  let rng = Util.Rng.create seed in
  match oracle with
  | Some o -> Gen.instance_for o rng
  | None -> Gen.instance rng

let campaign ?mutation ?oracle ?(jobs = 0) ?(minutes = 0.) ?corpus_dir
    ?max_shrink_evals ~seed ~count () =
  let jobs = if jobs <= 0 then Engine.Pool.default_domains () else jobs in
  (* one positive seed per instance, all derived from the master seed up
     front: the instance stream does not depend on the job count *)
  let master = Util.Rng.create seed in
  let seeds =
    Array.init count (fun _ ->
        Int64.to_int (Int64.shift_right_logical (Util.Rng.bits64 master) 1))
  in
  let deadline =
    if minutes > 0. then Some (Util.Clock.now () +. (minutes *. 60.)) else None
  in
  let verdicts : (Instance.t * Diff.verdict) option array = Array.make count None in
  let t0 = Util.Clock.now () in
  (* each worker buffers its verdicts locally (its own minor heap) and
     the shared array is filled after the join, by index — no two
     domains ever write neighbouring cells of [verdicts] concurrently *)
  let buffers, sched =
    Engine.Pool.run ~domains:jobs ~n:count
      ~init:(fun _ -> ref [])
      (fun acc i ->
        let expired =
          match deadline with Some d -> Util.Clock.now () > d | None -> false
        in
        if not expired then begin
          (* Diff.run and Gen never raise, as Pool bodies must not *)
          match instance_of_seed ?oracle seeds.(i) with
          | inst -> acc := (i, (inst, Diff.run ?mutation inst)) :: !acc
          | exception e ->
              let inst = Gen.instance_for Instance.Dp_invariants (Util.Rng.create 0) in
              acc :=
                ( i,
                  ( inst,
                    Diff.Fail
                      (Printf.sprintf "generator raised: %s" (Printexc.to_string e)) ) )
                :: !acc
        end)
  in
  Array.iter
    (fun acc -> List.iter (fun (i, v) -> verdicts.(i) <- Some v) !acc)
    buffers;
  let wall_s = Util.Clock.now () -. t0 in
  let tested = ref 0 and passed = ref 0 and skipped = ref 0 in
  let failures = ref [] in
  Array.iteri
    (fun i -> function
      | None -> ()
      | Some (inst, verdict) -> (
          incr tested;
          match verdict with
          | Diff.Pass -> incr passed
          | Diff.Skip _ -> incr skipped
          | Diff.Fail message ->
              let s =
                Shrink.shrink ?max_evals:max_shrink_evals
                  ~fails:(Diff.fails ?mutation) inst ~message
              in
              let corpus_path =
                Option.map (fun dir -> Corpus.save ~dir s.Shrink.instance) corpus_dir
              in
              failures :=
                {
                  index = i;
                  seed = seeds.(i);
                  message;
                  shrunk = s.Shrink.instance;
                  shrunk_message = s.Shrink.message;
                  corpus_path;
                }
                :: !failures))
    verdicts;
  {
    requested = count;
    tested = !tested;
    passed = !passed;
    skipped = !skipped;
    failures = List.rev !failures;
    wall_s;
    per_s = (if wall_s > 0. then float_of_int !tested /. wall_s else 0.);
    jobs;
    sched;
  }

let replay ?mutation path =
  let files =
    if Sys.is_directory path then List.map fst (Corpus.load_dir path) else [ path ]
  in
  List.map
    (fun file ->
      match Corpus.load_file file with
      | Error m -> (file, Diff.Fail (Printf.sprintf "unreadable corpus entry: %s" m))
      | Ok inst -> (file, Diff.run ?mutation inst))
    files

let summary r =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "fuzz: %d/%d instances tested (%d passed, %d skipped, %d failed) in %.2f s \
     (%.1f/s, %d jobs)"
    r.tested r.requested r.passed r.skipped (List.length r.failures) r.wall_s r.per_s
    r.jobs;
  List.iter
    (fun f ->
      Printf.bprintf b
        "\n  #%d (seed %d): %s\n    shrunk to %d sinks / %d nodes: %s%s" f.index f.seed
        f.message
        (Instance.sink_count f.shrunk)
        (Rctree.Tree.node_count f.shrunk.Instance.tree)
        f.shrunk_message
        (match f.corpus_path with
        | Some p -> Printf.sprintf "\n    saved: %s" p
        | None -> ""))
    r.failures;
  Buffer.contents b
