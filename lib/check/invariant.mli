(** From-scratch invariant checking of buffer-insertion solutions.

    Given the tree an optimizer ran on and the placements it returned,
    recompute everything with the independent {!Bufins.Eval} / {!Noise}
    analyzers and assert the solution is structurally and electrically
    legal — the same shape of evidence as the paper's 3dnoise
    cross-check, but mechanized. The [expect] record carries what the
    optimizer {e claimed} (its count, its predicted slack, whether the
    algorithm guarantees noise cleanliness, whether it was restricted to
    feasible nodes), so a disagreement between the engine's incremental
    bookkeeping and the ground-truth evaluators is itself a violation. *)

type violation = {
  code : string;  (** stable kebab-case class, e.g. ["slack-mismatch"] *)
  node : int;  (** offending node, [-1] when not node-specific *)
  detail : string;
}

val pp_violation : violation -> string

type expect = {
  count : int option;  (** the optimizer's reported buffer count *)
  slack : float option;  (** the optimizer's predicted source slack *)
  noise_clean : bool;
      (** the algorithm guarantees zero noise violations (Alg1/2/3,
          BuffOpt) — also enables the per-gate drive check below *)
  feasible_only : bool;
      (** the optimizer may only buffer feasible nodes (the DP family);
          Algorithms 1/2 place at arbitrary wire offsets instead *)
}

val default_expect : expect
(** No count/slack claims, [noise_clean = false],
    [feasible_only = false]. *)

val check :
  ?expect:expect ->
  Rctree.Tree.t ->
  Rctree.Surgery.placement list ->
  (Bufins.Eval.report, violation list) result
(** Violations checked, in order:

    - [placement-*]: node in range and not the root, distance within
      the parent wire, feasible-node discipline (under
      [feasible_only]), no duplicate positions;
    - [surgery-reject] / [tree-invalid]: {!Rctree.Surgery.apply}
      accepts the placements and {!Rctree.Tree.validate} accepts the
      result;
    - [polarity]: every sink sees an even number of inversions;
    - [count-mismatch]: applied buffer count vs the claim;
    - [slack-mismatch]: {!Elmore} slack of the applied tree vs the
      claim (rel 1e-9);
    - [noise-violation]: any leaf above its margin (under
      [noise_clean]), per eqs. (11)/(12);
    - [gate-drive-noise]: for every gate [g], [r_g * I(g) <= ns(g)] —
      Theorem 1's max-length condition evaluated on each driven stage
      via the independent {!Noise.noise_slack} path (under
      [noise_clean]).

    [Ok report] is the ground-truth evaluation of the applied tree. *)
