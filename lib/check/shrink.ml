module T = Rctree.Tree

type result = {
  instance : Instance.t;
  message : string;
  steps : int;
  evals : int;
}

(* All single edits of [inst], biggest reductions first: dropping a sink
   removes whole subtrees, so try every sink before touching the library
   or the wires. *)
let edits inst =
  let sinks = Instance.sink_count inst in
  let lib = List.length inst.Instance.lib in
  let wires =
    List.filter (fun v -> v <> T.root inst.Instance.tree)
      (List.init (T.node_count inst.Instance.tree) (fun i -> i))
  in
  List.concat
    [
      List.init sinks (fun k () -> Instance.drop_sink inst k);
      List.init lib (fun k () -> Instance.drop_buffer inst k);
      [ (fun () -> Instance.halve_wires inst) ];
      List.map (fun v () -> Instance.halve_wire inst v) wires;
    ]

let shrink ?(max_evals = 300) ~fails inst ~message =
  let evals = ref 0 in
  let steps = ref 0 in
  let current = ref inst in
  let current_msg = ref message in
  let progress = ref true in
  while !progress && !evals < max_evals do
    progress := false;
    let rec try_edits = function
      | [] -> ()
      | edit :: rest -> (
          if !evals >= max_evals then ()
          else
            match edit () with
            | None -> try_edits rest
            | Some smaller -> (
                incr evals;
                match fails smaller with
                | Some msg ->
                    current := smaller;
                    current_msg := msg;
                    incr steps;
                    progress := true
                    (* restart from the strongest edits on the new instance *)
                | None -> try_edits rest))
    in
    try_edits (edits !current)
  done;
  { instance = !current; message = !current_msg; steps = !steps; evals = !evals }
