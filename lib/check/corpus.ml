module T = Rctree.Tree

let f = Printf.sprintf "%.17g"

(* {1 Writer} *)

let buffer_clause (b : Tech.Buffer.t) =
  Printf.sprintf "  (buffer %s %s %s %s %s %s %s)" b.Tech.Buffer.name
    (if b.Tech.Buffer.inverting then "inv" else "ninv")
    (f b.Tech.Buffer.c_in) (f b.Tech.Buffer.r_b) (f b.Tech.Buffer.d_b)
    (f b.Tech.Buffer.nm) (f b.Tech.Buffer.energy)

let wire_clause (w : T.wire) =
  Printf.sprintf "(wire %s %s %s %s)" (f w.T.length) (f w.T.res) (f w.T.cap) (f w.T.cur)

let to_string (inst : Instance.t) =
  let tree = inst.Instance.tree in
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "(instance";
  line " (oracle %s)" (Instance.oracle_name inst.Instance.oracle);
  line " (seg-len %s)" (f inst.Instance.seg_len);
  line " (lib";
  let rec lib_lines = function
    | [] -> ()
    | [ b ] -> line "%s)" (buffer_clause b)
    | b :: rest ->
        line "%s" (buffer_clause b);
        lib_lines rest
  in
  lib_lines inst.Instance.lib;
  line " (tree";
  (* depth-first, parents before children; a node's id in the file is its
     position in this listing *)
  let emitted = Hashtbl.create 16 in
  let next = ref 0 in
  let rec emit v last =
    let my_id = !next in
    Hashtbl.add emitted v my_id;
    incr next;
    let parent_id u = Hashtbl.find emitted u in
    let clause =
      match T.kind tree v with
      | T.Source d -> Printf.sprintf "  (source %s %s)" (f d.T.r_drv) (f d.T.d_drv)
      | T.Sink s ->
          Printf.sprintf "  (sink %d %s %s %s %s %s)"
            (parent_id (T.parent tree v))
            s.T.sname (f s.T.c_sink) (f s.T.rat) (f s.T.nm)
            (wire_clause (T.wire_to tree v))
      | T.Internal ->
          Printf.sprintf "  (internal %d %s %s)"
            (parent_id (T.parent tree v))
            (if T.feasible tree v then "feas" else "infeas")
            (wire_clause (T.wire_to tree v))
      | T.Buffered _ -> invalid_arg "Corpus: buffered trees are not instances"
    in
    let children = T.children tree v in
    (* the final clause also closes (tree and (instance *)
    if last && children = [] then line "%s))" clause else line "%s" clause;
    let rec walk = function
      | [] -> ()
      | [ c ] -> emit c last
      | c :: rest ->
          emit c false;
          walk rest
    in
    walk children
  in
  emit (T.root tree) true;
  Buffer.contents buf

(* {1 Parser} *)

type sexp = Atom of string | List of sexp list

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let tokenize s =
  let toks = ref [] in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = '(' || c = ')' then begin
      toks := String.make 1 c :: !toks;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = ';' then begin
      (* comment to end of line *)
      while !i < n && s.[!i] <> '\n' do
        incr i
      done
    end
    else begin
      let start = !i in
      while
        !i < n
        &&
        let c = s.[!i] in
        c <> '(' && c <> ')' && c <> ' ' && c <> '\t' && c <> '\n' && c <> '\r'
      do
        incr i
      done;
      toks := String.sub s start (!i - start) :: !toks
    end
  done;
  List.rev !toks

let parse_sexp toks =
  let rec one = function
    | [] -> fail "unexpected end of input"
    | "(" :: rest ->
        let items, rest = many rest in
        (List items, rest)
    | ")" :: _ -> fail "unexpected ')'"
    | a :: rest -> (Atom a, rest)
  and many = function
    | ")" :: rest -> ([], rest)
    | [] -> fail "missing ')'"
    | toks ->
        let x, rest = one toks in
        let xs, rest = many rest in
        (x :: xs, rest)
  in
  match one toks with
  | x, [] -> x
  | _, t :: _ -> fail "trailing input after instance: %S" t

let atom = function Atom a -> a | List _ -> fail "expected an atom, got a list"

let num x =
  let a = atom x in
  match float_of_string_opt a with
  | Some v when Float.is_finite v -> v
  | _ -> fail "not a finite number: %S" a

let parse_buffer sx =
  let polarity pol =
    match atom pol with
    | "inv" -> true
    | "ninv" -> false
    | p -> fail "buffer polarity must be inv or ninv, got %S" p
  in
  match sx with
  (* 6-field clause: pre-power corpus entries, drive-class default energy *)
  | List [ Atom "buffer"; name; pol; c_in; r_b; d_b; nm ] ->
      Tech.Buffer.make ~name:(atom name) ~inverting:(polarity pol) ~c_in:(num c_in)
        ~r_b:(num r_b) ~d_b:(num d_b) ~nm:(num nm) ()
  | List [ Atom "buffer"; name; pol; c_in; r_b; d_b; nm; energy ] ->
      Tech.Buffer.make ~name:(atom name) ~inverting:(polarity pol) ~c_in:(num c_in)
        ~r_b:(num r_b) ~d_b:(num d_b) ~nm:(num nm) ~energy:(num energy) ()
  | _ -> fail "malformed (buffer ...) clause"

let parse_wire = function
  | List [ Atom "wire"; length; res; cap; cur ] ->
      T.make_wire ~length:(num length) ~res:(num res) ~cap:(num cap) ~cur:(num cur)
  | _ -> fail "malformed (wire ...) clause"

let parse_tree clauses =
  let b = Rctree.Builder.create () in
  (* ids.(k) = builder id of the k-th clause; parents reference positions *)
  let ids = ref [||] in
  let builder_id pos =
    let a = !ids in
    if pos < 0 || pos >= Array.length a then fail "parent %d not yet defined" pos
    else a.(pos)
  in
  List.iteri
    (fun k clause ->
      let id =
        match clause with
        | List [ Atom "source"; r_drv; d_drv ] ->
            if k <> 0 then fail "(source ...) must be the first tree clause";
            Rctree.Builder.add_source b ~r_drv:(num r_drv) ~d_drv:(num d_drv)
        | List [ Atom "sink"; parent; name; c_sink; rat; nm; wire ] ->
            Rctree.Builder.add_sink b
              ~parent:(builder_id (int_of_float (num parent)))
              ~wire:(parse_wire wire) ~name:(atom name) ~c_sink:(num c_sink)
              ~rat:(num rat) ~nm:(num nm)
        | List [ Atom "internal"; parent; feas; wire ] ->
            let feasible =
              match atom feas with
              | "feas" -> true
              | "infeas" -> false
              | x -> fail "internal feasibility must be feas or infeas, got %S" x
            in
            Rctree.Builder.add_internal b
              ~parent:(builder_id (int_of_float (num parent)))
              ~wire:(parse_wire wire) ~feasible ()
        | _ -> fail "malformed tree clause %d" k
      in
      ids := Array.append !ids [| id |])
    clauses;
  Rctree.Builder.finish b

let interpret = function
  | List (Atom "instance" :: fields) ->
      let oracle = ref None and seg_len = ref None and lib = ref None and tree = ref None in
      List.iter
        (function
          | List [ Atom "oracle"; name ] -> (
              let name = atom name in
              match Instance.oracle_of_name name with
              | Some o -> oracle := Some o
              | None -> fail "unknown oracle %S" name)
          | List [ Atom "seg-len"; v ] -> seg_len := Some (num v)
          | List (Atom "lib" :: bufs) -> lib := Some (List.map parse_buffer bufs)
          | List (Atom "tree" :: clauses) -> tree := Some (parse_tree clauses)
          | _ -> fail "unknown instance field")
        fields;
      let get what = function Some v -> v | None -> fail "missing (%s ...)" what in
      Instance.make
        ~tree:(get "tree" !tree)
        ~lib:(get "lib" !lib)
        ~seg_len:(get "seg-len" !seg_len)
        (get "oracle" !oracle)
  | _ -> fail "expected a top-level (instance ...)"

let of_string s =
  match interpret (parse_sexp (tokenize s)) with
  | inst -> Ok inst
  | exception Bad m -> Error m
  | exception Invalid_argument m -> Error m
  | exception Failure m -> Error m

(* {1 Files} *)

let save ~dir inst =
  (match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let text = to_string inst in
  let digest = String.sub (Digest.to_hex (Digest.string text)) 0 8 in
  let path =
    Filename.concat dir
      (Printf.sprintf "%s-%s.corpus" (Instance.oracle_name inst.Instance.oracle) digest)
  in
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  path

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error m -> Error m

let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.sort compare names;
      Array.to_list names
      |> List.filter (fun n -> Filename.check_suffix n ".corpus")
      |> List.map (fun n ->
             let path = Filename.concat dir n in
             (path, load_file path))
