module T = Rctree.Tree
module S = Rctree.Surgery

type violation = { code : string; node : int; detail : string }

let pp_violation v =
  if v.node >= 0 then Printf.sprintf "[%s] node %d: %s" v.code v.node v.detail
  else Printf.sprintf "[%s] %s" v.code v.detail

type expect = {
  count : int option;
  slack : float option;
  noise_clean : bool;
  feasible_only : bool;
}

let default_expect = { count = None; slack = None; noise_clean = false; feasible_only = false }

(* Matches the [?eps] default of [Noise.violations]: absolute volts. *)
let noise_eps = 1e-9

let check_placements expect tree pls =
  let n = T.node_count tree in
  let bad = ref [] in
  let push code node detail = bad := { code; node; detail } :: !bad in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (p : S.placement) ->
      if p.S.node < 0 || p.S.node >= n then
        push "placement-range" p.S.node (Printf.sprintf "tree has %d nodes" n)
      else if p.S.node = T.root tree then
        push "placement-root" p.S.node "a buffer cannot replace the source"
      else begin
        let w = T.wire_to tree p.S.node in
        if p.S.dist < 0.0 || p.S.dist > w.T.length then
          push "placement-dist" p.S.node
            (Printf.sprintf "dist %.6g outside parent wire of length %.6g" p.S.dist
               w.T.length);
        if expect.feasible_only then begin
          (* the DP family buffers feasible internal nodes, dist = 0 *)
          if p.S.dist <> 0.0 then
            push "placement-offset" p.S.node
              (Printf.sprintf "DP solutions place at nodes, got dist %.6g" p.S.dist);
          (match T.kind tree p.S.node with
          | T.Internal when T.feasible tree p.S.node -> ()
          | T.Internal -> push "placement-infeasible" p.S.node "node is marked infeasible"
          | _ -> push "placement-infeasible" p.S.node "DP solutions buffer internal nodes")
        end;
        let key = (p.S.node, p.S.dist) in
        if Hashtbl.mem seen key then
          push "placement-duplicate" p.S.node
            (Printf.sprintf "two buffers at dist %.6g" p.S.dist)
        else Hashtbl.add seen key ()
      end)
    pls;
  List.rev !bad

(* Inversion parity seen by every sink of the applied tree: along the
   source->sink path the signal flips at each inverting buffer and must
   arrive true (the polarity constraint of Lillis et al. the DPs track). *)
let check_polarity applied =
  List.filter_map
    (fun s ->
      let inversions =
        List.fold_left
          (fun acc v ->
            match T.kind applied v with
            | T.Buffered b when b.Tech.Buffer.inverting -> acc + 1
            | _ -> acc)
          0 (T.path_up applied s)
      in
      if inversions land 1 = 0 then None
      else
        Some
          {
            code = "polarity";
            node = s;
            detail = Printf.sprintf "sink sees %d inversions" inversions;
          })
    (T.sinks applied)

(* Theorem 1 at every driving gate of the applied tree: the noise the
   gate's output resistance injects must fit the downstream stage's noise
   slack, [r_g * I(g) <= ns]. The stage slack at a gate's *output* is
   derived from the children ([Noise.noise_slack] at a buffer node
   reports the buffer *input*'s margin, i.e. the upstream view). *)
let check_gate_drive applied =
  let curs = Noise.cur_at applied in
  let ns = Noise.noise_slack applied in
  List.filter_map
    (fun g ->
      match T.children applied g with
      | [] -> None
      | children ->
          let r_g =
            match T.kind applied g with
            | T.Source d -> d.T.r_drv
            | T.Buffered b -> b.Tech.Buffer.r_b
            | _ -> assert false
          in
          let i_g = Noise.drive_current applied curs g in
          let stage_ns =
            List.fold_left
              (fun acc c ->
                Float.min acc
                  (ns.(c) -. Noise.wire_noise (T.wire_to applied c) ~downstream:curs.(c)))
              infinity children
          in
          if r_g *. i_g <= stage_ns +. noise_eps then None
          else
            Some
              {
                code = "gate-drive-noise";
                node = g;
                detail =
                  Printf.sprintf "r_g*I = %.6g V exceeds stage noise slack %.6g V"
                    (r_g *. i_g) stage_ns;
              })
    (T.gates applied)

let check ?(expect = default_expect) tree pls =
  let bad = check_placements expect tree pls in
  if bad <> [] then Error bad
  else
    match S.apply tree pls with
    | exception Invalid_argument m ->
        Error [ { code = "surgery-reject"; node = -1; detail = m } ]
    | applied -> (
        match T.validate applied with
        | Error m -> Error [ { code = "tree-invalid"; node = -1; detail = m } ]
        | Ok () ->
            let report = Bufins.Eval.of_tree applied in
            let bad = ref (check_polarity applied) in
            let push code detail = bad := { code; node = -1; detail } :: !bad in
            (match expect.count with
            | Some c when c <> report.Bufins.Eval.buffers ->
                push "count-mismatch"
                  (Printf.sprintf "optimizer claimed %d buffers, applied tree has %d" c
                     report.Bufins.Eval.buffers)
            | _ -> ());
            (match expect.slack with
            | Some s
              when not (Util.Fx.approx ~rel:1e-9 ~abs:1e-15 s report.Bufins.Eval.slack)
              ->
                push "slack-mismatch"
                  (Printf.sprintf "optimizer claimed %.17g s, evaluator finds %.17g s" s
                     report.Bufins.Eval.slack)
            | _ -> ());
            if expect.noise_clean then begin
              List.iter
                (fun (v, noise, margin) ->
                  bad :=
                    {
                      code = "noise-violation";
                      node = v;
                      detail = Printf.sprintf "noise %.6g V over margin %.6g V" noise margin;
                    }
                    :: !bad)
                report.Bufins.Eval.noise_violations;
              bad := check_gate_drive applied @ !bad
            end;
            if !bad = [] then Ok report else Error !bad)
