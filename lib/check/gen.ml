module T = Rctree.Tree

let process = Tech.Process.default

let small_buffer =
  Tech.Buffer.make ~name:"b0" ~inverting:false ~c_in:2e-15 ~r_b:100.0 ~d_b:30e-12 ~nm:0.6 ()

let single_lib = [ small_buffer ]

let two_lib =
  [
    small_buffer;
    Tech.Buffer.make ~name:"i0" ~inverting:true ~c_in:1.5e-15 ~r_b:140.0 ~d_b:15e-12 ~nm:0.6 ();
  ]

let mixed_lib =
  [
    Tech.Buffer.make ~name:"fastlow" ~inverting:false ~c_in:2e-15 ~r_b:100.0 ~d_b:10e-12 ~nm:0.3 ();
    Tech.Buffer.make ~name:"slowhigh" ~inverting:false ~c_in:3e-15 ~r_b:120.0 ~d_b:30e-12 ~nm:0.9 ();
  ]

(* The random-attachment tree shape shared by [theorem5_tree] and
   [lowmargin_tree]; only the wire-length and margin regimes differ. *)
let attach_tree rng ~max_wire ~nm_lo ~nm_hi =
  let b = Rctree.Builder.create () in
  let so =
    Rctree.Builder.add_source b
      ~r_drv:(Util.Rng.range rng 120.0 300.0)
      ~d_drv:(Util.Rng.range rng 0.0 50e-12)
  in
  let wire () = T.wire_of_length process (Util.Rng.range rng 0.3e-3 max_wire) in
  let n_sinks = 1 + Util.Rng.int rng 3 in
  let attach = ref [ so ] in
  for k = 0 to n_sinks - 1 do
    let parent = List.nth !attach (Util.Rng.int rng (List.length !attach)) in
    let parent =
      if Util.Rng.bool rng then begin
        let v = Rctree.Builder.add_internal b ~parent ~wire:(wire ()) () in
        attach := v :: !attach;
        v
      end
      else parent
    in
    ignore
      (Rctree.Builder.add_sink b ~parent ~wire:(wire ())
         ~name:(Printf.sprintf "s%d" k)
         ~c_sink:(Util.Rng.range rng 5e-15 40e-15)
         ~rat:(Util.Rng.range rng 0.3e-9 1.5e-9)
         ~nm:(Util.Rng.range rng nm_lo nm_hi))
  done;
  Rctree.Builder.finish b

let theorem5_tree rng = attach_tree rng ~max_wire:2.5e-3 ~nm_lo:0.7 ~nm_hi:1.0

let lowmargin_tree rng = attach_tree rng ~max_wire:3.0e-3 ~nm_lo:0.4 ~nm_hi:0.9

let chain rng =
  let len = Util.Rng.range rng 0.5e-3 15e-3 in
  let r_drv = Util.Rng.range rng 20.0 400.0 in
  let c_sink = Util.Rng.range rng 2e-15 50e-15 in
  Fixtures.two_pin ~r_drv ~c_sink process ~len

let segment_for_brute tree =
  let seg = Rctree.Segment.refine tree ~max_len:1.5e-3 in
  let feasible = List.filter (T.feasible seg) (T.internals seg) in
  if List.length feasible <= 9 then Some seg else None

let random_net rng = Fixtures.random_net rng process ~max_sinks:5 ~max_len:5e-3

(* {1 Front-end fodder: random designs and libraries}

   These feed the parser round-trip oracle, so the float fields are
   arbitrary doubles on purpose: the writers promise bit-identical
   round-trips through [Util.Fx], not just for pretty values. *)

let random_cells rng =
  let n = 3 + Util.Rng.int rng 6 in
  List.init n (fun i ->
      {
        Sta.Cell.cname = Printf.sprintf "c%d_x%d" i (1 + Util.Rng.int rng 8);
        n_inputs = 1 + Util.Rng.int rng 3;
        c_in = Util.Rng.range rng 1e-15 25e-15;
        r_out = Util.Rng.range rng 200.0 9000.0;
        d_intr = Util.Rng.range rng 10e-12 400e-12;
        nm = Util.Rng.range rng 0.3 1.2;
      })

let random_buffers rng =
  let n = 2 + Util.Rng.int rng 4 in
  List.init n (fun i ->
      Tech.Buffer.make
        ~name:(Printf.sprintf "rb%d" i)
        ~inverting:(Util.Rng.bool rng)
        ~c_in:(Util.Rng.range rng 1e-15 10e-15)
        ~r_b:(Util.Rng.range rng 80.0 800.0)
        ~d_b:(Util.Rng.range rng 5e-12 60e-12)
        ~nm:(Util.Rng.range rng 0.3 1.0)
        ~energy:(Util.Rng.range rng 1e-15 20e-15) ())

let random_design rng =
  let cfg =
    {
      Sta.Gen.default_config with
      Sta.Gen.gates = 5 + Util.Rng.int rng 30;
      pis = 3 + Util.Rng.int rng 6;
      seed = Util.Rng.int rng 1_000_000;
    }
  in
  Sta.Gen.random cfg

let instance_for oracle rng =
  match oracle with
  | Instance.Vangin_vs_brute ->
      let lib = if Util.Rng.bool rng then single_lib else two_lib in
      Instance.make ~tree:(theorem5_tree rng) ~lib ~seg_len:1.5e-3 oracle
  | Instance.Alg3_vs_brute ->
      let tree, lib =
        if Util.Rng.bool rng then (theorem5_tree rng, single_lib)
        else (lowmargin_tree rng, mixed_lib)
      in
      Instance.make ~tree ~lib ~seg_len:1.5e-3 oracle
  | Instance.Alg1_vs_alg2 ->
      Instance.make ~tree:(chain rng) ~lib:Tech.Lib.default_library ~seg_len:1.5e-3 oracle
  | Instance.Alg3_vs_vangin ->
      Instance.make ~tree:(random_net rng) ~lib:Tech.Lib.default_library ~seg_len:500e-6
        oracle
  | Instance.Buffopt_problem3 ->
      Instance.make ~tree:(random_net rng) ~lib:Tech.Lib.default_library ~seg_len:700e-6
        oracle
  | Instance.Dp_invariants ->
      Instance.make ~tree:(random_net rng) ~lib:Tech.Lib.default_library ~seg_len:500e-6
        oracle
  | Instance.Dp_trace ->
      Instance.make ~tree:(random_net rng) ~lib:Tech.Lib.default_library ~seg_len:500e-6
        oracle
  | Instance.Pred_vs_sweep ->
      Instance.make ~tree:(random_net rng) ~lib:Tech.Lib.default_library ~seg_len:500e-6
        oracle
  | Instance.Incremental_vs_scratch ->
      Instance.make ~tree:(random_net rng) ~lib:Tech.Lib.default_library ~seg_len:500e-6
        oracle
  | Instance.Parser_roundtrip ->
      (* the tree is only entropy: the oracle derives its designs and
         libraries from the instance's content (Diff), so any valid
         instance works — and corpus replay stays meaningful *)
      Instance.make ~tree:(random_net rng) ~lib:Tech.Lib.default_library ~seg_len:500e-6
        oracle
  | Instance.Power_vs_brute ->
      (* brute-tractable trees; libraries with distinct energies (and an
         inverting buffer) so budgets actually separate solutions *)
      let lib =
        match Util.Rng.int rng 3 with 0 -> single_lib | 1 -> two_lib | _ -> mixed_lib
      in
      Instance.make ~tree:(theorem5_tree rng) ~lib ~seg_len:1.5e-3 oracle
  | Instance.Energy_conservation ->
      Instance.make ~tree:(random_net rng) ~lib:Tech.Lib.default_library ~seg_len:500e-6
        oracle
  | Instance.Power_monotonicity ->
      (* coarser segmenting than the other DP oracles: the ladder runs
         the budgeted DP five times plus a Per_count reference per
         instance, and the 3-axis frontier grows steeply with node
         count; monotonicity itself does not depend on the granularity *)
      Instance.make ~tree:(random_net rng) ~lib:Tech.Lib.default_library ~seg_len:1e-3
        oracle

let instance rng =
  let oracle = Util.Rng.choice rng (Array.of_list Instance.all_oracles) in
  instance_for oracle rng
