(** Differential fuzz campaigns over {!Engine.Pool}.

    A campaign draws [count] instances from {!Gen} — each from its own
    generator seeded by a per-index value derived from the master [seed],
    so the instance stream is identical whatever the job count — runs
    every oracle on the pool, then sequentially shrinks each failure and
    (optionally) saves the minimized repro to a corpus directory.
    Everything is deterministic in [(seed, count)] except wall-clock
    figures and the [minutes] cutoff. *)

type failure = {
  index : int;  (** campaign index of the failing instance *)
  seed : int;  (** per-instance generator seed (replays the instance) *)
  message : string;  (** original failure *)
  shrunk : Instance.t;  (** minimized instance *)
  shrunk_message : string;
  corpus_path : string option;  (** where the repro was saved, if anywhere *)
}

type report = {
  requested : int;
  tested : int;  (** < requested only when the [minutes] budget expires *)
  passed : int;
  skipped : int;
  failures : failure list;  (** in campaign order *)
  wall_s : float;
  per_s : float;  (** tested / wall_s *)
  jobs : int;
  sched : Engine.Pool.stats;
      (** per-worker scheduling counters (jobs, steals, busy seconds)
          from the campaign's pool run — wall-clock flavored, never part
          of the verdict counts, which stay job-count-independent *)
}

val campaign :
  ?mutation:Bufins.Dp.mutation ->
  ?oracle:Instance.oracle ->
  ?jobs:int ->
  ?minutes:float ->
  ?corpus_dir:string ->
  ?max_shrink_evals:int ->
  seed:int ->
  count:int ->
  unit ->
  report
(** [jobs <= 0] (the default) uses {!Engine.Pool.default_domains};
    [minutes <= 0.] (the default) means no time budget. [oracle] pins
    every instance to one oracle (CLI [fuzz --oracle]) instead of the
    default uniform draw over {!Instance.all_oracles}. *)

val replay :
  ?mutation:Bufins.Dp.mutation -> string -> (string * Diff.verdict) list
(** Run every instance at the path — one [*.corpus] file, or a directory
    of them — through its oracle; unparseable files come back as [Fail].
    The committed corpus documents fixed bugs, so a healthy replay is
    all-[Pass] and a replay under the right [mutation] must [Fail]. *)

val summary : report -> string
(** One-paragraph human summary (counts, rate, failure messages). *)
