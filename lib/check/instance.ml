module T = Rctree.Tree

type oracle =
  | Vangin_vs_brute
  | Alg3_vs_brute
  | Alg1_vs_alg2
  | Alg3_vs_vangin
  | Buffopt_problem3
  | Dp_invariants
  | Dp_trace
  | Pred_vs_sweep
  | Incremental_vs_scratch
  | Parser_roundtrip
  | Power_vs_brute
  | Energy_conservation
  | Power_monotonicity

let all_oracles =
  [
    Vangin_vs_brute;
    Alg3_vs_brute;
    Alg1_vs_alg2;
    Alg3_vs_vangin;
    Buffopt_problem3;
    Dp_invariants;
    Dp_trace;
    Pred_vs_sweep;
    Incremental_vs_scratch;
    Parser_roundtrip;
    Power_vs_brute;
    Energy_conservation;
    Power_monotonicity;
  ]

let oracle_name = function
  | Vangin_vs_brute -> "vangin-vs-brute"
  | Alg3_vs_brute -> "alg3-vs-brute"
  | Alg1_vs_alg2 -> "alg1-vs-alg2"
  | Alg3_vs_vangin -> "alg3-vs-vangin"
  | Buffopt_problem3 -> "buffopt-problem3"
  | Dp_invariants -> "dp-invariants"
  | Dp_trace -> "dp-trace"
  | Pred_vs_sweep -> "pred-vs-sweep"
  | Incremental_vs_scratch -> "incremental-vs-scratch"
  | Parser_roundtrip -> "parser"
  | Power_vs_brute -> "power-vs-brute"
  | Energy_conservation -> "energy-conservation"
  | Power_monotonicity -> "power-monotonicity"

let oracle_of_name s = List.find_opt (fun o -> oracle_name o = s) all_oracles

type t = {
  tree : T.t;
  lib : Tech.Buffer.t list;
  seg_len : float;
  oracle : oracle;
}

let make ~tree ~lib ~seg_len oracle =
  if lib = [] then invalid_arg "Instance.make: empty buffer library";
  if not (seg_len > 0.0) then invalid_arg "Instance.make: seg_len must be positive";
  if T.buffer_count tree > 0 then
    invalid_arg "Instance.make: instances are unbuffered trees";
  { tree; lib; seg_len; oracle }

let sink_count t = List.length (T.sinks t.tree)

let size t = T.node_count t.tree + List.length t.lib

(* the smallest wire [halve_wire]s will keep shrinking: below this the
   instance is electrically trivial and further halving only burns the
   shrink budget *)
let min_len = 10e-6

(* Rebuild the tree keeping only the sinks [keep_sink] accepts (and the
   nodes above them), with every surviving parent wire passed through
   [map_wire]. Returns [None] when no sink survives. *)
let rebuild ?(keep_sink = fun _ -> true) ?(map_wire = fun _ w -> w) t0 =
  let tree = t0.tree in
  let keep = Array.make (T.node_count tree) false in
  List.iter (fun s -> if keep_sink s then keep.(s) <- true) (T.sinks tree);
  (* postorder lists children before parents, so one sweep propagates
     "has a kept sink below" to the root *)
  List.iter
    (fun v ->
      if keep.(v) then begin
        let p = T.parent tree v in
        if p >= 0 then keep.(p) <- true
      end)
    (T.postorder tree);
  if not (keep.(T.root tree)) then None
  else begin
    let b = Rctree.Builder.create () in
    let rec add v parent =
      let id =
        match T.kind tree v with
        | T.Source d -> Rctree.Builder.add_source b ~r_drv:d.T.r_drv ~d_drv:d.T.d_drv
        | T.Sink s ->
            Rctree.Builder.add_sink b ~parent
              ~wire:(map_wire v (T.wire_to tree v))
              ~name:s.T.sname ~c_sink:s.T.c_sink ~rat:s.T.rat ~nm:s.T.nm
        | T.Internal ->
            Rctree.Builder.add_internal b ~parent
              ~wire:(map_wire v (T.wire_to tree v))
              ~feasible:(T.feasible tree v) ()
        | T.Buffered _ -> invalid_arg "Instance: buffered trees are not instances"
      in
      List.iter (fun c -> if keep.(c) then add c id) (T.children tree v)
    in
    add (T.root tree) (-1);
    Some { t0 with tree = Rctree.Builder.finish b }
  end

let drop_sink t k =
  let sinks = T.sinks t.tree in
  if k < 0 || k >= List.length sinks || List.length sinks <= 1 then None
  else
    let victim = List.nth sinks k in
    rebuild ~keep_sink:(fun s -> s <> victim) t

let drop_buffer t k =
  if k < 0 || k >= List.length t.lib || List.length t.lib <= 1 then None
  else Some { t with lib = List.filteri (fun i _ -> i <> k) t.lib }

let halve_wires t =
  let longest =
    List.fold_left
      (fun acc v -> if v = T.root t.tree then acc else Float.max acc (T.wire_to t.tree v).T.length)
      0.0
      (List.init (T.node_count t.tree) (fun i -> i))
  in
  if longest < min_len then None
  else rebuild ~map_wire:(fun _ w -> T.scale_wire w 0.5) t

let halve_wire t v =
  if v <= 0 || v >= T.node_count t.tree || v = T.root t.tree then None
  else if (T.wire_to t.tree v).T.length < min_len then None
  else rebuild ~map_wire:(fun u w -> if u = v then T.scale_wire w 0.5 else w) t
