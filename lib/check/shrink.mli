(** Greedy counterexample minimization.

    Given a failing instance and a predicate that re-runs the oracle,
    repeatedly try the structural edits of {!Instance} — drop a sink,
    drop a library buffer, halve every wire, halve one wire — keeping
    the first edit that still fails, until no edit preserves the failure
    (or the evaluation budget runs out). Every edit strictly shrinks the
    instance ({!Instance.size} or total wirelength, floored at
    {!Instance} minimum length), so the loop terminates. *)

type result = {
  instance : Instance.t;  (** the minimized failing instance *)
  message : string;  (** failure message of the minimized instance *)
  steps : int;  (** accepted edits *)
  evals : int;  (** oracle evaluations spent *)
}

val shrink :
  ?max_evals:int ->
  fails:(Instance.t -> string option) ->
  Instance.t ->
  message:string ->
  result
(** [fails] returns [Some message] when the instance still exhibits the
    failure (typically [Diff.run] adapted). [max_evals] bounds oracle
    calls (default 300); the original instance and message are returned
    unchanged if nothing smaller still fails. *)
