(** First-class verification instances.

    An instance bundles everything a differential or invariant check
    needs to run deterministically: an unbuffered routing tree, a buffer
    library, the wire-segmenting length the DP oracles apply, and which
    oracle to run ({!Diff}). Instances are what {!Gen} generates, what
    {!Corpus} serializes and replays, and what {!Shrink} minimizes —
    every structural edit here rebuilds a fresh, validated tree through
    {!Rctree.Builder}, so a shrunk instance is always a legal input to
    every optimizer. *)

type oracle =
  | Vangin_vs_brute  (** Van Ginneken slack = exhaustive delay optimum *)
  | Alg3_vs_brute
      (** Algorithm 3 agrees with the exhaustive noise-constrained
          optimum — feasibility {e and} slack (the PR-1 bug class) *)
  | Alg1_vs_alg2  (** single-sink chains: equal counts, both clean *)
  | Alg3_vs_vangin
      (** noise-constrained never beats unconstrained; an infeasible
          verdict is contradicted by a noise-clean Van Ginneken answer *)
  | Buffopt_problem3
      (** count-indexed buckets exact, clean, consistent with the
          Problem 3 selection rule *)
  | Dp_invariants
      (** every DP driver's solution passes {!Invariant.check}; pruning
          does not change the optimum on small trees; stats sane *)
  | Dp_trace
      (** the winner the DP reconstructs from its trace arena is the
          solution it claims: re-applied and re-evaluated from scratch,
          the placement list has exactly [count] entries and reproduces
          the claimed slack, and a noise-mode winner is noise-clean *)
  | Pred_vs_sweep
      (** the predictive engine ([`Predictive], DESIGN.md §12) returns
          byte-identical outcomes — slack, count, placements, sizes,
          every by_count bucket — to the plain [`Sweep_only] engine in
          delay, noise, Single and Per_count modes, while generating no
          more candidates than it and keeping the drop accounting
          conserved on both sides *)
  | Incremental_vs_scratch
      (** a deterministic sequence of edits — RAT nudges, wire
          rescalings, noise-environment flips — replayed incrementally
          through one resident {!Bufins.Dp.Memo} (dirtying the edited
          path, as the serve daemon does) must produce, at every step
          and in both delay and noise modes, exactly the outcome of a
          fresh scratch run: same feasibility, bit-equal slack,
          identical placements and wire sizes *)
  | Parser_roundtrip
      (** the ingest front end survives adversarial text: random
          designs and libraries round-trip through {!Sta.Netfmt},
          {!Sta.Cellfile}, {!Ingest.Liberty} and {!Ingest.Blif}
          bit-identically, and deterministic mutations of the rendered
          texts (truncations, junk insertions, duplicated lines,
          deleted spans) always parse to [Ok] or a located [Parse] /
          [Error] naming the file — never another exception. The
          random inputs are seeded from the instance's content, so a
          corpus entry replays the same battery. DP [mutation]
          campaigns skip this oracle: there is no engine under test. *)
  | Power_vs_brute
      (** [Dp.Power_bounded] agrees with the exhaustive budget-
          constrained optimum ({!Bufins.Brute.best_slack_power}) at a
          ladder of budgets spanning zero to unconstrained, and every
          winner's energy respects the requested budget — the check the
          {!Bufins.Dp.Bad_power_bound} mutation must trip *)
  | Energy_conservation
      (** the energy the frontier accumulated on the winning candidate
          ([result.energy], reconstructed via {!Bufins.Trace.energy})
          equals the sum of the reconstructed placements' buffer
          energies ({!Bufins.Buffopt.placements_energy}), across delay /
          noise / power modes and every by_count bucket; power-mode
          stats keep the extended conservation identity *)
  | Power_monotonicity
      (** a larger energy budget never yields a worse slack: across an
          increasing budget ladder, [Dp.Power_bounded] slacks are
          non-decreasing, each winner fits its budget, and an
          unconstrained budget reproduces the [Per_count] optimum *)

val all_oracles : oracle list

val oracle_name : oracle -> string
(** Stable kebab-case name used by the corpus format and the CLI. *)

val oracle_of_name : string -> oracle option

type t = {
  tree : Rctree.Tree.t;  (** unbuffered; checked by the constructors *)
  lib : Tech.Buffer.t list;  (** non-empty *)
  seg_len : float;  (** metres; the segmenting the DP oracles apply *)
  oracle : oracle;
}

val make :
  tree:Rctree.Tree.t -> lib:Tech.Buffer.t list -> seg_len:float -> oracle -> t
(** Raises [Invalid_argument] on an empty library, a non-positive
    [seg_len], or a tree that already contains buffers. *)

val sink_count : t -> int

val size : t -> int
(** Node count plus library size — the measure {!Shrink} drives down. *)

(** {1 Shrinking edits}

    Each edit returns [None] when it does not apply (nothing left to
    remove, wires already at the minimum length); otherwise a rebuilt,
    validated instance. Branches left without any sink are pruned. *)

val drop_sink : t -> int -> t option
(** Remove the [k]-th sink (in tree order). [None] when [k] is out of
    range or it is the last sink. *)

val drop_buffer : t -> int -> t option
(** Remove the [k]-th library buffer; [None] on the last one. *)

val halve_wires : t -> t option
(** Scale every wire (length, parasitics, coupled current) by 0.5;
    [None] once the longest wire is below 10 um. *)

val halve_wire : t -> int -> t option
(** Halve only node [v]'s parent wire; [None] for the root, out-of-range
    nodes, or wires below 10 um. *)
