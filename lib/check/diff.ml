module T = Rctree.Tree
module Dp = Bufins.Dp

type verdict = Pass | Skip of string | Fail of string

exception Failed of string

let failf fmt = Printf.ksprintf (fun m -> raise (Failed m)) fmt

let approx = Util.Fx.approx ~rel:1e-9 ~abs:1e-15

(* Brute force enumerates (|lib| + 1) ^ feasible assignments; beyond this
   budget the instance is skipped, not ground through. *)
let brute_budget = 20_000.

let feasible_nodes tree = List.filter (T.feasible tree) (T.internals tree)

let brute_cost lib tree =
  float_of_int (List.length lib + 1) ** float_of_int (List.length (feasible_nodes tree))

let segmented (inst : Instance.t) =
  Rctree.Segment.refine inst.Instance.tree ~max_len:inst.Instance.seg_len

(* Run the invariant checker and turn violations into a failure. *)
let must_hold ~what ?expect tree placements =
  match Invariant.check ?expect tree placements with
  | Ok report -> report
  | Error vs ->
      failf "%s: %s" what (String.concat "; " (List.map Invariant.pp_violation vs))

let dp_expect (r : Dp.result) ~noise_clean =
  {
    Invariant.count = Some r.Dp.count;
    slack = Some r.Dp.slack;
    noise_clean;
    feasible_only = true;
  }

(* {1 Oracles} *)

let vangin_vs_brute ?mutation (inst : Instance.t) =
  let lib = inst.Instance.lib in
  let seg = segmented inst in
  if brute_cost lib seg > brute_budget then Skip "brute force intractable"
  else begin
    let outcome = Dp.run ?mutation ~noise:false ~mode:Dp.Single ~lib seg in
    let r = match outcome.Dp.best with
      | Some r -> r
      | None -> failf "vangin: delay-mode DP returned no solution"
    in
    ignore
      (must_hold ~what:"vangin solution" ~expect:(dp_expect r ~noise_clean:false) seg
         r.Dp.placements);
    match Bufins.Brute.best_slack ~noise:false ~lib seg with
    | None -> failf "brute: no delay-mode assignment (unbuffered should qualify)"
    | Some (best, _) ->
        if not (approx best r.Dp.slack) then
          failf "vangin slack %.17g disagrees with brute optimum %.17g" r.Dp.slack best;
        Pass
  end

let alg3_vs_brute ?mutation (inst : Instance.t) =
  let lib = inst.Instance.lib in
  let seg = segmented inst in
  if brute_cost lib seg > brute_budget then Skip "brute force intractable"
  else begin
    let outcome = Dp.run ?mutation ~noise:true ~mode:Dp.Single ~lib seg in
    let brute = Bufins.Brute.best_slack ~noise:true ~lib seg in
    match (outcome.Dp.best, brute) with
    | None, None -> Pass
    | Some r, None ->
        failf "alg3 claims a noise-clean solution (slack %.17g) but brute finds none"
          r.Dp.slack
    | None, Some (best, _) ->
        (* the PR-1 bug signature: pruning lost the only feasible candidate *)
        failf "alg3 reports infeasible but brute finds a noise-clean slack %.17g" best
    | Some r, Some (best, _) ->
        ignore
          (must_hold ~what:"alg3 solution" ~expect:(dp_expect r ~noise_clean:true) seg
             r.Dp.placements);
        if not (approx best r.Dp.slack) then
          failf "alg3 slack %.17g disagrees with brute optimum %.17g" r.Dp.slack best;
        Pass
  end

let alg1_vs_alg2 (inst : Instance.t) =
  if Instance.sink_count inst <> 1 then Skip "Algorithm 1 needs a single-sink net"
  else begin
    let lib = inst.Instance.lib in
    let tree = inst.Instance.tree in
    (* both climb wires directly: no segmenting, arbitrary offsets *)
    let a1 = try Ok (Bufins.Alg1.run ~lib tree) with Failure m -> Error m in
    let a2 = try Ok (Bufins.Alg2.run ~lib tree) with Failure m -> Error m in
    match (a1, a2) with
    | Error _, Error _ -> Pass
    | Ok r, Error m ->
        failf "alg2 fails (%s) where alg1 places %d buffers" m r.Bufins.Alg1.count
    | Error m, Ok r ->
        failf "alg1 fails (%s) where alg2 places %d buffers" m r.Bufins.Alg2.count
    | Ok r1, Ok r2 ->
        if r1.Bufins.Alg1.count <> r2.Bufins.Alg2.count then
          failf "minimal buffer counts disagree: alg1 %d vs alg2 %d" r1.Bufins.Alg1.count
            r2.Bufins.Alg2.count;
        let expect count =
          { Invariant.count = Some count; slack = None; noise_clean = true; feasible_only = false }
        in
        ignore
          (must_hold ~what:"alg1 solution"
             ~expect:(expect r1.Bufins.Alg1.count)
             tree r1.Bufins.Alg1.placements);
        ignore
          (must_hold ~what:"alg2 solution"
             ~expect:(expect r2.Bufins.Alg2.count)
             tree r2.Bufins.Alg2.placements);
        Pass
  end

let alg3_vs_vangin ?mutation (inst : Instance.t) =
  let lib = inst.Instance.lib in
  let seg = segmented inst in
  let v =
    match (Dp.run ?mutation ~noise:false ~mode:Dp.Single ~lib seg).Dp.best with
    | Some r -> r
    | None -> failf "vangin: delay-mode DP returned no solution"
  in
  ignore
    (must_hold ~what:"vangin solution" ~expect:(dp_expect v ~noise_clean:false) seg
       v.Dp.placements);
  match (Dp.run ?mutation ~noise:true ~mode:Dp.Single ~lib seg).Dp.best with
  | Some r ->
      ignore
        (must_hold ~what:"alg3 solution" ~expect:(dp_expect r ~noise_clean:true) seg
           r.Dp.placements);
      (* alg3 explores a subset of vangin's candidates *)
      if r.Dp.slack > v.Dp.slack +. 1e-12 then
        failf "alg3 slack %.17g exceeds vangin's unconstrained optimum %.17g" r.Dp.slack
          v.Dp.slack;
      Pass
  | None ->
      (* no noise-feasible solution claimed: then neither the delay-optimal
         solution nor the bare tree may evaluate noise-clean *)
      let applied = Bufins.Eval.apply seg v.Dp.placements in
      if Bufins.Eval.noise_clean applied then
        failf "alg3 reports infeasible but vangin's solution is noise-clean";
      if Bufins.Eval.noise_clean (Bufins.Eval.of_tree seg) then
        failf "alg3 reports infeasible but the unbuffered tree is noise-clean";
      Pass

let buffopt_problem3 ?mutation (inst : Instance.t) =
  let lib = inst.Instance.lib in
  let seg = segmented inst in
  let kmax = 8 in
  let outcome = Dp.run ?mutation ~noise:true ~mode:(Dp.Per_count kmax) ~lib seg in
  Array.iteri
    (fun k -> function
      | None -> ()
      | Some (r : Dp.result) ->
          if r.Dp.count <> k then
            failf "bucket %d holds a %d-buffer solution" k r.Dp.count;
          ignore
            (must_hold
               ~what:(Printf.sprintf "bucket-%d solution" k)
               ~expect:(dp_expect r ~noise_clean:true) seg r.Dp.placements))
    outcome.Dp.by_count;
  (* best = the bucket maximum *)
  let bucket_best =
    Array.fold_left
      (fun acc -> function
        | None -> acc
        | Some (r : Dp.result) -> Float.max acc r.Dp.slack)
      neg_infinity outcome.Dp.by_count
  in
  (match outcome.Dp.best with
  | Some r when not (approx r.Dp.slack bucket_best) ->
      failf "best slack %.17g is not the bucket maximum %.17g" r.Dp.slack bucket_best
  | None when bucket_best > neg_infinity -> failf "best = None despite non-empty buckets"
  | _ -> ());
  (* the production Problem 3 driver (never mutated) must agree with the
     engine-under-test's buckets *)
  (match (Bufins.Buffopt.problem3 ~kmax ~lib seg, outcome.Dp.best) with
  | None, None -> ()
  | Some _, None -> failf "engine reports infeasible but the Problem 3 driver succeeds"
  | None, Some _ -> failf "Problem 3 driver reports infeasible but the engine succeeds"
  | Some p3, Some _ -> (
      let r = p3.Bufins.Buffopt.result in
      match outcome.Dp.by_count.(r.Dp.count) with
      | Some b when approx b.Dp.slack r.Dp.slack -> ()
      | Some b ->
          failf "Problem 3 picks count %d slack %.17g, engine bucket holds %.17g"
            r.Dp.count r.Dp.slack b.Dp.slack
      | None -> failf "Problem 3 picks count %d, an empty engine bucket" r.Dp.count));
  Pass

let dp_invariants ?mutation (inst : Instance.t) =
  let lib = inst.Instance.lib in
  let seg = segmented inst in
  let v = Bufins.Vangin.run ~lib seg in
  ignore
    (must_hold ~what:"vangin solution" ~expect:(dp_expect v ~noise_clean:false) seg
       v.Dp.placements);
  (* DelayOpt(k): counts bounded, slack monotone in the budget *)
  let prev = ref neg_infinity in
  for k = 0 to 2 do
    let r = Bufins.Vangin.run_max ~max_buffers:k ~lib seg in
    if r.Dp.count > k then failf "DelayOpt(%d) used %d buffers" k r.Dp.count;
    ignore
      (must_hold
         ~what:(Printf.sprintf "DelayOpt(%d) solution" k)
         ~expect:(dp_expect r ~noise_clean:false) seg r.Dp.placements);
    if r.Dp.slack < !prev -. 1e-12 then
      failf "DelayOpt(%d) slack %.17g below DelayOpt(%d)'s %.17g" k r.Dp.slack (k - 1)
        !prev;
    prev := Float.max !prev r.Dp.slack
  done;
  if v.Dp.slack < !prev -. 1e-12 then
    failf "unbounded vangin slack %.17g below DelayOpt(2)'s %.17g" v.Dp.slack !prev;
  let outcome = Dp.run ?mutation ~noise:true ~mode:Dp.Single ~lib seg in
  (match outcome.Dp.best with
  | Some r ->
      ignore
        (must_hold ~what:"alg3 solution" ~expect:(dp_expect r ~noise_clean:true) seg
           r.Dp.placements)
  | None -> ());
  (* pruning must not change the optimum (Ablation B, small trees only) *)
  if
    List.length (feasible_nodes seg) <= 7
    && List.length lib <= 2
  then begin
    let un = Dp.run ?mutation ~prune:false ~noise:true ~mode:Dp.Single ~lib seg in
    match (outcome.Dp.best, un.Dp.best) with
    | Some a, Some b when not (approx a.Dp.slack b.Dp.slack) ->
        failf "pruned slack %.17g differs from unpruned %.17g" a.Dp.slack b.Dp.slack
    | Some _, None -> failf "pruned run feasible, unpruned infeasible"
    | None, Some b -> failf "pruning lost the only feasible solution (slack %.17g)" b.Dp.slack
    | _ -> ()
  end;
  let s = outcome.Dp.stats in
  if s.Dp.generated <= 0 then failf "stats: generated = %d" s.Dp.generated;
  if s.Dp.pruned < 0 || s.Dp.pruned > s.Dp.generated then
    failf "stats: pruned %d out of %d generated" s.Dp.pruned s.Dp.generated;
  if s.Dp.pred_pruned < 0 then failf "stats: pred_pruned = %d" s.Dp.pred_pruned;
  if s.Dp.power_pruned <> 0 then
    failf "stats: non-power run reports power_pruned = %d" s.Dp.power_pruned;
  if
    Dp.considered s
    <> Dp.survivors s + s.Dp.pruned + s.Dp.pred_pruned + s.Dp.power_pruned
  then
    failf "stats: conservation broken: considered %d <> survivors %d + pruned %d + pred %d + power %d"
      (Dp.considered s) (Dp.survivors s) s.Dp.pruned s.Dp.pred_pruned s.Dp.power_pruned;
  if s.Dp.peak_width <= 0 || s.Dp.peak_width > s.Dp.generated then
    failf "stats: peak width %d vs %d generated" s.Dp.peak_width s.Dp.generated;
  (* arena 0 is legitimate: every sink candidate shares the arena's
     preallocated Leaf, so a net with no feasible insertion site
     allocates nothing *)
  if s.Dp.arena < 0 then failf "stats: trace arena size %d" s.Dp.arena;
  if s.Dp.arena > s.Dp.generated + 1 then
    failf "stats: arena %d exceeds generated %d + leaf" s.Dp.arena s.Dp.generated;
  if s.Dp.minor_words < 0.0 then failf "stats: minor words %.0f" s.Dp.minor_words;
  (* noise mode never applies the slope rule, knob or not *)
  if s.Dp.pred_pruned <> 0 then
    failf "stats: noise-mode run reports pred_pruned = %d" s.Dp.pred_pruned;
  (* the sweep-only engine must report no predictive activity at all and
     reproduce the (predictive-default) delay-mode slack bit-for-bit *)
  let sw = Dp.run ?mutation ~pruning:`Sweep_only ~noise:false ~mode:Dp.Single ~lib seg in
  if sw.Dp.stats.Dp.pred_pruned <> 0 then
    failf "stats: Sweep_only run reports pred_pruned = %d" sw.Dp.stats.Dp.pred_pruned;
  (match sw.Dp.best with
  | Some b when b.Dp.slack <> v.Dp.slack ->
      failf "Sweep_only delay slack %.17g differs from predictive %.17g" b.Dp.slack
        v.Dp.slack
  | None -> failf "Sweep_only delay-mode DP returned no solution"
  | Some _ -> ());
  Pass

(* The trace-arena oracle: the DP no longer carries placement lists on
   its candidates, it reconstructs the winners from the solution-trace
   arena at the end of the run. Whatever that reconstruction returns is
   re-applied to the tree and re-evaluated from scratch with Eval (Elmore
   + Devgan); the claimed count, slack and — in noise mode — noise
   cleanliness must all be reproduced exactly. A bug anywhere on the
   trace path (wrong predecessor handle, missed Join branch, stale
   Resize) shows up here as a placement list that does not rebuild the
   claimed numbers. *)
let dp_trace ?mutation (inst : Instance.t) =
  let lib = inst.Instance.lib in
  let seg = segmented inst in
  let check ~what ~noise (r : Dp.result) =
    if List.length r.Dp.placements <> r.Dp.count then
      failf "%s: %d placements for a claimed count of %d" what
        (List.length r.Dp.placements) r.Dp.count;
    let rep = Bufins.Eval.apply seg r.Dp.placements in
    if rep.Bufins.Eval.buffers <> r.Dp.count then
      failf "%s: applied tree holds %d buffers, claimed %d" what
        rep.Bufins.Eval.buffers r.Dp.count;
    if not (approx rep.Bufins.Eval.slack r.Dp.slack) then
      failf "%s: re-evaluated slack %.17g does not reproduce the claimed %.17g" what
        rep.Bufins.Eval.slack r.Dp.slack;
    if noise && not (Bufins.Eval.noise_clean rep) then
      failf "%s: claimed noise-clean winner violates %d margins (worst ratio %.3f)" what
        (List.length rep.Bufins.Eval.noise_violations)
        rep.Bufins.Eval.worst_noise_ratio;
    (* a buffered winner must have paid arena nodes for its trace;
       an unbuffered one on an insertion-free net legitimately pays
       none (the shared Leaf is preallocated) *)
    if r.Dp.stats.Dp.arena < 0 || (r.Dp.count > 0 && r.Dp.stats.Dp.arena = 0) then
      failf "%s: trace arena size %d for a %d-buffer winner" what r.Dp.stats.Dp.arena
        r.Dp.count
  in
  (match (Dp.run ?mutation ~noise:false ~mode:Dp.Single ~lib seg).Dp.best with
  | Some r -> check ~what:"delay winner" ~noise:false r
  | None -> failf "delay-mode DP returned no solution");
  (match (Dp.run ?mutation ~noise:true ~mode:Dp.Single ~lib seg).Dp.best with
  | Some r -> check ~what:"noise winner" ~noise:true r
  | None -> ());
  let o = Dp.run ?mutation ~noise:true ~mode:(Dp.Per_count 8) ~lib seg in
  Array.iteri
    (fun k -> function
      | None -> ()
      | Some (r : Dp.result) ->
          if r.Dp.count <> k then failf "bucket %d holds a %d-buffer solution" k r.Dp.count;
          check ~what:(Printf.sprintf "bucket-%d winner" k) ~noise:true r)
    o.Dp.by_count;
  Pass

(* The predictive-pruning oracle (DESIGN.md §12): the [`Predictive]
   engine must be indistinguishable from [`Sweep_only] on everything an
   optimizer returns — bit-equal slacks, identical placements and wire
   sizes, bucket-for-bucket equal by_count arrays — across delay and
   noise modes, Single and Per_count. Only the statistics may differ,
   and those in one direction: the predictive side materializes no more
   candidates than the sweep side, looks at no more than the sweep side
   generates, and both sides' drop accounting is conserved. A mutation
   is passed to BOTH sides, so an engine bug that breaks predictive and
   sweep-only runs identically is the other oracles' business; what this
   one catches is exactly divergence — e.g. [Loose_pred_bound]
   over-pruning the predictive side. *)
let pred_vs_sweep ?mutation (inst : Instance.t) =
  let lib = inst.Instance.lib in
  let seg = segmented inst in
  let eq_placements what (a : Rctree.Surgery.placement list) b =
    if List.length a <> List.length b then
      failf "%s: %d placements vs %d" what (List.length a) (List.length b);
    List.iter2
      (fun (p : Rctree.Surgery.placement) (q : Rctree.Surgery.placement) ->
        if
          p.Rctree.Surgery.node <> q.Rctree.Surgery.node
          || p.Rctree.Surgery.dist <> q.Rctree.Surgery.dist
          || p.Rctree.Surgery.buffer.Tech.Buffer.name
             <> q.Rctree.Surgery.buffer.Tech.Buffer.name
        then
          failf "%s: placement (%d, %.17g, %s) vs (%d, %.17g, %s)" what
            p.Rctree.Surgery.node p.Rctree.Surgery.dist
            p.Rctree.Surgery.buffer.Tech.Buffer.name q.Rctree.Surgery.node
            q.Rctree.Surgery.dist q.Rctree.Surgery.buffer.Tech.Buffer.name)
      a b
  in
  let eq_result what (a : Dp.result option) (b : Dp.result option) =
    match (a, b) with
    | None, None -> ()
    | Some a, None -> failf "%s: predictive finds slack %.17g, sweep none" what a.Dp.slack
    | None, Some b -> failf "%s: sweep finds slack %.17g, predictive none" what b.Dp.slack
    | Some a, Some b ->
        if a.Dp.slack <> b.Dp.slack then
          failf "%s: slack %.17g vs %.17g" what a.Dp.slack b.Dp.slack;
        if a.Dp.count <> b.Dp.count then failf "%s: count %d vs %d" what a.Dp.count b.Dp.count;
        eq_placements what a.Dp.placements b.Dp.placements;
        if a.Dp.sizes <> b.Dp.sizes then failf "%s: wire-size choices differ" what
  in
  let conserved what (s : Dp.stats) =
    if
      Dp.considered s
      <> Dp.survivors s + s.Dp.pruned + s.Dp.pred_pruned + s.Dp.power_pruned
    then
      failf "%s: accounting broken: considered %d <> survivors %d + pruned %d + pred %d + power %d"
        what (Dp.considered s) (Dp.survivors s) s.Dp.pruned s.Dp.pred_pruned
        s.Dp.power_pruned
  in
  let check what ~noise ~mode =
    let p = Dp.run ?mutation ~pruning:`Predictive ~noise ~mode ~lib seg in
    let s = Dp.run ?mutation ~pruning:`Sweep_only ~noise ~mode ~lib seg in
    eq_result what p.Dp.best s.Dp.best;
    let pb = p.Dp.by_count and sb = s.Dp.by_count in
    if Array.length pb <> Array.length sb then
      failf "%s: by_count length %d vs %d" what (Array.length pb) (Array.length sb);
    Array.iteri
      (fun k a -> eq_result (Printf.sprintf "%s bucket %d" what k) a sb.(k))
      pb;
    let ps = p.Dp.stats and ss = s.Dp.stats in
    conserved (what ^ " predictive") ps;
    conserved (what ^ " sweep") ss;
    if ss.Dp.pred_pruned <> 0 then
      failf "%s: sweep side reports pred_pruned = %d" what ss.Dp.pred_pruned;
    if ps.Dp.generated > ss.Dp.generated then
      failf "%s: predictive materialized %d > sweep's %d" what ps.Dp.generated
        ss.Dp.generated;
    if Dp.considered ps > ss.Dp.generated then
      failf "%s: predictive considered %d > sweep generated %d" what (Dp.considered ps)
        ss.Dp.generated
  in
  check "delay/single" ~noise:false ~mode:Dp.Single;
  check "delay/per-count" ~noise:false ~mode:(Dp.Per_count 8);
  check "noise/single" ~noise:true ~mode:Dp.Single;
  check "noise/per-count" ~noise:true ~mode:(Dp.Per_count 8);
  Pass

(* The incremental-DP oracle (DESIGN.md §14): a deterministic schedule
   of edits — RAT nudges, wire rescalings, noise-environment flips — is
   replayed twice. The incremental side threads one resident
   {!Dp.Memo} per mode through every step and invalidates exactly what
   the serve daemon would: the edited node's path to the root for RAT
   and wire edits, the whole memo for a noise-environment change. The
   scratch side runs a fresh memo-less DP per step. Every step, in
   delay and noise mode alike, the two must agree exactly — same
   feasibility, bit-equal slack, identical placements and wire sizes.
   The [Stale_memo] mutation under-invalidates (the edited node only,
   ancestors left holding tables computed for the old subtree) and is
   exactly what this oracle exists to catch. *)
let incremental_vs_scratch ?mutation (inst : Instance.t) =
  let lib = inst.Instance.lib in
  let seg = segmented inst in
  let memo_d = Dp.Memo.create () and memo_n = Dp.Memo.create () in
  let dirty tree v =
    if mutation = Some Dp.Stale_memo then begin
      Dp.Memo.dirty_node memo_d v;
      Dp.Memo.dirty_node memo_n v
    end
    else begin
      Dp.Memo.dirty memo_d tree v;
      Dp.Memo.dirty memo_n tree v
    end
  in
  let eq_step what (a : Dp.result option) (b : Dp.result option) =
    match (a, b) with
    | None, None -> ()
    | Some a, None ->
        failf "%s: incremental finds slack %.17g, scratch none" what a.Dp.slack
    | None, Some b ->
        failf "%s: scratch finds slack %.17g, incremental none" what b.Dp.slack
    | Some a, Some b ->
        if a.Dp.slack <> b.Dp.slack then
          failf "%s: slack %.17g vs scratch %.17g" what a.Dp.slack b.Dp.slack;
        if a.Dp.count <> b.Dp.count then
          failf "%s: count %d vs scratch %d" what a.Dp.count b.Dp.count;
        if a.Dp.placements <> b.Dp.placements then failf "%s: placements differ" what;
        if a.Dp.sizes <> b.Dp.sizes then failf "%s: wire-size choices differ" what
  in
  let check step tree =
    List.iter
      (fun (tag, noise, memo) ->
        let inc = Dp.run ?mutation ~memo ~noise ~mode:Dp.Single ~lib tree in
        let scr = Dp.run ?mutation ~noise ~mode:Dp.Single ~lib tree in
        eq_step (Printf.sprintf "step %d %s" step tag) inc.Dp.best scr.Dp.best)
      [ ("delay", false, memo_d); ("noise", true, memo_n) ]
  in
  (* the edit schedule is a pure function of the instance, so corpus
     replays are deterministic *)
  let rng =
    Util.Rng.create ((31 * T.node_count seg) + Instance.sink_count inst)
  in
  let sinks = Array.of_list (T.sinks seg) in
  let rec non_root () =
    let v = Util.Rng.int rng (T.node_count seg) in
    if v = T.root seg then non_root () else v
  in
  let tree = ref seg in
  check 0 !tree;
  for step = 1 to 6 do
    (match Util.Rng.int rng 3 with
    | 0 ->
        (* RAT nudge on one sink *)
        let s = sinks.(Util.Rng.int rng (Array.length sinks)) in
        let rat =
          match T.kind !tree s with
          | T.Sink sk -> sk.T.rat
          | T.Source _ | T.Internal | T.Buffered _ -> assert false
        in
        tree := T.with_sink_rat !tree s ~rat:(rat *. Util.Rng.range rng 0.6 1.4);
        dirty !tree s
    | 1 ->
        (* rescale one wire's parasitics (a re-segmenting-style edit
           that keeps node ids stable) *)
        let v = non_root () in
        let f = Util.Rng.range rng 0.8 1.25 in
        tree :=
          T.map_wires !tree (fun u w ->
              if u = v then { w with T.res = w.T.res *. f; T.cap = w.T.cap *. f }
              else w);
        dirty !tree v
    | _ ->
        (* noise-environment flip: every coupled current scales, so
           every cached table is suspect — full invalidation *)
        let f = if Util.Rng.bool rng then 0.5 else 1.8 in
        tree := T.map_wires !tree (fun _ w -> { w with T.cur = w.T.cur *. f });
        Dp.Memo.clear memo_d;
        Dp.Memo.clear memo_n);
    check step !tree
  done;
  Pass

(* {2 Power oracles (DESIGN.md §16)}

   The budget ladder is a pure function of the instance — anchored at
   the energy of the (unmutated) unconstrained delay optimum — so a
   corpus entry replays the exact same budgets. *)

let power_kmax = 8

let power_ladder ~lib seg =
  let un = Bufins.Vangin.run_max ~max_buffers:power_kmax ~lib seg in
  let e = un.Dp.energy in
  let cheapest =
    List.fold_left
      (fun acc (b : Tech.Buffer.t) -> Float.min acc b.Tech.Buffer.energy)
      infinity lib
  in
  let priciest =
    List.fold_left
      (fun acc (b : Tech.Buffer.t) -> Float.max acc b.Tech.Buffer.energy)
      0.0 lib
  in
  let generous = (float_of_int power_kmax *. priciest) +. e in
  (un, [ 0.0; cheapest *. 0.99; e *. 0.5; e; generous ])

(* accumulated frontier energy and the placement-list sum take different
   addition orders, so the budget check leaves one part in 2^52 of
   rounding headroom *)
let fits_budget energy budget = energy <= budget +. (Float.abs budget *. 1e-12) +. 1e-27

let check_energy ~what (r : Dp.result) =
  let sum = Bufins.Buffopt.placements_energy r.Dp.placements in
  if not (approx r.Dp.energy sum) then
    failf "%s: frontier energy %.17g differs from the placements' sum %.17g" what
      r.Dp.energy sum;
  if r.Dp.energy < 0.0 then failf "%s: negative solution energy %.17g" what r.Dp.energy;
  if r.Dp.count = 0 && r.Dp.energy <> 0.0 then
    failf "%s: zero-buffer solution carries energy %.17g" what r.Dp.energy

let power_vs_brute ?mutation (inst : Instance.t) =
  let lib = inst.Instance.lib in
  let seg = segmented inst in
  if brute_cost lib seg > brute_budget then Skip "brute force intractable"
  else begin
    let kmax = max power_kmax (List.length (feasible_nodes seg)) in
    let _, budgets = power_ladder ~lib seg in
    List.iter
      (fun budget ->
        let outcome =
          Dp.run ?mutation ~noise:false ~mode:(Dp.Power_bounded { budget; kmax }) ~lib seg
        in
        let r =
          match outcome.Dp.best with
          | Some r -> r
          | None -> failf "power DP returned no solution at budget %.17g" budget
        in
        ignore
          (must_hold ~what:"power solution" ~expect:(dp_expect r ~noise_clean:false) seg
             r.Dp.placements);
        check_energy ~what:"power winner" r;
        if not (fits_budget r.Dp.energy budget) then
          failf "winner energy %.17g exceeds the budget %.17g" r.Dp.energy budget;
        match Bufins.Brute.best_slack_power ~budget ~lib seg with
        | None -> failf "brute: no budget-feasible assignment (unbuffered should qualify)"
        | Some (best, _, _) ->
            if not (approx best r.Dp.slack) then
              failf "power slack %.17g at budget %.17g disagrees with brute optimum %.17g"
                r.Dp.slack budget best)
      budgets;
    Pass
  end

let energy_conservation ?mutation (inst : Instance.t) =
  let lib = inst.Instance.lib in
  let seg = segmented inst in
  let stats_ok ~what ~power (s : Dp.stats) =
    if
      Dp.considered s
      <> Dp.survivors s + s.Dp.pruned + s.Dp.pred_pruned + s.Dp.power_pruned
    then
      failf "%s: accounting broken: considered %d <> survivors %d + pruned %d + pred %d + power %d"
        what (Dp.considered s) (Dp.survivors s) s.Dp.pruned s.Dp.pred_pruned
        s.Dp.power_pruned;
    if s.Dp.power_pruned < 0 then failf "%s: power_pruned = %d" what s.Dp.power_pruned;
    if (not power) && s.Dp.power_pruned <> 0 then
      failf "%s: non-power run reports power_pruned = %d" what s.Dp.power_pruned
  in
  let outcome_ok ~what ~power (o : Dp.outcome) =
    (match o.Dp.best with
    | Some r -> check_energy ~what:(what ^ " best") r
    | None -> ());
    Array.iteri
      (fun k -> function
        | None -> ()
        | Some (r : Dp.result) ->
            check_energy ~what:(Printf.sprintf "%s bucket %d" what k) r)
      o.Dp.by_count;
    stats_ok ~what ~power o.Dp.stats
  in
  outcome_ok ~what:"delay/single" ~power:false
    (Dp.run ?mutation ~noise:false ~mode:Dp.Single ~lib seg);
  outcome_ok ~what:"noise/single" ~power:false
    (Dp.run ?mutation ~noise:true ~mode:Dp.Single ~lib seg);
  outcome_ok ~what:"noise/per-count" ~power:false
    (Dp.run ?mutation ~noise:true ~mode:(Dp.Per_count 6) ~lib seg);
  let un, _ = power_ladder ~lib seg in
  let budget = un.Dp.energy *. 0.5 in
  outcome_ok ~what:"power" ~power:true
    (Dp.run ?mutation ~noise:false
       ~mode:(Dp.Power_bounded { budget; kmax = power_kmax })
       ~lib seg);
  Pass

let power_monotonicity ?mutation (inst : Instance.t) =
  let lib = inst.Instance.lib in
  let seg = segmented inst in
  let un, budgets = power_ladder ~lib seg in
  let prev = ref neg_infinity in
  List.iter
    (fun budget ->
      let outcome =
        Dp.run ?mutation ~noise:false
          ~mode:(Dp.Power_bounded { budget; kmax = power_kmax })
          ~lib seg
      in
      let r =
        match outcome.Dp.best with
        | Some r -> r
        | None -> failf "power DP returned no solution at budget %.17g" budget
      in
      if not (fits_budget r.Dp.energy budget) then
        failf "winner energy %.17g exceeds the budget %.17g" r.Dp.energy budget;
      if r.Dp.slack < !prev then
        failf "slack regressed under a larger budget: %.17g after %.17g at budget %.17g"
          r.Dp.slack !prev budget;
      prev := r.Dp.slack)
    budgets;
  (* the generous final budget is unconstrained: the Per_count optimum
     (same kmax, same engine arithmetic) must be reproduced bit-for-bit *)
  let reference = Dp.run ?mutation ~noise:false ~mode:(Dp.Per_count power_kmax) ~lib seg in
  (match (reference.Dp.best, !prev) with
  | Some b, s when b.Dp.slack <> s ->
      failf "unconstrained-budget slack %.17g differs from Per_count optimum %.17g" s
        b.Dp.slack
  | None, _ -> failf "Per_count reference returned no solution"
  | Some _, _ -> ());
  ignore un;
  Pass

(* {2 Parser round-trip oracle}

   No optimizer runs here: the system under test is the ingest front
   end. The instance contributes only entropy — a seed hashed from its
   content — so a corpus entry replays the exact same designs,
   libraries and text mutations. *)

let content_seed (inst : Instance.t) =
  (* FNV-1a over the fields that define the instance *)
  let tree = inst.Instance.tree in
  let h = ref 0xcbf29ce484222325L in
  let mix64 b = h := Int64.mul (Int64.logxor !h b) 0x100000001b3L in
  let mixi i = mix64 (Int64.of_int i) in
  let mixf f = mix64 (Int64.bits_of_float f) in
  mixi (T.node_count tree);
  List.iter
    (fun v ->
      mixi v;
      if v <> T.root tree then begin
        let w = T.wire_to tree v in
        mixf w.T.length;
        mixf w.T.res;
        mixf w.T.cap
      end;
      match T.kind tree v with
      | T.Sink s ->
          mixf s.T.rat;
          mixf s.T.c_sink;
          mixf s.T.nm
      | T.Source _ | T.Internal | T.Buffered _ -> ())
    (T.postorder tree);
  List.iter (fun (b : Tech.Buffer.t) -> mixf b.Tech.Buffer.c_in) inst.Instance.lib;
  mixf inst.Instance.seg_len;
  Int64.to_int (Int64.shift_right_logical !h 2)

(* One deterministic adversarial edit of a rendered file. *)
let mutate_text rng s =
  let n = String.length s in
  match Util.Rng.int rng 4 with
  | 0 -> String.sub s 0 (Util.Rng.int rng (n + 1))
  | 1 ->
      let p = Util.Rng.int rng (n + 1) in
      String.sub s 0 p ^ "\x01 ~junk 1e999 ( .model (" ^ String.sub s p (n - p)
  | 2 ->
      let lines = String.split_on_char '\n' s in
      let k = Util.Rng.int rng (List.length lines) in
      let dup = List.nth lines k in
      String.concat "\n"
        (List.concat (List.mapi (fun i l -> if i = k then [ l; dup ] else [ l ]) lines))
  | _ ->
      let p = Util.Rng.int rng (n + 1) in
      let len = min (n - p) (Util.Rng.int rng 64) in
      String.sub s 0 p ^ String.sub s (p + len) (n - p - len)

let located ~path m =
  let p = path ^ ":" in
  String.length m >= String.length p && String.sub m 0 (String.length p) = p

(* Feed [rounds] mutants of [text] to [parse] (which returns [Some msg]
   for the parser's own located error, [None] for a clean parse, and
   lets anything else escape). Every mutant must land in one of the
   first two buckets, with the error anchored at [path]. *)
let battery rng ~what ~path ~rounds parse text =
  for _ = 1 to rounds do
    let mutant = mutate_text rng text in
    match parse mutant with
    | None -> ()
    | Some m ->
        if not (located ~path m) then
          failf "%s: parse error not located at %s: %s" what path m
    | exception e -> failf "%s: parser escaped with %s" what (Printexc.to_string e)
  done

let parser_roundtrip ?mutation (inst : Instance.t) =
  match mutation with
  | Some _ -> Skip "parser oracle: no DP engine under test"
  | None ->
      let rng = Util.Rng.create (content_seed inst) in
      (* netfmt: rendering is a fixpoint through of_string *)
      let design = Gen.random_design rng in
      let ntext = Sta.Netfmt.to_string design in
      let ntext' = Sta.Netfmt.to_string (Sta.Netfmt.of_string ntext) in
      if ntext' <> ntext then failf "netfmt round-trip is not a fixpoint";
      (* cellfile: arbitrary doubles survive bit-identically *)
      let cells = Gen.random_cells rng in
      let ctext = Sta.Cellfile.to_string cells in
      if Sta.Cellfile.of_string ctext <> cells then
        failf "cellfile round-trip changed the library";
      (* liberty: buffers exact, cells a prefix, nothing warned about *)
      let buffers = Gen.random_buffers rng in
      let ltext = Ingest.Liberty.to_string ~name:"fuzz" ~buffers cells in
      let lib = Ingest.Liberty.of_string ltext in
      if lib.Ingest.Liberty.buffers <> buffers then
        failf "liberty round-trip changed the buffer library";
      let prefix =
        List.filteri (fun i _ -> i < List.length cells) lib.Ingest.Liberty.cells
      in
      if prefix <> cells then failf "liberty round-trip changed the cells";
      if lib.Ingest.Liberty.warnings <> 0 then
        failf "liberty round-trip warned %d times on its own output"
          lib.Ingest.Liberty.warnings;
      (* blif: text fixpoint, and re-elaboration is deterministic *)
      let blif = Ingest.Elab.blif_of_design design in
      let btext = Ingest.Blif.to_string blif in
      let blif' = Ingest.Blif.of_string btext in
      if Ingest.Blif.to_string blif' <> btext then
        failf "blif round-trip is not a fixpoint";
      let elab b = Sta.Netfmt.to_string (fst (Ingest.Elab.design_of_blif b)) in
      if elab blif <> elab blif' then
        failf "blif round-trip changed the elaborated design";
      (* malformed-input battery over every rendered format *)
      battery rng ~what:"netfmt" ~path:"f.net" ~rounds:8
        (fun s ->
          match Sta.Netfmt.of_string ~path:"f.net" s with
          | _ -> None
          | exception Sta.Netfmt.Parse m -> Some m)
        ntext;
      battery rng ~what:"cellfile" ~path:"f.cells" ~rounds:8
        (fun s ->
          match Sta.Cellfile.of_string ~path:"f.cells" s with
          | _ -> None
          | exception Sta.Cellfile.Parse m -> Some m)
        ctext;
      battery rng ~what:"liberty" ~path:"f.lib" ~rounds:8
        (fun s ->
          match Ingest.Liberty.of_string ~path:"f.lib" s with
          | _ -> None
          | exception Ingest.Liberty.Parse m -> Some m)
        ltext;
      battery rng ~what:"blif" ~path:"f.blif" ~rounds:8
        (fun s ->
          match Ingest.Elab.design_of_blif (Ingest.Blif.of_string ~path:"f.blif" s) with
          | _ -> None
          | exception Ingest.Blif.Parse m -> Some m
          | exception Ingest.Elab.Error m -> Some m)
        btext;
      Pass

let run ?mutation (inst : Instance.t) =
  let tag v =
    match v with
    | Fail m -> Fail (Printf.sprintf "[%s] %s" (Instance.oracle_name inst.Instance.oracle) m)
    | v -> v
  in
  match
    match inst.Instance.oracle with
    | Instance.Vangin_vs_brute -> vangin_vs_brute ?mutation inst
    | Instance.Alg3_vs_brute -> alg3_vs_brute ?mutation inst
    | Instance.Alg1_vs_alg2 -> alg1_vs_alg2 inst
    | Instance.Alg3_vs_vangin -> alg3_vs_vangin ?mutation inst
    | Instance.Buffopt_problem3 -> buffopt_problem3 ?mutation inst
    | Instance.Dp_invariants -> dp_invariants ?mutation inst
    | Instance.Dp_trace -> dp_trace ?mutation inst
    | Instance.Pred_vs_sweep -> pred_vs_sweep ?mutation inst
    | Instance.Incremental_vs_scratch -> incremental_vs_scratch ?mutation inst
    | Instance.Parser_roundtrip -> parser_roundtrip ?mutation inst
    | Instance.Power_vs_brute -> power_vs_brute ?mutation inst
    | Instance.Energy_conservation -> energy_conservation ?mutation inst
    | Instance.Power_monotonicity -> power_monotonicity ?mutation inst
  with
  | v -> tag v
  | exception Failed m -> tag (Fail m)
  | exception e ->
      (* an optimizer crash is a counterexample too; Pool bodies must not raise *)
      tag (Fail (Printf.sprintf "exception: %s" (Printexc.to_string e)))

let fails ?mutation inst =
  match run ?mutation inst with Fail m -> Some m | Pass | Skip _ -> None
