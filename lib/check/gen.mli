(** Random-instance generators for the verification subsystem.

    Extracted from the ad-hoc generators the property tests grew in
    [test/helpers.ml] so that the fuzz campaigns, the shrinker, the
    corpus and the test suite all draw from one seeded source. All
    randomness flows through {!Util.Rng}: the same seed produces the
    same instance on every machine, which is what makes a corpus file's
    provenance reproducible. The process is {!Tech.Process.default}
    throughout (the paper's estimation-mode setup). *)

val process : Tech.Process.t

(** {1 Libraries} *)

val small_buffer : Tech.Buffer.t
(** A single non-inverting buffer satisfying Theorem 5's assumptions
    against {!theorem5_tree} sinks: [c_in] below every sink cap, margin
    below every sink margin. *)

val single_lib : Tech.Buffer.t list
(** [[small_buffer]] — the Theorem 5 regime. *)

val two_lib : Tech.Buffer.t list
(** {!small_buffer} plus an inverter: exercises polarity tracking. *)

val mixed_lib : Tech.Buffer.t list
(** Two non-inverting buffers, neither satisfying Theorem 5's margin
    assumption against {!lowmargin_tree} sinks: a fast low-margin buffer
    and a slow high-margin one. The optimum often needs the slow buffer
    even where the fast one wins on slack — the regime in which
    (load, slack)-only pruning loses solutions (PR 1). *)

(** {1 Trees} *)

val theorem5_tree : Util.Rng.t -> Rctree.Tree.t
(** Random small trees (1-3 sinks) whose sinks respect Theorem 5's
    assumptions wrt {!small_buffer}: caps >= 5 fF, margins >= 0.7 V. *)

val lowmargin_tree : Util.Rng.t -> Rctree.Tree.t
(** Like {!theorem5_tree} but with sink margins down to 0.4 V and longer
    wires: instances where no single library buffer satisfies Theorem
    5's assumptions, so (load, slack)-only pruning can discard the lone
    noise-feasible candidate. *)

val chain : Util.Rng.t -> Rctree.Tree.t
(** A random two-pin net (single sink, one wire, 0.5-15 mm): the
    Algorithm 1 / Algorithm 2 agreement domain. *)

val segment_for_brute : Rctree.Tree.t -> Rctree.Tree.t option
(** Coarse segmenting (1.5 mm) that keeps brute-force enumeration
    tractable; [None] when more than 9 feasible nodes result. *)

(** {1 Front-end fodder}

    Random inputs for the parser round-trip oracle. Float fields are
    arbitrary doubles: the file formats promise bit-identical
    round-trips for {e any} finite value, not just round ones. *)

val random_cells : Util.Rng.t -> Sta.Cell.t list
(** 3-8 gate cells with 1-3 inputs and arbitrary electricals. *)

val random_buffers : Util.Rng.t -> Tech.Buffer.t list
(** 2-5 buffers, mixed polarity, arbitrary electricals. *)

val random_design : Util.Rng.t -> Sta.Design.t
(** A small {!Sta.Gen.random} design (5-34 gates) under a random
    seed — always validated. *)

(** {1 Instances} *)

val instance : Util.Rng.t -> Instance.t
(** Draw a complete instance: an oracle chosen uniformly, with a tree,
    library and segmenting length from the regime that oracle checks
    (brute-force oracles get small coarse trees, invariant oracles get
    arbitrary random nets). Deterministic in the generator state. *)

val instance_for : Instance.oracle -> Util.Rng.t -> Instance.t
(** Like {!instance} with the oracle pinned. *)
