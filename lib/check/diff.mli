(** Differential testing of the optimizers.

    Each {!Instance.oracle} names a cross-check between independent
    implementations — DP against exhaustive {!Bufins.Brute}, Algorithm 1
    against Algorithm 2, Algorithm 3 against Van Ginneken — plus the
    from-scratch {!Invariant} evaluation of every returned solution.
    [run] never raises: any exception inside an optimizer is itself a
    counterexample and comes back as [Fail].

    [mutation] swaps in a deliberately broken DP engine
    ({!Bufins.Dp.mutation}) for the engine-under-test side only — the
    reference sides (brute force, Algorithms 1/2, the production
    [Buffopt] driver) stay healthy — to verify that campaigns catch
    known bug classes (DESIGN.md §10). The one exception is
    [Pred_vs_sweep], which mutates {e both} of its sides: it exists to
    catch divergence between the predictive and sweep-only engines
    (e.g. [Loose_pred_bound]), not engine bugs that break both runs the
    same way. *)

type verdict =
  | Pass
  | Skip of string  (** oracle not applicable (e.g. brute intractable) *)
  | Fail of string

val run : ?mutation:Bufins.Dp.mutation -> Instance.t -> verdict

val fails : ?mutation:Bufins.Dp.mutation -> Instance.t -> string option
(** [Some message] iff {!run} fails — the shape {!Shrink.shrink} wants. *)
