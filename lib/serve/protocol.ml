(* Request grammar of the serve daemon (DESIGN.md §14): one request per
   LF-terminated line, fields split on runs of spaces, a trailing CR
   tolerated for telnet-style clients. The parser owns syntax only —
   verbs, arity, number formats, the line-length cap; range checks
   (net / sink / node ids against the loaded design) belong to
   [Session], which knows what is loaded. *)

type request =
  | Load of { nets : int; seed : int }
  | Load_design of { path : string }
  | Optimize of { net : int }
  | Update_rat of { net : int; sink : int; ps : float }
  | Update_wire of { net : int; node : int; scale : float }
  | Update_noise of { net : int; scale : float }
  | Stats
  | Shutdown

let max_line = 1024

let render = function
  | Load { nets; seed } -> Printf.sprintf "load workload %d %d" nets seed
  | Load_design { path } -> Printf.sprintf "load design %s" path
  | Optimize { net } -> Printf.sprintf "optimize %d" net
  | Update_rat { net; sink; ps } ->
      Printf.sprintf "update-rat %d %d %.17g" net sink ps
  | Update_wire { net; node; scale } ->
      Printf.sprintf "update-wire %d %d %.17g" net node scale
  | Update_noise { net; scale } ->
      Printf.sprintf "update-noise %d %.17g" net scale
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let int_arg name s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad %s: %S is not an integer" name s)

let float_arg name s =
  match float_of_string_opt s with
  | Some v when Float.is_finite v -> Ok v
  | Some _ | None ->
      Error (Printf.sprintf "bad %s: %S is not a finite number" name s)

let ( let* ) = Result.bind

let parse line =
  if String.length line > max_line then
    Error (Printf.sprintf "oversized line (%d bytes, max %d)" (String.length line) max_line)
  else
    let line =
      match String.length line with
      | 0 -> line
      | n when line.[n - 1] = '\r' -> String.sub line 0 (n - 1)
      | _ -> line
    in
    let fields =
      String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
    in
    match fields with
    | [] -> Error "empty request"
    | verb :: args -> (
        match (verb, args) with
        | "load", [ "workload"; n; s ] ->
            let* nets = int_arg "net count" n in
            let* seed = int_arg "seed" s in
            if nets < 1 then Error "bad net count: must be >= 1"
            else Ok (Load { nets; seed })
        | "load", [ "design"; path ] -> Ok (Load_design { path })
        | "load", _ -> Error "usage: load workload <nets> <seed> | load design <path>"
        | "optimize", [ n ] ->
            let* net = int_arg "net id" n in
            Ok (Optimize { net })
        | "optimize", _ -> Error "usage: optimize <net>"
        | "update-rat", [ n; s; ps ] ->
            let* net = int_arg "net id" n in
            let* sink = int_arg "sink id" s in
            let* ps = float_arg "rat" ps in
            Ok (Update_rat { net; sink; ps })
        | "update-rat", _ -> Error "usage: update-rat <net> <sink> <ps>"
        | "update-wire", [ n; v; sc ] ->
            let* net = int_arg "net id" n in
            let* node = int_arg "node id" v in
            let* scale = float_arg "scale" sc in
            if scale <= 0.0 then Error "bad scale: must be > 0"
            else Ok (Update_wire { net; node; scale })
        | "update-wire", _ -> Error "usage: update-wire <net> <node> <scale>"
        | "update-noise", [ n; sc ] ->
            let* net = int_arg "net id" n in
            let* scale = float_arg "scale" sc in
            if scale < 0.0 then Error "bad scale: must be >= 0"
            else Ok (Update_noise { net; scale })
        | "update-noise", _ -> Error "usage: update-noise <net> <scale>"
        | "stats", [] -> Ok Stats
        | "stats", _ -> Error "usage: stats"
        | "shutdown", [] -> Ok Shutdown
        | "shutdown", _ -> Error "usage: shutdown"
        | _ -> Error (Printf.sprintf "unknown verb %S" verb))
