(** One client's resident optimization state (DESIGN.md §14).

    A session owns a loaded design — per net: the once-segmented RC
    tree, an incremental {!Bufins.Dp.Memo} and the sink-index map — plus
    a result cache keyed by a content fingerprint of
    (tree, algorithm, library, kmax). Three ways an [optimize] is
    served, cheapest first:

    - [hit] — the fingerprint is in the result cache: no DP at all.
      Edits change the fingerprint, so stale entries are never looked
      up; they age out via a size cap.
    - [incr] — the net's memo holds tables from an earlier run: only the
      dirty path re-runs (see {!Bufins.Dp.Memo}).
    - [full] — cold memo (first optimize, or after [update-noise] /
      a config-stamp drop).

    Every session is isolated: the server gives each connection its own
    [t], so one client's loads and edits never touch another's nets.
    Sessions are not thread-safe; the server serializes requests. *)

type options = {
  algorithm : Bufins.Buffopt.algorithm;
  lib : Tech.Buffer.t list;
  process : Tech.Process.t;
  seg_len : float;  (** segmenting length applied once, at load *)
  kmax : int;
}

val default_options : options
(** BuffOpt (Problem 3), the default library and process, 500 um
    segmenting, kmax 16. *)

type t

val create : ?pool:Engine.Pool.t -> ?options:options -> unit -> t
(** [pool] is the server's resident domain pool; [load]'s warm pass
    optimizes every net on it (per-net memos are disjoint, so workers
    share no mutable state). Without a pool the warm pass spawns
    domains per call, exactly like the batch engine. *)

val loaded : t -> int
(** Nets in the currently loaded design (0 before the first [load]). *)

type reply = {
  line : string;  (** complete response line, no LF *)
  ok : bool;  (** [line] starts with [ok] *)
  shutdown : bool;  (** the request was [shutdown]: stop serving *)
}

val handle : t -> Protocol.request -> reply
(** Execute one request. Every reply line ends with [t=<ms>], the
    server-side handling latency ({!Util.Clock} wall time). *)

val handle_line : t -> string -> reply
(** {!Protocol.parse} then {!handle}; a parse error becomes an [err]
    reply and is counted in the session's error statistics. *)
