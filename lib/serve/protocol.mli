(** The serve daemon's line-oriented request grammar (DESIGN.md §14).

    One request per LF-terminated line; fields split on runs of spaces;
    a trailing CR is tolerated. The parser enforces syntax only — verb,
    arity, number formats and the {!max_line} cap. Range validation of
    net / sink / node ids is {!Session}'s job: the parser has no idea
    what is loaded.

    Responses are single lines too, written by {!Session}: [ok]
    followed by [key=value] fields (always ending in [t=<ms>], the
    server-side handling latency), or [err <message>]. *)

type request =
  | Load of { nets : int; seed : int }
      (** [load workload <nets> <seed>]: generate and load a
          {!Workload} design — deterministic in [seed]. *)
  | Load_design of { path : string }
      (** [load design <path>]: load a design file from the server's
          filesystem, dispatching on extension ([.blif] through the
          ingest front end, anything else through {!Sta.Netfmt}).
          Paths with spaces are not representable in the grammar. *)
  | Optimize of { net : int }  (** [optimize <net>] *)
  | Update_rat of { net : int; sink : int; ps : float }
      (** [update-rat <net> <sink> <ps>]: set the [sink]-th sink's
          required arrival time, picoseconds. *)
  | Update_wire of { net : int; node : int; scale : float }
      (** [update-wire <net> <node> <scale>]: scale the resistance and
          capacitance of [node]'s parent wire. *)
  | Update_noise of { net : int; scale : float }
      (** [update-noise <net> <scale>]: scale the coupled aggressor
          current on every wire of the net (eq. 6's noise environment). *)
  | Stats  (** [stats] *)
  | Shutdown  (** [shutdown]: stop the daemon after replying. *)

val max_line : int
(** Longest accepted request line, bytes (1024). *)

val parse : string -> (request, string) result
(** Parse one line (without the terminating LF). The error string is
    human-readable and becomes the [err] response verbatim. *)

val render : request -> string
(** The canonical request line (no LF) — [parse (render r) = Ok r].
    Used by the client helpers, the bench driver and the tests. *)
