module T = Rctree.Tree

type options = {
  algorithm : Bufins.Buffopt.algorithm;
  lib : Tech.Buffer.t list;
  process : Tech.Process.t;
  seg_len : float;
  kmax : int;
}

let default_options =
  {
    algorithm = Bufins.Buffopt.Buffopt;
    lib = Tech.Lib.default_library;
    process = Tech.Process.default;
    seg_len = 500e-6;
    kmax = 16;
  }

(* One loaded net: the segmented tree is the resident optimization
   substrate (segmenting happens once, at load), the memo carries the
   incremental DP state across edits, and [sinks] maps protocol sink
   indices to tree node ids. *)
type net_state = {
  name : string;
  mutable tree : T.t;
  memo : Bufins.Dp.Memo.t;
  sinks : int array;
}

type t = {
  opts : options;
  pool : Engine.Pool.t option;
  mutable nets : net_state array;
  (* result cache: content fingerprint of (tree, options) -> rendered
     optimize payload. The fingerprint covers everything the DP reads,
     so an edit changes the key and stale entries are simply never
     looked up again; a size cap keeps a long mutation session from
     accumulating dead keys without bound. *)
  cache : (string, string) Hashtbl.t;
  mutable requests : int;
  mutable errors : int;
  mutable optimizes : int;
  mutable cache_hits : int;
  mutable incremental : int;
  mutable full : int;
  mutable opt_lat : float list;  (** optimize handling latencies, s *)
}

let cache_cap = 4096

let create ?pool ?(options = default_options) () =
  {
    opts = options;
    pool;
    nets = [||];
    cache = Hashtbl.create 256;
    requests = 0;
    errors = 0;
    optimizes = 0;
    cache_hits = 0;
    incremental = 0;
    full = 0;
    opt_lat = [];
  }

let loaded t = Array.length t.nets

type reply = { line : string; ok : bool; shutdown : bool }

let errf fmt = Printf.ksprintf (fun m -> Error m) fmt

let net_of t i =
  if Array.length t.nets = 0 then
    Error "no design loaded (use: load workload <nets> <seed> | load design <path>)"
  else if i < 0 || i >= Array.length t.nets then
    errf "net id %d out of range (0..%d)" i (Array.length t.nets - 1)
  else Ok t.nets.(i)

let fingerprint t (ns : net_state) =
  (* Marshal is the cheap structural serializer: the tree is immutable
     data (arrays, floats, strings) and the options pin the algorithm,
     library and DP knobs the result depends on. *)
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (ns.tree, t.opts.algorithm, t.opts.lib, t.opts.kmax)
          []))

(* Shared tail of every load verb: make the (net, tree) jobs resident
   and run the warm pass, whatever produced them. *)
let install t jobs =
  let states =
    List.map
      (fun ((net : Steiner.Net.t), tree) ->
        let seg = Rctree.Segment.refine tree ~max_len:t.opts.seg_len in
        {
          name = net.Steiner.Net.nname;
          tree = seg;
          memo = Bufins.Dp.Memo.create ();
          sinks = Array.of_list (T.sinks seg);
        })
      jobs
  in
  t.nets <- Array.of_list states;
  Hashtbl.reset t.cache;
  (* Warm pass on the resident pool: every net's memo and result-cache
     entry is populated up front, so the first interactive optimize of
     any net is already a cache hit and every later edit re-optimizes
     incrementally. Per-net memos are disjoint, so workers never share
     mutable state. *)
  let outcomes, _ =
    Engine.map ?pool:t.pool
      ~costs:(Array.map (fun ns -> Array.length ns.sinks) t.nets)
      (fun (ns : net_state) ->
        Bufins.Buffopt.optimize_prepared ~kmax:t.opts.kmax ~memo:ns.memo
          t.opts.algorithm ~lib:t.opts.lib ns.tree)
      (Array.to_list t.nets)
  in
  let infeasible = ref 0 in
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Engine.Done (Some (r : Bufins.Buffopt.run)) ->
          Hashtbl.replace t.cache
            (fingerprint t t.nets.(i))
            (Printf.sprintf "slack_ps=%.3f buffers=%d energy_fj=%.3f"
               (r.Bufins.Buffopt.predicted_slack *. 1e12)
               r.Bufins.Buffopt.count
               (r.Bufins.Buffopt.energy *. 1e15))
      | Engine.Done None | Engine.Failed _ -> incr infeasible)
    outcomes;
  let sinks = Array.fold_left (fun a ns -> a + Array.length ns.sinks) 0 t.nets in
  Ok
    (Printf.sprintf "loaded nets=%d sinks=%d infeasible=%d"
       (Array.length t.nets) sinks !infeasible)

let do_load t ~nets ~seed =
  let cfg = { Workload.default_config with Workload.nets; seed } in
  install t (Workload.trees t.opts.process (Workload.generate cfg))

let do_load_design t ~path =
  (* a bad path or malformed file is a protocol error, not a crash *)
  match Ingest.Elab.load path with
  | design, _buffers, _warnings -> install t (Sta.Engine.batch_jobs t.opts.process design)
  | exception Ingest.Blif.Parse m -> Error m
  | exception Ingest.Liberty.Parse m -> Error m
  | exception Ingest.Elab.Error m -> Error m
  | exception Sta.Netfmt.Parse m -> Error m
  | exception Sys_error m -> Error m

let do_optimize t i =
  let ( let* ) = Result.bind in
  let* ns = net_of t i in
  t.optimizes <- t.optimizes + 1;
  let key = fingerprint t ns in
  match Hashtbl.find_opt t.cache key with
  | Some payload ->
      t.cache_hits <- t.cache_hits + 1;
      Ok (Printf.sprintf "net=%d %s served=hit" i payload)
  | None -> (
      let warm = Bufins.Dp.Memo.stored ns.memo > 0 in
      match
        Bufins.Buffopt.optimize_prepared ~kmax:t.opts.kmax ~memo:ns.memo
          t.opts.algorithm ~lib:t.opts.lib ns.tree
      with
      | None -> errf "infeasible net=%d (no noise-feasible solution)" i
      | Some r ->
          if warm then t.incremental <- t.incremental + 1
          else t.full <- t.full + 1;
          let payload =
            Printf.sprintf "slack_ps=%.3f buffers=%d energy_fj=%.3f"
              (r.Bufins.Buffopt.predicted_slack *. 1e12)
              r.Bufins.Buffopt.count
              (r.Bufins.Buffopt.energy *. 1e15)
          in
          if Hashtbl.length t.cache >= cache_cap then Hashtbl.reset t.cache;
          Hashtbl.replace t.cache key payload;
          Ok
            (Printf.sprintf "net=%d %s served=%s" i payload
               (if warm then "incr" else "full")))

let do_update_rat t i sink ps =
  let ( let* ) = Result.bind in
  let* ns = net_of t i in
  if sink < 0 || sink >= Array.length ns.sinks then
    errf "sink id %d out of range for net %d (0..%d)" sink i
      (Array.length ns.sinks - 1)
  else begin
    let v = ns.sinks.(sink) in
    ns.tree <- T.with_sink_rat ns.tree v ~rat:(ps *. 1e-12);
    Bufins.Dp.Memo.dirty ns.memo ns.tree v;
    Ok (Printf.sprintf "net=%d sink=%d rat_ps=%.3f" i sink ps)
  end

let do_update_wire t i node scale =
  let ( let* ) = Result.bind in
  let* ns = net_of t i in
  if node < 0 || node >= T.node_count ns.tree then
    errf "node id %d out of range for net %d (0..%d)" node i
      (T.node_count ns.tree - 1)
  else if node = T.root ns.tree then errf "node %d is the root: it has no parent wire" node
  else begin
    ns.tree <-
      T.map_wires ns.tree (fun v w ->
          if v = node then
            { w with T.res = w.T.res *. scale; T.cap = w.T.cap *. scale }
          else w);
    Bufins.Dp.Memo.dirty ns.memo ns.tree node;
    Ok (Printf.sprintf "net=%d node=%d scale=%g" i node scale)
  end

let do_update_noise t i scale =
  let ( let* ) = Result.bind in
  let* ns = net_of t i in
  ns.tree <- T.map_wires ns.tree (fun _ w -> { w with T.cur = w.T.cur *. scale });
  (* every wire changed: every cached table is stale *)
  Bufins.Dp.Memo.clear ns.memo;
  Ok (Printf.sprintf "net=%d scale=%g" i scale)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (Float.of_int (n - 1) *. p +. 0.5)))

let do_stats t =
  let lat = Array.of_list t.opt_lat in
  Array.sort compare lat;
  Ok
    (Printf.sprintf
       "requests=%d errors=%d optimizes=%d cache_hits=%d incr=%d full=%d \
        hit_rate=%.3f p50_ms=%.3f p99_ms=%.3f"
       t.requests t.errors t.optimizes t.cache_hits t.incremental t.full
       (if t.optimizes = 0 then 0.0
        else float_of_int t.cache_hits /. float_of_int t.optimizes)
       (percentile lat 0.50 *. 1e3)
       (percentile lat 0.99 *. 1e3))

let handle t (req : Protocol.request) =
  t.requests <- t.requests + 1;
  let outcome, dt =
    Util.Clock.timed (fun () ->
        match req with
        | Protocol.Load { nets; seed } -> do_load t ~nets ~seed
        | Protocol.Load_design { path } -> do_load_design t ~path
        | Protocol.Optimize { net } -> do_optimize t net
        | Protocol.Update_rat { net; sink; ps } -> do_update_rat t net sink ps
        | Protocol.Update_wire { net; node; scale } ->
            do_update_wire t net node scale
        | Protocol.Update_noise { net; scale } -> do_update_noise t net scale
        | Protocol.Stats -> do_stats t
        | Protocol.Shutdown -> Ok "bye")
  in
  (match req with
  | Protocol.Optimize _ -> t.opt_lat <- dt :: t.opt_lat
  | _ -> ());
  let shutdown = req = Protocol.Shutdown in
  match outcome with
  | Ok payload ->
      { line = Printf.sprintf "ok %s t=%.3f" payload (dt *. 1e3); ok = true; shutdown }
  | Error msg ->
      t.errors <- t.errors + 1;
      { line = Printf.sprintf "err %s t=%.3f" msg (dt *. 1e3); ok = false; shutdown }

let handle_line t line =
  match Protocol.parse line with
  | Ok req -> handle t req
  | Error msg ->
      t.requests <- t.requests + 1;
      t.errors <- t.errors + 1;
      { line = Printf.sprintf "err %s t=0.000" msg; ok = false; shutdown = false }
