(** The [buffopt serve] daemon: a persistent optimization service
    (DESIGN.md §14).

    The ROADMAP's production framing: instead of the one-shot batch of
    the paper's Tables II-IV, a long-running process keeps design state
    resident — prepared libraries, once-segmented RC trees, incremental
    DP memos ({!Bufins.Dp.Memo}), warm {!Engine.Pool} domains — and
    answers optimize / edit requests over a line protocol
    ({!Protocol}) on a Unix or TCP socket.

    The server is a single-threaded select loop: requests from all
    clients are serialized (a DP run blocks the loop), while the
    parallelism lives inside a request via the resident pool (the warm
    pass of [load]). Each connection gets its own {!Session}, so
    clients are fully isolated from one another. A [shutdown] request
    from any client stops the daemon after the reply. *)

module Protocol = Protocol
module Session = Session

type endpoint =
  | Unix_path of string  (** Unix-domain socket at this path *)
  | Tcp_port of int  (** TCP on loopback at this port *)

val serve :
  ?options:Session.options ->
  ?domains:int ->
  ?log:(string -> unit) ->
  endpoint ->
  unit
(** Run the daemon until a [shutdown] request. Creates the resident
    pool ([domains] workers, default {!Engine.Pool.default_domains}),
    listens on [endpoint] (an existing Unix-socket path is replaced;
    the path is unlinked on exit), and serves. [log] receives one-line
    lifecycle messages (connects, shutdown); default silent. *)

(** A minimal blocking client for the CLI, tests, and CI smoke: one
    request line out, one reply line back. *)
module Client : sig
  type t

  val connect : endpoint -> t
  (** Raises [Unix.Unix_error] when the daemon is not there. *)

  val request : t -> string -> string option
  (** Send one line, wait for the reply line; [None] when the server
      closed the connection instead. *)

  val close : t -> unit

  val script : endpoint -> string list -> string list
  (** Run request lines in order over one connection and return the
      reply lines ([err connection closed by server] for requests the
      server never answered). Connection closed afterwards. *)
end
