module Protocol = Protocol
module Session = Session

type endpoint = Unix_path of string | Tcp_port of int

let write_all fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

let listener = function
  | Unix_path path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 16;
      fd
  | Tcp_port port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 16;
      fd

(* One connection: its private session plus a byte buffer for partial
   lines. [closed] marks connections torn down mid-iteration (peer hung
   up, write failed, oversized garbage) for removal after the sweep. *)
type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  session : Session.t;
  mutable closed : bool;
}

let serve ?(options = Session.default_options) ?domains ?(log = ignore) endpoint =
  let pool = Engine.Pool.create ?domains () in
  let lfd = listener endpoint in
  let conns = ref [] in
  let running = ref true in
  let close_conn c =
    if not c.closed then begin
      c.closed <- true;
      try Unix.close c.fd with Unix.Unix_error _ -> ()
    end
  in
  let reply_to c (r : Session.reply) =
    (try write_all c.fd (r.Session.line ^ "\n")
     with Unix.Unix_error _ -> close_conn c);
    if r.Session.shutdown then running := false
  in
  (* Drain every complete line in the buffer; what remains is a line
     still in flight. A partial line already longer than the protocol
     cap can never become valid, so the connection is cut rather than
     letting a client stream an unbounded "line". *)
  let drain c =
    let data = Buffer.contents c.buf in
    let n = String.length data in
    let pos = ref 0 in
    (try
       while !running && not c.closed do
         match String.index_from data !pos '\n' with
         | exception Not_found -> raise Exit
         | nl ->
             let line = String.sub data !pos (nl - !pos) in
             pos := nl + 1;
             reply_to c (Session.handle_line c.session line)
       done
     with Exit -> ());
    Buffer.clear c.buf;
    if not c.closed then begin
      Buffer.add_substring c.buf data !pos (n - !pos);
      if Buffer.length c.buf > Protocol.max_line then begin
        (try
           write_all c.fd
             (Printf.sprintf "err oversized line (max %d bytes) t=0.000\n"
                Protocol.max_line)
         with Unix.Unix_error _ -> ());
        close_conn c
      end
    end
  in
  let chunk = Bytes.create 4096 in
  log (Printf.sprintf "serving (%d warm domains)" (Engine.Pool.size pool));
  while !running do
    let fds = lfd :: List.map (fun c -> c.fd) (List.filter (fun c -> not c.closed) !conns) in
    match Unix.select fds [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        if List.mem lfd readable then begin
          let fd, _ = Unix.accept lfd in
          conns :=
            {
              fd;
              buf = Buffer.create 256;
              session = Session.create ~pool ~options ();
              closed = false;
            }
            :: !conns;
          log "client connected"
        end;
        List.iter
          (fun c ->
            if (not c.closed) && List.mem c.fd readable then
              match Unix.read c.fd chunk 0 (Bytes.length chunk) with
              | exception Unix.Unix_error _ -> close_conn c
              | 0 ->
                  close_conn c;
                  log "client disconnected"
              | n ->
                  Buffer.add_subbytes c.buf chunk 0 n;
                  drain c)
          !conns;
        conns := List.filter (fun c -> not c.closed) !conns
  done;
  List.iter close_conn !conns;
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (match endpoint with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp_port _ -> ());
  Engine.Pool.shutdown pool;
  log "shut down"

(* {1 Client} *)

module Client = struct
  type t = { fd : Unix.file_descr; buf : Buffer.t }

  let connect endpoint =
    let domain, addr =
      match endpoint with
      | Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
      | Tcp_port port ->
          (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    Unix.connect fd addr;
    { fd; buf = Buffer.create 256 }

  let read_line t =
    let chunk = Bytes.create 4096 in
    let rec line () =
      let data = Buffer.contents t.buf in
      match String.index data '\n' with
      | nl ->
          Buffer.clear t.buf;
          Buffer.add_substring t.buf data (nl + 1) (String.length data - nl - 1);
          Some (String.sub data 0 nl)
      | exception Not_found -> (
          match Unix.read t.fd chunk 0 (Bytes.length chunk) with
          | 0 -> None
          | n ->
              Buffer.add_subbytes t.buf chunk 0 n;
              line ())
    in
    line ()

  let request t line =
    write_all t.fd (line ^ "\n");
    read_line t

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

  let script endpoint lines =
    let t = connect endpoint in
    Fun.protect
      ~finally:(fun () -> close t)
      (fun () ->
        List.map
          (fun line ->
            match request t line with
            | Some reply -> reply
            | None -> "err connection closed by server")
          lines)
end
