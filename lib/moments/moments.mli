(** RC-tree transfer-function moments and moment-matching delay metrics
    (AWE [25] / RICE [27] class — the machinery behind tools like the
    paper's 3dnoise verifier, and footnote 4's constant-time delay
    metrics).

    Each buffered stage is an RC tree driven through its gate's output
    resistance. Wires use the pi approximation (half the capacitance at
    each end); stage leaves add their pin capacitance. The signed
    transfer-function moments at node [v] satisfy [m_0 = 1] and

    [m_k(v) = - sum_u R(path cap) C_u m_(k-1)(u)]

    so [-m_1] is exactly the Elmore delay (tested against [Elmore]). *)

val stage_moments : Rctree.Tree.t -> order:int -> float array array
(** [stage_moments t ~order] returns [m] with [m.(k-1).(v) = m_k(v)] for
    [k = 1..order]. Every non-root node carries its {e input-side}
    moments relative to the gate driving the stage that contains its
    parent wire (for a buffered node, that is the buffer's input pin);
    the root carries the moments just after the source's driving
    resistance. Requires [order >= 1]. *)

val elmore_delay : m1:float -> float
(** First-moment delay bound: [-. m1]. *)

val d2m : m1:float -> m2:float -> float
(** The D2M metric: [ln 2 *. m1^2 /. sqrt m2]; a well-known closed-form
    improvement over Elmore for far-from-driver nodes. Requires
    [m2 > 0.]. *)

val two_pole_delay50 : m1:float -> m2:float -> m3:float -> float
(** 50%-crossing delay of the two-pole Pade approximation built from the
    first three moments; falls back to the single-pole model
    [ln 2 *. -. m1] when the Pade denominator is degenerate or the poles
    are not real and stable. *)

val step_response_two_pole : m1:float -> m2:float -> m3:float -> float -> float
(** Value at time [t] of the two-pole step response (same fallback rules
    as {!two_pole_delay50}); used to validate against the transient
    simulator. *)
