module T = Rctree.Tree

(* Lumped node capacitances for the pi model: each node collects half the
   capacitance of every adjacent stage wire, plus its pin capacitance when
   it is a stage leaf. *)
let gate_resistance t g =
  match T.kind t g with
  | T.Source d -> d.T.r_drv
  | T.Buffered b -> b.Tech.Buffer.r_b
  | T.Sink _ | T.Internal -> invalid_arg "Moments: not a gate"

(* Lumped pi-model capacitance of node [v] within the stage rooted at
   [g]: half of its parent wire (except for the stage root, whose parent
   wire belongs upstream), half of each child wire still inside the
   stage, and the pin capacitance when [v] is a stage leaf. *)
let stage_cap t g v =
  let half w = w.T.cap /. 2.0 in
  let parent_half = if v = g then 0.0 else half (T.wire_to t v) in
  if v <> g && T.is_stage_leaf t v then
    parent_half
    +.
    (match T.kind t v with
    | T.Sink s -> s.T.c_sink
    | T.Buffered b -> b.Tech.Buffer.c_in
    | T.Source _ | T.Internal -> assert false)
  else
    parent_half +. List.fold_left (fun acc c -> acc +. half (T.wire_to t c)) 0.0 (T.children t v)

let stage_moments t ~order =
  if order < 1 then invalid_arg "Moments.stage_moments: order must be >= 1";
  let n = T.node_count t in
  (* m.(k).(v): k-th input-side moment of node v within its upstream
     stage; the root's entry is the moment just after the driver. *)
  let m = Array.init (order + 1) (fun _ -> Array.make n 0.0) in
  Array.fill m.(0) 0 n 1.0;
  List.iter
    (fun g ->
      let members = T.stage_members t g in
      let bottom_up = List.rev members in
      let caps = Hashtbl.create 16 in
      Hashtbl.replace caps g (stage_cap t g g);
      List.iter (fun v -> Hashtbl.replace caps v (stage_cap t g v)) members;
      (* the stage root's own moments live locally: for a buffered gate the
         global slot holds its input-side (upstream-stage) moments *)
      let root_m = Array.make (order + 1) 0.0 in
      root_m.(0) <- 1.0;
      let mom k v = if v = g then root_m.(k) else m.(k).(v) in
      for k = 1 to order do
        (* B_k(v) = sum over v's sub-stage of C_u * m_(k-1)(u), bottom-up *)
        let b = Hashtbl.create 16 in
        let get v = match Hashtbl.find_opt b v with Some x -> x | None -> 0.0 in
        let fill v =
          let own = Hashtbl.find caps v *. mom (k - 1) v in
          let below =
            if v <> g && T.is_stage_leaf t v then 0.0
            else List.fold_left (fun acc c -> acc +. get c) 0.0 (T.children t v)
          in
          Hashtbl.replace b v (own +. below)
        in
        List.iter fill bottom_up;
        fill g;
        root_m.(k) <- -.(gate_resistance t g *. get g);
        (* top-down: m_k(v) = m_k(parent) - R_wire * B_k(v) *)
        List.iter
          (fun v ->
            let w = T.wire_to t v in
            m.(k).(v) <- mom k (T.parent t v) -. (w.T.res *. get v))
          members
      done;
      if g = T.root t then for k = 1 to order do m.(k).(g) <- root_m.(k) done)
    (T.gates t);
  Array.sub m 1 order

let elmore_delay ~m1 = -.m1

let ln2 = log 2.0

let d2m ~m1 ~m2 =
  assert (m2 > 0.0);
  ln2 *. m1 *. m1 /. sqrt m2

type two_pole = Two of { k1 : float; p1 : float; k2 : float; p2 : float } | One of { tau : float }

let fit ~m1 ~m2 ~m3 =
  let fallback () = One { tau = Float.max 1e-30 (-.m1) } in
  let d = (m1 *. m1) -. m2 in
  if Float.abs d < 1e-300 then fallback ()
  else begin
    let b1 = ((m1 *. m2) -. m3) /. d in
    let b2 = ((m2 *. m2) -. (m1 *. m3)) /. d in
    let a1 = m1 +. b1 in
    if b2 <= 0.0 then fallback ()
    else begin
      let disc = (b1 *. b1) -. (4.0 *. b2) in
      if disc < 0.0 then fallback ()
      else begin
        let sq = sqrt disc in
        let p1 = (-.b1 +. sq) /. (2.0 *. b2) in
        let p2 = (-.b1 -. sq) /. (2.0 *. b2) in
        if p1 >= 0.0 || p2 >= 0.0 then fallback ()
        else begin
          (* step response: 1 + k1 e^{p1 t} + k2 e^{p2 t} with
             k_i = -(1 + a1 p_i) / (b2 p_i (p_i - p_j)) *)
          let k1 = -.(1.0 +. (a1 *. p1)) /. (b2 *. p1 *. (p1 -. p2)) in
          let k2 = -.(1.0 +. (a1 *. p2)) /. (b2 *. p2 *. (p2 -. p1)) in
          Two { k1; p1; k2; p2 }
        end
      end
    end
  end

let response fitted time =
  match fitted with
  | One { tau } -> 1.0 -. exp (-.time /. tau)
  | Two { k1; p1; k2; p2 } -> 1.0 +. (k1 *. exp (p1 *. time)) +. (k2 *. exp (p2 *. time))

let step_response_two_pole ~m1 ~m2 ~m3 time = response (fit ~m1 ~m2 ~m3) time

let two_pole_delay50 ~m1 ~m2 ~m3 =
  let f = fit ~m1 ~m2 ~m3 in
  match f with
  | One { tau } -> ln2 *. tau
  | Two _ ->
      (* bisection for the 50% crossing; the response is monotone for real
         stable RC poles *)
      let target = 0.5 in
      let hi = ref (Float.max (-.m1 *. 4.0) 1e-15) in
      let guard = ref 0 in
      while response f !hi < target && !guard < 64 do
        hi := !hi *. 2.0;
        incr guard
      done;
      let lo = ref 0.0 in
      for _ = 1 to 80 do
        let mid = ( !lo +. !hi ) /. 2.0 in
        if response f mid < target then lo := mid else hi := mid
      done;
      (!lo +. !hi) /. 2.0
