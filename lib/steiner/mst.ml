let prim pts =
  let n = Array.length pts in
  if n = 0 then invalid_arg "Mst.prim: no points";
  let in_tree = Array.make n false in
  let best_dist = Array.make n max_int in
  let best_from = Array.make n 0 in
  in_tree.(0) <- true;
  for j = 1 to n - 1 do
    best_dist.(j) <- Geometry.Point.manhattan pts.(0) pts.(j)
  done;
  let edges = Array.make (max 0 (n - 1)) (0, 0) in
  for k = 0 to n - 2 do
    let pick = ref (-1) in
    for j = 0 to n - 1 do
      if (not in_tree.(j)) && (!pick = -1 || best_dist.(j) < best_dist.(!pick)) then pick := j
    done;
    let j = !pick in
    in_tree.(j) <- true;
    edges.(k) <- (j, best_from.(j));
    for m = 0 to n - 1 do
      if not in_tree.(m) then begin
        let d = Geometry.Point.manhattan pts.(j) pts.(m) in
        if d < best_dist.(m) then begin
          best_dist.(m) <- d;
          best_from.(m) <- j
        end
      end
    done
  done;
  edges

let length pts edges =
  Array.fold_left (fun acc (a, b) -> acc + Geometry.Point.manhattan pts.(a) pts.(b)) 0 edges
