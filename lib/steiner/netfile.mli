(** Plain-text placed-net files (the CLI's input format).

    Line oriented; blank lines and [#] comments are ignored:

    {v
    net    <name>
    source <x_um> <y_um> <r_drv_ohm> <d_pad_ps>
    sink   <name> <x_um> <y_um> <cap_fF> <rat_ps> <nm_V>
    v} *)

exception Parse of string
(** Carries ["file:line: message"]. *)

val read : string -> Net.t
(** Parse a net file; raises {!Parse} on malformed input (including the
    structural checks of {!Net.make}). *)

val to_string : Net.t -> string
(** Render a net back to the file format; [read] of the result is
    equivalent (round-trip tested). *)

val write : string -> Net.t -> unit

val sample : string
(** A small three-sink example, used by [buffopt sample]. *)
