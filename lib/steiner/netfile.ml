module P = Geometry.Point

exception Parse of string

let um_to_nm x = int_of_float (Float.round (x *. 1000.0))

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let name = ref "net" in
      let source = ref None in
      let pins = ref [] in
      let lineno = ref 0 in
      let fail fmt =
        Printf.ksprintf (fun m -> raise (Parse (Printf.sprintf "%s:%d: %s" path !lineno m))) fmt
      in
      let num s = match float_of_string_opt s with Some x -> x | None -> fail "bad number %s" s in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let words =
             String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")
           in
           match words with
           | [] -> ()
           | w :: _ when String.length w > 0 && w.[0] = '#' -> ()
           | [ "net"; n ] -> name := n
           | [ "source"; x; y; r; d ] ->
               source := Some (P.make (um_to_nm (num x)) (um_to_nm (num y)), num r, num d *. 1e-12)
           | [ "sink"; n; x; y; c; rat; nm ] ->
               pins :=
                 {
                   Net.pname = n;
                   at = P.make (um_to_nm (num x)) (um_to_nm (num y));
                   c_sink = num c *. 1e-15;
                   rat = num rat *. 1e-12;
                   nm = num nm;
                 }
                 :: !pins
           | w :: _ -> fail "unknown directive %s" w
         done
       with End_of_file -> ());
      match !source with
      | None -> raise (Parse (path ^ ": no source line"))
      | Some (at, r_drv, d_drv) -> (
          match Net.make ~name:!name ~source:at ~r_drv ~d_drv ~pins:(List.rev !pins) with
          | net -> net
          | exception Invalid_argument m -> raise (Parse (path ^ ": " ^ m))))

let to_string (net : Net.t) =
  let buf = Buffer.create 256 in
  let um p = (float_of_int p.P.x /. 1000.0, float_of_int p.P.y /. 1000.0) in
  Buffer.add_string buf (Printf.sprintf "net %s\n" net.Net.nname);
  let sx, sy = um net.Net.source in
  Buffer.add_string buf
    (Printf.sprintf "source %.3f %.3f %.4f %.6f\n" sx sy net.Net.r_drv (net.Net.d_drv *. 1e12));
  List.iter
    (fun (p : Net.pin) ->
      let x, y = um p.Net.at in
      Buffer.add_string buf
        (Printf.sprintf "sink %s %.3f %.3f %.6f %.6f %.4f\n" p.Net.pname x y (p.Net.c_sink *. 1e15)
           (p.Net.rat *. 1e12) p.Net.nm))
    net.Net.pins;
  Buffer.contents buf

let write path net =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string net))

let sample =
  "net sample\n\
   source 0 0 120 30\n\
   sink a 8000 2000 20 1200 0.8\n\
   sink b 6500 4500 35 1500 0.8\n\
   sink c 9000 500 10 1300 0.8\n"
