module P = Geometry.Point

type t = { adj : (P.t, P.t list) Hashtbl.t; source : P.t }

let neighbours g p = match Hashtbl.find_opt g.adj p with Some l -> l | None -> []

let is_point g p = Hashtbl.mem g.adj p

let add_point g p = if not (is_point g p) then Hashtbl.replace g.adj p []

let aligned a b = a.P.x = b.P.x || a.P.y = b.P.y

let add_edge g a b =
  if not (P.equal a b) then begin
    assert (aligned a b);
    add_point g a;
    add_point g b;
    Hashtbl.replace g.adj a (b :: neighbours g a);
    Hashtbl.replace g.adj b (a :: neighbours g b)
  end

let remove_edge g a b =
  Hashtbl.replace g.adj a (List.filter (fun q -> not (P.equal q b)) (neighbours g a));
  Hashtbl.replace g.adj b (List.filter (fun q -> not (P.equal q a)) (neighbours g b))

let fold_edges g f acc =
  Hashtbl.fold
    (fun a nbrs acc ->
      List.fold_left (fun acc b -> if P.compare a b < 0 then f acc a b else acc) acc nbrs)
    g.adj acc

(* Closest point of segment [a,b] (axis-aligned) to [p], in L1. *)
let project p a b =
  let clamp v lo hi = max lo (min v hi) in
  if a.P.y = b.P.y then P.make (clamp p.P.x (min a.P.x b.P.x) (max a.P.x b.P.x)) a.P.y
  else P.make a.P.x (clamp p.P.y (min a.P.y b.P.y) (max a.P.y b.P.y))

(* Nearest attachment for [p]: an existing point or the interior of an
   existing segment (which the caller must split). *)
let nearest g p =
  let best_pt =
    Hashtbl.fold
      (fun q _ acc ->
        let d = P.manhattan p q in
        match acc with Some (bd, _) when bd <= d -> acc | Some _ | None -> Some (d, `At q))
      g.adj None
  in
  fold_edges g
    (fun acc a b ->
      let q = project p a b in
      let d = P.manhattan p q in
      match acc with
      | Some (bd, _) when bd <= d -> acc
      | Some _ | None -> Some (d, if is_point g q then `At q else `On (a, b, q)))
    best_pt

let attach_point g p =
  match nearest g p with
  | None -> invalid_arg "Build.attach_point: empty tree"
  | Some (_, `At q) -> q
  | Some (_, `On (a, b, q)) ->
      remove_edge g a b;
      add_edge g a q;
      add_edge g q b;
      q

let insert_pin g p =
  if is_point g p then ()
  else begin
    let q = attach_point g p in
    if P.equal p q then ()
    else begin
      let corner = P.make p.P.x q.P.y in
      if P.equal corner p || P.equal corner q then add_edge g p q
      else if is_point g corner then
        (* the corner is already a tree point: attaching both legs would
           close a cycle, so hook the pin straight onto the corner *)
        add_edge g p corner
      else begin
        add_edge g p corner;
        add_edge g corner q
      end
    end
  end

let of_net (net : Net.t) =
  let g = { adj = Hashtbl.create 64; source = net.Net.source } in
  add_point g net.Net.source;
  let pts = Net.all_points net in
  let order = Mst.prim pts in
  Array.iter (fun (child, _) -> insert_pin g pts.(child)) order;
  g

let wirelength g = fold_edges g (fun acc a b -> acc + P.manhattan a b) 0

let segment_count g = fold_edges g (fun acc _ _ -> acc + 1) 0

let segments g = fold_edges g (fun acc a b -> (a, b) :: acc) []

let to_rctree_traced process (net : Net.t) g =
  let b = Rctree.Builder.create () in
  let pin_at = Hashtbl.create 16 in
  List.iter (fun (p : Net.pin) -> Hashtbl.replace pin_at p.Net.at p) net.Net.pins;
  let geometry = ref [] in
  let note id geo = geometry := (id, geo) :: !geometry in
  let add_pin_leaf parent wire (p : Net.pin) =
    let id =
      Rctree.Builder.add_sink b ~parent ~wire ~name:p.Net.pname ~c_sink:p.Net.c_sink
        ~rat:p.Net.rat ~nm:p.Net.nm
    in
    note id None
  in
  let visited = Hashtbl.create 64 in
  let rec emit point geo wire parent_id =
    Hashtbl.replace visited point ();
    let kids = List.filter (fun q -> not (Hashtbl.mem visited q)) (neighbours g point) in
    List.iter (fun q -> Hashtbl.replace visited q ()) kids;
    let pin = Hashtbl.find_opt pin_at point in
    let node_id =
      match (parent_id, pin, kids) with
      | -1, _, _ -> Rctree.Builder.add_source b ~r_drv:net.Net.r_drv ~d_drv:net.Net.d_drv
      | _, Some p, [] ->
          let id =
            Rctree.Builder.add_sink b ~parent:parent_id ~wire ~name:p.Net.pname
              ~c_sink:p.Net.c_sink ~rat:p.Net.rat ~nm:p.Net.nm
          in
          note id geo;
          -2
      | _, _, _ ->
          let id = Rctree.Builder.add_internal b ~parent:parent_id ~wire () in
          note id geo;
          id
    in
    if node_id = -2 then ()
    else begin
      (* an interior pin hangs off its point with a zero-length wire so
         the sink stays a leaf *)
      (match (pin, parent_id) with
      | Some p, _ when kids <> [] || parent_id = -1 ->
          add_pin_leaf node_id Rctree.Tree.zero_wire p
      | Some _, _ | None, _ -> ());
      List.iter
        (fun q ->
          let w = Rctree.Tree.wire_of_length process (Tech.Process.of_nm (P.manhattan point q)) in
          emit q (Some (point, q)) w node_id)
        kids
    end
  in
  emit g.source None Rctree.Tree.zero_wire (-1);
  let tree = Rctree.Builder.finish b in
  let geo = Array.make (Rctree.Tree.node_count tree) None in
  List.iter (fun (id, g) -> geo.(id) <- g) !geometry;
  (tree, geo)

let to_rctree process net g = fst (to_rctree_traced process net g)

let tree_of_net process net = to_rctree process net (of_net net)
