(** Placed nets: a driver location plus sink pins with electrical specs.

    Coordinates are integers in nanometres ({!Geometry.Point}); electrical
    values are SI. This is the interface between placement/workload data
    and topology construction. *)

type pin = {
  pname : string;
  at : Geometry.Point.t;
  c_sink : float;  (** F *)
  rat : float;  (** s *)
  nm : float;  (** V *)
}

type t = {
  nname : string;
  source : Geometry.Point.t;
  r_drv : float;  (** ohm *)
  d_drv : float;  (** s *)
  pins : pin list;
}

val make :
  name:string ->
  source:Geometry.Point.t ->
  r_drv:float ->
  d_drv:float ->
  pins:pin list ->
  t
(** Requires at least one pin and pairwise-distinct pin/source locations. *)

val degree : t -> int
(** Number of sinks. *)

val hpwl : t -> int
(** Half-perimeter wirelength bound, nm. *)

val all_points : t -> Geometry.Point.t array
(** Source first, then pins in order. *)
