(** Incremental rectilinear Steiner tree construction.

    Pins are inserted in Prim-MST order; each pin connects to the nearest
    point of the tree built so far (possibly the interior of an existing
    segment, which is then split) through an L-shaped route whose corner
    becomes a Steiner point. Because the nearest tree point is never
    farther than the pin's Prim parent, the total length never exceeds
    the MST length — the classical cheap Steinerization the paper's
    "given Steiner estimation" presumes. *)

type t
(** A rectilinear tree over grid points: axis-aligned segments, the
    source, and the pin locations. *)

val of_net : Net.t -> t

val wirelength : t -> int
(** Total segment length, nm. *)

val segment_count : t -> int

val segments : t -> (Geometry.Point.t * Geometry.Point.t) list
(** The axis-aligned segments of the tree, each once. *)

val to_rctree : Tech.Process.t -> Net.t -> t -> Rctree.Tree.t
(** Root the tree at the net's source and convert: segments become
    estimation-mode wires of their length, pins become sinks with their
    electrical specs, corners and Steiner points become feasible internal
    nodes (the builder binarizes high-degree points with infeasible
    dummies). *)

val to_rctree_traced :
  Tech.Process.t -> Net.t -> t -> Rctree.Tree.t * (Geometry.Point.t * Geometry.Point.t) option array
(** Like {!to_rctree}, also reporting each node's parent-wire geometry as
    [(parent point, node point)] — [None] for the root and the
    zero-length pin stubs. The coupling-extraction engine maps
    parallel-run overlaps through this into wire-relative spans. *)

val tree_of_net : Tech.Process.t -> Net.t -> Rctree.Tree.t
(** [of_net] followed by [to_rctree]. *)
