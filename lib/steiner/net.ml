type pin = { pname : string; at : Geometry.Point.t; c_sink : float; rat : float; nm : float }

type t = {
  nname : string;
  source : Geometry.Point.t;
  r_drv : float;
  d_drv : float;
  pins : pin list;
}

let make ~name ~source ~r_drv ~d_drv ~pins =
  if pins = [] then invalid_arg "Net.make: no pins";
  let pts = source :: List.map (fun p -> p.at) pins in
  let sorted = List.sort Geometry.Point.compare pts in
  let rec dup = function
    | a :: (b :: _ as rest) -> Geometry.Point.equal a b || dup rest
    | [] | [ _ ] -> false
  in
  if dup sorted then invalid_arg "Net.make: coincident pin locations";
  { nname = name; source; r_drv; d_drv; pins }

let degree t = List.length t.pins

let all_points_list t = t.source :: List.map (fun p -> p.at) t.pins

let hpwl t = Geometry.Bbox.half_perimeter (Geometry.Bbox.of_points (all_points_list t))

let all_points t = Array.of_list (all_points_list t)
