(** Prim's rectilinear minimum spanning tree.

    Used both as a baseline for Steiner-length tests and to order pin
    insertion in {!Build}: inserting pins in Prim order guarantees the
    incremental Steiner tree is no longer than the MST. *)

val prim : Geometry.Point.t array -> (int * int) array
(** [prim pts] with [pts.(0)] as the root returns, in insertion order,
    edges [(child, parent)] over indices; [Array.length] is
    [length pts - 1]. O(n^2). *)

val length : Geometry.Point.t array -> (int * int) array -> int
(** Total Manhattan length of an edge set. *)
