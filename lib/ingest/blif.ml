exception Parse of string

type names = { n_inputs : string list; n_output : string; cover : string list; n_line : int }

type latch = {
  l_input : string;
  l_output : string;
  l_kind : string option;
  l_control : string option;
  l_init : string option;
  l_line : int;
}

type subckt = { s_model : string; s_bindings : (string * string) list; s_line : int }

type t = {
  path : string;
  model : string;
  inputs : string list;
  outputs : string list;
  names : names list;
  latches : latch list;
  subckts : subckt list;
}

let latch_kinds = [ "fe"; "re"; "ah"; "al"; "as" ]

(* Comment-stripped, continuation-joined lines, each tagged with the
   physical line the construct starts on. All passes are linear in the
   input size — a 10 MB single-line file must reject fast, not crawl. *)
let logical_lines text =
  let strip s =
    let s = match String.index_opt s '#' with Some i -> String.sub s 0 i | None -> s in
    let n = String.length s in
    if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s
  in
  let out = ref [] and pending = ref None in
  let flush () =
    match !pending with
    | Some (ln, buf) ->
        out := (ln, Buffer.contents buf) :: !out;
        pending := None
    | None -> ()
  in
  List.iteri
    (fun i raw ->
      let s = strip raw in
      let n = String.length s in
      let continued = n > 0 && s.[n - 1] = '\\' in
      let body = if continued then String.sub s 0 (n - 1) else s in
      (match !pending with
      | Some (_, buf) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf body
      | None -> pending := Some (i + 1, Buffer.create (String.length body + 16) |> fun b -> Buffer.add_string b body; b));
      if not continued then flush ())
    (String.split_on_char '\n' text);
  flush ();
  List.rev !out

let tokens s =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) s)
  |> List.filter (fun w -> w <> "")

let of_string ?(path = "<string>") text =
  let fail line fmt =
    Printf.ksprintf (fun m -> raise (Parse (Printf.sprintf "%s:%d: %s" path line m))) fmt
  in
  let model = ref None in
  let inputs = ref [] and outputs = ref [] in
  let seen_in = Hashtbl.create 64 and seen_out = Hashtbl.create 64 in
  let names = ref [] and latches = ref [] and subckts = ref [] in
  (* the [.names] whose cover rows we are collecting, if any *)
  let cur = ref None in
  let ended = ref false in
  let last_line = ref 0 in
  let flush_cur () =
    match !cur with
    | Some (n, cover) ->
        names := { n with cover = List.rev cover } :: !names;
        cur := None
    | None -> ()
  in
  let require_model ln d = if !model = None then fail ln "%s before .model" d in
  let directive ln d args =
    flush_cur ();
    match d with
    | ".model" -> (
        match (!model, args) with
        | Some m, _ -> fail ln "duplicate .model (already inside model %s)" m
        | None, [ name ] -> model := Some name
        | None, _ -> fail ln "usage: .model <name>")
    | ".inputs" ->
        require_model ln d;
        List.iter
          (fun s ->
            if Hashtbl.mem seen_in s then fail ln "duplicate input %s" s;
            Hashtbl.replace seen_in s ())
          args;
        inputs := List.rev_append args !inputs
    | ".outputs" ->
        require_model ln d;
        List.iter
          (fun s ->
            if Hashtbl.mem seen_out s then fail ln "duplicate output %s" s;
            Hashtbl.replace seen_out s ())
          args;
        outputs := List.rev_append args !outputs
    | ".names" -> (
        require_model ln d;
        match List.rev args with
        | [] -> fail ln "usage: .names <input>* <output>"
        | n_output :: rev_ins ->
            let n_inputs = List.rev rev_ins in
            let seen = Hashtbl.create 8 in
            List.iter
              (fun s ->
                if Hashtbl.mem seen s then
                  fail ln "signal %s listed twice on .names %s" s n_output;
                Hashtbl.replace seen s ())
              n_inputs;
            cur := Some ({ n_inputs; n_output; cover = []; n_line = ln }, []))
    | ".latch" ->
        require_model ln d;
        let kind k =
          if List.mem k latch_kinds then k
          else fail ln "bad latch type %s (want fe/re/ah/al/as)" k
        in
        let init v =
          if List.mem v [ "0"; "1"; "2"; "3" ] then v
          else fail ln "bad latch init %s (want 0/1/2/3)" v
        in
        let l =
          match args with
          | [ i; o ] ->
              { l_input = i; l_output = o; l_kind = None; l_control = None; l_init = None; l_line = ln }
          | [ i; o; v ] ->
              { l_input = i; l_output = o; l_kind = None; l_control = None; l_init = Some (init v); l_line = ln }
          | [ i; o; k; c ] ->
              { l_input = i; l_output = o; l_kind = Some (kind k); l_control = Some c; l_init = None; l_line = ln }
          | [ i; o; k; c; v ] ->
              {
                l_input = i;
                l_output = o;
                l_kind = Some (kind k);
                l_control = Some c;
                l_init = Some (init v);
                l_line = ln;
              }
          | _ -> fail ln "usage: .latch <input> <output> [<type> <control>] [<init>]"
        in
        latches := l :: !latches
    | ".subckt" -> (
        require_model ln d;
        match args with
        | [] | [ _ ] -> fail ln "usage: .subckt <model> <formal>=<actual>..."
        | s_model :: binds ->
            let seen = Hashtbl.create 8 in
            let s_bindings =
              List.map
                (fun b ->
                  match String.index_opt b '=' with
                  | None -> fail ln "subckt binding %s is not <formal>=<actual>" b
                  | Some i ->
                      let f = String.sub b 0 i
                      and a = String.sub b (i + 1) (String.length b - i - 1) in
                      if f = "" || a = "" then
                        fail ln "subckt binding %s is not <formal>=<actual>" b;
                      if Hashtbl.mem seen f then
                        fail ln "formal %s bound twice on .subckt %s" f s_model;
                      Hashtbl.replace seen f ();
                      (f, a))
                binds
            in
            subckts := { s_model; s_bindings; s_line = ln } :: !subckts)
    | ".end" ->
        require_model ln d;
        ended := true
    | _ -> fail ln "unknown directive %s" d
  in
  let cover_row ln toks =
    match !cur with
    | None -> fail ln "cover row outside .names"
    | Some (n, cover) ->
        let k = List.length n.n_inputs in
        let plane, value =
          match toks with
          | [ v ] when k = 0 -> ("", v)
          | [ p; v ] when k > 0 -> (p, v)
          | _ -> fail ln "cover row wants %s" (if k = 0 then "<value>" else "<plane> <value>")
        in
        if String.length plane <> k then
          fail ln "cover plane %s has %d columns, .names %s has %d inputs" plane
            (String.length plane) n.n_output k;
        String.iter
          (fun c -> if c <> '0' && c <> '1' && c <> '-' then fail ln "bad cover column %c" c)
          plane;
        if value <> "0" && value <> "1" then fail ln "bad cover value %s" value;
        let row = if k = 0 then value else plane ^ " " ^ value in
        cur := Some (n, row :: cover)
  in
  List.iter
    (fun (ln, line) ->
      last_line := ln;
      match tokens line with
      | [] -> ()
      | d :: args when String.length d > 0 && d.[0] = '.' ->
          if !ended then fail ln "content after .end";
          directive ln d args
      | toks ->
          if !ended then fail ln "content after .end";
          cover_row ln toks)
    (logical_lines text);
  flush_cur ();
  match !model with
  | None -> fail (!last_line + 1) "missing .model"
  | Some model ->
      {
        path;
        model;
        inputs = List.rev !inputs;
        outputs = List.rev !outputs;
        names = List.rev !names;
        latches = List.rev !latches;
        subckts = List.rev !subckts;
      }

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string ~path (really_input_string ic (in_channel_length ic)))

let to_string t =
  let b = Buffer.create 1024 in
  Printf.bprintf b ".model %s\n" t.model;
  if t.inputs <> [] then Printf.bprintf b ".inputs %s\n" (String.concat " " t.inputs);
  if t.outputs <> [] then Printf.bprintf b ".outputs %s\n" (String.concat " " t.outputs);
  List.iter
    (fun n ->
      Printf.bprintf b ".names %s\n" (String.concat " " (n.n_inputs @ [ n.n_output ]));
      List.iter (fun row -> Printf.bprintf b "%s\n" row) n.cover)
    t.names;
  List.iter
    (fun l ->
      Printf.bprintf b ".latch %s %s%s%s\n" l.l_input l.l_output
        (match (l.l_kind, l.l_control) with
        | Some k, Some c -> Printf.sprintf " %s %s" k c
        | _ -> "")
        (match l.l_init with Some v -> " " ^ v | None -> ""))
    t.latches;
  List.iter
    (fun s ->
      Printf.bprintf b ".subckt %s %s\n" s.s_model
        (String.concat " " (List.map (fun (f, a) -> f ^ "=" ^ a) s.s_bindings)))
    t.subckts;
  Buffer.add_string b ".end\n";
  Buffer.contents b

let write path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let signals t =
  let seen = Hashtbl.create 64 and out = ref [] in
  let add s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.replace seen s ();
      out := s :: !out
    end
  in
  List.iter add t.inputs;
  List.iter add t.outputs;
  List.iter
    (fun n ->
      List.iter add n.n_inputs;
      add n.n_output)
    t.names;
  List.iter
    (fun l ->
      add l.l_input;
      add l.l_output)
    t.latches;
  List.iter (fun s -> List.iter (fun (_, a) -> add a) s.s_bindings) t.subckts;
  List.rev !out
