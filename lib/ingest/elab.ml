module D = Sta.Design
module P = Geometry.Point

exception Error of string

type options = { cells : Sta.Cell.t list; die : int; seed : int; period : float }

let default_options =
  {
    cells = Sta.Cell.library;
    die = Sta.Gen.default_config.Sta.Gen.die;
    seed = Sta.Gen.default_config.Sta.Gen.seed;
    period = Sta.Gen.default_config.Sta.Gen.period;
  }

(* an elaborated gate, before placement *)
type gate = { gname : string; cell : Sta.Cell.t; out_sig : string; in_sigs : string list }

type driver = Pi of int | Gate of int

let output_formals = [ "y"; "z"; "o"; "out"; "q" ]

let design_of_blif ?(options = default_options) (b : Blif.t) =
  let err line fmt =
    Printf.ksprintf (fun m -> raise (Error (Printf.sprintf "%s:%d: %s" b.Blif.path line m))) fmt
  in
  let n_cells = List.length options.cells in
  (* ---- gates from .names and .subckt ---- *)
  let gate_of_names (n : Blif.names) =
    let k = List.length n.Blif.n_inputs in
    if k = 0 then err n.Blif.n_line "constant .names %s not supported" n.Blif.n_output;
    match List.find_opt (fun (c : Sta.Cell.t) -> c.Sta.Cell.n_inputs = k) options.cells with
    | Some cell ->
        { gname = n.Blif.n_output; cell; out_sig = n.Blif.n_output; in_sigs = n.Blif.n_inputs }
    | None ->
        err n.Blif.n_line "no %d-input cell for .names %s (library has %d cells)" k
          n.Blif.n_output n_cells
  in
  let gate_of_subckt (s : Blif.subckt) =
    let cell =
      match
        List.find_opt (fun (c : Sta.Cell.t) -> c.Sta.Cell.cname = s.Blif.s_model) options.cells
      with
      | Some c -> c
      | None ->
          err s.Blif.s_line "unknown cell %s on .subckt (library has %d cells)" s.Blif.s_model
            n_cells
    in
    let is_out (f, _) = List.mem (String.lowercase_ascii f) output_formals in
    let out_binding =
      match List.filter is_out s.Blif.s_bindings with
      | o :: _ -> o
      | [] -> List.nth s.Blif.s_bindings (List.length s.Blif.s_bindings - 1)
    in
    let ins = List.filter (fun bnd -> bnd != out_binding) s.Blif.s_bindings in
    if List.length ins <> cell.Sta.Cell.n_inputs then
      err s.Blif.s_line "cell %s wants %d inputs, .subckt binds %d" s.Blif.s_model
        cell.Sta.Cell.n_inputs (List.length ins);
    let out_sig = snd out_binding in
    { gname = out_sig; cell; out_sig; in_sigs = List.map snd ins }
  in
  let gates =
    Array.of_list
      (List.map gate_of_names b.Blif.names @ List.map gate_of_subckt b.Blif.subckts)
  in
  let gate_lines =
    Array.of_list
      (List.map (fun (n : Blif.names) -> n.Blif.n_line) b.Blif.names
      @ List.map (fun (s : Blif.subckt) -> s.Blif.s_line) b.Blif.subckts)
  in
  let gate_line gi = gate_lines.(gi) in
  (* ---- single-driver check; PI signals are inputs and latch outputs ---- *)
  let pi_sigs = b.Blif.inputs @ List.map (fun (l : Blif.latch) -> l.Blif.l_output) b.Blif.latches in
  let drivers = Hashtbl.create 64 in
  List.iteri
    (fun p s ->
      if Hashtbl.mem drivers s then err 1 "signal %s driven twice (input/latch output)" s;
      Hashtbl.replace drivers s (Pi p))
    pi_sigs;
  Array.iteri
    (fun gi g ->
      if Hashtbl.mem drivers g.out_sig then
        err (gate_line gi) "signal %s driven twice" g.out_sig;
      Hashtbl.replace drivers g.out_sig (Gate gi))
    gates;
  (* ---- uses: gate pins, model outputs, latch inputs ---- *)
  let sinks_of = Hashtbl.create 64 in
  let add_sink s sink =
    Hashtbl.replace sinks_of s (sink :: Option.value ~default:[] (Hashtbl.find_opt sinks_of s))
  in
  let require_driver line s what =
    if not (Hashtbl.mem drivers s) then
      err line "signal %s is undriven (feeds %s)" s what
  in
  Array.iteri
    (fun gi g ->
      let seen = Hashtbl.create 4 in
      List.iteri
        (fun k s ->
          if Hashtbl.mem seen s then
            err (gate_line gi) "signal %s feeds gate %s twice" s g.gname;
          Hashtbl.replace seen s ();
          require_driver (gate_line gi) s ("gate " ^ g.gname);
          add_sink s (D.To_inst (gi, k)))
        g.in_sigs)
    gates;
  (* POs: model outputs, latch inputs, then synthesized ones for
     dangling gate outputs *)
  let po_sigs = ref [] and n_po = ref 0 in
  let new_po line s what =
    require_driver line s what;
    let p = !n_po in
    incr n_po;
    po_sigs := s :: !po_sigs;
    add_sink s (D.To_po p)
  in
  List.iter (fun s -> new_po 1 s "model output") b.Blif.outputs;
  List.iter
    (fun (l : Blif.latch) -> new_po l.Blif.l_line l.Blif.l_input ("latch " ^ l.Blif.l_output))
    b.Blif.latches;
  Array.iteri
    (fun gi g ->
      if not (Hashtbl.mem sinks_of g.out_sig) then
        new_po (gate_line gi) g.out_sig ("dangling output of gate " ^ g.gname))
    gates;
  let po_sigs = Array.of_list (List.rev !po_sigs) in
  (* unused PI signals are dropped (a warning each), so every remaining
     driver has at least one sink *)
  let warnings = ref 0 in
  let pi_sigs =
    List.filter
      (fun s ->
        let used = Hashtbl.mem sinks_of s in
        if not used then begin
          incr warnings;
          Hashtbl.remove drivers s
        end;
        used)
      pi_sigs
  in
  List.iteri (fun p s -> Hashtbl.replace drivers s (Pi p)) pi_sigs;
  let pi_sigs = Array.of_list pi_sigs in
  (* ---- deterministic placement and pad electricals (Gen.random's idiom) ---- *)
  let rng = Util.Rng.create options.seed in
  let seen = Hashtbl.create 64 in
  let rec place () =
    let p = P.make (Util.Rng.int rng options.die) (Util.Rng.int rng options.die) in
    if Hashtbl.mem seen p then place ()
    else begin
      Hashtbl.replace seen p ();
      p
    end
  in
  let pis =
    Array.map
      (fun s ->
        {
          D.pname = s;
          pat = place ();
          arrival = Util.Rng.range rng 0.0 100e-12;
          r_pad = Util.Rng.range rng 40.0 150.0;
          d_pad = Util.Rng.range rng 20e-12 50e-12;
        })
      pi_sigs
  in
  let instances =
    Array.map (fun g -> { D.iname = g.gname; cell = g.cell; at = place () }) gates
  in
  let pos =
    Array.map
      (fun s ->
        {
          D.oname = s;
          oat = place ();
          required = options.period;
          c_pad = Util.Rng.range rng 20e-15 60e-15;
          po_nm = 0.8;
        })
      po_sigs
  in
  (* ---- nets: PI-driven first, then gate-driven, named by signal ---- *)
  let net_of_signal s source =
    let sinks = Array.of_list (List.rev (Hashtbl.find sinks_of s)) in
    { D.nname = s; source; sinks }
  in
  let nets =
    Array.append
      (Array.mapi (fun p s -> net_of_signal s (D.From_pi p)) pi_sigs)
      (Array.mapi (fun gi g -> net_of_signal g.out_sig (D.From_inst gi)) gates)
  in
  let design = { D.instances; nets; pis; pos } in
  (match D.validate design with
  | Ok () -> ()
  | Error e -> err 1 "elaborated design invalid: %s" e);
  (design, !warnings)

let blif_of_design ?(model = "design") (d : D.t) =
  let sig_of_net nid = d.D.nets.(nid).D.nname in
  let sig_of_source src = sig_of_net (D.net_of_source d src) in
  let pin_sig = Hashtbl.create 64 and po_sig = Hashtbl.create 16 in
  Array.iteri
    (fun nid (n : D.net) ->
      Array.iter
        (fun s ->
          match s with
          | D.To_po p -> Hashtbl.replace po_sig p (sig_of_net nid)
          | D.To_inst (i, k) -> Hashtbl.replace pin_sig (i, k) (sig_of_net nid))
        n.D.sinks)
    d.D.nets;
  let inputs =
    Array.to_list (Array.mapi (fun p _ -> sig_of_source (D.From_pi p)) d.D.pis)
  in
  let outputs = Array.to_list (Array.mapi (fun p _ -> Hashtbl.find po_sig p) d.D.pos) in
  let subckts =
    Array.to_list
      (Array.mapi
         (fun i (inst : D.instance) ->
           let cell = inst.D.cell in
           let ins =
             List.init cell.Sta.Cell.n_inputs (fun k ->
                 (Printf.sprintf "a%d" k, Hashtbl.find pin_sig (i, k)))
           in
           {
             Blif.s_model = cell.Sta.Cell.cname;
             s_bindings = ins @ [ ("y", sig_of_source (D.From_inst i)) ];
             s_line = 0;
           })
         d.D.instances)
  in
  { Blif.path = "<design>"; model; inputs; outputs; names = []; latches = []; subckts }

let load ?(options = default_options) ?liberty path =
  let cells, buffers, lib_warnings =
    match liberty with
    | None -> (options.cells, Tech.Lib.default_library, 0)
    | Some lib_path ->
        let l = Liberty.read lib_path in
        let cells = if l.Liberty.cells = [] then options.cells else l.Liberty.cells in
        let buffers =
          if l.Liberty.buffers = [] then Tech.Lib.default_library else l.Liberty.buffers
        in
        (cells, buffers, l.Liberty.warnings)
  in
  if Filename.check_suffix (String.lowercase_ascii path) ".blif" then begin
    let design, w = design_of_blif ~options:{ options with cells } (Blif.read path) in
    (design, buffers, lib_warnings + w)
  end
  else (Sta.Netfmt.read ~cells path, buffers, lib_warnings)
