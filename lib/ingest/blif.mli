(** Berkeley Logic Interchange Format netlists (the real-design front end).

    The subset every synthesis flow emits: one combinational model per
    file with [.model] / [.inputs] / [.outputs] / [.names] (single-output
    cover) / [.latch] / [.subckt] / [.end]. Comments ([#] to end of
    line) and [\ ] line continuations are handled; [.inputs] and
    [.outputs] may be split over several directives. Unknown dot
    directives, cover lines whose plane does not match the gate's input
    count, content after [.end] and a second [.model] are all rejected
    with a located {!Parse}.

    Parsing builds a plain AST; {!Elab} turns it into a placed
    {!Sta.Design.t}. [to_string] renders the canonical layout, and
    [of_string (to_string m)] reproduces [m] up to source line numbers
    (the round-trip the parser fuzz oracle checks). *)

exception Parse of string
(** Carries ["file:line: message"]. *)

type names = {
  n_inputs : string list;
  n_output : string;
  cover : string list;  (** verbatim cover rows, e.g. ["11 1"]; ["1"] for 0-input *)
  n_line : int;  (** source line of the [.names] directive *)
}

type latch = {
  l_input : string;
  l_output : string;
  l_kind : string option;  (** [re]/[fe]/[ah]/[al]/[as], when given *)
  l_control : string option;
  l_init : string option;  (** 0, 1, 2 (don't care) or 3 (unknown) *)
  l_line : int;
}

type subckt = {
  s_model : string;  (** referenced cell name *)
  s_bindings : (string * string) list;  (** formal=actual, in file order *)
  s_line : int;
}

type t = {
  path : string;  (** origin, for error messages; not rendered *)
  model : string;
  inputs : string list;
  outputs : string list;
  names : names list;  (** in file order *)
  latches : latch list;
  subckts : subckt list;
}

val of_string : ?path:string -> string -> t
(** Parse one model from a string; [path] (default ["<string>"]) labels
    {!Parse} locations. A missing [.end] at end of file is tolerated,
    like every consumer of the format. *)

val read : string -> t
(** Parse a file; raises {!Parse} (and [Sys_error] when unreadable). *)

val to_string : t -> string
(** Canonical rendering: [.model], one [.inputs] line, one [.outputs]
    line, then [.names] / [.latch] / [.subckt] in file order, [.end]. *)

val write : string -> t -> unit

val signals : t -> string list
(** Every distinct signal mentioned, in first-mention order. *)
