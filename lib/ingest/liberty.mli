(** Liberty-subset cell library reader and writer.

    Covers the structural core every .lib file shares: a tokenizer
    ([/* */] and [//] comments, ["..."] strings, [{}():;,] punctuation)
    feeding a recursive group parser, interpreted for
    [library]/[cell]/[pin]/[timing] with [capacitance], [direction],
    [function], [noise_margin] and the linear-model timing attributes
    ([intrinsic_rise]/[intrinsic_fall], [rise_resistance]/
    [fall_resistance]). Units come from [time_unit] and
    [capacitive_load_unit]; when the multiplier is 1 the scaling is a
    decimal-exponent shift ({!Util.Fx.of_scaled}), so values written by
    {!to_string} read back bit-identical. Unknown groups and attributes
    are skipped and counted in [warnings] — real libraries carry far
    more than this subset. Structural damage (unterminated groups or
    strings, junk tokens, duplicate cells) raises a located {!Parse}. *)

exception Parse of string
(** Carries ["file:line: message"]. *)

type t = {
  path : string;
  name : string;  (** the [library (name)] argument *)
  cells : Sta.Cell.t list;  (** every usable cell, in file order *)
  buffers : Tech.Buffer.t list;
      (** the 1-input cells whose output [function] is the input or its
          negation, in file order — the repeater library the DP uses *)
  warnings : int;  (** skipped unknown constructs and salvaged cells *)
}

val of_string : ?path:string -> string -> t
(** Parse one library; [path] (default ["<string>"]) labels {!Parse}
    locations. Cells missing an input pin, an output pin, or timing are
    skipped with a warning rather than rejected; duplicate cell names
    are a {!Parse}. *)

val read : string -> t

val to_string : ?name:string -> ?buffers:Tech.Buffer.t list -> Sta.Cell.t list -> string
(** Render a library in canonical form: ps/fF units with multiplier 1,
    the given cells first and then [buffers] (default []) as 1-input
    cells with a [function]. Reading the result back yields exactly the
    given buffers, and cells whose prefix is exactly the given cells
    (each buffer also reappearing as its cell form), with zero
    warnings. *)

val write : string -> ?name:string -> ?buffers:Tech.Buffer.t list -> Sta.Cell.t list -> unit
