(** Elaborate a parsed BLIF model into a placed {!Sta.Design.t}.

    Gates come from [.names] (mapped to the first library cell of
    matching arity) and [.subckt] (cell looked up by model name; the
    output formal is the binding named y/z/o/out/q, else the last
    binding). Latches cut the combinational graph: a latch output
    becomes a pseudo-PI and a latch input a pseudo-PO, so the DP stack
    sees the register-to-register paths the paper optimizes. Gate
    outputs that drive nothing get a synthesized PO (a net must sink
    somewhere); unused model inputs are dropped with a warning.

    BLIF carries no placement or electricals, so both are synthesized
    deterministically from [options]: instances, pads and pins land on
    distinct die coordinates drawn from a seeded {!Util.Rng}, with the
    same pad-parameter ranges {!Sta.Gen.random} uses. Equal inputs and
    options give byte-identical designs.

    Structural nonsense — unknown cells, arity mismatches, a signal
    driven twice or feeding one gate twice, undriven uses, constant
    [.names], combinational cycles — raises a located {!Error}. *)

exception Error of string
(** Carries ["file:line: message"]. *)

type options = {
  cells : Sta.Cell.t list;  (** gate library (default {!Sta.Cell.library}) *)
  die : int;  (** placement die side, nm *)
  seed : int;  (** placement / pad-parameter seed *)
  period : float;  (** required time at every PO, s *)
}

val default_options : options
(** {!Sta.Cell.library}, the {!Sta.Gen.default_config} die, seed and
    period. *)

val design_of_blif : ?options:options -> Blif.t -> Sta.Design.t * int
(** The elaborated design and the warning count (dropped unused
    inputs). The result always passes {!Sta.Design.validate}. *)

val blif_of_design : ?model:string -> Sta.Design.t -> Blif.t
(** Render a design as a pure-[.subckt] netlist over its net names.
    Placement and electricals are dropped; elaborating the result with
    equal options is deterministic, which is the round-trip the
    property tests pin. *)

val load : ?options:options -> ?liberty:string -> string -> Sta.Design.t * Tech.Buffer.t list * int
(** Front-end dispatch on extension: [.blif] goes through {!Blif.read}
    and {!design_of_blif}, anything else through {!Sta.Netfmt.read}.
    [liberty] supplies the cell library and buffer library from a .lib
    file (overriding [options.cells]); without it the built-in
    {!Sta.Cell.library} / {!Tech.Lib.default_library} are used. Returns
    design, buffer library, and total front-end warning count. *)
