exception Parse of string

type t = {
  path : string;
  name : string;
  cells : Sta.Cell.t list;
  buffers : Tech.Buffer.t list;
  warnings : int;
}

let located path line fmt =
  Printf.ksprintf (fun m -> raise (Parse (Printf.sprintf "%s:%d: %s" path line m))) fmt

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                           *)

type token = Ident of string | Str of string | Punct of char

let is_punct c = c = '{' || c = '}' || c = '(' || c = ')' || c = ':' || c = ';' || c = ','

let is_space c = c = ' ' || c = '\t' || c = '\r' || c = '\n'

let tokenize ~path text =
  let fail line fmt = located path line fmt in
  let n = String.length text in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if is_space c then incr i
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '/' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '*' then begin
      let start = !line in
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if text.[!i] = '\n' then incr line;
        if text.[!i] = '*' && !i + 1 < n && text.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then fail start "unterminated comment"
    end
    else if c = '"' then begin
      let start = !line in
      let b = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        let c = text.[!i] in
        if c = '"' then begin
          closed := true;
          incr i
        end
        else if c = '\n' then fail start "unterminated string"
        else begin
          Buffer.add_char b c;
          incr i
        end
      done;
      if not !closed then fail start "unterminated string";
      toks := (Str (Buffer.contents b), start) :: !toks
    end
    else if is_punct c then begin
      toks := (Punct c, !line) :: !toks;
      incr i
    end
    else begin
      let start = !i in
      while
        !i < n
        && not (is_space text.[!i] || is_punct text.[!i] || text.[!i] = '"' || text.[!i] = '/')
      do
        incr i
      done;
      if !i = start then fail !line "stray character %C" c
      else toks := (Ident (String.sub text start (!i - start)), !line) :: !toks
    end
  done;
  (Array.of_list (List.rev !toks), !line)

(* ------------------------------------------------------------------ *)
(* Generic group AST                                                   *)

type stmt =
  | Attr of string * string * int  (* name : value ; *)
  | Complex of string * string list * int  (* name ( args ) ; *)
  | Group of group

and group = { g_name : string; g_args : string list; g_line : int; g_stmts : stmt list }

let parse_ast ~path text =
  let toks, last_line = tokenize ~path text in
  let fail line fmt = located path line fmt in
  let n = Array.length toks in
  let pos = ref 0 in
  let peek () = if !pos < n then Some toks.(!pos) else None in
  let next what =
    match peek () with
    | Some t ->
        incr pos;
        t
    | None -> fail last_line "unexpected end of file (wanted %s)" what
  in
  let expect_punct c =
    match next (Printf.sprintf "%C" c) with
    | Punct p, _ when p = c -> ()
    | _, l -> fail l "expected %C" c
  in
  let value what =
    match next what with
    | Ident s, _ | Str s, _ -> s
    | Punct p, l -> fail l "expected %s, got %C" what p
  in
  (* ( v , v , ... ) — the opening paren is already consumed *)
  let rec args acc =
    match peek () with
    | Some (Punct ')', _) ->
        incr pos;
        List.rev acc
    | Some _ ->
        let v = value "argument" in
        (match peek () with Some (Punct ',', _) -> incr pos | _ -> ());
        args (v :: acc)
    | None -> fail last_line "unexpected end of file (wanted ')')"
  in
  let rec group_body name g_args g_line =
    (* '{' just consumed *)
    let stmts = ref [] in
    let closed = ref false in
    while not !closed do
      match peek () with
      | Some (Punct '}', _) ->
          incr pos;
          closed := true
      | Some (Punct ';', _) -> incr pos
      | Some (Ident id, l) -> begin
          incr pos;
          match peek () with
          | Some (Punct ':', _) ->
              incr pos;
              let v = value "attribute value" in
              (match peek () with Some (Punct ';', _) -> incr pos | _ -> ());
              stmts := Attr (id, v, l) :: !stmts
          | Some (Punct '(', _) -> begin
              incr pos;
              let a = args [] in
              match peek () with
              | Some (Punct '{', _) ->
                  incr pos;
                  stmts := Group (group_body id a l) :: !stmts
              | Some (Punct ';', _) ->
                  incr pos;
                  stmts := Complex (id, a, l) :: !stmts
              | _ -> stmts := Complex (id, a, l) :: !stmts
            end
          | Some (_, l') -> fail l' "expected ':' or '(' after %s" id
          | None -> fail last_line "unexpected end of file in group %s" name
        end
      | Some (Str _, l) -> fail l "unexpected string literal in group %s" name
      | Some (Punct p, l) -> fail l "unexpected %C in group %s" p name
      | None -> fail last_line "unterminated group %s (missing '}')" name
    done;
    { g_name = name; g_args; g_line; g_stmts = List.rev !stmts }
  in
  let top =
    match next "library group" with
    | Ident "library", l -> begin
        expect_punct '(';
        let a = args [] in
        expect_punct '{';
        group_body "library" a l
      end
    | Ident other, l -> fail l "expected library, got %s" other
    | (Str _ | Punct _), l -> fail l "expected library"
  in
  (match peek () with
  | Some (Punct ';', _) -> incr pos
  | _ -> ());
  (match peek () with
  | Some (_, l) -> fail l "trailing input after library group"
  | None -> ());
  top

(* ------------------------------------------------------------------ *)
(* Unit scaling                                                        *)

(* SI value = file value scaled; [Exact e] shifts the decimal exponent
   (lossless), [Mul m] multiplies (used only for multipliers <> 1). *)
type scale = Exact of int | Mul of float

let exp10_of_time = function
  | "s" -> Some 0
  | "ms" -> Some (-3)
  | "us" -> Some (-6)
  | "ns" -> Some (-9)
  | "ps" -> Some (-12)
  | _ -> None

let exp10_of_cap = function
  | "f" -> Some 0
  | "mf" -> Some (-3)
  | "uf" -> Some (-6)
  | "nf" -> Some (-9)
  | "pf" -> Some (-12)
  | "ff" -> Some (-15)
  | _ -> None

let scale_of ~mult ~exp10 =
  match float_of_string_opt mult with
  | Some 1.0 -> Some (Exact exp10)
  | Some m when Float.is_finite m && m > 0.0 -> Some (Mul (m *. (10.0 ** float_of_int exp10)))
  | Some _ | None -> None

(* time_unit strings look like "1ns" / "10ps": multiplier digits, unit *)
let time_scale s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && (s.[!i] = '.' || (s.[!i] >= '0' && s.[!i] <= '9')) do
    incr i
  done;
  let mult = if !i = 0 then "1" else String.sub s 0 !i in
  match exp10_of_time (String.sub s !i (n - !i)) with
  | Some e -> scale_of ~mult ~exp10:e
  | None -> None

let apply ~path scale line s =
  let bad () = located path line "bad number %s" s in
  match scale with
  | Exact e -> ( match Util.Fx.of_scaled ~exp10:e s with Some v -> v | None -> bad ())
  | Mul m -> (
      match float_of_string_opt s with
      | Some v when Float.is_finite v -> v *. m
      | Some _ | None -> bad ())

let div_scale a b =
  match (a, b) with
  | Exact x, Exact y -> Exact (x - y)
  | _ ->
      let f = function Exact e -> 10.0 ** float_of_int e | Mul m -> m in
      Mul (f a /. f b)

(* ------------------------------------------------------------------ *)
(* Interpretation                                                      *)

(* a buffer's output function, normalized: drop spaces/parens/quotes *)
let normalize_fn s =
  String.to_seq s
  |> Seq.filter (fun c -> not (is_space c || c = '(' || c = ')' || c = '"'))
  |> String.of_seq

type pin = {
  p_name : string;
  p_dir : string option;
  p_cap : string option;  (* raw text; scaled lazily for exactness *)
  p_nm : string option;
  p_fn : string option;
  p_timing : (string * string * int) list;  (* timing attrs, first group *)
  p_line : int;
}

let of_string ?(path = "<string>") text =
  let lib = parse_ast ~path text in
  let fail line fmt = located path line fmt in
  let warnings = ref 0 in
  let warn () = incr warnings in
  let lib_name = match lib.g_args with name :: _ -> name | [] -> "" in
  (* pass 1: units (position-independent, first occurrence wins) *)
  let t_scale = ref None and c_scale = ref None in
  List.iter
    (fun s ->
      match s with
      | Attr ("time_unit", v, l) ->
          if !t_scale = None then
            t_scale :=
              Some (match time_scale v with Some sc -> sc | None -> fail l "bad time_unit %s" v)
      | Complex ("capacitive_load_unit", [ m; u ], l) ->
          if !c_scale = None then
            c_scale :=
              Some
                (match
                   Option.bind (exp10_of_cap (String.lowercase_ascii u)) (fun e ->
                       scale_of ~mult:m ~exp10:e)
                 with
                | Some sc -> sc
                | None -> fail l "bad capacitive_load_unit (%s, %s)" m u)
      | Complex ("capacitive_load_unit", _, l) -> fail l "capacitive_load_unit wants (mult, unit)"
      | _ -> ())
    lib.g_stmts;
  let t_scale = Option.value !t_scale ~default:(Exact (-9)) in
  let c_scale = Option.value !c_scale ~default:(Exact (-12)) in
  let r_scale = div_scale t_scale c_scale in
  (* pass 2: cells *)
  let seen = Hashtbl.create 32 in
  let cells = ref [] and buffers = ref [] in
  let interp_pin g =
    let p_name = match g.g_args with a :: _ -> a | [] -> fail g.g_line "pin wants a name" in
    let p = ref { p_name; p_dir = None; p_cap = None; p_nm = None; p_fn = None; p_timing = []; p_line = g.g_line } in
    List.iter
      (fun s ->
        match s with
        | Attr ("direction", v, _) -> p := { !p with p_dir = Some v }
        | Attr ("capacitance", v, _) -> p := { !p with p_cap = Some v }
        | Attr ("noise_margin", v, _) -> p := { !p with p_nm = Some v }
        | Attr ("function", v, _) -> p := { !p with p_fn = Some v }
        | Group ({ g_name = "timing"; _ } as tg) ->
            if !p.p_timing = [] then
              p :=
                {
                  !p with
                  p_timing =
                    List.filter_map
                      (function Attr (k, v, l) -> Some (k, v, l) | Complex _ | Group _ -> None)
                      tg.g_stmts;
                }
            else warn ()
        | Attr _ | Complex _ -> warn ()
        | Group _ -> warn ())
      g.g_stmts;
    !p
  in
  let interp_cell g =
    let cname = match g.g_args with a :: _ -> a | [] -> fail g.g_line "cell wants a name" in
    if Hashtbl.mem seen cname then fail g.g_line "duplicate cell %s" cname;
    Hashtbl.replace seen cname ();
    let pins =
      List.filter_map
        (fun s ->
          match s with
          | Group ({ g_name = "pin"; _ } as pg) -> Some (interp_pin pg)
          | Attr ("cell_leakage_power", _, _) -> None (* interpreted below *)
          | Attr _ | Complex _ ->
              warn ();
              None
          | Group _ ->
              warn ();
              None)
        g.g_stmts
    in
    let dir p d =
      match p.p_dir with
      | Some x -> String.lowercase_ascii x = d
      | None ->
          (* no direction: guess from shape, and flag it *)
          warn ();
          if d = "output" then p.p_fn <> None || p.p_timing <> [] else p.p_fn = None && p.p_timing = []
    in
    (* per-cell switching-energy annotation (DESIGN.md §16): the subset
       reads the simple cell-level [cell_leakage_power] attribute in fJ
       (the same decimal scale as capacitance), the writer's canonical
       form. Absent on a buffer cell it is a warning, not fatal — the
       buffer falls back to its drive-class default energy. *)
    let energy_attr =
      List.find_map
        (function Attr ("cell_leakage_power", v, l) -> Some (v, l) | _ -> None)
        g.g_stmts
    in
    let ins = List.filter (fun p -> dir p "input") pins in
    let outs = List.filter (fun p -> dir p "output") pins in
    match (ins, outs) with
    | [], _ | _, [] -> warn () (* not a combinational cell we can model: skip *)
    | first_in :: _, out :: rest_out ->
        if rest_out <> [] then warn ();
        let num scale = function
          | Some (v, l) -> apply ~path scale l v
          | None ->
              warn ();
              0.0
        in
        let cap_of p = Option.map (fun v -> (v, p.p_line)) p.p_cap in
        let c_in = num c_scale (cap_of first_in) in
        let nm =
          match first_in.p_nm with
          | Some v -> apply ~path (Exact 0) first_in.p_line v
          | None -> 0.8
        in
        let tattr k =
          List.find_map (fun (k', v, l) -> if k' = k then Some (v, l) else None) out.p_timing
        in
        if out.p_timing = [] then warn ();
        let rise_d = num t_scale (tattr "intrinsic_rise")
        and fall_d = num t_scale (tattr "intrinsic_fall") in
        let rise_r = num r_scale (tattr "rise_resistance")
        and fall_r = num r_scale (tattr "fall_resistance") in
        let d_intr = (rise_d +. fall_d) /. 2.0 in
        let r_out = (rise_r +. fall_r) /. 2.0 in
        let n_inputs = List.length ins in
        cells := Sta.Cell.{ cname; n_inputs; c_in; r_out; d_intr; nm } :: !cells;
        if n_inputs = 1 then
          Option.iter
            (fun fn ->
              let fn = normalize_fn fn and a = first_in.p_name in
              let mk inverting =
                let energy =
                  match energy_attr with
                  | Some (v, l) -> Some (apply ~path (Exact (-15)) l v)
                  | None ->
                      (* unannotated buffer cell: drive-class default *)
                      warn ();
                      None
                in
                (* {!Tech.Buffer.make} asserts sane electricals; a
                   truncated or miscaled file can produce garbage here
                   (e.g. a missing timing group defaults to 0 ohm),
                   which makes the cell unusable as a buffer — not a
                   crash *)
                if
                  c_in >= 0.0 && r_out > 0.0 && d_intr >= 0.0 && nm > 0.0
                  && match energy with Some e -> e >= 0.0 | None -> true
                then
                  buffers :=
                    Tech.Buffer.make ~name:cname ~inverting ~c_in ~r_b:r_out ~d_b:d_intr
                      ~nm ?energy ()
                    :: !buffers
                else warn ()
              in
              if fn = a then mk false
              else if fn = "!" ^ a || fn = a ^ "'" then mk true
              else warn ())
            out.p_fn
  in
  List.iter
    (fun s ->
      match s with
      | Group ({ g_name = "cell"; _ } as cg) -> interp_cell cg
      | Group _ -> warn ()
      | Attr ("time_unit", _, _) | Complex ("capacitive_load_unit", _, _) -> ()
      | Attr _ | Complex _ -> warn ())
    lib.g_stmts;
  {
    path;
    name = lib_name;
    cells = List.rev !cells;
    buffers = List.rev !buffers;
    warnings = !warnings;
  }

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string ~path (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Writer (canonical ps/fF form; see .mli for the round-trip contract)  *)

let bpf = Printf.bprintf

let emit_pins b ~inputs ~c_in ~nm ~fn ~r_out ~d_intr =
  let cap = Util.Fx.to_scaled ~exp10:(-15) c_in in
  List.iter
    (fun a ->
      bpf b "    pin (%s) {\n" a;
      bpf b "      direction : input;\n";
      bpf b "      capacitance : %s;\n" cap;
      bpf b "      noise_margin : %s;\n" (Util.Fx.repr nm);
      bpf b "    }\n")
    inputs;
  bpf b "    pin (y) {\n";
  bpf b "      direction : output;\n";
  Option.iter (fun f -> bpf b "      function : \"%s\";\n" f) fn;
  bpf b "      timing () {\n";
  bpf b "        related_pin : \"%s\";\n" (List.hd inputs);
  let d = Util.Fx.to_scaled ~exp10:(-12) d_intr in
  let r = Util.Fx.to_scaled ~exp10:3 r_out in
  bpf b "        intrinsic_rise : %s;\n" d;
  bpf b "        intrinsic_fall : %s;\n" d;
  bpf b "        rise_resistance : %s;\n" r;
  bpf b "        fall_resistance : %s;\n" r;
  bpf b "      }\n";
  bpf b "    }\n"

let to_string ?(name = "buffopt") ?(buffers = []) cells =
  let b = Buffer.create 4096 in
  bpf b "library (%s) {\n" name;
  bpf b "  time_unit : \"1ps\";\n";
  bpf b "  capacitive_load_unit (1, ff);\n";
  List.iter
    (fun (c : Sta.Cell.t) ->
      bpf b "  cell (%s) {\n" c.cname;
      let inputs =
        if c.n_inputs = 1 then [ "a" ] else List.init c.n_inputs (fun i -> Printf.sprintf "a%d" i)
      in
      emit_pins b ~inputs ~c_in:c.c_in ~nm:c.nm ~fn:None ~r_out:c.r_out ~d_intr:c.d_intr;
      bpf b "  }\n")
    cells;
  List.iter
    (fun (bf : Tech.Buffer.t) ->
      bpf b "  cell (%s) {\n" bf.name;
      bpf b "    cell_leakage_power : %s;\n" (Util.Fx.to_scaled ~exp10:(-15) bf.energy);
      let fn = if bf.inverting then "!a" else "a" in
      emit_pins b ~inputs:[ "a" ] ~c_in:bf.c_in ~nm:bf.nm ~fn:(Some fn) ~r_out:bf.r_b
        ~d_intr:bf.d_b;
      bpf b "  }\n")
    buffers;
  bpf b "}\n";
  Buffer.contents b

let write path ?name ?buffers cells =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?name ?buffers cells))
