(** Coupled-RC decks for one buffered stage of a routing tree.

    This is the detailed model behind the project's 3dnoise substitute
    (DESIGN.md, substitution 2): the stage's driving gate holds the victim
    quiet through its output resistance, every wire is discretized into RC
    segments with its ground and coupling capacitance split per the pi
    model, and all coupling capacitors hang off one common aggressor node
    driven by a ramp — the worst-case simultaneous-switching assumption of
    the paper's estimation mode. Each wire's total coupling capacitance is
    recovered from its stored coupled current as [cur /. slope] (inverting
    eq. 6), so decks work for any aggressor assignment, not just uniform
    estimation mode. *)

type config = {
  n_seg : int;  (** RC segments per wire (>= 1); 8 is plenty *)
  vdd : float;  (** aggressor swing, V *)
  t_rise : float;  (** aggressor ramp time, s *)
  l_per_m : float;  (** series wire inductance, H/m; 0 gives pure RC *)
}

val default_config : Tech.Process.t -> config
(** [n_seg = 8] with the process's [vdd] and [t_rise]; no inductance.
    On-chip lines are heavily overdamped at realistic [l_per_m]
    (~0.2-0.5 uH/m), the regime where the Devgan bound still holds
    (Section II-B); the RLC tests exercise this. *)

type t = {
  netlist : Circuit.Netlist.t;
  probes : (int * Circuit.Netlist.node) list;  (** stage leaf -> circuit node *)
  sources : (Circuit.Netlist.node * float) list;  (** aggressor ramp node, slope V/s *)
  tau : float;  (** crude stage time constant, for time-window sizing *)
}

val of_stage : ?density:(int -> (float * float) list) -> config -> Rctree.Tree.t -> gate:int -> t
(** Build the deck for the stage rooted at gate [gate] (the source or a
    buffered node). Raises [Invalid_argument] if [gate] is not a gate.

    [density], keyed by node id, gives explicit per-wire aggressor
    couplings as [(lambda_j, slope_j)] pairs (see [Coupling.density]):
    each distinct slope gets its own ramp source with rise time
    [vdd /. slope], and the wire's coupling capacitance splits as
    [lambda_j *. cap] per aggressor. Wires with an empty density (and
    all wires when [density] is absent) fall back to the single
    worst-case aggressor implied by their stored current. *)

val peak_noise : ?record:bool -> config -> t -> (int * float) list
(** Simulate the deck and return the peak |voltage| observed at every
    stage leaf. The window is [t_rise + 6 tau] with at most 6000 steps. *)
