(** Whole-net simulation-based noise verification (the 3dnoise role).

    Runs a detailed transient deck for every buffered stage of a tree and
    reports true peak noise at each sink and buffer input, next to its
    margin. The paper runs 3dnoise before and after BuffOpt (Table II);
    because the Devgan metric is an upper bound, the simulated violation
    set must be a subset of the metric's. *)

type leaf_report = {
  leaf : int;  (** node id of the sink or buffer input *)
  peak : float;  (** simulated peak noise, V *)
  metric : float;  (** Devgan-metric noise at the same leaf, V *)
  margin : float;  (** tolerable noise margin, V *)
}

type report = {
  leaves : leaf_report list;
  sim_violations : int;  (** leaves with [peak > margin] *)
  metric_violations : int;  (** leaves with [metric > margin] *)
  bound_ok : bool;  (** metric >= simulated peak at every leaf *)
}

val net :
  ?config:Deck.config ->
  ?density:(int -> (float * float) list) ->
  Tech.Process.t ->
  Rctree.Tree.t ->
  report
(** Simulate every stage of the tree. The default config is
    [Deck.default_config]; [density] is forwarded to {!Deck.of_stage}
    for explicit multi-aggressor decks. *)

val is_clean : report -> bool
(** No simulated violations. *)
