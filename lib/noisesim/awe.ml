type leaf_estimate = { leaf : int; plateau : float; peak : float; tau : float }

let of_deck (cfg : Deck.config) (deck : Deck.t) =
  let probes = List.map snd deck.Deck.probes in
  let per_source =
    Circuit.Acmoments.transfer_moments deck.Deck.netlist ~order:2 ~probes
  in
  let slope_of =
    List.map (fun (node, slope) -> (Circuit.Netlist.node_id node, slope)) deck.Deck.sources
  in
  List.mapi
    (fun p (leaf, _) ->
      let plateau = ref 0.0 and peak = ref 0.0 and tau = ref 0.0 in
      List.iter
        (fun (m : Circuit.Acmoments.t) ->
          match List.assoc_opt (Circuit.Netlist.node_id m.Circuit.Acmoments.source) slope_of with
          | None -> ()
          | Some slope ->
              let h1 = m.Circuit.Acmoments.moments.(1).(p) in
              let h2 = m.Circuit.Acmoments.moments.(2).(p) in
              let t_rise = cfg.Deck.vdd /. slope in
              (* h1 > 0 and h2 < 0 for capacitive coupling into an RC
                 victim; the dominant pole gives tau = -h2/h1 *)
              let tj = if h1 > 0.0 then Float.abs (h2 /. h1) else 0.0 in
              let contribution = slope *. h1 in
              plateau := !plateau +. contribution;
              peak :=
                !peak
                +. contribution *. (if tj > 0.0 then 1.0 -. exp (-.t_rise /. tj) else 1.0);
              tau := Float.max !tau tj)
        per_source;
      { leaf; plateau = !plateau; peak = !peak; tau = !tau })
    deck.Deck.probes

let net ?config ?density p tree =
  let cfg = match config with Some c -> c | None -> Deck.default_config p in
  List.concat_map
    (fun g ->
      let deck = Deck.of_stage ?density cfg tree ~gate:g in
      List.map (fun est -> (est.leaf, est)) (of_deck cfg deck))
    (Rctree.Tree.gates tree)
