module T = Rctree.Tree
module N = Circuit.Netlist

type config = { n_seg : int; vdd : float; t_rise : float; l_per_m : float }

let default_config (p : Tech.Process.t) =
  { n_seg = 8; vdd = p.Tech.Process.vdd; t_rise = p.Tech.Process.t_rise; l_per_m = 0.0 }

type t = {
  netlist : N.t;
  probes : (int * N.node) list;
  sources : (N.node * float) list;
  tau : float;
}

let gate_resistance t g =
  match T.kind t g with
  | T.Source d -> d.T.r_drv
  | T.Buffered b -> b.Tech.Buffer.r_b
  | T.Sink _ | T.Internal -> invalid_arg "Deck.of_stage: not a gate"

let of_stage ?density cfg tree ~gate =
  if cfg.n_seg < 1 then invalid_arg "Deck.of_stage: n_seg must be >= 1";
  let r_g = gate_resistance tree gate in
  let default_slope = cfg.vdd /. cfg.t_rise in
  let nl = N.create () in
  (* one ramp source per distinct aggressor slope *)
  let aggressors = Hashtbl.create 4 in
  let aggressor_for slope =
    match Hashtbl.find_opt aggressors slope with
    | Some n -> n
    | None ->
        let n = N.fresh ~label:(Printf.sprintf "aggressor-%.3g" slope) nl in
        N.drive nl n
          (Circuit.Waveform.ramp ~t0:0.0 ~t_rise:(cfg.vdd /. slope) ~v0:0.0 ~v1:cfg.vdd);
        Hashtbl.replace aggressors slope n;
        n
  in
  (* coupling caps of a wire: per-aggressor totals plus the ground rest *)
  let wire_coupling (w : T.wire) v =
    let couples =
      match density with
      | Some d -> (
          match d v with
          | [] -> if w.T.cur > 0.0 then [ (w.T.cur /. default_slope, default_slope) ] else []
          | dens -> List.map (fun (lambda, slope) -> (lambda *. w.T.cap, slope)) dens)
      | None -> if w.T.cur > 0.0 then [ (w.T.cur /. default_slope, default_slope) ] else []
    in
    let total = List.fold_left (fun a (c, _) -> a +. c) 0.0 couples in
    (couples, Float.max 0.0 (w.T.cap -. total))
  in
  let circuit_of = Hashtbl.create 16 in
  let root_node = N.fresh ~label:"stage-root" nl in
  Hashtbl.replace circuit_of gate root_node;
  (* the victim's driving gate holds the net quiet through its resistance *)
  N.resistor nl root_node N.ground r_g;
  let members = T.stage_members tree gate in
  let total_res = ref 0.0 and total_cap = ref 0.0 in
  List.iter
    (fun v ->
      let w = T.wire_to tree v in
      total_res := !total_res +. w.T.res;
      total_cap := !total_cap +. w.T.cap;
      let couples, c_ground = wire_coupling w v in
      let down =
        if w.T.res <= 0.0 then begin
          (* zero-resistance wire: lump everything at the shared node *)
          let up = Hashtbl.find circuit_of (T.parent tree v) in
          N.capacitor nl up N.ground c_ground;
          List.iter (fun (c, slope) -> N.capacitor nl up (aggressor_for slope) c) couples;
          up
        end
        else begin
          (* discretize: n_seg series resistances, segment capacitances
             split half to each end (pi model) *)
          let up = Hashtbl.find circuit_of (T.parent tree v) in
          let n = cfg.n_seg in
          let fn = float_of_int n in
          let seg_r = w.T.res /. fn in
          let half_cg = c_ground /. fn /. 2.0 in
          let halves = List.map (fun (c, slope) -> (c /. fn /. 2.0, aggressor_for slope)) couples in
          let attach node =
            N.capacitor nl node N.ground half_cg;
            List.iter (fun (c, agg) -> N.capacitor nl node agg c) halves
          in
          let seg_l = cfg.l_per_m *. w.T.length /. fn in
          let cursor = ref up in
          for _ = 1 to n do
            let next = N.fresh nl in
            attach !cursor;
            if seg_l > 0.0 then begin
              let mid = N.fresh nl in
              N.resistor nl !cursor mid seg_r;
              N.inductor nl mid next seg_l
            end
            else N.resistor nl !cursor next seg_r;
            attach next;
            cursor := next
          done;
          !cursor
        end
      in
      Hashtbl.replace circuit_of v down;
      (* stage leaves add their pin capacitance *)
      (match T.kind tree v with
      | T.Sink s ->
          total_cap := !total_cap +. s.T.c_sink;
          N.capacitor nl down N.ground s.T.c_sink
      | T.Buffered b ->
          total_cap := !total_cap +. b.Tech.Buffer.c_in;
          N.capacitor nl down N.ground b.Tech.Buffer.c_in
      | T.Internal | T.Source _ -> ()))
    members;
  let probes =
    List.filter_map
      (fun v -> if T.is_stage_leaf tree v then Some (v, Hashtbl.find circuit_of v) else None)
      members
  in
  let tau = (r_g +. !total_res) *. !total_cap in
  let sources = Hashtbl.fold (fun slope node acc -> (node, slope) :: acc) aggressors [] in
  { netlist = nl; probes; sources; tau }

let peak_noise ?(record = false) cfg deck =
  let t_end = cfg.t_rise +. Float.max (6.0 *. deck.tau) (0.5 *. cfg.t_rise) in
  let dt = Float.max (t_end /. 6000.0) (Float.min (cfg.t_rise /. 40.0) (t_end /. 400.0)) in
  let res =
    Circuit.Transient.simulate ~record deck.netlist ~dt ~t_end ~probes:(List.map snd deck.probes)
  in
  List.mapi (fun i (v, _) -> (v, res.Circuit.Transient.peaks.(i))) deck.probes
