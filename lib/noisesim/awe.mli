(** Moment-matching (RICE/AWE-class) coupled-noise estimation — the
    production-speed analysis the paper attributes to 3dnoise, next to
    the transient engine that serves as the gold reference here.

    For each stage deck, the transfer moments from every aggressor ramp
    to every victim leaf give:

    - the {e plateau}: the steady noise under a never-ending aggressor
      ramp, [sum_j slope_j * h1_j] — the distributed-circuit analogue of
      the Devgan metric (which upper-bounds it by lumping each wire's
      current at its far end);
    - a dominant time constant [tau = h2 / h1] per aggressor;
    - a one-pole peak estimate for the finite ramp of duration [T_j]:
      [peak ~= sum_j slope_j * h1_j * (1 - exp (-T_j / tau_j))]. *)

type leaf_estimate = {
  leaf : int;  (** stage-leaf node id *)
  plateau : float;  (** infinite-ramp steady noise, V *)
  peak : float;  (** one-pole finite-ramp peak estimate, V *)
  tau : float;  (** dominant time constant (largest across aggressors), s *)
}

val of_deck : Deck.config -> Deck.t -> leaf_estimate list

val net :
  ?config:Deck.config ->
  ?density:(int -> (float * float) list) ->
  Tech.Process.t ->
  Rctree.Tree.t ->
  (int * leaf_estimate) list
(** Estimate every stage of a tree; pairs are (leaf node, estimate) —
    the fast screening counterpart of [Verify.net]. *)
