module T = Rctree.Tree

type leaf_report = { leaf : int; peak : float; metric : float; margin : float }

type report = {
  leaves : leaf_report list;
  sim_violations : int;
  metric_violations : int;
  bound_ok : bool;
}

let net ?config ?density p tree =
  let cfg = match config with Some c -> c | None -> Deck.default_config p in
  let metric_noise = Noise.leaf_noise tree in
  let metric_at = Hashtbl.create 16 in
  List.iter (fun (v, noise, _) -> Hashtbl.replace metric_at v noise) metric_noise;
  let leaves =
    List.concat_map
      (fun g ->
        let deck = Deck.of_stage ?density cfg tree ~gate:g in
        List.map
          (fun (leaf, peak) ->
            {
              leaf;
              peak;
              metric = (match Hashtbl.find_opt metric_at leaf with Some x -> x | None -> 0.0);
              margin = Noise.margin tree leaf;
            })
          (Deck.peak_noise cfg deck))
      (T.gates tree)
  in
  let count f = List.length (List.filter f leaves) in
  {
    leaves;
    sim_violations = count (fun l -> l.peak > l.margin +. 1e-9);
    metric_violations = count (fun l -> l.metric > l.margin +. 1e-9);
    bound_ok = List.for_all (fun l -> l.metric >= l.peak -. 1e-4) leaves;
  }

let is_clean r = r.sim_violations = 0
