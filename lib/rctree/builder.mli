(** Incremental routing-tree construction.

    Clients add a single source and then arbitrary-fanout children; [finish]
    converts the result to the binary form the algorithms require, inserting
    zero-length wires to infeasible dummy nodes for every node with more
    than two children (paper, footnote 1). Ids handed out by [add_*] remain
    valid in the finished tree; dummy nodes are appended after them. *)

type t

val create : unit -> t

val add_source : t -> r_drv:float -> d_drv:float -> int
(** Add the unique source; must be called exactly once, first. *)

val add_sink :
  t -> parent:int -> wire:Tree.wire -> name:string -> c_sink:float -> rat:float -> nm:float -> int

val add_internal : t -> parent:int -> wire:Tree.wire -> ?feasible:bool -> unit -> int
(** Feasible by default (a legal buffer position for the DP algorithms). *)

val add_buffered : t -> parent:int -> wire:Tree.wire -> Tech.Buffer.t -> int
(** A pre-inserted buffer (used by tests and by {!Surgery.apply}). *)

val finish : t -> Tree.t
(** Binarize and freeze. Raises [Invalid_argument] if no source was added
    or the structure is malformed (checked via {!Tree.validate}). *)
