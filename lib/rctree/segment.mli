(** Wire-segmenting preprocessing (Alpert–Devgan [1]).

    Van Ginneken-style algorithms consider at most one buffer per wire, so
    long wires must be subdivided to expose enough candidate positions.
    [refine] splits every wire longer than [max_len] into equal pieces
    joined by feasible internal nodes; parasitics and coupled current are
    distributed proportionally. Solution quality improves monotonically as
    [max_len] shrinks, at the cost of run time — the trade-off Ablation A
    measures. *)

val refine : Tree.t -> max_len:float -> Tree.t
(** Requires [max_len > 0.]. Node ids are not preserved; sinks keep their
    names. *)

val refine_by : Tree.t -> (int -> Tree.wire -> float) -> Tree.t
(** Per-wire segmenting: the function maps each non-root node (and its
    parent wire) to the maximum piece length for that wire — the hook for
    the formulation-specific segmenting the paper's footnote 3 calls for
    (see [Bufins.Segmenting.noise_driven]). Must return positive
    lengths. *)

val pieces_for : float -> max_len:float -> int
(** Number of equal pieces a wire of the given length is split into. *)
