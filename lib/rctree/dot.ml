let esc s =
  String.concat "" (List.map (fun c -> if c = '"' then "\\\"" else String.make 1 c) (List.init (String.length s) (String.get s)))

let render ?(name = "rctree") t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n  rankdir=LR;\n" (esc name));
  List.iter
    (fun v ->
      let attrs =
        match Tree.kind t v with
        | Tree.Source d ->
            Printf.sprintf "shape=house,label=\"src\\nR=%.0f\"" d.Tree.r_drv
        | Tree.Sink s ->
            Printf.sprintf "shape=box,label=\"%s\\nnm=%.2fV\"" (esc s.Tree.sname) s.Tree.nm
        | Tree.Internal ->
            if Tree.feasible t v then "shape=point" else "shape=point,color=gray"
        | Tree.Buffered b ->
            Printf.sprintf "shape=triangle,label=\"%s\"" (esc b.Tech.Buffer.name)
      in
      Buffer.add_string buf (Printf.sprintf "  n%d [%s];\n" v attrs))
    (List.rev (Tree.postorder t));
  List.iter
    (fun v ->
      if v <> Tree.root t then begin
        let w = Tree.wire_to t v in
        let label =
          if w.Tree.length > 0.0 then
            Printf.sprintf " [label=\"%.2fmm%s\"]" (w.Tree.length *. 1e3)
              (if w.Tree.cur > 0.0 then Printf.sprintf "\\n%.2fmA" (w.Tree.cur *. 1e3) else "")
          else ""
        in
        Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" (Tree.parent t v) v label)
      end)
    (List.rev (Tree.postorder t));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file ?name t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (render ?name t))
