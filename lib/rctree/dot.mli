(** Graphviz export of routing trees, for inspecting topologies and
    buffer-insertion solutions. *)

val render : ?name:string -> Tree.t -> string
(** A [digraph] with one node per tree node (source = house shape,
    sinks = boxes labelled with name/margin, buffers = triangles with the
    cell name) and one edge per wire labelled with length and coupled
    current. Deterministic output, suitable for golden tests. *)

val to_file : ?name:string -> Tree.t -> string -> unit
(** [to_file t path] writes [render t] to [path]. *)
