let pieces_for len ~max_len =
  if len <= 0.0 then 1 else max 1 (int_of_float (Float.ceil (len /. max_len -. 1e-9)))

let refine_by t max_len_of =
  let b = Builder.create () in
  let rec emit old_id new_parent =
    let n = Tree.node t old_id in
    let new_id =
      match n.Tree.kind with
      | Tree.Source d -> Builder.add_source b ~r_drv:d.Tree.r_drv ~d_drv:d.Tree.d_drv
      | Tree.Sink s ->
          let wire = chain old_id (Tree.wire_to t old_id) new_parent in
          Builder.add_sink b ~parent:(fst wire) ~wire:(snd wire) ~name:s.Tree.sname
            ~c_sink:s.Tree.c_sink ~rat:s.Tree.rat ~nm:s.Tree.nm
      | Tree.Internal ->
          let wire = chain old_id (Tree.wire_to t old_id) new_parent in
          Builder.add_internal b ~parent:(fst wire) ~wire:(snd wire) ~feasible:n.Tree.feasible ()
      | Tree.Buffered buf ->
          let wire = chain old_id (Tree.wire_to t old_id) new_parent in
          Builder.add_buffered b ~parent:(fst wire) ~wire:(snd wire) buf
    in
    List.iter (fun c -> emit c new_id) (Tree.children t old_id)
  and chain old_id w parent =
    (* Split [w] into pieces; intermediate nodes are fresh feasible
       internals. Returns the parent and wire for the final piece. *)
    let max_len = max_len_of old_id w in
    if max_len <= 0.0 then invalid_arg "Segment.refine_by: non-positive max length";
    let k = pieces_for w.Tree.length ~max_len in
    if k = 1 then (parent, w)
    else begin
      let piece = Tree.scale_wire w (1.0 /. float_of_int k) in
      let p = ref parent in
      for _ = 1 to k - 1 do
        p := Builder.add_internal b ~parent:!p ~wire:piece ()
      done;
      (!p, piece)
    end
  in
  emit (Tree.root t) (-1);
  Builder.finish b

let refine t ~max_len =
  if max_len <= 0.0 then invalid_arg "Segment.refine: non-positive max_len";
  refine_by t (fun _ _ -> max_len)
