(** Applying buffer-insertion solutions to a tree.

    A placement puts a buffer on the parent wire of node [node], [dist]
    metres above [node] (towards the parent):
    - [dist = 0.] on an internal node buffers the node itself (how the
      DP algorithms place); on a sink or an existing buffer it creates a
      new [Buffered] node joined by a zero-length wire (how re-rooted
      multi-source placements land at a terminal);
    - [0. < dist <= length] splits the wire, creating a new [Buffered]
      node (Algorithms 1 and 2 compute such maximal offsets via
      Theorem 1); [dist = length] places the buffer immediately below the
      parent node.

    [apply] performs all placements at once and returns a fresh tree; node
    ids are not preserved, but sinks keep their names and the relative
    order of same-wire placements follows their distances. *)

type placement = { node : int; dist : float; buffer : Tech.Buffer.t }

val apply : Tree.t -> placement list -> Tree.t
(** Raises [Invalid_argument] on out-of-range nodes or distances, a
    placement at the root, or two placements at the same position. *)

type provenance =
  | Same of int  (** this node is the old node with that id *)
  | Piece_of of int  (** a new Buffered node created on the parent wire of
                         the old node with that id; its parent wire is a
                         fraction of that old wire *)

val apply_traced : Tree.t -> placement list -> Tree.t * provenance array
(** Like {!apply}, also reporting where each new node came from — what
    per-wire annotations (e.g. coupling densities, [Coupling]) need to
    follow a solution through surgery. *)

val count : placement list -> int
(** Number of buffers in a solution ([|M|] in the paper). *)
