(* Per-node lower bounds on the resistance any candidate must still see
   between this node and the gate that will eventually decouple it — the
   quantity Li & Shi's predictive pruning multiplies a load difference by
   to decide whether a slack gap is already unrecoverable. *)

let compute tree ~r_gate_min ~max_width =
  if not (r_gate_min > 0.0) then invalid_arg "Upbound.compute: r_gate_min must be > 0";
  if not (max_width >= 1.0) then invalid_arg "Upbound.compute: max_width must be >= 1";
  let n = Tree.node_count tree in
  let bound = Array.make n infinity in
  let root = Tree.root tree in
  let r_drv =
    match Tree.kind tree root with
    | Tree.Source d -> d.Tree.r_drv
    | Tree.Sink _ | Tree.Internal | Tree.Buffered _ ->
        invalid_arg "Upbound.compute: tree has no source at the root"
  in
  bound.(root) <- r_drv;
  (* top-down: a node's bound is the cheapest way a unit of extra load
     here can stop costing slack — either a buffer is inserted at this
     very node (>= the strongest library drive), or the load is carried
     up the parent wire (>= its widest-wire resistance) to wherever the
     parent's bound decouples it. The driver itself closes the recursion
     at the root. *)
  let rec down v =
    List.iter
      (fun c ->
        let w = Tree.wire_to tree c in
        let u = (w.Tree.res /. max_width) +. bound.(v) in
        let insertable =
          match Tree.kind tree c with
          | Tree.Internal -> Tree.feasible tree c
          | Tree.Source _ | Tree.Sink _ | Tree.Buffered _ -> false
        in
        bound.(c) <- (if insertable then Float.min r_gate_min u else u);
        down c)
      (Tree.children tree v)
  in
  down root;
  bound
