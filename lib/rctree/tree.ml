type driver = { r_drv : float; d_drv : float }

type sink = { sname : string; c_sink : float; rat : float; nm : float }

type kind = Source of driver | Sink of sink | Internal | Buffered of Tech.Buffer.t

type wire = { length : float; res : float; cap : float; cur : float }

type node = { kind : kind; parent : int; wire : wire option; feasible : bool }

type t = { nodes : node array; kids : int list array; root_id : int }

let zero_wire = { length = 0.0; res = 0.0; cap = 0.0; cur = 0.0 }

let make_wire ~length ~res ~cap ~cur =
  assert (length >= 0.0 && res >= 0.0 && cap >= 0.0 && cur >= 0.0);
  { length; res; cap; cur }

let wire_of_length p len =
  make_wire ~length:len ~res:(Tech.Process.wire_r p len) ~cap:(Tech.Process.wire_c p len)
    ~cur:(Tech.Process.wire_i p len)

let scale_wire w f =
  assert (f >= 0.0 && f <= 1.0);
  { length = w.length *. f; res = w.res *. f; cap = w.cap *. f; cur = w.cur *. f }

let resize_wire w ~width ~area_frac =
  assert (width >= 1.0 && area_frac >= 0.0 && area_frac <= 1.0);
  {
    w with
    res = w.res /. width;
    cap = w.cap *. ((area_frac *. width) +. (1.0 -. area_frac));
  }

let node_count t = Array.length t.nodes

let root t = t.root_id

let node t v = t.nodes.(v)

let kind t v = t.nodes.(v).kind

let parent t v = t.nodes.(v).parent

let wire_to t v =
  match t.nodes.(v).wire with
  | Some w -> w
  | None -> invalid_arg "Tree.wire_to: root has no parent wire"

let feasible t v = t.nodes.(v).feasible

let children t v = t.kids.(v)

let is_gate t v = match kind t v with Source _ | Buffered _ -> true | Sink _ | Internal -> false

let is_stage_leaf t v =
  match kind t v with Sink _ | Buffered _ -> true | Source _ | Internal -> false

let select p t =
  let acc = ref [] in
  Array.iteri (fun i n -> if p i n then acc := i :: !acc) t.nodes;
  List.rev !acc

let sinks t = select (fun _ n -> match n.kind with Sink _ -> true | Source _ | Internal | Buffered _ -> false) t

let gates t =
  select (fun _ n -> match n.kind with Source _ | Buffered _ -> true | Sink _ | Internal -> false) t

let internals t =
  select (fun _ n -> match n.kind with Internal -> true | Source _ | Sink _ | Buffered _ -> false) t

let buffer_count t =
  Array.fold_left
    (fun acc n -> match n.kind with Buffered _ -> acc + 1 | Source _ | Sink _ | Internal -> acc)
    0 t.nodes

let postorder t =
  let acc = ref [] in
  let rec go v =
    List.iter go t.kids.(v);
    acc := v :: !acc
  in
  go t.root_id;
  List.rev !acc

let path_up t v =
  let rec go v acc = if v = -1 then List.rev acc else go t.nodes.(v).parent (v :: acc) in
  go v []

let stage_members t g =
  let acc = ref [] in
  let rec go v =
    List.iter
      (fun c ->
        acc := c :: !acc;
        if not (is_stage_leaf t c) then go c)
      t.kids.(v)
  in
  go g;
  List.rev !acc

let stage_leaves t g = List.filter (is_stage_leaf t) (stage_members t g)

let map_wires t f =
  {
    t with
    nodes =
      Array.mapi
        (fun i n -> match n.wire with None -> n | Some w -> { n with wire = Some (f i w) })
        t.nodes;
  }

let with_sink_rat t v ~rat =
  match t.nodes.(v).kind with
  | Sink s ->
      let nodes = Array.copy t.nodes in
      nodes.(v) <- { nodes.(v) with kind = Sink { s with rat } };
      { t with nodes }
  | Source _ | Internal | Buffered _ ->
      invalid_arg "Tree.with_sink_rat: node is not a sink"

let validate t =
  let n = Array.length t.nodes in
  let first = ref None in
  let fail i msg =
    if !first = None then first := Some (Printf.sprintf "node %d: %s" i msg)
  in
  if n = 0 then first := Some "empty tree"
  else if t.root_id < 0 || t.root_id >= n then first := Some "root out of range"
  else begin
    Array.iteri
      (fun i nd ->
        let is_root = i = t.root_id in
        if is_root <> (nd.parent = -1) then fail i "root/parent mismatch";
        if is_root <> (nd.wire = None) then fail i "root/wire mismatch";
        (match nd.kind with
        | Source _ -> if not is_root then fail i "source away from root"
        | Sink _ | Internal | Buffered _ -> if is_root then fail i "root is not a source");
        (match nd.kind with
        | Sink _ -> if t.kids.(i) <> [] then fail i "sink must be a leaf"
        | Source _ | Internal | Buffered _ -> if t.kids.(i) = [] then fail i "dangling non-sink node");
        if List.length t.kids.(i) > 2 then fail i "more than two children";
        match nd.wire with
        | None -> ()
        | Some w ->
            if w.length < 0.0 || w.res < 0.0 || w.cap < 0.0 || w.cur < 0.0 then
              fail i "negative wire field")
      t.nodes;
    if !first = None then begin
      let seen = Array.make n false in
      let rec go v =
        if seen.(v) then first := Some "cycle detected"
        else begin
          seen.(v) <- true;
          List.iter go t.kids.(v)
        end
      in
      go t.root_id;
      if !first = None && Array.exists not seen then first := Some "unreachable node"
    end
  end;
  match !first with None -> Ok () | Some e -> Error e

let fold_wires f acc t =
  let acc = ref acc in
  Array.iter (fun n -> match n.wire with Some w -> acc := f !acc w | None -> ()) t.nodes;
  !acc

let total_wirelength t = fold_wires (fun a w -> a +. w.length) 0.0 t

let total_wire_cap t = fold_wires (fun a w -> a +. w.cap) 0.0 t

let pp_summary ppf t =
  Format.fprintf ppf "tree<%d nodes, %d sinks, %d buffers, %.2f mm>" (node_count t)
    (List.length (sinks t)) (buffer_count t)
    (total_wirelength t *. 1e3)

let unsafe_make nodes =
  let n = Array.length nodes in
  let kids = Array.make n [] in
  let root_id = ref (-1) in
  Array.iteri
    (fun i nd ->
      if nd.parent = -1 then root_id := i
      else kids.(nd.parent) <- i :: kids.(nd.parent))
    nodes;
  (* children were accumulated in reverse id order; restore id order *)
  Array.iteri (fun i l -> kids.(i) <- List.rev l) kids;
  { nodes; kids; root_id = !root_id }
