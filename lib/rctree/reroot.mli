(** Re-rooting routing trees at another terminal.

    Multi-source nets (bidirectional busses; Lillis [17]) have several
    terminals that may drive the shared tree, one at a time. Analyzing
    "terminal p drives" means reversing the parent pointers along the
    path from the root to [p]: every wire keeps its parasitics (wires
    are symmetric), [p] becomes the source, and the old driver's pin
    becomes a sink.

    Node ids are preserved — a wire between nodes [u] and [v] exists in
    every mode, merely owned by whichever endpoint is the child there —
    so buffer positions can be translated across modes (see
    [Bufins.Multisource]). When the old root keeps children after the
    reversal, its driver pin is re-attached as a zero-length-wire sink
    with a fresh id ([Tree.node_count] of the input tree). *)

val at :
  Tree.t ->
  port:int ->
  r_drv:float ->
  d_drv:float ->
  old_source:Tree.sink ->
  Tree.t
(** [at t ~port ...] re-roots at sink [port] (must be a [Sink] leaf),
    giving it the supplied driver; the old source pin gets the
    [old_source] electrical spec. Raises [Invalid_argument] if [port] is
    not a sink or the tree already contains buffers placed with
    direction-dependent meaning is fine — [Buffered] nodes are treated
    as bidirectional repeaters and keep their cells. *)

val wire_owner : Tree.t -> int -> int -> int option
(** [wire_owner t u v]: the child endpoint of the (u,v) wire in [t], if
    the two nodes are adjacent. Used to translate wire positions between
    modes. *)
