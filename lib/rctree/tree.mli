(** Routing trees (Section II of the paper).

    A routing tree [T = (V, E)] has a unique source (the driving gate), a
    set of sinks (gate inputs with load capacitance, required arrival time
    and noise margin), and internal nodes. Every non-root node [v] carries
    its unique parent wire [(parent v, v)]; signal flows parent-to-child.
    Trees are binary: a Steiner node of degree three is represented with a
    zero-length wire to an infeasible dummy node (the paper's footnote 1).

    Wires carry total resistance (ohm), total capacitance (farad), length
    (metre) and the total coupled current (ampere) induced by aggressor
    nets per eq. (6); in estimation mode [cur = lambda * cap * slope].

    A node whose kind is [Buffered] holds an inserted buffer: its input is
    a noise/timing sink of the upstream stage and its output drives the
    downstream stage (footnote 2: a buffer at a degree-d node has one
    input, one output and d-1 fanouts). *)

type driver = { r_drv : float;  (** source gate output resistance, ohm *) d_drv : float  (** source gate intrinsic delay, s *) }

type sink = {
  sname : string;
  c_sink : float;  (** sink pin capacitance, F *)
  rat : float;  (** required arrival time, s *)
  nm : float;  (** tolerable noise margin, V *)
}

type kind = Source of driver | Sink of sink | Internal | Buffered of Tech.Buffer.t

type wire = {
  length : float;  (** m *)
  res : float;  (** ohm *)
  cap : float;  (** F *)
  cur : float;  (** coupled current, A (eq. 6) *)
}

type node = {
  kind : kind;
  parent : int;  (** [-1] for the root *)
  wire : wire option;  (** parent wire; [None] iff root *)
  feasible : bool;  (** may the DP algorithms place a buffer here? *)
}

type t

val zero_wire : wire

val make_wire : length:float -> res:float -> cap:float -> cur:float -> wire

val wire_of_length : Tech.Process.t -> float -> wire
(** Estimation-mode wire of the given length: per-unit parasitics and
    coupled current from the process parameters. *)

val scale_wire : wire -> float -> wire
(** [scale_wire w f] is the fraction [f] (in [\[0,1\]]) of [w]; all four
    fields scale linearly. *)

val resize_wire : wire -> width:float -> area_frac:float -> wire
(** The wire redrawn at [width] times the minimum width (Lillis et al.'s
    simultaneous wire sizing): resistance scales as [1/width]; the area
    fraction [area_frac] of the capacitance scales with [width] while the
    fringe/lateral remainder — and with it the coupled current — is
    unchanged. Requires [width >= 1.] and [area_frac] in [\[0,1\]]. *)

val node_count : t -> int

val root : t -> int

val node : t -> int -> node

val kind : t -> int -> kind

val parent : t -> int -> int

val wire_to : t -> int -> wire
(** Parent wire of a non-root node. *)

val feasible : t -> int -> bool

val children : t -> int -> int list
(** In tree order; at most two. *)

val is_gate : t -> int -> bool
(** Source or Buffered. *)

val is_stage_leaf : t -> int -> bool
(** Sink or Buffered: a point where a driving stage terminates. *)

val sinks : t -> int list

val gates : t -> int list
(** Source and Buffered nodes, i.e. the roots of all stages. *)

val internals : t -> int list

val buffer_count : t -> int

val postorder : t -> int list
(** Every node after all of its descendants. *)

val path_up : t -> int -> int list
(** [path_up t v] is [v; parent v; ...; root]. *)

val stage_members : t -> int -> int list
(** [stage_members t g] for a gate (or any) node [g]: the nodes of the
    maximal subtree hanging from [g] with no internal buffers — children
    are explored, but exploration stops below Sink and Buffered nodes.
    [g] itself is excluded; every member has its parent wire inside the
    stage. *)

val stage_leaves : t -> int -> int list
(** Sinks and buffer inputs at the boundary of [stage_members]. *)

val map_wires : t -> (int -> wire -> wire) -> t
(** A copy of the tree with every parent wire transformed by the given
    function (applied to the owning node's id); structure and node ids
    are preserved. *)

val with_sink_rat : t -> int -> rat:float -> t
(** A copy of the tree with sink [v]'s required arrival time replaced;
    structure and node ids are preserved (the serve daemon's
    [update-rat] edit). Raises [Invalid_argument] when [v] is not a
    sink. *)

val validate : t -> (unit, string) result
(** Structural invariants: unique source at the root, binary fanout, sinks
    are leaves, wires present exactly on non-roots, non-negative wire
    fields, acyclicity by construction. *)

val total_wirelength : t -> float

val total_wire_cap : t -> float

val pp_summary : Format.formatter -> t -> unit

(**/**)

val unsafe_make : node array -> t
(** For {!Builder} only. *)
