type entry = { kind : Tree.kind; parent : int; wire : Tree.wire option; feasible : bool }

type t = { mutable entries : entry list; mutable count : int; mutable has_source : bool }

let create () = { entries = []; count = 0; has_source = false }

let push t e =
  t.entries <- e :: t.entries;
  let id = t.count in
  t.count <- id + 1;
  id

let add_source t ~r_drv ~d_drv =
  if t.has_source then invalid_arg "Builder.add_source: source already added";
  if t.count <> 0 then invalid_arg "Builder.add_source: source must be first";
  t.has_source <- true;
  push t { kind = Tree.Source { r_drv; d_drv }; parent = -1; wire = None; feasible = false }

let check_parent t parent =
  if parent < 0 || parent >= t.count then invalid_arg "Builder.add: unknown parent"

let add_sink t ~parent ~wire ~name ~c_sink ~rat ~nm =
  check_parent t parent;
  push t
    {
      kind = Tree.Sink { sname = name; c_sink; rat; nm };
      parent;
      wire = Some wire;
      feasible = false;
    }

let add_internal t ~parent ~wire ?(feasible = true) () =
  check_parent t parent;
  push t { kind = Tree.Internal; parent; wire = Some wire; feasible }

let add_buffered t ~parent ~wire b =
  check_parent t parent;
  push t { kind = Tree.Buffered b; parent; wire = Some wire; feasible = false }

let finish t =
  if not t.has_source then invalid_arg "Builder.finish: no source";
  let base = Array.of_list (List.rev t.entries) in
  let n = Array.length base in
  let kids = Array.make n [] in
  Array.iteri (fun i e -> if e.parent >= 0 then kids.(e.parent) <- i :: kids.(e.parent)) base;
  Array.iteri (fun i l -> kids.(i) <- List.rev l) kids;
  (* Binarize: a node with children [c1; c2; ...; ck], k > 2, keeps c1 and a
     zero-wire dummy; the dummy receives the remaining children and recurses. *)
  let extra = ref [] in
  let extra_count = ref 0 in
  let reparent = Hashtbl.create 16 in
  let fresh_dummy parent =
    let id = n + !extra_count in
    incr extra_count;
    extra := { kind = Tree.Internal; parent; wire = Some Tree.zero_wire; feasible = false } :: !extra;
    id
  in
  let rec spread parent = function
    | [] | [ _ ] | [ _; _ ] -> ()
    | c1 :: rest ->
        ignore c1;
        let d = fresh_dummy parent in
        List.iter (fun c -> Hashtbl.replace reparent c d) rest;
        spread d rest
  in
  Array.iteri (fun i l -> spread i l) kids;
  let all =
    Array.append
      (Array.mapi
         (fun i e ->
           let parent = match Hashtbl.find_opt reparent i with Some p -> p | None -> e.parent in
           { Tree.kind = e.kind; parent; wire = e.wire; feasible = e.feasible })
         base)
      (Array.of_list
         (List.rev_map
            (fun e -> { Tree.kind = e.kind; parent = e.parent; wire = e.wire; feasible = e.feasible })
            !extra))
  in
  let tree = Tree.unsafe_make all in
  match Tree.validate tree with
  | Ok () -> tree
  | Error e -> invalid_arg ("Builder.finish: " ^ e)
