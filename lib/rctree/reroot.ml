let wire_owner t u v =
  if u >= 0 && v >= 0 && u < Tree.node_count t && v < Tree.node_count t then
    if Tree.parent t u = v then Some u else if Tree.parent t v = u then Some v else None
  else None

let at t ~port ~r_drv ~d_drv ~old_source =
  (match Tree.kind t port with
  | Tree.Sink _ -> ()
  | Tree.Source _ | Tree.Internal | Tree.Buffered _ ->
      invalid_arg "Reroot.at: port must be a sink");
  let n = Tree.node_count t in
  let path = Tree.path_up t port in
  (* start from the current nodes, then rewire along the path *)
  let nodes =
    Array.init n (fun v ->
        let nd = Tree.node t v in
        { Tree.kind = nd.Tree.kind; parent = nd.Tree.parent; wire = nd.Tree.wire; feasible = nd.Tree.feasible })
  in
  let root = Tree.root t in
  (* reverse parent pointers: each path node's old wire moves to its old
     parent, which becomes its child *)
  let rec reverse = function
    | a :: (b :: _ as rest) ->
        let a_wire = nodes.(a).Tree.wire in
        nodes.(b) <- { (nodes.(b)) with Tree.parent = a; wire = a_wire };
        reverse rest
    | [] | [ _ ] -> ()
  in
  reverse path;
  nodes.(port) <- { (nodes.(port)) with Tree.kind = Tree.Source { Tree.r_drv; d_drv }; parent = -1; wire = None };
  (* the old driver's pin becomes a sink *)
  let old_root_keeps_children =
    List.exists (fun c -> not (List.mem c path)) (Tree.children t root)
  in
  if old_root_keeps_children then begin
    nodes.(root) <- { (nodes.(root)) with Tree.kind = Tree.Internal; feasible = true };
    let extra =
      {
        Tree.kind = Tree.Sink old_source;
        parent = root;
        wire = Some Tree.zero_wire;
        feasible = false;
      }
    in
    let tree = Tree.unsafe_make (Array.append nodes [| extra |]) in
    match Tree.validate tree with
    | Ok () -> tree
    | Error e -> invalid_arg ("Reroot.at: " ^ e)
  end
  else begin
    nodes.(root) <- { (nodes.(root)) with Tree.kind = Tree.Sink old_source };
    let tree = Tree.unsafe_make nodes in
    match Tree.validate tree with
    | Ok () -> tree
    | Error e -> invalid_arg ("Reroot.at: " ^ e)
  end
