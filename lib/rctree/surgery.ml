type placement = { node : int; dist : float; buffer : Tech.Buffer.t }

type provenance = Same of int | Piece_of of int

let count = List.length

let apply_traced t placements =
  let n = Tree.node_count t in
  (* group placements by the node whose parent wire they live on *)
  let by_node = Array.make n [] in
  List.iter
    (fun p ->
      if p.node < 0 || p.node >= n then invalid_arg "Surgery.apply: node out of range";
      if p.node = Tree.root t then invalid_arg "Surgery.apply: cannot buffer the source";
      let w = Tree.wire_to t p.node in
      if p.dist < 0.0 || p.dist > w.Tree.length +. 1e-15 then
        invalid_arg "Surgery.apply: distance outside parent wire";
      by_node.(p.node) <- p :: by_node.(p.node))
    placements;
  Array.iteri
    (fun v ps ->
      let sorted = List.sort (fun a b -> compare a.dist b.dist) ps in
      let rec distinct = function
        | a :: (b :: _ as rest) ->
            if a.dist = b.dist then invalid_arg "Surgery.apply: duplicate placement position"
            else distinct rest
        | [] | [ _ ] -> ()
      in
      distinct sorted;
      by_node.(v) <- sorted)
    by_node;
  let b = Builder.create () in
  let prov = ref [] in
  let note id p = prov := (id, p) :: !prov in
  let rec emit old_id new_parent =
    let nd = Tree.node t old_id in
    let new_id =
      match nd.Tree.kind with
      | Tree.Source d -> Builder.add_source b ~r_drv:d.Tree.r_drv ~d_drv:d.Tree.d_drv
      | Tree.Sink s ->
          let parent, wire, node_buf = descend old_id new_parent in
          assert (node_buf = None);
          Builder.add_sink b ~parent ~wire ~name:s.Tree.sname ~c_sink:s.Tree.c_sink ~rat:s.Tree.rat
            ~nm:s.Tree.nm
      | Tree.Internal -> begin
          let parent, wire, node_buf = descend old_id new_parent in
          match node_buf with
          | Some buf -> Builder.add_buffered b ~parent ~wire buf
          | None -> Builder.add_internal b ~parent ~wire ~feasible:nd.Tree.feasible ()
        end
      | Tree.Buffered buf ->
          let parent, wire, node_buf = descend old_id new_parent in
          assert (node_buf = None);
          Builder.add_buffered b ~parent ~wire buf
    in
    note new_id (Same old_id);
    List.iter (fun c -> emit c new_id) (Tree.children t old_id)
  and descend old_id new_parent =
    (* Walk the parent wire of [old_id] top-down, materializing the wire
       placements (sorted by distance from [old_id], i.e. bottom-up) as
       Buffered nodes. Returns the parent and wire piece for [old_id]
       itself, plus the buffer to install at the node when dist = 0. *)
    let w = Tree.wire_to t old_id in
    let ps = by_node.(old_id) in
    (* dist = 0 converts an internal node in place; on a sink or an
       existing buffer it becomes a fresh node over a zero-length wire *)
    let convertible = match Tree.kind t old_id with Tree.Internal -> true | _ -> false in
    let node_buf =
      match ps with
      | { dist = 0.0; buffer; _ } :: _ when convertible -> Some buffer
      | _ -> None
    in
    let wire_ps =
      List.filter (fun p -> p.dist > 0.0 || (p.dist = 0.0 && not convertible)) ps
    in
    (* top-down order: farthest from [old_id] first *)
    let top_down = List.rev wire_ps in
    let len = w.Tree.length in
    let frac lo hi =
      if len <= 0.0 then Tree.zero_wire else Tree.scale_wire w ((hi -. lo) /. len)
    in
    let parent = ref new_parent in
    let upper = ref len in
    List.iter
      (fun p ->
        let d = Float.min p.dist len in
        let piece = frac d !upper in
        parent := Builder.add_buffered b ~parent:!parent ~wire:piece p.buffer;
        note !parent (Piece_of old_id);
        upper := d)
      top_down;
    (!parent, frac 0.0 !upper, node_buf)
  in
  emit (Tree.root t) (-1);
  let tree = Builder.finish b in
  let provenance = Array.make (Tree.node_count tree) (Same (Tree.root t)) in
  List.iter (fun (id, p) -> provenance.(id) <- p) !prov;
  (tree, provenance)

let apply t placements = fst (apply_traced t placements)
