(** Upstream-resistance lower bounds for predictive pruning (Li & Shi,
    "An O(bn²) Time Algorithm for Optimal Buffer Insertion with b Buffer
    Types").

    In the buffer-insertion DP, a candidate α at node [v] can only be
    worth keeping over a lighter candidate β (same group, [c_β < c_α])
    if α's slack lead survives the driving resistance the extra load
    [c_α - c_β] must still be charged through. Every path from [v] to
    the candidate's eventual decoupling gate pays at least

      [bound v = min (r_gate_min if a buffer may sit at v,
                      wire_res(v → parent) / max_width + bound (parent v))]

    with [bound root = r_drv]: either a buffer is inserted at [v] itself
    (its drive is at least the library minimum), or the load rides the
    parent wire — at most [max_width] times widened — and recurses. Any
    upstream operation then costs α at least [bound v] seconds of slack
    per farad of extra load, so [q_α - q_β < bound v *. (c_α - c_β)]
    proves α can never strictly beat β at the source and α may be
    discarded {e before it is materialized} (DESIGN.md §12 for the full
    derivation, including why the same per-node bound is sound at every
    sweep site of the node). *)

val compute : Tree.t -> r_gate_min:float -> max_width:float -> float array
(** One top-down pass; [bound.(v)] in ohm for every node, [r_drv] at the
    root. [r_gate_min] is the smallest output resistance in the buffer
    library ({!Tech.Lib.prepared}[.r_min]); [max_width] the largest wire
    width the run may choose (1.0 when wire sizing is off). Raises
    [Invalid_argument] if the root is not a [Source], [r_gate_min <= 0]
    or [max_width < 1]. *)
