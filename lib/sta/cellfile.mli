(** Plain-text cell libraries (a liberty-lite for the linear gate model).

    One cell per line; blank lines and [#] comments ignored:

    {v
    cell <name> <inputs> <c_in_fF> <r_out_ohm> <d_intr_ps> <nm_V>
    v}

    Lets a design file reference a characterized library instead of the
    built-in {!Cell.library} (CLI: [buffopt flow --cells FILE]). *)

exception Parse of string
(** Carries ["file:line: message"]. *)

val of_string : ?path:string -> string -> Cell.t list
(** Parse a cell library from a string; raises {!Parse} on malformed
    lines, duplicate names, or an empty library. [path] (default
    ["<string>"]) labels {!Parse} locations. *)

val read : string -> Cell.t list
(** [of_string] over a file's contents. *)

val to_string : Cell.t list -> string
(** Render a library back to the format; round-trips through {!read}
    bit-identically (fF/ps fields via {!Util.Fx.to_scaled}). *)

val write : string -> Cell.t list -> unit
