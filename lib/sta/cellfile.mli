(** Plain-text cell libraries (a liberty-lite for the linear gate model).

    One cell per line; blank lines and [#] comments ignored:

    {v
    cell <name> <inputs> <c_in_fF> <r_out_ohm> <d_intr_ps> <nm_V>
    v}

    Lets a design file reference a characterized library instead of the
    built-in {!Cell.library} (CLI: [buffopt flow --cells FILE]). *)

exception Parse of string
(** Carries ["file:line: message"]. *)

val read : string -> Cell.t list
(** Parse a cell library; raises {!Parse} on malformed lines, duplicate
    names, or an empty library. *)

val to_string : Cell.t list -> string
(** Render a library back to the format; round-trips through {!read}. *)

val write : string -> Cell.t list -> unit
