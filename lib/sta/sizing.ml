let with_cell (d : Design.t) i cell =
  let instances = Array.copy d.Design.instances in
  instances.(i) <- { instances.(i) with Design.cell };
  { d with Design.instances = instances }

(* worst slack over the sinks of the instance's output net *)
let output_slack (timing : Engine.t) (d : Design.t) i =
  let nid = Design.net_of_source d (Design.From_inst i) in
  let nt = timing.Engine.nets.(nid) in
  Array.fold_left
    (fun acc ((_, r), (_, a)) -> Float.min acc (r -. a))
    infinity
    (Array.map2 (fun r a -> (r, a)) nt.Engine.sink_required nt.Engine.sink_arrival)

let run ?(max_passes = 3) process design =
  let design = ref design in
  let replacements = ref 0 in
  let improved_this_pass = ref true in
  let pass = ref 0 in
  while !improved_this_pass && !pass < max_passes do
    incr pass;
    improved_this_pass := false;
    let timing = ref (Engine.analyze process !design) in
    (* most critical drivers first *)
    let order =
      List.init (Array.length !design.Design.instances) (fun i -> i)
      |> List.map (fun i -> (output_slack !timing !design i, i))
      |> List.sort compare
      |> List.map snd
    in
    List.iter
      (fun i ->
        if output_slack !timing !design i < 0.0 then
          match Cell.upsize !design.Design.instances.(i).Design.cell with
          | None -> ()
          | Some bigger ->
              let candidate = with_cell !design i bigger in
              let t' = Engine.analyze process candidate in
              if t'.Engine.wns > !timing.Engine.wns +. 1e-15 then begin
                design := candidate;
                timing := t';
                incr replacements;
                improved_this_pass := true
              end)
      order
  done;
  (!design, !replacements)
