(** Gate-level combinational designs.

    A design is a DAG of placed cell instances between primary inputs and
    primary outputs. Every instance output and every primary input drives
    exactly one net; every instance input pin and every primary output is
    the sink of exactly one net. This is the substrate the paper's tool
    operates inside: timing constraints come from paths through gates,
    not from per-net annotations. *)

type source = From_pi of int | From_inst of int  (** net driver: PI id or instance id *)

type sink = To_po of int | To_inst of int * int  (** PO id, or (instance id, input index) *)

type instance = { iname : string; cell : Cell.t; at : Geometry.Point.t }

type net = { nname : string; source : source; sinks : sink array }

type pi = {
  pname : string;
  pat : Geometry.Point.t;
  arrival : float;  (** signal availability at the pad, s *)
  r_pad : float;  (** pad driver resistance, ohm *)
  d_pad : float;  (** pad driver intrinsic delay, s *)
}

type po = {
  oname : string;
  oat : Geometry.Point.t;
  required : float;  (** required arrival time, s *)
  c_pad : float;  (** pad load, F *)
  po_nm : float;  (** pad noise margin, V *)
}

type t = {
  instances : instance array;
  nets : net array;
  pis : pi array;
  pos : po array;
}

val source_location : t -> source -> Geometry.Point.t

val sink_location : t -> sink -> Geometry.Point.t

val validate : t -> (unit, string) result
(** Structural checks: every instance input driven exactly once, every
    instance output driving exactly one net, every PI driving exactly one
    net, every PO driven exactly once, combinational acyclicity, and
    pairwise-distinct placements per net. *)

val topo_order : t -> int list
(** Instance ids, every instance after all instances feeding it. Raises
    [Invalid_argument] on a cyclic design. *)

val net_of_source : t -> source -> int
(** The net driven by the given source. *)

val stats : t -> string
(** One-line summary (instances / nets / PIs / POs). *)
