type source = From_pi of int | From_inst of int

type sink = To_po of int | To_inst of int * int

type instance = { iname : string; cell : Cell.t; at : Geometry.Point.t }

type net = { nname : string; source : source; sinks : sink array }

type pi = {
  pname : string;
  pat : Geometry.Point.t;
  arrival : float;
  r_pad : float;
  d_pad : float;
}

type po = {
  oname : string;
  oat : Geometry.Point.t;
  required : float;
  c_pad : float;
  po_nm : float;
}

type t = {
  instances : instance array;
  nets : net array;
  pis : pi array;
  pos : po array;
}

let source_location t = function
  | From_pi p -> t.pis.(p).pat
  | From_inst i -> t.instances.(i).at

let sink_location t = function
  | To_po p -> t.pos.(p).oat
  | To_inst (i, _) -> t.instances.(i).at

let topo_order_opt t =
  let ni = Array.length t.instances in
  (* predecessors of an instance: instances feeding any of its inputs *)
  let preds = Array.make ni [] in
  Array.iter
    (fun net ->
      match net.source with
      | From_pi _ -> ()
      | From_inst src ->
          Array.iter
            (fun s ->
              match s with To_inst (i, _) -> preds.(i) <- src :: preds.(i) | To_po _ -> ())
            net.sinks)
    t.nets;
  let state = Array.make ni `White in
  let order = ref [] in
  let ok = ref true in
  let rec visit i =
    match state.(i) with
    | `Black -> ()
    | `Gray -> ok := false
    | `White ->
        state.(i) <- `Gray;
        List.iter visit preds.(i);
        state.(i) <- `Black;
        order := i :: !order
  in
  for i = 0 to ni - 1 do
    visit i
  done;
  if !ok then Some (List.rev !order) else None

let validate t =
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  let ni = Array.length t.instances in
  let input_driven = Array.map (fun inst -> Array.make inst.cell.Cell.n_inputs 0) t.instances in
  let po_driven = Array.make (Array.length t.pos) 0 in
  let source_used = Hashtbl.create 16 in
  Array.iteri
    (fun nid net ->
      (match net.source with
      | From_pi p -> if p < 0 || p >= Array.length t.pis then fail "net %d: bad PI" nid
      | From_inst i -> if i < 0 || i >= ni then fail "net %d: bad instance source" nid);
      (match Hashtbl.find_opt source_used net.source with
      | Some _ -> fail "net %d: source drives several nets" nid
      | None -> Hashtbl.replace source_used net.source nid);
      if Array.length net.sinks = 0 then fail "net %d: no sinks" nid;
      Array.iter
        (fun s ->
          match s with
          | To_po p ->
              if p < 0 || p >= Array.length t.pos then fail "net %d: bad PO" nid
              else po_driven.(p) <- po_driven.(p) + 1
          | To_inst (i, k) ->
              if i < 0 || i >= ni then fail "net %d: bad instance sink" nid
              else if k < 0 || k >= t.instances.(i).cell.Cell.n_inputs then
                fail "net %d: bad input index on %s" nid t.instances.(i).iname
              else input_driven.(i).(k) <- input_driven.(i).(k) + 1)
        net.sinks;
      (* pin placements inside one net must be pairwise distinct for the
         Steiner constructor *)
      let pts = source_location t net.source :: Array.to_list (Array.map (sink_location t) net.sinks) in
      let sorted = List.sort Geometry.Point.compare pts in
      let rec dup = function
        | a :: (b :: _ as rest) -> Geometry.Point.equal a b || dup rest
        | [] | [ _ ] -> false
      in
      if dup sorted then fail "net %d: coincident pin placements" nid)
    t.nets;
  Array.iteri
    (fun i inst ->
      Array.iteri
        (fun k n -> if n <> 1 then fail "instance %s input %d driven %d times" inst.iname k n)
        input_driven.(i);
      if not (Hashtbl.mem source_used (From_inst i)) then
        fail "instance %s output drives no net" inst.iname)
    t.instances;
  Array.iteri (fun p n -> if n <> 1 then fail "PO %d driven %d times" p n) po_driven;
  Array.iteri
    (fun p _ ->
      if not (Hashtbl.mem source_used (From_pi p)) then fail "PI %d drives no net" p)
    t.pis;
  match !err with
  | Some e -> Error e
  | None -> ( match topo_order_opt t with Some _ -> Ok () | None -> Error "cyclic design")

let topo_order t =
  match topo_order_opt t with
  | Some o -> o
  | None -> invalid_arg "Design.topo_order: cyclic design"

let net_of_source t src =
  let found = ref (-1) in
  Array.iteri (fun nid net -> if net.source = src then found := nid) t.nets;
  if !found < 0 then invalid_arg "Design.net_of_source: dangling source";
  !found

let stats t =
  Printf.sprintf "%d instances, %d nets, %d PIs, %d POs" (Array.length t.instances)
    (Array.length t.nets) (Array.length t.pis) (Array.length t.pos)
