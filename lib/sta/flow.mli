(** The physical-synthesis loop the paper's tool runs inside:
    STA -> per-net RAT derivation -> BuffOpt on every net that misses
    timing or margins -> STA on the buffered design.

    This is "full-design mode": timing constraints are not synthetic
    per-net annotations but real path requirements propagated through
    gates, exactly the setting of the paper's Section V experiments. *)

type report = {
  before : Engine.t;
  after : Engine.t;
  optimized_nets : int;  (** nets BuffOpt actually ran on *)
  inserted_buffers : int;
  infeasible_nets : int;  (** nets where no noise-feasible solution existed *)
  resized_gates : int;  (** accepted upsizes when [sizing] was requested *)
}

val optimize :
  ?seg_len:float ->
  ?kmax:int ->
  ?iterations:int ->
  ?sizing:bool ->
  Tech.Process.t ->
  lib:Tech.Buffer.t list ->
  Design.t ->
  report
(** Nets that already meet both their noise margins and their required
    times are left untouched; every other net gets the Problem 3
    treatment with RATs taken from the STA's backward pass. Buffering
    shifts every downstream requirement, so the loop re-analyzes and
    re-optimizes [iterations] times (default 2). [sizing] (default
    false) first runs {!Sizing.run} to upsize undersized drivers on
    failing paths. *)

val summary : report -> string
