module P = Geometry.Point

exception Parse of string

let um_to_nm x = int_of_float (Float.round (x *. 1000.0))

let of_string ?(cells = Cell.library) ?(path = "<string>") text =
  let pis = ref [] and pos = ref [] and insts = ref [] and nets = ref [] in
  let pi_ids = Hashtbl.create 16
  and po_ids = Hashtbl.create 16
  and inst_ids = Hashtbl.create 16 in
  let lineno = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Parse (Printf.sprintf "%s:%d: %s" path !lineno m))) fmt
  in
  let num s = match float_of_string_opt s with Some x -> x | None -> fail "bad number %s" s in
  (* human-unit fields (ps, fF) are decimal-shifted in string space so
     the writer's output reads back bit-identical (Util.Fx) *)
  let scaled exp10 s =
    match Util.Fx.of_scaled ~exp10 s with Some x -> x | None -> fail "bad number %s" s
  in
  let fresh tbl store name v =
    if Hashtbl.mem tbl name then fail "duplicate name %s" name;
    Hashtbl.replace tbl name (List.length !store);
    store := v :: !store
  in
  let source_of s =
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "pi" -> (
        let n = String.sub s (i + 1) (String.length s - i - 1) in
        match Hashtbl.find_opt pi_ids n with
        | Some id -> Design.From_pi id
        | None -> fail "unknown PI %s as net source (%d declared)" n (Hashtbl.length pi_ids))
    | Some _ | None -> (
        match Hashtbl.find_opt inst_ids s with
        | Some id -> Design.From_inst id
        | None ->
            fail "unknown instance %s as net source (%d declared)" s (Hashtbl.length inst_ids))
  in
  let sink_of s =
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "po" -> (
        let n = String.sub s (i + 1) (String.length s - i - 1) in
        match Hashtbl.find_opt po_ids n with
        | Some id -> Design.To_po id
        | None -> fail "unknown PO %s as net sink (%d declared)" n (Hashtbl.length po_ids))
    | Some i -> (
        let inst = String.sub s 0 i in
        let idx = String.sub s (i + 1) (String.length s - i - 1) in
        match (Hashtbl.find_opt inst_ids inst, int_of_string_opt idx) with
        | Some id, Some k -> Design.To_inst (id, k)
        | None, _ ->
            fail "unknown instance %s as net sink (%d declared)" inst (Hashtbl.length inst_ids)
        | _, None -> fail "bad input index %s" idx)
    | None -> fail "sink %s needs po:<name> or <inst>:<index>" s
  in
  List.iter
    (fun line ->
      incr lineno;
      let words = String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "") in
      match words with
      | [] -> ()
      | w :: _ when w.[0] = '#' -> ()
      | [ "pi"; name; x; y; arrival; r_pad; d_pad ] ->
          fresh pi_ids pis name
            {
              Design.pname = name;
              pat = P.make (um_to_nm (num x)) (um_to_nm (num y));
              arrival = scaled (-12) arrival;
              r_pad = num r_pad;
              d_pad = scaled (-12) d_pad;
            }
      | [ "po"; name; x; y; required; c_pad; nm ] ->
          fresh po_ids pos name
            {
              Design.oname = name;
              oat = P.make (um_to_nm (num x)) (um_to_nm (num y));
              required = scaled (-12) required;
              c_pad = scaled (-15) c_pad;
              po_nm = num nm;
            }
      | [ "inst"; name; cell; x; y ] ->
          let cell =
            match List.find_opt (fun (c : Cell.t) -> c.Cell.cname = cell) cells with
            | Some c -> c
            | None -> fail "unknown cell %s (%d in library)" cell (List.length cells)
          in
          fresh inst_ids insts name
            { Design.iname = name; cell; at = P.make (um_to_nm (num x)) (um_to_nm (num y)) }
      | "net" :: name :: src :: sinks ->
          if sinks = [] then fail "net %s has no sinks" name;
          nets :=
            {
              Design.nname = name;
              source = source_of src;
              sinks = Array.of_list (List.map sink_of sinks);
            }
            :: !nets
      | w :: _ -> fail "unknown directive %s" w)
    (String.split_on_char '\n' text);
  let design =
    {
      Design.instances = Array.of_list (List.rev !insts);
      nets = Array.of_list (List.rev !nets);
      pis = Array.of_list (List.rev !pis);
      pos = Array.of_list (List.rev !pos);
    }
  in
  match Design.validate design with
  | Ok () -> design
  | Error e -> raise (Parse (path ^ ": invalid design: " ^ e))

let read ?cells path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string ?cells ~path (really_input_string ic (in_channel_length ic)))

let to_string (d : Design.t) =
  let buf = Buffer.create 1024 in
  let um p = (float_of_int p.P.x /. 1000.0, float_of_int p.P.y /. 1000.0) in
  let ps = Util.Fx.to_scaled ~exp10:(-12) and ff = Util.Fx.to_scaled ~exp10:(-15) in
  Array.iter
    (fun (p : Design.pi) ->
      let x, y = um p.Design.pat in
      Buffer.add_string buf
        (Printf.sprintf "pi %s %.3f %.3f %s %s %s\n" p.Design.pname x y (ps p.Design.arrival)
           (Util.Fx.repr p.Design.r_pad) (ps p.Design.d_pad)))
    d.Design.pis;
  Array.iter
    (fun (p : Design.po) ->
      let x, y = um p.Design.oat in
      Buffer.add_string buf
        (Printf.sprintf "po %s %.3f %.3f %s %s %s\n" p.Design.oname x y (ps p.Design.required)
           (ff p.Design.c_pad) (Util.Fx.repr p.Design.po_nm)))
    d.Design.pos;
  Array.iter
    (fun (i : Design.instance) ->
      let x, y = um i.Design.at in
      Buffer.add_string buf
        (Printf.sprintf "inst %s %s %.3f %.3f\n" i.Design.iname i.Design.cell.Cell.cname x y))
    d.Design.instances;
  Array.iter
    (fun (n : Design.net) ->
      let src =
        match n.Design.source with
        | Design.From_pi p -> "pi:" ^ d.Design.pis.(p).Design.pname
        | Design.From_inst i -> d.Design.instances.(i).Design.iname
      in
      let sink = function
        | Design.To_po p -> "po:" ^ d.Design.pos.(p).Design.oname
        | Design.To_inst (i, k) ->
            Printf.sprintf "%s:%d" d.Design.instances.(i).Design.iname k
      in
      Buffer.add_string buf
        (Printf.sprintf "net %s %s %s\n" n.Design.nname src
           (String.concat " " (Array.to_list (Array.map sink n.Design.sinks)))))
    d.Design.nets;
  Buffer.contents buf

let write path d =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string d))
