(** Static timing analysis over a design.

    Forward pass in topological order: a gate's output switches at the
    maximum of its input arrivals plus its load-dependent delay; the
    interconnect contribution per sink comes from the Elmore analysis of
    the net's routing tree (unbuffered Steiner by default, or buffered
    trees supplied by the flow). Backward pass derives required times —
    and hence the per-sink RATs the paper's Problem 2/3 formulations
    consume — from the primary outputs.

    Noise is reported net by net with the Devgan metric on the same
    trees. *)

type net_timing = {
  tree : Rctree.Tree.t;  (** the routing tree used for this net *)
  sink_arrival : (Design.sink * float) array;  (** absolute arrival per sink pin *)
  sink_required : (Design.sink * float) array;  (** absolute required time per sink pin *)
  source_arrival : float;  (** arrival at the driving pin's input (PI: pad time) *)
  noise_violations : int;
}

type t = {
  nets : net_timing array;  (** indexed like [Design.nets] *)
  wns : float;  (** worst slack over all PO endpoints *)
  tns : float;  (** total negative endpoint slack *)
  noisy_nets : int;  (** nets with at least one margin violation *)
  total_buffers : int;
}

val net_to_steiner : ?rats:float array -> Design.t -> int -> Steiner.Net.t
(** The placed-net view of design net [nid]: driver electricals from the
    source (pad or cell), sink caps/margins from the receiving pins.
    [rats], indexed like the net's sinks, installs required arrival
    times measured {e from the net's driving pin} (defaults to 0 — STA
    computes real slacks itself). *)

val analyze :
  ?trees:(int -> Rctree.Tree.t option) ->
  ?miller:float ->
  Tech.Process.t ->
  Design.t ->
  t
(** Run STA. [trees nid] may supply an optimized routing tree for net
    [nid] (sink names must match [net_to_steiner]'s, i.e. come from it);
    [None] falls back to the fresh Steiner tree. [miller] enables
    crosstalk-aware (delta-delay) timing: every net's coupling
    capacitance counts [miller] times for delay (see [Noise.miller];
    classical worst case 2.0); noise reporting is unaffected. *)

val batch_jobs : Tech.Process.t -> Design.t -> (Steiner.Net.t * Rctree.Tree.t) list
(** One optimization job per net of the design: a single STA pass
    supplies every net's RATs measured from its driving pin, then each
    net gets its placed view and fresh Steiner tree — the derivation
    [buffopt batch] and the serve daemon share. *)

val endpoint_slacks : Design.t -> t -> (string * float) list
(** Slack per primary output. *)
