(** STA-driven driver upsizing — the gate-sizing companion step the
    paper's introduction groups with buffer insertion among
    interconnect-driven optimizations.

    Greedy and safe: walk the instances on failing paths in criticality
    order, tentatively replace each with its next drive strength, and
    keep the change only if the design's worst slack strictly improves
    (an upsize also loads the upstream net, so it can lose). Runs before
    buffer insertion in [Flow.optimize ~sizing:true]. *)

val run :
  ?max_passes:int -> Tech.Process.t -> Design.t -> Design.t * int
(** Returns the resized design and the number of accepted replacements.
    [max_passes] (default 3) bounds full sweeps over the instances. *)
