type report = {
  before : Engine.t;
  after : Engine.t;
  optimized_nets : int;
  inserted_buffers : int;
  infeasible_nets : int;
  resized_gates : int;
}

let optimize ?(seg_len = 500e-6) ?(kmax = 16) ?(iterations = 2) ?(sizing = false) process ~lib
    design =
  let before = Engine.analyze process design in
  let design, resized_gates =
    if sizing then Sizing.run process design else (design, 0)
  in
  let improved : (int, Rctree.Tree.t) Hashtbl.t = Hashtbl.create 32 in
  let touched = Hashtbl.create 32 in
  let infeasible = ref 0 in
  let current = ref (if sizing then Engine.analyze process design else before) in
  for _round = 1 to max 1 iterations do
    infeasible := 0;
    Array.iteri
      (fun nid (nt : Engine.net_timing) ->
        let worst_slack =
          Array.fold_left
            (fun acc ((_, r), (_, a)) -> Float.min acc (r -. a))
            infinity
            (Array.map2 (fun r a -> (r, a)) nt.Engine.sink_required nt.Engine.sink_arrival)
        in
        if nt.Engine.noise_violations > 0 || worst_slack < 0.0 then begin
          Hashtbl.replace touched nid ();
          (* RATs for the optimizer are measured from the net's driving
             pin; each round re-derives them from the latest STA *)
          let rats =
            Array.map (fun (_, r) -> r -. nt.Engine.source_arrival) nt.Engine.sink_required
          in
          let snet = Engine.net_to_steiner ~rats design nid in
          let tree = Steiner.Build.tree_of_net process snet in
          match Bufins.Buffopt.optimize ~seg_len ~kmax Bufins.Buffopt.Buffopt ~lib tree with
          | Some r -> Hashtbl.replace improved nid r.Bufins.Buffopt.report.Bufins.Eval.tree
          | None -> incr infeasible
        end)
      !current.Engine.nets;
    current := Engine.analyze ~trees:(Hashtbl.find_opt improved) process design
  done;
  {
    before;
    after = !current;
    optimized_nets = Hashtbl.length touched;
    inserted_buffers = !current.Engine.total_buffers;
    infeasible_nets = !infeasible;
    resized_gates;
  }

let summary r =
  Printf.sprintf
    "wns %.0f -> %.0f ps | tns %.1f -> %.1f ns | noisy nets %d -> %d | %d nets optimized, %d buffers%s"
    (r.before.Engine.wns *. 1e12)
    (r.after.Engine.wns *. 1e12)
    (r.before.Engine.tns *. 1e9)
    (r.after.Engine.tns *. 1e9)
    r.before.Engine.noisy_nets r.after.Engine.noisy_nets r.optimized_nets r.inserted_buffers
    (if r.infeasible_nets > 0 then Printf.sprintf " (%d infeasible)" r.infeasible_nets else "")
