type t = {
  cname : string;
  n_inputs : int;
  c_in : float;
  r_out : float;
  d_intr : float;
  nm : float;
}

let mk cname n_inputs c_in r_out d_intr nm = { cname; n_inputs; c_in; r_out; d_intr; nm }

let library =
  [
    mk "inv_x1" 1 2.5e-15 700.0 25e-12 0.8;
    mk "inv_x4" 1 8e-15 190.0 22e-12 0.8;
    mk "nand2_x1" 2 3.5e-15 800.0 35e-12 0.8;
    mk "nand2_x4" 2 11e-15 220.0 32e-12 0.8;
    mk "nor2_x1" 2 3.8e-15 900.0 38e-12 0.8;
    mk "aoi21_x2" 3 6e-15 450.0 45e-12 0.8;
    (* domino stages: fast but noise-sensitive inputs *)
    mk "dyn_and2" 2 4e-15 260.0 18e-12 0.5;
    mk "dyn_or3" 3 4.5e-15 240.0 16e-12 0.5;
  ]

let find name = List.find (fun c -> c.cname = name) library

let upsize t =
  match t.cname with
  | "inv_x1" -> Some (find "inv_x4")
  | "nand2_x1" -> Some (find "nand2_x4")
  | _ -> None

let output_load_delay t ~load = t.d_intr +. (t.r_out *. load)
