(** Plain-text design files.

    Line oriented; blank lines and [#] comments are ignored:

    {v
    pi   <name> <x_um> <y_um> <arrival_ps> <r_pad_ohm> <d_pad_ps>
    po   <name> <x_um> <y_um> <required_ps> <c_pad_fF> <nm_V>
    inst <name> <cell> <x_um> <y_um>
    net  <name> <source> <sink> <sink> ...
    v}

    where a [<source>] is [pi:<name>] or an instance name, and a [<sink>]
    is [po:<name>] or [<inst>:<input-index>]. Cells come from
    {!Cell.library}. Declarations may appear in any order; nets must
    follow the pins and instances they reference. *)

exception Parse of string
(** Carries ["file:line: message"]. *)

val read : ?cells:Cell.t list -> string -> Design.t
(** Parse and validate a design file; raises {!Parse} on syntax errors
    and on designs rejected by {!Design.validate}. [cells] (default
    {!Cell.library}, e.g. from {!Cellfile.read}) resolves instance cell
    names. *)

val write : string -> Design.t -> unit
(** Render a design back to a file; [read] of the result reproduces an
    equivalent design (round-trip tested). *)

val to_string : Design.t -> string
