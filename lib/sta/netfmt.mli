(** Plain-text design files.

    Line oriented; blank lines and [#] comments are ignored:

    {v
    pi   <name> <x_um> <y_um> <arrival_ps> <r_pad_ohm> <d_pad_ps>
    po   <name> <x_um> <y_um> <required_ps> <c_pad_fF> <nm_V>
    inst <name> <cell> <x_um> <y_um>
    net  <name> <source> <sink> <sink> ...
    v}

    where a [<source>] is [pi:<name>] or an instance name, and a [<sink>]
    is [po:<name>] or [<inst>:<input-index>]. Cells come from
    {!Cell.library}. Declarations may appear in any order; nets must
    follow the pins and instances they reference. *)

exception Parse of string
(** Carries ["file:line: message"]. *)

val of_string : ?cells:Cell.t list -> ?path:string -> string -> Design.t
(** Parse and validate a design from a string; raises {!Parse} on
    syntax errors and on designs rejected by {!Design.validate}.
    [cells] (default {!Cell.library}, e.g. from {!Cellfile.read})
    resolves instance cell names; [path] (default ["<string>"]) labels
    {!Parse} locations. *)

val read : ?cells:Cell.t list -> string -> Design.t
(** [of_string] over a file's contents. *)

val write : string -> Design.t -> unit
(** Render a design back to a file; [read] of the result reproduces the
    design with bit-identical electricals — ps/fF fields go through
    {!Util.Fx.to_scaled}, so no [*. 1e-12] double rounding on either
    side (round-trip tested). *)

val to_string : Design.t -> string
