(** Combinational cell models for the design-level flow.

    The same linear gate model as the optimizer (eq. 3): every cell has
    one output with intrinsic delay and resistance, uniform input pin
    capacitance, and an input noise margin. Dynamic-logic cells carry the
    reduced margins that motivate the paper. *)

type t = {
  cname : string;
  n_inputs : int;
  c_in : float;  (** per input pin, F *)
  r_out : float;  (** ohm *)
  d_intr : float;  (** s *)
  nm : float;  (** input noise margin, V *)
}

val library : t list
(** Static CMOS inverters/NAND/NOR/AND-OR in two strengths plus two
    dynamic (domino) cells with 0.5 V margins. *)

val find : string -> t
(** Raises [Not_found] for unknown names. *)

val upsize : t -> t option
(** The next drive strength in the same family ([inv_x1 -> inv_x4],
    [nand2_x1 -> nand2_x4]); [None] at the top of a family or for cells
    with a single strength. *)

val output_load_delay : t -> load:float -> float
(** Eq. (3): [d_intr + r_out * load]. *)
