module T = Rctree.Tree

type net_timing = {
  tree : Rctree.Tree.t;
  sink_arrival : (Design.sink * float) array;
  sink_required : (Design.sink * float) array;
  source_arrival : float;
  noise_violations : int;
}

type t = {
  nets : net_timing array;
  wns : float;
  tns : float;
  noisy_nets : int;
  total_buffers : int;
}

let sink_name k = Printf.sprintf "k%d" k

let sink_index name =
  match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
  | Some k when String.length name > 1 && name.[0] = 'k' -> k
  | Some _ | None -> invalid_arg "Engine: foreign sink name in supplied tree"

let net_to_steiner ?rats (design : Design.t) nid =
  let net = design.Design.nets.(nid) in
  let r_drv, d_drv =
    match net.Design.source with
    | Design.From_pi p -> (design.Design.pis.(p).Design.r_pad, design.Design.pis.(p).Design.d_pad)
    | Design.From_inst i ->
        let c = design.Design.instances.(i).Design.cell in
        (c.Cell.r_out, c.Cell.d_intr)
  in
  let pins =
    Array.to_list
      (Array.mapi
         (fun k s ->
           let at = Design.sink_location design s in
           let c_sink, nm =
             match s with
             | Design.To_po p -> (design.Design.pos.(p).Design.c_pad, design.Design.pos.(p).Design.po_nm)
             | Design.To_inst (i, _) ->
                 let c = design.Design.instances.(i).Design.cell in
                 (c.Cell.c_in, c.Cell.nm)
           in
           let rat = match rats with Some r -> r.(k) | None -> 0.0 in
           { Steiner.Net.pname = sink_name k; at; c_sink; rat; nm })
         net.Design.sinks)
  in
  Steiner.Net.make ~name:net.Design.nname
    ~source:(Design.source_location design net.Design.source)
    ~r_drv ~d_drv ~pins

let analyze ?(trees = fun _ -> None) ?miller process (design : Design.t) =
  let n_nets = Array.length design.Design.nets in
  let tree_of =
    Array.init n_nets (fun nid ->
        match trees nid with
        | Some t -> t
        | None -> Steiner.Build.tree_of_net process (net_to_steiner design nid))
  in
  (* delay analysis optionally sees the Miller-inflated coupling caps *)
  let timing_view =
    match miller with
    | None -> tree_of
    | Some factor ->
        Array.map (fun t -> Noise.miller t ~slope:(Tech.Process.slope process) ~factor) tree_of
  in
  (* per net: delay from the driving pin's input to each sink pin *)
  let rel =
    Array.map
      (fun tree ->
        let arr = Elmore.arrivals tree in
        let out = Hashtbl.create 8 in
        List.iter
          (fun s ->
            match T.kind tree s with
            | T.Sink sk -> Hashtbl.replace out (sink_index sk.T.sname) arr.(s)
            | T.Source _ | T.Internal | T.Buffered _ -> ())
          (T.sinks tree);
        out)
      timing_view
  in
  let rel_delay nid k =
    match Hashtbl.find_opt rel.(nid) k with
    | Some d -> d
    | None -> invalid_arg "Engine.analyze: supplied tree is missing a sink"
  in
  (* forward pass *)
  let inst_in_arrival =
    Array.map (fun i -> Array.make i.Design.cell.Cell.n_inputs nan) design.Design.instances
  in
  let po_arrival = Array.make (Array.length design.Design.pos) nan in
  let src_arrival = Array.make n_nets nan in
  let propagate nid =
    let net = design.Design.nets.(nid) in
    Array.iteri
      (fun k s ->
        let a = src_arrival.(nid) +. rel_delay nid k in
        match s with
        | Design.To_po p -> po_arrival.(p) <- a
        | Design.To_inst (i, pin) -> inst_in_arrival.(i).(pin) <- a)
      net.Design.sinks
  in
  Array.iteri
    (fun p _ ->
      let nid = Design.net_of_source design (Design.From_pi p) in
      src_arrival.(nid) <- design.Design.pis.(p).Design.arrival;
      propagate nid)
    design.Design.pis;
  List.iter
    (fun i ->
      let nid = Design.net_of_source design (Design.From_inst i) in
      src_arrival.(nid) <- Array.fold_left Float.max neg_infinity inst_in_arrival.(i);
      propagate nid)
    (Design.topo_order design);
  (* backward pass *)
  let inst_required = Array.make (Array.length design.Design.instances) infinity in
  let required_of_sink s =
    match s with
    | Design.To_po p -> design.Design.pos.(p).Design.required
    | Design.To_inst (i, _) -> inst_required.(i)
  in
  List.iter
    (fun i ->
      let nid = Design.net_of_source design (Design.From_inst i) in
      let net = design.Design.nets.(nid) in
      let req = ref infinity in
      Array.iteri
        (fun k s -> req := Float.min !req (required_of_sink s -. rel_delay nid k))
        net.Design.sinks;
      inst_required.(i) <- !req)
    (List.rev (Design.topo_order design));
  (* assemble per-net reports *)
  let nets =
    Array.init n_nets (fun nid ->
        let net = design.Design.nets.(nid) in
        let tree = tree_of.(nid) in
        {
          tree;
          sink_arrival =
            Array.mapi (fun k s -> (s, src_arrival.(nid) +. rel_delay nid k)) net.Design.sinks;
          sink_required = Array.map (fun s -> (s, required_of_sink s)) net.Design.sinks;
          source_arrival = src_arrival.(nid);
          noise_violations = List.length (Noise.violations tree);
        })

  in
  let wns = ref infinity and tns = ref 0.0 in
  Array.iteri
    (fun p (po : Design.po) ->
      let slack = po.Design.required -. po_arrival.(p) in
      wns := Float.min !wns slack;
      if slack < 0.0 then tns := !tns +. slack)
    design.Design.pos;
  {
    nets;
    wns = !wns;
    tns = !tns;
    noisy_nets =
      Array.fold_left (fun acc nt -> if nt.noise_violations > 0 then acc + 1 else acc) 0 nets;
    total_buffers = Array.fold_left (fun acc nt -> acc + T.buffer_count nt.tree) 0 nets;
  }

let batch_jobs process (design : Design.t) =
  let sta = analyze process design in
  List.init (Array.length sta.nets) (fun nid ->
      let nt = sta.nets.(nid) in
      let rats = Array.map (fun (_, r) -> r -. nt.source_arrival) nt.sink_required in
      let snet = net_to_steiner ~rats design nid in
      (snet, Steiner.Build.tree_of_net process snet))

let endpoint_slacks (design : Design.t) t =
  (* recover PO arrivals from the per-net reports *)
  Array.to_list
    (Array.mapi
       (fun p (po : Design.po) ->
         let arr = ref nan in
         Array.iter
           (fun nt ->
             Array.iter
               (fun (s, a) -> if s = Design.To_po p then arr := a)
               nt.sink_arrival)
           t.nets;
         (po.Design.oname, po.Design.required -. !arr))
       design.Design.pos)
