module P = Geometry.Point

type config = { gates : int; pis : int; die : int; period : float; seed : int }

let default_config = { gates = 120; pis = 12; die = 8_000_000; period = 6e-9; seed = 7 }

let random cfg =
  if cfg.gates < 1 || cfg.pis < 1 then invalid_arg "Gen.random: need gates and PIs";
  let rng = Util.Rng.create cfg.seed in
  let seen = Hashtbl.create 64 in
  let rec place () =
    let p = P.make (Util.Rng.int rng cfg.die) (Util.Rng.int rng cfg.die) in
    if Hashtbl.mem seen p then place ()
    else begin
      Hashtbl.replace seen p ();
      p
    end
  in
  let pis =
    Array.init cfg.pis (fun p ->
        {
          Design.pname = Printf.sprintf "pi%d" p;
          pat = place ();
          arrival = Util.Rng.range rng 0.0 100e-12;
          r_pad = Util.Rng.range rng 40.0 150.0;
          d_pad = Util.Rng.range rng 20e-12 50e-12;
        })
  in
  let cells = Array.of_list Cell.library in
  let instances =
    Array.init cfg.gates (fun i ->
        {
          Design.iname = Printf.sprintf "g%d" i;
          cell = Util.Rng.choice rng cells;
          at = place ();
        })
  in
  (* wire inputs: gate i draws from distinct sources among PIs and
     earlier gates, with a bias towards recent gates for path depth *)
  let fanout = Hashtbl.create 64 in
  let add_sink src s =
    Hashtbl.replace fanout src (s :: Option.value ~default:[] (Hashtbl.find_opt fanout src))
  in
  Array.iteri
    (fun i inst ->
      let chosen = Hashtbl.create 4 in
      for k = 0 to inst.Design.cell.Cell.n_inputs - 1 do
        let rec pick () =
          let src =
            if i > 0 && Util.Rng.float rng 1.0 < 0.75 then begin
              (* an earlier gate, biased to the recent half *)
              let lo = if i > 8 && Util.Rng.bool rng then i / 2 else 0 in
              Design.From_inst (lo + Util.Rng.int rng (i - lo))
            end
            else Design.From_pi (Util.Rng.int rng cfg.pis)
          in
          if Hashtbl.mem chosen src then pick () else src
        in
        let src = pick () in
        Hashtbl.replace chosen src ();
        add_sink src (Design.To_inst (i, k))
      done)
    instances;
  (* every driver must drive something: childless outputs feed POs *)
  let pos = ref [] in
  let n_pos = ref 0 in
  let ensure_fanout src =
    if not (Hashtbl.mem fanout src) then begin
      let p = !n_pos in
      incr n_pos;
      pos :=
        {
          Design.oname = Printf.sprintf "po%d" p;
          oat = place ();
          required = cfg.period;
          c_pad = Util.Rng.range rng 20e-15 60e-15;
          po_nm = 0.8;
        }
        :: !pos;
      add_sink src (Design.To_po p)
    end
  in
  Array.iteri (fun i _ -> ensure_fanout (Design.From_inst i)) instances;
  Array.iteri (fun p _ -> ensure_fanout (Design.From_pi p)) pis;
  let pos = Array.of_list (List.rev !pos) in
  let nets =
    Hashtbl.fold
      (fun src sinks acc -> (src, Array.of_list (List.rev sinks)) :: acc)
      fanout []
    |> List.sort compare
    |> List.mapi (fun nid (source, sinks) ->
           { Design.nname = Printf.sprintf "n%d" nid; source; sinks })
    |> Array.of_list
  in
  let design = { Design.instances; nets; pis; pos } in
  (match Design.validate design with
  | Ok () -> ()
  | Error e -> invalid_arg ("Gen.random: generated invalid design: " ^ e));
  design
