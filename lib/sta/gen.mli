(** Random combinational designs for the full-design experiments.

    Instances are placed at distinct points on a square die and wired
    into a DAG: each gate's inputs come from distinct earlier sources
    (primary inputs or earlier gates); outputs nobody consumes drive
    primary outputs required at the clock period. With millimetre-scale
    dies the inter-gate nets are long enough to exhibit the paper's
    noise and delay problems. *)

type config = {
  gates : int;
  pis : int;
  die : int;  (** die edge, nm *)
  period : float;  (** required time at every PO, s *)
  seed : int;
}

val default_config : config
(** 120 gates, 12 PIs, 8 mm die, 6 ns period, seed 7. *)

val random : config -> Design.t
(** Always validates ([Design.validate] is re-checked, an assertion). *)
