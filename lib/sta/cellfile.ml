exception Parse of string

let of_string ?(path = "<string>") text =
  let cells = ref [] in
  let names = Hashtbl.create 16 in
  let lineno = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Parse (Printf.sprintf "%s:%d: %s" path !lineno m))) fmt
  in
  let num s = match float_of_string_opt s with Some x -> x | None -> fail "bad number %s" s in
  let scaled exp10 s =
    match Util.Fx.of_scaled ~exp10 s with Some x -> x | None -> fail "bad number %s" s
  in
  List.iter
    (fun line ->
      incr lineno;
      let words = String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "") in
      match words with
      | [] -> ()
      | w :: _ when String.length w > 0 && w.[0] = '#' -> ()
      | [ "cell"; name; inputs; c_in; r_out; d_intr; nm ] ->
          if Hashtbl.mem names name then fail "duplicate cell %s" name;
          Hashtbl.replace names name ();
          let n_inputs =
            match int_of_string_opt inputs with
            | Some n when n >= 1 -> n
            | Some _ | None -> fail "bad input count %s" inputs
          in
          let cell =
            {
              Cell.cname = name;
              n_inputs;
              c_in = scaled (-15) c_in;
              r_out = num r_out;
              d_intr = scaled (-12) d_intr;
              nm = num nm;
            }
          in
          if cell.Cell.c_in < 0.0 || cell.Cell.r_out <= 0.0 || cell.Cell.nm <= 0.0 then
            fail "non-physical parameters for %s" name;
          cells := cell :: !cells
      | w :: _ -> fail "unknown directive %s" w)
    (String.split_on_char '\n' text);
  match List.rev !cells with
  | [] -> raise (Parse (path ^ ": empty cell library"))
  | cs -> cs

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string ~path (really_input_string ic (in_channel_length ic)))

let to_string cells =
  let buf = Buffer.create 256 in
  List.iter
    (fun (c : Cell.t) ->
      Buffer.add_string buf
        (Printf.sprintf "cell %s %d %s %s %s %s\n" c.Cell.cname c.Cell.n_inputs
           (Util.Fx.to_scaled ~exp10:(-15) c.Cell.c_in)
           (Util.Fx.repr c.Cell.r_out)
           (Util.Fx.to_scaled ~exp10:(-12) c.Cell.d_intr)
           (Util.Fx.repr c.Cell.nm)))
    cells;
  Buffer.contents buf

let write path cells =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string cells))
