exception Parse of string

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let cells = ref [] in
      let names = Hashtbl.create 16 in
      let lineno = ref 0 in
      let fail fmt =
        Printf.ksprintf (fun m -> raise (Parse (Printf.sprintf "%s:%d: %s" path !lineno m))) fmt
      in
      let num s = match float_of_string_opt s with Some x -> x | None -> fail "bad number %s" s in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let words =
             String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")
           in
           match words with
           | [] -> ()
           | w :: _ when String.length w > 0 && w.[0] = '#' -> ()
           | [ "cell"; name; inputs; c_in; r_out; d_intr; nm ] ->
               if Hashtbl.mem names name then fail "duplicate cell %s" name;
               Hashtbl.replace names name ();
               let n_inputs =
                 match int_of_string_opt inputs with
                 | Some n when n >= 1 -> n
                 | Some _ | None -> fail "bad input count %s" inputs
               in
               let cell =
                 {
                   Cell.cname = name;
                   n_inputs;
                   c_in = num c_in *. 1e-15;
                   r_out = num r_out;
                   d_intr = num d_intr *. 1e-12;
                   nm = num nm;
                 }
               in
               if cell.Cell.c_in < 0.0 || cell.Cell.r_out <= 0.0 || cell.Cell.nm <= 0.0 then
                 fail "non-physical parameters for %s" name;
               cells := cell :: !cells
           | w :: _ -> fail "unknown directive %s" w
         done
       with End_of_file -> ());
      match List.rev !cells with
      | [] -> raise (Parse (path ^ ": empty cell library"))
      | cs -> cs)

let to_string cells =
  let buf = Buffer.create 256 in
  List.iter
    (fun (c : Cell.t) ->
      Buffer.add_string buf
        (Printf.sprintf "cell %s %d %.6f %.4f %.6f %.4f\n" c.Cell.cname c.Cell.n_inputs
           (c.Cell.c_in *. 1e15) c.Cell.r_out (c.Cell.d_intr *. 1e12) c.Cell.nm))
    cells;
  Buffer.contents buf

let write path cells =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string cells))
