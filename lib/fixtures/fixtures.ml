module T = Rctree.Tree
module B = Rctree.Builder

let fig3 () =
  let b = B.create () in
  let so = B.add_source b ~r_drv:10.0 ~d_drv:0.0 in
  let w1 = T.make_wire ~length:1.0 ~res:2.0 ~cap:1.0 ~cur:4.0 in
  let v1 = B.add_internal b ~parent:so ~wire:w1 () in
  let w2 = T.make_wire ~length:1.0 ~res:3.0 ~cap:1.0 ~cur:2.0 in
  ignore (B.add_sink b ~parent:v1 ~wire:w2 ~name:"s1" ~c_sink:1.0 ~rat:1.0 ~nm:200.0);
  let w3 = T.make_wire ~length:1.0 ~res:2.0 ~cap:1.0 ~cur:6.0 in
  ignore (B.add_sink b ~parent:v1 ~wire:w3 ~name:"s2" ~c_sink:1.0 ~rat:1.0 ~nm:150.0);
  B.finish b

let two_pin ?(r_drv = 100.0) ?(c_sink = 20e-15) ?(rat = 2e-9) ?(nm = 0.8) p ~len =
  let b = B.create () in
  let so = B.add_source b ~r_drv ~d_drv:30e-12 in
  ignore (B.add_sink b ~parent:so ~wire:(T.wire_of_length p len) ~name:"s" ~c_sink ~rat ~nm);
  B.finish b

let balanced ?(fanout_len = 1e-3) p ~levels ~trunk_len =
  let b = B.create () in
  let so = B.add_source b ~r_drv:120.0 ~d_drv:30e-12 in
  let trunk = B.add_internal b ~parent:so ~wire:(T.wire_of_length p trunk_len) () in
  let counter = ref 0 in
  let rec grow parent level =
    if level = 0 then begin
      let name = Printf.sprintf "s%d" !counter in
      incr counter;
      ignore
        (B.add_sink b ~parent ~wire:(T.wire_of_length p fanout_len) ~name ~c_sink:20e-15
           ~rat:2e-9 ~nm:0.8)
    end
    else begin
      let l = B.add_internal b ~parent ~wire:(T.wire_of_length p fanout_len) () in
      let r = B.add_internal b ~parent ~wire:(T.wire_of_length p fanout_len) () in
      grow l (level - 1);
      grow r (level - 1)
    end
  in
  if levels = 0 then grow trunk 0
  else begin
    grow trunk (levels - 1);
    grow trunk (levels - 1)
  end;
  B.finish b

let random_net rng p ~max_sinks ~max_len =
  let b = B.create () in
  let so = B.add_source b ~r_drv:(Util.Rng.range rng 20.0 250.0) ~d_drv:(Util.Rng.range rng 0.0 60e-12) in
  let n_sinks = 1 + Util.Rng.int rng max_sinks in
  (* grow by random attachment: each new sink hangs off a random existing
     attachable node (source or internal) *)
  let attach_points = ref [ so ] in
  let wire () = T.wire_of_length p (Util.Rng.range rng (max_len /. 50.0) max_len) in
  for k = 0 to n_sinks - 1 do
    let parent = List.nth !attach_points (Util.Rng.int rng (List.length !attach_points)) in
    (* interpose a random number of internal nodes *)
    let rec chain parent depth =
      if depth = 0 then parent
      else begin
        let v = B.add_internal b ~parent ~wire:(wire ()) () in
        attach_points := v :: !attach_points;
        chain v (depth - 1)
      end
    in
    let parent = chain parent (Util.Rng.int rng 3) in
    ignore
      (B.add_sink b ~parent ~wire:(wire ())
         ~name:(Printf.sprintf "s%d" k)
         ~c_sink:(Util.Rng.range rng 2e-15 60e-15)
         ~rat:(Util.Rng.range rng 0.2e-9 3e-9)
         ~nm:(Util.Rng.range rng 0.5 1.2))
  done;
  B.finish b
