(** Shared example trees for tests, examples and benchmarks. *)

val fig3 : unit -> Rctree.Tree.t
(** The paper's Fig. 3 worked noise-computation example, with this
    project's concrete numbers (the journal scan loses the originals):
    source [so] (driver resistance 10 ohm) - wire [w1] (2 ohm, coupled
    current 4 A) - node [v1] branching to sink [s1] over [w2] (3 ohm,
    2 A, margin 200 V) and sink [s2] over [w3] (2 ohm, 6 A, margin
    150 V). Hand-computed noise: 143 V at [s1], 146 V at [s2] (see
    examples/fig3_noise.ml). Values are dimensionally consistent but
    deliberately abstract, as in the paper. *)

val two_pin : ?r_drv:float -> ?c_sink:float -> ?rat:float -> ?nm:float -> Tech.Process.t -> len:float -> Rctree.Tree.t
(** A source driving a single sink over one estimation-mode wire of
    [len] metres. Defaults: 100 ohm driver, 20 fF sink, 2 ns RAT, 0.8 V
    margin. *)

val balanced : ?fanout_len:float -> Tech.Process.t -> levels:int -> trunk_len:float -> Rctree.Tree.t
(** A balanced binary tree: a trunk wire then [levels] of symmetric
    branching (2^levels sinks). *)

val random_net :
  Util.Rng.t ->
  Tech.Process.t ->
  max_sinks:int ->
  max_len:float ->
  Rctree.Tree.t
(** A random topology with 1..[max_sinks] sinks, random wire lengths up
    to [max_len], random driver/sink electricals; used by property
    tests. Trees are built via random attachment so all shapes occur. *)
