(** Formulation-specific wire segmenting (the paper's footnote 3).

    Uniform segmenting (Alpert–Devgan [1]) spends candidate nodes evenly;
    the noise formulation says where they are actually needed: within a
    fresh buffer's maximal noise-safe span (Theorem 1), a handful of
    positions suffice, while beyond it no spacing of buffers can help.
    [noise_driven] sizes each wire's pieces as a fraction of the
    strongest buffer's Theorem-1 span for {e that wire's} per-unit
    coupling, so heavily coupled wires get dense candidates and quiet
    wires stay coarse — fewer candidates than uniform segmenting at equal
    solution quality (Ablation A'). *)

val noise_driven :
  ?fraction:float ->
  ?fallback:float ->
  lib:Tech.Buffer.t list ->
  Rctree.Tree.t ->
  Rctree.Tree.t
(** [fraction] (default 0.34) of the safe span bounds each piece, giving
    about three candidate positions per span; wires without coupling use
    [fallback] (default 1 mm, delay-driven only). *)
