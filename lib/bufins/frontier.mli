(** Sorted Pareto frontiers — the candidate-engine substrate shared by the
    DP optimizers ({!Dp}, hence Van Ginneken / Algorithm 3 / BuffOpt) and
    Algorithm 2.

    A frontier is a plain list sorted by increasing {e cost} (the load [c]
    for the timing DP, the coupled current [i] for Algorithm 2) on which
    dominated candidates have been removed. Keeping every candidate group
    sorted end-to-end is what makes pruning a linear sweep and merging the
    Li–Shi / Van Ginneken linear walk, instead of the all-pairs scans and
    per-visit re-sorting the operations would otherwise need.

    All sweep functions return the survivors {e in increasing-cost order}
    together with the number of candidates dropped, so callers can report
    pruning statistics ({!Dp.stats}). *)

val sweep2 : cost:('a -> float) -> value:('a -> float) -> 'a list -> 'a list * int
(** Linear Pareto sweep for two-dimensional dominance
    ([cost a <= cost b && value a >= value b] ⇒ drop [b], keeping one of
    equals). Input must be sorted by non-decreasing cost; equal-cost ties
    may appear in any value order. Survivors form a staircase: strictly
    increasing cost and strictly increasing value. O(n). *)

val pareto2 : cost:('a -> float) -> value:('a -> float) -> 'a list -> 'a list * int
(** [sweep2] after sorting by (cost asc, value desc): full-service pruning
    of an unordered candidate list. O(n log n). *)

val sweep_dom : cost:('a -> float) -> dominates:('a -> 'a -> bool) -> 'a list -> 'a list * int
(** Sweep for higher-dimensional dominance relations. Input must be sorted
    by non-decreasing cost, and [dominates a b] must imply
    [cost a <= cost b] (so any dominator of [x] appears no later than [x],
    except among equal-cost ties, which are handled bidirectionally).
    O(n·w) where [w] is the surviving frontier width. *)

val pareto_dom :
  cmp:('a -> 'a -> int) ->
  cost:('a -> float) ->
  dominates:('a -> 'a -> bool) ->
  'a list ->
  'a list * int
(** [sweep_dom] after [List.sort cmp]; [cmp]'s primary key must be the
    cost, ascending. *)

val merge2 : value:('a -> float) -> join:('a -> 'a -> 'b) -> 'a list -> 'a list -> 'b list
(** Van Ginneken's linear merge of two frontiers at a branch point:
    join the heads, then advance the side with the smaller (binding)
    value — both sides on a tie. When both inputs are [sweep2]-pruned
    (cost and value increasing together), the walk enumerates a superset
    of the 2D-Pareto-optimal pairings and the output is itself sorted by
    increasing joined cost (costs add, and each step advances to a
    costlier element). O(|l| + |r|). *)

val cross : join:('a -> 'a -> 'b) -> 'a list -> 'a list -> 'b list
(** Every pairing, in unspecified order. The exhaustive merge used by the
    noise-mode engine, where pairings off the (c, q) frontier can carry
    the only surviving noise slack. O(|l|·|r|). *)

val merge_sorted : ('a -> 'a -> int) -> 'a list list -> 'a list
(** Merge several [cmp]-sorted runs into one sorted list (fold of
    [List.merge]). *)

val best : score:('a -> float) -> eligible:('a -> bool) -> 'a list -> 'a option
(** Single scan for the highest-scoring eligible candidate — the
    buffer-insertion step's argmax of post-buffer slack over a frontier.
    [None] when nothing is eligible. *)
