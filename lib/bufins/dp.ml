module T = Rctree.Tree
module C = Candidate

type mode = Single | Per_count of int

type result = {
  slack : float;
  placements : Rctree.Surgery.placement list;
  sizes : (int * float) list;
  count : int;
  candidates_seen : int;
}

type outcome = { best : result option; by_count : result option array; seen : int }

(* Candidate sets are lists grouped by (parity, bucket); bucket is the
   buffer count in Per_count mode and 0 in Single mode. Within a group,
   lists are kept Pareto-pruned on (c, q) and sorted by increasing load
   (hence increasing slack), the invariant Van Ginneken's linear merge
   needs. *)

let ns_eps = 1e-12

let run ?(prune = true) ?(widths = [ 1.0 ]) ?(area_frac = 0.4) ~noise ~mode ~lib tree =
  if widths = [] || List.exists (fun w -> w < 1.0) widths then
    invalid_arg "Dp.run: widths must be >= 1";
  if lib = [] then invalid_arg "Dp.run: empty buffer library";
  if T.buffer_count tree > 0 then invalid_arg "Dp.run: tree already contains buffers";
  let kmax = match mode with Single -> max_int | Per_count k -> k in
  let bucket (a : C.t) = match mode with Single -> 0 | Per_count _ -> a.C.count in
  let seen = ref 0 in
  let group cands =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (a : C.t) ->
        let key = (a.C.parity, bucket a) in
        Hashtbl.replace tbl key (a :: (Option.value ~default:[] (Hashtbl.find_opt tbl key))))
      cands;
    tbl
  in
  let normalize cands =
    let cands = if noise then List.filter (fun (a : C.t) -> a.C.ns >= -.ns_eps) cands else cands in
    let tbl = group cands in
    let kept =
      Hashtbl.fold
        (fun _ group acc ->
          let kept = if prune then C.prune ~within:C.dominates group else group in
          List.rev_append kept acc)
        tbl []
      |> List.sort (fun (a : C.t) (b : C.t) ->
             compare (a.C.parity, bucket a, a.C.c) (b.C.parity, bucket b, b.C.c))
    in
    seen := !seen + List.length kept;
    kept
  in
  (* Van Ginneken's linear merge of two (c,q)-Pareto lists (sorted by
     increasing c, hence increasing q): advance the binding (smaller-q)
     side. Produces a superset of the Pareto-optimal pairings. *)
  let rec lmerge acc l r =
    match (l, r) with
    | [], _ | _, [] -> acc
    | (a : C.t) :: ltl, (b : C.t) :: rtl ->
        let acc = C.merge a b :: acc in
        if a.C.q < b.C.q then lmerge acc ltl r
        else if b.C.q < a.C.q then lmerge acc l rtl
        else lmerge acc ltl rtl
  in
  let merge_sets left right =
    let lt = group left and rt = group right in
    let out = ref [] in
    Hashtbl.iter
      (fun (p, kl) lgroup ->
        let lgroup = List.sort (fun (a : C.t) b -> compare a.C.c b.C.c) lgroup in
        Hashtbl.iter
          (fun (p', kr) rgroup ->
            if p = p' && (mode = Single || kl + kr <= kmax) then begin
              let rgroup = List.sort (fun (a : C.t) b -> compare a.C.c b.C.c) rgroup in
              out := lmerge !out lgroup rgroup
            end)
          rt)
        lt;
    !out
  in
  let insert_buffers v cands =
    (* Step 5 (Figs. 5 and 11): for each buffer type and group, keep the
       insertion producing the largest resulting slack; in noise mode a
       buffer is never attached to a candidate it would make noisy. *)
    let extra = ref [] in
    List.iter
      (fun (b : Tech.Buffer.t) ->
        let best = Hashtbl.create 8 in
        List.iter
          (fun (a : C.t) ->
            if a.C.count < kmax
               && ((not noise) || C.noise_ok ~r_gate:b.Tech.Buffer.r_b a)
            then begin
              let cand = C.add_buffer ~at:v b a in
              let key = (a.C.parity, bucket a) in
              match Hashtbl.find_opt best key with
              | Some (prev : C.t) -> if cand.C.q > prev.C.q then Hashtbl.replace best key cand
              | None -> Hashtbl.replace best key cand
            end)
          cands;
        Hashtbl.iter (fun _ c -> extra := c :: !extra) best)
      lib;
    List.rev_append !extra cands
  in
  let rec at v =
    match T.kind tree v with
    | T.Sink s -> [ C.of_sink s ]
    | T.Buffered _ | T.Source _ -> assert false
    | T.Internal ->
        let base =
          match T.children tree v with
          | [ c ] -> above c
          | [ cl; cr ] -> merge_sets (above cl) (above cr)
          | _ -> assert false
        in
        let base = if T.feasible tree v then insert_buffers v base else base in
        normalize base
  and above c =
    let w = T.wire_to tree c in
    let cands = at c in
    let variants =
      if w.T.length <= 0.0 then List.map (C.add_wire w) cands
      else
        (* simultaneous wire sizing: each candidate climbs the wire at
           every available width (Lillis et al. [18]) *)
        List.concat_map
          (fun (a : C.t) ->
            List.map
              (fun width ->
                if width = 1.0 then C.add_wire w a
                else begin
                  let sized = T.resize_wire w ~width ~area_frac in
                  { (C.add_wire sized a) with C.sizes = (c, width) :: a.C.sizes }
                end)
              widths)
          cands
    in
    normalize variants
  in
  let root = T.root tree in
  let d =
    match T.kind tree root with
    | T.Source d -> d
    | T.Sink _ | T.Internal | T.Buffered _ -> assert false
  in
  let top =
    match T.children tree root with
    | [ c ] -> above c
    | [ cl; cr ] -> normalize (merge_sets (above cl) (above cr))
    | _ -> assert false
  in
  let finals =
    List.filter_map
      (fun (a : C.t) ->
        if a.C.parity <> 0 then None
        else if noise && not (C.noise_ok ~r_gate:d.T.r_drv a) then None
        else Some (C.add_driver d a))
      top
  in
  let nbuckets = match mode with Single -> 1 | Per_count k -> k + 1 in
  let by_count = Array.make nbuckets None in
  let consider (a : C.t) =
    let idx = match mode with Single -> 0 | Per_count _ -> a.C.count in
    if idx < nbuckets then begin
      let r =
        {
          slack = a.C.q;
          placements = List.rev a.C.sol;
          sizes = a.C.sizes;
          count = a.C.count;
          candidates_seen = !seen;
        }
      in
      match by_count.(idx) with
      | Some prev when prev.slack >= r.slack -> ()
      | Some _ | None -> by_count.(idx) <- Some r
    end
  in
  List.iter consider finals;
  let best =
    Array.fold_left
      (fun acc r ->
        match (acc, r) with
        | None, x -> x
        | Some _, None -> acc
        | Some a, Some b -> if b.slack > a.slack then r else acc)
      None by_count
  in
  { best; by_count; seen = !seen }
