module T = Rctree.Tree
module C = Candidate
module F = Frontier

type mode =
  | Single
  | Per_count of int
  | Power_bounded of { budget : float; kmax : int }

type mutation =
  | Cq_noise_prune
  | No_attach_guard
  | Loose_pred_bound
  | Stale_memo
  | Bad_power_bound

type stats = {
  generated : int;
  pruned : int;
  pred_pruned : int;
  power_pruned : int;
  peak_width : int;
  type_widths : int array;
  arena : int;
  minor_words : float;
  major_words : float;
}

let considered s = s.generated + s.pred_pruned + s.power_pruned

let survivors s = s.generated - s.pruned

type result = {
  slack : float;
  placements : Rctree.Surgery.placement list;
  sizes : (int * float) list;
  count : int;
  energy : float;
  stats : stats;
}

type outcome = { best : result option; by_count : result option array; stats : stats }

(* Candidate sets are arrays of frontiers indexed by [2*bucket + parity];
   bucket is the buffer count in Per_count mode and 0 in Single mode.
   Every frontier is kept sorted by Candidate.cmp_frontier (load
   ascending) end-to-end: wires shift whole groups monotonically, the
   linear merge emits its pairings in load order, and buffer insertions
   splice in at most one sorted candidate per (group, buffer type).
   Pruning is therefore a single linear sweep per group — (c, q)
   staircase in delay mode, full (c, q, i, ns) dominance in noise mode
   (see Candidate.dominates_full for why delay-mode pruning loses
   noise-feasible solutions).

   Candidates are flat float records; their solutions live in a per-run
   Trace arena and only the winning root candidates are reconstructed
   into placement lists, at the very end. *)

let ns_eps = 1e-12

(* {1 Incremental memo}

   Cross-run cache of the per-edge [above] tables for the serve daemon's
   incremental re-optimization (DESIGN.md §14). The entry at node [c] is
   the candidate table just above [c]'s parent wire — the complete DP
   summary of [c]'s subtree. The DP is deterministic, so as long as
   nothing in [c]'s subtree changed, the cached table is byte-for-byte
   what a scratch recompute would rebuild; [run ?memo] then recomputes
   only the edited path (the caller marks it with [dirty]) and splices
   cached sibling tables straight into the merges.

   Validity is a three-part contract:

   - {b Dirty marking.} After any edit at node [v] (sink RAT, parent
     wire values) the caller calls [dirty memo tree v], which forgets
     [v] and every ancestor — exactly the tables whose subtrees contain
     [v].
   - {b Bound stamps.} Predictive pruning folds each site's upstream
     resistance bound into the kept lists. A wire edit shifts the bounds
     of {e every} node below it — including clean sibling subtrees the
     dirty path doesn't touch — so each entry records the climb bound it
     was built under and is reused only when the current bound matches.
     (Interior bounds of the subtree equal the climb bound plus in-tree
     wire resistances, so with the subtree clean the one stamp covers
     them all.)
   - {b Config stamp.} Everything else an entry bakes in — mode, noise,
     pruning engine, widths, library, tree topology — is fingerprinted;
     a mismatched fingerprint drops the whole cache rather than risk
     mixing configurations.

   Candidates carry Trace handles, which are only meaningful against
   the arena that issued them, so the memo owns a resident arena that
   [run ?memo] appends to instead of creating its own; the arena is
   append-only, hence old handles survive later runs. [clear] swaps in a
   fresh arena (nothing references the old one once the entries are
   gone), which is the only way the arena ever shrinks. *)

module Memo = struct
  type entry = {
    kept : C.t list array;  (** the above-table, pre-insertion *)
    full : C.t list array option;
        (** full climbed population at a witness-scan site — what
            [insert_buffers] must scan (see [apply_wire]) *)
    bound : float;  (** climb bound the entry was built under *)
  }

  type t = {
    mutable entries : entry option array;  (* indexed by node id *)
    mutable stamp : string;  (* config fingerprint; "" = never stamped *)
    mutable arena : Trace.arena;
    mutable hits : int;
    mutable misses : int;
  }

  let create () =
    { entries = [||]; stamp = ""; arena = Trace.create (); hits = 0; misses = 0 }

  let clear t =
    t.entries <- [||];
    t.stamp <- "";
    t.arena <- Trace.create ()

  let dirty t tree v =
    if Array.length t.entries > 0 then
      List.iter
        (fun u -> if u < Array.length t.entries then t.entries.(u) <- None)
        (T.path_up tree v)

  (* the Stale_memo mutation: forget only the edited node, leaving the
     ancestors' stale tables in place for the incremental-vs-scratch
     oracle to trip over *)
  let dirty_node t v = if v < Array.length t.entries then t.entries.(v) <- None

  let stored t =
    Array.fold_left (fun a e -> if e = None then a else a + 1) 0 t.entries

  let hits t = t.hits

  let misses t = t.misses

  (* RATs and wire values are deliberately absent: edits to them are the
     caller's dirty-marking duty (plus the per-entry bound stamp), and
     hashing them here would turn every edit into a full cache drop. *)
  let stamp ~prune ~pruning ~widths ~area_frac ~mutation ~noise ~mode ~lib tree
      =
    let topo = ref 0 in
    for v = 0 to T.node_count tree - 1 do
      let tag =
        match T.kind tree v with
        | T.Source _ -> 0
        | T.Sink _ -> 1
        | T.Internal -> 2
        | T.Buffered _ -> 3
      in
      topo := Hashtbl.hash (!topo, T.parent tree v, tag, T.feasible tree v)
    done;
    Marshal.to_string
      (prune, pruning, widths, area_frac, mutation, noise, mode, lib,
       T.node_count tree, !topo)
      []
end

(* the Loose_pred_bound mutation inflates the upstream-resistance bound
   by this factor: the slope rule then over-prunes and the predictive
   engine's outcomes drift from the sweep-only reference *)
let loose_bound_factor = 1.25

let run ?(prune = true) ?(pruning = `Predictive) ?(widths = [ 1.0 ]) ?(area_frac = 0.4)
    ?mutation ?memo ~noise ~mode ~lib tree =
  if widths = [] || List.exists (fun w -> w < 1.0) widths then
    invalid_arg "Dp.run: widths must be >= 1";
  if lib = [] then invalid_arg "Dp.run: empty buffer library";
  if T.buffer_count tree > 0 then invalid_arg "Dp.run: tree already contains buffers";
  (* Exact, domain-local allocation accounting. Gc.minor_words and
     Gc.counters read the calling domain's own counters (Caml_state), so
     a run's delta never includes concurrent domains' allocation —
     Gc.quick_stat sums every domain and, under a multi-domain batch,
     would charge this run with the whole machine's churn. The minor
     figure comes from Gc.minor_words specifically: on this 5.1 runtime
     its in-progress-region term is exact (deltas are word-precise even
     across minor collections), while Gc.counters samples the same
     region with a unit error that is only zero right after a
     collection (fixed upstream in 5.2). Gc.counters is still the
     source for major words, which only accumulate at collections and
     are documented as non-deterministic anyway. *)
  let alloc_counters () =
    let _, _, major = Gc.counters () in
    (Gc.minor_words (), major)
  in
  let minor0, major0 = alloc_counters () in
  (* with a memo, candidates go into its resident arena so cached trace
     handles from earlier runs stay reconstructible; a mismatched config
     stamp drops the cache before any entry could be misread *)
  let arena =
    match memo with
    | None -> Trace.create ()
    | Some (m : Memo.t) ->
        let stamp =
          Memo.stamp ~prune ~pruning ~widths ~area_frac ~mutation ~noise ~mode
            ~lib tree
        in
        if m.Memo.stamp <> stamp then begin
          Memo.clear m;
          m.Memo.stamp <- stamp
        end;
        if Array.length m.Memo.entries <> T.node_count tree then
          m.Memo.entries <- Array.make (T.node_count tree) None;
        m.Memo.arena
  in
  let arena0 = Trace.size arena in
  (* mutation smoke (DESIGN.md §10): deliberately broken variants used
     only to prove the Check subsystem catches them *)
  let cq_prune = mutation = Some Cq_noise_prune in
  let attach_guard = mutation <> Some No_attach_guard in
  let counted, kmax, nbuckets =
    match mode with
    | Single -> (false, max_int, 1)
    | Per_count k -> (true, k, k + 1)
    | Power_bounded { kmax; _ } -> (true, kmax, kmax + 1)
  in
  (* Power mode (DESIGN.md §16): the energy coordinate becomes a pruning
     axis and an insertion budget. [eff_budget] is the budget the engine
     actually enforces — the Bad_power_bound mutation inflates it so
     over-budget solutions leak through for the power oracles to catch. *)
  let power, budget =
    match mode with
    | Power_bounded { budget; _ } -> (true, budget)
    | Single | Per_count _ -> (false, infinity)
  in
  if power && not (budget >= 0.0) then invalid_arg "Dp.run: negative power budget";
  let eff_budget =
    if mutation = Some Bad_power_bound then budget *. loose_bound_factor
    else
      (* ulp-scale headroom: candidate energy accumulates in tree-merge
         order, so at an exact-boundary budget (the sum of k buffer
         energies) the optimum can land one rounding step above the
         nominal budget. The slack is far below any real energy
         difference, and the reported winner still satisfies the
         budget under the same relative tolerance. *)
      budget +. (Float.abs budget *. 1e-12)
  in
  let nslots = 2 * nbuckets in
  let plib = Tech.Lib.prepare lib in
  let ntypes = Tech.Lib.size plib in
  (* Predictive pruning (Li & Shi; DESIGN.md §12) is delay-mode only:
     the slope argument bounds how a load difference erodes a slack
     difference, which says nothing about the (i, ns) coordinates the
     noise-mode 4D dominance must preserve. It also stays off under
     [prune = false] (Ablation B wants the full population). In power
     mode it is additionally off under the default [`Predictive] —
     the classic kill ignores the energy axis and would discard
     cheaper-in-power candidates; [`Predictive_power] opts into the
     extended kill (witness must also weakly dominate in power). *)
  let pred =
    prune && (not noise)
    &&
    match pruning with
    | `Sweep_only -> false
    | `Predictive -> not power
    | `Predictive_power -> true
  in
  let pred_power = pred && power in
  let cmp_order = if power then C.cmp_frontier_power else C.cmp_frontier in
  let single_width = widths = [ 1.0 ] in
  let bounds =
    if not pred then [||]
    else begin
      let max_width = List.fold_left Float.max 1.0 widths in
      let b = Rctree.Upbound.compute tree ~r_gate_min:plib.Tech.Lib.r_min ~max_width in
      if mutation = Some Loose_pred_bound then
        Array.iteri (fun i x -> b.(i) <- x *. loose_bound_factor) b;
      b
    end
  in
  let generated = ref 0 and pruned = ref 0 and pred_pruned = ref 0 in
  let power_pruned = ref 0 in
  let peak_width = ref 0 in
  let type_widths = Array.make ntypes 0 in
  let type_scratch = Array.make ntypes 0 in
  let sweep cands =
    if not prune then cands
    else begin
      let kept, dropped =
        if power then
          if noise && not cq_prune then C.sweep_noise_power cands
          else C.sweep_delay_power cands
        else if noise && not cq_prune then C.sweep_noise cands
        else C.sweep_delay cands
      in
      pruned := !pruned + dropped;
      kept
    end
  in
  let drop_noisy cands =
    if not noise then cands
    else
      List.filter
        (fun (a : C.t) ->
          a.C.ns >= -.ns_eps
          ||
          (incr pruned;
           false))
        cands
  in
  (* One scan state for the whole run: the per-(group, type) best-slack
     scans of insert_buffers touch every candidate once per buffer type,
     so their working state must not allocate per scan. The running
     slack lives in a float array (unboxed stores) and the best
     candidate in a ref (pointer store); [scan_s.(0) > neg_infinity]
     doubles as the found flag. *)
  let scan_s = Array.make 1 neg_infinity in
  let dummy_cand =
    { C.c = 0.0; q = 0.0; i = 0.0; ns = 0.0; p = 0.0; meta = 0.0; tr = 0.0 }
  in
  let scan_best = ref dummy_cand in
  let rec scan (b : Tech.Buffer.t) = function
    | [] -> ()
    | (a : C.t) :: tl ->
        (if not (noise && attach_guard && not (C.noise_ok ~r_gate:b.Tech.Buffer.r_b a))
         then
           let s = a.C.q -. Tech.Buffer.gate_delay b ~load:a.C.c in
           if s > scan_s.(0) then begin
             scan_best := a;
             scan_s.(0) <- s
           end);
        scan b tl
  in
  let note_width tbl =
    Array.iter
      (fun group ->
        let w = List.length group in
        if w > !peak_width then peak_width := w)
      tbl
  in
  (* Virtual insertion witnesses (DESIGN.md §12): when a single-width
     climb lands on a feasible single-child node, the insertions that
     node is about to splice into target slot [t] are computable from
     the already-climbed source groups one bucket down — and kill
     target-slot candidates before they enter the frontier. Soundness
     needs the insertion scan at the destination to see the population
     the sweep-only engine would scan (a victim can still be the best
     insertion source), so [scan_src] keeps each slot's full climbed
     list and [ins_s]/[ins_best] cache the per-(source slot, type) scan
     for insert_buffers to reuse; [scan_valid] marks the caches as
     describing the table insert_buffers is about to consume. *)
  let wit_c = Array.make ntypes 0.0 and wit_q = Array.make ntypes 0.0 in
  let scan_src = Array.make nslots [] in
  let scan_valid = ref false in
  let ins_s = Array.make (nslots * ntypes) Float.nan in
  let ins_best = Array.make (nslots * ntypes) dummy_cand in
  let fill_witnesses t =
    let nw = ref 0 in
    let kt = t asr 1 and pt = t land 1 in
    if (not counted) || kt >= 1 then
      for ti = 0 to ntypes - 1 do
        let p_src = if plib.Tech.Lib.inverting.(ti) then 1 - pt else pt in
        let src = (if counted then 2 * (kt - 1) else 0) + p_src in
        if src < t then begin
          match scan_src.(src) with
          | [] -> ()
          | sgroup ->
              scan_s.(0) <- neg_infinity;
              scan plib.Tech.Lib.bufs.(ti) sgroup;
              ins_s.((src * ntypes) + ti) <- scan_s.(0);
              ins_best.((src * ntypes) + ti) <- !scan_best;
              if scan_s.(0) > neg_infinity then begin
                wit_c.(!nw) <- plib.Tech.Lib.c_in.(ti);
                wit_q.(!nw) <- scan_s.(0);
                incr nw
              end
        end
      done;
    !nw
  in
  (* Propagate a whole table through the wire below node [at]; group order
     is preserved because add_wire shifts each coordinate by an amount
     depending only on earlier sort keys. [bound] is the Upbound value of
     the wire's upper end — the site the climbed table lives at — and
     with predictive pruning on, candidates the previously emitted one
     already kills are dropped inside the climb, before allocation. *)
  let apply_wire ~at ~bound ~scan:dest_scan w tbl =
    if pred && dest_scan then begin
      (* [dest_scan] implies a single-width climb into a feasible
         single-child node: slots are processed bucket-ascending so each
         slot's witnesses come from already-climbed source groups *)
      Array.fill ins_s 0 (nslots * ntypes) Float.nan;
      let result = Array.make nslots [] in
      for sl = 0 to nslots - 1 do
        let nw = fill_witnesses sl in
        match tbl.(sl) with
        | [] -> scan_src.(sl) <- []
        | group ->
            let kept, full, emitted, prekilled =
              C.climb_pred_scan ~bound ~wc:wit_c ~wq:wit_q ~nw w group
            in
            generated := !generated + emitted;
            pred_pruned := !pred_pruned + prekilled;
            scan_src.(sl) <- full;
            result.(sl) <- kept
      done;
      scan_valid := true;
      result
    end
    else begin
      scan_valid := false;
      Array.map
        (fun group ->
          match group with
          | [] -> []
          | _ ->
            let families =
              if pred then begin
                let family f =
                  let kept, emitted, prekilled = f () in
                  generated := !generated + emitted;
                  pred_pruned := !pred_pruned + prekilled;
                  kept
                in
                let climb () =
                  if pred_power then C.climb_pred_power ~bound w group
                  else C.climb_pred ~bound w group
                in
                if w.T.length <= 0.0 then [ family climb ]
                else
                  List.map
                    (fun width ->
                      if width = 1.0 then family climb
                      else begin
                        let sized = T.resize_wire w ~width ~area_frac in
                        family (fun () ->
                            if pred_power then
                              C.climb_resize_pred_power ~arena ~bound ~node:at ~width
                                sized group
                            else
                              C.climb_resize_pred ~arena ~bound ~node:at ~width sized
                                group)
                      end)
                    widths
              end
              else begin
                let families =
                  if w.T.length <= 0.0 then [ List.map (C.add_wire w) group ]
                  else
                    (* simultaneous wire sizing: each candidate climbs the wire at
                       every available width (Lillis et al. [18]) *)
                    List.map
                      (fun width ->
                        if width = 1.0 then List.map (C.add_wire w) group
                        else begin
                          let sized = T.resize_wire w ~width ~area_frac in
                          List.map
                            (fun (a : C.t) ->
                              C.resize ~arena ~node:at ~width (C.add_wire sized a))
                            group
                        end)
                      widths
                in
                List.iter (fun f -> generated := !generated + List.length f) families;
                families
              end
            in
            let combined =
              match families with [ f ] -> f | fs -> F.merge_sorted cmp_order fs
            in
            sweep (drop_noisy combined))
        tbl
    end
  in
  (* Join the two child tables of a branch node. Delay mode walks the two
     frontiers linearly (Van Ginneken); noise mode must consider every
     pairing — a pairing off the (c, q) frontier can be the only one whose
     noise slack survives the upstream wires. *)
  let exhaustive = noise && prune && not cq_prune in
  let merge_groups ~bound lt rt =
    scan_valid := false;
    if power then begin
      (* Power-mode branch merge: every pairing must be considered — a
         pairing off the (c, q) frontier can be the only budget-feasible
         one — so the walks are exhaustive, like noise mode's. The budget
         check is fused in before [merge] materializes anything:
         over-budget pairings cost no allocation and no arena node, and
         are counted as [power_pruned]. Predictive merge kills are not
         attempted in power mode (the staircase witness index is
         two-axis); [`Predictive_power] prunes at climbs and insertions
         only. *)
      let runs = Array.make nslots [] in
      for sl = 0 to nslots - 1 do
        match lt.(sl) with
        | [] -> ()
        | lgroup ->
            let p = sl land 1 and kl = sl asr 1 in
            for kr = 0 to nbuckets - 1 do
              if kl + kr <= kmax then begin
                match rt.((2 * kr) + p) with
                | [] -> ()
                | rgroup ->
                    let pairs = ref [] in
                    let emit (a : C.t) (b : C.t) =
                      if a.C.p +. b.C.p > eff_budget then incr power_pruned
                      else begin
                        incr generated;
                        pairs := C.merge ~arena a b :: !pairs
                      end
                    in
                    (* delay mode enumerates only staircase pairings
                       (exact; see Candidate.merge_delay_power); the
                       5-axis noise frontier has no such structure, so
                       noise-power merges stay fully exhaustive *)
                    if noise then
                      List.iter
                        (fun (a : C.t) -> List.iter (fun (b : C.t) -> emit a b) rgroup)
                        lgroup
                    else C.merge_delay_power ~emit lgroup rgroup;
                    if !pairs <> [] then begin
                      let target = 2 * (kl + kr) + p in
                      runs.(target) <- !pairs :: runs.(target)
                    end
              end
            done
      done;
      Array.map
        (fun rs ->
          match rs with
          | [] -> []
          | _ -> sweep (List.sort cmp_order (List.concat rs)))
        runs
    end
    else if pred then begin
      (* Cross-run predictive merge (DESIGN.md §12): collect the pairing
         walks per target slot first, then run all walks feeding one
         slot through a single fused selection. The slope rule then sees
         every previously materialized pairing of the slot — the
         cross-run drops the sweep-only engine pays for after
         materializing become pre-materialization kills. *)
      let pending = Array.make nslots [] in
      for sl = 0 to nslots - 1 do
        match lt.(sl) with
        | [] -> ()
        | lgroup ->
            let p = sl land 1 and kl = sl asr 1 in
            for kr = 0 to nbuckets - 1 do
              if kl + kr <= kmax then begin
                match rt.((2 * kr) + p) with
                | [] -> ()
                | rgroup ->
                    let target = (if counted then 2 * (kl + kr) else 0) + p in
                    pending.(target) <- (lgroup, rgroup) :: pending.(target)
              end
            done
      done;
      Array.map
        (fun walks ->
          match walks with
          | [] -> []
          | _ ->
              let kept, emitted, dropped, prekilled =
                C.merge_sweep_delay_pred ~arena ~bound walks
              in
              generated := !generated + emitted;
              pruned := !pruned + dropped;
              pred_pruned := !pred_pruned + prekilled;
              kept)
        pending
    end
    else begin
      let runs = Array.make nslots [] in
      for sl = 0 to nslots - 1 do
        match lt.(sl) with
        | [] -> ()
        | lgroup ->
            let p = sl land 1 and kl = sl asr 1 in
            for kr = 0 to nbuckets - 1 do
              if kl + kr <= kmax then begin
                match rt.((2 * kr) + p) with
                | [] -> ()
                | rgroup ->
                    let pairs, n =
                      if exhaustive then begin
                        let ps = F.cross ~join:(C.merge ~arena) lgroup rgroup in
                        (ps, List.length ps)
                      end
                      else C.merge_delay ~arena lgroup rgroup
                    in
                    generated := !generated + n;
                    let target = (if counted then 2 * (kl + kr) else 0) + p in
                    runs.(target) <- pairs :: runs.(target)
              end
            done
      done;
      Array.map
        (fun rs ->
          match rs with
          | [] -> []
          | _ ->
              if exhaustive then sweep (List.sort C.cmp_frontier (List.concat rs))
              else if prune then begin
                (* non-exhaustive + prune always staircase-sweeps, so the
                   fused k-way merge avoids the merged intermediate *)
                let kept, dropped = C.merge_sweep_delay rs in
                pruned := !pruned + dropped;
                kept
              end
              else F.merge_sorted C.cmp_frontier rs)
        runs
    end
  in
  (* Step 5 (Figs. 5 and 11): buffer insertions at a feasible node. All
     insertions of one buffer type into one group share their load (c_in),
     current (0) and noise slack (the buffer's own margin) — only the
     resulting slack differs — so a single scan for the best-slack eligible
     candidate per (group, type) materializes the one insertion that can
     survive pruning. In noise mode a buffer is never attached to a
     candidate it would make noisy; the unbuffered noise frontier itself
     stays in the group, so a quieter-but-slower candidate survives for
     upstream wires to consume. *)
  let insert_buffers ~bound v tbl =
    (* when the table came from a witness-pruned climb, insertions scan
       the full climbed lists (a witness victim never enters the
       frontier but can still be the best insertion source), reusing the
       per-(slot, type) scans fill_witnesses already ran *)
    let use_cache = !scan_valid in
    scan_valid := false;
    let additions = Array.make nslots [] in
    Array.iteri
      (fun sl group ->
        let sgroup = if use_cache then scan_src.(sl) else group in
        match sgroup with
        | [] -> ()
        | _ ->
            (* the slot-level bucket check covers per-candidate count
               eligibility: a counted group holds one exact count *)
            if sl asr 1 < kmax then
              for ti = 0 to ntypes - 1 do
                let b = plib.Tech.Lib.bufs.(ti) in
                if power then begin
                  (* Power mode: sources of one (group, type) share the
                     insertion's load / current / noise slack but differ
                     in both resulting slack and energy, so the single
                     best-slack scan is replaced by the (slack, energy)
                     Pareto staircase of the source group — every
                     staircase member is an insertion no other source can
                     dominate. Over-budget members are skipped before
                     materialization and counted as [power_pruned]. *)
                  let pr = sl land 1 in
                  let pr' = if plib.Tech.Lib.inverting.(ti) then 1 - pr else pr in
                  let target = (2 * ((sl asr 1) + 1)) + pr' in
                  let eligible =
                    List.filter_map
                      (fun (a : C.t) ->
                        if
                          noise && attach_guard
                          && not (C.noise_ok ~r_gate:b.Tech.Buffer.r_b a)
                        then None
                        else
                          Some
                            ( a.C.q -. Tech.Buffer.gate_delay b ~load:a.C.c,
                              a.C.p +. plib.Tech.Lib.energy.(ti),
                              a ))
                      sgroup
                  in
                  let eligible =
                    List.stable_sort
                      (fun (s1, p1, _) (s2, p2, _) ->
                        match Float.compare s2 s1 with
                        | 0 -> Float.compare p1 p2
                        | n -> n)
                      eligible
                  in
                  let best_p = ref infinity in
                  List.iter
                    (fun (s, pw, a) ->
                      if pw < !best_p then begin
                        best_p := pw;
                        if pw > eff_budget then incr power_pruned
                        else if
                          pred
                          && C.covered_power ~bound ~c:plib.Tech.Lib.c_in.(ti)
                               ~q:s ~p:pw tbl.(target)
                        then incr pred_pruned
                        else begin
                          let cand = C.add_buffer ~arena ~at:v b a in
                          incr generated;
                          additions.(target) <- cand :: additions.(target)
                        end
                      end)
                    eligible
                end
                else begin
                  (if use_cache && not (Float.is_nan ins_s.((sl * ntypes) + ti))
                   then begin
                     scan_s.(0) <- ins_s.((sl * ntypes) + ti);
                     scan_best := ins_best.((sl * ntypes) + ti)
                   end
                   else begin
                     scan_s.(0) <- neg_infinity;
                     scan b sgroup
                   end);
                  if scan_s.(0) > neg_infinity then begin
                    (* one insertion per (group, type); its destination
                       group is known before anything is materialized *)
                    let p = sl land 1 in
                    let p' = if plib.Tech.Lib.inverting.(ti) then 1 - p else p in
                    let target = (if counted then 2 * ((sl asr 1) + 1) else 0) + p' in
                    if
                      pred
                      && C.covered ~bound ~c:plib.Tech.Lib.c_in.(ti) ~q:scan_s.(0)
                           tbl.(target)
                    then incr pred_pruned
                    else begin
                      let cand = C.add_buffer ~arena ~at:v b !scan_best in
                      incr generated;
                      additions.(target) <- cand :: additions.(target)
                    end
                  end
                end
              done)
      tbl;
    Array.iteri
      (fun sl cands ->
        match cands with
        | [] -> ()
        | _ ->
            let cands = List.sort cmp_order cands in
            if (not power) && prune && ((not noise) || cq_prune) then begin
              let kept, dropped = C.splice_delay tbl.(sl) cands in
              pruned := !pruned + dropped;
              tbl.(sl) <- kept
            end
            else tbl.(sl) <- sweep (List.merge cmp_order tbl.(sl) cands))
      additions;
    (* per-buffer-type frontier census at the insertion site: how many
       candidates of each group are currently headed by each library
       type (Li & Shi's per-type lists); the peak over all sites is the
       type_widths statistic *)
    Array.iter
      (fun group ->
        Array.fill type_scratch 0 ntypes 0;
        List.iter
          (fun (a : C.t) ->
            match Trace.top_buffer arena (C.trace a) with
            | None -> ()
            | Some b ->
                let ti = Tech.Lib.index_of plib b in
                if ti >= 0 then begin
                  let w = type_scratch.(ti) + 1 in
                  type_scratch.(ti) <- w;
                  if w > type_widths.(ti) then type_widths.(ti) <- w
                end)
          group)
      tbl;
    tbl
  in
  let site_bound v = if pred then bounds.(v) else 0.0 in
  (* Memo plumbing for [above]. A hit restores the cached table (copied:
     [insert_buffers] mutates its input table in place) and, at a
     witness-scan site, reinstates the full climbed population for the
     insertion scans — with the per-(slot, type) scan results left NaN
     so [insert_buffers] rescans the full lists, which is exactly the
     scan [fill_witnesses] ran when the entry was built. A store copies
     the outer array for the same aliasing reason; the candidate lists
     themselves are immutable. *)
  let memo_get c ~bound =
    match memo with
    | None -> None
    | Some (m : Memo.t) -> (
        match m.Memo.entries.(c) with
        | Some e when e.Memo.bound = bound ->
            m.Memo.hits <- m.Memo.hits + 1;
            (match e.Memo.full with
            | Some full ->
                Array.blit full 0 scan_src 0 nslots;
                Array.fill ins_s 0 (nslots * ntypes) Float.nan;
                scan_valid := true
            | None -> scan_valid := false);
            Some (Array.copy e.Memo.kept)
        | Some _ | None -> None)
  in
  let memo_set c ~bound ~dest_scan tbl =
    match memo with
    | None -> ()
    | Some (m : Memo.t) ->
        m.Memo.misses <- m.Memo.misses + 1;
        m.Memo.entries.(c) <-
          Some
            {
              Memo.kept = Array.copy tbl;
              full = (if dest_scan then Some (Array.copy scan_src) else None);
              bound;
            }
  in
  let rec at v =
    match T.kind tree v with
    | T.Sink s ->
        let tbl = Array.make nslots [] in
        incr generated;
        tbl.(0) <- [ C.of_sink s ];
        tbl
    | T.Buffered _ | T.Source _ -> assert false
    | T.Internal ->
        let bound = site_bound v in
        let base =
          match T.children tree v with
          | [ c ] -> above c
          | [ cl; cr ] -> merge_groups ~bound (above cl) (above cr)
          | _ -> assert false
        in
        let base = if T.feasible tree v then insert_buffers ~bound v base else base in
        note_width base;
        base
  and above c =
    let dest = T.parent tree c in
    let bound = site_bound dest in
    match memo_get c ~bound with
    | Some tbl -> tbl
    | None ->
        let dest_scan =
          pred && (not power) && single_width
          &&
          match T.kind tree dest with
          | T.Internal -> (
              match T.children tree dest with
              | [ _ ] -> T.feasible tree dest
              | _ -> false)
          | _ -> false
        in
        let tbl =
          apply_wire ~at:c ~bound ~scan:dest_scan (T.wire_to tree c) (at c)
        in
        note_width tbl;
        memo_set c ~bound ~dest_scan tbl;
        tbl
  in
  let root = T.root tree in
  let d =
    match T.kind tree root with
    | T.Source d -> d
    | T.Sink _ | T.Internal | T.Buffered _ -> assert false
  in
  let top =
    match T.children tree root with
    | [ c ] -> above c
    | [ cl; cr ] -> merge_groups ~bound:(site_bound root) (above cl) (above cr)
    | _ -> assert false
  in
  let finals = ref [] in
  Array.iteri
    (fun sl group ->
      if sl land 1 = 0 then
        List.iter
          (fun (a : C.t) ->
            if not (noise && attach_guard && not (C.noise_ok ~r_gate:d.T.r_drv a)) then
              finals := C.add_driver d a :: !finals)
          group)
    top;
  (* Winners first, reconstruction after: only the per-bucket best
     candidate pays the arena walk. The tie-break (keep the earlier
     candidate on equal slack) matches the old eager-result selection. *)
  let winners = Array.make nbuckets None in
  let consider (a : C.t) =
    (* the driver adds no energy, so every root candidate is already
       within budget; the filter is belt-and-braces (and keeps the
       Bad_power_bound mutation observable: it inflates [eff_budget]
       everywhere uniformly) *)
    if (not power) || a.C.p <= eff_budget then begin
      let idx = if counted then C.count a else 0 in
      if idx < nbuckets then begin
        match winners.(idx) with
        | Some (prev : C.t) when prev.C.q >= a.C.q -> ()
        | Some _ | None -> winners.(idx) <- Some a
      end
    end
  in
  List.iter consider !finals;
  let reconstructed =
    Array.map
      (Option.map (fun (a : C.t) ->
           let h = C.trace a in
           ( a.C.q,
             Trace.placements arena h,
             Trace.sizes arena h,
             C.count a,
             Trace.energy arena h )))
      winners
  in
  let minor1, major1 = alloc_counters () in
  let stats =
    {
      generated = !generated;
      pruned = !pruned;
      pred_pruned = !pred_pruned;
      power_pruned = !power_pruned;
      peak_width = !peak_width;
      type_widths;
      (* per-run delta: under a memo the arena is resident and carries
         every previous run's traces *)
      arena = Trace.size arena - arena0;
      minor_words = minor1 -. minor0;
      major_words = major1 -. major0;
    }
  in
  let by_count =
    Array.map
      (Option.map (fun (slack, placements, sizes, count, energy) ->
           { slack; placements; sizes; count; energy; stats }))
      reconstructed
  in
  let best =
    Array.fold_left
      (fun acc r ->
        match (acc, r) with
        | None, x -> x
        | Some _, None -> acc
        | Some a, Some b -> if b.slack > a.slack then r else acc)
      None by_count
  in
  { best; by_count; stats }
