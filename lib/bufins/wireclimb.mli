(** Shared wire-climbing step of Algorithms 1 and 2.

    Propagates a noise state (downstream current, noise slack) from the
    bottom of a wire to its top, inserting buffers at the maximal
    distances given by Theorem 1 whenever the remaining span cannot be
    driven noise-safely from its top by buffer [b]. Maintains the
    rescuability invariant [r_b *. i <= ns] at every stop, including the
    returned top state. *)

type state = { i : float;  (** downstream coupled current, A *) ns : float  (** noise slack, V *) }

val rescuable : ?eps:float -> Tech.Buffer.t -> state -> bool
(** [r_b *. i <= ns]: a buffer placed right here would satisfy every
    downstream noise margin. *)

val climb :
  b:Tech.Buffer.t ->
  node:int ->
  Rctree.Tree.wire ->
  state ->
  state * Rctree.Surgery.placement list
(** [climb ~b ~node w st] walks the parent wire [w] of [node] upward from
    state [st] (which must be rescuable). Returned placements are in
    bottom-up order with distances measured from [node]. Raises
    [Invalid_argument] if [st] is not rescuable. *)
