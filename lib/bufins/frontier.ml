let sweep2 ~cost ~value l =
  let dropped = ref 0 in
  let push kept x =
    match kept with
    | k :: tl when cost k = cost x && value k <= value x -> (
        (* x retro-dominates the newest survivor (equal cost, no better value) *)
        incr dropped;
        match tl with
        | k2 :: _ when value k2 >= value x ->
            incr dropped;
            tl
        | _ -> x :: tl)
    | k :: _ when value k >= value x ->
        incr dropped;
        kept
    | _ -> x :: kept
  in
  let kept = List.fold_left push [] l in
  (List.rev kept, !dropped)

let pareto2 ~cost ~value l =
  let sorted =
    List.sort
      (fun a b ->
        match Float.compare (cost a) (cost b) with
        | 0 -> Float.compare (value b) (value a)
        | n -> n)
      l
  in
  sweep2 ~cost ~value sorted

let sweep_dom ~cost ~dominates l =
  let dropped = ref 0 in
  let kept =
    List.fold_left
      (fun kept x ->
        if List.exists (fun k -> dominates k x) kept then begin
          incr dropped;
          kept
        end
        else
          (* x may retro-dominate survivors of equal cost (arbitrary tie order) *)
          x
          :: List.filter
               (fun k ->
                 if cost k = cost x && dominates x k then begin
                   incr dropped;
                   false
                 end
                 else true)
               kept)
      [] l
  in
  (List.rev kept, !dropped)

let pareto_dom ~cmp ~cost ~dominates l = sweep_dom ~cost ~dominates (List.sort cmp l)

let merge2 ~value ~join l r =
  let rec go acc l r =
    match (l, r) with
    | [], _ | _, [] -> List.rev acc
    | a :: ltl, b :: rtl ->
        let acc = join a b :: acc in
        if value a < value b then go acc ltl r
        else if value b < value a then go acc l rtl
        else go acc ltl rtl
  in
  go [] l r

let cross ~join l r =
  List.concat_map (fun a -> List.map (fun b -> join a b) r) l

(* balanced pairwise merging: O(total log runs), not O(total * runs) *)
let merge_sorted cmp runs =
  let rec pair_up = function
    | a :: b :: tl -> List.merge cmp a b :: pair_up tl
    | l -> l
  in
  let rec go = function [] -> [] | [ r ] -> r | rs -> go (pair_up rs) in
  go runs

let best ~score ~eligible l =
  let pick acc x =
    if not (eligible x) then acc
    else
      let s = score x in
      match acc with Some (_, s') when s' >= s -> acc | _ -> Some (x, s)
  in
  Option.map fst (List.fold_left pick None l)
