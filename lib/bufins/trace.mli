(** Append-only solution-trace arena.

    Candidates no longer carry their solution lists: each candidate holds
    an integer {!handle} naming a node in a per-run arena, and the node
    records how the solution was built (buffer attached, branches joined,
    wire resized) together with the handles of its predecessors. Merging
    two candidates or attaching a buffer is then O(1) — one arena node —
    instead of an O(|solution|) list copy, and the placement list is
    materialised by a single {!placements} walk only for the winning root
    candidates.

    Handles are only meaningful against the arena that issued them; an
    arena lives for one optimizer run and is garbage once the winners
    have been reconstructed. *)

type handle = int
(** Index of a trace node in its arena. *)

type node =
  | Leaf  (** a bare sink candidate: empty solution *)
  | Buf of { node : int; dist : float; buffer : Tech.Buffer.t; pred : handle }
      (** [pred]'s solution plus one buffer at [dist] up edge [node] *)
  | Join of { left : handle; right : handle }
      (** branch merge: both sub-solutions, left placements first *)
  | Resize of { node : int; width : float; pred : handle }
      (** [pred]'s solution plus one wire-sizing decision *)

type arena

val create : ?capacity:int -> unit -> arena
(** Fresh arena holding only the shared {!leaf} node. *)

val leaf : handle
(** Handle of the empty solution; valid in every arena. *)

val size : arena -> int
(** Number of nodes currently in the arena (including the leaf). *)

val buf : arena -> node:int -> dist:float -> buffer:Tech.Buffer.t -> pred:handle -> handle
val join : arena -> left:handle -> right:handle -> handle
val resize : arena -> node:int -> width:float -> pred:handle -> handle

val placements : arena -> handle -> Rctree.Surgery.placement list
(** Reconstruct the solution's placement list, bottom-up order (the
    order the eager [sol] lists used to be reported in). One walk over
    the handle's ancestry; recursion depth is the Join nesting depth. *)

val sizes : arena -> handle -> (int * float) list
(** Reconstruct the wire-sizing decisions recorded by [Resize] nodes,
    in the order the eager [sizes] lists used to be reported. *)

val energy : arena -> handle -> float
(** Total switching energy of the solution, J: the sum of
    [buffer.energy] over every [Buf] node in the handle's ancestry.
    The reconstruction-side counterpart of the candidate's [p]
    coordinate — the energy-conservation fuzz oracle checks the two
    agree exactly. *)

val top_buffer : arena -> handle -> Tech.Buffer.t option
(** The buffer a candidate's solution is currently headed by — the most
    recent [Buf] reachable through [Resize] links only. [None] for leaf
    and merged ([Join]-topped) solutions. Classifies candidates into the
    per-buffer-type frontier populations {!Dp.stats} reports. *)
