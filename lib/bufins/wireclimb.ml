module T = Rctree.Tree

type state = { i : float; ns : float }

let rescuable ?(eps = 1e-12) (b : Tech.Buffer.t) st = b.Tech.Buffer.r_b *. st.i <= st.ns +. eps

let climb ~b ~node (w : T.wire) st =
  if not (rescuable b st) then invalid_arg "Wireclimb.climb: state not rescuable";
  let r_b = b.Tech.Buffer.r_b and nm_b = b.Tech.Buffer.nm in
  if w.T.length <= 0.0 then
    (* dimensionless wire (dummy edge): apply its lumped effect, no
       buffer can be positioned on it *)
    ({ i = st.i +. w.T.cur; ns = st.ns -. (w.T.res *. (st.i +. (w.T.cur /. 2.0))) }, [])
  else begin
    let r_per_m = w.T.res /. w.T.length and i_per_m = w.T.cur /. w.T.length in
    let rec go rem dbase st acc =
      let tiny = 1e-12 *. (1.0 +. rem) in
      match Noise.max_safe_length ~r_b ~i_down:st.i ~ns:st.ns ~r_per_m ~i_per_m with
      | None ->
          (* impossible: the rescuability invariant holds at every stop *)
          assert false
      | Some lmax when lmax >= rem -. tiny ->
          let top =
            {
              i = st.i +. (i_per_m *. rem);
              ns = st.ns -. (r_per_m *. rem *. (st.i +. (i_per_m *. rem /. 2.0)));
            }
          in
          (top, List.rev acc)
      | Some lmax ->
          (* a buffer is forced on this wire; Theorem 1 places it as far
             up as possible *)
          let lmax = Float.max lmax 0.0 in
          if lmax <= 0.0 && st.ns >= nm_b then
            (* cannot advance: the fresh-buffer state must make progress *)
            failwith "Wireclimb.climb: wire cannot be made noise-safe with this buffer"
          else begin
            let dist = dbase +. lmax in
            let placement = { Rctree.Surgery.node; dist; buffer = b } in
            go (rem -. lmax) dist { i = 0.0; ns = nm_b } (placement :: acc)
          end
    in
    go w.T.length 0.0 st []
  end
