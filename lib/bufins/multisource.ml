module T = Rctree.Tree

type port = { pnode : int; p_r_drv : float; p_d_drv : float }

type mode_report = { driver : int; eval : Eval.report }

type result = {
  placements : Rctree.Surgery.placement list;
  count : int;
  modes : mode_report list;
}

let rerooted tree ~old_source port =
  Rctree.Reroot.at tree ~port:port.pnode ~r_drv:port.p_r_drv ~d_drv:port.p_d_drv ~old_source

(* Translate a placement computed on a re-rooted mode tree back into the
   original tree's coordinates: the same physical wire is owned by the
   other endpoint when the edge was reversed, flipping the distance
   reference end. *)
let translate original mode_tree (p : Rctree.Surgery.placement) =
  let x = p.Rctree.Surgery.node in
  let y = T.parent mode_tree x in
  match Rctree.Reroot.wire_owner original x y with
  | Some owner when owner = x -> p
  | Some owner ->
      let len = (T.wire_to original owner).T.length in
      { p with Rctree.Surgery.node = owner; dist = len -. p.Rctree.Surgery.dist }
  | None -> invalid_arg "Multisource: placement on a wire foreign to the original tree"

let sink_name tree v =
  match T.kind tree v with
  | T.Sink s -> s.T.sname
  | T.Source _ | T.Internal | T.Buffered _ -> invalid_arg "Multisource: port is not a sink"

let find_sink tree name =
  match
    List.find_opt
      (fun v -> match T.kind tree v with T.Sink s -> s.T.sname = name | _ -> false)
      (T.sinks tree)
  with
  | Some v -> v
  | None -> invalid_arg "Multisource: sink vanished"

let run ~lib ~old_source ~ports tree =
  let lib = Tech.Lib.non_inverting lib in
  if lib = [] then invalid_arg "Multisource.run: need a non-inverting buffer";
  (* per-mode Algorithm 2, translated into original coordinates *)
  let mode_placements mode_tree =
    let r = Alg2.run ~lib mode_tree in
    List.map (translate tree mode_tree) r.Alg2.placements
  in
  let from_root = (Alg2.run ~lib tree).Alg2.placements in
  let from_ports =
    List.concat_map (fun port -> mode_placements (rerooted tree ~old_source port)) ports
  in
  (* union with positional dedupe *)
  let same (a : Rctree.Surgery.placement) (b : Rctree.Surgery.placement) =
    a.Rctree.Surgery.node = b.Rctree.Surgery.node
    && Float.abs (a.Rctree.Surgery.dist -. b.Rctree.Surgery.dist) < 1e-12
  in
  let placements =
    List.fold_left
      (fun acc p -> if List.exists (same p) acc then acc else p :: acc)
      [] (from_root @ from_ports)
    |> List.rev
  in
  let buffered = Rctree.Surgery.apply tree placements in
  let port_names = List.map (fun port -> (port, sink_name tree port.pnode)) ports in
  let modes =
    { driver = -1; eval = Eval.of_tree buffered }
    :: List.map
         (fun (port, name) ->
           let v = find_sink buffered name in
           let re =
             Rctree.Reroot.at buffered ~port:v ~r_drv:port.p_r_drv ~d_drv:port.p_d_drv
               ~old_source
           in
           { driver = port.pnode; eval = Eval.of_tree re })
         port_names
  in
  if List.exists (fun m -> not (Eval.noise_clean m.eval)) modes then
    failwith "Multisource.run: merged solution leaves a mode noisy";
  { placements; count = List.length placements; modes }

let all_modes_clean r = List.for_all (fun m -> Eval.noise_clean m.eval) r.modes
