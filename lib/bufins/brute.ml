module T = Rctree.Tree

let assignments ~lib tree =
  let feasible = List.filter (T.feasible tree) (T.internals tree) in
  let options = None :: List.map (fun b -> Some b) lib in
  let rec gen nodes : Rctree.Surgery.placement list Seq.t =
    match nodes with
    | [] -> Seq.return []
    | v :: rest ->
        Seq.concat_map
          (fun tail ->
            Seq.map
              (function
                | None -> tail
                | Some b -> { Rctree.Surgery.node = v; dist = 0.0; buffer = b } :: tail)
              (List.to_seq options))
          (gen rest)
  in
  gen feasible

let parity_ok tree =
  List.for_all
    (fun s ->
      let inversions =
        List.fold_left
          (fun acc v ->
            match T.kind tree v with
            | T.Buffered b when b.Tech.Buffer.inverting -> acc + 1
            | T.Buffered _ | T.Source _ | T.Sink _ | T.Internal -> acc)
          0 (T.path_up tree s)
      in
      inversions mod 2 = 0)
    (T.sinks tree)

let fold_reports ~lib tree f init =
  Seq.fold_left
    (fun acc placements ->
      let report = Eval.apply tree placements in
      if parity_ok report.Eval.tree then f acc placements report else acc)
    init (assignments ~lib tree)

let min_buffers_noise ~lib tree =
  fold_reports ~lib tree
    (fun acc placements report ->
      if not (Eval.noise_clean report) then acc
      else begin
        let n = List.length placements in
        match acc with
        | Some (bn, (br : Eval.report))
          when bn < n || (bn = n && br.Eval.slack >= report.Eval.slack) ->
            acc
        | Some _ | None -> Some (n, report)
      end)
    None

let best_slack_power ~budget ~lib tree =
  (* same ulp-scale headroom as Dp.run's admission: the DP accumulates
     energy in tree-merge order and this sums a flat list, so at a
     budget that is exactly a solution's energy the two sums can land
     on opposite sides of the strict boundary *)
  let tol = Float.abs budget *. 1e-12 in
  fold_reports ~lib tree
    (fun acc placements report ->
      let e = Buffopt.placements_energy placements in
      if e > budget +. tol then acc
      else
        match acc with
        | Some (s, _, _) when s >= report.Eval.slack -> acc
        | Some _ | None -> Some (report.Eval.slack, e, report))
    None

let best_slack ~noise ~lib tree =
  fold_reports ~lib tree
    (fun acc _ report ->
      if noise && not (Eval.noise_clean report) then acc
      else
        match acc with
        | Some (s, _) when s >= report.Eval.slack -> acc
        | Some _ | None -> Some (report.Eval.slack, report))
    None
