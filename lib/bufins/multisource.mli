(** Noise avoidance for multi-source nets (after Lillis [17]).

    A bidirectional bus has several terminals that may drive the shared
    tree, one mode at a time. Repeaters are modelled as bidirectional
    (back-to-back) cells: in every mode each repeater drives away from
    that mode's source, which re-rooting expresses directly.

    The optimizer is a documented heuristic (Lillis's exact multi-source
    DP is out of scope): run Algorithm 2 independently in every mode on
    the re-rooted tree, translate each mode's continuous placements back
    into the original tree's coordinates, take the union, and verify all
    modes on the merged solution. Adding restoring stages never hurts the
    noise of another mode in practice; the per-mode verification is part
    of the returned report, and the test suite checks it on randomized
    busses. *)

type port = {
  pnode : int;  (** sink node of the original tree acting as a terminal *)
  p_r_drv : float;  (** driver resistance when this port drives *)
  p_d_drv : float;  (** driver intrinsic delay when this port drives *)
}

type mode_report = {
  driver : int;  (** -1 for the original source, else the port node *)
  eval : Eval.report;
}

type result = {
  placements : Rctree.Surgery.placement list;  (** original-tree coordinates *)
  count : int;
  modes : mode_report list;  (** evaluation of every mode on the merged solution *)
}

val rerooted : Rctree.Tree.t -> old_source:Rctree.Tree.sink -> port -> Rctree.Tree.t
(** The tree as seen when [port] drives (see {!Rctree.Reroot}). *)

val run :
  lib:Tech.Buffer.t list ->
  old_source:Rctree.Tree.sink ->
  ports:port list ->
  Rctree.Tree.t ->
  result
(** Raises [Failure] if some mode cannot be made noise-safe, and
    [Invalid_argument] for ports that are not sinks. Only non-inverting
    buffers are used (a bidirectional repeater cannot invert). *)

val all_modes_clean : result -> bool
