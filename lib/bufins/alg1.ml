module T = Rctree.Tree

type result = {
  placements : Rctree.Surgery.placement list;
  count : int;
  ns_at_source : float;
}

let run ~lib tree =
  let b = Tech.Lib.min_resistance lib in
  let sink_id, sink =
    match T.sinks tree with
    | [ s ] -> (
        match T.kind tree s with
        | T.Sink sk -> (s, sk)
        | T.Source _ | T.Internal | T.Buffered _ -> assert false)
    | _ -> invalid_arg "Alg1.run: tree must have exactly one sink"
  in
  let rec up v st acc =
    if v = T.root tree then (st, acc)
    else begin
      let w = T.wire_to tree v in
      let st, placed = Wireclimb.climb ~b ~node:v w st in
      up (T.parent tree v) st (List.rev_append placed acc)
    end
  in
  let st, acc = up sink_id { Wireclimb.i = 0.0; ns = sink.T.nm } [] in
  let r_drv = match T.kind tree (T.root tree) with
    | T.Source d -> d.T.r_drv
    | T.Sink _ | T.Internal | T.Buffered _ -> assert false
  in
  let st, acc =
    if r_drv *. st.Wireclimb.i <= st.Wireclimb.ns +. 1e-12 then (st, acc)
    else begin
      (* Step 5: the source itself is too noisy; decouple it with a buffer
         immediately below (only helps because r_b < r_drv) *)
      let top_child =
        match T.children tree (T.root tree) with [ c ] -> c | _ -> assert false
      in
      let w = T.wire_to tree top_child in
      ( { Wireclimb.i = 0.0; ns = b.Tech.Buffer.nm },
        { Rctree.Surgery.node = top_child; dist = w.T.length; buffer = b } :: acc )
    end
  in
  let placements = List.rev acc in
  { placements; count = List.length placements; ns_at_source = st.Wireclimb.ns }
