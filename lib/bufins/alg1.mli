(** Algorithm 1: optimal noise avoidance for single-sink trees
    (paper Section III-B, Fig. 8).

    Climbs from the sink towards the source, maintaining the downstream
    coupled current and noise slack. Whenever driving the remaining wire
    from its top with a buffer would violate the noise constraint, a
    buffer is inserted at the maximal distance allowed by Theorem 1 —
    inserting as high as possible is what makes the buffer count minimal
    (Theorem 3). Finally, if the source's own resistance still violates
    the constraint, a buffer is placed immediately below the source
    (possible only when [r_b < r_drv]).

    Buffers are placed at arbitrary points on wires (new nodes are
    created), so no prior wire segmenting is needed, and multiple buffers
    can land on one long wire (Fig. 7). With a multi-buffer library only
    the smallest-resistance buffer matters (Section III-B), so the
    library is reduced with [Tech.Lib.min_resistance]. *)

type result = {
  placements : Rctree.Surgery.placement list;
  count : int;
  ns_at_source : float;  (** noise slack left at the source *)
}

val run : lib:Tech.Buffer.t list -> Rctree.Tree.t -> result
(** Raises [Invalid_argument] if the tree has more than one sink or an
    empty library. The returned solution has no noise violations
    (checkable with [Eval.apply]). *)
