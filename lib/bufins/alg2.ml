module T = Rctree.Tree

(* Solutions live in a per-run Trace arena (like Dp's candidates): [tr]
   names the solution, and the two merge shapes append one Join (plus a
   Buf for a forced decoupling buffer) instead of copying lists. *)
type cand = { i : float; ns : float; count : int; tr : Trace.handle }

type result = {
  placements : Rctree.Surgery.placement list;
  count : int;
  candidates_seen : int;
}

let dominates a b = a.i <= b.i && a.ns >= b.ns && a.count <= b.count

(* (i, ns, count) pruning on the shared sorted-frontier substrate: sort by
   current ascending (the cost), then a linear-sweep prune. *)
let cmp a b =
  match Float.compare a.i b.i with
  | 0 -> ( match Float.compare b.ns a.ns with 0 -> compare a.count b.count | n -> n)
  | n -> n

let prune cands = fst (Frontier.pareto_dom ~cmp ~cost:(fun c -> c.i) ~dominates cands)

let run ~lib tree =
  let b = Tech.Lib.min_resistance lib in
  let r_b = b.Tech.Buffer.r_b and nm_b = b.Tech.Buffer.nm in
  let arena = Trace.create () in
  let join l r = Trace.join arena ~left:l.tr ~right:r.tr in
  let seen = ref 0 in
  let note cands =
    seen := !seen + List.length cands;
    cands
  in
  (* candidates at the top of [v]'s parent wire *)
  let rec above v =
    let w = T.wire_to tree v in
    let cands =
      List.filter_map
        (fun c ->
          match
            Wireclimb.climb ~b ~node:v w { Wireclimb.i = c.i; ns = c.ns }
          with
          | st, placed ->
              let tr =
                List.fold_left
                  (fun pred (p : Rctree.Surgery.placement) ->
                    Trace.buf arena ~node:p.Rctree.Surgery.node ~dist:p.Rctree.Surgery.dist
                      ~buffer:p.Rctree.Surgery.buffer ~pred)
                  c.tr placed
              in
              Some
                {
                  i = st.Wireclimb.i;
                  ns = st.Wireclimb.ns;
                  count = c.count + List.length placed;
                  tr;
                }
          | exception Failure _ -> None)
        (at v)
    in
    if cands = [] then failwith "Alg2.run: no feasible candidate survives a wire";
    prune (note cands)
  (* candidates at node [v] itself (bottom of its parent wire) *)
  and at v =
    match T.kind tree v with
    | T.Sink s -> [ { i = 0.0; ns = s.T.nm; count = 0; tr = Trace.leaf } ]
    | T.Buffered _ -> invalid_arg "Alg2.run: tree already contains buffers"
    | T.Source _ -> assert false
    | T.Internal -> (
        match T.children tree v with
        | [ c ] -> above c
        | [ cl; cr ] -> merge v (above cl) (above cr)
        | _ -> assert false)
  and merge v left right =
    let cl_node, cr_node =
      match T.children tree v with [ a; b ] -> (a, b) | _ -> assert false
    in
    let wl = T.wire_to tree cl_node and wr = T.wire_to tree cr_node in
    let out = ref [] in
    List.iter
      (fun l ->
        List.iter
          (fun r ->
            let i = l.i +. r.i and ns = Float.min l.ns r.ns in
            if r_b *. i <= ns +. 1e-12 then
              (* Step 7: merging is noise-safe *)
              out := { i; ns; count = l.count + r.count; tr = join l r } :: !out
            else begin
              (* Step 6: a buffer is forced immediately below [v] on one
                 branch; which branch is optimal depends on the upstream,
                 so generate both (when rescuable) *)
              let forced side_node side_wire (decoupled : cand) (other : cand) =
                let i = other.i and ns = Float.min nm_b other.ns in
                if r_b *. i <= ns +. 1e-12 then
                  Some
                    {
                      i;
                      ns;
                      count = decoupled.count + other.count + 1;
                      tr =
                        Trace.buf arena ~node:side_node ~dist:side_wire.T.length ~buffer:b
                          ~pred:(join decoupled other);
                    }
                else None
              in
              (match forced cl_node wl l r with Some c -> out := c :: !out | None -> ());
              match forced cr_node wr r l with Some c -> out := c :: !out | None -> ()
            end)
          right)
      left;
    if !out = [] then failwith "Alg2.run: merge produced no feasible candidate";
    prune (note !out)
  in
  let root = T.root tree in
  let d = match T.kind tree root with
    | T.Source d -> d
    | T.Sink _ | T.Internal | T.Buffered _ -> assert false
  in
  let r_drv = d.T.r_drv in
  let decouple child (cand : cand) =
    (* buffer immediately below the source on [child]'s wire *)
    let w = T.wire_to tree child in
    {
      cand with
      count = cand.count + 1;
      tr = Trace.buf arena ~node:child ~dist:w.T.length ~buffer:b ~pred:cand.tr;
    }
  in
  let finals =
    match T.children tree root with
    | [ c ] ->
        List.filter_map
          (fun cand ->
            if r_drv *. cand.i <= cand.ns +. 1e-12 then Some cand
            else
              (* Step 5: decouple the source (r_b < r_drv must hold, which
                 the rescuability invariant guarantees) *)
              Some { (decouple c cand) with i = 0.0; ns = nm_b })
          (above c)
    | [ cl; cr ] ->
        (* a two-fanout source: the driver test and the forced decoupling
           are per-branch — buffering one branch does not shield the other
           from the driver's resistance *)
        let options l r =
          let plain =
            let i = l.i +. r.i and ns = Float.min l.ns r.ns in
            if r_drv *. i <= ns +. 1e-12 then
              [ { i; ns; count = l.count + r.count; tr = join l r } ]
            else []
          in
          let one_side (decoupled : cand) (other : cand) child =
            let i = other.i and ns = Float.min nm_b other.ns in
            if r_drv *. i <= ns +. 1e-12 then begin
              let joined =
                {
                  decoupled with
                  tr = join decoupled other;
                  count = decoupled.count + other.count;
                }
              in
              [ { (decouple child joined) with i; ns } ]
            end
            else []
          in
          let both =
            let base = { i = 0.0; ns = nm_b; count = l.count + r.count; tr = join l r } in
            [ decouple cr (decouple cl base) ]
          in
          List.concat [ plain; one_side l r cl; one_side r l cr; both ]
        in
        let left = above cl and right = above cr in
        List.concat_map (fun l -> List.concat_map (fun r -> options l r) right) left
    | _ -> assert false
  in
  match
    List.sort
      (fun (a : cand) (c : cand) ->
        match compare a.count c.count with 0 -> compare c.ns a.ns | x -> x)
      finals
  with
  | [] -> failwith "Alg2.run: no feasible solution"
  | best :: _ ->
      { placements = Trace.placements arena best.tr; count = best.count; candidates_seen = !seen }
