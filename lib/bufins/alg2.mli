(** Algorithm 2: optimal noise avoidance for multi-sink trees
    (paper Section III-C, Fig. 9).

    A bottom-up candidate propagation in the spirit of Van Ginneken's
    algorithm: every node carries a list of [(current, noise-slack,
    solution)] candidates. Single-child spans reuse the Theorem-1 wire
    climb of Algorithm 1 (deterministic per candidate). At a two-child
    merge, if joining two candidates would leave the node un-rescuable
    ([r_b * (i_l + i_r) > min ns_l ns_r]), a buffer must go immediately
    below the node on the left {e or} the right branch — which one is
    optimal depends on the yet-unseen upstream, so both candidates are
    generated and propagated (this is the only branching; Theorem 4).
    Dominated candidates are pruned; the dominance test also compares
    buffer counts so the final minimum-count selection is exact.

    As with Algorithm 1, only the smallest-resistance buffer of the
    library is ever useful. *)

type result = {
  placements : Rctree.Surgery.placement list;
  count : int;
  candidates_seen : int;  (** total candidates generated (for Ablation B) *)
}

val run : lib:Tech.Buffer.t list -> Rctree.Tree.t -> result
(** Works for any sink count (a single-sink tree reproduces Algorithm 1's
    answer). Raises [Failure] if no buffering can satisfy the margins. *)
