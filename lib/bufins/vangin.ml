let best_exn outcome =
  match outcome.Dp.best with
  | Some r -> r
  | None -> assert false (* the zero-buffer candidate always survives without noise checks *)

let run ?pruning ?memo ~lib tree =
  best_exn (Dp.run ?pruning ?memo ~noise:false ~mode:Dp.Single ~lib tree)

let run_max ?pruning ?memo ~max_buffers ~lib tree =
  best_exn (Dp.run ?pruning ?memo ~noise:false ~mode:(Dp.Per_count max_buffers) ~lib tree)

let by_count ?pruning ?memo ~kmax ~lib tree =
  (Dp.run ?pruning ?memo ~noise:false ~mode:(Dp.Per_count kmax) ~lib tree).Dp.by_count

let run_power ?pruning ?memo ~budget ~kmax ~lib tree =
  best_exn
    (Dp.run ?pruning ?memo ~noise:false ~mode:(Dp.Power_bounded { budget; kmax }) ~lib tree)
