let best_exn outcome =
  match outcome.Dp.best with
  | Some r -> r
  | None -> assert false (* the zero-buffer candidate always survives without noise checks *)

let run ?pruning ~lib tree = best_exn (Dp.run ?pruning ~noise:false ~mode:Dp.Single ~lib tree)

let run_max ?pruning ~max_buffers ~lib tree =
  best_exn (Dp.run ?pruning ~noise:false ~mode:(Dp.Per_count max_buffers) ~lib tree)

let by_count ?pruning ~kmax ~lib tree =
  (Dp.run ?pruning ~noise:false ~mode:(Dp.Per_count kmax) ~lib tree).Dp.by_count
