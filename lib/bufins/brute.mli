(** Exhaustive reference optimizer for the test suite.

    Enumerates every assignment of library buffers (or none) to the
    feasible internal nodes of a tree, evaluates each with the
    from-scratch [Eval] analyzers, and reports exact optima. Exponential
    — intended for trees with at most a dozen feasible nodes; the
    optimality theorems (3, 4, 5) are checked against these results on
    randomized small instances. *)

val assignments : lib:Tech.Buffer.t list -> Rctree.Tree.t -> Rctree.Surgery.placement list Seq.t
(** All [(|lib| + 1) ^ feasible] node-buffer assignments. The optimizers
    below additionally reject polarity-illegal assignments (a
    source-to-sink path through an odd number of inverting buffers
    delivers the wrong logic value). *)

val min_buffers_noise : lib:Tech.Buffer.t list -> Rctree.Tree.t -> (int * Eval.report) option
(** Fewest buffers with zero noise violations (Problem 1 restricted to
    feasible nodes); ties broken by slack. [None] if no assignment is
    noise-clean. *)

val best_slack : noise:bool -> lib:Tech.Buffer.t list -> Rctree.Tree.t -> (float * Eval.report) option
(** Maximum achievable slack; with [noise = true], only noise-clean
    assignments qualify (Problem 2). *)

val best_slack_power :
  budget:float ->
  lib:Tech.Buffer.t list ->
  Rctree.Tree.t ->
  (float * float * Eval.report) option
(** Maximum slack over the assignments whose total buffer energy
    ({!Buffopt.placements_energy}) stays within [budget] (J); no noise
    constraint — the reference the power-vs-brute oracle holds
    {!Dp.Power_bounded} to. Returns (slack, energy, report); [None]
    only for a negative budget (the empty assignment costs nothing). *)
