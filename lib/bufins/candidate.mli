(** Candidate solutions for the dynamic-programming algorithms.

    Algorithm 3 candidates are the paper's five-tuples
    [(load, slack, current, noise slack, solution)] extended with the
    polarity parity needed for inverting buffers (Lillis et al. [18]) and
    the count of inserted buffers (the Lillis indexed extension used by
    BuffOpt for Problem 3). The solution itself is not carried: the
    candidate holds a {!Trace.handle} into the run's arena, and merge /
    add_buffer record one arena node instead of copying lists. *)

type t = {
  c : float;  (** downstream load seen here, F (eq. 1) *)
  q : float;  (** timing slack: min downstream [rat - delay-to-sink], s *)
  i : float;  (** downstream coupled current, A (eq. 7) *)
  ns : float;  (** noise slack, V (eq. 12) *)
  p : float;  (** accumulated buffer energy of the solution, J *)
  meta : float;  (** [2*count + parity], an exact small int; see {!count} *)
  tr : float;  (** solution {!Trace.handle}, an exact small int; see {!trace} *)
}
(** Deliberately all-float: an OCaml record whose fields are all floats
    is stored flat (header + unboxed doubles, 8 words here), while one
    immediate field would force a boxed double per float field.
    [meta] and [tr] stay exact because counts and handles are far below
    2{^52}. [p] sums the {!Tech.Buffer.t.energy} of every buffer in the
    solution; outside power mode it is a passenger field that no pruning
    relation reads. *)

val parity : t -> int
(** Signal inversions accumulated below: 0 or 1. *)

val count : t -> int
(** Buffers inserted in the candidate's solution. *)

val trace : t -> Trace.handle
(** The solution's node in the run's {!Trace} arena. *)

val of_sink : Rctree.Tree.sink -> t
(** Leaf candidate; its trace handle is {!Trace.leaf}. *)

val add_wire : Rctree.Tree.wire -> t -> t
(** Propagate a candidate from a wire's target to its driving end:
    [c += cap], [q -= res*(cap/2 + c)], [i += cur],
    [ns -= res*(i + cur/2)] (eqs. 2 and 8). *)

val add_buffer : arena:Trace.arena -> at:int -> Tech.Buffer.t -> t -> t
(** Insert a buffer at node [at] on top of the candidate: the new stage
    sees [c_in], slack drops by the gate delay into the old load, current
    resets to zero, noise slack resets to the buffer's margin, parity
    flips for inverting buffers; one [Buf] node is appended to [arena].
    Performs no noise check — callers decide (that check is exactly what
    distinguishes Algorithm 3 from Van Ginneken). *)

val resize : arena:Trace.arena -> node:int -> width:float -> t -> t
(** Record a wire-sizing decision (Lillis [18]) on the solution trace;
    the numeric coordinates are the caller's business. *)

val add_driver : Rctree.Tree.driver -> t -> t
(** Account for the source gate: [q -= d_drv + r_drv*c]. Noise is the
    caller's check ([r_drv *. i <= ns]). *)

val noise_ok : ?eps:float -> r_gate:float -> t -> bool
(** Would a gate with output resistance [r_gate] driving this candidate
    respect every downstream noise margin? ([r_gate *. i <= ns +. eps]) *)

val merge : arena:Trace.arena -> t -> t -> t
(** Join the two branches at a node: loads and currents add, slacks take
    the minimum, counts add, and one [Join] node is appended to [arena].
    Parities must agree. *)

val dominates : t -> t -> bool
(** [dominates a b]: [a] is at least as good as [b] on load and slack
    ([a.c <= b.c] and [a.q >= b.q]); the delay-mode (Van Ginneken)
    pruning relation. Parity and (when bucketed) count must match —
    callers group before pruning. *)

val dominates_full : t -> t -> bool
(** [dominates] strengthened with the noise coordinates
    ([a.i <= b.i] and [a.ns >= b.ns]): the noise-mode (Algorithm 3)
    pruning relation. Every upstream operation — wire, buffer, merge,
    driver — is monotone in each of the four coordinates, so dropping
    only fully-dominated candidates is lossless; pruning on (c, q) alone
    (Theorem 5) is safe only under the theorem's single-buffer
    assumptions and can otherwise discard the lone candidate whose noise
    slack survives the remaining upstream wires. *)

val dominates_noise : t -> t -> bool
(** Algorithm 2 dominance: [a.i <= b.i], [a.ns >= b.ns] and
    [count a <= count b] (the count guard makes the minimum-buffer
    selection safe). *)

val cmp_frontier : t -> t -> int
(** The frontier order: load ascending, then slack descending, current
    ascending, noise slack descending — the sort {!Frontier.sweep_dom}
    requires for {!dominates_full} (any dominator sorts no later than
    the candidate it dominates, up to equal-cost ties). *)

(** {2 Power-mode relations (DESIGN.md §16)}

    The energy axis joins the dominance relation only in power mode;
    power-off runs never execute these, keeping their outcomes
    byte-identical to the classic engine. *)

val dominates_power : t -> t -> bool
(** {!dominates} strengthened with [a.p <= b.p]: the power-mode delay
    pruning relation (3-axis). Sound because every upstream operation is
    monotone non-decreasing in [p]. *)

val dominates_full_power : t -> t -> bool
(** {!dominates_full} strengthened with [a.p <= b.p]: the power-mode
    noise pruning relation (5-axis). *)

val cmp_frontier_power : t -> t -> int
(** {!cmp_frontier} with energy ascending as the final tie-break — the
    sort order of power-mode groups. *)

val sweep_delay_power : t list -> t list * int
(** Dominance sweep under {!dominates_power} on a
    [cmp_frontier_power]-sorted list, O(n log n): with load already
    sorted, survivors reduce to a (slack, energy) staircase kept in a
    map, so each element costs one staircase lookup plus amortized
    eviction. Returns (kept, dropped). May retain a weakly dominated
    equal-(c, q) duplicate when the i / ns tie-breaks interleave the
    energy order — never anything that extends the frontier. *)

val sweep_noise_power : t list -> t list * int
(** Dominance sweep under {!dominates_full_power} (5-axis); quadratic
    per group, like {!sweep_noise}. *)

val merge_delay_power :
  emit:(t -> t -> unit) -> t list -> t list -> unit
(** Exact delay-power branch merge: calls [emit left right] for every
    pairing of the two 3-axis frontiers that can contribute to the
    merged frontier, skipping pairings whose partner is (load, energy)-
    dominated within the equal-or-better-slack prefix of its side —
    those merges are weakly dominated by an emitted one. Walks each
    side in descending slack against the other side's staircase;
    typically far below the |L| x |R| full pairing walk. *)

(** {2 Monomorphic fast paths}

    The {!Frontier} sweeps and merge instantiated at [t] with direct
    field access; behaviorally identical to the generic versions (the
    test suite checks this by property), but free of the per-element
    indirect calls the DP inner loops cannot afford without flambda. *)

val sweep_delay : t list -> t list * int
(** [Frontier.sweep2 ~cost:c ~value:q] on a [cmp_frontier]-sorted list:
    the delay-mode (load, slack) staircase. Returns (kept, dropped). *)

val sweep_noise : t list -> t list * int
(** [Frontier.sweep_dom ~cost:c ~dominates:dominates_full] on a
    [cmp_frontier]-sorted list: the noise-mode 4D sweep. *)

val merge_sweep_delay : t list list -> t list * int
(** [sweep_delay (Frontier.merge_sorted cmp_frontier runs)] without ever
    materializing the merged intermediate list: a k-way head selection
    (ties to the earliest run, matching the stable pairwise merge) feeds
    the staircase push directly. Returns (kept, dropped). The DP's
    branch-merge and buffer-splice paths allocate only the survivors
    this way. *)

val splice_delay : t list -> t list -> t list * int
(** [splice_delay group cands] =
    [sweep_delay (List.merge cmp_frontier group cands)] for a [group]
    that is already a swept (load, slack) staircase. Splices the sorted
    [cands] in and re-shares the unaffected tail of [group] instead of
    re-consing the whole frontier — the buffer-insertion path's
    dominant allocation before this existed. Returns (kept, dropped)
    with drop counts identical to the unfused composition. *)

val merge_delay : arena:Trace.arena -> t list -> t list -> t list * int
(** [Frontier.merge2 ~value:q ~join:(merge ~arena)] on two sorted
    frontiers: the Van Ginneken linear branch-merge walk. Returns the
    pairings and their count (for the generated-candidates statistic). *)

(** {2 Predictive pruning (Li & Shi)}

    [bound] is the {!Rctree.Upbound} value of the node the candidates
    sit at: a lower bound, in ohm, on the resistance any extra load must
    still be charged through before something decouples it. A candidate
    [x] whose slack lead over an already-emitted lighter candidate [k]
    of the same group satisfies [x.q -. k.q < bound *. (x.c -. k.c)]
    can never strictly beat [k] at the source, so it is discarded
    {e before} being materialized (no allocation, no arena node) and is
    counted as [pred_pruned] instead of [generated]. The frontiers get
    narrower, but every optimizer outcome — winning slack, placements,
    sizes, by_count buckets — is byte-identical to the sweep-only
    engine's (DESIGN.md §12 has the proof). All functions below return
    [(result, emitted, prekilled)]. *)

val pred_kills : bound:float -> t -> t -> bool
(** [pred_kills ~bound k x]: emitted candidate [k] kills the would-be
    candidate [x] — by plain dominance ([k.q >= x.q]; [k.c <= x.c] is
    the caller's sort order) or by the predictive slope rule. *)

val covered : bound:float -> c:float -> q:float -> t list -> bool
(** Does any member of the sorted staircase with load [<= c] kill a
    would-be candidate at coordinates [(c, q)]? The buffer-insertion
    pre-check, run against the target group before [add_buffer]
    allocates anything. *)

val climb_pred : bound:float -> Rctree.Tree.wire -> t list -> t list * int * int
(** [add_wire] over a sorted group with the kill test fused in: a
    climbed candidate killed by the previously emitted one is never
    materialized. *)

val climb_pred_scan :
  bound:float ->
  wc:float array ->
  wq:float array ->
  nw:int ->
  Rctree.Tree.wire ->
  t list ->
  t list * t list * int * int
(** [climb_pred] for a climb that lands on a feasible single-child node:
    the buffer insertions the destination is about to splice into this
    group act as [nw] extra virtual witnesses at coordinates
    [(wc.(i), wq.(i))]. Returns
    [(survivors, full, emitted, prekilled)] where [full] is {e every}
    climbed candidate in frontier order — the insertion scan at the
    destination must read [full], not [survivors], because a victim can
    still be the best insertion source even though it can never win on
    the frontier (its trace stays valid: a plain climb records no arena
    node). Witness kills are strict on exact [(c, q)] ties, so a tie's
    surviving trace is still decided by the ordinary splice. *)

val climb_resize_pred :
  arena:Trace.arena ->
  bound:float ->
  node:int ->
  width:float ->
  Rctree.Tree.wire ->
  t list ->
  t list * int * int
(** [climb_pred] for a sized wire family: survivors additionally record
    their [Resize] arena node (the wire must already be resized by the
    caller). *)

(** {3 Power-extended kills ([`Predictive_power]; DESIGN.md §16)}

    The classic slope kill is unsound under a power budget: the witness
    may be the more expensive candidate, and discarding the victim can
    discard the only budget-feasible completion. The extended rule
    additionally requires the witness to weakly dominate on energy
    ([k.p <= x.p]) — upstream buffers add equal energy to either, so the
    witness then completes with no worse slack {e and} no worse energy.
    Strictly fewer kills than the classic rule; the power-vs-brute and
    pred-vs-sweep-style oracles fuzz-verify it. *)

val pred_kills_power : bound:float -> t -> t -> bool

val covered_power : bound:float -> c:float -> q:float -> p:float -> t list -> bool
(** {!covered} with the energy condition: only members with
    [k.p <= p] may kill the would-be insertion at [(c, q, p)]. *)

val climb_pred_power : bound:float -> Rctree.Tree.wire -> t list -> t list * int * int
(** {!climb_pred} under {!pred_kills_power}. *)

val climb_resize_pred_power :
  arena:Trace.arena ->
  bound:float ->
  node:int ->
  width:float ->
  Rctree.Tree.wire ->
  t list ->
  t list * int * int
(** {!climb_resize_pred} under {!pred_kills_power}. *)

val merge_sweep_delay_pred :
  arena:Trace.arena ->
  bound:float ->
  (t list * t list) list ->
  t list * int * int * int
(** The cross-run form of the merge kill. Each element of the input is
    one Van Ginneken pairing walk (a left and a right child group)
    feeding the same (parity, bucket) target group; the walks advance
    through a single fused k-way selection and the staircase push — with
    the slope rule — is applied to each pairing's coordinates {e before}
    a [Join] arena node is recorded. Returns
    [(kept, emitted, dropped, prekilled)]: [emitted] pairings were
    materialized (count them as [generated]), [dropped] of those were
    then retro-killed by an equal-load pairing ([pruned]), and
    [prekilled] pairings were discarded pre-materialization
    ([pred_pruned]). Selection and tie handling mirror
    {!merge_sweep_delay}, so equal-coordinate ties resolve to the same
    trace as the sweep-only engine. *)
