(** Candidate solutions for the dynamic-programming algorithms.

    Algorithm 3 candidates are the paper's five-tuples
    [(load, slack, current, noise slack, solution)] extended with the
    polarity parity needed for inverting buffers (Lillis et al. [18]) and
    the count of inserted buffers (the Lillis indexed extension used by
    BuffOpt for Problem 3). Algorithm 2 candidates use only the
    [(current, noise slack, solution)] projection. *)

type t = {
  c : float;  (** downstream load seen here, F (eq. 1) *)
  q : float;  (** timing slack: min downstream [rat - delay-to-sink], s *)
  i : float;  (** downstream coupled current, A (eq. 7) *)
  ns : float;  (** noise slack, V (eq. 12) *)
  parity : int;  (** signal inversions accumulated below: 0 or 1 *)
  count : int;  (** buffers inserted in [sol] *)
  sol : Rctree.Surgery.placement list;
  sizes : (int * float) list;  (** wire-sizing choices: node, width (Lillis [18]) *)
}

val of_sink : Rctree.Tree.sink -> t

val add_wire : Rctree.Tree.wire -> t -> t
(** Propagate a candidate from a wire's target to its driving end:
    [c += cap], [q -= res*(cap/2 + c)], [i += cur],
    [ns -= res*(i + cur/2)] (eqs. 2 and 8). *)

val add_buffer : at:int -> Tech.Buffer.t -> t -> t
(** Insert a buffer at node [at] on top of the candidate: the new stage
    sees [c_in], slack drops by the gate delay into the old load, current
    resets to zero, noise slack resets to the buffer's margin, parity
    flips for inverting buffers. Performs no noise check — callers decide
    (that check is exactly what distinguishes Algorithm 3 from Van
    Ginneken). *)

val add_driver : Rctree.Tree.driver -> t -> t
(** Account for the source gate: [q -= d_drv + r_drv*c]. Noise is the
    caller's check ([r_drv *. i <= ns]). *)

val noise_ok : ?eps:float -> r_gate:float -> t -> bool
(** Would a gate with output resistance [r_gate] driving this candidate
    respect every downstream noise margin? ([r_gate *. i <= ns +. eps]) *)

val merge : t -> t -> t
(** Join the two branches at a node: loads and currents add, slacks take
    the minimum, solutions concatenate. Parities must agree. *)

val dominates : t -> t -> bool
(** [dominates a b]: [a] is at least as good as [b] on load and slack
    ([a.c <= b.c] and [a.q >= b.q]); the delay-mode (Van Ginneken)
    pruning relation. Parity and (when bucketed) count must match —
    callers group before pruning. *)

val dominates_full : t -> t -> bool
(** [dominates] strengthened with the noise coordinates
    ([a.i <= b.i] and [a.ns >= b.ns]): the noise-mode (Algorithm 3)
    pruning relation. Every upstream operation — wire, buffer, merge,
    driver — is monotone in each of the four coordinates, so dropping
    only fully-dominated candidates is lossless; pruning on (c, q) alone
    (Theorem 5) is safe only under the theorem's single-buffer
    assumptions and can otherwise discard the lone candidate whose noise
    slack survives the remaining upstream wires. *)

val dominates_noise : t -> t -> bool
(** Algorithm 2 dominance: [a.i <= b.i], [a.ns >= b.ns] and
    [a.count <= b.count] (the count guard makes the minimum-buffer
    selection safe). *)

val cmp_frontier : t -> t -> int
(** The frontier order: load ascending, then slack descending, current
    ascending, noise slack descending — the sort {!Frontier.sweep_dom}
    requires for {!dominates_full} (any dominator sorts no later than
    the candidate it dominates, up to equal-cost ties). *)

(** {2 Monomorphic fast paths}

    The {!Frontier} sweeps and merge instantiated at [t] with direct
    field access; behaviorally identical to the generic versions (the
    test suite checks this by property), but free of the per-element
    indirect calls the DP inner loops cannot afford without flambda. *)

val sweep_delay : t list -> t list * int
(** [Frontier.sweep2 ~cost:c ~value:q] on a [cmp_frontier]-sorted list:
    the delay-mode (load, slack) staircase. Returns (kept, dropped). *)

val sweep_noise : t list -> t list * int
(** [Frontier.sweep_dom ~cost:c ~dominates:dominates_full] on a
    [cmp_frontier]-sorted list: the noise-mode 4D sweep. *)

val merge_delay : t list -> t list -> t list * int
(** [Frontier.merge2 ~value:q ~join:merge] on two sorted frontiers: the
    Van Ginneken linear branch-merge walk. Returns the pairings and
    their count (for the generated-candidates statistic). *)
