(** Algorithm 3: simultaneous noise and delay optimization
    (paper Section IV, Figs. 10-11).

    Van Ginneken's DP in which a buffer — or the source driver — is never
    attached to a candidate whose noise constraint it would violate, and
    candidates whose accumulated wire noise already exceeds a downstream
    margin are discarded as unrecoverable. Generates a subset of Van
    Ginneken's candidates, so it can run faster than DelayOpt (Table III).
    Optimal for a single-buffer library when the buffer's input
    capacitance is at most every sink's and its margin at most every
    sink's (Theorem 5); near-optimal for realistic libraries
    (Section IV-C, verified within 2% in Table IV).

    [?pruning] is accepted for interface uniformity with {!Vangin}, but
    noise mode never applies the predictive slope rule ({!Dp.run}); both
    values run the same engine here. *)

val run :
  ?pruning:[ `Predictive | `Predictive_power | `Sweep_only ] ->
  ?memo:Dp.Memo.t ->
  lib:Tech.Buffer.t list ->
  Rctree.Tree.t ->
  Dp.result option
(** Maximize source slack subject to every noise margin; [None] when no
    buffering at this segmenting satisfies noise (Section IV-C's remedy:
    finer segmenting / richer library — see [Buffopt.optimize]). The
    returned result carries the engine's {!Dp.stats} (candidates
    generated / pruned, peak frontier width). *)

val by_count :
  ?pruning:[ `Predictive | `Predictive_power | `Sweep_only ] ->
  ?memo:Dp.Memo.t ->
  kmax:int ->
  lib:Tech.Buffer.t list ->
  Rctree.Tree.t ->
  Dp.outcome
(** Noise-constrained best slack per exact buffer count; the substrate
    for Problem 3 (see {!Buffopt}). *)
