(** Van Ginneken's delay-optimal buffer insertion [31] (paper Figs. 4-5),
    with the Lillis library/polarity generalization: the delay-only
    baseline the paper calls DelayOpt.

    [?pruning] on every entry point selects the candidate engine (see
    {!Dp.run}): [`Predictive] (default) pre-kills candidates against the
    Li & Shi slope bound, [`Sweep_only] is the plain dominance-sweep
    engine. Outcomes are byte-identical either way. *)

val run :
  ?pruning:[ `Predictive | `Predictive_power | `Sweep_only ] ->
  ?memo:Dp.Memo.t ->
  lib:Tech.Buffer.t list ->
  Rctree.Tree.t ->
  Dp.result
(** Maximize the source timing slack; no noise constraints. Always
    succeeds (the zero-buffer candidate survives). *)

val run_max :
  ?pruning:[ `Predictive | `Predictive_power | `Sweep_only ] ->
  ?memo:Dp.Memo.t ->
  max_buffers:int ->
  lib:Tech.Buffer.t list ->
  Rctree.Tree.t ->
  Dp.result
(** DelayOpt(k): best slack using at most [max_buffers] buffers
    (Table III). *)

val by_count :
  ?pruning:[ `Predictive | `Predictive_power | `Sweep_only ] ->
  ?memo:Dp.Memo.t ->
  kmax:int ->
  lib:Tech.Buffer.t list ->
  Rctree.Tree.t ->
  Dp.result option array
(** Best slack for each exact buffer count [0..kmax] (Table IV pairs
    DelayOpt and BuffOpt at equal counts). *)

val run_power :
  ?pruning:[ `Predictive | `Predictive_power | `Sweep_only ] ->
  ?memo:Dp.Memo.t ->
  budget:float ->
  kmax:int ->
  lib:Tech.Buffer.t list ->
  Rctree.Tree.t ->
  Dp.result
(** Power-bounded DelayOpt (DESIGN.md §16): best slack whose total
    buffer energy stays within [budget] (J), using at most [kmax]
    buffers. Always succeeds — the zero-buffer candidate carries zero
    energy, so it survives any non-negative budget. Raises
    [Invalid_argument] on a negative budget (from {!Dp.run}). *)
