module T = Rctree.Tree

let noise_driven ?(fraction = 0.34) ?(fallback = 1e-3) ~lib tree =
  if fraction <= 0.0 || fallback <= 0.0 then invalid_arg "Segmenting.noise_driven: bad parameters";
  let b = Tech.Lib.min_resistance lib in
  Rctree.Segment.refine_by tree (fun _ w ->
      if w.T.length <= 0.0 || w.T.cur <= 0.0 then fallback
      else begin
        let r_per_m = w.T.res /. w.T.length and i_per_m = w.T.cur /. w.T.length in
        match
          Noise.max_safe_length ~r_b:b.Tech.Buffer.r_b ~i_down:0.0 ~ns:b.Tech.Buffer.nm
            ~r_per_m ~i_per_m
        with
        | Some span when Float.is_finite span -> Float.max (fraction *. span) 1e-6
        | Some _ | None -> fallback
      end)
