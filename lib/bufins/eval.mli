(** From-scratch evaluation of buffer-insertion solutions.

    The algorithms maintain loads, slacks, currents and noise slacks
    incrementally; this module re-derives everything from the applied tree
    with the [Elmore] and [Noise] evaluators, giving an independent check
    (and the numbers reported by the experiments). *)

type report = {
  tree : Rctree.Tree.t;  (** the tree with buffers applied *)
  buffers : int;
  slack : float;  (** eq. (5) timing slack at the source *)
  worst_delay : float;
  noise_violations : (int * float * float) list;  (** node, noise, margin *)
  worst_noise_ratio : float;
      (** max over leaves of noise / margin; a leaf whose margin is zero,
          denormal or negative contributes [infinity] when it sees any
          noise and [0.] otherwise (never [nan]) *)
}

val apply : Rctree.Tree.t -> Rctree.Surgery.placement list -> report

val of_tree : Rctree.Tree.t -> report
(** Evaluate a tree as-is (e.g. the unbuffered baseline). *)

val noise_clean : report -> bool
