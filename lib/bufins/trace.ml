type handle = int

type node =
  | Leaf
  | Buf of { node : int; dist : float; buffer : Tech.Buffer.t; pred : handle }
  | Join of { left : handle; right : handle }
  | Resize of { node : int; width : float; pred : handle }

type arena = { mutable tab : node array; mutable len : int }

let leaf = 0

let create ?(capacity = 256) () =
  { tab = Array.make (max capacity 1) Leaf; len = 1 }

let size a = a.len

let push a n =
  let h = a.len in
  if h = Array.length a.tab then begin
    let tab = Array.make (2 * h) Leaf in
    Array.blit a.tab 0 tab 0 h;
    a.tab <- tab
  end;
  a.tab.(h) <- n;
  a.len <- h + 1;
  h

let buf a ~node ~dist ~buffer ~pred = push a (Buf { node; dist; buffer; pred })

let join a ~left ~right = push a (Join { left; right })

let resize a ~node ~width ~pred = push a (Resize { node; width; pred })

let check a h = if h < 0 || h >= a.len then invalid_arg "Trace: dangling handle"

let top_buffer a h =
  check a h;
  let rec go h =
    match a.tab.(h) with
    | Buf { buffer; _ } -> Some buffer
    | Resize { pred; _ } -> go pred
    | Leaf | Join _ -> None
  in
  go h

(* A handle's implicit solution list [sol h] is defined by the
   constructors exactly as the old eager candidate lists were built:

     sol Leaf             = []
     sol (Buf (p, pred))  = p :: sol pred
     sol (Join (l, r))    = List.rev_append (sol l) (sol r)
     sol (Resize (_, p))  = sol p

   and the reported placement list is [List.rev (sol h)], so the arena
   walk reproduces the eager representation's output list for list.
   [walk acc h] returns [List.rev_append acc (sol h)]: Buf/Resize chains
   are consumed tail-recursively and recursion happens only at a Join,
   so the stack depth is the Join nesting depth — bounded by the branch
   depth of the routing tree, not by the solution size. *)
let sol a h =
  let rec walk acc h =
    match a.tab.(h) with
    | Buf { node; dist; buffer; pred } ->
        walk ({ Rctree.Surgery.node; dist; buffer } :: acc) pred
    | Resize { pred; _ } -> walk acc pred
    | Leaf -> List.rev acc
    | Join { left; right } ->
        List.rev_append acc (List.rev_append (walk [] left) (walk [] right))
  in
  check a h;
  walk [] h

let placements a h = List.rev (sol a h)

(* Same walk over the Resize constructors: [sizes h] mirrors the old
   [(node, width) :: sizes] / [rev_append] construction, and the DP
   reported that list unreversed. *)
let sizes a h =
  let rec walk acc h =
    match a.tab.(h) with
    | Resize { node; width; pred } -> walk ((node, width) :: acc) pred
    | Buf { pred; _ } -> walk acc pred
    | Leaf -> List.rev acc
    | Join { left; right } ->
        List.rev_append acc (List.rev_append (walk [] left) (walk [] right))
  in
  check a h;
  walk [] h

(* Total switching energy of the solution: the sum of every inserted
   buffer's energy annotation. Same shape as the other walks — Buf/Resize
   chains are consumed iteratively, recursion only at a Join. *)
let energy a h =
  let rec walk acc h =
    match a.tab.(h) with
    | Buf { buffer; pred; _ } -> walk (acc +. buffer.Tech.Buffer.energy) pred
    | Resize { pred; _ } -> walk acc pred
    | Leaf -> acc
    | Join { left; right } -> walk (walk acc left) right
  in
  check a h;
  walk 0.0 h
