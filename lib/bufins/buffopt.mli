(** The BuffOpt tool (paper Sections IV-C and V).

    Problem 3: insert the minimum number of buffers such that both the
    noise margins and the timing constraints are satisfied, maximizing
    slack as a secondary objective. Implemented, as in the paper, by
    running Algorithm 3 with Lillis count-indexed candidate lists and
    picking the smallest count whose best solution meets timing; when no
    count meets timing, the maximum-slack noise-clean solution is
    returned (fewest buffers among ties).

    [optimize] is the end-to-end entry point used by the experiments: it
    segments the tree, runs the requested optimizer, and retries with
    finer segmenting in the rare case noise cannot be satisfied at the
    initial granularity. *)

type t = {
  result : Dp.result;
  timing_met : bool;  (** slack >= 0 at the chosen count *)
}

val problem3 :
  ?pruning:[ `Predictive | `Predictive_power | `Sweep_only ] ->
  ?memo:Dp.Memo.t ->
  kmax:int ->
  lib:Tech.Buffer.t list ->
  Rctree.Tree.t ->
  t option
(** The Problem 3 selection rule over {!Alg3.by_count}; [None] when no
    noise-feasible solution exists at this segmenting. *)

type algorithm =
  | Buffopt  (** noise + delay, fewest buffers meeting timing (Problem 3) *)
  | Delayopt of int  (** DelayOpt(k): delay only, at most k buffers *)
  | Alg3_max_slack  (** noise + delay, unconstrained count (Problem 2) *)
  | Vangin_max_slack  (** delay only, unconstrained count *)
  | Power_bounded of float
      (** max slack within the given buffer-energy budget (J); delay
          only, {!Dp.Power_bounded} under the hood (DESIGN.md §16) *)

type run = {
  report : Eval.report;  (** evaluation of the applied solution *)
  placements : Rctree.Surgery.placement list;
  count : int;
  predicted_slack : float;  (** the DP's own slack *)
  energy : float;  (** total buffer switching energy of the solution, J *)
  segmented : Rctree.Tree.t;  (** the tree the optimizer actually ran on *)
  stats : Dp.stats;  (** candidate-engine statistics of the winning run *)
}

val optimize :
  ?seg_len:float ->
  ?kmax:int ->
  ?retries:int ->
  ?pruning:[ `Predictive | `Predictive_power | `Sweep_only ] ->
  algorithm ->
  lib:Tech.Buffer.t list ->
  Rctree.Tree.t ->
  run option
(** Segment to [seg_len] (default 500 um), run, and evaluate. Noise-aware
    algorithms retry up to [retries] (default 2) times with halved
    [seg_len] when infeasible. [kmax] (default 16) bounds the Problem 3
    search; a net that needs more buffers than [kmax] falls back to the
    unbounded Problem 2 search (Algorithm 3) rather than failing.
    [pruning] selects the candidate engine (see {!Dp.run}; outcomes are
    byte-identical either way). [None] only for noise-aware algorithms
    that stay infeasible after all retries. *)

val optimize_prepared :
  ?kmax:int ->
  ?pruning:[ `Predictive | `Predictive_power | `Sweep_only ] ->
  ?memo:Dp.Memo.t ->
  algorithm ->
  lib:Tech.Buffer.t list ->
  Rctree.Tree.t ->
  run option
(** The serve daemon's entry point: run on an {e already segmented} tree
    — no segmenting pass, no retry loop — optionally through a resident
    incremental {!Dp.Memo}. [segmented] in the returned run is the input
    tree itself. The caller owns segmenting (once, at load time) and the
    memo's dirty-marking contract; see {!Dp.Memo}. [None] when the
    noise-aware algorithms are infeasible at this segmenting. Equal
    inputs produce results byte-identical to {!optimize} at the same
    granularity with the retry loop disabled. *)

val placements_energy : Rctree.Surgery.placement list -> float
(** Sum of the placements' buffer energies, J — the quantity the
    energy-conservation oracle compares against {!Trace.energy}. *)

val downsize : ?slack_floor:float -> lib:Tech.Buffer.t list -> run -> run
(** The Downsize post-pass (DESIGN.md §16): greedily remove or swap
    buffers for cheaper same-polarity library cells wherever the
    re-evaluated solution stays admissible — slack no worse than
    [slack_floor] (default: [min report.slack 0.], i.e. timing stays met
    when it was, and never degrades when it was not) and the worst noise
    ratio within [max report.worst_noise_ratio 1.], i.e. noise-clean
    solutions stay clean and violating ones get no worse. Inverting
    buffers are never removed (that would flip downstream polarity),
    only shrunk. Visits the most energy-hungry buffers first and
    iterates to a fixpoint; every accepted step is re-checked with a
    from-scratch {!Eval.apply} on [run.segmented]. [report],
    [placements], [count] and [energy] are updated; [predicted_slack]
    and [stats] still describe the original DP run. Intended for
    {!optimize} / {!optimize_prepared} runs (coupled runs re-key their
    report onto the coupled tree, which this pass does not). *)

val optimize_coupled :
  ?seg_len:float ->
  ?kmax:int ->
  ?retries:int ->
  ?pruning:[ `Predictive | `Predictive_power | `Sweep_only ] ->
  algorithm ->
  lib:Tech.Buffer.t list ->
  Coupling.t ->
  (run * Coupling.t) option
(** The same drivers over an explicit-coupling annotation
    ([Coupling.annotate] / [Extract.annotate]): the annotation is
    segmented density-preservingly, optimized, and returned re-keyed onto
    the buffered tree — ready for multi-aggressor verification with
    [Noisesim.Verify.net ~density]. *)
