(** Simultaneous wire sizing and buffer insertion (Lillis, Cheng, Lin
    [18] — the generalization the paper's Algorithm 3 builds on).

    Every wire may be drawn at any width from a discrete menu; widening
    divides resistance by the width while growing the area component of
    capacitance ({!Rctree.Tree.resize_wire}). The DP engine explores the
    width menu per wire alongside buffer choices, keeping the usual
    (load, slack) pruning, so the combination stays optimal for a single
    buffer type and exact-delay objectives. *)

type result = {
  slack : float;
  placements : Rctree.Surgery.placement list;
  sizes : (int * float) list;  (** node of the resized parent wire, width *)
  count : int;  (** buffers inserted *)
}

val default_widths : float list
(** [1x, 2x, 4x] minimum width. *)

val run :
  ?widths:float list ->
  ?area_frac:float ->
  noise:bool ->
  lib:Tech.Buffer.t list ->
  Rctree.Tree.t ->
  result option
(** Maximize source slack choosing both buffer locations and wire widths;
    with [noise] the Devgan constraints apply as in Algorithm 3. [None]
    only in noise mode when no combination satisfies the margins. *)

val apply_sizes : ?area_frac:float -> Rctree.Tree.t -> (int * float) list -> Rctree.Tree.t
(** Rebuild the tree with the chosen widths (before applying buffer
    placements — node ids are preserved). *)

val evaluate : ?area_frac:float -> Rctree.Tree.t -> result -> Eval.report
(** [apply_sizes] then [Eval.apply] on the placements. *)
