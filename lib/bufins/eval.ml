type report = {
  tree : Rctree.Tree.t;
  buffers : int;
  slack : float;
  worst_delay : float;
  noise_violations : (int * float * float) list;
  worst_noise_ratio : float;
}

let of_tree tree =
  let leaves = Noise.leaf_noise tree in
  {
    tree;
    buffers = Rctree.Tree.buffer_count tree;
    slack = Elmore.slack tree;
    worst_delay = Elmore.worst_delay tree;
    noise_violations = List.filter (fun (_, noise, m) -> noise > m +. 1e-9) leaves;
    worst_noise_ratio =
      List.fold_left (fun acc (_, noise, m) -> Float.max acc (noise /. m)) 0.0 leaves;
  }

let apply tree placements = of_tree (Rctree.Surgery.apply tree placements)

let noise_clean r = r.noise_violations = []
