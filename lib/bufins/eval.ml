type report = {
  tree : Rctree.Tree.t;
  buffers : int;
  slack : float;
  worst_delay : float;
  noise_violations : (int * float * float) list;
  worst_noise_ratio : float;
}

(* A zero (or denormal, or negative) margin makes [noise /. m] overflow
   to inf — or produce nan when the noise is also zero, and a nan
   poisons the Float.max fold. Define the ratio directly there: any
   noise against a degenerate margin is an unbounded violation; no
   noise satisfies even a zero margin. *)
let noise_ratio noise m =
  if m >= Float.min_float then noise /. m else if noise > 0.0 then Float.infinity else 0.0

let of_tree tree =
  let leaves = Noise.leaf_noise tree in
  {
    tree;
    buffers = Rctree.Tree.buffer_count tree;
    slack = Elmore.slack tree;
    worst_delay = Elmore.worst_delay tree;
    noise_violations = List.filter (fun (_, noise, m) -> noise > m +. 1e-9) leaves;
    worst_noise_ratio =
      List.fold_left (fun acc (_, noise, m) -> Float.max acc (noise_ratio noise m)) 0.0 leaves;
  }

let apply tree placements = of_tree (Rctree.Surgery.apply tree placements)

let noise_clean r = r.noise_violations = []
