type t = { result : Dp.result; timing_met : bool }

let problem3 ?pruning ?memo ~kmax ~lib tree =
  let outcome = Alg3.by_count ?pruning ?memo ~kmax ~lib tree in
  let candidates =
    Array.to_list outcome.Dp.by_count |> List.filter_map (fun r -> r)
  in
  match candidates with
  | [] -> None
  | _ -> (
      let timing = List.filter (fun (r : Dp.result) -> r.Dp.slack >= 0.0) candidates in
      match timing with
      | _ :: _ ->
          (* fewest buffers meeting timing; slack breaks ties *)
          let best =
            List.fold_left
              (fun (acc : Dp.result) (r : Dp.result) ->
                if
                  r.Dp.count < acc.Dp.count
                  || (r.Dp.count = acc.Dp.count && r.Dp.slack > acc.Dp.slack)
                then r
                else acc)
              (List.hd timing) (List.tl timing)
          in
          Some { result = best; timing_met = true }
      | [] ->
          (* timing unreachable: fall back to the maximum-slack solution *)
          let best =
            List.fold_left
              (fun (acc : Dp.result) (r : Dp.result) ->
                if
                  r.Dp.slack > acc.Dp.slack
                  || (r.Dp.slack = acc.Dp.slack && r.Dp.count < acc.Dp.count)
                then r
                else acc)
              (List.hd candidates) (List.tl candidates)
          in
          Some { result = best; timing_met = false })

type algorithm =
  | Buffopt
  | Delayopt of int
  | Alg3_max_slack
  | Vangin_max_slack
  | Power_bounded of float

type run = {
  report : Eval.report;
  placements : Rctree.Surgery.placement list;
  count : int;
  predicted_slack : float;
  energy : float;
  segmented : Rctree.Tree.t;
  stats : Dp.stats;
}

let solve_segmented ?kmax:(km = 16) ?pruning ?memo algorithm ~lib seg =
  match algorithm with
  | Buffopt -> (
      match problem3 ?pruning ?memo ~kmax:km ~lib seg with
      | Some p -> Some p.result
      | None ->
          (* the net may simply need more than kmax buffers: fall back
             to the unbounded Problem 2 search before giving up *)
          Alg3.run ?pruning ?memo ~lib seg)
  | Delayopt k -> Some (Vangin.run_max ?pruning ?memo ~max_buffers:k ~lib seg)
  | Alg3_max_slack -> Alg3.run ?pruning ?memo ~lib seg
  | Vangin_max_slack -> Some (Vangin.run ?pruning ?memo ~lib seg)
  | Power_bounded budget -> Some (Vangin.run_power ?pruning ?memo ~budget ~kmax:km ~lib seg)

let optimize ?(seg_len = 500e-6) ?(kmax = 16) ?(retries = 2) ?pruning algorithm ~lib tree =
  let rec attempt seg_len retries =
    let seg = Rctree.Segment.refine tree ~max_len:seg_len in
    match solve_segmented ~kmax ?pruning algorithm ~lib seg with
    | Some (r : Dp.result) ->
        Some
          {
            report = Eval.apply seg r.Dp.placements;
            placements = r.Dp.placements;
            count = r.Dp.count;
            predicted_slack = r.Dp.slack;
            energy = r.Dp.energy;
            segmented = seg;
            stats = r.Dp.stats;
          }
    | None -> if retries > 0 then attempt (seg_len /. 2.0) (retries - 1) else None
  in
  attempt seg_len retries

let optimize_prepared ?kmax ?pruning ?memo algorithm ~lib seg =
  match solve_segmented ?kmax ?pruning ?memo algorithm ~lib seg with
  | Some (r : Dp.result) ->
      Some
        {
          report = Eval.apply seg r.Dp.placements;
          placements = r.Dp.placements;
          count = r.Dp.count;
          predicted_slack = r.Dp.slack;
          energy = r.Dp.energy;
          segmented = seg;
          stats = r.Dp.stats;
        }
  | None -> None

let placements_energy ps =
  List.fold_left
    (fun acc (p : Rctree.Surgery.placement) -> acc +. p.Rctree.Surgery.buffer.Tech.Buffer.energy)
    0.0 ps

let downsize ?slack_floor ~lib (run : run) =
  let floor =
    match slack_floor with Some f -> f | None -> Float.min run.report.Eval.slack 0.0
  in
  let ratio_cap = Float.max run.report.Eval.worst_noise_ratio 1.0 in
  let admissible (rep : Eval.report) =
    rep.Eval.slack >= floor && rep.Eval.worst_noise_ratio <= ratio_cap
  in
  (* same-polarity strictly-cheaper replacements, cheapest first *)
  let shrink_lib (b : Tech.Buffer.t) =
    List.filter
      (fun (c : Tech.Buffer.t) ->
        c.Tech.Buffer.inverting = b.Tech.Buffer.inverting
        && c.Tech.Buffer.energy < b.Tech.Buffer.energy)
      lib
    |> List.sort (fun (a : Tech.Buffer.t) (b : Tech.Buffer.t) ->
           Float.compare a.Tech.Buffer.energy b.Tech.Buffer.energy)
  in
  (* candidate edits at position [j], most energy saved first: drop the
     buffer outright (only when non-inverting — removal must not flip
     downstream signal polarity), then swap in each cheaper buffer *)
  let moves ps j =
    let p = List.nth ps j in
    let removal =
      if p.Rctree.Surgery.buffer.Tech.Buffer.inverting then []
      else [ List.filteri (fun k _ -> k <> j) ps ]
    in
    let shrinks =
      List.map
        (fun b ->
          List.mapi (fun k q -> if k = j then { q with Rctree.Surgery.buffer = b } else q) ps)
        (shrink_lib p.Rctree.Surgery.buffer)
    in
    removal @ shrinks
  in
  let rec fix ps rep =
    (* visit the most energy-hungry buffers first *)
    let order =
      List.mapi (fun j (p : Rctree.Surgery.placement) -> (j, p.Rctree.Surgery.buffer)) ps
      |> List.stable_sort (fun (_, a) (_, b) ->
             Float.compare b.Tech.Buffer.energy a.Tech.Buffer.energy)
      |> List.map fst
    in
    let rec scan = function
      | [] -> None
      | j :: rest -> (
          let rec first = function
            | [] -> None
            | ps' :: more ->
                let rep' = Eval.apply run.segmented ps' in
                if admissible rep' then Some (ps', rep') else first more
          in
          match first (moves ps j) with Some hit -> Some hit | None -> scan rest)
    in
    match scan order with Some (ps', rep') -> fix ps' rep' | None -> (ps, rep)
  in
  let ps, rep = fix run.placements run.report in
  {
    run with
    report = rep;
    placements = ps;
    count = List.length ps;
    energy = placements_energy ps;
  }

let optimize_coupled ?(seg_len = 500e-6) ?(kmax = 16) ?(retries = 2) ?pruning algorithm ~lib ann
    =
  let rec attempt seg_len retries =
    let seg_ann = Coupling.refine ann ~max_len:seg_len in
    let seg = Coupling.tree seg_ann in
    match solve_segmented ~kmax ?pruning algorithm ~lib seg with
    | Some (r : Dp.result) ->
        let buffered = Coupling.buffered seg_ann r.Dp.placements in
        Some
          ( {
              report = Eval.of_tree (Coupling.tree buffered);
              placements = r.Dp.placements;
              count = r.Dp.count;
              predicted_slack = r.Dp.slack;
              energy = r.Dp.energy;
              segmented = seg;
              stats = r.Dp.stats;
            },
            buffered )
    | None -> if retries > 0 then attempt (seg_len /. 2.0) (retries - 1) else None
  in
  attempt seg_len retries
