let run ?pruning ~lib tree = (Dp.run ?pruning ~noise:true ~mode:Dp.Single ~lib tree).Dp.best

let by_count ?pruning ~kmax ~lib tree =
  Dp.run ?pruning ~noise:true ~mode:(Dp.Per_count kmax) ~lib tree
