let run ~lib tree = (Dp.run ~noise:true ~mode:Dp.Single ~lib tree).Dp.best

let by_count ~kmax ~lib tree = Dp.run ~noise:true ~mode:(Dp.Per_count kmax) ~lib tree
