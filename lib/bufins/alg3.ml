let run ?pruning ?memo ~lib tree =
  (Dp.run ?pruning ?memo ~noise:true ~mode:Dp.Single ~lib tree).Dp.best

let by_count ?pruning ?memo ~kmax ~lib tree =
  Dp.run ?pruning ?memo ~noise:true ~mode:(Dp.Per_count kmax) ~lib tree
