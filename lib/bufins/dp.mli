(** The Van Ginneken dynamic-programming engine and its extensions.

    One engine implements four of the paper's optimizers:

    - Van Ginneken [31] (Figs. 4-5): maximize source slack under Elmore
      delay, buffers at feasible internal nodes — [noise = false].
    - Algorithm 3 (Figs. 10-11): the same DP where a buffer (or the
      driver) is {e never} attached to a candidate whose noise constraint
      it would violate, and candidates whose noise slack goes negative
      are dropped as unrecoverable — [noise = true]. Optimal for a
      single-buffer library under Theorem 5's assumptions.
    - The Lillis indexed extension [18]: candidate lists bucketed by the
      exact number of inserted buffers — [mode = Per_count kmax] — used
      by BuffOpt for Problem 3 and by DelayOpt(k) (Tables III/IV).
    - Inverting-buffer polarity tracking [18]: candidates carry the
      parity of inversions below; merges require equal parity and the
      root accepts only parity-0 candidates.

    Candidates are pruned by (load, slack) dominance within a
    (parity, bucket) group, exactly the paper's pruning (Theorem 5 shows
    the noise fields need not participate). *)

type mode =
  | Single  (** one candidate list per parity; unbounded buffer count *)
  | Per_count of int  (** lists indexed by exact buffer count [0..kmax] *)

type result = {
  slack : float;  (** optimized source slack, eq. (5) *)
  placements : Rctree.Surgery.placement list;
  sizes : (int * float) list;  (** wire-width choices when sizing is enabled *)
  count : int;
  candidates_seen : int;  (** surviving candidate population, summed over nodes (Ablation B) *)
}

type outcome = {
  best : result option;  (** highest-slack solution over all counts *)
  by_count : result option array;  (** [Per_count]: best per exact count; [Single]: singleton *)
  seen : int;
}

val run :
  ?prune:bool ->
  ?widths:float list ->
  ?area_frac:float ->
  noise:bool ->
  mode:mode ->
  lib:Tech.Buffer.t list ->
  Rctree.Tree.t ->
  outcome
(** Raises [Invalid_argument] on an empty library or a tree that already
    contains buffers. With [noise = true], [best = None] means no
    noise-feasible solution exists at the given segmenting (the paper's
    remedy: segment finer or extend the library; see
    [Buffopt.optimize]). [prune] (default true) disables candidate
    pruning when false — exponential; only for Ablation B on small
    trees. [widths] (multiples of minimum width, default [[1.]])
    enables simultaneous wire sizing per {!Rctree.Tree.resize_wire} with
    the given [area_frac] (default 0.4); chosen widths are reported in
    [result.sizes] and applied with {!Wiresize.apply_sizes}. *)
