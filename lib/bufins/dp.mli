(** The Van Ginneken dynamic-programming engine and its extensions.

    One engine implements four of the paper's optimizers:

    - Van Ginneken [31] (Figs. 4-5): maximize source slack under Elmore
      delay, buffers at feasible internal nodes — [noise = false].
    - Algorithm 3 (Figs. 10-11): the same DP where a buffer (or the
      driver) is {e never} attached to a candidate whose noise constraint
      it would violate, and candidates whose noise slack goes negative
      are dropped as unrecoverable — [noise = true]. Optimal for a
      single-buffer library under Theorem 5's assumptions.
    - The Lillis indexed extension [18]: candidate lists bucketed by the
      exact number of inserted buffers — [mode = Per_count kmax] — used
      by BuffOpt for Problem 3 and by DelayOpt(k) (Tables III/IV).
    - Inverting-buffer polarity tracking [18]: candidates carry the
      parity of inversions below; merges require equal parity and the
      root accepts only parity-0 candidates.

    Candidate groups — one per (parity, bucket) — are {!Frontier}s kept
    sorted by load end-to-end, so pruning is a linear sweep and branch
    merging the linear Van Ginneken walk. Delay mode prunes on
    (load, slack) dominance; noise mode prunes on the full
    (load, slack, current, noise-slack) dominance and merges branch
    pairings exhaustively, because a candidate or pairing off the
    (load, slack) frontier can carry the only noise slack that survives
    the upstream wires (see {!Candidate.dominates_full}).

    Candidates are flat float records whose solutions live in a per-run
    {!Trace} arena; placement lists are reconstructed only for the
    winning root candidates, so [result] still exposes eager placement
    and sizing lists while the DP itself never copies a solution. *)

type mode =
  | Single  (** one candidate list per parity; unbounded buffer count *)
  | Per_count of int  (** lists indexed by exact buffer count [0..kmax] *)
  | Power_bounded of { budget : float; kmax : int }
      (** power mode (DESIGN.md §16): maximize slack subject to a total
          buffer-energy [budget] (J). Bucketed by exact count like
          [Per_count kmax]; the energy coordinate joins the dominance
          relation (3-axis in delay mode, 5-axis in noise mode), branch
          merges go exhaustive (a pairing off the (c, q) frontier can be
          the only budget-feasible one), and insertions come from each
          source group's (slack, energy) Pareto staircase. Over-budget
          candidates are discarded before materialization and counted in
          [power_pruned]. *)

type mutation =
  | Cq_noise_prune
      (** noise-mode frontiers pruned on (load, slack) only, with the
          linear delay-mode branch walk — the exact defect PR 1 fixed
          (see DESIGN.md §8): the engine can report infeasibility, or a
          sub-optimal slack, on nets brute force solves *)
  | No_attach_guard
      (** buffers and the source driver attach to candidates without the
          noise check of Figs. 10-11, so returned "noise-clean" solutions
          can violate margins *)
  | Loose_pred_bound
      (** the predictive upstream-resistance bound ({!Rctree.Upbound})
          inflated by 25%: the slope rule over-prunes, killing candidates
          that could still win, so predictive outcomes drift from the
          [`Sweep_only] reference — the bug class the pred-vs-sweep
          oracle exists to catch *)
  | Stale_memo
      (** incremental edits invalidate only the edited node, not its
          ancestors ({!Memo.dirty_node} instead of {!Memo.dirty}), so
          stale ancestor tables survive into the next run — the bug
          class the incremental-vs-scratch oracle exists to catch. No
          effect on {!run} itself; applied by the oracle's replay
          harness. *)
  | Bad_power_bound
      (** the power budget the engine enforces inflated by 25%
          ([loose_bound_factor]): [Power_bounded] runs accept solutions
          whose total buffer energy exceeds the requested budget — the
          bug class the power-vs-brute and power-monotonicity oracles
          exist to catch. No effect outside power mode. *)
(** Deliberately broken engine variants for verifying the verifier:
    [Check.Diff] and [buffopt fuzz --mutate] run campaigns against a
    mutated engine and must catch it (the mutation smoke of DESIGN.md
    §10). Never used by the production drivers. *)

(** Cross-run memo for incremental re-optimization (the serve daemon's
    core; DESIGN.md §14). Holds the per-edge DP tables ([above c] — the
    complete candidate summary of [c]'s subtree) plus a resident
    solution-trace arena. [run ?memo] reuses every cached table whose
    subtree is untouched and whose predictive climb bound is unchanged,
    so after a single-sink edit only the path from the edit to the root
    is recomputed, with cached sibling tables spliced into the merges.
    The DP is deterministic, so incremental outcomes are byte-identical
    to a scratch recompute — the invariant the incremental-vs-scratch
    oracle enforces.

    Contract: after every edit at node [v] (sink RAT, parent-wire
    values) call [dirty memo tree v] before the next [run ?memo]. Edits
    that change node ids or topology (resegmenting) need [clear] — the
    config stamp also catches them, as it does any change of mode /
    noise / pruning / widths / library. One memo serves one net. *)
module Memo : sig
  type t

  val create : unit -> t

  val dirty : t -> Rctree.Tree.t -> int -> unit
  (** Forget node [v]'s cached table and every ancestor's — the tables
      whose subtrees contain [v]. *)

  val dirty_node : t -> int -> unit
  (** Forget only [v]'s own table, leaving stale ancestors in place:
      the {!Stale_memo} mutation. Never correct in production. *)

  val clear : t -> unit
  (** Drop every entry and the resident arena. *)

  val stored : t -> int
  (** Entries currently cached. *)

  val hits : t -> int
  (** Lifetime count of cached tables reused by [run ?memo]. *)

  val misses : t -> int
  (** Lifetime count of tables computed and stored by [run ?memo]. *)
end

type stats = {
  generated : int;
      (** candidates materialized: sink seeds, wire climbs (one per
          width), branch-merge pairings and buffer insertions that were
          actually allocated. Predictive pruning kills candidates {e
          before} this point; they are counted in [pred_pruned] only. *)
  pruned : int;
      (** materialized candidates discarded afterwards: dominance sweeps
          plus noise-mode drops of candidates whose noise slack went
          negative *)
  pred_pruned : int;
      (** candidates the predictive engine discarded before
          materialization (DESIGN.md §12): no record, no arena node.
          Always 0 under [`Sweep_only], in noise mode, with
          [prune = false], and in power mode under the default
          [`Predictive] (the extended kill needs [`Predictive_power]). *)
  power_pruned : int;
      (** would-be candidates the power budget discarded before
          materialization (over-budget insertions and branch-merge
          pairings; DESIGN.md §16). Always 0 outside [Power_bounded]. *)
  peak_width : int;
      (** widest single (parity, bucket) frontier observed at any node —
          the engine's working-set measure *)
  type_widths : int array;
      (** per-buffer-type peak populations, indexed like the library: the
          most candidates headed by each buffer type ({!Trace.top_buffer})
          seen in any one (parity, bucket) group at an insertion site —
          the widths of Li & Shi's per-type lists *)
  arena : int;
      (** solution-trace arena nodes recorded this run (DESIGN.md §11):
          one per buffer insertion, branch-merge pairing and wire-sizing
          decision that was actually materialized. Under [?memo] this is
          the run's delta into the resident arena. *)
  minor_words : float;
      (** words this domain allocated on the minor heap during the run
          ([Gc.minor_words] delta — domain-local, so concurrent domains
          in a batch never contaminate it; winner reconstruction
          included). Deterministic for a given instance, independent of
          the batch engine's domain count. *)
  major_words : float;
      (** words allocated directly on or promoted to the major heap
          during the run; depends on GC timing, so it is reported but
          kept out of anything that must be deterministic (e.g.
          [Engine.signature]) *)
}

type result = {
  slack : float;  (** optimized source slack, eq. (5) *)
  placements : Rctree.Surgery.placement list;
  sizes : (int * float) list;  (** wire-width choices when sizing is enabled *)
  count : int;
  energy : float;
      (** total switching energy of the solution's buffers, J
          ({!Trace.energy} of the winning candidate) — reported in every
          mode, an objective only in [Power_bounded] *)
  stats : stats;  (** whole-run engine statistics (shared by all results) *)
}

type outcome = {
  best : result option;  (** highest-slack solution over all counts *)
  by_count : result option array;  (** [Per_count]: best per exact count; [Single]: singleton *)
  stats : stats;
}

val considered : stats -> int
(** [generated + pred_pruned + power_pruned]: every candidate the run
    looked at, materialized or not — the figure comparable across
    pruning modes. *)

val survivors : stats -> int
(** [generated - pruned]: materialized candidates still alive when the
    run ended. The conservation identity the dp-invariants oracle
    checks is
    [considered = survivors + pruned + pred_pruned + power_pruned]. *)

val run :
  ?prune:bool ->
  ?pruning:[ `Predictive | `Predictive_power | `Sweep_only ] ->
  ?widths:float list ->
  ?area_frac:float ->
  ?mutation:mutation ->
  ?memo:Memo.t ->
  noise:bool ->
  mode:mode ->
  lib:Tech.Buffer.t list ->
  Rctree.Tree.t ->
  outcome
(** Raises [Invalid_argument] on an empty library or a tree that already
    contains buffers. With [noise = true], [best = None] means no
    noise-feasible solution exists at the given segmenting (the paper's
    remedy: segment finer or extend the library; see
    [Buffopt.optimize]). [prune] (default true) disables candidate
    pruning when false — exponential; only for Ablation B on small
    trees (the branch merge then falls back to the linear walk in both
    modes, matching the pruned delay-mode exploration). [pruning]
    (default [`Predictive]) selects the Li & Shi predictive engine:
    wire climbs, branch-merge pairings and buffer insertions are
    pre-checked against the node's {!Rctree.Upbound} slope bound and
    discarded before materialization (DESIGN.md §12). Every outcome —
    slacks, placements, sizes, by_count — is byte-identical to
    [`Sweep_only]; only [generated]/[pred_pruned]/[pruned]/[arena] and
    allocation figures move. Predictive pruning is automatically off
    (and [pred_pruned = 0]) in noise mode and under [prune = false],
    where the slope argument does not apply — and in [Power_bounded]
    mode under the default [`Predictive], where the classic kill
    ignores the energy axis. [`Predictive_power] opts into the
    power-extended kill (the witness must also weakly dominate on
    energy; {!Candidate.pred_kills_power}) at the climb and insertion
    sites; branch merges stay exhaustive in power mode either way.
    Outside power mode [`Predictive_power] behaves exactly like
    [`Predictive]. [widths] (multiples of
    minimum width, default [[1.]]) enables simultaneous wire sizing per
    {!Rctree.Tree.resize_wire} with the given [area_frac] (default
    0.4); chosen widths are reported in [result.sizes] and applied with
    {!Wiresize.apply_sizes}. *)
