module T = Rctree.Tree

type t = {
  c : float;
  q : float;
  i : float;
  ns : float;
  parity : int;
  count : int;
  sol : Rctree.Surgery.placement list;
  sizes : (int * float) list;
}

let of_sink (s : T.sink) =
  { c = s.T.c_sink; q = s.T.rat; i = 0.0; ns = s.T.nm; parity = 0; count = 0; sol = []; sizes = [] }

let add_wire (w : T.wire) a =
  {
    a with
    c = a.c +. w.T.cap;
    q = a.q -. (w.T.res *. ((w.T.cap /. 2.0) +. a.c));
    i = a.i +. w.T.cur;
    ns = a.ns -. (w.T.res *. (a.i +. (w.T.cur /. 2.0)));
  }

let add_buffer ~at (b : Tech.Buffer.t) a =
  {
    c = b.Tech.Buffer.c_in;
    q = a.q -. Tech.Buffer.gate_delay b ~load:a.c;
    i = 0.0;
    ns = b.Tech.Buffer.nm;
    parity = (if b.Tech.Buffer.inverting then 1 - a.parity else a.parity);
    count = a.count + 1;
    sol = { Rctree.Surgery.node = at; dist = 0.0; buffer = b } :: a.sol;
    sizes = a.sizes;
  }

let add_driver (d : T.driver) a = { a with q = a.q -. (d.T.d_drv +. (d.T.r_drv *. a.c)) }

let noise_ok ?(eps = 1e-12) ~r_gate a = r_gate *. a.i <= a.ns +. eps

let merge a b =
  assert (a.parity = b.parity);
  {
    c = a.c +. b.c;
    q = Float.min a.q b.q;
    i = a.i +. b.i;
    ns = Float.min a.ns b.ns;
    parity = a.parity;
    count = a.count + b.count;
    sol = List.rev_append a.sol b.sol;
    sizes = List.rev_append a.sizes b.sizes;
  }

let dominates a b = a.c <= b.c && a.q >= b.q

let dominates_full a b = a.c <= b.c && a.q >= b.q && a.i <= b.i && a.ns >= b.ns

let dominates_noise a b = a.i <= b.i && a.ns >= b.ns && a.count <= b.count

let cmp_frontier a b =
  match Float.compare a.c b.c with
  | 0 -> (
      match Float.compare b.q a.q with
      | 0 -> (
          match Float.compare a.i b.i with 0 -> Float.compare b.ns a.ns | n -> n)
      | n -> n)
  | n -> n

(* Monomorphic fast paths for the DP inner loops. These are the
   {!Frontier} sweeps and the Van Ginneken merge walk instantiated at
   [t] with direct field access — without flambda the generic versions
   pay an indirect call per element, which dominates the engine's run
   time. Property tests pin them against the generic versions. *)

let sweep_delay l =
  let dropped = ref 0 in
  (* input sorted by cmp_frontier; kept is newest-first *)
  let rec go kept = function
    | [] -> (List.rev kept, !dropped)
    | x :: rest -> (
        match kept with
        | k :: tl when k.c = x.c && k.q <= x.q -> (
            (* x retro-dominates the newest survivor (equal load) *)
            incr dropped;
            match tl with
            | k2 :: _ when k2.q >= x.q ->
                incr dropped;
                go tl rest
            | _ -> go (x :: tl) rest)
        | k :: _ when k.q >= x.q ->
            incr dropped;
            go kept rest
        | _ -> go (x :: kept) rest)
  in
  go [] l

let sweep_noise l =
  let dropped = ref 0 in
  let rec dominated x = function
    | [] -> false
    | k :: tl -> dominates_full k x || dominated x tl
  in
  (* equal-load survivors sit at the front of the (reversed) kept list;
     x may retro-dominate some of them *)
  let rec strip_ties x kept =
    match kept with
    | k :: tl when k.c = x.c ->
        let tl = strip_ties x tl in
        if dominates_full x k then begin
          incr dropped;
          tl
        end
        else k :: tl
    | _ -> kept
  in
  let rec go kept = function
    | [] -> (List.rev kept, !dropped)
    | x :: rest ->
        if dominated x kept then begin
          incr dropped;
          go kept rest
        end
        else go (x :: strip_ties x kept) rest
  in
  go [] l

let merge_delay l r =
  (* both inputs sorted by cmp_frontier (load ascending, so slack
     ascending along a pruned frontier); advance the lower-slack side —
     the classic linear merge. Returns the pairing count for stats. *)
  let rec go n acc l r =
    match (l, r) with
    | [], _ | _, [] -> (List.rev acc, n)
    | a :: ltl, b :: rtl ->
        let acc = merge a b :: acc in
        if a.q < b.q then go (n + 1) acc ltl r
        else if b.q < a.q then go (n + 1) acc l rtl
        else go (n + 1) acc ltl rtl
  in
  go 0 [] l r
