module T = Rctree.Tree

(* All seven fields are floats so the record is stored flat (one header
   plus seven unboxed doubles); adding any immediate field would box every
   float behind a pointer and triple the allocation per candidate. meta
   and tr hold small non-negative ints exactly: meta = 2*count + parity,
   tr = the solution's Trace.handle. p is the solution's accumulated
   buffer energy (J); it rides along for free in every mode and becomes a
   pruning axis only in power mode (DESIGN.md §16). *)
type t = { c : float; q : float; i : float; ns : float; p : float; meta : float; tr : float }

let parity a = int_of_float a.meta land 1
let count a = int_of_float a.meta asr 1
let trace a = int_of_float a.tr

let of_sink (s : T.sink) =
  {
    c = s.T.c_sink;
    q = s.T.rat;
    i = 0.0;
    ns = s.T.nm;
    p = 0.0;
    meta = 0.0;
    tr = float_of_int Trace.leaf;
  }

let add_wire (w : T.wire) a =
  {
    a with
    c = a.c +. w.T.cap;
    q = a.q -. (w.T.res *. ((w.T.cap /. 2.0) +. a.c));
    i = a.i +. w.T.cur;
    ns = a.ns -. (w.T.res *. (a.i +. (w.T.cur /. 2.0)));
  }

let add_buffer ~arena ~at (b : Tech.Buffer.t) a =
  (* meta + 2 bumps the count; the xor flips the parity bit only *)
  let m = int_of_float a.meta + 2 in
  let m = if b.Tech.Buffer.inverting then m lxor 1 else m in
  {
    c = b.Tech.Buffer.c_in;
    q = a.q -. Tech.Buffer.gate_delay b ~load:a.c;
    i = 0.0;
    ns = b.Tech.Buffer.nm;
    p = a.p +. b.Tech.Buffer.energy;
    meta = float_of_int m;
    tr = float_of_int (Trace.buf arena ~node:at ~dist:0.0 ~buffer:b ~pred:(trace a));
  }

let resize ~arena ~node ~width a =
  { a with tr = float_of_int (Trace.resize arena ~node ~width ~pred:(trace a)) }

let add_driver (d : T.driver) a = { a with q = a.q -. (d.T.d_drv +. (d.T.r_drv *. a.c)) }

let noise_ok ?(eps = 1e-12) ~r_gate a = r_gate *. a.i <= a.ns +. eps

let merge ~arena a b =
  assert (parity a = parity b);
  {
    c = a.c +. b.c;
    q = Float.min a.q b.q;
    i = a.i +. b.i;
    ns = Float.min a.ns b.ns;
    p = a.p +. b.p;
    (* counts add, the shared parity must not be counted twice *)
    meta = a.meta +. b.meta -. float_of_int (parity a);
    tr = float_of_int (Trace.join arena ~left:(trace a) ~right:(trace b));
  }

let dominates a b = a.c <= b.c && a.q >= b.q

let dominates_full a b = a.c <= b.c && a.q >= b.q && a.i <= b.i && a.ns >= b.ns

let dominates_noise a b = a.i <= b.i && a.ns >= b.ns && count a <= count b

let cmp_frontier a b =
  match Float.compare a.c b.c with
  | 0 -> (
      match Float.compare b.q a.q with
      | 0 -> (
          match Float.compare a.i b.i with 0 -> Float.compare b.ns a.ns | n -> n)
      | n -> n)
  | n -> n

(* Power-mode relations (DESIGN.md §16). These extend the delay / noise
   dominance with the energy axis; they live beside — never instead of —
   the classic relations so that power-off runs execute byte-identical
   code paths. *)

let dominates_power a b = a.c <= b.c && a.q >= b.q && a.p <= b.p

let dominates_full_power a b =
  a.c <= b.c && a.q >= b.q && a.i <= b.i && a.ns >= b.ns && a.p <= b.p

let cmp_frontier_power a b =
  match cmp_frontier a b with 0 -> Float.compare a.p b.p | n -> n

(* Monomorphic fast paths for the DP inner loops. These are the
   {!Frontier} sweeps and the Van Ginneken merge walk instantiated at
   [t] with direct field access — without flambda the generic versions
   pay an indirect call per element, which dominates the engine's run
   time. Property tests pin them against the generic versions. *)

let sweep_delay l =
  let dropped = ref 0 in
  (* input sorted by cmp_frontier; kept is newest-first *)
  let rec go kept = function
    | [] -> (List.rev kept, !dropped)
    | x :: rest -> (
        match kept with
        | k :: tl when k.c = x.c && k.q <= x.q -> (
            (* x retro-dominates the newest survivor (equal load) *)
            incr dropped;
            match tl with
            | k2 :: _ when k2.q >= x.q ->
                incr dropped;
                go tl rest
            | _ -> go (x :: tl) rest)
        | k :: _ when k.q >= x.q ->
            incr dropped;
            go kept rest
        | _ -> go (x :: kept) rest)
  in
  go [] l

let sweep_noise l =
  let dropped = ref 0 in
  let rec dominated x = function
    | [] -> false
    | k :: tl -> dominates_full k x || dominated x tl
  in
  (* equal-load survivors sit at the front of the (reversed) kept list;
     x may retro-dominate some of them *)
  let rec strip_ties x kept =
    match kept with
    | k :: tl when k.c = x.c ->
        let tl = strip_ties x tl in
        if dominates_full x k then begin
          incr dropped;
          tl
        end
        else k :: tl
    | _ -> kept
  in
  let rec go kept = function
    | [] -> (List.rev kept, !dropped)
    | x :: rest ->
        if dominated x kept then begin
          incr dropped;
          go kept rest
        end
        else go (x :: strip_ties x kept) rest
  in
  go [] l

(* Power-mode sweeps. The 5-axis noise sweep scans each survivor list
   for dominance, exactly like [sweep_noise] — quadratic per group. *)

let sweep_power_gen dom l =
  let dropped = ref 0 in
  let rec dominated x = function [] -> false | k :: tl -> dom k x || dominated x tl in
  let rec strip_ties x kept =
    match kept with
    | k :: tl when k.c = x.c ->
        let tl = strip_ties x tl in
        if dom x k then begin
          incr dropped;
          tl
        end
        else k :: tl
    | _ -> kept
  in
  let rec go kept = function
    | [] -> (List.rev kept, !dropped)
    | x :: rest ->
        if dominated x kept then begin
          incr dropped;
          go kept rest
        end
        else go (x :: strip_ties x kept) rest
  in
  go [] l

let sweep_noise_power l = sweep_power_gen dominates_full_power l

module FM = Map.Make (Float)

(* The 3-axis delay-power sweep is O(n log n), not quadratic: the input
   is sorted by [cmp_frontier_power], so every already-kept candidate
   has load <= the current one and only the (q, p) axes remain. Those
   survivors form a staircase — p strictly increases with q among
   mutually non-dominated (q, p) points — kept in a map from q to the
   cheapest p seen at or above that q. A candidate is dominated iff the
   staircase point with the smallest q >= its own carries p <= its own;
   a kept candidate evicts the staircase points it (q, p)-dominates.
   Dominated-but-kept duplicates in (c, q) with off-order p (possible
   when the i / ns tie-breaks interleave) are retained — harmless for
   exactness, they are weakly dominated and never extend the frontier. *)
let sweep_delay_power l =
  let dropped = ref 0 in
  let stairs = ref FM.empty in
  let keep (x : t) =
    let dominated =
      match FM.find_first_opt (fun q -> q >= x.q) !stairs with
      | Some (_, p) -> p <= x.p
      | None -> false
    in
    if dominated then begin
      incr dropped;
      false
    end
    else begin
      let rec purge m =
        match FM.find_last_opt (fun q -> q <= x.q) m with
        | Some (q, p) when p >= x.p -> purge (FM.remove q m)
        | _ -> m
      in
      stairs := FM.add x.q x.p (purge !stairs);
      true
    end
  in
  let kept = List.filter keep l in
  (kept, !dropped)

(* Exact delay-power branch merge (DESIGN.md §16), avoiding the full
   |L| x |R| pairing walk. Both inputs are 3-axis frontiers; the merged
   slack is [min qa qb], so walking one side in descending q while the
   other side's already-passed (q >=) members are folded into a (c, p)
   staircase enumerates a superset of the merged frontier: a pairing
   with an off-staircase partner is weakly dominated by the same
   pairing through the staircase member that (c, p)-covers it, at equal
   or better merged q. Two passes — L against R's staircase (q ties
   included), then R against L's strictly-above staircase — see every
   pairing that can matter exactly once. [emit] receives (left, right)
   in frontier order. *)
let merge_delay_power ~emit lgroup rgroup =
  let byq_desc = List.stable_sort (fun (a : t) (b : t) -> Float.compare b.q a.q) in
  let pass ~strict walk prefix emit_pair =
    let prefix = Array.of_list (byq_desc prefix) in
    let n = Array.length prefix in
    let stair = ref FM.empty in
    let add (b : t) =
      let dominated =
        match FM.find_last_opt (fun c -> c <= b.c) !stair with
        | Some (_, (k : t)) -> k.p <= b.p
        | None -> false
      in
      if not dominated then begin
        let rec purge m =
          match FM.find_first_opt (fun c -> c >= b.c) m with
          | Some (c, (k : t)) when k.p >= b.p -> purge (FM.remove c m)
          | _ -> m
        in
        stair := FM.add b.c b (purge !stair)
      end
    in
    let j = ref 0 in
    List.iter
      (fun (a : t) ->
        let ahead (b : t) = if strict then b.q > a.q else b.q >= a.q in
        while !j < n && ahead prefix.(!j) do
          add prefix.(!j);
          incr j
        done;
        FM.iter (fun _ b -> emit_pair a b) !stair)
      (byq_desc walk)
  in
  pass ~strict:false lgroup rgroup (fun a b -> emit a b);
  pass ~strict:true rgroup lgroup (fun b a -> emit a b)

let merge_sweep_delay runs =
  (* = sweep_delay (Frontier.merge_sorted cmp_frontier runs), with the
     merged intermediate never materialized: a k-way selection on the
     run heads feeds the staircase push directly. Ties go to the
     earliest run — exactly the order the stable balanced pairwise
     List.merge produces — so the survivors (and their trace handles)
     are identical to the unfused composition. *)
  let runs = Array.of_list runs in
  let n = Array.length runs in
  let dropped = ref 0 in
  let pop () =
    let best = ref (-1) in
    for j = 0 to n - 1 do
      match runs.(j) with
      | [] -> ()
      | x :: _ -> (
          if !best < 0 then best := j
          else
            match runs.(!best) with
            | y :: _ -> if cmp_frontier x y < 0 then best := j
            | [] -> assert false)
    done;
    match !best with
    | -1 -> None
    | j -> (
        match runs.(j) with
        | x :: tl ->
            runs.(j) <- tl;
            Some x
        | [] -> assert false)
  in
  let push kept x =
    match kept with
    | k :: tl when k.c = x.c && k.q <= x.q -> (
        incr dropped;
        match tl with
        | k2 :: _ when k2.q >= x.q ->
            incr dropped;
            tl
        | _ -> x :: tl)
    | k :: _ when k.q >= x.q ->
        incr dropped;
        kept
    | _ -> x :: kept
  in
  let rec go kept = match pop () with None -> (List.rev kept, !dropped) | Some x -> go (push kept x) in
  go []

let splice_delay group cands =
  (* = sweep_delay (List.merge cmp_frontier group cands) when [group] is
     already a swept staircase (strictly increasing c and q — every
     group between sweeps is). Once [cands] is exhausted and the newest
     survivor can neither be retro-killed by nor dominate the next group
     element, the rest of the staircase is final and is returned as-is:
     the common case (a few buffer insertions near the front of a wide
     frontier) shares almost the whole group tail instead of re-consing
     it. Drop counting is identical to the unfused composition. *)
  let dropped = ref 0 in
  let push kept x =
    match kept with
    | k :: tl when k.c = x.c && k.q <= x.q -> (
        incr dropped;
        match tl with
        | k2 :: _ when k2.q >= x.q ->
            incr dropped;
            tl
        | _ -> x :: tl)
    | k :: _ when k.q >= x.q ->
        incr dropped;
        kept
    | _ -> x :: kept
  in
  let rec go kept g c =
    match c with
    | [] -> finish kept g
    | x :: ctl -> (
        match g with
        | [] -> go (push kept x) [] ctl
        | y :: gtl ->
            if cmp_frontier y x <= 0 then go (push kept y) gtl c
            else go (push kept x) g ctl)
  and finish kept g =
    match g with
    | [] -> (List.rev kept, !dropped)
    | y :: gtl -> (
        match kept with
        | k :: _ when k.c = y.c -> finish (push kept y) gtl
        | k :: _ when k.q >= y.q ->
            incr dropped;
            finish kept gtl
        | _ ->
            (* y survives and, by the staircase invariant, so does all
               of gtl: share the tail *)
            (List.rev_append kept g, !dropped))
  in
  go [] group cands

(* Predictive pruning (Li & Shi; DESIGN.md §12). [bound] is the node's
   {!Rctree.Upbound} value: every upstream operation costs a candidate at
   least [bound] seconds of slack per farad of extra load, so a candidate
   whose slack lead over a lighter same-group candidate is below
   [bound *. dc] can never strictly win at the source and is discarded
   before it is materialized. All three kill sites compare against
   already-emitted candidates of the same (parity, bucket) group, which
   keeps the discard sound and every optimizer outcome byte-identical to
   the sweep-only engine's (the witness either still dominates at the
   source or plainly kills the victim at the next sweep). *)

let pred_kills ~bound (k : t) (x : t) =
  k.q >= x.q || (x.c > k.c && x.q -. k.q < bound *. (x.c -. k.c))

(* Virtual witnesses: the coordinates of the buffer insertions a feasible
   node will splice into this group, computed from the already-built
   source group one bucket down (wc.(i), wq.(i), i < nw). The kill is
   sound even when the insertion itself ends up covered — its killer
   dominates or slope-kills it, and both relations compose — and it is
   deliberately strict on exact (c, q) ties so the trace that survives a
   tie is still decided by the ordinary splice, exactly as in the
   sweep-only engine. *)
let witness_kills ~bound ~wc ~wq ~nw ~c ~q =
  let rec go i =
    i < nw
    && ((wc.(i) < c && q -. wq.(i) < bound *. (c -. wc.(i)))
       || (wc.(i) = c && wq.(i) > q)
       || go (i + 1))
  in
  go 0

let covered ~bound ~c ~q group =
  let rec go = function
    | (k : t) :: tl when k.c <= c ->
        k.q >= q || (c > k.c && q -. k.q < bound *. (c -. k.c)) || go tl
    | _ -> false
  in
  go group

(* Power-extended predictive kills (DESIGN.md §16): a witness may kill a
   victim only when it also weakly dominates on the energy axis
   ([k.p <= x.p]) — upstream buffers add the same energy to either
   candidate, so the witness then completes with no worse slack {e and}
   no worse energy, making the discard sound under a power budget. The
   extension only ever prunes less than the classic rule. *)

let pred_kills_power ~bound (k : t) (x : t) = pred_kills ~bound k x && k.p <= x.p

let covered_power ~bound ~c ~q ~p group =
  let rec go = function
    | (k : t) :: tl when k.c <= c ->
        (k.p <= p && (k.q >= q || (c > k.c && q -. k.q < bound *. (c -. k.c))))
        || go tl
    | _ -> false
  in
  go group

let climb_pred_power ~bound w group =
  let emitted = ref 0 and prekilled = ref 0 in
  let rec go acc = function
    | [] -> (List.rev acc, !emitted, !prekilled)
    | a :: tl -> (
        let x = add_wire w a in
        match acc with
        | k :: _ when pred_kills_power ~bound k x ->
            incr prekilled;
            go acc tl
        | _ ->
            incr emitted;
            go (x :: acc) tl)
  in
  go [] group

let climb_resize_pred_power ~arena ~bound ~node ~width w group =
  let emitted = ref 0 and prekilled = ref 0 in
  let rec go acc = function
    | [] -> (List.rev acc, !emitted, !prekilled)
    | a :: tl -> (
        let x = add_wire w a in
        match acc with
        | k :: _ when pred_kills_power ~bound k x ->
            incr prekilled;
            go acc tl
        | _ ->
            incr emitted;
            go (resize ~arena ~node ~width x :: acc) tl)
  in
  go [] group

let climb_pred ~bound w group =
  let emitted = ref 0 and prekilled = ref 0 in
  let rec go acc = function
    | [] -> (List.rev acc, !emitted, !prekilled)
    | a :: tl -> (
        let x = add_wire w a in
        match acc with
        | k :: _ when pred_kills ~bound k x ->
            incr prekilled;
            go acc tl
        | _ ->
            incr emitted;
            go (x :: acc) tl)
  in
  go [] group

let climb_pred_scan ~bound ~wc ~wq ~nw w group =
  (* [climb_pred] when the climb lands on a feasible single-child node:
     the upcoming buffer insertions act as virtual witnesses (wc, wq),
     and the full climbed list — every [add_wire] result, frontier
     survivor or not — is returned alongside the survivors so the
     insertion scan at the destination sees exactly the population the
     sweep-only engine would scan. A victim never enters the frontier,
     but it can still be the best insertion source; its record and trace
     stay valid because a plain climb records no arena node. *)
  let emitted = ref 0 and prekilled = ref 0 in
  let rec go acc full = function
    | [] -> (List.rev acc, List.rev full, !emitted, !prekilled)
    | a :: tl ->
        let x = add_wire w a in
        let killed =
          (match acc with k :: _ -> pred_kills ~bound k x | [] -> false)
          || witness_kills ~bound ~wc ~wq ~nw ~c:x.c ~q:x.q
        in
        if killed then begin
          incr prekilled;
          go acc (x :: full) tl
        end
        else begin
          incr emitted;
          go (x :: acc) (x :: full) tl
        end
  in
  go [] [] group

let climb_resize_pred ~arena ~bound ~node ~width w group =
  let emitted = ref 0 and prekilled = ref 0 in
  let rec go acc = function
    | [] -> (List.rev acc, !emitted, !prekilled)
    | a :: tl -> (
        let x = add_wire w a in
        match acc with
        | k :: _ when pred_kills ~bound k x ->
            incr prekilled;
            go acc tl
        | _ ->
            incr emitted;
            (* the kill test reads only the coordinates, so the Resize
               arena node is recorded for survivors alone *)
            go (resize ~arena ~node ~width x :: acc) tl)
  in
  go [] group

let merge_sweep_delay_pred ~arena ~bound walks =
  (* The cross-run form of the merge kill: every Van Ginneken pairing
     walk feeding one (parity, bucket) group advances through a single
     k-way selection, and the staircase push — with the slope rule — is
     applied to each pairing's coordinates before [merge] records a Join
     arena node. The kept staircase doubles as the witness index: a
     pairing from one (kl, kr) walk is killed by a lighter pairing from
     any other walk of the same group, which is exactly the population
     the plain [merge_sweep_delay] would have swept after materializing
     everything. Selection order (pairing [cmp_frontier], ties to the
     earliest walk) and the equal-load retro-kill mirror
     [merge_sweep_delay]'s push, so ties between equal-coordinate
     pairings resolve to the same trace as the sweep-only engine; the
     slope rule only fires on strictly heavier pairings, never on ties. *)
  let walks = Array.of_list walks in
  let n = Array.length walks in
  let ls = Array.make n [] and rs = Array.make n [] in
  (* each walk's current head-pairing coordinates, cached flat and
     refreshed only when that walk advances — [pop] runs once per
     pairing over every walk, so recomputing four coordinates per walk
     per call dominated the merge otherwise. [hc = infinity] marks an
     exhausted walk (loads are finite). *)
  let hc = Array.make n infinity
  and hq = Array.make n 0.0
  and hi = Array.make n 0.0
  and hns = Array.make n 0.0 in
  let refill j =
    match (ls.(j), rs.(j)) with
    | (a : t) :: _, (b : t) :: _ ->
        hc.(j) <- a.c +. b.c;
        hq.(j) <- Float.min a.q b.q;
        hi.(j) <- a.i +. b.i;
        hns.(j) <- Float.min a.ns b.ns
    | _ -> hc.(j) <- infinity
  in
  Array.iteri
    (fun j (l, r) ->
      ls.(j) <- l;
      rs.(j) <- r;
      refill j)
    walks;
  let emitted = ref 0 and dropped = ref 0 and prekilled = ref 0 in
  let bq = ref 0.0 and bi = ref 0.0 and bns = ref 0.0 in
  let bc = ref infinity in
  let pop () =
    (* smallest head pairing under cmp_frontier on (c, q, i, ns);
       scanning ascending and replacing only on strictly-better keeps
       ties with the earliest walk *)
    let best = ref (-1) in
    bc := infinity;
    for j = 0 to n - 1 do
      let cf = hc.(j) in
      if cf < !bc then begin
        best := j;
        bc := cf;
        bq := hq.(j);
        bi := hi.(j);
        bns := hns.(j)
      end
      else if cf = !bc && cf < infinity then begin
        let qf = hq.(j) in
        if
          qf > !bq
          || (qf = !bq && (hi.(j) < !bi || (hi.(j) = !bi && hns.(j) > !bns)))
        then begin
          best := j;
          bq := qf;
          bi := hi.(j);
          bns := hns.(j)
        end
      end
    done;
    !best
  in
  let rec go kept =
    let j = pop () in
    if j < 0 then (List.rev kept, !emitted, !dropped, !prekilled)
    else begin
      match (ls.(j), rs.(j)) with
      | (a : t) :: ltl, (b : t) :: rtl -> (
          if a.q < b.q then ls.(j) <- ltl
          else if b.q < a.q then rs.(j) <- rtl
          else begin
            ls.(j) <- ltl;
            rs.(j) <- rtl
          end;
          refill j;
          let cf = !bc and qf = !bq in
          match kept with
          | (k : t) :: tl when k.c = cf && k.q <= qf -> (
              (* the new pairing retro-dominates the newest survivor *)
              incr dropped;
              match tl with
              | (k2 : t) :: _
                when k2.q >= qf || (cf > k2.c && qf -. k2.q < bound *. (cf -. k2.c)) ->
                  incr prekilled;
                  go tl
              | _ ->
                  incr emitted;
                  go (merge ~arena a b :: tl))
          | (k : t) :: _ when k.q >= qf || (cf > k.c && qf -. k.q < bound *. (cf -. k.c))
            ->
              incr prekilled;
              go kept
          | _ ->
              incr emitted;
              go (merge ~arena a b :: kept))
      | _ -> assert false
    end
  in
  go []

let merge_delay ~arena l r =
  (* both inputs sorted by cmp_frontier (load ascending, so slack
     ascending along a pruned frontier); advance the lower-slack side —
     the classic linear merge. Returns the pairing count for stats. *)
  let rec go n acc l r =
    match (l, r) with
    | [], _ | _, [] -> (List.rev acc, n)
    | a :: ltl, b :: rtl ->
        let acc = merge ~arena a b :: acc in
        if a.q < b.q then go (n + 1) acc ltl r
        else if b.q < a.q then go (n + 1) acc l rtl
        else go (n + 1) acc ltl rtl
  in
  go 0 [] l r
