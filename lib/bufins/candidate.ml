module T = Rctree.Tree

(* All six fields are floats so the record is stored flat (one header
   plus six unboxed doubles); adding any immediate field would box every
   float behind a pointer and triple the allocation per candidate. meta
   and tr hold small non-negative ints exactly: meta = 2*count + parity,
   tr = the solution's Trace.handle. *)
type t = { c : float; q : float; i : float; ns : float; meta : float; tr : float }

let parity a = int_of_float a.meta land 1
let count a = int_of_float a.meta asr 1
let trace a = int_of_float a.tr

let of_sink (s : T.sink) =
  { c = s.T.c_sink; q = s.T.rat; i = 0.0; ns = s.T.nm; meta = 0.0; tr = float_of_int Trace.leaf }

let add_wire (w : T.wire) a =
  {
    a with
    c = a.c +. w.T.cap;
    q = a.q -. (w.T.res *. ((w.T.cap /. 2.0) +. a.c));
    i = a.i +. w.T.cur;
    ns = a.ns -. (w.T.res *. (a.i +. (w.T.cur /. 2.0)));
  }

let add_buffer ~arena ~at (b : Tech.Buffer.t) a =
  (* meta + 2 bumps the count; the xor flips the parity bit only *)
  let m = int_of_float a.meta + 2 in
  let m = if b.Tech.Buffer.inverting then m lxor 1 else m in
  {
    c = b.Tech.Buffer.c_in;
    q = a.q -. Tech.Buffer.gate_delay b ~load:a.c;
    i = 0.0;
    ns = b.Tech.Buffer.nm;
    meta = float_of_int m;
    tr = float_of_int (Trace.buf arena ~node:at ~dist:0.0 ~buffer:b ~pred:(trace a));
  }

let resize ~arena ~node ~width a =
  { a with tr = float_of_int (Trace.resize arena ~node ~width ~pred:(trace a)) }

let add_driver (d : T.driver) a = { a with q = a.q -. (d.T.d_drv +. (d.T.r_drv *. a.c)) }

let noise_ok ?(eps = 1e-12) ~r_gate a = r_gate *. a.i <= a.ns +. eps

let merge ~arena a b =
  assert (parity a = parity b);
  {
    c = a.c +. b.c;
    q = Float.min a.q b.q;
    i = a.i +. b.i;
    ns = Float.min a.ns b.ns;
    (* counts add, the shared parity must not be counted twice *)
    meta = a.meta +. b.meta -. float_of_int (parity a);
    tr = float_of_int (Trace.join arena ~left:(trace a) ~right:(trace b));
  }

let dominates a b = a.c <= b.c && a.q >= b.q

let dominates_full a b = a.c <= b.c && a.q >= b.q && a.i <= b.i && a.ns >= b.ns

let dominates_noise a b = a.i <= b.i && a.ns >= b.ns && count a <= count b

let cmp_frontier a b =
  match Float.compare a.c b.c with
  | 0 -> (
      match Float.compare b.q a.q with
      | 0 -> (
          match Float.compare a.i b.i with 0 -> Float.compare b.ns a.ns | n -> n)
      | n -> n)
  | n -> n

(* Monomorphic fast paths for the DP inner loops. These are the
   {!Frontier} sweeps and the Van Ginneken merge walk instantiated at
   [t] with direct field access — without flambda the generic versions
   pay an indirect call per element, which dominates the engine's run
   time. Property tests pin them against the generic versions. *)

let sweep_delay l =
  let dropped = ref 0 in
  (* input sorted by cmp_frontier; kept is newest-first *)
  let rec go kept = function
    | [] -> (List.rev kept, !dropped)
    | x :: rest -> (
        match kept with
        | k :: tl when k.c = x.c && k.q <= x.q -> (
            (* x retro-dominates the newest survivor (equal load) *)
            incr dropped;
            match tl with
            | k2 :: _ when k2.q >= x.q ->
                incr dropped;
                go tl rest
            | _ -> go (x :: tl) rest)
        | k :: _ when k.q >= x.q ->
            incr dropped;
            go kept rest
        | _ -> go (x :: kept) rest)
  in
  go [] l

let sweep_noise l =
  let dropped = ref 0 in
  let rec dominated x = function
    | [] -> false
    | k :: tl -> dominates_full k x || dominated x tl
  in
  (* equal-load survivors sit at the front of the (reversed) kept list;
     x may retro-dominate some of them *)
  let rec strip_ties x kept =
    match kept with
    | k :: tl when k.c = x.c ->
        let tl = strip_ties x tl in
        if dominates_full x k then begin
          incr dropped;
          tl
        end
        else k :: tl
    | _ -> kept
  in
  let rec go kept = function
    | [] -> (List.rev kept, !dropped)
    | x :: rest ->
        if dominated x kept then begin
          incr dropped;
          go kept rest
        end
        else go (x :: strip_ties x kept) rest
  in
  go [] l

let merge_sweep_delay runs =
  (* = sweep_delay (Frontier.merge_sorted cmp_frontier runs), with the
     merged intermediate never materialized: a k-way selection on the
     run heads feeds the staircase push directly. Ties go to the
     earliest run — exactly the order the stable balanced pairwise
     List.merge produces — so the survivors (and their trace handles)
     are identical to the unfused composition. *)
  let runs = Array.of_list runs in
  let n = Array.length runs in
  let dropped = ref 0 in
  let pop () =
    let best = ref (-1) in
    for j = 0 to n - 1 do
      match runs.(j) with
      | [] -> ()
      | x :: _ -> (
          if !best < 0 then best := j
          else
            match runs.(!best) with
            | y :: _ -> if cmp_frontier x y < 0 then best := j
            | [] -> assert false)
    done;
    match !best with
    | -1 -> None
    | j -> (
        match runs.(j) with
        | x :: tl ->
            runs.(j) <- tl;
            Some x
        | [] -> assert false)
  in
  let push kept x =
    match kept with
    | k :: tl when k.c = x.c && k.q <= x.q -> (
        incr dropped;
        match tl with
        | k2 :: _ when k2.q >= x.q ->
            incr dropped;
            tl
        | _ -> x :: tl)
    | k :: _ when k.q >= x.q ->
        incr dropped;
        kept
    | _ -> x :: kept
  in
  let rec go kept = match pop () with None -> (List.rev kept, !dropped) | Some x -> go (push kept x) in
  go []

let splice_delay group cands =
  (* = sweep_delay (List.merge cmp_frontier group cands) when [group] is
     already a swept staircase (strictly increasing c and q — every
     group between sweeps is). Once [cands] is exhausted and the newest
     survivor can neither be retro-killed by nor dominate the next group
     element, the rest of the staircase is final and is returned as-is:
     the common case (a few buffer insertions near the front of a wide
     frontier) shares almost the whole group tail instead of re-consing
     it. Drop counting is identical to the unfused composition. *)
  let dropped = ref 0 in
  let push kept x =
    match kept with
    | k :: tl when k.c = x.c && k.q <= x.q -> (
        incr dropped;
        match tl with
        | k2 :: _ when k2.q >= x.q ->
            incr dropped;
            tl
        | _ -> x :: tl)
    | k :: _ when k.q >= x.q ->
        incr dropped;
        kept
    | _ -> x :: kept
  in
  let rec go kept g c =
    match c with
    | [] -> finish kept g
    | x :: ctl -> (
        match g with
        | [] -> go (push kept x) [] ctl
        | y :: gtl ->
            if cmp_frontier y x <= 0 then go (push kept y) gtl c
            else go (push kept x) g ctl)
  and finish kept g =
    match g with
    | [] -> (List.rev kept, !dropped)
    | y :: gtl -> (
        match kept with
        | k :: _ when k.c = y.c -> finish (push kept y) gtl
        | k :: _ when k.q >= y.q ->
            incr dropped;
            finish kept gtl
        | _ ->
            (* y survives and, by the staircase invariant, so does all
               of gtl: share the tail *)
            (List.rev_append kept g, !dropped))
  in
  go [] group cands

let merge_delay ~arena l r =
  (* both inputs sorted by cmp_frontier (load ascending, so slack
     ascending along a pruned frontier); advance the lower-slack side —
     the classic linear merge. Returns the pairing count for stats. *)
  let rec go n acc l r =
    match (l, r) with
    | [], _ | _, [] -> (List.rev acc, n)
    | a :: ltl, b :: rtl ->
        let acc = merge ~arena a b :: acc in
        if a.q < b.q then go (n + 1) acc ltl r
        else if b.q < a.q then go (n + 1) acc l rtl
        else go (n + 1) acc ltl rtl
  in
  go 0 [] l r
