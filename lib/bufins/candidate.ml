module T = Rctree.Tree

type t = {
  c : float;
  q : float;
  i : float;
  ns : float;
  parity : int;
  count : int;
  sol : Rctree.Surgery.placement list;
  sizes : (int * float) list;
}

let of_sink (s : T.sink) =
  { c = s.T.c_sink; q = s.T.rat; i = 0.0; ns = s.T.nm; parity = 0; count = 0; sol = []; sizes = [] }

let add_wire (w : T.wire) a =
  {
    a with
    c = a.c +. w.T.cap;
    q = a.q -. (w.T.res *. ((w.T.cap /. 2.0) +. a.c));
    i = a.i +. w.T.cur;
    ns = a.ns -. (w.T.res *. (a.i +. (w.T.cur /. 2.0)));
  }

let add_buffer ~at (b : Tech.Buffer.t) a =
  {
    c = b.Tech.Buffer.c_in;
    q = a.q -. Tech.Buffer.gate_delay b ~load:a.c;
    i = 0.0;
    ns = b.Tech.Buffer.nm;
    parity = (if b.Tech.Buffer.inverting then 1 - a.parity else a.parity);
    count = a.count + 1;
    sol = { Rctree.Surgery.node = at; dist = 0.0; buffer = b } :: a.sol;
    sizes = a.sizes;
  }

let add_driver (d : T.driver) a = { a with q = a.q -. (d.T.d_drv +. (d.T.r_drv *. a.c)) }

let noise_ok ?(eps = 1e-12) ~r_gate a = r_gate *. a.i <= a.ns +. eps

let merge a b =
  assert (a.parity = b.parity);
  {
    c = a.c +. b.c;
    q = Float.min a.q b.q;
    i = a.i +. b.i;
    ns = Float.min a.ns b.ns;
    parity = a.parity;
    count = a.count + b.count;
    sol = List.rev_append a.sol b.sol;
    sizes = List.rev_append a.sizes b.sizes;
  }

let dominates a b = a.c <= b.c && a.q >= b.q

let dominates_noise a b = a.i <= b.i && a.ns >= b.ns && a.count <= b.count

let prune ~within cands =
  let arr = Array.of_list cands in
  let n = Array.length arr in
  let dead = Array.make n false in
  for x = 0 to n - 1 do
    if not dead.(x) then
      for y = 0 to n - 1 do
        if x <> y && (not dead.(y)) && within arr.(x) arr.(y) then dead.(y) <- true
      done
  done;
  let out = ref [] in
  for x = n - 1 downto 0 do
    if not dead.(x) then out := arr.(x) :: !out
  done;
  !out
