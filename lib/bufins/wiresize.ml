module T = Rctree.Tree

type result = {
  slack : float;
  placements : Rctree.Surgery.placement list;
  sizes : (int * float) list;
  count : int;
}

let default_widths = [ 1.0; 2.0; 4.0 ]

let run ?(widths = default_widths) ?(area_frac = 0.4) ~noise ~lib tree =
  let outcome = Dp.run ~widths ~area_frac ~noise ~mode:Dp.Single ~lib tree in
  Option.map
    (fun (r : Dp.result) ->
      { slack = r.Dp.slack; placements = r.Dp.placements; sizes = r.Dp.sizes; count = r.Dp.count })
    outcome.Dp.best

let apply_sizes ?(area_frac = 0.4) tree sizes =
  let width_of = Hashtbl.create 16 in
  List.iter
    (fun (v, w) ->
      if v < 0 || v >= T.node_count tree || v = T.root tree then
        invalid_arg "Wiresize.apply_sizes: bad node";
      Hashtbl.replace width_of v w)
    sizes;
  T.map_wires tree (fun v w ->
      match Hashtbl.find_opt width_of v with
      | Some width -> T.resize_wire w ~width ~area_frac
      | None -> w)

let evaluate ?area_frac tree r =
  Eval.apply (apply_sizes ?area_frac tree r.sizes) r.placements
