(** Explicit aggressor coupling: the general form of eq. (6) and the
    wire-segmenting scheme of the paper's Fig. 2.

    Estimation mode assumes one aggressor over every wire; when routing
    information is available, each victim wire couples to specific
    aggressor nets over specific spans. [annotate] cuts every wire at the
    span boundaries — producing the Fig. 2 picture where each piece is
    coupled to a fixed aggressor set — and sets the piece's coupled
    current to [sum_j lambda_j * C_piece * slope_j].

    The annotation keeps, per node, the {e density} of its parent wire:
    the list of [(lambda_j, slope_j)] pairs active over the whole piece.
    Densities are intensive, so they survive further proportional
    splitting; [buffered] carries them through buffer-insertion surgery
    via {!Rctree.Surgery.apply_traced}. [Noisesim] accepts the density
    table to simulate each aggressor with its own ramp. *)

type span = {
  near : float;  (** span start, metres from the wire's {e target} node *)
  far : float;  (** span end; [near < far <= wire length] *)
  lambda : float;  (** coupling-to-total capacitance ratio over the span *)
  slope : float;  (** aggressor signal slope, V/s *)
}

type t

val tree : t -> Rctree.Tree.t

val density : t -> int -> (float * float) list
(** [(lambda_j, slope_j)] pairs uniformly coupled to the parent wire of
    the given node; [[]] for the root and uncoupled wires. *)

val annotate : Rctree.Tree.t -> spans:(int * span list) list -> t
(** [annotate tree ~spans] with [spans] keyed by node id (the wire
    [(parent v, v)]): split wires at span boundaries (Fig. 2) and install
    eq. (6) currents. Wires without spans keep their existing current
    (e.g. estimation-mode values) and get the empty density. Spans may
    overlap — overlapping aggressors accumulate. Raises
    [Invalid_argument] on malformed spans or a total [lambda] above 1 at
    any point of a wire. *)

val estimation : Tech.Process.t -> Rctree.Tree.t -> t
(** The paper's estimation mode as an annotation: one full-length span
    per wire with the process's lambda and slope. *)

val buffered : t -> Rctree.Surgery.placement list -> t
(** Apply a buffer-insertion solution (placements reference the
    annotated tree's ids) and re-key the densities onto the new tree. *)

val refine : t -> max_len:float -> t
(** Wire-segment the annotation like {!Rctree.Segment.refine}: pieces
    inherit their wire's density (densities are intensive). Lets the
    count-indexed DP optimizers run on explicit-coupling annotations
    (see [Bufins.Buffopt.optimize_coupled]). *)

val total_coupling_cap : t -> float
(** Sum over wires of [sum_j lambda_j * C_w] — the capacitance exposed to
    aggressors. *)
