module T = Rctree.Tree

type span = { near : float; far : float; lambda : float; slope : float }

type t = { tree : T.t; dens : (float * float) list array }

let tree t = t.tree

let density t v = t.dens.(v)

let check_spans w spans =
  List.iter
    (fun s ->
      if
        s.near < 0.0
        || s.far > w.T.length +. 1e-12
        || s.near >= s.far
        || s.lambda <= 0.0
        || s.lambda > 1.0
        || s.slope <= 0.0
      then invalid_arg "Coupling.annotate: malformed span")
    spans

(* Fig. 2: cut points of a wire = union of all span boundaries. *)
let boundaries w spans =
  let pts =
    List.concat_map (fun s -> [ s.near; s.far ]) spans
    |> List.filter (fun d -> d > 1e-15 && d < w.T.length -. 1e-15)
    |> List.sort_uniq compare
  in
  (0.0 :: pts) @ [ w.T.length ]

let piece_density spans ~lo ~hi =
  List.filter_map
    (fun s -> if s.near <= lo +. 1e-15 && s.far >= hi -. 1e-15 then Some (s.lambda, s.slope) else None)
    spans

let annotate base ~spans =
  let by_node = Hashtbl.create 16 in
  List.iter
    (fun (v, ss) ->
      if v < 0 || v >= T.node_count base || v = T.root base then
        invalid_arg "Coupling.annotate: bad node";
      check_spans (T.wire_to base v) ss;
      Hashtbl.replace by_node v (ss @ Option.value ~default:[] (Hashtbl.find_opt by_node v)))
    spans;
  let b = Rctree.Builder.create () in
  let dens = ref [] in
  let note id d = dens := (id, d) :: !dens in
  let rec emit old_id new_parent =
    let nd = T.node base old_id in
    let new_id =
      match nd.T.kind with
      | T.Source d ->
          let id = Rctree.Builder.add_source b ~r_drv:d.T.r_drv ~d_drv:d.T.d_drv in
          note id [];
          id
      | T.Sink s ->
          let parent, wire, d = chain old_id new_parent in
          let id =
            Rctree.Builder.add_sink b ~parent ~wire ~name:s.T.sname ~c_sink:s.T.c_sink
              ~rat:s.T.rat ~nm:s.T.nm
          in
          note id d;
          id
      | T.Internal ->
          let parent, wire, d = chain old_id new_parent in
          let id = Rctree.Builder.add_internal b ~parent ~wire ~feasible:nd.T.feasible () in
          note id d;
          id
      | T.Buffered buf ->
          let parent, wire, d = chain old_id new_parent in
          let id = Rctree.Builder.add_buffered b ~parent ~wire buf in
          note id d;
          id
    in
    List.iter (fun c -> emit c new_id) (T.children base old_id)
  and chain old_id new_parent =
    (* split the parent wire of [old_id] at its span boundaries, emitting
       the upper pieces as fresh internal nodes; returns parent, wire and
       density for the bottom piece (the original node) *)
    let w = T.wire_to base old_id in
    match Hashtbl.find_opt by_node old_id with
    | None -> (new_parent, w, [])
    | Some spans ->
        let bounds = boundaries w spans in
        let rec pieces = function
          | lo :: (hi :: _ as rest) -> (lo, hi) :: pieces rest
          | [] | [ _ ] -> []
        in
        let ps = pieces bounds in
        let make (lo, hi) =
          let d = piece_density spans ~lo ~hi in
          let total_lambda = List.fold_left (fun a (l, _) -> a +. l) 0.0 d in
          if total_lambda > 1.0 +. 1e-9 then
            invalid_arg "Coupling.annotate: overlapping lambdas exceed 1";
          let frac = if w.T.length <= 0.0 then 0.0 else (hi -. lo) /. w.T.length in
          let piece = T.scale_wire w frac in
          let cur =
            List.fold_left (fun a (l, s) -> a +. (l *. piece.T.cap *. s)) 0.0 d
          in
          ({ piece with T.cur }, d)
        in
        (* top-down: last piece first *)
        let top_down = List.rev ps in
        let parent = ref new_parent in
        let rec place = function
          | [] -> assert false
          | [ last ] ->
              let wire, d = make last in
              (!parent, wire, d)
          | p :: rest ->
              let wire, d = make p in
              parent := Rctree.Builder.add_internal b ~parent:!parent ~wire ();
              note !parent d;
              place rest
        in
        place top_down
  in
  emit (T.root base) (-1);
  let tr = Rctree.Builder.finish b in
  let arr = Array.make (T.node_count tr) [] in
  List.iter (fun (id, d) -> arr.(id) <- d) !dens;
  { tree = tr; dens = arr }

let estimation p base =
  let spans =
    List.filter_map
      (fun v ->
        if v = T.root base then None
        else begin
          let w = T.wire_to base v in
          if w.T.length <= 0.0 then None
          else
            Some
              ( v,
                [
                  {
                    near = 0.0;
                    far = w.T.length;
                    lambda = p.Tech.Process.lambda;
                    slope = Tech.Process.slope p;
                  };
                ] )
        end)
      (T.postorder base)
  in
  annotate base ~spans

let buffered t placements =
  let tr, prov = Rctree.Surgery.apply_traced t.tree placements in
  let dens =
    Array.map
      (function
        | Rctree.Surgery.Same old | Rctree.Surgery.Piece_of old -> t.dens.(old))
      prov
  in
  (* the root never carries a parent wire *)
  dens.(T.root tr) <- [];
  { tree = tr; dens }

let refine t ~max_len =
  if max_len <= 0.0 then invalid_arg "Coupling.refine: non-positive max_len";
  let b = Rctree.Builder.create () in
  let dens = ref [] in
  let note id d = dens := (id, d) :: !dens in
  let rec emit old_id new_parent =
    let nd = T.node t.tree old_id in
    let d = t.dens.(old_id) in
    let new_id =
      match nd.T.kind with
      | T.Source dr ->
          let id = Rctree.Builder.add_source b ~r_drv:dr.T.r_drv ~d_drv:dr.T.d_drv in
          note id [];
          id
      | T.Sink s ->
          let parent, wire = chain old_id d new_parent in
          let id =
            Rctree.Builder.add_sink b ~parent ~wire ~name:s.T.sname ~c_sink:s.T.c_sink
              ~rat:s.T.rat ~nm:s.T.nm
          in
          note id d;
          id
      | T.Internal ->
          let parent, wire = chain old_id d new_parent in
          let id = Rctree.Builder.add_internal b ~parent ~wire ~feasible:nd.T.feasible () in
          note id d;
          id
      | T.Buffered buf ->
          let parent, wire = chain old_id d new_parent in
          let id = Rctree.Builder.add_buffered b ~parent ~wire buf in
          note id d;
          id
    in
    List.iter (fun c -> emit c new_id) (T.children t.tree old_id)
  and chain old_id d new_parent =
    let w = T.wire_to t.tree old_id in
    let k = Rctree.Segment.pieces_for w.T.length ~max_len in
    if k = 1 then (new_parent, w)
    else begin
      let piece = T.scale_wire w (1.0 /. float_of_int k) in
      let p = ref new_parent in
      for _ = 1 to k - 1 do
        p := Rctree.Builder.add_internal b ~parent:!p ~wire:piece ();
        note !p d
      done;
      (!p, piece)
    end
  in
  emit (T.root t.tree) (-1);
  let tr = Rctree.Builder.finish b in
  let arr = Array.make (T.node_count tr) [] in
  List.iter (fun (id, d) -> arr.(id) <- d) !dens;
  { tree = tr; dens = arr }

let total_coupling_cap t =
  List.fold_left
    (fun acc v ->
      if v = T.root t.tree then acc
      else begin
        let w = T.wire_to t.tree v in
        acc +. List.fold_left (fun a (l, _) -> a +. (l *. w.T.cap)) 0.0 t.dens.(v)
      end)
    0.0 (T.postorder t.tree)
