(** Design-scale batch optimization: domain-parallel BuffOpt over whole
    netlists.

    The paper's evaluation (Section V, Tables II-IV) is a batch
    workload — BuffOpt over the 500 largest nets of a design. Per-net
    buffer insertion is embarrassingly parallel, and this module is the
    layer that exploits it: a fixed pool of domains ({!Pool}) pulls
    (net, tree) jobs off a chunked work queue and runs the requested
    {!Bufins.Buffopt.algorithm} on each.

    Guarantees, independent of the domain count and of scheduling:

    - {b Deterministic results.} Job [i]'s outcome depends only on job
      [i]; results are reported in job order, and the aggregate report
      is merged in job order, so the same job list produces the same
      {!signature} at 1 domain and at 64.
    - {b Fault isolation.} An exception or an infeasible net becomes
      that job's {!outcome}; it never kills the batch. A [retries] knob
      re-runs jobs that raised (an {!Infeasible} verdict is
      deterministic and is never retried).
    - {b Timing is labeled.} All times are wall-clock seconds from
      {!Util.Clock}, never [Sys.time] CPU seconds, which double-count
      under parallelism. Timing lives in its own {!timing} record and
      is excluded from {!signature}. *)

module Pool = Pool

type 'a outcome =
  | Done of 'a
  | Failed of { attempts : int; error : string }
      (** [attempts] runs were made; the last raised [error] (or was
          infeasible). *)

type timing = {
  domains : int;  (** worker domains actually used *)
  wall_s : float;  (** whole-batch wall-clock seconds *)
  jobs_per_s : float;
  lat_min_s : float;  (** fastest single job, wall seconds *)
  lat_mean_s : float;
  lat_max_s : float;
  sched : Pool.stats;
      (** per-worker scheduling counters — jobs, chunk steals, busy
          seconds — for utilization reporting; like the rest of
          [timing], never part of {!signature} *)
}

val map :
  ?domains:int ->
  ?pool:Pool.t ->
  ?chunk:int ->
  ?costs:int array ->
  ?retries:int ->
  ('a -> 'b) ->
  'a list ->
  'b outcome array * timing
(** The generic engine: apply [f] to every element on a domain pool and
    return per-element outcomes in input order. [domains] defaults to
    [Pool.size pool] when a resident [pool] is given (the serve daemon's
    warm domains), else {!Pool.default_domains}; with [pool] the workers
    are the pool's resident domains instead of freshly spawned ones, and
    results are byte-identical either way. [chunk] / [costs] control
    chunk sizing and
    shard balance (see {!Pool.run} — [costs.(i)] is job [i]'s estimated
    cost); [retries] (default 0) is how many times a job that raised is
    re-run before it is recorded as [Failed]. [f] must be safe to run
    concurrently with itself on distinct elements (pure functions and
    functions over immutable inputs qualify; everything in [Bufins] /
    [Noisesim] does). Workers accumulate outcomes and latencies in
    per-worker buffers that are merged by index after the join, so the
    result is independent of scheduling and no two domains ever write
    adjacent cells of a shared array while running. *)

exception Infeasible of string
(** Raised by a job to record a deterministic per-job failure — e.g. no
    noise-feasible solution for a net. Never retried by {!map}. *)

(** {1 Batch BuffOpt} *)

type job = Steiner.Net.t * Rctree.Tree.t

type net_result = {
  net : string;  (** net name, from [Steiner.Net.nname] *)
  outcome : Bufins.Buffopt.run outcome;
}

type report = {
  results : net_result array;  (** in job order *)
  ok : int;
  failed : int;
  buffers : int;  (** total inserted over successful nets *)
  energy : float;  (** total buffer switching energy over successful nets, J *)
  worst_slack : float;  (** min predicted slack over successful nets; [infinity] when none *)
  dp : Bufins.Dp.stats;  (** candidate-engine rollup over successful nets *)
  timing : timing;
}

val optimize :
  ?domains:int ->
  ?pool:Pool.t ->
  ?chunk:int ->
  ?retries:int ->
  ?seg_len:float ->
  ?kmax:int ->
  algorithm:Bufins.Buffopt.algorithm ->
  lib:Tech.Buffer.t list ->
  job list ->
  report
(** Run {!Bufins.Buffopt.optimize} on every job. A net with no
    noise-feasible solution is a [Failed] outcome whose error names the
    verdict; see {!failed_nets}. [seg_len] / [kmax] are passed through
    to the per-net optimizer. Chunks are sized and sharded by each
    net's sink count (the DP's dominant cost driver) so domains finish
    together; see {!Pool.run}. *)

val failed_nets : report -> string list
(** Names of the nets whose outcome is [Failed], in job order. *)

val signature : report -> string
(** A rendering of everything deterministic in the report — per-net
    outcomes (count, predicted slack, DP stats, error strings) plus the
    job-order aggregate — with timing excluded. Byte-identical across
    domain counts for the same job list; the scaling bench and the
    determinism tests compare these. *)

val summary : report -> string
(** One human-readable paragraph: net/buffer totals, total buffer
    energy, failures, wall time, throughput, per-net latency spread,
    and worker utilization / steal counts. When every net failed the
    worst slack prints as [n/a], never [nan]. *)
