let default_domains () = Domain.recommended_domain_count ()

(* {1 Persistent pool handle}

   A resident fork-join pool: [domains - 1] worker domains are spawned
   once at [create] and then sleep on a condition variable between
   parallel regions, so a long-lived caller (the serve daemon) pays the
   Domain.spawn/join cost once instead of per request. A region is one
   [(int -> unit)] task executed as task w on every worker w (the
   calling domain is always worker 0); [exec] returns when every worker
   has finished the region. Regions never overlap: [exec] is a
   full barrier, and concurrent [exec] calls from different domains are
   not supported (the serve loop is single-threaded). *)

type t = {
  psize : int;  (** total workers including the calling domain *)
  m : Mutex.t;
  start : Condition.t;
  finished : Condition.t;
  mutable epoch : int;  (** bumped once per region *)
  mutable task : (int -> unit) option;
  mutable remaining : int;  (** helpers still inside the current region *)
  mutable stopped : bool;
  mutable helpers : unit Domain.t list;
}

(* Helpers park here between regions. The task wrapper installed by
   [exec] never lets an exception escape (worker bodies record their
   exception per worker slot), so a raise cannot wedge the barrier. *)
let helper_loop p w =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock p.m;
    while (not p.stopped) && p.epoch = !seen do
      Condition.wait p.start p.m
    done;
    if p.stopped then begin
      Mutex.unlock p.m;
      running := false
    end
    else begin
      seen := p.epoch;
      let task = Option.get p.task in
      Mutex.unlock p.m;
      task w;
      Mutex.lock p.m;
      p.remaining <- p.remaining - 1;
      if p.remaining = 0 then Condition.broadcast p.finished;
      Mutex.unlock p.m
    end
  done

let create ?domains () =
  let psize = max 1 (match domains with Some d -> d | None -> default_domains ()) in
  let p =
    {
      psize;
      m = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      epoch = 0;
      task = None;
      remaining = 0;
      stopped = false;
      helpers = [];
    }
  in
  p.helpers <- List.init (psize - 1) (fun i -> Domain.spawn (fun () -> helper_loop p (i + 1)));
  p

let size p = p.psize

let exec p task =
  Mutex.lock p.m;
  if p.stopped then begin
    Mutex.unlock p.m;
    invalid_arg "Pool.exec: pool is shut down"
  end;
  p.task <- Some task;
  p.remaining <- p.psize - 1;
  p.epoch <- p.epoch + 1;
  Condition.broadcast p.start;
  Mutex.unlock p.m;
  task 0;
  Mutex.lock p.m;
  while p.remaining > 0 do
    Condition.wait p.finished p.m
  done;
  p.task <- None;
  Mutex.unlock p.m

let shutdown p =
  Mutex.lock p.m;
  let first = not p.stopped in
  p.stopped <- true;
  Condition.broadcast p.start;
  Mutex.unlock p.m;
  if first then begin
    List.iter Domain.join p.helpers;
    p.helpers <- []
  end

type stats = {
  workers : int;
  chunks : int;
  jobs : int array;
  steals : int array;
  busy_s : float array;
  wall_s : float;
}

let no_stats =
  {
    workers = 0;
    chunks = 0;
    jobs = [||];
    steals = [||];
    busy_s = [||];
    wall_s = 0.0;
  }

let utilization st =
  Array.map (fun b -> if st.wall_s > 0.0 then b /. st.wall_s else 0.0) st.busy_s

(* Default (cost-blind) chunk size: aim for ~4 chunks per worker so the
   stealing phase has slack to rebalance, but never below 8 indices per
   chunk — a chunk of 1 maximizes queue traffic exactly when the jobs
   are cheapest — and never above ceil(n / workers), which would leave a
   worker with no chunk at all. See pool.mli for the full formula. *)
let default_chunk ~workers n =
  let per_worker = (n + workers - 1) / workers in
  max 1 (min per_worker (max 8 (n / (4 * workers))))

let fixed_chunks ~size n =
  let k = (n + size - 1) / size in
  Array.init k (fun i -> (i * size, min n ((i + 1) * size)))

(* Cost-sized chunks: contiguous runs cut so every chunk carries about
   total_cost / (4 * workers) estimated work. Costs are clamped to >= 1
   so zero-cost jobs still consume queue slots; a minimum run length
   keeps pathological cost skew from degenerating into 1-index chunks. *)
let cost_chunks ~workers ~costs n =
  let total = Array.fold_left (fun a c -> a + max 1 c) 0 costs in
  let target = max 1 ((total + (4 * workers) - 1) / (4 * workers)) in
  let min_len = max 1 (n / (16 * workers)) in
  let cuts = ref [] in
  let start = ref 0 and acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + max 1 costs.(i);
    if !acc >= target && i - !start + 1 >= min_len && i < n - 1 then begin
      cuts := (!start, i + 1) :: !cuts;
      start := i + 1;
      acc := 0
    end
  done;
  cuts := (!start, n) :: !cuts;
  Array.of_list (List.rev !cuts)

let chunk_cost costs (a, b) =
  match costs with
  | None -> b - a
  | Some cs ->
      let s = ref 0 in
      for i = a to b - 1 do
        s := !s + max 1 cs.(i)
      done;
      !s

(* Shard chunks across workers so total estimated cost balances — the
   Fiduccia–Mattheyses idea of moving the element with the best balance
   gain, degenerated to construction order: heaviest chunk first onto
   the least-loaded worker (LPT). Deterministic: ties break on the
   lowest chunk id, then the lowest worker id. Each queue is sorted by
   chunk id afterwards so a worker walks its own shard in index order
   (locality for caches and for any downstream merge). *)
let assign ~workers ~costs chunks =
  let k = Array.length chunks in
  let cost = Array.map (chunk_cost costs) chunks in
  let order = Array.init k (fun i -> i) in
  Array.sort
    (fun a b ->
      match compare cost.(b) cost.(a) with 0 -> compare a b | c -> c)
    order;
  let load = Array.make workers 0 in
  let qs = Array.make workers [] in
  Array.iter
    (fun cid ->
      let w = ref 0 in
      for d = 1 to workers - 1 do
        if load.(d) < load.(!w) then w := d
      done;
      load.(!w) <- load.(!w) + cost.(cid);
      qs.(!w) <- cid :: qs.(!w))
    order;
  Array.map
    (fun l ->
      let a = Array.of_list l in
      Array.sort compare a;
      a)
    qs

let run ~domains ?pool ?chunk ?costs ~n ~init body =
  if domains < 1 then invalid_arg "Pool.parallel_for: domains < 1";
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Pool.parallel_for: chunk < 1"
  | _ -> ());
  (match costs with
  | Some cs when Array.length cs <> n ->
      invalid_arg "Pool.parallel_for: costs length <> n"
  | _ -> ());
  if n = 0 then ([||], no_stats)
  else begin
    let workers =
      match pool with
      | None -> min domains n
      | Some p -> min (min domains n) (size p)
    in
    let chunks =
      match (chunk, costs) with
      | Some c, _ -> fixed_chunks ~size:c n
      | None, Some costs -> cost_chunks ~workers ~costs n
      | None, None -> fixed_chunks ~size:(default_chunk ~workers n) n
    in
    let nchunks = Array.length chunks in
    let queues = assign ~workers ~costs chunks in
    let qlen = Array.map Array.length queues in
    (* One claim cursor per worker queue. In the common case a worker
       touches only its own cursor; other workers' fetch_and_adds land
       on different cache lines thanks to the spacer allocations, so the
       shared-counter ping-pong of a single global queue is gone. *)
    let cursors =
      Array.init workers (fun _ ->
          let c = Atomic.make 0 in
          ignore (Sys.opaque_identity (Array.make 15 0));
          c)
    in
    let jobs = Array.make workers 0 in
    let steals = Array.make workers 0 in
    let busy = Array.make workers 0.0 in
    (* an exhausted queue is detected with a plain load first: polling
       an empty shard must not keep writing its cache line *)
    let claim q =
      if Atomic.get cursors.(q) >= qlen.(q) then None
      else
        let pos = Atomic.fetch_and_add cursors.(q) 1 in
        if pos < qlen.(q) then Some queues.(q).(pos) else None
    in
    let worker w =
      let st = init w in
      let my_jobs = ref 0 and my_steals = ref 0 and my_busy = ref 0.0 in
      let flush () =
        jobs.(w) <- !my_jobs;
        steals.(w) <- !my_steals;
        busy.(w) <- !my_busy
      in
      Fun.protect ~finally:flush (fun () ->
          let run_chunk cid =
            let a, b = chunks.(cid) in
            let c0 = Util.Clock.now () in
            Fun.protect
              ~finally:(fun () ->
                my_busy := !my_busy +. (Util.Clock.now () -. c0))
              (fun () ->
                for i = a to b - 1 do
                  body st i;
                  incr my_jobs
                done)
          in
          let rec drain_own () =
            match claim w with
            | Some cid ->
                run_chunk cid;
                drain_own ()
            | None -> ()
          in
          drain_own ();
          (* coarse stealing: sweep the other shards whole-chunk at a
             time; queues never refill, so a full sweep that yields
             nothing means the pool is drained *)
          if workers > 1 then begin
            let rec sweep () =
              let got = ref false in
              for d = 1 to workers - 1 do
                let v = (w + d) mod workers in
                match claim v with
                | Some cid ->
                    got := true;
                    incr my_steals;
                    run_chunk cid
                | None -> ()
              done;
              if !got then sweep ()
            in
            sweep ()
          end);
      st
    in
    let results = Array.make workers None in
    (* every worker records its exception in its own slot; the first
       slot in index order is re-raised only after every domain has
       finished the region (a domain left unjoined would leak) *)
    let exns = Array.make workers None in
    let attempt w =
      try results.(w) <- Some (worker w) with e -> exns.(w) <- Some e
    in
    let t0 = Util.Clock.now () in
    (match pool with
    | Some p -> exec p (fun w -> if w < workers then attempt w)
    | None ->
        if workers = 1 then attempt 0
        else begin
          let helpers =
            List.init (workers - 1) (fun i -> Domain.spawn (fun () -> attempt (i + 1)))
          in
          attempt 0;
          List.iter Domain.join helpers
        end);
    let wall = Util.Clock.now () -. t0 in
    Array.iter (function Some e -> raise e | None -> ()) exns;
    let states =
      Array.map (function Some s -> s | None -> assert false) results
    in
    (states, { workers; chunks = nchunks; jobs; steals; busy_s = busy; wall_s = wall })
  end

let parallel_for ~domains ?pool ?chunk ?costs ~n body =
  let (_ : unit array), (_ : stats) =
    run ~domains ?pool ?chunk ?costs ~n ~init:(fun _ -> ()) (fun () i -> body i)
  in
  ()
