let default_domains () = Domain.recommended_domain_count ()

let parallel_for ~domains ?chunk ~n body =
  if domains < 1 then invalid_arg "Pool.parallel_for: domains < 1";
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Pool.parallel_for: chunk < 1"
  | _ -> ());
  if n > 0 then begin
    let domains = min domains n in
    let chunk =
      match chunk with Some c -> c | None -> min 32 (max 1 (n / (4 * domains)))
    in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let start = Atomic.fetch_and_add next chunk in
        if start < n then begin
          for i = start to min n (start + chunk) - 1 do
            body i
          done;
          loop ()
        end
      in
      loop ()
    in
    if domains = 1 then worker ()
    else begin
      let helpers = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
      (* join every helper even if a worker raised, then surface one
         exception; a domain left unjoined would leak *)
      let first_exn = ref None in
      let note e = if !first_exn = None then first_exn := Some e in
      (try worker () with e -> note e);
      List.iter (fun d -> try Domain.join d with e -> note e) helpers;
      match !first_exn with None -> () | Some e -> raise e
    end
  end
