(** A fixed worker pool over [Domain] with a chunked atomic work queue.

    [parallel_for] runs a loop body over [0 .. n-1] on [domains] domains
    (the calling domain plus [domains - 1] spawned helpers — no domain
    is ever left running between calls). Work is handed out in
    contiguous chunks claimed from a single [Atomic] index, so the only
    synchronization cost is one fetch-and-add per chunk and load
    imbalance is bounded by one chunk per worker. No external
    dependencies: stdlib [Domain] and [Atomic] only. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the runtime's estimate of
    how many domains this machine runs without oversubscription. *)

val parallel_for : domains:int -> ?chunk:int -> n:int -> (int -> unit) -> unit
(** [parallel_for ~domains ~n body] calls [body i] exactly once for
    every [i] in [0 .. n-1] and returns when all calls have finished.
    [domains] is clamped to [1 .. n]; with [domains = 1] the loop runs
    inline with no spawns. [chunk] (default [max 1 (n / (4 * domains))],
    capped at 32) is the number of consecutive indices claimed per queue
    pop. [body] must not raise: an escaping exception kills that
    worker's remaining chunks; one such exception is re-raised here
    after every domain has been joined. Raises [Invalid_argument] when
    [chunk < 1] or [domains < 1]. *)
