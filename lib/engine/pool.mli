(** A fixed worker pool over [Domain] with per-worker chunk queues and
    coarse work-stealing.

    [parallel_for] / [run] execute a loop body over [0 .. n-1] on
    [domains] domains (the calling domain plus [domains - 1] spawned
    helpers — no domain is ever left running between calls). The index
    range is cut into contiguous chunks up front; chunks are sharded
    across per-worker queues balanced by estimated cost (heaviest chunk
    onto the least-loaded worker — the Fiduccia–Mattheyses balance idea
    degenerated to construction order), and each worker claims from its
    own queue through its own [Atomic] cursor. Only when a worker's
    shard is drained does it touch other workers' cursors to steal
    whole chunks, so in the steady state every queue-pop lands on a
    worker-private cache line instead of ping-ponging one shared
    counter. No external dependencies: stdlib [Domain] and [Atomic]
    only. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the runtime's estimate of
    how many domains this machine runs without oversubscription. *)

(** {1 Persistent pool}

    By default every [run] spawns its helper domains and joins them
    before returning — correct for a one-shot batch, wasteful for a
    long-running service answering thousands of requests. A {!t} handle
    keeps the helpers resident: they sleep on a condition variable
    between parallel regions, and a [run ~pool] reuses them instead of
    spawning. Results are byte-identical with and without a pool — the
    handle changes only where the worker bodies execute. *)

type t
(** A resident worker pool: [create ~domains] spawns [domains - 1]
    helper domains once; the calling domain is always worker 0 of every
    region. *)

val create : ?domains:int -> unit -> t
(** Spawn the helpers ([domains] defaults to {!default_domains},
    clamped to [>= 1]). The handle must eventually be {!shutdown} or
    the helper domains outlive the caller. *)

val size : t -> int
(** Total workers including the calling domain. *)

val exec : t -> (int -> unit) -> unit
(** [exec p task] runs [task w] on every worker [w] in
    [0 .. size p - 1] ([task 0] on the calling domain) and returns when
    all have finished. One region at a time: [exec] is a full barrier
    and must not be called concurrently from two domains. [task] must
    not raise (see {!run}, which wraps bodies accordingly). Raises
    [Invalid_argument] after {!shutdown}. *)

val shutdown : t -> unit
(** Wake and join the helper domains. Idempotent; subsequent {!exec} /
    [run ~pool] calls on the handle raise [Invalid_argument]. *)

type stats = {
  workers : int;  (** worker domains actually used, [min domains n] *)
  chunks : int;  (** chunks planned over the index range *)
  jobs : int array;  (** per worker: indices executed *)
  steals : int array;  (** per worker: chunks claimed from another shard *)
  busy_s : float array;  (** per worker: wall seconds inside the body *)
  wall_s : float;  (** whole-pool wall seconds, spawn to last join *)
}
(** Per-worker scheduling counters for one [run]. [jobs] sums to [n]
    when no worker raised; [steals.(w)] counts chunks worker [w] took
    from a queue it does not own (0 everywhere means the cost shards
    were balanced enough that nobody went idle early). *)

val utilization : stats -> float array
(** Per worker, [busy_s /. wall_s] — the fraction of the pool's wall
    time that worker spent executing the body (0 when [wall_s = 0]). *)

val run :
  domains:int ->
  ?pool:t ->
  ?chunk:int ->
  ?costs:int array ->
  n:int ->
  init:(int -> 'w) ->
  ('w -> int -> unit) ->
  'w array * stats
(** [run ~domains ~n ~init ~body] calls [body st i] exactly once for
    every [i] in [0 .. n-1] and returns when all calls have finished.
    [init w] runs once at the start of worker [w], {e on that worker's
    domain}, and its result [st] is threaded to every [body] call the
    worker executes — per-worker accumulation state therefore lives in
    the worker's own minor heap and is never written concurrently. The
    returned array holds worker [w]'s final state at index [w] (worker
    0 is the calling domain), for a deterministic post-join merge.

    Chunking. With [chunk = Some c] the range is cut into fixed runs of
    [c] indices. With [costs] (length [n], clamped to [>= 1] per index)
    runs are cut so each carries about [total_cost / (4 * workers)]
    estimated work, subject to a minimum run length of
    [max 1 (n / (16 * workers))] so cost skew cannot degenerate into
    1-index chunks. With neither, the chunk size is

    {[ max 1 (min (ceil (n / workers)) (max 8 (n / (4 * workers)))) ]}

    — about 4 chunks per worker for steal slack, floored at 8 indices
    per chunk (the previous formula's floor of 1 maximized queue
    traffic exactly when jobs were cheapest), capped at
    [ceil (n / workers)] so every worker still gets a chunk.

    [body] must not raise: an escaping exception kills that worker's
    remaining chunks; one such exception (lowest worker index first) is
    re-raised here after every domain has finished. Raises
    [Invalid_argument] when [chunk < 1], [domains < 1], or
    [Array.length costs <> n].

    With [pool], the region executes on the resident pool's domains
    instead of freshly spawned ones and the worker count is additionally
    capped at [size pool]; everything else — chunk plan, shard
    assignment, stealing, determinism of results — is identical. *)

val parallel_for :
  domains:int ->
  ?pool:t ->
  ?chunk:int ->
  ?costs:int array ->
  n:int ->
  (int -> unit) ->
  unit
(** [run] without per-worker state or scheduling counters: calls
    [body i] exactly once for every [i] in [0 .. n-1]. Same chunking,
    stealing, and exception contract as {!run}. *)
