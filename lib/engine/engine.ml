module Pool = Pool

type 'a outcome =
  | Done of 'a
  | Failed of { attempts : int; error : string }

type timing = {
  domains : int;
  wall_s : float;
  jobs_per_s : float;
  lat_min_s : float;
  lat_mean_s : float;
  lat_max_s : float;
  sched : Pool.stats;
}

exception Infeasible of string

let describe = function
  | Infeasible msg -> msg
  | e -> Printexc.to_string e

let map ?domains ?pool ?chunk ?costs ?(retries = 0) f xs =
  if retries < 0 then invalid_arg "Engine.map: retries < 0";
  let domains =
    match (domains, pool) with
    | Some d, _ -> d
    | None, Some p -> Pool.size p
    | None, None -> Pool.default_domains ()
  in
  let input = Array.of_list xs in
  let n = Array.length input in
  let domains = max 1 (min domains (max 1 n)) in
  let out = Array.make n (Failed { attempts = 0; error = "never ran" }) in
  let lat = Array.make n 0.0 in
  let one i =
    let rec attempt k =
      match f input.(i) with
      | v -> Done v
      | exception Infeasible msg ->
          (* deterministic verdict: retrying cannot change it *)
          Failed { attempts = k; error = msg }
      | exception e ->
          if k < retries + 1 then attempt (k + 1)
          else Failed { attempts = k; error = describe e }
    in
    attempt 1
  in
  let t0 = Util.Clock.now () in
  (* Workers append (index, outcome, latency) to a buffer that lives in
     their own minor heap — the shared [out] / [lat] arrays are written
     only after the join, by the calling domain, so concurrent workers
     never store into adjacent cells of one unboxed float array (false
     sharing). The merge is by index, hence deterministic. *)
  let buffers, sched =
    Pool.run ~domains ?pool ?chunk ?costs ~n
      ~init:(fun _ -> ref [])
      (fun acc i ->
        let j0 = Util.Clock.now () in
        let o = one i in
        acc := (i, o, Util.Clock.now () -. j0) :: !acc)
  in
  Array.iter
    (fun acc ->
      List.iter
        (fun (i, o, l) ->
          out.(i) <- o;
          lat.(i) <- l)
        !acc)
    buffers;
  let wall = Util.Clock.now () -. t0 in
  let lmin = Array.fold_left Float.min infinity lat in
  let lmax = Array.fold_left Float.max neg_infinity lat in
  let lsum = Array.fold_left ( +. ) 0.0 lat in
  ( out,
    {
      domains;
      wall_s = wall;
      jobs_per_s = (if wall > 0.0 then float_of_int n /. wall else 0.0);
      lat_min_s = (if n = 0 then 0.0 else lmin);
      lat_mean_s = (if n = 0 then 0.0 else lsum /. float_of_int n);
      lat_max_s = (if n = 0 then 0.0 else lmax);
      sched;
    } )

(* ------------------------------------------------------------------ *)
(* Batch BuffOpt                                                       *)

type job = Steiner.Net.t * Rctree.Tree.t

type net_result = {
  net : string;
  outcome : Bufins.Buffopt.run outcome;
}

type report = {
  results : net_result array;
  ok : int;
  failed : int;
  buffers : int;
  energy : float;
  worst_slack : float;
  dp : Bufins.Dp.stats;
  timing : timing;
}

let optimize ?domains ?pool ?chunk ?retries ?seg_len ?kmax ~algorithm ~lib jobs
    =
  let one (net, tree) =
    match Bufins.Buffopt.optimize ?seg_len ?kmax algorithm ~lib tree with
    | Some r -> r
    | None ->
        raise
          (Infeasible
             (Printf.sprintf "no noise-feasible solution for net %s"
                net.Steiner.Net.nname))
  in
  (* chunk sizing and shard balance key off estimated per-net cost; the
     DP's work grows with the sink count, so the net's degree is the
     cheap proxy that keeps domains finishing together *)
  let costs =
    Array.of_list (List.map (fun (net, _) -> Steiner.Net.degree net) jobs)
  in
  let outcomes, timing = map ?domains ?pool ?chunk ~costs ?retries one jobs in
  let names = Array.of_list (List.map (fun (n, _) -> n.Steiner.Net.nname) jobs) in
  let results = Array.mapi (fun i outcome -> { net = names.(i); outcome }) outcomes in
  (* merge in job order: the aggregate is independent of scheduling *)
  let ok = ref 0 and failed = ref 0 and buffers = ref 0 in
  let energy = ref 0.0 in
  let worst = ref infinity in
  let gen = ref 0 and pruned = ref 0 and pred = ref 0 and ppruned = ref 0 and peak = ref 0 in
  let arena = ref 0 and minor = ref 0.0 and major = ref 0.0 in
  (* per-type peaks take the elementwise max across nets; libraries are
     uniform within a batch, so the first net fixes the width *)
  let twidths = ref [||] in
  Array.iter
    (fun { outcome; _ } ->
      match outcome with
      | Done (r : Bufins.Buffopt.run) ->
          incr ok;
          buffers := !buffers + r.Bufins.Buffopt.count;
          energy := !energy +. r.Bufins.Buffopt.energy;
          worst := Float.min !worst r.Bufins.Buffopt.predicted_slack;
          let s = r.Bufins.Buffopt.stats in
          gen := !gen + s.Bufins.Dp.generated;
          pruned := !pruned + s.Bufins.Dp.pruned;
          pred := !pred + s.Bufins.Dp.pred_pruned;
          ppruned := !ppruned + s.Bufins.Dp.power_pruned;
          peak := max !peak s.Bufins.Dp.peak_width;
          let tw = s.Bufins.Dp.type_widths in
          if Array.length !twidths < Array.length tw then begin
            let m = Array.make (Array.length tw) 0 in
            Array.blit !twidths 0 m 0 (Array.length !twidths);
            twidths := m
          end;
          Array.iteri (fun i w -> if w > !twidths.(i) then !twidths.(i) <- w) tw;
          arena := !arena + s.Bufins.Dp.arena;
          minor := !minor +. s.Bufins.Dp.minor_words;
          major := !major +. s.Bufins.Dp.major_words
      | Failed _ -> incr failed)
    results;
  {
    results;
    ok = !ok;
    failed = !failed;
    buffers = !buffers;
    energy = !energy;
    worst_slack = !worst;
    dp =
      {
        Bufins.Dp.generated = !gen;
        pruned = !pruned;
        pred_pruned = !pred;
        power_pruned = !ppruned;
        peak_width = !peak;
        type_widths = !twidths;
        arena = !arena;
        minor_words = !minor;
        major_words = !major;
      };
    timing;
  }

let failed_nets r =
  Array.to_list r.results
  |> List.filter_map (fun { net; outcome } ->
         match outcome with Failed _ -> Some net | Done _ -> None)

let signature r =
  (* determinism contract: only verdict fields — never timing and never
     the Gc words (major_words depends on collector scheduling, which
     varies across domain counts) *)
  let b = Buffer.create (64 * (Array.length r.results + 1)) in
  Array.iter
    (fun { net; outcome } ->
      match outcome with
      | Done (run : Bufins.Buffopt.run) ->
          let s = run.Bufins.Buffopt.stats in
          Printf.bprintf b "%s ok count=%d slack=%.17g energy=%.17g dp=%d/%d/%d/%d\n" net
            run.Bufins.Buffopt.count run.Bufins.Buffopt.predicted_slack
            run.Bufins.Buffopt.energy s.Bufins.Dp.generated s.Bufins.Dp.pruned
            s.Bufins.Dp.pred_pruned s.Bufins.Dp.peak_width
      | Failed { attempts = _; error } ->
          (* attempts depend on the retry knob, not on scheduling, but
             keep the signature about the verdict alone *)
          Printf.bprintf b "%s FAILED %s\n" net error)
    r.results;
  Printf.bprintf b
    "aggregate ok=%d failed=%d buffers=%d energy=%.17g worst=%.17g dp=%d/%d/%d/%d\n" r.ok
    r.failed r.buffers r.energy r.worst_slack r.dp.Bufins.Dp.generated
    r.dp.Bufins.Dp.pruned r.dp.Bufins.Dp.pred_pruned r.dp.Bufins.Dp.peak_width;
  Buffer.contents b

let sched_line (s : Pool.stats) =
  if s.Pool.workers = 0 then "no work"
  else
    let u = Pool.utilization s in
    let umin = Array.fold_left Float.min infinity u in
    let umax = Array.fold_left Float.max 0.0 u in
    let umean = Array.fold_left ( +. ) 0.0 u /. float_of_int s.Pool.workers in
    Printf.sprintf "%d chunks, %d stolen, util %.2f/%.2f/%.2f min/mean/max"
      s.Pool.chunks
      (Array.fold_left ( + ) 0 s.Pool.steals)
      umin umean umax

let summary r =
  let t = r.timing in
  Printf.sprintf
    "batch: %d nets optimized, %d infeasible/failed | %d buffers, %.1f fJ \
     buffer energy | worst \
     predicted slack %s | %d domains, %.3f s wall (%.1f nets/s), per-net \
     %.2f/%.2f/%.2f ms min/mean/max | sched %s | dp %d generated, %d \
     pred-pruned, alloc %.1f/%.1f Mwords minor/major, %d trace nodes"
    r.ok r.failed r.buffers (r.energy *. 1e15)
    (* every net failed: there is no worst slack, and printing the nan
       that Float.min infinity produces reads like a computed value *)
    (if r.ok = 0 then "n/a" else Printf.sprintf "%.1f ps" (r.worst_slack *. 1e12))
    t.domains t.wall_s t.jobs_per_s (t.lat_min_s *. 1e3) (t.lat_mean_s *. 1e3)
    (t.lat_max_s *. 1e3) (sched_line t.sched) r.dp.Bufins.Dp.generated
    r.dp.Bufins.Dp.pred_pruned
    (r.dp.Bufins.Dp.minor_words /. 1e6)
    (r.dp.Bufins.Dp.major_words /. 1e6)
    r.dp.Bufins.Dp.arena
