type node = int
(* -1 is ground; >= 0 are allocated nodes *)

type element = R of node * node * float | C of node * node * float | L of node * node * float

type t = {
  mutable next : int;
  mutable elems : element list;
  mutable labels : (int * string) list;
  drives : (int, Waveform.t) Hashtbl.t;
}

let create () = { next = 0; elems = []; labels = []; drives = Hashtbl.create 16 }

let ground = -1

let fresh ?label t =
  let id = t.next in
  t.next <- id + 1;
  (match label with Some l -> t.labels <- (id, l) :: t.labels | None -> ());
  id

let check_node t n =
  if n < -1 || n >= t.next then invalid_arg "Netlist: unknown node"

let resistor t a b ohms =
  check_node t a;
  check_node t b;
  if ohms <= 0.0 then invalid_arg "Netlist.resistor: non-positive resistance";
  if a <> b then t.elems <- R (a, b, ohms) :: t.elems

let capacitor t a b farads =
  check_node t a;
  check_node t b;
  if farads < 0.0 then invalid_arg "Netlist.capacitor: negative capacitance";
  if a <> b && farads > 0.0 then t.elems <- C (a, b, farads) :: t.elems

let inductor t a b henry =
  check_node t a;
  check_node t b;
  if henry <= 0.0 then invalid_arg "Netlist.inductor: non-positive inductance";
  if a <> b then t.elems <- L (a, b, henry) :: t.elems

let drive t n w =
  check_node t n;
  if n = ground then invalid_arg "Netlist.drive: cannot drive ground";
  if Hashtbl.mem t.drives n then invalid_arg "Netlist.drive: node already driven";
  Hashtbl.replace t.drives n w

let node_count t = t.next

let is_driven t n = Hashtbl.mem t.drives n

let label t n =
  match List.assoc_opt n t.labels with
  | Some l -> l
  | None -> if n = ground then "gnd" else Printf.sprintf "n%d" n

let elements t = t.elems

let driven_waveform t n = Hashtbl.find_opt t.drives n

let node_id n = n

let of_id n = n
