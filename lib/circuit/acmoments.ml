type t = { source : Netlist.node; moments : float array array }

let transfer_moments nl ~order ~probes =
  if order < 0 then invalid_arg "Acmoments.transfer_moments: negative order";
  let sys = Mna.build nl in
  let lu = Linalg.Mat.lu_factor sys.Mna.g in
  let probes = Array.of_list probes in
  let extract x =
    Array.map
      (fun p ->
        let i = Mna.free_index sys p in
        if i < 0 then 0.0 else x.(i))
      probes
  in
  List.map
    (fun d ->
      let excitation lst =
        let b = Linalg.Vec.make (Linalg.Mat.dim sys.Mna.g) in
        List.iter (fun (i, coeff, src) -> if src = d then b.(i) <- b.(i) -. coeff) lst;
        b
      in
      let moments = Array.make (order + 1) [||] in
      let h = ref (Linalg.Mat.lu_solve lu (excitation sys.Mna.g_drv)) in
      moments.(0) <- extract !h;
      for k = 1 to order do
        let rhs = Linalg.Mat.mul_vec sys.Mna.c !h in
        Linalg.Vec.scale (-1.0) rhs;
        if k = 1 then Linalg.Vec.axpy 1.0 (excitation sys.Mna.c_drv) rhs;
        h := Linalg.Mat.lu_solve lu rhs;
        moments.(k) <- extract !h
      done;
      { source = Netlist.of_id d; moments })
    sys.Mna.sources
