(** Linear-circuit netlists.

    A netlist is a set of nodes connected by resistors and capacitors.
    Nodes are either the implicit ground, free (their voltage is an
    unknown), or driven by an ideal voltage source with a known waveform
    (the transient engine eliminates driven nodes from the system).

    This is exactly the circuit class needed for coupled-noise analysis:
    RC victim trees, coupling capacitors, and ramp aggressor sources
    (Section V of the paper; RICE/AWE-class problems). *)

type t

type node

val create : unit -> t

val ground : node

val fresh : ?label:string -> t -> node
(** Allocate a new free node. The label is used in error messages. *)

val resistor : t -> node -> node -> float -> unit
(** Connect a resistance (ohm, [> 0.]) between two nodes. *)

val capacitor : t -> node -> node -> float -> unit
(** Connect a capacitance (farad, [>= 0.]) between two nodes. *)

val inductor : t -> node -> node -> float -> unit
(** Connect an inductance (henry, [> 0.]) between two nodes. Inductors
    introduce a branch-current unknown in the MNA system; they extend the
    RC class to the (overdamped) RLC circuits for which the Devgan metric
    is still an upper bound (paper Section II-B). *)

val drive : t -> node -> Waveform.t -> unit
(** Attach an ideal voltage source between the node and ground. A node may
    be driven at most once; ground cannot be driven. *)

val node_count : t -> int
(** Number of allocated (non-ground) nodes. *)

val is_driven : t -> node -> bool

val label : t -> node -> string

(**/**)

(* Internal accessors for the transient engine. *)

type element = R of node * node * float | C of node * node * float | L of node * node * float

val elements : t -> element list

val driven_waveform : t -> node -> Waveform.t option

val node_id : node -> int
(** Ground is [-1]; allocated nodes are [0, 1, ...]. *)

val of_id : int -> node
(** Inverse of {!node_id}; the id must come from this netlist. *)
