(** Trapezoidal transient analysis.

    Solves [G v + C dv/dt = b(t)] over the free nodes of a netlist, where
    [b(t)] collects the contributions of driven nodes through the
    conductances and capacitances tied to them. The system matrix
    [G + (2/h) C] is LU-factored once per run and back-substituted per
    step, so a run costs one O(n^3) factorization plus O(steps * n^2). *)

type result = {
  times : float array;  (** sample instants, including t = 0 *)
  peaks : float array;  (** per-probe maximum |v| over the run *)
  peak_times : float array;  (** instant at which each peak occurred *)
  finals : float array;  (** per-probe voltage at the last instant *)
  traces : float array array option;  (** per-probe sampled waveforms if requested *)
}

val simulate :
  ?record:bool ->
  Netlist.t ->
  dt:float ->
  t_end:float ->
  probes:Netlist.node list ->
  result
(** Run from the DC operating point at [t = 0] (sources at their initial
    values) to [t_end] with a fixed step [dt]. Probing a driven node or
    ground is allowed (its known voltage is reported). Set [record] to keep
    full waveforms. Raises [Invalid_argument] on a non-positive step and
    [Linalg.Mat.Singular] if some free node has no resistive path to a
    driven node or ground. *)
