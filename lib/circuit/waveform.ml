type t = { value : float -> float; deriv : float -> float }

let value t x = t.value x

let deriv t x = t.deriv x

let dc v = { value = (fun _ -> v); deriv = (fun _ -> 0.0) }

let ramp ~t0 ~t_rise ~v0 ~v1 =
  assert (t_rise > 0.0);
  let slope = (v1 -. v0) /. t_rise in
  {
    value =
      (fun t ->
        if t <= t0 then v0 else if t >= t0 +. t_rise then v1 else v0 +. (slope *. (t -. t0)));
    deriv = (fun t -> if t <= t0 || t >= t0 +. t_rise then 0.0 else slope);
  }

let pwl points =
  let rec increasing = function
    | (t1, _) :: ((t2, _) :: _ as rest) -> t1 < t2 && increasing rest
    | _ -> true
  in
  assert (points <> [] && increasing points);
  let pts = Array.of_list points in
  let n = Array.length pts in
  let segment t =
    (* index of the segment containing t, or boundary sentinels *)
    if t <= fst pts.(0) then `Before
    else if t >= fst pts.(n - 1) then `After
    else begin
      let i = ref 0 in
      while fst pts.(!i + 1) < t do
        incr i
      done;
      `Inside !i
    end
  in
  {
    value =
      (fun t ->
        match segment t with
        | `Before -> snd pts.(0)
        | `After -> snd pts.(n - 1)
        | `Inside i ->
            let t1, v1 = pts.(i) and t2, v2 = pts.(i + 1) in
            v1 +. ((v2 -. v1) *. (t -. t1) /. (t2 -. t1)));
    deriv =
      (fun t ->
        match segment t with
        | `Before | `After -> 0.0
        | `Inside i ->
            let t1, v1 = pts.(i) and t2, v2 = pts.(i + 1) in
            (v2 -. v1) /. (t2 -. t1));
  }
