type t = {
  nf : int;
  nl : int;
  index : int array;
  g : Linalg.Mat.t;
  c : Linalg.Mat.t;
  g_drv : (int * float * int) list;
  c_drv : (int * float * int) list;
  sources : int list;
}

let build nl =
  let n = Netlist.node_count nl in
  let index = Array.make n (-1) in
  let nf = ref 0 in
  for id = 0 to n - 1 do
    if not (Netlist.is_driven nl (Netlist.of_id id)) then begin
      index.(id) <- !nf;
      incr nf
    end
  done;
  let nf = !nf in
  let n_ind =
    List.length
      (List.filter (function Netlist.L _ -> true | Netlist.R _ | Netlist.C _ -> false)
         (Netlist.elements nl))
  in
  let dim = nf + n_ind in
  let g = Linalg.Mat.create dim and c = Linalg.Mat.create dim in
  let g_drv = ref [] and c_drv = ref [] in
  let stamp mat drv a b v =
    (* Stamp a two-terminal admittance between nodes [a] and [b]. Ground
       contributes nothing off-diagonal; driven nodes go to the RHS lists. *)
    let kind n =
      if n = Netlist.ground then `Gnd
      else if Netlist.is_driven nl n then `Drv (Netlist.node_id n)
      else `Free index.(Netlist.node_id n)
    in
    let diag n =
      match kind n with `Free i -> Linalg.Mat.add mat i i v | `Gnd | `Drv _ -> ()
    in
    let off n1 n2 =
      match (kind n1, kind n2) with
      | `Free i, `Free j -> Linalg.Mat.add mat i j (-.v)
      | `Free i, `Drv d -> drv := (i, -.v, d) :: !drv
      | `Free _, `Gnd | `Gnd, _ | `Drv _, _ -> ()
    in
    diag a;
    diag b;
    off a b;
    off b a
  in
  let next_branch = ref nf in
  List.iter
    (fun e ->
      match e with
      | Netlist.R (a, b, ohms) -> stamp g g_drv a b (1.0 /. ohms)
      | Netlist.C (a, b, farads) -> stamp c c_drv a b farads
      | Netlist.L (a, b, henry) ->
          (* branch current i flows a -> b: KCL rows get +/- i; the branch
             row enforces v_a - v_b - L di/dt = 0 *)
          let k = !next_branch in
          incr next_branch;
          let endpoint node sign =
            if node = Netlist.ground then ()
            else if Netlist.is_driven nl node then
              (* known voltage moves to the RHS of the branch row *)
              g_drv := (k, sign, Netlist.node_id node) :: !g_drv
            else begin
              let i = index.(Netlist.node_id node) in
              Linalg.Mat.add g i k sign;
              Linalg.Mat.add g k i sign
            end
          in
          endpoint a 1.0;
          endpoint b (-1.0);
          Linalg.Mat.add c k k (-.henry))
    (Netlist.elements nl);
  let sources =
    List.sort_uniq compare
      (List.map (fun (_, _, d) -> d) !g_drv @ List.map (fun (_, _, d) -> d) !c_drv)
  in
  { nf; nl = n_ind; index; g; c; g_drv = !g_drv; c_drv = !c_drv; sources }

let free_index t n =
  let id = Netlist.node_id n in
  if id < 0 then -1 else t.index.(id)
