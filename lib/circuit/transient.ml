type result = {
  times : float array;
  peaks : float array;
  peak_times : float array;
  finals : float array;
  traces : float array array option;
}

let waveform_of nl d =
  match Netlist.driven_waveform nl (Netlist.of_id d) with
  | Some w -> w
  | None -> assert false

(* Conductive RHS: -G_fd * v_d(t); also the DC operating point's RHS. *)
let rhs_g nl (sys : Mna.t) t =
  let b = Linalg.Vec.make (Linalg.Mat.dim sys.Mna.g) in
  List.iter
    (fun (i, coeff, d) -> b.(i) <- b.(i) -. (coeff *. Waveform.value (waveform_of nl d) t))
    sys.Mna.g_drv;
  b

(* Capacitive RHS over one step, charge-exact: the integral of
   -C_fd * dv_d/dt over [t0, t1] is -C_fd * (v_d(t1) - v_d(t0)) exactly,
   which keeps trapezoidal integration second-order accurate even across
   waveform kinks. Scaled by 2/h to match the assembled step equation. *)
let rhs_c nl (sys : Mna.t) ~t0 ~t1 =
  let b = Linalg.Vec.make (Linalg.Mat.dim sys.Mna.g) in
  let scale = 2.0 /. (t1 -. t0) in
  List.iter
    (fun (i, coeff, d) ->
      let w = waveform_of nl d in
      b.(i) <- b.(i) -. (coeff *. scale *. (Waveform.value w t1 -. Waveform.value w t0)))
    sys.Mna.c_drv;
  b

let simulate ?(record = false) nl ~dt ~t_end ~probes =
  if dt <= 0.0 || t_end < 0.0 then invalid_arg "Transient.simulate: bad time parameters";
  let sys = Mna.build nl in
  let steps = int_of_float (Float.ceil ((t_end /. dt) -. 1e-9)) in
  let times = Array.init (steps + 1) (fun k -> float_of_int k *. dt) in
  let probe_value x t node =
    if node = Netlist.ground then 0.0
    else
      match Netlist.driven_waveform nl node with
      | Some w -> Waveform.value w t
      | None -> x.(sys.Mna.index.(Netlist.node_id node))
  in
  let nprobe = List.length probes in
  let probes = Array.of_list probes in
  let peaks = Array.make nprobe 0.0 in
  let peak_times = Array.make nprobe 0.0 in
  let traces = if record then Some (Array.make_matrix nprobe (steps + 1) 0.0) else None in
  let observe k x =
    let t = times.(k) in
    Array.iteri
      (fun p node ->
        let v = probe_value x t node in
        if Float.abs v > peaks.(p) then begin
          peaks.(p) <- Float.abs v;
          peak_times.(p) <- t
        end;
        match traces with Some tr -> tr.(p).(k) <- v | None -> ())
      probes
  in
  (* DC operating point at t = 0 *)
  let x = ref (Linalg.Mat.solve (Linalg.Mat.copy sys.Mna.g) (rhs_g nl sys 0.0)) in
  observe 0 !x;
  if steps > 0 then begin
    (* A = G + (2/h) C, factored once; B = (2/h) C - G applied per step *)
    let a = Linalg.Mat.copy sys.Mna.g in
    let b = Linalg.Mat.copy sys.Mna.g in
    let two_h = 2.0 /. dt in
    for i = 0 to Linalg.Mat.dim sys.Mna.g - 1 do
      for j = 0 to Linalg.Mat.dim sys.Mna.g - 1 do
        let cij = Linalg.Mat.get sys.Mna.c i j in
        Linalg.Mat.add a i j (two_h *. cij);
        Linalg.Mat.set b i j ((two_h *. cij) -. Linalg.Mat.get sys.Mna.g i j)
      done
    done;
    let lu = Linalg.Mat.lu_factor a in
    let bprev = ref (rhs_g nl sys 0.0) in
    for k = 1 to steps do
      let bk = rhs_g nl sys times.(k) in
      let r = Linalg.Mat.mul_vec b !x in
      Linalg.Vec.axpy 1.0 bk r;
      Linalg.Vec.axpy 1.0 !bprev r;
      Linalg.Vec.axpy 1.0 (rhs_c nl sys ~t0:times.(k - 1) ~t1:times.(k)) r;
      x := Linalg.Mat.lu_solve lu r;
      bprev := bk;
      observe k !x
    done
  end;
  let finals = Array.map (fun node -> probe_value !x times.(steps) node) probes in
  { times; peaks; peak_times; finals; traces }
