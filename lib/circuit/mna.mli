(** Modified nodal analysis assembly, shared by the transient engine and
    the AC-moment (AWE/RICE-style) analyses.

    Driven nodes are eliminated from the unknown vector: their couplings
    are kept as right-hand-side contribution lists tagged with the source
    node, so both time-domain (waveform-weighted) and frequency-domain
    (per-source unit excitation) analyses can build their RHS. *)

type t = {
  nf : int;  (** number of free nodes *)
  nl : int;  (** number of inductor branch currents *)
  index : int array;  (** node id -> free index, or -1 for driven nodes *)
  g : Linalg.Mat.t;  (** resistive/incidence matrix over the unknowns *)
  c : Linalg.Mat.t;  (** capacitance/inductance matrix over the unknowns *)
  g_drv : (int * float * int) list;  (** row, stamp entry, driven node id *)
  c_drv : (int * float * int) list;  (** row, stamp entry, driven node id *)
  sources : int list;  (** driven node ids, deduplicated *)
}
(** The unknown vector is [[node voltages; inductor currents]]: matrices
    are [(nf + nl)] square. Inductor branch rows hold [v_a - v_b] in [g]
    and [-L di/dt] in [c]; their currents enter the node KCL rows through
    the incidence columns. *)

val build : Netlist.t -> t

val free_index : t -> Netlist.node -> int
(** Index of a free node in the unknown vector; [-1] for driven/ground. *)
