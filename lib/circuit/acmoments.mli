(** Transfer-function moments of a linear RC circuit — the core of
    AWE [25] / RICE [27] and of moment-matching noise analysis (the
    technique behind the paper's 3dnoise verifier).

    For each driven source [d], the transfer from its voltage to the
    free-node vector is [H_d(s) = (G + sC)^-1 (-G_fd - s C_fd)] with the
    Maclaurin expansion [H_d(s) = sum_k h_k s^k] computed by one LU
    factorization of [G] and one back-substitution per moment order:

    - [G h_0 = -G_fd]  (zero for purely capacitive coupling),
    - [G h_1 = -C h_0 - C_fd],
    - [G h_k = -C h_(k-1)] for [k >= 2]. *)

type t = {
  source : Netlist.node;  (** the driven node this expansion excites *)
  moments : float array array;  (** [moments.(k).(p)]: k-th moment at probe p *)
}

val transfer_moments :
  Netlist.t -> order:int -> probes:Netlist.node list -> t list
(** One entry per driven source, in source order. [order >= 0]; probing
    ground or a driven node yields zeros (its voltage is not part of the
    transfer). Raises [Linalg.Mat.Singular] if some free node lacks a
    resistive path to ground or a source. *)
