(** Time-domain source waveforms for driven circuit nodes.

    A waveform carries both its value and its exact time derivative; the
    transient engine needs the derivative to build the right-hand side
    contribution of capacitors tied to driven nodes. *)

type t

val value : t -> float -> float

val deriv : t -> float -> float

val dc : float -> t
(** Constant voltage. *)

val ramp : t0:float -> t_rise:float -> v0:float -> v1:float -> t
(** Linear transition from [v0] to [v1] starting at [t0] over [t_rise];
    constant outside the transition. Requires [t_rise > 0.]. *)

val pwl : (float * float) list -> t
(** Piecewise-linear waveform through the given (time, value) points,
    which must have strictly increasing times; constant before the first
    and after the last point. *)
