type t = float array

let make n = Array.make n 0.0

let copy = Array.copy

let axpy a x y =
  assert (Array.length x = Array.length y);
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let scale a x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- a *. x.(i)
  done

let dot x y =
  assert (Array.length x = Array.length y);
  let s = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    s := !s +. (x.(i) *. y.(i))
  done;
  !s

let norm_inf x = Array.fold_left (fun m v -> Float.max m (Float.abs v)) 0.0 x

let max_abs_diff x y =
  assert (Array.length x = Array.length y);
  let m = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    m := Float.max !m (Float.abs (x.(i) -. y.(i)))
  done;
  !m
