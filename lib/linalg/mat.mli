(** Dense square matrices with LU factorization.

    Backs the MNA circuit simulator: the conductance system of a transient
    analysis is factored once per deck and back-substituted per time step.
    Partial pivoting keeps the factorization stable for the mildly
    asymmetric systems produced by companion models. *)

type t

val create : int -> t
(** [create n] is the [n x n] zero matrix. *)

val dim : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val add : t -> int -> int -> float -> unit
(** [add m i j v] accumulates [v] into entry [(i,j)] (MNA stamping). *)

val copy : t -> t

val mul_vec : t -> Vec.t -> Vec.t

type lu
(** An LU factorization with its pivot permutation. *)

exception Singular of int
(** Raised by {!lu_factor} when a pivot column is numerically zero; the
    payload is the elimination step. *)

val lu_factor : t -> lu
(** Factor a copy of the matrix; the argument is not modified. *)

val lu_solve : lu -> Vec.t -> Vec.t
(** Solve [A x = b] for a previously factored [A]. *)

val solve : t -> Vec.t -> Vec.t
(** One-shot [lu_factor] + [lu_solve]. *)
