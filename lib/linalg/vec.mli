(** Dense float vectors (thin helpers over [float array]). *)

type t = float array

val make : int -> t
(** Zero vector. *)

val copy : t -> t

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val scale : float -> t -> unit

val dot : t -> t -> float

val norm_inf : t -> float

val max_abs_diff : t -> t -> float
