type t = { n : int; a : float array }

let create n =
  assert (n >= 0);
  { n; a = Array.make (n * n) 0.0 }

let dim m = m.n

let idx m i j =
  assert (i >= 0 && i < m.n && j >= 0 && j < m.n);
  (i * m.n) + j

let get m i j = m.a.(idx m i j)

let set m i j v = m.a.(idx m i j) <- v

let add m i j v = m.a.(idx m i j) <- m.a.(idx m i j) +. v

let copy m = { n = m.n; a = Array.copy m.a }

let mul_vec m x =
  assert (Array.length x = m.n);
  let y = Array.make m.n 0.0 in
  for i = 0 to m.n - 1 do
    let s = ref 0.0 in
    let base = i * m.n in
    for j = 0 to m.n - 1 do
      s := !s +. (m.a.(base + j) *. x.(j))
    done;
    y.(i) <- !s
  done;
  y

type lu = { lun : int; lua : float array; piv : int array }

exception Singular of int

let lu_factor m =
  let n = m.n in
  let a = Array.copy m.a in
  let piv = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    (* partial pivoting: bring the largest remaining entry of column k up *)
    let best = ref k and bestv = ref (Float.abs a.((k * n) + k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs a.((i * n) + k) in
      if v > !bestv then begin
        best := i;
        bestv := v
      end
    done;
    if !bestv < 1e-300 then raise (Singular k);
    if !best <> k then begin
      let b = !best in
      for j = 0 to n - 1 do
        let tmp = a.((k * n) + j) in
        a.((k * n) + j) <- a.((b * n) + j);
        a.((b * n) + j) <- tmp
      done;
      let tp = piv.(k) in
      piv.(k) <- piv.(b);
      piv.(b) <- tp
    end;
    let pivot = a.((k * n) + k) in
    for i = k + 1 to n - 1 do
      let f = a.((i * n) + k) /. pivot in
      a.((i * n) + k) <- f;
      if f <> 0.0 then
        for j = k + 1 to n - 1 do
          a.((i * n) + j) <- a.((i * n) + j) -. (f *. a.((k * n) + j))
        done
    done
  done;
  { lun = n; lua = a; piv }

let lu_solve f b =
  let n = f.lun in
  assert (Array.length b = n);
  let x = Array.make n 0.0 in
  (* forward substitution on the permuted right-hand side *)
  for i = 0 to n - 1 do
    let s = ref b.(f.piv.(i)) in
    for j = 0 to i - 1 do
      s := !s -. (f.lua.((i * n) + j) *. x.(j))
    done;
    x.(i) <- !s
  done;
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (f.lua.((i * n) + j) *. x.(j))
    done;
    x.(i) <- !s /. f.lua.((i * n) + i)
  done;
  x

let solve m b = lu_solve (lu_factor m) b
