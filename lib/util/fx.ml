let approx ?(rel = 1e-9) ?(abs = 1e-12) a b =
  let diff = Float.abs (a -. b) in
  diff <= abs || diff <= rel *. Float.max (Float.abs a) (Float.abs b)

let clamp ~lo ~hi x =
  assert (lo <= hi);
  Float.min hi (Float.max lo x)

let prefixes = [ (1e-15, "f"); (1e-12, "p"); (1e-9, "n"); (1e-6, "u"); (1e-3, "m"); (1.0, ""); (1e3, "k"); (1e6, "M"); (1e9, "G") ]

let si x =
  if x = 0.0 then "0"
  else if Float.is_nan x then "nan"
  else
    let mag = Float.abs x in
    let scale, p =
      List.fold_left
        (fun (bs, bp) (s, p) -> if mag >= s *. 0.9999 then (s, p) else (bs, bp))
        (1e-15, "f") prefixes
    in
    Printf.sprintf "%.3f%s" (x /. scale) p

let pct base x = if base = 0.0 then 0.0 else (x -. base) /. base *. 100.0

let repr v =
  if Float.is_integer v && Float.abs v < 1e16 then Printf.sprintf "%.0f" v
  else
    let exact p =
      let s = Printf.sprintf "%.*g" p v in
      if float_of_string s = v then Some s else None
    in
    match exact 15 with
    | Some s -> s
    | None -> ( match exact 16 with Some s -> s | None -> Printf.sprintf "%.17g" v)

(* Shift the decimal exponent of a number literal by [k] without touching
   the mantissa text: exact decimal scaling, where [*. 10.**k] would
   round twice. Returns [None] on exponents too wild to be a file value. *)
let shift10 s k =
  if k = 0 then Some s
  else
    let e =
      match String.index_opt s 'e' with None -> String.index_opt s 'E' | some -> some
    in
    match e with
    | None -> Some (s ^ "e" ^ string_of_int k)
    | Some i -> (
        let mant = String.sub s 0 i in
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some e when e + k = 0 -> Some mant
        | Some e when Int.abs e < 100_000 -> Some (mant ^ "e" ^ string_of_int (e + k))
        | Some _ | None -> None)

let of_scaled ~exp10 s =
  if s = "" then None
  else
    match Option.bind (shift10 s exp10) float_of_string_opt with
    | Some v when Float.is_finite v -> Some v
    | Some _ | None -> None

let to_scaled ~exp10 v =
  if not (Float.is_finite v) then repr v
  else match shift10 (repr v) (-exp10) with Some s -> s | None -> assert false
