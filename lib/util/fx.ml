let approx ?(rel = 1e-9) ?(abs = 1e-12) a b =
  let diff = Float.abs (a -. b) in
  diff <= abs || diff <= rel *. Float.max (Float.abs a) (Float.abs b)

let clamp ~lo ~hi x =
  assert (lo <= hi);
  Float.min hi (Float.max lo x)

let prefixes = [ (1e-15, "f"); (1e-12, "p"); (1e-9, "n"); (1e-6, "u"); (1e-3, "m"); (1.0, ""); (1e3, "k"); (1e6, "M"); (1e9, "G") ]

let si x =
  if x = 0.0 then "0"
  else if Float.is_nan x then "nan"
  else
    let mag = Float.abs x in
    let scale, p =
      List.fold_left
        (fun (bs, bp) (s, p) -> if mag >= s *. 0.9999 then (s, p) else (bs, bp))
        (1e-15, "f") prefixes
    in
    Printf.sprintf "%.3f%s" (x /. scale) p

let pct base x = if base = 0.0 then 0.0 else (x -. base) /. base *. 100.0
