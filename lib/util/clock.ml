(* OCaml 5.1's Unix module has no clock_gettime, so the monotonic
   guarantee is grafted onto gettimeofday: a shared high-water mark makes
   [now] non-decreasing across all domains. *)

let last = Atomic.make neg_infinity

let rec now () =
  let t = Unix.gettimeofday () in
  let prev = Atomic.get last in
  if t >= prev then if Atomic.compare_and_set last prev t then t else now ()
  else prev

let timed f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)
