(* OCaml 5.1's Unix module has no clock_gettime, so the monotonic
   guarantee is grafted onto gettimeofday with a high-water mark. The
   mark is domain-local (Domain.DLS): the old single Atomic was CAS'd on
   every sample, and under a warm serve pool every request latency
   sample ping-ponged that one cache line across workers. Per-domain
   marks keep [now] non-decreasing within each domain — all durations
   are taken on one domain, so they stay non-negative — without any
   cross-domain write traffic. *)

let mark = Domain.DLS.new_key (fun () -> ref neg_infinity)

let now () =
  let last = Domain.DLS.get mark in
  let t = Unix.gettimeofday () in
  if t >= !last then begin
    last := t;
    t
  end
  else !last

let timed f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)
