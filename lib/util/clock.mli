(** Wall-clock timing for the experiment harness and the batch engine.

    [Sys.time] measures CPU seconds summed over every domain, which
    double-counts under parallelism; everything that reports elapsed
    time uses this module instead. The clock is the system wall clock
    monotonized across domains: [now] never goes backwards, even if the
    underlying time-of-day clock is stepped, so durations are always
    non-negative. *)

val now : unit -> float
(** Monotonized wall-clock seconds since an arbitrary epoch. Safe to
    call concurrently from multiple domains. *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] runs [f ()] and returns its result with the elapsed wall
    time in seconds. *)
