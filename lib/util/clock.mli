(** Wall-clock timing for the experiment harness, the batch engine and
    the serve daemon.

    [Sys.time] measures CPU seconds summed over every domain, which
    double-counts under parallelism; everything that reports elapsed
    time uses this module instead. The clock is the system wall clock
    monotonized per domain: within one domain [now] never goes
    backwards, even if the underlying time-of-day clock is stepped, so
    durations — which are always taken on a single domain — are always
    non-negative. The high-water mark is domain-local ([Domain.DLS]),
    so concurrent workers sampling the clock on a hot path never write
    a shared cache line; the cost is that two samples taken on {e
    different} domains are not ordered through the mark (a stepped
    clock can make a later sample on another domain read earlier). *)

val now : unit -> float
(** Monotonized wall-clock seconds since an arbitrary epoch.
    Non-decreasing within the calling domain; safe to call concurrently
    from multiple domains (no shared state). *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] runs [f ()] and returns its result with the elapsed wall
    time in seconds. *)
