type t = {
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable lo : float;
  mutable hi : float;
}

let create () = { n = 0; sum = 0.0; sumsq = 0.0; lo = infinity; hi = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.n

let total t = t.sum

let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.0
  else
    let n = float_of_int t.n in
    let v = (t.sumsq /. n) -. ((t.sum /. n) ** 2.0) in
    sqrt (Float.max v 0.0)

let min t = t.lo

let max t = t.hi

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let percentile xs p =
  assert (xs <> [] && p >= 0.0 && p <= 100.0);
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = rank -. float_of_int lo in
  a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let histogram ~bounds xs =
  let bs = Array.of_list bounds in
  let counts = Array.make (Array.length bs + 1) 0 in
  let bucket x =
    let rec go i = if i >= Array.length bs then i else if x <= bs.(i) then i else go (i + 1) in
    go 0
  in
  List.iter (fun x -> let b = bucket x in counts.(b) <- counts.(b) + 1) xs;
  counts
