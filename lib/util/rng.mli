(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the project flows through this module so
    that workload generation and property tests are bit-reproducible across
    runs and machines. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator seeded with [seed]. *)

val copy : t -> t
(** [copy r] is an independent generator with the same state as [r]. *)

val split : t -> t
(** [split r] advances [r] and returns a new generator whose stream is
    statistically independent of the rest of [r]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int r n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float r x] is uniform in [\[0, x)]. *)

val range : t -> float -> float -> float
(** [range r lo hi] is uniform in [\[lo, hi)]. Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal deviate. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
