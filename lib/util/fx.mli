(** Floating-point helpers shared across the project. *)

val approx : ?rel:float -> ?abs:float -> float -> float -> bool
(** [approx a b] holds when [a] and [b] agree within a relative tolerance
    [rel] (default [1e-9]) or an absolute tolerance [abs] (default
    [1e-12]). *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp a value into a closed interval. Requires [lo <= hi]. *)

val si : float -> string
(** Engineering-notation rendering with an SI prefix, e.g.
    [si 3.2e-12 = "3.200p"]. Used by reports. *)

val pct : float -> float -> float
(** [pct base x] is the percent change from [base] to [x];
    [0.] when [base = 0.]. *)

val repr : float -> string
(** The shortest [%g] rendering that parses back to exactly the same
    double (tries 15, 16, then 17 significant digits) — the corpus-file
    discipline ([%.17g] round-trip) without 17 digits on every value. *)

val of_scaled : exp10:int -> string -> float option
(** [of_scaled ~exp10 s] parses [s] as a decimal scaled by [10^exp10] —
    the number is rescaled in {e string} space (the decimal exponent is
    shifted by [exp10] before [float_of_string]), so a value written by
    {!to_scaled} reads back bit-identical: no [*. 1e-12] rounding on
    either side. [None] on malformed input, including nan/inf/hex
    floats, which the file formats reject. *)

val to_scaled : exp10:int -> float -> string
(** [to_scaled ~exp10 v] renders [v /. 10^exp10] exactly: {!repr} of
    [v] with its decimal exponent shifted by [-exp10]. The file formats
    use this to print SI values in human units (ps, fF) losslessly:
    [of_scaled ~exp10 (to_scaled ~exp10 v) = Some v] for every finite
    [v]. *)
