(** Floating-point helpers shared across the project. *)

val approx : ?rel:float -> ?abs:float -> float -> float -> bool
(** [approx a b] holds when [a] and [b] agree within a relative tolerance
    [rel] (default [1e-9]) or an absolute tolerance [abs] (default
    [1e-12]). *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp a value into a closed interval. Requires [lo <= hi]. *)

val si : float -> string
(** Engineering-notation rendering with an SI prefix, e.g.
    [si 3.2e-12 = "3.200p"]. Used by reports. *)

val pct : float -> float -> float
(** [pct base x] is the percent change from [base] to [x];
    [0.] when [base = 0.]. *)
