(** ASCII table rendering for the experiment harness.

    Reproduces the paper's tables as aligned monospace text on stdout. *)

type t

val create : title:string -> headers:string list -> t

val add_row : t -> string list -> unit
(** Rows must have the same arity as the headers. *)

val render : t -> string
(** Render with a title line, a header row, and column-aligned cells. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)
