type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy r = { state = r.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 r =
  r.state <- Int64.add r.state golden;
  mix r.state

let split r = { state = bits64 r }

let int r n =
  assert (n > 0);
  let v = Int64.to_int (Int64.shift_right_logical (bits64 r) 2) in
  v mod n

let float r x =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 r) 11) in
  x *. (v /. 9007199254740992.0)

let range r lo hi =
  assert (lo <= hi);
  lo +. float r (hi -. lo)

let bool r = Int64.logand (bits64 r) 1L = 1L

let gaussian r ~mu ~sigma =
  let rec nonzero () =
    let u = float r 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float r 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let choice r a =
  assert (Array.length a > 0);
  a.(int r (Array.length a))

let shuffle r a =
  for i = Array.length a - 1 downto 1 do
    let j = int r (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
