(** Small descriptive-statistics helpers used by the experiment harness. *)

type t
(** Accumulator over a stream of floats. *)

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val total : t -> float

val mean : t -> float
(** Mean of the samples seen so far; [nan] when empty. *)

val stddev : t -> float
(** Population standard deviation; [0.] for fewer than two samples. *)

val min : t -> float
(** Smallest sample; [infinity] when empty. *)

val max : t -> float
(** Largest sample; [neg_infinity] when empty. *)

val of_list : float list -> t

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]]: linear-interpolated
    percentile of a non-empty list. *)

val histogram : bounds:float list -> float list -> int array
(** [histogram ~bounds xs] counts samples in the half-open buckets
    [(-inf, b0], (b0, b1], ..., (bn, +inf)]; the result has
    [List.length bounds + 1] entries. *)
