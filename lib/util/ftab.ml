type t = { title : string; headers : string list; mutable rows : string list list }

let create ~title ~headers = { title; headers; rows = [] }

let add_row t row =
  assert (List.length row = List.length t.headers);
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncol = List.length t.headers in
  let widths = Array.make ncol 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let line row = "| " ^ String.concat " | " (List.mapi pad row) ^ " |" in
  let sep =
    "+" ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf sep;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
