(** Integer grid points.

    Placement coordinates are integers in nanometres; the technology layer
    converts lengths to metres at the boundary. *)

type t = { x : int; y : int }

val make : int -> int -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val manhattan : t -> t -> int
(** Rectilinear (L1) distance. *)

val pp : Format.formatter -> t -> unit
