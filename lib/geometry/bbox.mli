(** Axis-aligned bounding boxes over {!Point.t}. *)

type t = { xmin : int; ymin : int; xmax : int; ymax : int }

val of_points : Point.t list -> t
(** Bounding box of a non-empty point list. *)

val half_perimeter : t -> int
(** The HPWL lower bound on net wirelength. *)

val contains : t -> Point.t -> bool

val expand : t -> int -> t
(** Grow the box by a margin on every side. *)
