type t = { x : int; y : int }

let make x y = { x; y }

let equal a b = a.x = b.x && a.y = b.y

let compare a b =
  let c = Stdlib.compare a.x b.x in
  if c <> 0 then c else Stdlib.compare a.y b.y

let manhattan a b = abs (a.x - b.x) + abs (a.y - b.y)

let pp ppf p = Format.fprintf ppf "(%d,%d)" p.x p.y
