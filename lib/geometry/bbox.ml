type t = { xmin : int; ymin : int; xmax : int; ymax : int }

let of_points = function
  | [] -> invalid_arg "Bbox.of_points: empty"
  | p :: ps ->
      List.fold_left
        (fun b (q : Point.t) ->
          { xmin = min b.xmin q.x; ymin = min b.ymin q.y; xmax = max b.xmax q.x; ymax = max b.ymax q.y })
        { xmin = p.Point.x; ymin = p.Point.y; xmax = p.Point.x; ymax = p.Point.y }
        ps

let half_perimeter b = b.xmax - b.xmin + (b.ymax - b.ymin)

let contains b (p : Point.t) = p.x >= b.xmin && p.x <= b.xmax && p.y >= b.ymin && p.y <= b.ymax

let expand b m = { xmin = b.xmin - m; ymin = b.ymin - m; xmax = b.xmax + m; ymax = b.ymax + m }
