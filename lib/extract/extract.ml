module P = Geometry.Point
module T = Rctree.Tree

type routed = {
  rnet : Steiner.Net.t;
  tree : Rctree.Tree.t;
  geometry : (P.t * P.t) option array;
}

let route process net =
  let g = Steiner.Build.of_net net in
  let tree, geometry = Steiner.Build.to_rctree_traced process net g in
  (* extraction supplies the coupling; strip the estimation currents *)
  let tree = T.map_wires tree (fun _ w -> { w with T.cur = 0.0 }) in
  { rnet = net; tree; geometry }

type config = { window : int; pitch : int; lambda_at_pitch : float; slope : float }

let default_config p =
  (* 0.35 per side: a victim squeezed between two minimum-pitch
     neighbours sees the estimation-mode corner of 0.7 total *)
  { window = 1200; pitch = 400; lambda_at_pitch = 0.35; slope = Tech.Process.slope p }

let lambda_of_spacing cfg spacing =
  if spacing <= 0 || spacing > cfg.window then 0.0
  else Float.min cfg.lambda_at_pitch (cfg.lambda_at_pitch *. float_of_int cfg.pitch /. float_of_int spacing)

(* orientation of an axis-aligned segment; [None] for degenerate points *)
let orient (a : P.t) (b : P.t) =
  if a.P.y = b.P.y && a.P.x <> b.P.x then Some `H
  else if a.P.x = b.P.x && a.P.y <> b.P.y then Some `V
  else None

(* Overlap of the victim wire segment [(vp, vn)] (parent point, node
   point) with aggressor segment [(aa, ab)]: returns
   (near, far, spacing, side) with distances measured from the node
   point [vn], in nm; [side] distinguishes aggressors above/right from
   below/left for shielding. *)
let overlap (vp, vn) (aa, ab) =
  match (orient vp vn, orient aa ab) with
  | Some `H, Some `H when vp.P.y <> aa.P.y ->
      let lo = max (min vp.P.x vn.P.x) (min aa.P.x ab.P.x) in
      let hi = min (max vp.P.x vn.P.x) (max aa.P.x ab.P.x) in
      if lo >= hi then None
      else begin
        let d1 = abs (vn.P.x - lo) and d2 = abs (vn.P.x - hi) in
        Some (min d1 d2, max d1 d2, abs (vp.P.y - aa.P.y), compare aa.P.y vp.P.y)
      end
  | Some `V, Some `V when vp.P.x <> aa.P.x ->
      let lo = max (min vp.P.y vn.P.y) (min aa.P.y ab.P.y) in
      let hi = min (max vp.P.y vn.P.y) (max aa.P.y ab.P.y) in
      if lo >= hi then None
      else begin
        let d1 = abs (vn.P.y - lo) and d2 = abs (vn.P.y - hi) in
        Some (min d1 d2, max d1 d2, abs (vp.P.x - aa.P.x), compare aa.P.x vp.P.x)
      end
  | _, _ -> None

let victim_spans cfg ~victim ~aggressors =
  (* candidate overlaps per victim wire, tagged with spacing and side *)
  let raw : (int, (Coupling.span * int * int) list) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun v geo ->
      match geo with
      | None -> ()
      | Some vseg ->
          List.iter
            (fun agg ->
              Array.iter
                (fun ageo ->
                  match ageo with
                  | None -> ()
                  | Some aseg -> (
                      match overlap vseg aseg with
                      | None -> ()
                      | Some (near_nm, far_nm, spacing, side) ->
                          let lambda = lambda_of_spacing cfg spacing in
                          if lambda > 0.0 then begin
                            let span =
                              {
                                Coupling.near = Tech.Process.of_nm near_nm;
                                far = Tech.Process.of_nm far_nm;
                                lambda;
                                slope = cfg.slope;
                              }
                            in
                            Hashtbl.replace raw v
                              ((span, spacing, side)
                              :: Option.value ~default:[] (Hashtbl.find_opt raw v))
                          end))
                agg.geometry)
            aggressors)
    victim.geometry;
  (* shielding: per side, only the closest aggressor couples *)
  let shield entries =
    let closest side =
      List.filter (fun (_, _, s) -> s = side) entries
      |> List.fold_left (fun acc (_, d, _) -> min acc d) max_int
    in
    let keep_above = closest 1 and keep_below = closest (-1) in
    List.filter_map
      (fun (span, d, side) ->
        if (side > 0 && d = keep_above) || (side < 0 && d = keep_below) then Some span else None)
      entries
  in
  (* a wire cannot expose more than its whole capacitance: when stacked
     aggressors would push the summed ratio past 1, normalize *)
  let normalize ss =
    let total = List.fold_left (fun a (s : Coupling.span) -> a +. s.Coupling.lambda) 0.0 ss in
    if total <= 0.95 then ss
    else
      List.map
        (fun (s : Coupling.span) -> { s with Coupling.lambda = s.Coupling.lambda *. 0.95 /. total })
        ss
  in
  Hashtbl.fold (fun v entries acc -> (v, normalize (shield entries)) :: acc) raw []
  |> List.filter (fun (_, ss) -> ss <> [])
  |> List.sort compare

let annotate cfg ~victim ~aggressors =
  Coupling.annotate victim.tree ~spans:(victim_spans cfg ~victim ~aggressors)
