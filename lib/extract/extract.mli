(** Coupling extraction from routed geometry.

    When routing is known, estimation mode's "one worst-case aggressor
    everywhere" gives way to real coupling: two wires couple where they
    run parallel within a window, with a ratio that falls off with their
    spacing — the paper's eq. (17) model [lambda = kappa / spacing].

    [victim_spans] walks a victim's routed segments, finds every parallel
    overlap with the other nets' segments, converts each overlap into a
    {!Coupling.span} in the victim wire's own coordinates (distance from
    its child node), and the result feeds [Coupling.annotate] — closing
    the loop routing -> extraction -> Fig. 2 segmentation -> analysis /
    BuffOpt. *)

type routed = {
  rnet : Steiner.Net.t;
  tree : Rctree.Tree.t;
  geometry : (Geometry.Point.t * Geometry.Point.t) option array;
      (** per node: parent-wire segment, from {!Steiner.Build.to_rctree_traced} *)
}

val route : Tech.Process.t -> Steiner.Net.t -> routed
(** Build the Steiner tree and keep its geometry. The tree's wires carry
    {e no} estimation-mode current ([cur = 0]) — extraction supplies the
    coupling. *)

type config = {
  window : int;  (** max centre-to-centre coupling distance, nm *)
  pitch : int;  (** spacing at which [lambda_at_pitch] applies, nm *)
  lambda_at_pitch : float;  (** coupling ratio at minimum pitch *)
  slope : float;  (** aggressor slope for every extracted span, V/s *)
}

val default_config : Tech.Process.t -> config
(** window 1200 nm, pitch 400 nm, lambda 0.35 at pitch per side — a
    victim squeezed between two minimum-pitch neighbours sees the
    paper's estimation-mode corner of 0.7 total — and the process's
    slope. *)

val lambda_of_spacing : config -> int -> float
(** Eq. (17): [lambda_at_pitch *. pitch / spacing], zero beyond the
    window. *)

val victim_spans : config -> victim:routed -> aggressors:routed list -> (int * Coupling.span list) list
(** Spans keyed by the victim tree's node ids; feed to
    [Coupling.annotate] on [victim.tree]. Overlaps of zero length and
    couplings beyond the window are dropped; per side only the closest
    aggressor couples (shielding), and summed ratios are normalized
    below 1 (a wire cannot expose more than its own capacitance). *)

val annotate : config -> victim:routed -> aggressors:routed list -> Coupling.t
(** [victim_spans] + [Coupling.annotate]. *)
