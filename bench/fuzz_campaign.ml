(* Fuzz-campaign throughput bench: Check.Fuzz differential campaigns over
   the Engine.Pool at 1 / 2 / 4 domains, emitting BENCH_fuzz.json.

     dune exec bench/fuzz_campaign.exe             # full run: 1200 instances, 1/2/4 jobs
     dune exec bench/fuzz_campaign.exe -- --smoke  # CI smoke: 150 instances, 1/2 jobs

   The campaign is healthy (no mutation): any failure means a real
   optimizer bug and exits nonzero with the minimized counterexample.
   The per-instance verdict stream is seeded up front from the master
   seed, so pass/skip counts must be identical at every job count — the
   bench asserts that too. Rates are instances per wall-clock second
   (Util.Clock); speedups are relative to the 1-job run on the same
   machine, so they are bounded by the cores actually available. *)

type run = { jobs : int; report : Check.Fuzz.report }

let json_of_sched (s : Engine.Pool.stats) =
  let u = Engine.Pool.utilization s in
  let rows =
    List.init s.Engine.Pool.workers (fun w ->
        Printf.sprintf
          "{\"worker\": %d, \"jobs\": %d, \"steals\": %d, \"busy_s\": %.6f, \
           \"utilization\": %.3f}"
          w s.Engine.Pool.jobs.(w) s.Engine.Pool.steals.(w)
          s.Engine.Pool.busy_s.(w) u.(w))
  in
  Printf.sprintf "\"chunks\": %d, \"steals_total\": %d, \"per_domain\": [%s]"
    s.Engine.Pool.chunks
    (Array.fold_left ( + ) 0 s.Engine.Pool.steals)
    (String.concat ", " rows)

let json_of_run ~base r =
  let f = r.report in
  Printf.sprintf
    "    {\"jobs\": %d, \"wall_seconds\": %.6f, \"instances_per_s\": %.2f, \
     \"speedup_vs_1_job\": %.3f, \"tested\": %d, \"passed\": %d, \"skipped\": %d, \
     %s}"
    r.jobs f.Check.Fuzz.wall_s f.Check.Fuzz.per_s
    (base /. f.Check.Fuzz.wall_s)
    f.Check.Fuzz.tested f.Check.Fuzz.passed f.Check.Fuzz.skipped
    (json_of_sched f.Check.Fuzz.sched)

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let out_path =
    let rec find i =
      if i >= Array.length Sys.argv - 1 then "BENCH_fuzz.json"
      else if Sys.argv.(i) = "-o" then Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let count = if smoke then 150 else 1200 in
  let seed = 1998 in
  let job_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let runs =
    List.map
      (fun jobs ->
        let report = Check.Fuzz.campaign ~jobs ~seed ~count () in
        Printf.printf "%d job(s): %s\n%!" jobs (Check.Fuzz.summary report);
        if report.Check.Fuzz.failures <> [] then begin
          List.iter
            (fun (f : Check.Fuzz.failure) ->
              Printf.eprintf "FAIL: real counterexample found:\n%s"
                (Check.Corpus.to_string f.Check.Fuzz.shrunk))
            report.Check.Fuzz.failures;
          exit 1
        end;
        { jobs; report })
      job_counts
  in
  let verdicts r = (r.report.Check.Fuzz.tested, r.report.Check.Fuzz.passed, r.report.Check.Fuzz.skipped) in
  let first = List.hd runs in
  List.iter
    (fun r ->
      if verdicts r <> verdicts first then begin
        Printf.eprintf "FAIL: verdict counts at %d jobs differ from the 1-job run\n" r.jobs;
        exit 1
      end)
    runs;
  let base = first.report.Check.Fuzz.wall_s in
  let oc = open_out out_path in
  Printf.fprintf oc
    "{\n  \"campaign\": {\"instances\": %d, \"seed\": %d},\n  \"smoke\": %b,\n  \
     \"recommended_domains\": %d,\n  \"units\": \"wall-clock seconds (Util.Clock)\",\n  \
     \"runs\": [\n%s\n  ]\n}\n"
    count seed smoke
    (Engine.Pool.default_domains ())
    (String.concat ",\n" (List.map (fun r -> json_of_run ~base r) runs));
  close_out oc;
  Printf.printf "wrote %s\n" out_path
