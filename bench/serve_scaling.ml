(* Serve-daemon bench: drives a live daemon through a scripted request
   mix and measures the incremental-DP speedup on the headline net,
   emitting BENCH_serve.json.

     dune exec bench/serve_scaling.exe             # full run: 2,400-request mix, 800 sinks
     dune exec bench/serve_scaling.exe -- --smoke  # CI smoke: 300 requests, 200 sinks

   Two sections:

   - "mix": a real daemon on a Unix socket, one client, a deterministic
     2,400-request mix of optimize / update-rat / update-wire /
     update-noise / stats. Reported: client-observed requests/s plus the
     daemon's own served-class accounting (cache hit rate, p50/p99
     optimize latency).

   - "incremental": the 800-sink headline DP (Per_count kmax=16, delay
     mode, the BuffOpt hot path of BENCH_dp.json) re-run after
     single-sink RAT edits through a resident Dp.Memo versus from
     scratch. The outcomes are asserted identical; the full run demands
     the >= 5x speedup the serve design is predicated on. Times are
     Util.Clock wall-clock seconds, minimum over iterations. *)

let process = Tech.Process.default

let lib = Tech.Lib.default_library

module T = Rctree.Tree
module Dp = Bufins.Dp

(* the scale-tree shape shared with bench/dp_scaling.ml *)
let big_tree sinks =
  let rng = Util.Rng.create 99 in
  let b = Rctree.Builder.create () in
  let so = Rctree.Builder.add_source b ~r_drv:100.0 ~d_drv:30e-12 in
  let attach = ref [ so ] in
  for k = 0 to sinks - 1 do
    let parent = List.nth !attach (Util.Rng.int rng (List.length !attach)) in
    let v =
      Rctree.Builder.add_internal b ~parent
        ~wire:(T.wire_of_length process (Util.Rng.range rng 0.2e-3 1.5e-3))
        ()
    in
    attach := v :: !attach;
    ignore
      (Rctree.Builder.add_sink b ~parent:v
         ~wire:(T.wire_of_length process (Util.Rng.range rng 0.2e-3 1e-3))
         ~name:(Printf.sprintf "s%d" k) ~c_sink:15e-15 ~rat:4e-9 ~nm:0.8)
  done;
  Rctree.Builder.finish b

(* {1 Incremental vs scratch on the headline net} *)

type incr_result = {
  sinks : int;
  t_full_s : float;
  t_incr_s : float;
  speedup : float;
  identical : bool;
  memo_hits : int;
  memo_misses : int;
}

let eq_best (a : Dp.outcome) (b : Dp.outcome) =
  match (a.Dp.best, b.Dp.best) with
  | None, None -> true
  | Some a, Some b ->
      a.Dp.slack = b.Dp.slack && a.Dp.count = b.Dp.count
      && a.Dp.placements = b.Dp.placements
      && a.Dp.sizes = b.Dp.sizes
  | _ -> false

let bench_incremental ~iters ~sinks () =
  let seg = Rctree.Segment.refine (big_tree sinks) ~max_len:500e-6 in
  let mode = Dp.Per_count 16 in
  let memo = Dp.Memo.create () in
  (* cold fill: the daemon's load warm pass *)
  ignore (Dp.run ~memo ~noise:false ~mode ~lib seg);
  let sink_ids = Array.of_list (T.sinks seg) in
  let tree = ref seg in
  let edit i =
    let s = sink_ids.(i * 37 mod Array.length sink_ids) in
    let rat =
      match T.kind !tree s with
      | T.Sink sk -> sk.T.rat
      | T.Source _ | T.Internal | T.Buffered _ -> assert false
    in
    tree := T.with_sink_rat !tree s ~rat:(rat *. 0.999);
    Dp.Memo.dirty memo !tree s
  in
  let t_incr = ref infinity and last = ref None in
  for i = 1 to iters do
    edit i;
    let o, dt = Util.Clock.timed (fun () -> Dp.run ~memo ~noise:false ~mode ~lib !tree) in
    if dt < !t_incr then t_incr := dt;
    last := Some o
  done;
  let t_full = ref infinity and scratch = ref None in
  for _ = 1 to iters do
    let o, dt = Util.Clock.timed (fun () -> Dp.run ~noise:false ~mode ~lib !tree) in
    if dt < !t_full then t_full := dt;
    scratch := Some o
  done;
  let identical = eq_best (Option.get !last) (Option.get !scratch) in
  {
    sinks;
    t_full_s = !t_full;
    t_incr_s = !t_incr;
    speedup = !t_full /. !t_incr;
    identical;
    memo_hits = Dp.Memo.hits memo;
    memo_misses = Dp.Memo.misses memo;
  }

(* {1 The scripted request mix against a live daemon} *)

type mix_result = {
  requests : int;
  nets : int;
  wall_s : float;
  requests_per_s : float;
  err_replies : int;
  stats_line : string;  (** the daemon's final stats reply *)
}

(* pull a [key=value] float out of the daemon's stats line *)
let stat_field line key =
  let prefix = key ^ "=" in
  let toks = String.split_on_char ' ' line in
  match
    List.find_opt
      (fun t ->
        String.length t > String.length prefix
        && String.sub t 0 (String.length prefix) = prefix)
      toks
  with
  | Some t ->
      float_of_string
        (String.sub t (String.length prefix) (String.length t - String.length prefix))
  | None -> nan

let bench_mix ~requests ~nets ~seed () =
  let path = Filename.temp_file "buffopt-serve-bench" ".sock" in
  Sys.remove path;
  let ep = Serve.Unix_path path in
  let server = Domain.spawn (fun () -> Serve.serve ep) in
  let deadline = Util.Clock.now () +. 30.0 in
  let rec wait () =
    match Serve.Client.connect ep with
    | c -> c
    | exception Unix.Unix_error _ ->
        if Util.Clock.now () > deadline then failwith "daemon never came up";
        Unix.sleepf 0.02;
        wait ()
  in
  let c = wait () in
  let req line =
    match Serve.Client.request c line with
    | Some reply -> reply
    | None -> failwith ("daemon closed the connection on: " ^ line)
  in
  let loaded = req (Printf.sprintf "load workload %d %d" nets seed) in
  Printf.printf "daemon: %s\n%!" loaded;
  (* the scripted mix: optimize-dominated with a steady trickle of RAT,
     wire and noise-environment edits — the interactive ECO pattern the
     cache and memo design targets *)
  let rng = Util.Rng.create 0x5e12e in
  let lines =
    List.init requests (fun i ->
        let net = Util.Rng.int rng nets in
        match Util.Rng.int rng 100 with
        | r when r < 55 -> Printf.sprintf "optimize %d" net
        | r when r < 72 -> Printf.sprintf "update-rat %d 0 %.1f" net (Util.Rng.range rng 200.0 4000.0)
        | r when r < 82 -> Printf.sprintf "update-wire %d 1 %.4f" net (Util.Rng.range rng 0.9 1.15)
        | r when r < 87 -> Printf.sprintf "update-noise %d %.4f" net (Util.Rng.range rng 0.8 1.25)
        | r when r < 97 -> Printf.sprintf "optimize %d" net
        | _ when i mod 2 = 0 -> "stats"
        | _ -> Printf.sprintf "optimize %d" net)
  in
  let err_replies = ref 0 in
  let (), wall_s =
    Util.Clock.timed (fun () ->
        List.iter
          (fun line ->
            let reply = req line in
            if String.length reply < 2 || String.sub reply 0 2 <> "ok" then
              incr err_replies)
          lines)
  in
  let stats_line = req "stats" in
  ignore (req "shutdown");
  Serve.Client.close c;
  Domain.join server;
  {
    requests;
    nets;
    wall_s;
    requests_per_s = float_of_int requests /. wall_s;
    err_replies = !err_replies;
    stats_line;
  }

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let out_path =
    let rec find i =
      if i >= Array.length Sys.argv - 1 then "BENCH_serve.json"
      else if Sys.argv.(i) = "-o" then Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let requests = if smoke then 300 else 2400 in
  let nets = if smoke then 12 else 40 in
  let sinks = if smoke then 200 else 800 in
  let iters = if smoke then 2 else 4 in
  let mix = bench_mix ~requests ~nets ~seed:42 () in
  Printf.printf "mix: %d requests in %.2f s (%.0f/s, %d err replies)\n%!"
    mix.requests mix.wall_s mix.requests_per_s mix.err_replies;
  Printf.printf "daemon: %s\n%!" mix.stats_line;
  let inc = bench_incremental ~iters ~sinks () in
  Printf.printf
    "incremental (%d sinks): full %.4f s, incr %.4f s -> %.1fx, identical=%b\n%!"
    inc.sinks inc.t_full_s inc.t_incr_s inc.speedup inc.identical;
  if not inc.identical then begin
    Printf.eprintf "FAIL: incremental re-optimization diverged from scratch\n";
    exit 1
  end;
  (* the design-predicating bound, enforced on the full-size headline
     net; the smoke tree is small enough that scheduling noise could
     make this flaky, so smoke only reports *)
  if (not smoke) && inc.speedup < 5.0 then begin
    Printf.eprintf "FAIL: incremental speedup %.2fx is below the required 5x\n"
      inc.speedup;
    exit 1
  end;
  let hit_rate = stat_field mix.stats_line "hit_rate" in
  let p50 = stat_field mix.stats_line "p50_ms" in
  let p99 = stat_field mix.stats_line "p99_ms" in
  let field k = int_of_float (stat_field mix.stats_line k) in
  let oc = open_out out_path in
  Printf.fprintf oc
    "{\n\
    \  \"smoke\": %b,\n\
    \  \"units\": \"wall-clock seconds (Util.Clock); latencies ms\",\n\
    \  \"mix\": {\"requests\": %d, \"nets\": %d, \"seed\": 42, \"wall_seconds\": \
     %.6f, \"requests_per_s\": %.2f, \"err_replies\": %d, \"optimizes\": %d, \
     \"cache_hits\": %d, \"served_incr\": %d, \"served_full\": %d, \
     \"cache_hit_rate\": %.3f, \"p50_ms\": %.3f, \"p99_ms\": %.3f},\n\
    \  \"incremental\": {\"sinks\": %d, \"mode\": \"per_count_k16_delay\", \
     \"t_full_s\": %.6f, \"t_incr_s\": %.6f, \"speedup\": %.2f, \"identical\": \
     %b, \"memo_hits\": %d, \"memo_misses\": %d}\n\
     }\n"
    smoke mix.requests mix.nets mix.wall_s mix.requests_per_s mix.err_replies
    (field "optimizes") (field "cache_hits") (field "incr") (field "full")
    hit_rate p50 p99 inc.sinks inc.t_full_s inc.t_incr_s inc.speedup
    inc.identical inc.memo_hits inc.memo_misses;
  close_out oc;
  Printf.printf "wrote %s\n" out_path
