(* Bechamel benchmarks: one per paper table (the kernel that regenerates
   it) plus micro-benchmarks for every substrate. Run with

     dune exec bench/main.exe

   Absolute table content comes from bin/experiments.exe; this harness
   measures the cost of the computational kernels behind each exhibit. *)

open Bechamel
open Toolkit

let process = Tech.Process.default

let lib = Tech.Lib.default_library

(* shared inputs, built once *)
let nets20 = lazy (Workload.trees process (Workload.generate { Workload.default_config with nets = 20 }))

let rep_tree =
  (* a representative many-sink workload net *)
  lazy
    (let cfg = { Workload.default_config with nets = 30; seed = 4 } in
     let nets = Workload.trees process (Workload.generate cfg) in
     match List.find_opt (fun (n, _) -> Steiner.Net.degree n >= 5) nets with
     | Some (_, t) -> t
     | None -> snd (List.hd nets))

let rep_seg = lazy (Rctree.Segment.refine (Lazy.force rep_tree) ~max_len:500e-6)

let line12 = lazy (Fixtures.two_pin process ~len:12e-3)

let table_tests =
  [
    Test.make ~name:"table1_workload_generation"
      (Staged.stage (fun () ->
           Workload.trees process (Workload.generate { Workload.default_config with nets = 20 })));
    Test.make ~name:"table2_buffopt_plus_simulation"
      (Staged.stage (fun () ->
           let tree = Lazy.force rep_tree in
           match Bufins.Buffopt.optimize Bufins.Buffopt.Buffopt ~lib tree with
           | Some r -> Noisesim.Verify.net process r.Bufins.Buffopt.report.Bufins.Eval.tree
           | None -> failwith "infeasible"));
    Test.make ~name:"table3_delayopt4"
      (Staged.stage (fun () ->
           Bufins.Vangin.run_max ~max_buffers:4 ~lib (Lazy.force rep_seg)));
    Test.make ~name:"table3_buffopt"
      (Staged.stage (fun () -> Bufins.Buffopt.problem3 ~kmax:16 ~lib (Lazy.force rep_seg)));
    Test.make ~name:"table4_delayopt_by_count"
      (Staged.stage (fun () -> Bufins.Vangin.by_count ~kmax:8 ~lib (Lazy.force rep_seg)));
  ]

let ann_line =
  lazy
    (let t =
       Rctree.Tree.map_wires (Fixtures.two_pin process ~len:6e-3) (fun _ w ->
           { w with Rctree.Tree.cur = 0.0 })
     in
     Coupling.annotate t
       ~spans:
         [
           ( 1,
             [
               {
                 Coupling.near = 0.0;
                 far = 6e-3;
                 lambda = 0.5;
                 slope = Tech.Process.slope process;
               };
             ] );
         ])

let algorithm_tests =
  [
    Test.make ~name:"multisource_bidir_bus"
      (Staged.stage (fun () ->
           let t = Fixtures.two_pin ~r_drv:100.0 ~c_sink:15e-15 process ~len:10e-3 in
           Bufins.Multisource.run ~lib
             ~old_source:{ Rctree.Tree.sname = "a"; c_sink = 15e-15; rat = 2e-9; nm = 0.8 }
             ~ports:[ { Bufins.Multisource.pnode = 1; p_r_drv = 120.0; p_d_drv = 30e-12 } ]
             t));
    Test.make ~name:"buffopt_coupled_annotation"
      (Staged.stage (fun () ->
           Bufins.Buffopt.optimize_coupled Bufins.Buffopt.Buffopt ~lib (Lazy.force ann_line)));
    Test.make ~name:"alg1_12mm_line" (Staged.stage (fun () -> Bufins.Alg1.run ~lib (Lazy.force line12)));
    Test.make ~name:"alg2_multisink" (Staged.stage (fun () -> Bufins.Alg2.run ~lib (Lazy.force rep_tree)));
    Test.make ~name:"alg3_max_slack" (Staged.stage (fun () -> Bufins.Alg3.run ~lib (Lazy.force rep_seg)));
    Test.make ~name:"vangin_max_slack"
      (Staged.stage (fun () -> Bufins.Vangin.run ~lib (Lazy.force rep_seg)));
    Test.make ~name:"wiresize_noise_aware"
      (Staged.stage (fun () -> Bufins.Wiresize.run ~noise:true ~lib (Lazy.force rep_seg)));
    Test.make ~name:"theorem1_max_safe_length"
      (Staged.stage (fun () ->
           Noise.max_safe_length ~r_b:36.0 ~i_down:1e-3 ~ns:0.8
             ~r_per_m:process.Tech.Process.r_per_m ~i_per_m:(Tech.Process.i_per_m process)));
  ]

let design = lazy (Sta.Gen.random { Sta.Gen.default_config with Sta.Gen.gates = 60; seed = 3 })

let design_tests =
  [
    Test.make ~name:"sta_analyze"
      (Staged.stage (fun () -> Sta.Engine.analyze process (Lazy.force design)));
    Test.make ~name:"flow_optimize_60_gates"
      (Staged.stage (fun () -> Sta.Flow.optimize process ~lib (Lazy.force design)));
  ]

let bus_routed =
  lazy (List.map (Extract.route process) (Workload.parallel_bus ~bits:16 ~len:10_000_000 ()))

let substrate_tests =
  [
    Test.make ~name:"extract_16bit_bus"
      (Staged.stage (fun () ->
           let routed = Lazy.force bus_routed in
           let victim = List.nth routed 8 in
           Extract.victim_spans (Extract.default_config process) ~victim
             ~aggressors:(List.filteri (fun i _ -> i <> 8) routed)));
    Test.make ~name:"steiner_20_nets"
      (Staged.stage (fun () ->
           List.map (fun (n, _) -> Steiner.Build.of_net n) (Lazy.force nets20)));
    Test.make ~name:"segment_refine"
      (Staged.stage (fun () -> Rctree.Segment.refine (Lazy.force rep_tree) ~max_len:250e-6));
    Test.make ~name:"elmore_arrivals" (Staged.stage (fun () -> Elmore.arrivals (Lazy.force rep_seg)));
    Test.make ~name:"devgan_leaf_noise" (Staged.stage (fun () -> Noise.leaf_noise (Lazy.force rep_seg)));
    Test.make ~name:"moments_order3"
      (Staged.stage (fun () -> Moments.stage_moments (Lazy.force rep_seg) ~order:3));
    Test.make ~name:"noisesim_one_stage"
      (Staged.stage (fun () ->
           let tree = Lazy.force rep_tree in
           let cfg = Noisesim.Deck.default_config process in
           let deck = Noisesim.Deck.of_stage cfg tree ~gate:(Rctree.Tree.root tree) in
           Noisesim.Deck.peak_noise cfg deck));
  ]

let all_tests =
  Test.make_grouped ~name:"buffopt"
    [
      Test.make_grouped ~name:"tables" table_tests;
      Test.make_grouped ~name:"algorithms" algorithm_tests;
      Test.make_grouped ~name:"substrates" substrate_tests;
      Test.make_grouped ~name:"design" design_tests;
    ]

let () =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] all_tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  Printf.printf "%-55s %15s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 72 '-');
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with Some [ est ] -> est | Some _ | None -> nan
      in
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%8.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "%-55s %15s\n" name pretty)
    (List.sort compare rows)
