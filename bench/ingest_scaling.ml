(* Ingest front-end throughput bench: BLIF parse + elaborate scaling
   with design size, emitting BENCH_ingest.json.

     dune exec bench/ingest_scaling.exe             # full run: 120/480/1920 gates
     dune exec bench/ingest_scaling.exe -- --smoke  # CI smoke: 120/480 gates

   Each row round-trips a generated design: render to BLIF text, then
   repeatedly parse (Blif.of_string) and elaborate (Elab.design_of_blif)
   from the text, reporting wall seconds, gates/s and parsed MB/s. The
   bench asserts the front end's determinism contract on every size —
   two independent parse+elaborate runs must produce byte-identical
   Netfmt renderings — and exits nonzero if it does not hold. *)

let reps = 5

type row = {
  gates : int;
  bytes : int;
  nets : int;
  parse_s : float;
  elab_s : float;
}

let json_of_row r =
  let per t = float_of_int (r.gates * reps) /. t in
  Printf.sprintf
    "    {\"gates\": %d, \"blif_bytes\": %d, \"nets\": %d, \"reps\": %d, \
     \"parse_seconds\": %.6f, \"elab_seconds\": %.6f, \"parse_mb_per_s\": %.2f, \
     \"parse_gates_per_s\": %.0f, \"elab_gates_per_s\": %.0f}"
    r.gates r.bytes r.nets reps r.parse_s r.elab_s
    (float_of_int (r.bytes * reps) /. r.parse_s /. 1e6)
    (per r.parse_s) (per r.elab_s)

let bench gates =
  let design =
    Sta.Gen.random { Sta.Gen.default_config with Sta.Gen.gates; seed = 20_26 }
  in
  let text = Ingest.Blif.to_string (Ingest.Elab.blif_of_design design) in
  let once () =
    Sta.Netfmt.to_string
      (fst (Ingest.Elab.design_of_blif (Ingest.Blif.of_string text)))
  in
  if once () <> once () then begin
    Printf.eprintf "FAIL: elaboration of %d gates is not deterministic\n" gates;
    exit 1
  end;
  let timed f =
    let t0 = Util.Clock.now () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    Util.Clock.now () -. t0
  in
  let parse_s = timed (fun () -> Ingest.Blif.of_string text) in
  let ast = Ingest.Blif.of_string text in
  let elab_s = timed (fun () -> Ingest.Elab.design_of_blif ast) in
  let elaborated, _ = Ingest.Elab.design_of_blif ast in
  let r =
    {
      gates;
      bytes = String.length text;
      nets = Array.length elaborated.Sta.Design.nets;
      parse_s;
      elab_s;
    }
  in
  Printf.printf "%d gates (%d nets, %d KB): parse %.1f ms, elaborate %.1f ms (x%d)\n%!"
    gates r.nets (r.bytes / 1024) (parse_s *. 1e3) (elab_s *. 1e3) reps;
  r

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let out_path =
    let rec find i =
      if i >= Array.length Sys.argv - 1 then "BENCH_ingest.json"
      else if Sys.argv.(i) = "-o" then Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let sizes = if smoke then [ 120; 480 ] else [ 120; 480; 1920 ] in
  let rows = List.map bench sizes in
  let oc = open_out out_path in
  Printf.fprintf oc
    "{\n  \"smoke\": %b,\n  \"units\": \"wall-clock seconds (Util.Clock)\",\n  \
     \"determinism\": \"asserted: parse+elaborate twice -> byte-identical designs\",\n  \
     \"rows\": [\n%s\n  ]\n}\n"
    smoke
    (String.concat ",\n" (List.map json_of_row rows));
  close_out oc;
  Printf.printf "wrote %s\n" out_path
