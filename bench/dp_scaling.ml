(* DP candidate-engine scaling bench: runs the Van Ginneken / Algorithm 3
   engine on synthetic trees of 50 / 200 / 800 sinks and emits BENCH_dp.json.

     dune exec bench/dp_scaling.exe             # full run (3 iterations)
     dune exec bench/dp_scaling.exe -- --smoke  # CI smoke mode (1 iteration)

   The headline run is the 800-sink [Per_count kmax=16] delay-mode DP — the
   BuffOpt / DelayOpt(k) hot path. A library-size sweep (b = 1 / 4 / 8
   buffer types) tracks how the per-type frontier populations and the
   predictive-pruning rate (DESIGN.md §12) scale with the library. Times
   are Util.Clock wall-clock seconds (Sys.time CPU seconds would
   double-count under parallelism), the minimum over iterations. *)

let process = Tech.Process.default

let lib = Tech.Lib.default_library

(* The test suite's scale-tree shape (test/test_scale.ml): a random
   caterpillar-ish topology, one sink hanging off every internal node. *)
let big_tree sinks =
  let rng = Util.Rng.create 99 in
  let b = Rctree.Builder.create () in
  let so = Rctree.Builder.add_source b ~r_drv:100.0 ~d_drv:30e-12 in
  let attach = ref [ so ] in
  for k = 0 to sinks - 1 do
    let parent = List.nth !attach (Util.Rng.int rng (List.length !attach)) in
    let v =
      Rctree.Builder.add_internal b ~parent
        ~wire:(Rctree.Tree.wire_of_length process (Util.Rng.range rng 0.2e-3 1.5e-3))
        ()
    in
    attach := v :: !attach;
    ignore
      (Rctree.Builder.add_sink b ~parent:v
         ~wire:(Rctree.Tree.wire_of_length process (Util.Rng.range rng 0.2e-3 1e-3))
         ~name:(Printf.sprintf "s%d" k) ~c_sink:15e-15 ~rat:4e-9 ~nm:0.8)
  done;
  Rctree.Builder.finish b

type run = {
  name : string;
  sinks : int;
  noise : bool;
  kmax : int option;
  lib_size : int;
  seconds : float;
  slack : float;
  energy : float;
  generated : int;
  pruned : int;
  pred_pruned : int;
  power_pruned : int;
  peak_width : int;
  type_widths : int array;
  arena : int;
  minor_words : float;
  major_words : float;
}

let time_run ~iters f =
  let best = ref infinity in
  let out = ref None in
  for _ = 1 to iters do
    let r, dt = Util.Clock.timed f in
    if dt < !best then best := dt;
    out := Some r
  done;
  (!best, Option.get !out)

let scenario ?(lib = lib) ?suffix ?budget_frac ~iters ~sinks ~noise ~kmax () =
  let seg = Rctree.Segment.refine (big_tree sinks) ~max_len:500e-6 in
  let mode =
    match (kmax, budget_frac) with
    | None, None -> Bufins.Dp.Single
    | Some k, None -> Bufins.Dp.Per_count k
    | Some k, Some frac ->
        (* the budget is a fraction of the unconstrained winner's
           energy, measured by an untimed Per_count reference run *)
        let unc =
          (Bufins.Dp.run ~noise ~mode:(Bufins.Dp.Per_count k) ~lib seg).Bufins.Dp.best
        in
        let e = match unc with Some r -> r.Bufins.Dp.energy | None -> 0.0 in
        Bufins.Dp.Power_bounded { budget = frac *. e; kmax = k }
    | None, Some _ -> invalid_arg "budget_frac requires kmax"
  in
  let seconds, (outcome : Bufins.Dp.outcome) =
    time_run ~iters (fun () -> Bufins.Dp.run ~noise ~mode ~lib seg)
  in
  let slack = match outcome.Bufins.Dp.best with Some r -> r.Bufins.Dp.slack | None -> nan in
  let energy = match outcome.Bufins.Dp.best with Some r -> r.Bufins.Dp.energy | None -> 0.0 in
  {
    name =
      Printf.sprintf "%s_%s_%d%s"
        (match (kmax, budget_frac) with
        | None, _ -> "single"
        | Some k, None -> Printf.sprintf "per_count_k%d" k
        | Some k, Some frac -> Printf.sprintf "power_k%d_p%.0f" k (frac *. 100.))
        (if noise then "noise" else "delay")
        sinks
        (match suffix with None -> "" | Some s -> "_" ^ s);
    sinks;
    noise;
    kmax;
    lib_size = List.length lib;
    seconds;
    slack;
    energy;
    generated = outcome.Bufins.Dp.stats.Bufins.Dp.generated;
    pruned = outcome.Bufins.Dp.stats.Bufins.Dp.pruned;
    pred_pruned = outcome.Bufins.Dp.stats.Bufins.Dp.pred_pruned;
    power_pruned = outcome.Bufins.Dp.stats.Bufins.Dp.power_pruned;
    peak_width = outcome.Bufins.Dp.stats.Bufins.Dp.peak_width;
    type_widths = outcome.Bufins.Dp.stats.Bufins.Dp.type_widths;
    arena = outcome.Bufins.Dp.stats.Bufins.Dp.arena;
    (* per-run Gc deltas measured by the DP itself; minor words are the
       allocation-pressure headline the trace-arena refactor targets *)
    minor_words = outcome.Bufins.Dp.stats.Bufins.Dp.minor_words;
    major_words = outcome.Bufins.Dp.stats.Bufins.Dp.major_words;
  }

let json_of_run r =
  Printf.sprintf
    "    {\"name\": \"%s\", \"sinks\": %d, \"noise\": %b, \"kmax\": %s, \"lib_size\": %d, \
     \"wall_seconds\": %.6f, \"slack\": %.6e, \"energy\": %.6e, \"generated\": %d, \
     \"pruned\": %d, \"pred_pruned\": %d, \"power_pruned\": %d, \"peak_width\": %d, \
     \"type_widths\": [%s], \"arena_nodes\": %d, \"minor_words\": %.0f, \"major_words\": \
     %.0f}"
    r.name r.sinks r.noise
    (match r.kmax with None -> "null" | Some k -> string_of_int k)
    r.lib_size r.seconds r.slack r.energy r.generated r.pruned r.pred_pruned r.power_pruned
    r.peak_width
    (String.concat ", " (Array.to_list (Array.map string_of_int r.type_widths)))
    r.arena r.minor_words r.major_words

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let out_path =
    let rec find i = if i >= Array.length Sys.argv - 1 then "BENCH_dp.json"
      else if Sys.argv.(i) = "-o" then Sys.argv.(i + 1) else find (i + 1)
    in
    find 1
  in
  let iters = if smoke then 1 else 3 in
  let sub_lib b = List.filteri (fun i _ -> i < b) lib in
  let runs =
    List.concat
      [
        (* the headline scaling series: count-indexed delay DP, kmax = 16 *)
        List.map
          (fun sinks -> scenario ~iters ~sinks ~noise:false ~kmax:(Some 16) ())
          [ 50; 200; 800 ];
        (* the noise-constrained engine (Algorithm 3), unbucketed *)
        List.map (fun sinks -> scenario ~iters ~sinks ~noise:true ~kmax:None ()) [ 50; 200; 800 ];
        (* library-size sweep: per-type frontier widths and predictive
           pruning rates for b = 1 / 4 / 8 buffer types *)
        List.concat_map
          (fun sinks ->
            List.map
              (fun b ->
                scenario ~lib:(sub_lib b)
                  ~suffix:(Printf.sprintf "b%d" b)
                  ~iters ~sinks ~noise:false ~kmax:(Some 16) ())
              [ 1; 4; 8 ])
          [ 200; 800 ];
        (* the energy-budgeted engine: its 3-axis frontier is far wider
           than the 2-axis one, so these rows use 4 buffer types and
           kmax = 8 (the experiments' power curve settings) with the
           budget at half the unconstrained winner's energy *)
        List.map
          (fun sinks ->
            scenario ~lib:(sub_lib 4) ~suffix:"b4" ~budget_frac:0.5 ~iters ~sinks
              ~noise:false ~kmax:(Some 8) ())
          [ 50; 200; 800 ];
      ]
  in
  List.iter
    (fun r ->
      Printf.printf
        "%-28s %10.3f s wall  slack %+.1f ps  energy %.1f fJ  generated %d  pruned %d  \
         pred-pruned %d  power-pruned %d  peak width %d  arena %d  alloc %.1f/%.1f Mwords \
         minor/major\n%!"
        r.name r.seconds (r.slack *. 1e12) (r.energy *. 1e15) r.generated r.pruned
        r.pred_pruned r.power_pruned r.peak_width r.arena
        (r.minor_words /. 1e6) (r.major_words /. 1e6))
    runs;
  let oc = open_out out_path in
  Printf.fprintf oc "{\n  \"engine\": \"predictive\",\n  \"smoke\": %b,\n  \"runs\": [\n%s\n  ]\n}\n"
    smoke
    (String.concat ",\n" (List.map json_of_run runs));
  close_out oc;
  Printf.printf "wrote %s\n" out_path
