(* Batch-engine scaling bench: Engine.optimize (BuffOpt, kmax 16) over the
   paper's 500-net workload at 1 / 2 / 4 domains, emitting BENCH_batch.json.

     dune exec bench/batch_scaling.exe             # full run: 500 nets, 1/2/4 domains
     dune exec bench/batch_scaling.exe -- --smoke  # CI smoke: 60 nets, 1/2 domains

   The bench *asserts* the engine's determinism guarantee: the aggregate
   report (Engine.signature — per-net outcomes merged in job order, timing
   excluded) must be byte-identical at every domain count; any divergence
   exits nonzero. Times are Util.Clock wall-clock seconds; speedups are
   relative to the 1-domain run on the same machine, so they are bounded
   by the cores actually available. *)

let process = Tech.Process.default

let lib = Tech.Lib.default_library

type run = {
  domains : int;
  timing : Engine.timing;
  ok : int;
  failed : int;
  buffers : int;
  minor_words : float;
}

(* per-worker scheduling columns: the regression this bench guards is
   exactly the one these make visible — a worker at 0.2 utilization or
   a steal count rivaling the chunk count means the shards were wrong *)
let json_of_sched (s : Engine.Pool.stats) =
  let u = Engine.Pool.utilization s in
  let rows =
    List.init s.Engine.Pool.workers (fun w ->
        Printf.sprintf
          "{\"worker\": %d, \"jobs\": %d, \"steals\": %d, \"busy_s\": %.6f, \
           \"utilization\": %.3f}"
          w s.Engine.Pool.jobs.(w) s.Engine.Pool.steals.(w)
          s.Engine.Pool.busy_s.(w) u.(w))
  in
  Printf.sprintf "\"chunks\": %d, \"steals_total\": %d, \"per_domain\": [%s]"
    s.Engine.Pool.chunks
    (Array.fold_left ( + ) 0 s.Engine.Pool.steals)
    (String.concat ", " rows)

let json_of_run ~base r =
  let t = r.timing in
  Printf.sprintf
    "    {\"domains\": %d, \"wall_seconds\": %.6f, \"nets_per_s\": %.2f, \
     \"speedup_vs_1_domain\": %.3f, \"lat_min_s\": %.6f, \"lat_mean_s\": %.6f, \
     \"lat_max_s\": %.6f, \"ok\": %d, \"failed\": %d, \"buffers\": %d, \
     \"dp_minor_words\": %.0f, %s}"
    r.domains t.Engine.wall_s t.Engine.jobs_per_s
    (base /. t.Engine.wall_s)
    t.Engine.lat_min_s t.Engine.lat_mean_s t.Engine.lat_max_s r.ok r.failed
    r.buffers r.minor_words
    (json_of_sched t.Engine.sched)

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let out_path =
    let rec find i =
      if i >= Array.length Sys.argv - 1 then "BENCH_batch.json"
      else if Sys.argv.(i) = "-o" then Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let nets = if smoke then 60 else 500 in
  let seed = 1998 in
  let domain_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let jobs =
    Workload.trees process (Workload.generate { Workload.default_config with nets; seed })
  in
  let runs_and_sigs =
    List.map
      (fun domains ->
        let r =
          Engine.optimize ~domains ~algorithm:Bufins.Buffopt.Buffopt ~lib jobs
        in
        Printf.printf "%d domain(s): %s\n%!" domains (Engine.summary r);
        ( {
            domains;
            timing = r.Engine.timing;
            ok = r.Engine.ok;
            failed = r.Engine.failed;
            buffers = r.Engine.buffers;
            minor_words = r.Engine.dp.Bufins.Dp.minor_words;
          },
          Engine.signature r ))
      domain_counts
  in
  (* the determinism guarantee, enforced: identical aggregate at every
     domain count — including the batch-summed minor words, which are
     domain-local flushed-window deltas and therefore bit-exact *)
  let first, sig1 = List.hd runs_and_sigs in
  List.iter
    (fun (r, s) ->
      if s <> sig1 then begin
        Printf.eprintf
          "FAIL: aggregate report at %d domains differs from the 1-domain run\n"
          r.domains;
        exit 1
      end;
      if r.minor_words <> first.minor_words then begin
        Printf.eprintf
          "FAIL: batch-summed minor words at %d domains (%.0f) differ from the \
           1-domain sum (%.0f)\n"
          r.domains r.minor_words first.minor_words;
        exit 1
      end)
    runs_and_sigs;
  Printf.printf "aggregate reports identical across {%s} domains (md5 %s)\n"
    (String.concat ", " (List.map string_of_int domain_counts))
    (Digest.to_hex (Digest.string sig1));
  let base = (fst (List.hd runs_and_sigs)).timing.Engine.wall_s in
  let oc = open_out out_path in
  Printf.fprintf oc
    "{\n  \"workload\": {\"nets\": %d, \"seed\": %d},\n  \"smoke\": %b,\n  \
     \"recommended_domains\": %d,\n  \"aggregate_signature_md5\": \"%s\",\n  \
     \"units\": \"wall-clock seconds (Util.Clock)\",\n  \"runs\": [\n%s\n  ]\n}\n"
    nets seed smoke
    (Engine.Pool.default_domains ())
    (Digest.to_hex (Digest.string sig1))
    (String.concat ",\n" (List.map (fun (r, _) -> json_of_run ~base r) runs_and_sigs));
  close_out oc;
  Printf.printf "wrote %s\n" out_path
