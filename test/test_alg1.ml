open Helpers
module T = Rctree.Tree

let chain_gen =
  QCheck2.Gen.(
    let* seed = small_int in
    let* len = float_range 0.5e-3 20e-3 in
    let* r_drv = float_range 20.0 400.0 in
    let rng = Util.Rng.create seed in
    return (Fixtures.two_pin ~r_drv ~c_sink:(Util.Rng.range rng 2e-15 50e-15) process ~len))

let tests =
  [
    case "short wire needs no buffer" (fun () ->
        let t = Fixtures.two_pin ~r_drv:50.0 process ~len:0.5e-3 in
        let r = Bufins.Alg1.run ~lib t in
        Alcotest.(check int) "none" 0 r.Bufins.Alg1.count);
    case "12 mm line needs exactly three buffers" (fun () ->
        let t = Fixtures.two_pin process ~len:12e-3 in
        let r = Bufins.Alg1.run ~lib t in
        Alcotest.(check int) "three" 3 r.Bufins.Alg1.count);
    qcase ~count:120 "result is always noise-clean" chain_gen (fun t ->
        let r = Bufins.Alg1.run ~lib t in
        Bufins.Eval.noise_clean (Bufins.Eval.apply t r.Bufins.Alg1.placements));
    qcase ~count:80 "buffers sit at maximal positions" chain_gen (fun t ->
        let r = Bufins.Alg1.run ~lib t in
        (* pushing any wire-interior buffer up by 1% of the wire must break
           a noise margin somewhere (Theorem 1 maximality) *)
        List.for_all
          (fun (p : Rctree.Surgery.placement) ->
            let len = (T.wire_to t p.Rctree.Surgery.node).T.length in
            let bump = 0.01 *. len in
            if p.Rctree.Surgery.dist +. bump >= len then true
            else begin
              let moved =
                List.map
                  (fun (q : Rctree.Surgery.placement) ->
                    if q == p then { q with Rctree.Surgery.dist = q.Rctree.Surgery.dist +. bump }
                    else q)
                  r.Bufins.Alg1.placements
              in
              not (Bufins.Eval.noise_clean (Bufins.Eval.apply t moved))
            end)
          r.Bufins.Alg1.placements);
    qcase ~count:40 "count within brute-force optimum" chain_gen (fun t ->
        match segment_for_brute t with
        | None -> true
        | Some seg -> (
            let r = Bufins.Alg1.run ~lib t in
            match Bufins.Brute.min_buffers_noise ~lib:[ Tech.Lib.min_resistance lib ] seg with
            | Some (k, _) -> r.Bufins.Alg1.count <= k
            | None -> true));
    qcase ~count:80 "non-negative source noise slack" chain_gen (fun t ->
        let r = Bufins.Alg1.run ~lib t in
        r.Bufins.Alg1.ns_at_source >= 0.0);
    case "multi-sink tree rejected" (fun () ->
        let t = Fixtures.balanced process ~levels:1 ~trunk_len:1e-3 in
        Alcotest.(check bool) "raises" true
          (match Bufins.Alg1.run ~lib t with exception Invalid_argument _ -> true | _ -> false));
    case "weak driver forces a buffer right below the source" (fun () ->
        (* the line itself is fine for the strongest buffer, but the
           source's resistance violates the margin (paper Step 5) *)
        let t = Fixtures.two_pin ~r_drv:400.0 ~nm:0.5 process ~len:3.0e-3 in
        Alcotest.(check bool) "unbuffered violates" true (not (Bufins.Eval.noise_clean (Bufins.Eval.of_tree t)));
        let r = Bufins.Alg1.run ~lib t in
        Alcotest.(check bool) "fixed" true
          (Bufins.Eval.noise_clean (Bufins.Eval.apply t r.Bufins.Alg1.placements));
        Alcotest.(check bool) "has top placement" true
          (List.exists
             (fun (p : Rctree.Surgery.placement) ->
               p.Rctree.Surgery.dist >= (T.wire_to t p.Rctree.Surgery.node).T.length -. 1e-9)
             r.Bufins.Alg1.placements));
    qcase ~count:60 "segmenting does not change the answer" chain_gen (fun t ->
        (* Algorithm 1 places buffers continuously, so pre-segmenting the
           line must not change the optimal count *)
        let seg = Rctree.Segment.refine t ~max_len:700e-6 in
        (Bufins.Alg1.run ~lib t).Bufins.Alg1.count
        = (Bufins.Alg1.run ~lib seg).Bufins.Alg1.count);
    case "empty library rejected" (fun () ->
        let t = Fixtures.two_pin process ~len:1e-3 in
        Alcotest.(check bool) "raises" true
          (match Bufins.Alg1.run ~lib:[] t with exception Invalid_argument _ -> true | _ -> false));
  ]

let suites = [ ("bufins.alg1", tests) ]
