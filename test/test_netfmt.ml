open Helpers

let tmp_write content =
  let path = Filename.temp_file "buffopt_test" ".design" in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

let tests =
  [
    case "round trip preserves the design" (fun () ->
        let d = Sta.Gen.random { Sta.Gen.default_config with Sta.Gen.gates = 30; seed = 5 } in
        let path = tmp_write (Sta.Netfmt.to_string d) in
        let d' = Sta.Netfmt.read path in
        Sys.remove path;
        Alcotest.(check string) "stats" (Sta.Design.stats d) (Sta.Design.stats d');
        (* identical STA results prove electrical equivalence *)
        let a = Sta.Engine.analyze process d and b = Sta.Engine.analyze process d' in
        feq_rel "wns" ~eps:1e-6 a.Sta.Engine.wns b.Sta.Engine.wns;
        feq_rel "tns" ~eps:1e-6 (a.Sta.Engine.tns +. 1e-15) (b.Sta.Engine.tns +. 1e-15);
        Alcotest.(check int) "noisy" a.Sta.Engine.noisy_nets b.Sta.Engine.noisy_nets);
    case "small design parses" (fun () ->
        let path =
          tmp_write
            "# tiny\n\
             pi in 0 0 0 100 20\n\
             po out 4000 0 2000 30 0.8\n\
             inst g0 inv_x4 2000 0\n\
             net n0 pi:in g0:0\n\
             net n1 g0 po:out\n"
        in
        let d = Sta.Netfmt.read path in
        Sys.remove path;
        Alcotest.(check (result unit string)) "valid" (Ok ()) (Sta.Design.validate d);
        Alcotest.(check int) "one gate" 1 (Array.length d.Sta.Design.instances));
    case "unknown cell rejected" (fun () ->
        let path =
          tmp_write "pi in 0 0 0 100 20\npo out 1 1 2000 30 0.8\ninst g0 bogus 2 2\n"
        in
        let r = match Sta.Netfmt.read path with exception Sta.Netfmt.Parse _ -> true | _ -> false in
        Sys.remove path;
        Alcotest.(check bool) "raises" true r);
    case "unknown reference rejected" (fun () ->
        let path = tmp_write "pi in 0 0 0 100 20\nnet n0 pi:in g9:0\n" in
        let r = match Sta.Netfmt.read path with exception Sta.Netfmt.Parse _ -> true | _ -> false in
        Sys.remove path;
        Alcotest.(check bool) "raises" true r);
    case "invalid design rejected with location" (fun () ->
        (* a PI that drives nothing *)
        let path = tmp_write "pi in 0 0 0 100 20\npo out 1 1 2000 30 0.8\n" in
        let r =
          match Sta.Netfmt.read path with
          | exception Sta.Netfmt.Parse msg -> String.length msg > 0
          | _ -> false
        in
        Sys.remove path;
        Alcotest.(check bool) "raises parse" true r);
    case "duplicate names rejected" (fun () ->
        let path = tmp_write "pi in 0 0 0 100 20\npi in 1 1 0 100 20\n" in
        let r = match Sta.Netfmt.read path with exception Sta.Netfmt.Parse _ -> true | _ -> false in
        Sys.remove path;
        Alcotest.(check bool) "raises" true r);
  ]


(* appended: cell library files *)
let cellfile_tests =
  [
    case "round trip preserves the library" (fun () ->
        let path = Filename.temp_file "cells" ".lib" in
        Sta.Cellfile.write path Sta.Cell.library;
        let cells = Sta.Cellfile.read path in
        Sys.remove path;
        Alcotest.(check int) "count" (List.length Sta.Cell.library) (List.length cells);
        List.iter2
          (fun (a : Sta.Cell.t) (b : Sta.Cell.t) ->
            Alcotest.(check string) "name" a.Sta.Cell.cname b.Sta.Cell.cname;
            Alcotest.(check int) "inputs" a.Sta.Cell.n_inputs b.Sta.Cell.n_inputs;
            feq_rel "c_in" ~eps:1e-6 a.Sta.Cell.c_in b.Sta.Cell.c_in;
            feq_rel "r_out" ~eps:1e-6 a.Sta.Cell.r_out b.Sta.Cell.r_out)
          Sta.Cell.library cells);
    case "design file resolves against a custom library" (fun () ->
        let cpath = tmp_write "cell myinv 1 5.0 300 20 0.75\n" in
        let cells = Sta.Cellfile.read cpath in
        Sys.remove cpath;
        let dpath =
          tmp_write
            "pi in 0 0 0 100 20\n\
             po out 4000 0 2000 30 0.8\n\
             inst g0 myinv 2000 0\n\
             net n0 pi:in g0:0\n\
             net n1 g0 po:out\n"
        in
        let d = Sta.Netfmt.read ~cells dpath in
        Sys.remove dpath;
        Alcotest.(check string) "cell used" "myinv"
          d.Sta.Design.instances.(0).Sta.Design.cell.Sta.Cell.cname;
        feq "margin carried" 0.75 d.Sta.Design.instances.(0).Sta.Design.cell.Sta.Cell.nm);
    case "duplicates and junk rejected" (fun () ->
        let reject content =
          let path = tmp_write content in
          let r =
            match Sta.Cellfile.read path with exception Sta.Cellfile.Parse _ -> true | _ -> false
          in
          Sys.remove path;
          r
        in
        Alcotest.(check bool) "duplicate" true
          (reject "cell a 1 5 300 20 0.8\ncell a 1 5 300 20 0.8\n");
        Alcotest.(check bool) "empty" true (reject "# nothing\n");
        Alcotest.(check bool) "bad number" true (reject "cell a 1 x 300 20 0.8\n");
        Alcotest.(check bool) "zero resistance" true (reject "cell a 1 5 0 20 0.8\n"));
  ]

let suites = [ ("sta.netfmt", tests); ("sta.cellfile", cellfile_tests) ]
