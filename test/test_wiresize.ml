open Helpers
module T = Rctree.Tree

let tree_gen =
  QCheck2.Gen.(
    map
      (fun seed ->
        let rng = Util.Rng.create seed in
        segment_for_brute (theorem5_tree rng))
      small_int)

let workload_gen =
  QCheck2.Gen.(
    map
      (fun seed ->
        let cfg = { Workload.default_config with nets = 1; seed } in
        snd (List.hd (Workload.trees process (Workload.generate cfg))))
      small_int)

(* exhaustive joint optimum over width and buffer assignments *)
let brute_joint ~widths ~lib tree =
  let wire_nodes =
    List.filter
      (fun v -> v <> T.root tree && (T.wire_to tree v).T.length > 0.0)
      (T.postorder tree)
  in
  let rec width_assignments = function
    | [] -> Seq.return []
    | v :: rest ->
        Seq.concat_map
          (fun tail -> Seq.map (fun w -> (v, w) :: tail) (List.to_seq widths))
          (width_assignments rest)
  in
  Seq.fold_left
    (fun best sizes ->
      let sized = Bufins.Wiresize.apply_sizes tree sizes in
      match Bufins.Brute.best_slack ~noise:false ~lib sized with
      | Some (slack, _) -> (
          match best with Some b when b >= slack -> best | Some _ | None -> Some slack)
      | None -> best)
    None (width_assignments wire_nodes)

let tests =
  [
    case "resize model" (fun () ->
        let w = T.make_wire ~length:1e-3 ~res:80.0 ~cap:2e-13 ~cur:1e-3 in
        let r = T.resize_wire w ~width:2.0 ~area_frac:0.4 in
        feq_rel "half resistance" ~eps:1e-12 40.0 r.T.res;
        feq_rel "area grows" ~eps:1e-12 (2e-13 *. ((0.4 *. 2.0) +. 0.6)) r.T.cap;
        feq_rel "coupling unchanged" ~eps:1e-12 1e-3 r.T.cur;
        feq_rel "length unchanged" ~eps:1e-12 1e-3 r.T.length);
    case "width one is the identity" (fun () ->
        let w = T.make_wire ~length:1e-3 ~res:80.0 ~cap:2e-13 ~cur:1e-3 in
        let r = T.resize_wire w ~width:1.0 ~area_frac:0.4 in
        feq_rel "res" ~eps:1e-15 w.T.res r.T.res;
        feq_rel "cap" ~eps:1e-15 w.T.cap r.T.cap);
    qcase ~count:15 "matches joint brute force (single buffer, widths 1/3)" tree_gen (function
      | None -> true
      | Some seg -> (
          let feasible = List.filter (T.feasible seg) (T.internals seg) in
          let wires =
            List.filter (fun v -> v <> T.root seg && (T.wire_to seg v).T.length > 0.0) (T.postorder seg)
          in
          if List.length feasible > 4 || List.length wires > 6 then true
          else begin
            let widths = [ 1.0; 3.0 ] in
            match
              ( Bufins.Wiresize.run ~widths ~noise:false ~lib:single_lib seg,
                brute_joint ~widths ~lib:single_lib seg )
            with
            | Some r, Some best -> Util.Fx.approx ~rel:1e-9 ~abs:1e-15 best r.Bufins.Wiresize.slack
            | None, _ | _, None -> false
          end));
    qcase ~count:40 "wider menu never hurts" workload_gen (fun t ->
        let seg = Rctree.Segment.refine t ~max_len:1e-3 in
        match
          ( Bufins.Wiresize.run ~widths:[ 1.0 ] ~noise:false ~lib seg,
            Bufins.Wiresize.run ~widths:[ 1.0; 2.0; 4.0 ] ~noise:false ~lib seg )
        with
        | Some narrow, Some wide -> wide.Bufins.Wiresize.slack >= narrow.Bufins.Wiresize.slack -. 1e-15
        | _, _ -> false);
    qcase ~count:40 "predicted slack equals evaluated slack" workload_gen (fun t ->
        let seg = Rctree.Segment.refine t ~max_len:1e-3 in
        match Bufins.Wiresize.run ~noise:false ~lib seg with
        | Some r ->
            let report = Bufins.Wiresize.evaluate seg r in
            Util.Fx.approx ~rel:1e-9 ~abs:1e-16 r.Bufins.Wiresize.slack report.Bufins.Eval.slack
        | None -> false);
    qcase ~count:30 "noise mode stays clean with sizing" workload_gen (fun t ->
        let seg = Rctree.Segment.refine t ~max_len:700e-6 in
        match Bufins.Wiresize.run ~noise:true ~lib seg with
        | Some r -> Bufins.Eval.noise_clean (Bufins.Wiresize.evaluate seg r)
        | None -> false);
    qcase ~count:30 "sizing never hurts the noise-constrained optimum" workload_gen (fun t ->
        let seg = Rctree.Segment.refine t ~max_len:700e-6 in
        match (Bufins.Alg3.run ~lib seg, Bufins.Wiresize.run ~noise:true ~lib seg) with
        | Some plain, Some sized -> sized.Bufins.Wiresize.slack >= plain.Bufins.Dp.slack -. 1e-15
        | None, Some _ -> true
        | _, None -> false);
    case "matches plain van ginneken when menu is trivial" (fun () ->
        let t = Rctree.Segment.refine (Fixtures.two_pin process ~len:8e-3) ~max_len:1e-3 in
        let plain = Bufins.Vangin.run ~lib t in
        match Bufins.Wiresize.run ~widths:[ 1.0 ] ~noise:false ~lib t with
        | Some sized ->
            feq_rel "same slack" ~eps:1e-12 plain.Bufins.Dp.slack sized.Bufins.Wiresize.slack;
            Alcotest.(check int) "no sizes" 0 (List.length sized.Bufins.Wiresize.sizes)
        | None -> Alcotest.fail "unexpected None");
    case "apply_sizes rejects bad nodes" (fun () ->
        let t = Fixtures.two_pin process ~len:1e-3 in
        Alcotest.(check bool) "root" true
          (match Bufins.Wiresize.apply_sizes t [ (0, 2.0) ] with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "bad width menu rejected" (fun () ->
        let t = Fixtures.two_pin process ~len:1e-3 in
        Alcotest.(check bool) "raises" true
          (match Bufins.Wiresize.run ~widths:[ 0.5 ] ~noise:false ~lib t with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "long resistive line prefers wide wire" (fun () ->
        (* no buffer sites, a strong driver: widening is the only lever
           and clearly wins on a 6 mm resistive line *)
        let t = Fixtures.two_pin ~r_drv:25.0 ~rat:5e-9 process ~len:6e-3 in
        match
          ( Bufins.Wiresize.run ~widths:[ 1.0; 4.0 ] ~noise:false ~lib t,
            Bufins.Wiresize.run ~widths:[ 1.0 ] ~noise:false ~lib t )
        with
        | Some wide, Some narrow ->
            Alcotest.(check bool) "wire widened" true (wide.Bufins.Wiresize.sizes <> []);
            Alcotest.(check bool) "strictly better" true
              (wide.Bufins.Wiresize.slack > narrow.Bufins.Wiresize.slack +. 1e-12)
        | _, _ -> Alcotest.fail "unexpected None");
  ]

let suites = [ ("bufins.wiresize", tests) ]
