open Helpers
module T = Rctree.Tree

(* small segmented trees whose brute-force space is tractable *)
let brute_gen =
  QCheck2.Gen.(
    map
      (fun seed ->
        let rng = Util.Rng.create seed in
        let t = theorem5_tree rng in
        segment_for_brute t)
      small_int)

let two_lib =
  [
    small_buffer;
    Tech.Buffer.make ~name:"i0" ~inverting:true ~c_in:1.5e-15 ~r_b:140.0 ~d_b:15e-12 ~nm:0.6 ();
  ]

let count_inversions tree sink =
  List.fold_left
    (fun acc v ->
      match T.kind tree v with
      | T.Buffered b when b.Tech.Buffer.inverting -> acc + 1
      | T.Buffered _ | T.Source _ | T.Sink _ | T.Internal -> acc)
    0 (T.path_up tree sink)

let tests =
  [
    qcase ~count:40 "van ginneken matches brute force (single buffer)" brute_gen (function
      | None -> true
      | Some seg -> (
          let r = Bufins.Vangin.run ~lib:single_lib seg in
          match Bufins.Brute.best_slack ~noise:false ~lib:single_lib seg with
          | Some (best, _) -> Util.Fx.approx ~rel:1e-9 ~abs:1e-15 best r.Bufins.Dp.slack
          | None -> false));
    qcase ~count:25 "van ginneken matches brute force (two buffers, with inverter)" brute_gen
      (function
      | None -> true
      | Some seg -> (
          let feasible = List.filter (T.feasible seg) (T.internals seg) in
          if List.length feasible > 6 then true
          else
            let r = Bufins.Vangin.run ~lib:two_lib seg in
            match Bufins.Brute.best_slack ~noise:false ~lib:two_lib seg with
            | Some (best, _) -> Util.Fx.approx ~rel:1e-9 ~abs:1e-15 best r.Bufins.Dp.slack
            | None -> false));
    qcase ~count:60 "polarity: sinks see an even number of inversions" brute_gen (function
      | None -> true
      | Some seg ->
          let r = Bufins.Vangin.run ~lib:two_lib seg in
          let tree = Rctree.Surgery.apply seg r.Bufins.Dp.placements in
          List.for_all (fun s -> count_inversions tree s mod 2 = 0) (T.sinks tree));
    qcase ~count:60 "predicted slack equals recomputed slack" brute_gen (function
      | None -> true
      | Some seg ->
          let r = Bufins.Vangin.run ~lib seg in
          let report = Bufins.Eval.apply seg r.Bufins.Dp.placements in
          Util.Fx.approx ~rel:1e-9 ~abs:1e-16 r.Bufins.Dp.slack report.Bufins.Eval.slack);
    qcase ~count:60 "never slower than the unbuffered tree" brute_gen (function
      | None -> true
      | Some seg ->
          let r = Bufins.Vangin.run ~lib seg in
          r.Bufins.Dp.slack >= Elmore.slack seg -. 1e-15);
    qcase ~count:40 "max_buffers cap respected" brute_gen (function
      | None -> true
      | Some seg ->
          List.for_all
            (fun k -> (Bufins.Vangin.run_max ~max_buffers:k ~lib seg).Bufins.Dp.count <= k)
            [ 0; 1; 2 ]);
    qcase ~count:40 "by_count buckets are exact" brute_gen (function
      | None -> true
      | Some seg ->
          let arr = Bufins.Vangin.by_count ~kmax:4 ~lib seg in
          let ok = ref true in
          Array.iteri
            (fun k r ->
              match r with
              | Some r -> if r.Bufins.Dp.count <> k then ok := false
              | None -> ())
            arr;
          !ok);
    qcase ~count:40 "more buffers allowed never hurts" brute_gen (function
      | None -> true
      | Some seg ->
          (Bufins.Vangin.run_max ~max_buffers:4 ~lib seg).Bufins.Dp.slack
          >= (Bufins.Vangin.run_max ~max_buffers:1 ~lib seg).Bufins.Dp.slack -. 1e-15);
    qcase ~count:25 "pruning never changes the optimum" brute_gen (function
      | None -> true
      | Some seg ->
          let feasible = List.filter (T.feasible seg) (T.internals seg) in
          List.length feasible > 7
          ||
          let a = Bufins.Dp.run ~noise:false ~mode:Bufins.Dp.Single ~lib:two_lib seg in
          let b = Bufins.Dp.run ~prune:false ~noise:false ~mode:Bufins.Dp.Single ~lib:two_lib seg in
          match (a.Bufins.Dp.best, b.Bufins.Dp.best) with
          | Some x, Some y -> Util.Fx.approx ~rel:1e-9 ~abs:1e-16 x.Bufins.Dp.slack y.Bufins.Dp.slack
          | None, None -> true
          | Some _, None | None, Some _ -> false);
    case "buffered input rejected" (fun () ->
        let t = Fixtures.two_pin process ~len:4e-3 in
        let buf = Tech.Lib.min_resistance lib in
        let t' = Rctree.Surgery.apply t [ { Rctree.Surgery.node = 1; dist = 2e-3; buffer = buf } ] in
        Alcotest.(check bool) "raises" true
          (match Bufins.Vangin.run ~lib t' with exception Invalid_argument _ -> true | _ -> false));
    case "empty library rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (match Bufins.Vangin.run ~lib:[] (Fixtures.two_pin process ~len:1e-3) with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "stats counters pinned on a fixed fixture" (fun () ->
        (* a 4 mm two-pin line at 1 mm segmenting: small enough that the
           engine's whole candidate history is enumerable by hand. The
           generated count is pre-prune (sink seeds + wire climbs + merge
           pairings + buffer insertions); pruned are dominance-sweep and
           noise drops; their difference is what the old candidates_seen
           (post-prune survivors) used to blur together. *)
        let seg = Rctree.Segment.refine (Fixtures.two_pin process ~len:4e-3) ~max_len:1e-3 in
        let check label ~pruning ~noise ~mode (g, p, pp, w) =
          let o = Bufins.Dp.run ~pruning ~noise ~mode ~lib:single_lib seg in
          let s = o.Bufins.Dp.stats in
          Alcotest.(check int) (label ^ " generated") g s.Bufins.Dp.generated;
          Alcotest.(check int) (label ^ " pruned") p s.Bufins.Dp.pruned;
          Alcotest.(check int) (label ^ " pred-pruned") pp s.Bufins.Dp.pred_pruned;
          Alcotest.(check int) (label ^ " peak width") w s.Bufins.Dp.peak_width;
          (* every result carries the same whole-run stats *)
          match o.Bufins.Dp.best with
          | Some r -> Alcotest.(check int) (label ^ " via result") g r.Bufins.Dp.stats.Bufins.Dp.generated
          | None -> Alcotest.fail (label ^ ": expected a solution")
        in
        (* the sweep-only rows are the exact pre-PR-5 engine's figures:
           [`Sweep_only] must stay literally that engine *)
        check "delay/sweep" ~pruning:`Sweep_only ~noise:false ~mode:Bufins.Dp.Single (14, 1, 0, 4);
        check "noise/sweep" ~pruning:`Sweep_only ~noise:true ~mode:Bufins.Dp.Single (14, 1, 0, 4);
        check "per-count/sweep" ~pruning:`Sweep_only ~noise:false ~mode:(Bufins.Dp.Per_count 4)
          (21, 0, 0, 3);
        (* predictive: fewer materialized, the balance pre-killed; noise
           mode ignores the knob entirely *)
        check "delay/pred" ~pruning:`Predictive ~noise:false ~mode:Bufins.Dp.Single (11, 0, 2, 3);
        check "noise/pred" ~pruning:`Predictive ~noise:true ~mode:Bufins.Dp.Single (14, 1, 0, 4);
        check "per-count/pred" ~pruning:`Predictive ~noise:false ~mode:(Bufins.Dp.Per_count 4)
          (19, 0, 2, 3));
    qcase ~count:40 "generated bounds pruned and the frontier width" brute_gen (function
      | None -> true
      | Some seg ->
          let o = Bufins.Dp.run ~noise:false ~mode:Bufins.Dp.Single ~lib seg in
          let s = o.Bufins.Dp.stats in
          s.Bufins.Dp.generated > 0
          && s.Bufins.Dp.pruned >= 0
          && s.Bufins.Dp.pruned < s.Bufins.Dp.generated
          && s.Bufins.Dp.pred_pruned >= 0
          && Bufins.Dp.considered s
             = Bufins.Dp.survivors s + s.Bufins.Dp.pruned + s.Bufins.Dp.pred_pruned
          && s.Bufins.Dp.peak_width > 0
          && s.Bufins.Dp.peak_width <= s.Bufins.Dp.generated
          && Array.for_all (fun tw -> tw >= 0 && tw <= s.Bufins.Dp.peak_width)
               s.Bufins.Dp.type_widths);
    case "long line benefits from buffering" (fun () ->
        let t = Rctree.Segment.refine (Fixtures.two_pin process ~len:10e-3) ~max_len:500e-6 in
        let r = Bufins.Vangin.run ~lib t in
        Alcotest.(check bool) "count > 1" true (r.Bufins.Dp.count > 1);
        Alcotest.(check bool) "strictly better" true (r.Bufins.Dp.slack > Elmore.slack t +. 1e-12));
  ]

(* {1 Incremental memo}

   The memo's contract is byte-identity: a [run ?memo] — warm cache,
   cold cache, or after dirty-marked edits — must return exactly the
   slack / placements / sizes / count a scratch run computes. Exact
   ([=]) comparisons throughout, never approx: any drift is a stale
   table. *)

let eq_result (a : Bufins.Dp.result option) (b : Bufins.Dp.result option) =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
      a.Bufins.Dp.slack = b.Bufins.Dp.slack
      && a.Bufins.Dp.placements = b.Bufins.Dp.placements
      && a.Bufins.Dp.sizes = b.Bufins.Dp.sizes
      && a.Bufins.Dp.count = b.Bufins.Dp.count
  | Some _, None | None, Some _ -> false

let eq_outcome (a : Bufins.Dp.outcome) (b : Bufins.Dp.outcome) =
  eq_result a.Bufins.Dp.best b.Bufins.Dp.best
  && Array.for_all2 eq_result a.Bufins.Dp.by_count b.Bufins.Dp.by_count

let configs =
  [
    ("delay/single", false, Bufins.Dp.Single);
    ("delay/per-count", false, Bufins.Dp.Per_count 4);
    ("noise/single", true, Bufins.Dp.Single);
    ("noise/per-count", true, Bufins.Dp.Per_count 4);
  ]

let memo_tests =
  [
    qcase ~count:25 "warm rerun equals scratch in every mode" brute_gen (function
      | None -> true
      | Some seg ->
          List.for_all
            (fun (_, noise, mode) ->
              let scratch = Bufins.Dp.run ~noise ~mode ~lib:two_lib seg in
              let memo = Bufins.Dp.Memo.create () in
              let cold = Bufins.Dp.run ~memo ~noise ~mode ~lib:two_lib seg in
              let warm = Bufins.Dp.run ~memo ~noise ~mode ~lib:two_lib seg in
              eq_outcome scratch cold && eq_outcome scratch warm
              (* the warm rerun recomputes nothing below the root *)
              && Bufins.Dp.Memo.hits memo > 0)
            configs);
    qcase ~count:25 "incremental RAT edit equals scratch" brute_gen (function
      | None -> true
      | Some seg ->
          List.for_all
            (fun (_, noise, mode) ->
              let memo = Bufins.Dp.Memo.create () in
              let _warm = Bufins.Dp.run ~memo ~noise ~mode ~lib:two_lib seg in
              List.for_all
                (fun s ->
                  let rat = (match T.kind seg s with
                    | T.Sink sk -> sk.T.rat
                    | _ -> assert false) in
                  let seg' = T.with_sink_rat seg s ~rat:(rat *. 0.5) in
                  Bufins.Dp.Memo.dirty memo seg' s;
                  let inc = Bufins.Dp.run ~memo ~noise ~mode ~lib:two_lib seg' in
                  let scratch = Bufins.Dp.run ~noise ~mode ~lib:two_lib seg' in
                  (* restore the original RAT so the next sink's edit
                     starts from the shared baseline *)
                  Bufins.Dp.Memo.dirty memo seg s;
                  ignore (Bufins.Dp.run ~memo ~noise ~mode ~lib:two_lib seg);
                  eq_outcome scratch inc)
                (T.sinks seg))
            configs);
    qcase ~count:25 "incremental wire edit equals scratch" brute_gen (function
      | None -> true
      | Some seg ->
          List.for_all
            (fun (_, noise, mode) ->
              let memo = Bufins.Dp.Memo.create () in
              let _warm = Bufins.Dp.run ~memo ~noise ~mode ~lib:two_lib seg in
              List.for_all
                (fun v ->
                  let seg' =
                    T.map_wires seg (fun i w ->
                        if i = v then
                          {
                            w with
                            T.res = w.T.res *. 1.3;
                            T.cap = w.T.cap *. 1.1;
                          }
                        else w)
                  in
                  Bufins.Dp.Memo.dirty memo seg' v;
                  let inc = Bufins.Dp.run ~memo ~noise ~mode ~lib:two_lib seg' in
                  let scratch = Bufins.Dp.run ~noise ~mode ~lib:two_lib seg' in
                  Bufins.Dp.Memo.dirty memo seg v;
                  ignore (Bufins.Dp.run ~memo ~noise ~mode ~lib:two_lib seg);
                  eq_outcome scratch inc)
                (T.sinks seg))
            configs);
    qcase ~count:20 "config change drops the cache safely" brute_gen (function
      | None -> true
      | Some seg ->
          let memo = Bufins.Dp.Memo.create () in
          (* alternate configurations through one memo: every run must
             still match its own scratch reference *)
          List.for_all
            (fun (_, noise, mode) ->
              let inc = Bufins.Dp.run ~memo ~noise ~mode ~lib:two_lib seg in
              let scratch = Bufins.Dp.run ~noise ~mode ~lib:two_lib seg in
              eq_outcome scratch inc)
            (configs @ configs));
    case "memo counters and clear" (fun () ->
        let seg = Rctree.Segment.refine (Fixtures.two_pin process ~len:4e-3) ~max_len:1e-3 in
        let memo = Bufins.Dp.Memo.create () in
        let _ = Bufins.Dp.run ~memo ~noise:false ~mode:Bufins.Dp.Single ~lib:single_lib seg in
        Alcotest.(check bool) "stored > 0" true (Bufins.Dp.Memo.stored memo > 0);
        Alcotest.(check int) "no hits yet" 0 (Bufins.Dp.Memo.hits memo);
        let _ = Bufins.Dp.run ~memo ~noise:false ~mode:Bufins.Dp.Single ~lib:single_lib seg in
        Alcotest.(check bool) "hits after rerun" true (Bufins.Dp.Memo.hits memo > 0);
        Bufins.Dp.Memo.clear memo;
        Alcotest.(check int) "cleared" 0 (Bufins.Dp.Memo.stored memo));
  ]

let suites = [ ("bufins.vangin", tests); ("bufins.memo", memo_tests) ]
