open Helpers
module T = Rctree.Tree

let old_source_spec = { T.sname = "drv_pin"; c_sink = 15e-15; rat = 2e-9; nm = 0.8 }

(* a point-to-point bidirectional bus: terminal A (the tree source) and
   terminal B (a sink that can also drive) *)
let bus len =
  let t = Fixtures.two_pin ~r_drv:100.0 ~c_sink:15e-15 process ~len in
  let port = { Bufins.Multisource.pnode = 1; p_r_drv = 100.0; p_d_drv = 30e-12 } in
  (t, port)

let reroot_tests =
  [
    case "two-pin reroot swaps the endpoints" (fun () ->
        let t, port = bus 3e-3 in
        let r = Bufins.Multisource.rerooted t ~old_source:old_source_spec port in
        Alcotest.(check (result unit string)) "valid" (Ok ()) (T.validate r);
        Alcotest.(check int) "same node count" (T.node_count t) (T.node_count r);
        Alcotest.(check int) "root moved" 1 (T.root r);
        (match T.kind r 0 with
        | T.Sink s -> Alcotest.(check string) "old driver is a sink" "drv_pin" s.T.sname
        | _ -> Alcotest.fail "old root should be a sink");
        feq_rel "wire preserved" ~eps:1e-12 3e-3 (T.total_wirelength r));
    case "symmetric bus has symmetric delay" (fun () ->
        let t, port = bus 4e-3 in
        (* matching terminal electricals: c_sink 15 fF both ends, same
           drivers, so A->B and B->A Elmore delays coincide *)
        let r =
          Bufins.Multisource.rerooted t
            ~old_source:{ old_source_spec with T.c_sink = 15e-15 }
            { port with Bufins.Multisource.p_r_drv = 100.0 }
        in
        feq_rel "symmetric" ~eps:1e-9
          (Elmore.worst_delay t -. 30e-12 (* two_pin uses d_drv = 30 ps *))
          (Elmore.worst_delay r -. port.Bufins.Multisource.p_d_drv));
    case "reroot at a branch port keeps the other sink" (fun () ->
        let t = Fixtures.balanced process ~levels:1 ~trunk_len:2e-3 in
        let port_node = List.hd (T.sinks t) in
        let r =
          Rctree.Reroot.at t ~port:port_node ~r_drv:80.0 ~d_drv:0.0 ~old_source:old_source_spec
        in
        Alcotest.(check (result unit string)) "valid" (Ok ()) (T.validate r);
        (* old source had one child: becomes the drv_pin sink; both other
           sinks remain *)
        Alcotest.(check int) "sink count" 2 (List.length (T.sinks r));
        Alcotest.(check int) "root" port_node (T.root r));
    case "reroot keeps node ids for every wire" (fun () ->
        let t, port = bus 5e-3 in
        let seg = Rctree.Segment.refine t ~max_len:1e-3 in
        let port = { port with Bufins.Multisource.pnode = List.hd (T.sinks seg) } in
        let r = Bufins.Multisource.rerooted seg ~old_source:old_source_spec port in
        List.iter
          (fun v ->
            if v <> T.root seg then begin
              let u = T.parent seg v in
              match Rctree.Reroot.wire_owner r u v with
              | Some _ -> ()
              | None -> Alcotest.fail "wire lost across reroot"
            end)
          (T.postorder seg));
    case "reroot rejects non-sinks" (fun () ->
        let t = Rctree.Segment.refine (Fixtures.two_pin process ~len:2e-3) ~max_len:1e-3 in
        let internal = List.hd (T.internals t) in
        Alcotest.(check bool) "raises" true
          (match
             Rctree.Reroot.at t ~port:internal ~r_drv:1.0 ~d_drv:0.0 ~old_source:old_source_spec
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
  ]

let multisource_tests =
  [
    case "long bidirectional bus becomes clean in both modes" (fun () ->
        let t, port = bus 10e-3 in
        let r = Bufins.Multisource.run ~lib ~old_source:old_source_spec ~ports:[ port ] t in
        Alcotest.(check bool) "clean everywhere" true (Bufins.Multisource.all_modes_clean r);
        Alcotest.(check int) "two modes evaluated" 2 (List.length r.Bufins.Multisource.modes);
        Alcotest.(check bool) "buffers inserted" true (r.Bufins.Multisource.count > 0));
    case "short bus needs nothing" (fun () ->
        let t, port = bus 0.5e-3 in
        let r = Bufins.Multisource.run ~lib ~old_source:old_source_spec ~ports:[ port ] t in
        Alcotest.(check int) "no buffers" 0 r.Bufins.Multisource.count);
    case "asymmetric drivers still converge" (fun () ->
        let t, _ = bus 8e-3 in
        let weak = { Bufins.Multisource.pnode = 1; p_r_drv = 400.0; p_d_drv = 50e-12 } in
        let r = Bufins.Multisource.run ~lib ~old_source:old_source_spec ~ports:[ weak ] t in
        Alcotest.(check bool) "clean everywhere" true (Bufins.Multisource.all_modes_clean r));
    qcase ~count:25 "random two-port busses come out clean in all modes" QCheck2.Gen.small_int
      (fun seed ->
        let rng = Util.Rng.create seed in
        let len = Util.Rng.range rng 1e-3 12e-3 in
        let t, _ = bus len in
        let port =
          {
            Bufins.Multisource.pnode = 1;
            p_r_drv = Util.Rng.range rng 40.0 300.0;
            p_d_drv = Util.Rng.range rng 0.0 50e-12;
          }
        in
        let r = Bufins.Multisource.run ~lib ~old_source:old_source_spec ~ports:[ port ] t in
        Bufins.Multisource.all_modes_clean r);
    case "multi-drop bus with a branch port" (fun () ->
        (* A drives a tree with sinks B and C; B can also drive *)
        let t = Fixtures.balanced process ~levels:1 ~trunk_len:6e-3 ~fanout_len:2e-3 in
        let port =
          { Bufins.Multisource.pnode = List.hd (T.sinks t); p_r_drv = 120.0; p_d_drv = 30e-12 }
        in
        let r = Bufins.Multisource.run ~lib ~old_source:old_source_spec ~ports:[ port ] t in
        Alcotest.(check bool) "clean everywhere" true (Bufins.Multisource.all_modes_clean r));
    case "inverting-only library rejected" (fun () ->
        let t, port = bus 2e-3 in
        Alcotest.(check bool) "raises" true
          (match
             Bufins.Multisource.run ~lib:(Tech.Lib.inverting lib) ~old_source:old_source_spec
               ~ports:[ port ] t
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
  ]

let suites = [ ("rctree.reroot", reroot_tests); ("bufins.multisource", multisource_tests) ]
