open Helpers
module T = Rctree.Tree

let slope = Tech.Process.slope process

let span ~near ~far ?(lambda = 0.5) ?(slope = slope) () =
  { Coupling.near; far; lambda; slope }

let line len = Fixtures.two_pin process ~len

(* a 4 mm two-pin line with its wire stripped of estimation-mode current *)
let bare_line len =
  let b = Rctree.Builder.create () in
  let so = Rctree.Builder.add_source b ~r_drv:100.0 ~d_drv:30e-12 in
  let w = T.wire_of_length process len in
  ignore
    (Rctree.Builder.add_sink b ~parent:so ~wire:{ w with T.cur = 0.0 } ~name:"s" ~c_sink:20e-15
       ~rat:2e-9 ~nm:0.8);
  Rctree.Builder.finish b

let tests =
  [
    case "single span splits a wire into three pieces" (fun () ->
        let t = bare_line 4e-3 in
        let ann = Coupling.annotate t ~spans:[ (1, [ span ~near:1e-3 ~far:3e-3 () ]) ] in
        let tr = Coupling.tree ann in
        Alcotest.(check int) "4 nodes" 4 (T.node_count tr);
        feq_rel "length preserved" ~eps:1e-9 4e-3 (T.total_wirelength tr);
        (* exactly one piece carries current: the covered 2 mm *)
        let curs =
          List.filter_map
            (fun v -> if v = T.root tr then None else Some (T.wire_to tr v).T.cur)
            (T.postorder tr)
        in
        let nonzero = List.filter (fun c -> c > 0.0) curs in
        Alcotest.(check int) "one coupled piece" 1 (List.length nonzero);
        feq_rel "eq. 6 current" ~eps:1e-9
          (0.5 *. Tech.Process.wire_c process 2e-3 *. slope)
          (List.hd nonzero));
    case "overlapping aggressors accumulate (eq. 6)" (fun () ->
        let t = bare_line 2e-3 in
        let ann =
          Coupling.annotate t
            ~spans:
              [
                ( 1,
                  [
                    span ~near:0.0 ~far:2e-3 ~lambda:0.3 ();
                    span ~near:0.0 ~far:1e-3 ~lambda:0.4 ~slope:(slope *. 2.0) ();
                  ] );
              ]
        in
        let tr = Coupling.tree ann in
        let total = Noise.drive_current tr (Noise.cur_at tr) (T.root tr) in
        let c_half = Tech.Process.wire_c process 1e-3 in
        let expect =
          (0.3 *. (2.0 *. c_half) *. slope) +. (0.4 *. c_half *. (slope *. 2.0))
        in
        feq_rel "summed currents" ~eps:1e-9 expect total);
    case "fig. 2: pieces coupled to zero, one or two aggressors" (fun () ->
        let t = bare_line 9e-3 in
        let ann =
          Coupling.annotate t
            ~spans:
              [
                ( 1,
                  [
                    span ~near:1e-3 ~far:4e-3 ~lambda:0.3 ();
                    span ~near:3e-3 ~far:6e-3 ~lambda:0.3 ();
                    span ~near:5e-3 ~far:7e-3 ~lambda:0.3 ();
                    span ~near:8e-3 ~far:9e-3 ~lambda:0.3 ();
                  ] );
              ]
        in
        let tr = Coupling.tree ann in
        (* boundaries 0,1,3,4,5,6,7,8,9 -> eight pieces *)
        let pieces = List.filter (fun v -> v <> T.root tr) (T.postorder tr) in
        Alcotest.(check int) "eight pieces" 8 (List.length pieces);
        List.iter
          (fun v ->
            let n = List.length (Coupling.density ann v) in
            Alcotest.(check bool) "0..2 aggressors" true (n <= 2))
          pieces;
        Alcotest.(check bool) "some piece sees two" true
          (List.exists (fun v -> List.length (Coupling.density ann v) = 2) pieces);
        Alcotest.(check bool) "some piece sees none" true
          (List.exists (fun v -> Coupling.density ann v = []) pieces));
    case "estimation annotation reproduces estimation mode" (fun () ->
        let t = line 5e-3 in
        let ann = Coupling.estimation process t in
        let a = Noise.leaf_noise (Coupling.tree ann) and b = Noise.leaf_noise t in
        match (a, b) with
        | (_, na, ma) :: _, [ (_, nb, mb) ] ->
            feq_rel "noise equal" ~eps:1e-9 nb na;
            feq "margins equal" mb ma
        | _ -> Alcotest.fail "unexpected leaves");
    case "malformed spans rejected" (fun () ->
        let t = bare_line 2e-3 in
        let reject ss =
          match Coupling.annotate t ~spans:[ (1, ss) ] with
          | exception Invalid_argument _ -> true
          | _ -> false
        in
        Alcotest.(check bool) "reversed" true (reject [ span ~near:1e-3 ~far:0.5e-3 () ]);
        Alcotest.(check bool) "past the end" true (reject [ span ~near:0.0 ~far:3e-3 () ]);
        Alcotest.(check bool) "negative" true (reject [ span ~near:(-1e-4) ~far:1e-3 () ]);
        Alcotest.(check bool) "lambda > 1" true
          (reject [ span ~near:0.0 ~far:1e-3 ~lambda:1.5 () ]);
        Alcotest.(check bool) "overlap sum > 1" true
          (reject
             [ span ~near:0.0 ~far:1e-3 ~lambda:0.6 (); span ~near:0.0 ~far:1e-3 ~lambda:0.6 () ]);
        Alcotest.(check bool) "root span" true
          (match Coupling.annotate t ~spans:[ (0, []) ] with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "densities survive buffering" (fun () ->
        let t = bare_line 6e-3 in
        let ann = Coupling.annotate t ~spans:[ (1, [ span ~near:0.0 ~far:6e-3 ~lambda:0.4 () ]) ] in
        let cc0 = Coupling.total_coupling_cap ann in
        let buf = Tech.Lib.min_resistance lib in
        (* the sink of the annotated tree keeps the bottom piece *)
        let sink = List.hd (T.sinks (Coupling.tree ann)) in
        let ann' =
          Coupling.buffered ann [ { Rctree.Surgery.node = sink; dist = 2e-3; buffer = buf } ]
        in
        feq_rel "coupling cap invariant" ~eps:1e-9 cc0 (Coupling.total_coupling_cap ann');
        Alcotest.(check int) "buffer present" 1 (T.buffer_count (Coupling.tree ann'));
        List.iter
          (fun v ->
            if v <> T.root (Coupling.tree ann') then
              match Coupling.density ann' v with
              | [ (l, _) ] -> feq "lambda carried" 0.4 l
              | _ -> Alcotest.fail "density lost")
          (T.postorder (Coupling.tree ann')));
    qcase ~count:10 "metric bounds multi-aggressor simulation" QCheck2.Gen.small_int (fun seed ->
        let rng = Util.Rng.create seed in
        let len = Util.Rng.range rng 2e-3 6e-3 in
        let t = bare_line len in
        (* two random aggressors with different slopes *)
        let cut () =
          let near = Util.Rng.range rng 0.0 (len *. 0.5) in
          let far = Float.min len (near +. Util.Rng.range rng (len *. 0.05) (len *. 0.5)) in
          (near, far)
        in
        let n1, f1 = cut () and n2, f2 = cut () in
        let mk near far lam sl = span ~near ~far ~lambda:lam ~slope:sl () in
        let ann =
          Coupling.annotate t
            ~spans:
              [
                ( 1,
                  [
                    mk n1 f1 0.3 slope;
                    mk n2 f2 0.35 (slope *. Util.Rng.range rng 0.5 2.0);
                  ] );
              ]
        in
        let tr = Coupling.tree ann in
        let rep = Noisesim.Verify.net ~density:(Coupling.density ann) process tr in
        rep.Noisesim.Verify.bound_ok);
    case "multi-aggressor deck builds one source per slope" (fun () ->
        let t = bare_line 3e-3 in
        let ann =
          Coupling.annotate t
            ~spans:
              [
                ( 1,
                  [
                    span ~near:0.0 ~far:3e-3 ~lambda:0.3 ~slope ();
                    span ~near:0.0 ~far:3e-3 ~lambda:0.3 ~slope:(slope /. 3.0) ();
                  ] );
              ]
        in
        let tr = Coupling.tree ann in
        let cfg = Noisesim.Deck.default_config process in
        let deck =
          Noisesim.Deck.of_stage ~density:(Coupling.density ann) cfg tr ~gate:(T.root tr)
        in
        (* slower aggressor alone would induce less noise: simulated peak
           must sit between each single-aggressor case and their sum *)
        let peaks = Noisesim.Deck.peak_noise cfg deck in
        Alcotest.(check int) "one probe" 1 (List.length peaks);
        let _, peak = List.hd peaks in
        Alcotest.(check bool) "positive" true (peak > 0.0));
  ]


(* appended: density-preserving segmenting + coupled optimizers *)
let refine_tests =
  [
    case "refine preserves totals and densities" (fun () ->
        let t = bare_line 5e-3 in
        let ann = Coupling.annotate t ~spans:[ (1, [ span ~near:0.0 ~far:5e-3 ~lambda:0.4 () ]) ] in
        let r = Coupling.refine ann ~max_len:800e-6 in
        let tr = Coupling.tree r in
        Alcotest.(check (result unit string)) "valid" (Ok ()) (T.validate tr);
        feq_rel "length" ~eps:1e-9 5e-3 (T.total_wirelength tr);
        feq_rel "coupling cap" ~eps:1e-9 (Coupling.total_coupling_cap ann) (Coupling.total_coupling_cap r);
        List.iter
          (fun v ->
            if v <> T.root tr then begin
              Alcotest.(check bool) "piece bounded" true ((T.wire_to tr v).T.length <= 800e-6 +. 1e-12);
              match Coupling.density r v with
              | [ (l, _) ] -> feq "lambda carried" 0.4 l
              | _ -> Alcotest.fail "density lost"
            end)
          (T.postorder tr));
    case "coupled buffopt clears an extracted-style annotation" (fun () ->
        let t = bare_line 9e-3 in
        let ann =
          Coupling.annotate t
            ~spans:
              [
                ( 1,
                  [
                    span ~near:0.0 ~far:9e-3 ~lambda:0.35 ();
                    span ~near:0.0 ~far:9e-3 ~lambda:0.35 ~slope:(slope /. 2.0) ();
                  ] );
              ]
        in
        Alcotest.(check bool) "violates" true (Noise.violations (Coupling.tree ann) <> []);
        match Bufins.Buffopt.optimize_coupled Bufins.Buffopt.Buffopt ~lib ann with
        | Some (run, ann') ->
            Alcotest.(check bool) "clean" true (Bufins.Eval.noise_clean run.Bufins.Buffopt.report);
            Alcotest.(check bool) "timing slack recorded" true
              (Float.is_finite run.Bufins.Buffopt.predicted_slack);
            let v =
              Noisesim.Verify.net ~density:(Coupling.density ann') process (Coupling.tree ann')
            in
            Alcotest.(check int) "sim clean" 0 v.Noisesim.Verify.sim_violations;
            Alcotest.(check bool) "bound holds" true v.Noisesim.Verify.bound_ok
        | None -> Alcotest.fail "infeasible");
    case "coupled delay-only optimizer also runs" (fun () ->
        let t = bare_line 6e-3 in
        let ann = Coupling.annotate t ~spans:[ (1, [ span ~near:0.0 ~far:6e-3 ~lambda:0.5 () ]) ] in
        match Bufins.Buffopt.optimize_coupled Bufins.Buffopt.Vangin_max_slack ~lib ann with
        | Some (run, _) -> Alcotest.(check bool) "buffers" true (run.Bufins.Buffopt.count >= 1)
        | None -> Alcotest.fail "unexpected None");
  ]

let suites = [ ("coupling", tests); ("coupling.refine", refine_tests) ]
