(* Shared helpers for the test suite. *)

let process = Tech.Process.default

let lib = Tech.Lib.default_library

(* A single-buffer library satisfying Theorem 5's assumptions against the
   sinks produced by [sink] below: c_in below every sink cap, margin below
   every sink margin. *)
let small_buffer =
  Tech.Buffer.make ~name:"b0" ~inverting:false ~c_in:2e-15 ~r_b:100.0 ~d_b:30e-12 ~nm:0.6

let single_lib = [ small_buffer ]

let feq ?(eps = 1e-9) = Alcotest.(check (float eps))

let feq_rel name ~eps a b =
  let scale = Float.max (Float.abs a) (Float.abs b) in
  Alcotest.(check (float (eps *. Float.max scale 1e-30))) name a b

let case name f = Alcotest.test_case name `Quick f

(* fixed random state: property tests are reproducible across runs *)
let qcase ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0xb0ff; String.length name |])
    (QCheck2.Test.make ~count ~name gen prop)

(* Random small trees whose sinks respect Theorem 5's assumptions wrt
   [small_buffer]: caps >= 5 fF, margins >= 0.7 V. *)
let theorem5_tree rng =
  let b = Rctree.Builder.create () in
  let so =
    Rctree.Builder.add_source b
      ~r_drv:(Util.Rng.range rng 120.0 300.0)
      ~d_drv:(Util.Rng.range rng 0.0 50e-12)
  in
  let wire () = Rctree.Tree.wire_of_length process (Util.Rng.range rng 0.3e-3 2.5e-3) in
  let n_sinks = 1 + Util.Rng.int rng 3 in
  let attach = ref [ so ] in
  for k = 0 to n_sinks - 1 do
    let parent = List.nth !attach (Util.Rng.int rng (List.length !attach)) in
    let parent =
      if Util.Rng.bool rng then begin
        let v = Rctree.Builder.add_internal b ~parent ~wire:(wire ()) () in
        attach := v :: !attach;
        v
      end
      else parent
    in
    ignore
      (Rctree.Builder.add_sink b ~parent ~wire:(wire ())
         ~name:(Printf.sprintf "s%d" k)
         ~c_sink:(Util.Rng.range rng 5e-15 40e-15)
         ~rat:(Util.Rng.range rng 0.3e-9 1.5e-9)
         ~nm:(Util.Rng.range rng 0.7 1.0))
  done;
  Rctree.Builder.finish b

(* Like [theorem5_tree] but with sink margins down to 0.4 V and longer
   wires: instances where no single library buffer satisfies Theorem 5's
   assumptions, so (load, slack)-only pruning can discard the lone
   noise-feasible candidate (the Alg3-vs-brute exactness tests). *)
let lowmargin_tree rng =
  let b = Rctree.Builder.create () in
  let so =
    Rctree.Builder.add_source b
      ~r_drv:(Util.Rng.range rng 120.0 300.0)
      ~d_drv:(Util.Rng.range rng 0.0 50e-12)
  in
  let wire () = Rctree.Tree.wire_of_length process (Util.Rng.range rng 0.3e-3 3.0e-3) in
  let n_sinks = 1 + Util.Rng.int rng 3 in
  let attach = ref [ so ] in
  for k = 0 to n_sinks - 1 do
    let parent = List.nth !attach (Util.Rng.int rng (List.length !attach)) in
    let parent =
      if Util.Rng.bool rng then begin
        let v = Rctree.Builder.add_internal b ~parent ~wire:(wire ()) () in
        attach := v :: !attach;
        v
      end
      else parent
    in
    ignore
      (Rctree.Builder.add_sink b ~parent ~wire:(wire ())
         ~name:(Printf.sprintf "s%d" k)
         ~c_sink:(Util.Rng.range rng 5e-15 40e-15)
         ~rat:(Util.Rng.range rng 0.3e-9 1.5e-9)
         ~nm:(Util.Rng.range rng 0.4 0.9))
  done;
  Rctree.Builder.finish b

(* Coarse segmenting that keeps brute-force enumeration tractable. *)
let segment_for_brute tree =
  let seg = Rctree.Segment.refine tree ~max_len:1.5e-3 in
  let feasible = List.filter (Rctree.Tree.feasible seg) (Rctree.Tree.internals seg) in
  if List.length feasible <= 9 then Some seg else None

let seeds n = List.init n (fun i -> 1000 + i)
