(* Shared helpers for the test suite. *)

let process = Tech.Process.default

let lib = Tech.Lib.default_library

(* A single-buffer library satisfying Theorem 5's assumptions against the
   sinks produced by [sink] below: c_in below every sink cap, margin below
   every sink margin. Shared with the fuzz campaigns — see [Check.Gen]. *)
let small_buffer = Check.Gen.small_buffer

let single_lib = Check.Gen.single_lib

let feq ?(eps = 1e-9) = Alcotest.(check (float eps))

let feq_rel name ~eps a b =
  let scale = Float.max (Float.abs a) (Float.abs b) in
  Alcotest.(check (float (eps *. Float.max scale 1e-30))) name a b

let case name f = Alcotest.test_case name `Quick f

(* fixed random state: property tests are reproducible across runs. The
   seed hashes the whole case name — seeding on the name's length made
   every same-length case replay the same stream. *)
let qcase ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0xb0ff; Hashtbl.hash name |])
    (QCheck2.Test.make ~count ~name gen prop)

(* Random tree and instance generators now live in [Check.Gen] so the
   fuzz campaigns, the corpus and these tests draw from one seeded
   source; the aliases keep the historical test-local names. *)

(* Random small trees whose sinks respect Theorem 5's assumptions wrt
   [small_buffer]: caps >= 5 fF, margins >= 0.7 V. *)
let theorem5_tree = Check.Gen.theorem5_tree

(* Like [theorem5_tree] but with sink margins down to 0.4 V and longer
   wires: instances where no single library buffer satisfies Theorem 5's
   assumptions, so (load, slack)-only pruning can discard the lone
   noise-feasible candidate (the Alg3-vs-brute exactness tests). *)
let lowmargin_tree = Check.Gen.lowmargin_tree

(* Coarse segmenting that keeps brute-force enumeration tractable. *)
let segment_for_brute = Check.Gen.segment_for_brute

let seeds n = List.init n (fun i -> 1000 + i)
