open Helpers
module T = Rctree.Tree

let tree_gen =
  QCheck2.Gen.(
    map
      (fun seed -> Fixtures.random_net (Util.Rng.create seed) process ~max_sinks:6 ~max_len:2e-3)
      small_int)

let buf = Tech.Lib.min_resistance lib

let tests =
  [
    case "two-pin closed form" (fun () ->
        let len = 4e-3 and r_drv = 100.0 and c_sink = 20e-15 and d_drv = 30e-12 in
        let t = Fixtures.two_pin ~r_drv ~c_sink process ~len in
        let r = Tech.Process.wire_r process len and c = Tech.Process.wire_c process len in
        let expect = d_drv +. (r_drv *. (c +. c_sink)) +. (r *. ((c /. 2.0) +. c_sink)) in
        feq_rel "delay" ~eps:1e-12 expect (Elmore.worst_delay t));
    case "wire delay eq. 2" (fun () ->
        let w = T.make_wire ~length:1.0 ~res:50.0 ~cap:10e-15 ~cur:0.0 in
        feq_rel "delay" ~eps:1e-12 (50.0 *. (5e-15 +. 30e-15)) (Elmore.wire_delay w ~load:30e-15));
    case "fig3 loads" (fun () ->
        let t = Fixtures.fig3 () in
        let caps = Elmore.cap_at t in
        (* v1 sees both sink caps plus both child wire caps: 1+1+1+1 = 4 *)
        feq "cap v1" 4.0 caps.(1);
        feq "cap source stage" 5.0 caps.(0));
    case "slack is min over sinks" (fun () ->
        let t = Fixtures.fig3 () in
        let arr = Elmore.sink_arrivals t in
        let worst = List.fold_left (fun acc (_, a) -> Float.max acc a) 0.0 arr in
        feq_rel "slack" ~eps:1e-9 (1.0 -. worst) (Elmore.slack t));
    case "buffer decouples downstream load" (fun () ->
        let t = Fixtures.two_pin process ~len:4e-3 in
        let t' = Rctree.Surgery.apply t [ { Rctree.Surgery.node = 1; dist = 2e-3; buffer = buf } ] in
        let caps = Elmore.cap_at t' in
        (* the source now sees 2 mm of wire plus the buffer input, nothing behind it *)
        let expect = Tech.Process.wire_c process 2e-3 +. buf.Tech.Buffer.c_in in
        feq_rel "decoupled" ~eps:1e-9 expect caps.(T.root t'));
    qcase ~count:60 "arrival increments are wire+gate delays" tree_gen (fun t ->
        let arr = Elmore.arrivals t in
        let caps = Elmore.cap_at t in
        List.for_all
          (fun v ->
            v = T.root t
            ||
            let w = T.wire_to t v in
            let gate =
              match T.kind t v with
              | T.Buffered b -> Tech.Buffer.gate_delay b ~load:(Elmore.drive_load t caps v)
              | T.Source _ | T.Sink _ | T.Internal -> 0.0
            in
            Util.Fx.approx ~rel:1e-9 ~abs:1e-18
              (arr.(v) -. arr.(T.parent t v))
              (Elmore.wire_delay w ~load:caps.(v) +. gate))
          (T.postorder t));
    qcase ~count:60 "arrivals are monotone down the tree" tree_gen (fun t ->
        let arr = Elmore.arrivals t in
        List.for_all
          (fun v -> v = T.root t || arr.(v) >= arr.(T.parent t v) -. 1e-18)
          (T.postorder t));
    qcase ~count:40 "extra sink cap slows every downstream path" tree_gen (fun t ->
        let d0 = Elmore.worst_delay t in
        (* grow every sink's load by 10 fF and recompute *)
        let b = Rctree.Builder.create () in
        let rec copy v parent =
          let id =
            match T.kind t v with
            | T.Source d -> Rctree.Builder.add_source b ~r_drv:d.T.r_drv ~d_drv:d.T.d_drv
            | T.Sink s ->
                Rctree.Builder.add_sink b ~parent ~wire:(T.wire_to t v) ~name:s.T.sname
                  ~c_sink:(s.T.c_sink +. 10e-15) ~rat:s.T.rat ~nm:s.T.nm
            | T.Internal ->
                Rctree.Builder.add_internal b ~parent ~wire:(T.wire_to t v)
                  ~feasible:(T.feasible t v) ()
            | T.Buffered bu -> Rctree.Builder.add_buffered b ~parent ~wire:(T.wire_to t v) bu
          in
          List.iter (fun c -> copy c id) (T.children t v)
        in
        copy (T.root t) (-1);
        Elmore.worst_delay (Rctree.Builder.finish b) > d0);
    case "segmenting leaves delay unchanged" (fun () ->
        let t = Fixtures.two_pin process ~len:5e-3 in
        let s = Rctree.Segment.refine t ~max_len:250e-6 in
        feq_rel "invariant" ~eps:1e-9 (Elmore.worst_delay t) (Elmore.worst_delay s));
    case "inserting a buffer on a long line reduces delay" (fun () ->
        let t = Fixtures.two_pin process ~len:10e-3 in
        let t' = Rctree.Surgery.apply t [ { Rctree.Surgery.node = 1; dist = 5e-3; buffer = buf } ] in
        Alcotest.(check bool) "faster" true (Elmore.worst_delay t' < Elmore.worst_delay t));
    case "balanced tree sinks arrive together" (fun () ->
        let t = Fixtures.balanced process ~levels:3 ~trunk_len:2e-3 in
        let arr = List.map snd (Elmore.sink_arrivals t) in
        let mn = List.fold_left Float.min infinity arr
        and mx = List.fold_left Float.max neg_infinity arr in
        feq_rel "skew-free" ~eps:1e-9 mn mx);
  ]

let suites = [ ("elmore", tests) ]
