open Helpers

let mat_of rows =
  let n = Array.length rows in
  let m = Linalg.Mat.create n in
  Array.iteri (fun i row -> Array.iteri (fun j v -> Linalg.Mat.set m i j v) row) rows;
  m

(* random diagonally dominant system: always well-conditioned *)
let dd_system rng n =
  let m = Linalg.Mat.create n in
  for i = 0 to n - 1 do
    let rowsum = ref 0.0 in
    for j = 0 to n - 1 do
      if i <> j then begin
        let v = Util.Rng.range rng (-1.0) 1.0 in
        Linalg.Mat.set m i j v;
        rowsum := !rowsum +. Float.abs v
      end
    done;
    Linalg.Mat.set m i i (!rowsum +. Util.Rng.range rng 0.5 2.0)
  done;
  let x = Array.init n (fun _ -> Util.Rng.range rng (-5.0) 5.0) in
  (m, x)

let tests =
  [
    case "identity solve" (fun () ->
        let m = mat_of [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
        let x = Linalg.Mat.solve m [| 3.0; -4.0 |] in
        feq "x0" 3.0 x.(0);
        feq "x1" (-4.0) x.(1));
    case "known 2x2" (fun () ->
        (* 2x + y = 5; x + 3y = 10 -> x = 1, y = 3 *)
        let m = mat_of [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
        let x = Linalg.Mat.solve m [| 5.0; 10.0 |] in
        feq ~eps:1e-12 "x" 1.0 x.(0);
        feq ~eps:1e-12 "y" 3.0 x.(1));
    case "pivoting handles zero diagonal" (fun () ->
        let m = mat_of [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
        let x = Linalg.Mat.solve m [| 7.0; 9.0 |] in
        feq "x" 9.0 x.(0);
        feq "y" 7.0 x.(1));
    case "singular raises" (fun () ->
        let m = mat_of [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
        Alcotest.(check bool) "raises" true
          (match Linalg.Mat.lu_factor m with
          | exception Linalg.Mat.Singular _ -> true
          | _ -> false));
    case "mul_vec known" (fun () ->
        let m = mat_of [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
        let y = Linalg.Mat.mul_vec m [| 1.0; 1.0 |] in
        feq "y0" 3.0 y.(0);
        feq "y1" 7.0 y.(1));
    case "factor reused across solves" (fun () ->
        let m = mat_of [| [| 4.0; 1.0 |]; [| 1.0; 3.0 |] |] in
        let lu = Linalg.Mat.lu_factor m in
        let x1 = Linalg.Mat.lu_solve lu [| 1.0; 0.0 |] in
        let x2 = Linalg.Mat.lu_solve lu [| 0.0; 1.0 |] in
        let r1 = Linalg.Mat.mul_vec m x1 and r2 = Linalg.Mat.mul_vec m x2 in
        feq ~eps:1e-12 "r1a" 1.0 r1.(0);
        feq ~eps:1e-12 "r1b" 0.0 r1.(1);
        feq ~eps:1e-12 "r2a" 0.0 r2.(0);
        feq ~eps:1e-12 "r2b" 1.0 r2.(1));
    qcase ~count:50 "random dd systems solve" QCheck2.Gen.(pair small_int (int_range 1 40))
      (fun (seed, n) ->
        let rng = Util.Rng.create seed in
        let m, x = dd_system rng n in
        let b = Linalg.Mat.mul_vec m x in
        let x' = Linalg.Mat.solve m b in
        Linalg.Vec.max_abs_diff x x' < 1e-8);
    case "copy is deep" (fun () ->
        let m = mat_of [| [| 1.0 |] |] in
        let c = Linalg.Mat.copy m in
        Linalg.Mat.set c 0 0 5.0;
        feq "original intact" 1.0 (Linalg.Mat.get m 0 0));
    case "add accumulates" (fun () ->
        let m = Linalg.Mat.create 1 in
        Linalg.Mat.add m 0 0 2.0;
        Linalg.Mat.add m 0 0 3.0;
        feq "sum" 5.0 (Linalg.Mat.get m 0 0));
    case "vec axpy and dot" (fun () ->
        let x = [| 1.0; 2.0 |] and y = [| 10.0; 20.0 |] in
        Linalg.Vec.axpy 2.0 x y;
        feq "y0" 12.0 y.(0);
        feq "y1" 24.0 y.(1);
        feq "dot" 60.0 (Linalg.Vec.dot x y));
    case "vec norms" (fun () ->
        feq "inf" 4.0 (Linalg.Vec.norm_inf [| 1.0; -4.0; 2.0 |]);
        feq "diff" 3.0 (Linalg.Vec.max_abs_diff [| 1.0; 5.0 |] [| 1.0; 2.0 |]));
  ]

let suites = [ ("linalg", tests) ]
