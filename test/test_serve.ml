(* The serve daemon (lib/serve, DESIGN.md §14): protocol parsing,
   session-level range checks and served-class accounting, and the
   socket server end to end — concurrent clients with isolated
   sessions, oversized-input defence, clean shutdown. *)

open Helpers
module P = Serve.Protocol
module S = Serve.Session

(* ------------------------------------------------------------------ *)
(* Protocol parser                                                     *)

let roundtrips =
  [
    P.Load { nets = 12; seed = 42 };
    P.Optimize { net = 3 };
    P.Update_rat { net = 0; sink = 2; ps = 350.5 };
    P.Update_wire { net = 1; node = 7; scale = 1.25 };
    P.Update_noise { net = 4; scale = 0.5 };
    P.Stats;
    P.Shutdown;
  ]

let parse_roundtrip () =
  List.iter
    (fun req ->
      match P.parse (P.render req) with
      | Ok got ->
          Alcotest.(check bool)
            (Printf.sprintf "parse (render %S)" (P.render req))
            true (got = req)
      | Error m -> Alcotest.failf "render %S did not parse: %s" (P.render req) m)
    roundtrips

let parse_tolerates_padding () =
  (match P.parse "  optimize   5  " with
  | Ok (P.Optimize { net = 5 }) -> ()
  | _ -> Alcotest.fail "runs of spaces must be tolerated");
  match P.parse "stats\r" with
  | Ok P.Stats -> ()
  | _ -> Alcotest.fail "a trailing CR must be tolerated"

let parse_rejects_garbage () =
  let expect_err line =
    match P.parse line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" line
  in
  (* empty / unknown verbs *)
  expect_err "";
  expect_err "   ";
  expect_err "optimise 3";
  expect_err "OPTIMIZE 3";
  expect_err "reticulate-splines";
  (* truncated argument lists *)
  expect_err "load workload 5";
  expect_err "load";
  expect_err "optimize";
  expect_err "update-rat 0 1";
  expect_err "update-wire 0";
  expect_err "update-noise";
  (* excess arguments *)
  expect_err "stats now";
  expect_err "shutdown please";
  expect_err "optimize 1 2";
  (* malformed numbers *)
  expect_err "optimize one";
  expect_err "load workload five 1";
  expect_err "update-rat 0 0 soon";
  expect_err "update-rat 0 0 nan";
  expect_err "update-wire 0 1 inf";
  (* domain constraints the parser owns *)
  expect_err "load workload 0 1";
  expect_err "update-wire 0 1 0";
  expect_err "update-wire 0 1 -2";
  expect_err "update-noise 0 -0.5";
  (* the line-length cap *)
  expect_err ("optimize " ^ String.make P.max_line '1')

let parse_error_is_specific () =
  (match P.parse "frobnicate 1" with
  | Error m ->
      Alcotest.(check bool) "names the verb" true
        (String.length m >= 12 && String.sub m 0 12 = "unknown verb")
  | Ok _ -> Alcotest.fail "accepted an unknown verb");
  match P.parse (String.make (P.max_line + 1) 'x') with
  | Error m ->
      Alcotest.(check bool) "oversized is called out" true
        (String.length m >= 9 && String.sub m 0 9 = "oversized")
  | Ok _ -> Alcotest.fail "accepted an oversized line"

(* ------------------------------------------------------------------ *)
(* Session semantics (no socket)                                       *)

let expect_ok session line =
  let r = S.handle_line session line in
  if not r.S.ok then Alcotest.failf "%S failed: %s" line r.S.line;
  r.S.line

let expect_err session line =
  let r = S.handle_line session line in
  if r.S.ok then Alcotest.failf "%S unexpectedly succeeded: %s" line r.S.line;
  r.S.line

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let session_range_checks () =
  let s = S.create () in
  (* nothing loaded yet: every net-addressed verb must refuse *)
  ignore (expect_err s "optimize 0");
  ignore (expect_err s "update-rat 0 0 100");
  ignore (expect_err s "update-wire 0 1 1.5");
  ignore (expect_err s "update-noise 0 2");
  let loaded = expect_ok s "load workload 3 42" in
  Alcotest.(check bool) "load reports nets" true (contains "nets=3" loaded);
  Alcotest.(check int) "loaded" 3 (S.loaded s);
  (* out-of-range ids, each flavour *)
  ignore (expect_err s "optimize 3");
  ignore (expect_err s "optimize -1");
  ignore (expect_err s "update-rat 0 99 100");
  ignore (expect_err s "update-rat 99 0 100");
  ignore (expect_err s "update-wire 0 9999 1.5");
  (* the root has no parent wire *)
  ignore (expect_err s "update-wire 0 0 1.5");
  (* parse errors are err replies, not exceptions *)
  ignore (expect_err s "frobnicate");
  let stats = expect_ok s "stats" in
  Alcotest.(check bool) "errors counted" true (contains "errors=11" stats)

let session_served_classes () =
  let s = S.create () in
  ignore (expect_ok s "load workload 6 7");
  let n = S.loaded s in
  (* the load warm pass already cached every net's result *)
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "warm load makes net %d a cache hit" i)
      true
      (contains "served=hit" (expect_ok s (Printf.sprintf "optimize %d" i)))
  done;
  (* an edit invalidates the fingerprint; on any net with structure above
     the edited sink the memo serves the re-run incrementally, a trivial
     two-pin net has nothing left to reuse and recomputes in full —
     never a cache hit either way *)
  let incr_seen = ref false in
  for i = 0 to n - 1 do
    ignore (expect_ok s (Printf.sprintf "update-rat %d 0 250" i));
    let r = expect_ok s (Printf.sprintf "optimize %d" i) in
    if contains "served=incr" r then incr_seen := true;
    Alcotest.(check bool)
      (Printf.sprintf "net %d is not a hit right after an edit" i)
      false (contains "served=hit" r)
  done;
  Alcotest.(check bool) "some net re-optimized incrementally" true !incr_seen;
  (* asking again with no edit in between: cache hit again *)
  Alcotest.(check bool) "repeat is a hit" true
    (contains "served=hit" (expect_ok s "optimize 0"));
  (* a noise-environment change clears the memo: full recompute *)
  ignore (expect_ok s "update-noise 1 1.7");
  let full = expect_ok s "optimize 1" in
  Alcotest.(check bool) "post-clear optimize is full" true
    (contains "served=full" full);
  let stats = expect_ok s "stats" in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in stats") true (contains needle stats))
    [
      Printf.sprintf "optimizes=%d" ((2 * n) + 2);
      Printf.sprintf "cache_hits=%d" (n + 1);
      "p50_ms=";
      "p99_ms=";
    ]

let session_edit_revert_is_deterministic () =
  (* editing a RAT and reverting it must reproduce the original payload
     byte for byte — the fingerprint cache and the memo agree with
     scratch (the golden form of the incremental-vs-scratch oracle) *)
  let s = S.create () in
  ignore (expect_ok s "load workload 2 11");
  (* only the optimization payload is compared: the served class
     legitimately differs between the first computation and the
     cache-served revert, and t= is wall time *)
  let payload_of line =
    let rec find i =
      if i + 7 > String.length line then String.length line
      else if String.sub line i 7 = " served" then i
      else find (i + 1)
    in
    String.sub line 0 (find 0)
  in
  let base = payload_of (expect_ok s "optimize 0") in
  (* reading the original RAT back out is not in the protocol; instead
     set an explicit value twice with an excursion in between *)
  ignore (expect_ok s "update-rat 0 0 4000");
  let pinned = payload_of (expect_ok s "optimize 0") in
  ignore (expect_ok s "update-rat 0 0 150");
  let excursion = payload_of (expect_ok s "optimize 0") in
  ignore (expect_ok s "update-rat 0 0 4000");
  let back = payload_of (expect_ok s "optimize 0") in
  Alcotest.(check string) "revert reproduces the pinned payload" pinned back;
  Alcotest.(check bool) "the excursion actually changed something" true
    (excursion <> pinned || base <> pinned)

(* ------------------------------------------------------------------ *)
(* The socket server, end to end                                       *)

let temp_socket () =
  let path = Filename.temp_file "buffopt-serve-test" ".sock" in
  Sys.remove path;
  path

let start_server path =
  let ep = Serve.Unix_path path in
  let server = Domain.spawn (fun () -> Serve.serve ~domains:2 ep) in
  (* wait for the listener; connect errors until bind+listen finish *)
  let deadline = Util.Clock.now () +. 30.0 in
  let rec wait () =
    match Serve.Client.connect ep with
    | c -> Serve.Client.close c
    | exception Unix.Unix_error _ ->
        if Util.Clock.now () > deadline then Alcotest.fail "server never came up";
        Unix.sleepf 0.02;
        wait ()
  in
  wait ();
  (ep, server)

let server_concurrent_sessions_and_shutdown () =
  let path = temp_socket () in
  let ep, server = start_server path in
  let a = Serve.Client.connect ep and b = Serve.Client.connect ep in
  let req c line =
    match Serve.Client.request c line with
    | Some reply -> reply
    | None -> Alcotest.failf "connection closed answering %S" line
  in
  (* A loads 4 nets; B's session must not see them *)
  Alcotest.(check bool) "A loads" true (contains "nets=4" (req a "load workload 4 7"));
  Alcotest.(check bool) "B is isolated from A's load" true
    (contains "no design loaded" (req b "optimize 0"));
  (* B loads its own, smaller design *)
  Alcotest.(check bool) "B loads" true (contains "nets=3" (req b "load workload 3 9"));
  Alcotest.(check bool) "A still has 4 nets" true
    (contains "served=" (req a "optimize 3"));
  Alcotest.(check bool) "B has only 3" true
    (contains "out of range" (req b "optimize 3"));
  (* interleaved edits stay per-session *)
  Alcotest.(check bool) "A edits" true
    (String.length (req a "update-rat 0 0 300") > 0);
  (* B has made exactly 4 requests at this point (the failed optimize,
     the load, the out-of-range optimize, and this stats), 2 of them
     errors; A's traffic must not leak into those counters *)
  let b_stats = req b "stats" in
  Alcotest.(check bool) "B's stats count only B's traffic" true
    (contains "requests=4" b_stats && contains "errors=2" b_stats);
  (* a parse error is answered, not dropped *)
  Alcotest.(check bool) "parse errors answered" true
    (contains "unknown verb" (req a "warp-speed"));
  (* one client's shutdown stops the daemon after the reply *)
  Alcotest.(check bool) "bye" true (contains "bye" (req b "shutdown"));
  Domain.join server;
  Serve.Client.close a;
  Serve.Client.close b;
  Alcotest.(check bool) "socket path unlinked" false (Sys.file_exists path);
  (* and the endpoint is really gone *)
  match Serve.Client.connect ep with
  | c ->
      Serve.Client.close c;
      Alcotest.fail "connected to a stopped server"
  | exception Unix.Unix_error _ -> ()

let server_cuts_oversized_streams () =
  let path = temp_socket () in
  let ep, server = start_server path in
  (* a complete but oversized line: err reply, connection survives *)
  let c = Serve.Client.connect ep in
  let big = "optimize " ^ String.make (P.max_line + 10) '1' in
  (match Serve.Client.request c big with
  | Some reply -> Alcotest.(check bool) "oversized line refused" true (contains "oversized" reply)
  | None -> Alcotest.fail "server closed on a complete oversized line");
  (match Serve.Client.request c "stats" with
  | Some reply -> Alcotest.(check bool) "connection still serves" true (contains "requests=" reply)
  | None -> Alcotest.fail "connection did not survive the oversized line");
  Serve.Client.close c;
  (* an unterminated stream past the cap: the server answers err and
     hangs up rather than buffering without bound *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let junk = String.make (P.max_line + 200) 'x' in
  let sent = ref 0 in
  while !sent < String.length junk do
    sent := !sent + Unix.write_substring fd junk !sent (String.length junk - !sent)
  done;
  let buf = Bytes.create 4096 in
  let got = Buffer.create 128 in
  (let rec read_all () =
     match Unix.read fd buf 0 (Bytes.length buf) with
     | 0 -> ()
     | n ->
         Buffer.add_subbytes got buf 0 n;
         read_all ()
   in
   read_all ());
  Unix.close fd;
  Alcotest.(check bool) "err then EOF on an unbounded line" true
    (contains "oversized" (Buffer.contents got));
  (* the daemon is still alive for well-behaved clients *)
  let e = Serve.Client.connect ep in
  (match Serve.Client.request e "shutdown" with
  | Some reply -> Alcotest.(check bool) "still serving, shuts down" true (contains "bye" reply)
  | None -> Alcotest.fail "daemon died on the oversized stream");
  Serve.Client.close e;
  Domain.join server

let server_script_helper () =
  let path = temp_socket () in
  let ep, server = start_server path in
  let replies =
    Serve.Client.script ep
      [ "load workload 2 5"; "optimize 0"; "optimize 1"; "stats"; "shutdown" ]
  in
  Domain.join server;
  Alcotest.(check int) "one reply per request" 5 (List.length replies);
  List.iter
    (fun r -> Alcotest.(check bool) ("ok: " ^ r) true (contains "ok" r))
    replies

let suites =
  [
    ( "serve.protocol",
      [
        case "render/parse round-trip" parse_roundtrip;
        case "padding and CR tolerated" parse_tolerates_padding;
        case "malformed, truncated and oversized lines rejected" parse_rejects_garbage;
        case "error text names the problem" parse_error_is_specific;
      ] );
    ( "serve.session",
      [
        case "range checks: unloaded, out-of-range, root wire" session_range_checks;
        case "served classes: hit, incr, full" session_served_classes;
        case "edit/revert reproduces the pinned payload" session_edit_revert_is_deterministic;
      ] );
    ( "serve.server",
      [
        case "concurrent clients: isolated sessions, clean shutdown"
          server_concurrent_sessions_and_shutdown;
        case "oversized input: refused, connection policy enforced"
          server_cuts_oversized_streams;
        case "client script helper" server_script_helper;
      ] );
  ]
