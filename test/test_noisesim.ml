open Helpers
module T = Rctree.Tree

let buf = Tech.Lib.min_resistance lib

let workload_tree_gen =
  QCheck2.Gen.(
    map
      (fun seed ->
        let cfg = { Workload.default_config with nets = 1; seed } in
        match Workload.trees process (Workload.generate cfg) with
        | [ (_, t) ] -> t
        | _ -> assert false)
      small_int)

let tests =
  [
    case "deck probes every stage leaf" (fun () ->
        let t = Fixtures.balanced process ~levels:2 ~trunk_len:2e-3 in
        let cfg = Noisesim.Deck.default_config process in
        let deck = Noisesim.Deck.of_stage cfg t ~gate:(T.root t) in
        Alcotest.(check int) "four sinks probed" 4 (List.length deck.Noisesim.Deck.probes));
    case "of_stage rejects non-gates" (fun () ->
        let t = Fixtures.balanced process ~levels:1 ~trunk_len:1e-3 in
        let cfg = Noisesim.Deck.default_config process in
        let internal = List.hd (T.internals t) in
        Alcotest.(check bool) "raises" true
          (match Noisesim.Deck.of_stage cfg t ~gate:internal with
          | exception Invalid_argument _ -> true
          | _ -> false));
    qcase ~count:15 "devgan metric upper-bounds simulated peaks" workload_tree_gen (fun t ->
        let r = Noisesim.Verify.net process t in
        r.Noisesim.Verify.bound_ok);
    qcase ~count:10 "bound also holds after buffering" workload_tree_gen (fun t ->
        match Bufins.Buffopt.optimize Bufins.Buffopt.Buffopt ~lib t with
        | Some run ->
            let r = Noisesim.Verify.net process run.Bufins.Buffopt.report.Bufins.Eval.tree in
            r.Noisesim.Verify.bound_ok && Noisesim.Verify.is_clean r
        | None -> false);
    case "simulated peak grows with coupling" (fun () ->
        let peak lambda =
          let p = { process with Tech.Process.lambda } in
          let t = Fixtures.two_pin p ~len:3e-3 in
          let r = Noisesim.Verify.net p t in
          (List.hd r.Noisesim.Verify.leaves).Noisesim.Verify.peak
        in
        let p03 = peak 0.3 and p07 = peak 0.7 in
        Alcotest.(check bool) "monotone" true (p07 > p03 && p03 > 0.0));
    case "no coupling means no noise" (fun () ->
        let p = { process with Tech.Process.lambda = 0.0 } in
        let t = Fixtures.two_pin p ~len:3e-3 in
        let r = Noisesim.Verify.net p t in
        Alcotest.(check bool) "silent" true
          ((List.hd r.Noisesim.Verify.leaves).Noisesim.Verify.peak < 1e-6));
    case "segment count convergence" (fun () ->
        let t = Fixtures.two_pin process ~len:4e-3 in
        let peak n_seg =
          let cfg = { (Noisesim.Deck.default_config process) with Noisesim.Deck.n_seg } in
          let r = Noisesim.Verify.net ~config:cfg process t in
          (List.hd r.Noisesim.Verify.leaves).Noisesim.Verify.peak
        in
        feq_rel "8 vs 24 segments" ~eps:0.02 (peak 8) (peak 24));
    case "metric reported alongside peaks" (fun () ->
        let t = Fixtures.two_pin process ~len:4e-3 in
        let r = Noisesim.Verify.net process t in
        let l = List.hd r.Noisesim.Verify.leaves in
        let metric = match Noise.leaf_noise t with [ (_, n, _) ] -> n | _ -> assert false in
        feq_rel "same metric" ~eps:1e-9 metric l.Noisesim.Verify.metric);
    case "violation counting is consistent" (fun () ->
        let t = Fixtures.two_pin process ~len:8e-3 in
        let r = Noisesim.Verify.net process t in
        Alcotest.(check int) "metric violation" 1 r.Noisesim.Verify.metric_violations;
        Alcotest.(check bool) "sim violation too (8 mm line)" true (r.Noisesim.Verify.sim_violations = 1);
        let fixed =
          Rctree.Surgery.apply t
            [
              { Rctree.Surgery.node = 1; dist = 2.7e-3; buffer = buf };
              { Rctree.Surgery.node = 1; dist = 5.4e-3; buffer = buf };
            ]
        in
        let r' = Noisesim.Verify.net process fixed in
        Alcotest.(check int) "clean after buffering" 0 r'.Noisesim.Verify.sim_violations);
  ]

let suites = [ ("noisesim", tests) ]
