open Helpers
module T = Rctree.Tree

let chain_gen =
  QCheck2.Gen.(
    let* seed = small_int in
    let* len = float_range 0.5e-3 15e-3 in
    ignore seed;
    return (Fixtures.two_pin process ~len))

let multi_gen =
  QCheck2.Gen.(
    map
      (fun seed ->
        let rng = Util.Rng.create seed in
        Fixtures.random_net rng process ~max_sinks:5 ~max_len:5e-3)
      small_int)

let workload_gen =
  QCheck2.Gen.(
    map
      (fun seed ->
        let cfg = { Workload.default_config with nets = 1; seed } in
        snd (List.hd (Workload.trees process (Workload.generate cfg))))
      small_int)

let tests =
  [
    qcase ~count:60 "agrees with Algorithm 1 on chains" chain_gen (fun t ->
        (Bufins.Alg2.run ~lib t).Bufins.Alg2.count = (Bufins.Alg1.run ~lib t).Bufins.Alg1.count);
    qcase ~count:100 "always noise-clean on random trees" multi_gen (fun t ->
        let r = Bufins.Alg2.run ~lib t in
        Bufins.Eval.noise_clean (Bufins.Eval.apply t r.Bufins.Alg2.placements));
    qcase ~count:40 "always noise-clean on workload nets" workload_gen (fun t ->
        let r = Bufins.Alg2.run ~lib t in
        Bufins.Eval.noise_clean (Bufins.Eval.apply t r.Bufins.Alg2.placements));
    qcase ~count:30 "count within brute-force optimum" multi_gen (fun t ->
        match segment_for_brute t with
        | None -> true
        | Some seg -> (
            let r = Bufins.Alg2.run ~lib t in
            match Bufins.Brute.min_buffers_noise ~lib:[ Tech.Lib.min_resistance lib ] seg with
            | Some (k, _) -> r.Bufins.Alg2.count <= k
            | None -> true));
    case "clean tree needs nothing" (fun () ->
        let t = Fixtures.balanced process ~levels:2 ~trunk_len:0.4e-3 ~fanout_len:0.3e-3 in
        Alcotest.(check int) "zero" 0 (Bufins.Alg2.run ~lib t).Bufins.Alg2.count);
    case "forced merge buffers one branch" (fun () ->
        (* both branches are individually fine for the buffer, but their
           merged current violates: a buffer must land immediately below
           the merge on one branch (paper Section III-C) *)
        let b = Rctree.Builder.create () in
        let so = Rctree.Builder.add_source b ~r_drv:36.0 ~d_drv:0.0 in
        let mid = Rctree.Builder.add_internal b ~parent:so ~wire:(T.wire_of_length process 1e-6) () in
        let branch = T.wire_of_length process 2.9e-3 in
        ignore (Rctree.Builder.add_sink b ~parent:mid ~wire:branch ~name:"a" ~c_sink:10e-15 ~rat:1e-9 ~nm:0.5);
        ignore (Rctree.Builder.add_sink b ~parent:mid ~wire:branch ~name:"c" ~c_sink:10e-15 ~rat:1e-9 ~nm:0.5);
        let t = Rctree.Builder.finish b in
        Alcotest.(check bool) "unbuffered violates" true
          (not (Bufins.Eval.noise_clean (Bufins.Eval.of_tree t)));
        let r = Bufins.Alg2.run ~lib t in
        Alcotest.(check int) "one buffer suffices" 1 r.Bufins.Alg2.count;
        let p = List.hd r.Bufins.Alg2.placements in
        feq_rel "at branch top" ~eps:1e-9 branch.T.length p.Rctree.Surgery.dist;
        Alcotest.(check bool) "clean" true
          (Bufins.Eval.noise_clean (Bufins.Eval.apply t r.Bufins.Alg2.placements)));
    qcase ~count:60 "counts candidates" multi_gen (fun t ->
        (Bufins.Alg2.run ~lib t).Bufins.Alg2.candidates_seen >= 0);
    case "rejects pre-buffered trees" (fun () ->
        let t = Fixtures.two_pin process ~len:4e-3 in
        let buf = Tech.Lib.min_resistance lib in
        let t' = Rctree.Surgery.apply t [ { Rctree.Surgery.node = 1; dist = 2e-3; buffer = buf } ] in
        Alcotest.(check bool) "raises" true
          (match Bufins.Alg2.run ~lib t' with exception Invalid_argument _ -> true | _ -> false));
  ]

let suites = [ ("bufins.alg2", tests) ]
