open Helpers
module T = Rctree.Tree

(* The headline claims of Section V, checked end-to-end on a reduced
   workload: net generation -> Steiner -> segmenting -> optimization ->
   independent evaluation -> transient simulation. *)

let bench = lazy (Workload.trees process (Workload.generate { Workload.default_config with nets = 40 }))

let tests =
  [
    case "buffopt fixes every noise violation (metric)" (fun () ->
        List.iter
          (fun (_, tree) ->
            match Bufins.Buffopt.optimize Bufins.Buffopt.Buffopt ~lib tree with
            | Some r ->
                Alcotest.(check int) "clean" 0
                  (List.length r.Bufins.Buffopt.report.Bufins.Eval.noise_violations)
            | None -> Alcotest.fail "infeasible net")
          (Lazy.force bench));
    case "buffopt solutions are simulation-clean (3dnoise role)" (fun () ->
        (* the expensive cross-check on a subset *)
        List.iteri
          (fun i (_, tree) ->
            if i < 8 then
              match Bufins.Buffopt.optimize Bufins.Buffopt.Buffopt ~lib tree with
              | Some r ->
                  let v = Noisesim.Verify.net process r.Bufins.Buffopt.report.Bufins.Eval.tree in
                  Alcotest.(check int) "sim clean" 0 v.Noisesim.Verify.sim_violations;
                  Alcotest.(check bool) "bound holds" true v.Noisesim.Verify.bound_ok
              | None -> Alcotest.fail "infeasible net")
          (Lazy.force bench));
    case "theorem 2: delay-optimal buffering can leave noise violations" (fun () ->
        (* the paper's Table III finding: even DelayOpt(4) leaves
           violations on a population BuffOpt fully repairs *)
        let offender =
          List.exists
            (fun (_, tree) ->
              match Bufins.Buffopt.optimize (Bufins.Buffopt.Delayopt 4) ~lib tree with
              | Some r -> not (Bufins.Eval.noise_clean r.Bufins.Buffopt.report)
              | None -> false)
            (Lazy.force bench)
        in
        Alcotest.(check bool) "at least one offender in 40 nets" true offender);
    case "noise-aware delay penalty stays small" (fun () ->
        let penalties =
          List.filter_map
            (fun (_, tree) ->
              match Bufins.Buffopt.optimize Bufins.Buffopt.Buffopt ~lib tree with
              | Some bo when bo.Bufins.Buffopt.count > 0 -> (
                  let seg = bo.Bufins.Buffopt.segmented in
                  let base = (Bufins.Eval.of_tree seg).Bufins.Eval.worst_delay in
                  let by = Bufins.Vangin.by_count ~kmax:16 ~lib seg in
                  match by.(bo.Bufins.Buffopt.count) with
                  | Some d ->
                      let dly =
                        (Bufins.Eval.apply seg d.Bufins.Dp.placements).Bufins.Eval.worst_delay
                      in
                      let red_bo = base -. bo.Bufins.Buffopt.report.Bufins.Eval.worst_delay in
                      let red_dl = base -. dly in
                      if red_dl > 1e-12 then Some ((red_dl -. red_bo) /. red_dl) else None
                  | None -> None)
              | Some _ | None -> None)
            (Lazy.force bench)
        in
        let avg = List.fold_left ( +. ) 0.0 penalties /. float_of_int (List.length penalties) in
        Alcotest.(check bool) "some pairs measured" true (List.length penalties > 5);
        Alcotest.(check bool) "below 5 percent (paper: 2)" true (avg < 0.05));
    case "metric is conservative: flags at least the simulated set" (fun () ->
        List.iteri
          (fun i (_, tree) ->
            if i < 8 then begin
              let seg = Rctree.Segment.refine tree ~max_len:500e-6 in
              let v = Noisesim.Verify.net process seg in
              Alcotest.(check bool) "metric >= sim count" true
                (v.Noisesim.Verify.metric_violations >= v.Noisesim.Verify.sim_violations)
            end)
          (Lazy.force bench));
    case "alg2 also clears the workload (problem 1 path)" (fun () ->
        List.iter
          (fun (_, tree) ->
            let r = Bufins.Alg2.run ~lib tree in
            Alcotest.(check bool) "clean" true
              (Bufins.Eval.noise_clean (Bufins.Eval.apply tree r.Bufins.Alg2.placements)))
          (Lazy.force bench));
    case "alg2 never uses more buffers than buffopt" (fun () ->
        (* continuous placement (Problem 1) lower-bounds the discrete
           noise-constrained solution at any timing target *)
        List.iter
          (fun (_, tree) ->
            let a2 = (Bufins.Alg2.run ~lib tree).Bufins.Alg2.count in
            match Bufins.Buffopt.optimize Bufins.Buffopt.Buffopt ~lib tree with
            | Some bo -> Alcotest.(check bool) "lower bound" true (a2 <= bo.Bufins.Buffopt.count)
            | None -> Alcotest.fail "infeasible")
          (Lazy.force bench));
  ]

let suites = [ ("integration", tests) ]
