open Helpers
module N = Circuit.Netlist
module W = Circuit.Waveform

let waveform_tests =
  [
    case "dc" (fun () ->
        let w = W.dc 1.5 in
        feq "v" 1.5 (W.value w 3.0);
        feq "dv" 0.0 (W.deriv w 3.0));
    case "ramp values" (fun () ->
        let w = W.ramp ~t0:1.0 ~t_rise:2.0 ~v0:0.0 ~v1:4.0 in
        feq "before" 0.0 (W.value w 0.5);
        feq "mid" 2.0 (W.value w 2.0);
        feq "after" 4.0 (W.value w 5.0);
        feq "slope" 2.0 (W.deriv w 2.0);
        feq "flat" 0.0 (W.deriv w 5.0));
    case "pwl interpolation" (fun () ->
        let w = W.pwl [ (0.0, 0.0); (1.0, 2.0); (3.0, 0.0) ] in
        feq "at 0.5" 1.0 (W.value w 0.5);
        feq "at 2.0" 1.0 (W.value w 2.0);
        feq "deriv down" (-1.0) (W.deriv w 2.0);
        feq "clamp right" 0.0 (W.value w 10.0));
  ]

(* RC low-pass step: v(t) = V (1 - exp(-t/RC)) *)
let rc_charge () =
  let nl = N.create () in
  let src = N.fresh ~label:"src" nl in
  let out = N.fresh ~label:"out" nl in
  let r = 1000.0 and c = 1e-9 in
  N.resistor nl src out r;
  N.capacitor nl out N.ground c;
  N.drive nl src (W.ramp ~t0:0.0 ~t_rise:1e-12 ~v0:0.0 ~v1:1.0);
  (nl, out, r *. c)

let transient_tests =
  [
    case "rc step response" (fun () ->
        let nl, out, tau = rc_charge () in
        let res =
          Circuit.Transient.simulate ~record:true nl ~dt:(tau /. 200.0) ~t_end:(5.0 *. tau)
            ~probes:[ out ]
        in
        let tr = match res.Circuit.Transient.traces with Some t -> t.(0) | None -> assert false in
        Array.iteri
          (fun k t ->
            if t > 2e-12 then begin
              let expected = 1.0 -. exp (-.t /. tau) in
              feq ~eps:5e-3 (Printf.sprintf "v(%g)" t) expected tr.(k)
            end)
          res.Circuit.Transient.times);
    case "dc divider operating point" (fun () ->
        let nl = N.create () in
        let src = N.fresh nl and mid = N.fresh nl in
        N.resistor nl src mid 1000.0;
        N.resistor nl mid N.ground 3000.0;
        N.drive nl src (W.dc 2.0);
        let res = Circuit.Transient.simulate nl ~dt:1e-9 ~t_end:1e-8 ~probes:[ mid ] in
        feq ~eps:1e-9 "divider" 1.5 res.Circuit.Transient.finals.(0));
    case "coupled noise below devgan bound" (fun () ->
        (* victim node held by r_g, coupled by c_c to a ramp: the metric
           bound is r_g * c_c * slope *)
        let nl = N.create () in
        let agg = N.fresh nl and vic = N.fresh nl in
        let r_g = 200.0 and c_c = 50e-15 and c_g = 30e-15 in
        let t_rise = 0.25e-9 and vdd = 1.8 in
        N.resistor nl vic N.ground r_g;
        N.capacitor nl vic agg c_c;
        N.capacitor nl vic N.ground c_g;
        N.drive nl agg (W.ramp ~t0:0.0 ~t_rise ~v0:0.0 ~v1:vdd);
        let res = Circuit.Transient.simulate nl ~dt:(t_rise /. 100.0) ~t_end:(4.0 *. t_rise) ~probes:[ vic ] in
        let bound = r_g *. c_c *. (vdd /. t_rise) in
        let peak = res.Circuit.Transient.peaks.(0) in
        Alcotest.(check bool) "positive" true (peak > 0.2 *. bound);
        Alcotest.(check bool) "bounded" true (peak <= bound +. 1e-9));
    case "probing driven node returns waveform" (fun () ->
        let nl = N.create () in
        let src = N.fresh nl and out = N.fresh nl in
        N.resistor nl src out 100.0;
        N.capacitor nl out N.ground 1e-12;
        N.drive nl src (W.dc 1.0);
        let res = Circuit.Transient.simulate nl ~dt:1e-11 ~t_end:1e-10 ~probes:[ src; N.ground ] in
        feq "driven" 1.0 res.Circuit.Transient.finals.(0);
        feq "ground" 0.0 res.Circuit.Transient.finals.(1));
    case "peak time recorded" (fun () ->
        let nl = N.create () in
        let agg = N.fresh nl and vic = N.fresh nl in
        N.resistor nl vic N.ground 100.0;
        N.capacitor nl vic agg 10e-15;
        N.drive nl agg (W.ramp ~t0:0.0 ~t_rise:1e-10 ~v0:0.0 ~v1:1.0);
        let res = Circuit.Transient.simulate nl ~dt:1e-12 ~t_end:5e-10 ~probes:[ vic ] in
        Alcotest.(check bool) "peak inside ramp window" true
          (res.Circuit.Transient.peak_times.(0) <= 1.2e-10));
    case "bad dt rejected" (fun () ->
        let nl = N.create () in
        ignore (N.fresh nl);
        Alcotest.(check bool) "raises" true
          (match Circuit.Transient.simulate nl ~dt:0.0 ~t_end:1.0 ~probes:[] with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "netlist validation" (fun () ->
        let nl = N.create () in
        let a = N.fresh nl in
        Alcotest.(check bool) "bad resistor" true
          (match N.resistor nl a N.ground 0.0 with exception Invalid_argument _ -> true | _ -> false);
        Alcotest.(check bool) "negative cap" true
          (match N.capacitor nl a N.ground (-1.0) with exception Invalid_argument _ -> true | _ -> false);
        N.drive nl a (W.dc 1.0);
        Alcotest.(check bool) "double drive" true
          (match N.drive nl a (W.dc 2.0) with exception Invalid_argument _ -> true | _ -> false);
        Alcotest.(check bool) "drive ground" true
          (match N.drive nl N.ground (W.dc 2.0) with exception Invalid_argument _ -> true | _ -> false));
    case "trapezoidal is second-order on smooth inputs" (fun () ->
        (* with a resolvable ramp, halving dt shrinks the error ~4x *)
        let tau = 1e-6 in
        let final dt =
          let nl = Circuit.Netlist.create () in
          let src = N.fresh nl and out = N.fresh nl in
          N.resistor nl src out 1000.0;
          N.capacitor nl out N.ground 1e-9;
          N.drive nl src (W.ramp ~t0:0.0 ~t_rise:(tau /. 2.0) ~v0:0.0 ~v1:1.0);
          let res = Circuit.Transient.simulate nl ~dt ~t_end:tau ~probes:[ out ] in
          res.Circuit.Transient.finals.(0)
        in
        let reference = final (tau /. 4000.0) in
        let e1 = Float.abs (final (tau /. 10.0) -. reference) in
        let e2 = Float.abs (final (tau /. 20.0) -. reference) in
        Alcotest.(check bool) "convergence order" true (e2 < e1 /. 2.5));
  ]

let suites = [ ("circuit.waveform", waveform_tests); ("circuit.transient", transient_tests) ]
