open Helpers
module T = Rctree.Tree

let brute_gen =
  QCheck2.Gen.(
    map
      (fun seed ->
        let rng = Util.Rng.create seed in
        segment_for_brute (theorem5_tree rng))
      small_int)

let workload_gen =
  QCheck2.Gen.(
    map
      (fun seed ->
        let cfg = { Workload.default_config with nets = 1; seed } in
        snd (List.hd (Workload.trees process (Workload.generate cfg))))
      small_int)

(* Two non-inverting buffers, neither satisfying Theorem 5's margin
   assumption against [lowmargin_tree] sinks: a fast low-margin buffer
   and a slow high-margin one. The optimum often needs the slow buffer
   even where the fast one wins on slack. *)
let mixed_lib = Check.Gen.mixed_lib

let mixed_lib_gen =
  QCheck2.Gen.(
    map
      (fun seed ->
        let rng = Util.Rng.create seed in
        let seg = Rctree.Segment.refine (lowmargin_tree rng) ~max_len:1.5e-3 in
        let feasible = List.filter (T.feasible seg) (T.internals seg) in
        if List.length feasible <= 8 then Some seg else None)
      small_int)

let tests =
  [
    qcase ~count:40 "optimal under Theorem 5 assumptions" brute_gen (function
      | None -> true
      | Some seg -> (
          (* single buffer with c_in below every sink cap and margin below
             every sink margin: Algorithm 3 must match brute force *)
          let r = Bufins.Alg3.run ~lib:single_lib seg in
          match (r, Bufins.Brute.best_slack ~noise:true ~lib:single_lib seg) with
          | Some r, Some (best, _) -> Util.Fx.approx ~rel:1e-9 ~abs:1e-15 best r.Bufins.Dp.slack
          | None, None -> true
          | Some _, None | None, Some _ -> false));
    qcase ~count:60 "solutions are always noise-clean" workload_gen (fun t ->
        let seg = Rctree.Segment.refine t ~max_len:500e-6 in
        match Bufins.Alg3.run ~lib seg with
        | Some r -> Bufins.Eval.noise_clean (Bufins.Eval.apply seg r.Bufins.Dp.placements)
        | None -> false);
    qcase ~count:60 "never beats the unconstrained optimum" workload_gen (fun t ->
        let seg = Rctree.Segment.refine t ~max_len:500e-6 in
        match Bufins.Alg3.run ~lib seg with
        | Some r -> r.Bufins.Dp.slack <= (Bufins.Vangin.run ~lib seg).Bufins.Dp.slack +. 1e-15
        | None -> true);
    qcase ~count:40 "predicted slack equals recomputed slack" workload_gen (fun t ->
        let seg = Rctree.Segment.refine t ~max_len:500e-6 in
        match Bufins.Alg3.run ~lib seg with
        | Some r ->
            let report = Bufins.Eval.apply seg r.Bufins.Dp.placements in
            Util.Fx.approx ~rel:1e-9 ~abs:1e-16 r.Bufins.Dp.slack report.Bufins.Eval.slack
        | None -> true);
    case "returns None when nothing can satisfy the margins" (fun () ->
        (* a sink with a sub-millivolt margin on a long coupled line: no
           discrete buffering can help at coarse segmenting *)
        let t = Fixtures.two_pin ~nm:1e-4 process ~len:10e-3 in
        let seg = Rctree.Segment.refine t ~max_len:5e-3 in
        Alcotest.(check bool) "infeasible" true (Bufins.Alg3.run ~lib seg = None));
    qcase ~count:30 "richer library never hurts" workload_gen (fun t ->
        let seg = Rctree.Segment.refine t ~max_len:500e-6 in
        match (Bufins.Alg3.run ~lib seg, Bufins.Alg3.run ~lib:[ Tech.Lib.min_resistance lib ] seg) with
        | Some full, Some single -> full.Bufins.Dp.slack >= single.Bufins.Dp.slack -. 1e-15
        | Some _, None -> true
        | None, _ -> true);
    qcase ~count:30 "a buffer is never attached to a noisy candidate" workload_gen (fun t ->
        (* every gate in the produced tree satisfies its stage's margins:
           per-stage noise at any leaf <= margin *)
        let seg = Rctree.Segment.refine t ~max_len:500e-6 in
        match Bufins.Alg3.run ~lib seg with
        | Some r ->
            let tree = Rctree.Surgery.apply seg r.Bufins.Dp.placements in
            List.for_all (fun (_, noise, margin) -> noise <= margin +. 1e-9) (Noise.leaf_noise tree)
        | None -> false);
    qcase ~count:20 "count-indexed buckets are exact in noise mode" workload_gen (fun t ->
        let seg = Rctree.Segment.refine t ~max_len:700e-6 in
        let out = Bufins.Alg3.by_count ~kmax:8 ~lib seg in
        let ok = ref true in
        Array.iteri
          (fun k r ->
            match r with
            | Some (r : Bufins.Dp.result) ->
                if r.Bufins.Dp.count <> k then ok := false;
                (* every bucketed solution is noise-clean *)
                if
                  not
                    (Bufins.Eval.noise_clean (Bufins.Eval.apply seg r.Bufins.Dp.placements))
                then ok := false
            | None -> ())
          out.Bufins.Dp.by_count;
        !ok);
    qcase ~count:20 "bucket slacks agree with re-evaluation" workload_gen (fun t ->
        let seg = Rctree.Segment.refine t ~max_len:700e-6 in
        let out = Bufins.Alg3.by_count ~kmax:6 ~lib seg in
        Array.for_all
          (function
            | Some (r : Bufins.Dp.result) ->
                let report = Bufins.Eval.apply seg r.Bufins.Dp.placements in
                Util.Fx.approx ~rel:1e-9 ~abs:1e-16 r.Bufins.Dp.slack report.Bufins.Eval.slack
            | None -> true)
          out.Bufins.Dp.by_count);
    qcase ~count:60 "exact against brute force for arbitrary libraries" mixed_lib_gen (function
      | None -> true
      | Some seg -> (
          (* no Theorem 5 assumptions: neither buffer's margin is below
             every sink's. Exactness here needs the full
             (load, slack, current, noise-slack) dominance pruning — the
             (load, slack)-only relation discards candidates that are the
             sole survivors of the upstream wires. *)
          match
            (Bufins.Alg3.run ~lib:mixed_lib seg, Bufins.Brute.best_slack ~noise:true ~lib:mixed_lib seg)
          with
          | Some r, Some (best, _) -> Util.Fx.approx ~rel:1e-9 ~abs:1e-15 best r.Bufins.Dp.slack
          | None, None -> true
          | Some _, None | None, Some _ -> false));
    case "regression: delay-mode pruning once lost the only noise-feasible solution" (fun () ->
        (* these instances made the engine report infeasibility while
           brute force finds a noise-clean buffering: the candidate whose
           noise slack survives the upstream wires is (load, slack)-
           dominated and was pruned before the buffer could rescue it *)
        List.iter
          (fun seed ->
            let rng = Util.Rng.create seed in
            let seg = Rctree.Segment.refine (lowmargin_tree rng) ~max_len:1.5e-3 in
            match
              (Bufins.Alg3.run ~lib:mixed_lib seg, Bufins.Brute.best_slack ~noise:true ~lib:mixed_lib seg)
            with
            | Some r, Some (best, _) ->
                feq_rel (Printf.sprintf "seed %d slack" seed) ~eps:1e-9 best r.Bufins.Dp.slack
            | None, Some _ -> Alcotest.failf "seed %d: DP infeasible but brute succeeds" seed
            | _, None -> Alcotest.failf "seed %d: instance no longer exercises the bug" seed)
          [ 0; 1; 2; 3; 4 ]);
    case "golden: PR-1 corpus solutions are pinned placement for placement" (fun () ->
        (* End-to-end freeze of the five PR-1 regression instances: the
           flat-candidate + trace-arena DP must keep reproducing exactly
           the solutions the eager list-carrying engine committed — same
           buffers at the same nodes in the same order, same slack to the
           last bit of the printed precision. *)
        let golden =
          [
            (0, "fastlow", [ (4, "fastlow"); (2, "fastlow"); (1, "fastlow") ],
             7.6363756229833327e-10,
             [ (4, "fastlow"); (2, "slowhigh"); (1, "fastlow") ],
             7.6353756229833324e-10);
            (1, "fastlow", [ (3, "fastlow"); (2, "fastlow"); (1, "fastlow") ],
             6.6922693567923953e-10,
             [ (3, "fastlow"); (2, "fastlow"); (1, "slowhigh") ],
             6.4411867265228217e-10);
            (2, "fastlow", [ (2, "fastlow"); (1, "fastlow") ],
             9.9261861089149271e-10,
             [ (2, "fastlow"); (1, "slowhigh") ],
             9.6769576732923342e-10);
            (3, "fastlow", [ (6, "fastlow"); (4, "fastlow"); (1, "fastlow") ],
             2.552401195222317e-10,
             [ (6, "slowhigh"); (4, "slowhigh"); (1, "slowhigh") ],
             2.3046308611853491e-10);
            (4, "fastlow", [ (3, "fastlow"); (2, "fastlow"); (1, "fastlow") ],
             6.5035430075046443e-10,
             [ (3, "fastlow"); (2, "fastlow"); (1, "slowhigh") ],
             6.2619002288324987e-10);
          ]
        in
        let sol (r : Bufins.Dp.result) =
          List.map
            (fun (p : Rctree.Surgery.placement) ->
              Alcotest.(check (float 0.0))
                "buffer sits at the node" 0.0 p.Rctree.Surgery.dist;
              (p.Rctree.Surgery.node, p.Rctree.Surgery.buffer.Tech.Buffer.name))
            r.Bufins.Dp.placements
        in
        (* both candidate engines must keep committing these solutions:
           [`Sweep_only] is the frozen PR-4 engine, [`Predictive] (the
           default since PR 5) must be placement-for-placement identical *)
        List.iter
          (fun (pname, pruning) ->
            List.iter
              (fun (seed, _, dsol, dslack, nsol, nslack) ->
                let rng = Util.Rng.create seed in
                let seg = Rctree.Segment.refine (lowmargin_tree rng) ~max_len:1.5e-3 in
                let d =
                  match
                    (Bufins.Dp.run ~pruning ~noise:false ~mode:Bufins.Dp.Single
                       ~lib:mixed_lib seg).Bufins.Dp.best
                  with
                  | Some r -> r
                  | None -> Alcotest.failf "seed %d (%s): delay mode infeasible" seed pname
                in
                Alcotest.(check (list (pair int string)))
                  (Printf.sprintf "seed %d %s delay placements" seed pname)
                  dsol (sol d);
                feq_rel
                  (Printf.sprintf "seed %d %s delay slack" seed pname)
                  ~eps:1e-12 dslack d.Bufins.Dp.slack;
                match Bufins.Alg3.run ~pruning ~lib:mixed_lib seg with
                | None -> Alcotest.failf "seed %d (%s): noise mode infeasible" seed pname
                | Some r ->
                    Alcotest.(check (list (pair int string)))
                      (Printf.sprintf "seed %d %s noise placements" seed pname)
                      nsol (sol r);
                    feq_rel
                      (Printf.sprintf "seed %d %s noise slack" seed pname)
                      ~eps:1e-12 nslack r.Bufins.Dp.slack)
              golden)
          [ ("pred", `Predictive); ("sweep", `Sweep_only) ]);
    case "golden: a multi-type default-library instance is pinned under both engines" (fun () ->
        (* five sinks, the full 11-buffer default library, 500 um
           segmenting: the per-type candidate machinery (prepared
           library, per-type insertion order, inverter parities) on a
           realistic mix. Both engines must reproduce this exact
           solution — nodes, buffer names and slack *)
        let tree =
          Fixtures.random_net (Util.Rng.create 42) process ~max_sinks:5 ~max_len:5e-3
        in
        let seg = Rctree.Segment.refine tree ~max_len:500e-6 in
        let expect =
          [
            (50, "invx16"); (49, "invx1"); (47, "bufx1"); (4, "invx16"); (8, "invx16");
            (12, "invx16"); (14, "bufx8"); (13, "invx1"); (18, "invx16"); (22, "invx16");
            (26, "invx16"); (32, "invx16"); (30, "invx16"); (28, "invx16"); (27, "invx1");
            (37, "invx16"); (41, "invx16");
          ]
        in
        let expect_slack = 5.9319577892898629e-10 in
        let sol (r : Bufins.Dp.result) =
          List.map
            (fun (p : Rctree.Surgery.placement) ->
              Alcotest.(check (float 0.0))
                "buffer sits at the node" 0.0 p.Rctree.Surgery.dist;
              (p.Rctree.Surgery.node, p.Rctree.Surgery.buffer.Tech.Buffer.name))
            r.Bufins.Dp.placements
        in
        List.iter
          (fun (pname, pruning) ->
            (match
               (Bufins.Dp.run ~pruning ~noise:false ~mode:Bufins.Dp.Single ~lib seg)
                 .Bufins.Dp.best
             with
            | None -> Alcotest.failf "%s: delay mode infeasible" pname
            | Some r ->
                Alcotest.(check (list (pair int string)))
                  (pname ^ " delay placements") expect (sol r);
                feq_rel (pname ^ " delay slack") ~eps:1e-12 expect_slack r.Bufins.Dp.slack);
            match Bufins.Alg3.run ~pruning ~lib seg with
            | None -> Alcotest.failf "%s: noise mode infeasible" pname
            | Some r ->
                Alcotest.(check (list (pair int string)))
                  (pname ^ " noise placements") expect (sol r);
                feq_rel (pname ^ " noise slack") ~eps:1e-12 expect_slack r.Bufins.Dp.slack)
          [ ("pred", `Predictive); ("sweep", `Sweep_only) ]);
    case "golden: power-off outcomes are pinned bit for bit, by_count included" (fun () ->
        (* The power-axis PR's hard invariant: with power mode off, the
           engine's whole observable outcome — every per-count slack to
           the last bit (hex float), every placement node, every buffer
           size, and the noise-mode solution — is frozen at the pre-power
           values, under both candidate engines. The five PR-1 regression
           instances plus the multi-type default-library net. *)
        let sol (r : Bufins.Dp.result) =
          String.concat ","
            (List.map
               (fun (p : Rctree.Surgery.placement) ->
                 Printf.sprintf "%d/%s" p.Rctree.Surgery.node
                   p.Rctree.Surgery.buffer.Tech.Buffer.name)
               r.Bufins.Dp.placements)
        in
        let line ~pruning ~lib seg =
          let o = Bufins.Dp.run ~pruning ~noise:false ~mode:(Bufins.Dp.Per_count 8) ~lib seg in
          let cells =
            Array.to_list
              (Array.mapi
                 (fun k r ->
                   match r with
                   | None -> Printf.sprintf "%d=-" k
                   | Some (r : Bufins.Dp.result) ->
                       Printf.sprintf "%d=%h:%s" k r.Bufins.Dp.slack (sol r))
                 o.Bufins.Dp.by_count)
          in
          let noise =
            match Bufins.Alg3.run ~pruning ~lib seg with
            | None -> "noise=-"
            | Some r -> Printf.sprintf "noise=%h:%s" r.Bufins.Dp.slack (sol r)
          in
          String.concat "|" (cells @ [ noise ])
        in
        let golden =
          [
            ( 0,
              "0=0x1.322ad2fa34deap-31:|1=0x1.919c3600acbc2p-31:1/fastlow|2=0x1.a2074ca85de8p-31:2/fastlow,1/fastlow|3=0x1.a3d06eba64f7p-31:4/fastlow,2/fastlow,1/fastlow|4=-|5=-|6=-|7=-|8=-|noise=0x1.a3c25bd930d24p-31:4/fastlow,2/slowhigh,1/fastlow" );
            ( 1,
              "0=0x1.a7c36ea11cf2cp-32:|1=0x1.4d0a251809b92p-31:2/fastlow|2=0x1.67b017dbad60fp-31:2/fastlow,1/fastlow|3=0x1.6fe9516cda99bp-31:3/fastlow,2/fastlow,1/fastlow|4=-|5=-|6=-|7=-|8=-|noise=0x1.621ba4e9c1cfap-31:3/fastlow,2/fastlow,1/slowhigh" );
            ( 2,
              "0=0x1.e03c772ed8d3ap-31:|1=0x1.0db8a5a5d78bdp-30:1/fastlow|2=0x1.10d953397aa72p-30:2/fastlow,1/fastlow|3=-|4=-|5=-|6=-|7=-|8=-|noise=0x1.09ff893048994p-30:2/fastlow,1/slowhigh" );
            ( 3,
              "0=0x1.ad5e926f81de8p-34:|1=0x1.6b62ba3da003ep-33:6/fastlow|2=0x1.ec683fbc902b1p-33:6/fastlow,4/fastlow|3=0x1.18a3b4ea2b6dep-32:6/fastlow,4/fastlow,1/fastlow|4=-|5=-|6=-|7=-|8=-|noise=0x1.facb2f0021bd6p-33:6/slowhigh,4/slowhigh,1/slowhigh" );
            ( 4,
              "0=0x1.1334c7f2720b6p-31:|1=0x1.5abd3bd9f0fbep-31:1/fastlow|2=0x1.6409045a5d27bp-31:2/fastlow,1/fastlow|3=0x1.65893b17970f2p-31:3/fastlow,2/fastlow,1/fastlow|4=-|5=-|6=-|7=-|8=-|noise=0x1.5840693ad19e2p-31:3/fastlow,2/fastlow,1/slowhigh" );
          ]
        in
        let multi_golden =
          "0=-0x1.0ea47786a8cd7p-29:|1=-0x1.8bba1ff79b504p-32:24/bufx32|2=0x1.a81d2cd2267a4p-33:12/bufx32,26/bufx32|3=0x1.419fa8d41c112p-32:6/invx16,12/invx16,26/bufx32|4=0x1.9ccb54bf9fdbep-32:6/invx16,12/invx16,20/bufx32,26/bufx32|5=0x1.e983ba0a92b22p-32:6/invx16,12/invx16,20/invx16,26/invx16,39/bufx32|6=0x1.0d025bfdd88a5p-31:6/invx16,12/invx16,21/invx16,26/bufx32,27/invx1,40/invx16|7=0x1.1d5f70d875369p-31:49/bufx1,6/invx16,12/invx16,21/invx16,26/bufx32,27/invx1,40/invx16|8=0x1.2bf00fb892979p-31:49/bufx1,6/invx16,12/invx16,20/invx16,25/invx16,27/bufx1,37/invx16,41/invx16|noise=0x1.461ce24fc0ff9p-31:50/invx16,49/invx1,47/bufx1,4/invx16,8/invx16,12/invx16,14/bufx8,13/invx1,18/invx16,22/invx16,26/invx16,32/invx16,30/invx16,28/invx16,27/invx1,37/invx16,41/invx16"
        in
        List.iter
          (fun (pname, pruning) ->
            List.iter
              (fun (seed, expect) ->
                let rng = Util.Rng.create seed in
                let seg = Rctree.Segment.refine (lowmargin_tree rng) ~max_len:1.5e-3 in
                Alcotest.(check string)
                  (Printf.sprintf "seed %d %s outcome" seed pname)
                  expect
                  (line ~pruning ~lib:mixed_lib seg))
              golden;
            let tree =
              Fixtures.random_net (Util.Rng.create 42) process ~max_sinks:5 ~max_len:5e-3
            in
            let seg = Rctree.Segment.refine tree ~max_len:500e-6 in
            Alcotest.(check string)
              (pname ^ " multi-type outcome")
              multi_golden (line ~pruning ~lib seg))
          [ ("pred", `Predictive); ("sweep", `Sweep_only) ]);
    case "finer segmenting can rescue infeasibility" (fun () ->
        let t = Fixtures.two_pin process ~len:12e-3 in
        let coarse = Rctree.Segment.refine t ~max_len:6e-3 in
        let fine = Rctree.Segment.refine t ~max_len:1e-3 in
        (* 6 mm spans violate 0.8 V no matter what drives them *)
        Alcotest.(check bool) "coarse fails" true (Bufins.Alg3.run ~lib coarse = None);
        Alcotest.(check bool) "fine succeeds" true (Bufins.Alg3.run ~lib fine <> None));
  ]

let suites = [ ("bufins.alg3", tests) ]
