open Helpers
module N = Circuit.Netlist
module W = Circuit.Waveform

(* series RLC driven by a step, output across the capacitor *)
let rlc_step ~r ~l ~c =
  let nl = N.create () in
  let src = N.fresh nl and mid = N.fresh nl and out = N.fresh nl in
  N.resistor nl src mid r;
  N.inductor nl mid out l;
  N.capacitor nl out N.ground c;
  N.drive nl src (W.ramp ~t0:0.0 ~t_rise:1e-13 ~v0:0.0 ~v1:1.0);
  (nl, out)

(* analytic step response of an overdamped series RLC *)
let overdamped_response ~r ~l ~c t =
  let alpha = r /. (2.0 *. l) in
  let w0sq = 1.0 /. (l *. c) in
  let disc = sqrt ((alpha *. alpha) -. w0sq) in
  let s1 = -.alpha +. disc and s2 = -.alpha -. disc in
  1.0 +. ((s2 *. exp (s1 *. t)) -. (s1 *. exp (s2 *. t))) /. (s1 -. s2)

let tests =
  [
    case "overdamped rlc matches the analytic response" (fun () ->
        (* r = 400, l = 1 nH, c = 100 fF: alpha = 2e11 > w0 = 1e11 *)
        let r = 400.0 and l = 1e-9 and c = 100e-15 in
        let nl, out = rlc_step ~r ~l ~c in
        let res =
          Circuit.Transient.simulate ~record:true nl ~dt:2e-13 ~t_end:3e-10 ~probes:[ out ]
        in
        let tr = match res.Circuit.Transient.traces with Some t -> t.(0) | None -> assert false in
        Array.iteri
          (fun k t ->
            if t > 1e-12 then
              feq ~eps:0.01 (Printf.sprintf "v(%g)" t) (overdamped_response ~r ~l ~c t) tr.(k))
          res.Circuit.Transient.times);
    case "underdamped rlc rings past the supply" (fun () ->
        (* r = 20: alpha = 1e10 << w0 = 1e11: overshoot expected *)
        let nl, out = rlc_step ~r:20.0 ~l:1e-9 ~c:100e-15 in
        let res = Circuit.Transient.simulate nl ~dt:2e-13 ~t_end:2e-9 ~probes:[ out ] in
        Alcotest.(check bool) "overshoot" true (res.Circuit.Transient.peaks.(0) > 1.2));
    case "inductor is a dc short" (fun () ->
        let nl = N.create () in
        let src = N.fresh nl and mid = N.fresh nl and out = N.fresh nl in
        N.resistor nl src mid 1000.0;
        N.inductor nl mid out 1e-9;
        N.resistor nl out N.ground 1000.0;
        N.drive nl src (W.dc 2.0);
        let res = Circuit.Transient.simulate nl ~dt:1e-12 ~t_end:2e-11 ~probes:[ mid; out ] in
        feq ~eps:1e-6 "divider unaffected" 1.0 res.Circuit.Transient.finals.(1);
        feq ~eps:1e-6 "no drop across L" 1.0 res.Circuit.Transient.finals.(0));
    case "bad inductance rejected" (fun () ->
        let nl = N.create () in
        let a = N.fresh nl in
        Alcotest.(check bool) "raises" true
          (match N.inductor nl a N.ground 0.0 with exception Invalid_argument _ -> true | _ -> false));
    case "devgan metric bounds overdamped rlc coupling" (fun () ->
        (* the victim line of Fig. 6 with series inductance small enough to
           stay overdamped: the paper claims the metric still bounds the
           peak (Section II-B) *)
        let len = 3e-3 in
        let tree = Fixtures.two_pin ~r_drv:100.0 process ~len in
        let metric = match Noise.leaf_noise tree with [ (_, n, _) ] -> n | _ -> assert false in
        let w = Rctree.Tree.wire_to tree 1 in
        let slope = Tech.Process.slope process in
        let n_seg = 8 in
        let fn = float_of_int n_seg in
        let nl = N.create () in
        let agg = N.fresh nl in
        N.drive nl agg
          (W.ramp ~t0:0.0 ~t_rise:process.Tech.Process.t_rise ~v0:0.0 ~v1:process.Tech.Process.vdd);
        let root = N.fresh nl in
        N.resistor nl root N.ground 100.0;
        let c_couple = w.Rctree.Tree.cur /. slope /. fn in
        let c_ground = (w.Rctree.Tree.cap -. (w.Rctree.Tree.cur /. slope)) /. fn in
        (* 0.05 nH per 375 um segment: heavily overdamped with 30 ohm/seg *)
        let seg_l = 0.05e-9 in
        let last =
          List.fold_left
            (fun prev _ ->
              let mid = N.fresh nl and next = N.fresh nl in
              N.resistor nl prev mid (w.Rctree.Tree.res /. fn);
              N.inductor nl mid next seg_l;
              N.capacitor nl next N.ground c_ground;
              N.capacitor nl next agg c_couple;
              next)
            root
            (List.init n_seg (fun i -> i))
        in
        N.capacitor nl last N.ground 20e-15;
        let res = Circuit.Transient.simulate nl ~dt:2e-12 ~t_end:2e-9 ~probes:[ last ] in
        let peak = res.Circuit.Transient.peaks.(0) in
        Alcotest.(check bool) "bounded" true (peak <= metric +. 1e-3);
        Alcotest.(check bool) "noise present" true (peak > 0.1));
    case "ac moments see through inductors" (fun () ->
        (* H(s) of R-L-C lowpass: h0 = 1, h1 = -RC, h2 = (RC)^2 - LC *)
        let r = 300.0 and l = 2e-9 and c = 50e-15 in
        let nl = N.create () in
        let src = N.fresh nl and mid = N.fresh nl and out = N.fresh nl in
        N.resistor nl src mid r;
        N.inductor nl mid out l;
        N.capacitor nl out N.ground c;
        N.drive nl src (W.dc 1.0);
        match Circuit.Acmoments.transfer_moments nl ~order:2 ~probes:[ out ] with
        | [ m ] ->
            feq_rel "h0" ~eps:1e-9 1.0 m.Circuit.Acmoments.moments.(0).(0);
            feq_rel "h1" ~eps:1e-9 (-.(r *. c)) m.Circuit.Acmoments.moments.(1).(0);
            feq_rel "h2" ~eps:1e-9 (((r *. c) ** 2.0) -. (l *. c)) m.Circuit.Acmoments.moments.(2).(0)
        | _ -> Alcotest.fail "expected one source");
  ]


let deck_tests =
  [
    case "inductive decks stay bounded when overdamped" (fun () ->
        let tree = Fixtures.two_pin ~r_drv:100.0 process ~len:3e-3 in
        let metric = match Noise.leaf_noise tree with [ (_, n, _) ] -> n | _ -> assert false in
        let base = Noisesim.Deck.default_config process in
        (* 0.4 uH/m: realistic on-chip inductance, heavily overdamped *)
        let cfg = { base with Noisesim.Deck.l_per_m = 0.4e-6 } in
        let rc = Noisesim.Verify.net ~config:base process tree in
        let rlc = Noisesim.Verify.net ~config:cfg process tree in
        let peak r = (List.hd r.Noisesim.Verify.leaves).Noisesim.Verify.peak in
        Alcotest.(check bool) "metric bounds rlc" true (peak rlc <= metric +. 1e-3);
        feq_rel "close to the rc peak" ~eps:0.05 (peak rc) (peak rlc));
  ]

let suites = [ ("circuit.rlc", tests); ("noisesim.rlc", deck_tests) ]
