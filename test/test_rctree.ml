open Helpers
module T = Rctree.Tree
module B = Rctree.Builder

let tree_gen ~max_sinks ~max_len =
  QCheck2.Gen.(
    map
      (fun seed ->
        let rng = Util.Rng.create seed in
        Fixtures.random_net rng process ~max_sinks ~max_len)
      small_int)

let wire len = T.wire_of_length process len

let builder_tests =
  [
    case "minimal two-pin tree" (fun () ->
        let t = Fixtures.two_pin process ~len:1e-3 in
        Alcotest.(check int) "nodes" 2 (T.node_count t);
        Alcotest.(check (result unit string)) "valid" (Ok ()) (T.validate t);
        Alcotest.(check int) "sinks" 1 (List.length (T.sinks t));
        Alcotest.(check int) "root" 0 (T.root t));
    case "source must be first and unique" (fun () ->
        let b = B.create () in
        ignore (B.add_source b ~r_drv:100.0 ~d_drv:0.0);
        Alcotest.(check bool) "double source" true
          (match B.add_source b ~r_drv:1.0 ~d_drv:0.0 with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "finish without source fails" (fun () ->
        let b = B.create () in
        Alcotest.(check bool) "raises" true
          (match B.finish b with exception Invalid_argument _ -> true | _ -> false));
    case "unknown parent rejected" (fun () ->
        let b = B.create () in
        ignore (B.add_source b ~r_drv:100.0 ~d_drv:0.0);
        Alcotest.(check bool) "raises" true
          (match B.add_internal b ~parent:7 ~wire:(wire 1e-3) () with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "high fanout binarized with infeasible dummies" (fun () ->
        let b = B.create () in
        let so = B.add_source b ~r_drv:100.0 ~d_drv:0.0 in
        let hub = B.add_internal b ~parent:so ~wire:(wire 1e-3) () in
        for k = 0 to 3 do
          ignore
            (B.add_sink b ~parent:hub ~wire:(wire 1e-3) ~name:(Printf.sprintf "s%d" k)
               ~c_sink:1e-15 ~rat:1e-9 ~nm:0.8)
        done;
        let t = B.finish b in
        Alcotest.(check (result unit string)) "valid" (Ok ()) (T.validate t);
        Alcotest.(check int) "sinks kept" 4 (List.length (T.sinks t));
        List.iter
          (fun v -> Alcotest.(check bool) "fanout <= 2" true (List.length (T.children t v) <= 2))
          (T.postorder t);
        (* two dummies needed to spread 4 children *)
        Alcotest.(check int) "node count" 8 (T.node_count t);
        let dummies = List.filter (fun v -> not (T.feasible t v)) (T.internals t) in
        Alcotest.(check int) "dummies infeasible" 2 (List.length dummies);
        List.iter
          (fun v -> feq "zero wire" 0.0 (T.wire_to t v).T.length)
          dummies);
    qcase ~count:60 "random trees validate" (tree_gen ~max_sinks:8 ~max_len:2e-3) (fun t ->
        T.validate t = Ok ());
    qcase ~count:60 "postorder is child-first" (tree_gen ~max_sinks:8 ~max_len:2e-3) (fun t ->
        let pos = Array.make (T.node_count t) 0 in
        List.iteri (fun i v -> pos.(v) <- i) (T.postorder t);
        List.for_all
          (fun v -> List.for_all (fun c -> pos.(c) < pos.(v)) (T.children t v))
          (T.postorder t));
    qcase ~count:60 "path_up reaches root" (tree_gen ~max_sinks:6 ~max_len:2e-3) (fun t ->
        List.for_all
          (fun s ->
            let p = T.path_up t s in
            List.hd p = s && List.nth p (List.length p - 1) = T.root t)
          (T.sinks t));
  ]

let stage_tests =
  [
    case "stages split at buffers" (fun () ->
        let t = Fixtures.two_pin process ~len:4e-3 in
        let buf = Tech.Lib.min_resistance lib in
        let t =
          Rctree.Surgery.apply t [ { Rctree.Surgery.node = 1; dist = 2e-3; buffer = buf } ]
        in
        Alcotest.(check int) "two gates" 2 (List.length (T.gates t));
        let root_stage = T.stage_members t (T.root t) in
        Alcotest.(check int) "root stage has one wire" 1 (List.length root_stage);
        let b = List.hd (List.filter (fun g -> g <> T.root t) (T.gates t)) in
        Alcotest.(check bool) "buffer stage ends at sink" true
          (List.for_all (fun v -> T.is_stage_leaf t v) (T.stage_leaves t b)));
    case "zero length wires permitted" (fun () ->
        let b = B.create () in
        let so = B.add_source b ~r_drv:100.0 ~d_drv:0.0 in
        let v = B.add_internal b ~parent:so ~wire:T.zero_wire () in
        ignore (B.add_sink b ~parent:v ~wire:(wire 1e-3) ~name:"s" ~c_sink:1e-15 ~rat:1e-9 ~nm:0.8);
        Alcotest.(check (result unit string)) "valid" (Ok ()) (T.validate (B.finish b)));
    case "wire_of_length uses process" (fun () ->
        let w = wire 1e-3 in
        feq_rel "res" ~eps:1e-12 80.0 w.T.res;
        feq_rel "cap" ~eps:1e-12 2e-13 w.T.cap;
        feq_rel "cur" ~eps:1e-12 (Tech.Process.i_per_m process *. 1e-3) w.T.cur);
    case "scale_wire is linear" (fun () ->
        let w = wire 2e-3 in
        let h = T.scale_wire w 0.5 in
        feq_rel "len" ~eps:1e-12 (w.T.length /. 2.0) h.T.length;
        feq_rel "res" ~eps:1e-12 (w.T.res /. 2.0) h.T.res;
        feq_rel "cap" ~eps:1e-12 (w.T.cap /. 2.0) h.T.cap;
        feq_rel "cur" ~eps:1e-12 (w.T.cur /. 2.0) h.T.cur);
  ]

let segment_tests =
  [
    case "pieces_for" (fun () ->
        Alcotest.(check int) "exact" 2 (Rctree.Segment.pieces_for 1.0 ~max_len:0.5);
        Alcotest.(check int) "round up" 3 (Rctree.Segment.pieces_for 1.01 ~max_len:0.5);
        Alcotest.(check int) "short" 1 (Rctree.Segment.pieces_for 0.3 ~max_len:0.5);
        Alcotest.(check int) "zero" 1 (Rctree.Segment.pieces_for 0.0 ~max_len:0.5));
    qcase ~count:40 "refine preserves totals" (tree_gen ~max_sinks:6 ~max_len:3e-3) (fun t ->
        let s = Rctree.Segment.refine t ~max_len:400e-6 in
        T.validate s = Ok ()
        && Util.Fx.approx ~rel:1e-9 (T.total_wirelength t) (T.total_wirelength s)
        && Util.Fx.approx ~rel:1e-9 (T.total_wire_cap t) (T.total_wire_cap s)
        && List.length (T.sinks t) = List.length (T.sinks s));
    qcase ~count:40 "refine bounds wire lengths" (tree_gen ~max_sinks:6 ~max_len:3e-3) (fun t ->
        let s = Rctree.Segment.refine t ~max_len:400e-6 in
        List.for_all
          (fun v -> v = T.root s || (T.wire_to s v).T.length <= 400e-6 +. 1e-12)
          (T.postorder s));
    case "refine adds feasible nodes" (fun () ->
        let t = Fixtures.two_pin process ~len:4e-3 in
        let s = Rctree.Segment.refine t ~max_len:1e-3 in
        Alcotest.(check int) "internal nodes" 3 (List.length (T.internals s));
        List.iter
          (fun v -> Alcotest.(check bool) "feasible" true (T.feasible s v))
          (T.internals s));
    case "refine_by sizes pieces per wire" (fun () ->
        let b = Rctree.Builder.create () in
        let so = Rctree.Builder.add_source b ~r_drv:100.0 ~d_drv:0.0 in
        let mid = Rctree.Builder.add_internal b ~parent:so ~wire:(wire 2e-3) () in
        ignore
          (Rctree.Builder.add_sink b ~parent:mid ~wire:(wire 2e-3) ~name:"s" ~c_sink:1e-15
             ~rat:1e-9 ~nm:0.8);
        let t = Rctree.Builder.finish b in
        (* first wire split in half, second in quarters *)
        let s =
          Rctree.Segment.refine_by t (fun v _ -> if v = 1 then 1e-3 else 0.5e-3)
        in
        Alcotest.(check (result unit string)) "valid" (Ok ()) (T.validate s);
        Alcotest.(check int) "2 + 4 pieces -> 5 internal nodes" 5
          (List.length (T.internals s));
        feq_rel "length preserved" ~eps:1e-9 4e-3 (T.total_wirelength s));
    case "noise-driven segmenting spends nodes on coupled wires" (fun () ->
        let t = Fixtures.two_pin process ~len:8e-3 in
        let lightly =
          Fixtures.two_pin { process with Tech.Process.lambda = 0.1 } ~len:8e-3
        in
        let sc = Bufins.Segmenting.noise_driven ~lib t in
        let sq = Bufins.Segmenting.noise_driven ~lib lightly in
        Alcotest.(check bool) "heavier coupling, denser candidates" true
          (List.length (T.internals sc) > List.length (T.internals sq));
        (* and the result is still optimizable to a clean solution *)
        match Bufins.Alg3.run ~lib sc with
        | Some r ->
            Alcotest.(check bool) "clean" true
              (Bufins.Eval.noise_clean (Bufins.Eval.apply sc r.Bufins.Dp.placements))
        | None -> Alcotest.fail "infeasible");
    case "bad max_len rejected" (fun () ->
        let t = Fixtures.two_pin process ~len:1e-3 in
        Alcotest.(check bool) "raises" true
          (match Rctree.Segment.refine t ~max_len:0.0 with
          | exception Invalid_argument _ -> true
          | _ -> false));
  ]

let buf = Tech.Lib.min_resistance lib

let surgery_tests =
  [
    case "dist zero converts internal node" (fun () ->
        let t = Rctree.Segment.refine (Fixtures.two_pin process ~len:2e-3) ~max_len:1e-3 in
        let v = List.hd (T.internals t) in
        let t' = Rctree.Surgery.apply t [ { Rctree.Surgery.node = v; dist = 0.0; buffer = buf } ] in
        Alcotest.(check int) "one buffer" 1 (T.buffer_count t');
        Alcotest.(check int) "same node count" (T.node_count t) (T.node_count t'));
    case "mid-wire split proportional" (fun () ->
        let t = Fixtures.two_pin process ~len:3e-3 in
        let t' = Rctree.Surgery.apply t [ { Rctree.Surgery.node = 1; dist = 1e-3; buffer = buf } ] in
        Alcotest.(check int) "nodes" 3 (T.node_count t');
        Alcotest.(check (result unit string)) "valid" (Ok ()) (T.validate t');
        feq_rel "total len kept" ~eps:1e-12 3e-3 (T.total_wirelength t');
        let b = List.hd (List.filter (fun g -> g <> T.root t') (T.gates t')) in
        feq_rel "upper piece" ~eps:1e-9 2e-3 (T.wire_to t' b).T.length);
    case "several buffers on one wire keep order" (fun () ->
        let t = Fixtures.two_pin process ~len:4e-3 in
        let t' =
          Rctree.Surgery.apply t
            [
              { Rctree.Surgery.node = 1; dist = 1e-3; buffer = buf };
              { Rctree.Surgery.node = 1; dist = 3e-3; buffer = buf };
            ]
        in
        Alcotest.(check int) "buffers" 2 (T.buffer_count t');
        feq_rel "length preserved" ~eps:1e-12 4e-3 (T.total_wirelength t');
        (* from root: 1 mm to the first buffer, 2 mm between buffers, 1 mm to sink *)
        let sink = List.hd (T.sinks t') in
        let lens = List.map (fun v -> if v = T.root t' then 0.0 else (T.wire_to t' v).T.length) (T.path_up t' sink) in
        Alcotest.(check int) "path nodes" 4 (List.length lens);
        feq_rel "sink wire" ~eps:1e-9 1e-3 (List.nth lens 0));
    case "dist at full length lands below parent" (fun () ->
        let t = Fixtures.two_pin process ~len:2e-3 in
        let t' = Rctree.Surgery.apply t [ { Rctree.Surgery.node = 1; dist = 2e-3; buffer = buf } ] in
        let b = List.hd (List.filter (fun g -> g <> T.root t') (T.gates t')) in
        feq "zero upper wire" 0.0 (T.wire_to t' b).T.length);
    case "errors rejected" (fun () ->
        let t = Fixtures.two_pin process ~len:2e-3 in
        let reject p =
          match Rctree.Surgery.apply t [ p ] with
          | exception Invalid_argument _ -> true
          | _ -> false
        in
        Alcotest.(check bool) "root" true (reject { Rctree.Surgery.node = 0; dist = 0.0; buffer = buf });
        Alcotest.(check bool) "too far" true (reject { Rctree.Surgery.node = 1; dist = 3e-3; buffer = buf });
        Alcotest.(check bool) "negative" true (reject { Rctree.Surgery.node = 1; dist = -1.0; buffer = buf });
        (* dist = 0 on a sink is legal: a zero-length split just above it *)
        let zero = Rctree.Surgery.apply t [ { Rctree.Surgery.node = 1; dist = 0.0; buffer = buf } ] in
        Alcotest.(check (result unit string)) "dist0 on sink ok" (Ok ()) (T.validate zero);
        Alcotest.(check int) "buffer added" 1 (T.buffer_count zero);
        Alcotest.(check bool) "duplicate" true
          (match
             Rctree.Surgery.apply t
               [
                 { Rctree.Surgery.node = 1; dist = 1e-3; buffer = buf };
                 { Rctree.Surgery.node = 1; dist = 1e-3; buffer = buf };
               ]
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "apply_traced reports provenance" (fun () ->
        let t = Rctree.Segment.refine (Fixtures.two_pin process ~len:4e-3) ~max_len:2e-3 in
        let mid = List.hd (T.internals t) in
        let sink = List.hd (T.sinks t) in
        let t', prov =
          Rctree.Surgery.apply_traced t
            [
              { Rctree.Surgery.node = mid; dist = 0.0; buffer = buf };
              { Rctree.Surgery.node = sink; dist = 1e-3; buffer = buf };
            ]
        in
        Alcotest.(check int) "one extra node" (T.node_count t + 1) (T.node_count t');
        let same = ref 0 and piece = ref 0 in
        Array.iter
          (function
            | Rctree.Surgery.Same _ -> incr same
            | Rctree.Surgery.Piece_of owner ->
                incr piece;
                Alcotest.(check int) "piece owner is the sink" sink owner)
          prov;
        Alcotest.(check int) "pieces" 1 !piece;
        Alcotest.(check int) "sames" (T.node_count t) !same);
    qcase ~count:40 "random applications stay valid" (tree_gen ~max_sinks:5 ~max_len:3e-3)
      (fun t ->
        (* place a buffer in the middle of every positive-length wire *)
        let placements =
          List.filter_map
            (fun v ->
              if v = T.root t then None
              else begin
                let w = T.wire_to t v in
                if w.T.length > 0.0 then
                  Some { Rctree.Surgery.node = v; dist = w.T.length /. 2.0; buffer = buf }
                else None
              end)
            (T.postorder t)
        in
        let t' = Rctree.Surgery.apply t placements in
        T.validate t' = Ok ()
        && T.buffer_count t' = List.length placements
        && Util.Fx.approx ~rel:1e-9 (T.total_wirelength t) (T.total_wirelength t'));
  ]

let dot_tests =
  [
    case "render mentions every node and edge" (fun () ->
        let t = Fixtures.balanced process ~levels:1 ~trunk_len:1e-3 in
        let s = Rctree.Dot.render t in
        List.iter
          (fun v ->
            let needle = Printf.sprintf "n%d [" v in
            Alcotest.(check bool) needle true
              (let re = ref false in
               String.iteri
                 (fun i _ ->
                   if i + String.length needle <= String.length s
                      && String.sub s i (String.length needle) = needle
                   then re := true)
                 s;
               !re))
          (T.postorder t);
        Alcotest.(check bool) "digraph" true (String.length s > 8 && String.sub s 0 7 = "digraph"));
    case "buffered nodes render as triangles" (fun () ->
        let t = Fixtures.two_pin process ~len:4e-3 in
        let t' = Rctree.Surgery.apply t [ { Rctree.Surgery.node = 1; dist = 2e-3; buffer = buf } ] in
        let s = Rctree.Dot.render t' in
        Alcotest.(check bool) "triangle" true
          (let rec find i =
             i + 8 <= String.length s && (String.sub s i 8 = "triangle" || find (i + 1))
           in
           find 0));
    case "deterministic output" (fun () ->
        let t = Fixtures.balanced process ~levels:2 ~trunk_len:1e-3 in
        Alcotest.(check string) "stable" (Rctree.Dot.render t) (Rctree.Dot.render t));
  ]

let suites =
  [
    ("rctree.builder", builder_tests);
    ("rctree.dot", dot_tests);
    ("rctree.stage", stage_tests);
    ("rctree.segment", segment_tests);
    ("rctree.surgery", surgery_tests);
  ]
