open Helpers
module P = Geometry.Point
module D = Sta.Design

let inv = Sta.Cell.find "inv_x4"

(* PI -> inv -> PO in a straight 2 mm line per net *)
let two_stage () =
  let pi =
    { D.pname = "in"; pat = P.make 0 0; arrival = 50e-12; r_pad = 100.0; d_pad = 30e-12 }
  in
  let po =
    { D.oname = "out"; oat = P.make 4_000_000 0; required = 2e-9; c_pad = 30e-15; po_nm = 0.8 }
  in
  let inst = { D.iname = "g0"; cell = inv; at = P.make 2_000_000 0 } in
  {
    D.instances = [| inst |];
    nets =
      [|
        { D.nname = "n0"; source = D.From_pi 0; sinks = [| D.To_inst (0, 0) |] };
        { D.nname = "n1"; source = D.From_inst 0; sinks = [| D.To_po 0 |] };
      |];
    pis = [| pi |];
    pos = [| po |];
  }

let expected_two_stage_arrival () =
  let len = 2e-3 in
  let rw = Tech.Process.wire_r process len and cw = Tech.Process.wire_c process len in
  let stage r_drv d c_sink = d +. (r_drv *. (cw +. c_sink)) +. (rw *. ((cw /. 2.0) +. c_sink)) in
  50e-12 +. stage 100.0 30e-12 inv.Sta.Cell.c_in
  +. stage inv.Sta.Cell.r_out inv.Sta.Cell.d_intr 30e-15

let design_gen =
  QCheck2.Gen.(
    map
      (fun seed ->
        Sta.Gen.random { Sta.Gen.default_config with Sta.Gen.gates = 40; pis = 6; seed })
      small_int)

let cell_tests =
  [
    case "library lookup" (fun () ->
        Alcotest.(check int) "nand2 inputs" 2 (Sta.Cell.find "nand2_x1").Sta.Cell.n_inputs;
        Alcotest.(check bool) "unknown raises" true
          (match Sta.Cell.find "nope" with exception Not_found -> true | _ -> false));
    case "dynamic cells have reduced margins" (fun () ->
        Alcotest.(check bool) "0.5 V" true ((Sta.Cell.find "dyn_and2").Sta.Cell.nm = 0.5));
    case "gate delay" (fun () ->
        let c = Sta.Cell.find "inv_x1" in
        feq_rel "linear" ~eps:1e-12
          (c.Sta.Cell.d_intr +. (c.Sta.Cell.r_out *. 10e-15))
          (Sta.Cell.output_load_delay c ~load:10e-15));
  ]

let design_tests =
  [
    case "two-stage design validates" (fun () ->
        Alcotest.(check (result unit string)) "ok" (Ok ()) (D.validate (two_stage ())));
    case "unconnected input detected" (fun () ->
        let d = two_stage () in
        let broken = { d with D.nets = [| d.D.nets.(1) |] } in
        Alcotest.(check bool) "error" true (D.validate broken <> Ok ()));
    case "doubly driven input detected" (fun () ->
        let d = two_stage () in
        let dup =
          {
            d with
            D.nets =
              Array.append d.D.nets
                [| { D.nname = "n2"; source = D.From_pi 0; sinks = [| D.To_inst (0, 0) |] } |];
          }
        in
        Alcotest.(check bool) "error" true (D.validate dup <> Ok ()));
    case "cycle detected" (fun () ->
        let a = { D.iname = "a"; cell = inv; at = P.make 0 0 } in
        let b = { D.iname = "b"; cell = inv; at = P.make 1000 0 } in
        let po = { D.oname = "o"; oat = P.make 2000 0; required = 1e-9; c_pad = 1e-15; po_nm = 0.8 } in
        let pi = { D.pname = "i"; pat = P.make 3000 0; arrival = 0.0; r_pad = 100.0; d_pad = 0.0 } in
        let d =
          {
            D.instances = [| a; b |];
            nets =
              [|
                { D.nname = "nab"; source = D.From_inst 0; sinks = [| D.To_inst (1, 0) |] };
                { D.nname = "nba"; source = D.From_inst 1; sinks = [| D.To_inst (0, 0); D.To_po 0 |] };
                { D.nname = "npi"; source = D.From_pi 0; sinks = [| D.To_po 0 |] };
              |];
            pis = [| pi |];
            pos = [| po |];
          }
        in
        (* note npi double-drives the PO too; either error is acceptable *)
        Alcotest.(check bool) "error" true (D.validate d <> Ok ()));
    qcase ~count:30 "random designs validate" design_gen (fun d -> D.validate d = Ok ());
    qcase ~count:30 "topological order is consistent" design_gen (fun d ->
        let pos_of = Hashtbl.create 64 in
        List.iteri (fun idx i -> Hashtbl.replace pos_of i idx) (D.topo_order d);
        Array.for_all
          (fun net ->
            match net.D.source with
            | D.From_pi _ -> true
            | D.From_inst src ->
                Array.for_all
                  (fun s ->
                    match s with
                    | D.To_inst (i, _) -> Hashtbl.find pos_of src < Hashtbl.find pos_of i
                    | D.To_po _ -> true)
                  net.D.sinks)
          d.D.nets);
  ]

let engine_tests =
  [
    case "two-stage arrival matches hand computation" (fun () ->
        let d = two_stage () in
        let t = Sta.Engine.analyze process d in
        let expected = expected_two_stage_arrival () in
        feq_rel "wns" ~eps:1e-9 (2e-9 -. expected) t.Sta.Engine.wns;
        match Sta.Engine.endpoint_slacks d t with
        | [ ("out", slack) ] -> feq_rel "endpoint" ~eps:1e-9 (2e-9 -. expected) slack
        | _ -> Alcotest.fail "unexpected endpoints");
    qcase ~count:20 "pin slacks never beat the wns" design_gen (fun d ->
        let t = Sta.Engine.analyze process d in
        Array.for_all
          (fun (nt : Sta.Engine.net_timing) ->
            Array.for_all2
              (fun (_, r) (_, a) -> r -. a >= t.Sta.Engine.wns -. 1e-12)
              nt.Sta.Engine.sink_required nt.Sta.Engine.sink_arrival)
          t.Sta.Engine.nets);
    qcase ~count:20 "tns is consistent with endpoint slacks" design_gen (fun d ->
        let t = Sta.Engine.analyze process d in
        let sum =
          List.fold_left
            (fun acc (_, s) -> if s < 0.0 then acc +. s else acc)
            0.0
            (Sta.Engine.endpoint_slacks d t)
        in
        Util.Fx.approx ~rel:1e-9 ~abs:1e-15 sum t.Sta.Engine.tns);
    case "supplying a buffered tree speeds a long net up" (fun () ->
        let d = two_stage () in
        let base = Sta.Engine.analyze process d in
        let tree = Sta.Engine.net_to_steiner d 1 |> Steiner.Build.tree_of_net process in
        let seg = Rctree.Segment.refine tree ~max_len:500e-6 in
        let opt = Bufins.Vangin.run ~lib seg in
        let buffered = Rctree.Surgery.apply seg opt.Bufins.Dp.placements in
        let t =
          Sta.Engine.analyze ~trees:(fun nid -> if nid = 1 then Some buffered else None) process d
        in
        Alcotest.(check bool) "wns improves" true (t.Sta.Engine.wns > base.Sta.Engine.wns);
        Alcotest.(check int) "buffers counted" opt.Bufins.Dp.count t.Sta.Engine.total_buffers);
  ]

let rat_tests =
  [
    case "net_to_steiner installs rats and margins" (fun () ->
        let d = two_stage () in
        let snet = Sta.Engine.net_to_steiner ~rats:[| 1.5e-9 |] d 1 in
        (match snet.Steiner.Net.pins with
        | [ pin ] ->
            feq_rel "rat" ~eps:1e-12 1.5e-9 pin.Steiner.Net.rat;
            feq "po margin" 0.8 pin.Steiner.Net.nm;
            feq_rel "pad cap" ~eps:1e-12 30e-15 pin.Steiner.Net.c_sink
        | _ -> Alcotest.fail "one pin expected");
        let snet0 = Sta.Engine.net_to_steiner d 0 in
        match snet0.Steiner.Net.pins with
        | [ pin ] ->
            feq_rel "cell input cap" ~eps:1e-12 inv.Sta.Cell.c_in pin.Steiner.Net.c_sink;
            feq "cell margin" inv.Sta.Cell.nm pin.Steiner.Net.nm
        | _ -> Alcotest.fail "one pin expected");
    case "flow rats make per-net timing consistent with sta" (fun () ->
        (* the slack the optimizer sees for a net equals the STA's
           worst pin slack on that net *)
        let d = Sta.Gen.random { Sta.Gen.default_config with Sta.Gen.gates = 30; seed = 9 } in
        let t = Sta.Engine.analyze process d in
        Array.iteri
          (fun nid (nt : Sta.Engine.net_timing) ->
            let rats =
              Array.map (fun (_, r) -> r -. nt.Sta.Engine.source_arrival) nt.Sta.Engine.sink_required
            in
            let snet = Sta.Engine.net_to_steiner ~rats d nid in
            let tree = Steiner.Build.tree_of_net process snet in
            let opt_slack = Elmore.slack tree in
            let sta_slack =
              Array.fold_left
                (fun acc ((_, r), (_, a)) -> Float.min acc (r -. a))
                infinity
                (Array.map2 (fun r a -> (r, a)) nt.Sta.Engine.sink_required nt.Sta.Engine.sink_arrival)
            in
            feq_rel (Printf.sprintf "net %d" nid) ~eps:1e-6 sta_slack opt_slack)
          t.Sta.Engine.nets);
  ]

let flow_tests =
  [
    case "flow clears noise and closes timing on the default design" (fun () ->
        let d = Sta.Gen.random Sta.Gen.default_config in
        let r = Sta.Flow.optimize process ~lib d in
        Alcotest.(check int) "no noisy nets" 0 r.Sta.Flow.after.Sta.Engine.noisy_nets;
        Alcotest.(check bool) "wns improves" true
          (r.Sta.Flow.after.Sta.Engine.wns > r.Sta.Flow.before.Sta.Engine.wns);
        feq "tns closed" 0.0 r.Sta.Flow.after.Sta.Engine.tns;
        Alcotest.(check bool) "buffers inserted" true (r.Sta.Flow.inserted_buffers > 0);
        Alcotest.(check bool) "no infeasible nets" true (r.Sta.Flow.infeasible_nets = 0));
    qcase ~count:8 "flow always removes every noise violation" design_gen (fun d ->
        let r = Sta.Flow.optimize process ~lib d in
        r.Sta.Flow.after.Sta.Engine.noisy_nets = 0
        && r.Sta.Flow.after.Sta.Engine.wns >= r.Sta.Flow.before.Sta.Engine.wns -. 1e-12);
    case "flow is deterministic" (fun () ->
        let d = Sta.Gen.random { Sta.Gen.default_config with Sta.Gen.gates = 40 } in
        let a = Sta.Flow.optimize process ~lib d and b = Sta.Flow.optimize process ~lib d in
        feq "same wns" a.Sta.Flow.after.Sta.Engine.wns b.Sta.Flow.after.Sta.Engine.wns;
        Alcotest.(check int) "same buffers" a.Sta.Flow.inserted_buffers b.Sta.Flow.inserted_buffers);
  ]


let sizing_tests =
  [
    case "upsize map" (fun () ->
        Alcotest.(check bool) "inv_x1 grows" true
          (Sta.Cell.upsize (Sta.Cell.find "inv_x1") = Some (Sta.Cell.find "inv_x4"));
        Alcotest.(check bool) "inv_x4 tops out" true (Sta.Cell.upsize (Sta.Cell.find "inv_x4") = None));
    case "sizing never worsens wns" (fun () ->
        let d = Sta.Gen.random { Sta.Gen.default_config with Sta.Gen.gates = 60; seed = 3 } in
        let before = (Sta.Engine.analyze process d).Sta.Engine.wns in
        let d', n = Sta.Sizing.run process d in
        let after = (Sta.Engine.analyze process d').Sta.Engine.wns in
        Alcotest.(check bool) "monotone" true (after >= before);
        Alcotest.(check bool) "did something" true (n >= 0));
    case "flow with sizing stays noise-clean and reports resizes" (fun () ->
        let d = Sta.Gen.random { Sta.Gen.default_config with Sta.Gen.gates = 60; seed = 3 } in
        let r = Sta.Flow.optimize ~sizing:true process ~lib d in
        Alcotest.(check int) "no noisy nets" 0 r.Sta.Flow.after.Sta.Engine.noisy_nets;
        Alcotest.(check bool) "improves" true
          (r.Sta.Flow.after.Sta.Engine.wns > r.Sta.Flow.before.Sta.Engine.wns));
  ]

let suites =
  [
    ("sta.cell", cell_tests);
    ("sta.design", design_tests);
    ("sta.engine", engine_tests);
    ("sta.rats", rat_tests);
    ("sta.flow", flow_tests);
    ("sta.sizing", sizing_tests);
  ]
