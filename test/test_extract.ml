open Helpers
module P = Geometry.Point
module T = Rctree.Tree

let cfg = Extract.default_config process

let bus ?bits ?pitch ?len () =
  List.map (Extract.route process) (Workload.parallel_bus ?bits ?pitch ?len ())

let spans_of routed aggressors = Extract.victim_spans cfg ~victim:routed ~aggressors

let total_lambda_length spans =
  List.fold_left
    (fun acc (_, ss) ->
      acc
      +. List.fold_left (fun a (s : Coupling.span) -> a +. (s.Coupling.lambda *. (s.Coupling.far -. s.Coupling.near))) 0.0 ss)
    0.0 spans

let tests =
  [
    case "lambda falls off with spacing (eq. 17)" (fun () ->
        feq "at pitch" 0.35 (Extract.lambda_of_spacing cfg 400);
        feq_rel "at 2x" ~eps:1e-9 0.175 (Extract.lambda_of_spacing cfg 800);
        feq "beyond window" 0.0 (Extract.lambda_of_spacing cfg 1300);
        feq "degenerate" 0.0 (Extract.lambda_of_spacing cfg 0);
        feq "closer than pitch is capped" 0.35 (Extract.lambda_of_spacing cfg 200));
    case "two parallel wires couple over their full run" (fun () ->
        match bus ~bits:2 ~len:2_000_000 () with
        | [ a; b ] -> (
            match spans_of a [ b ] with
            | [ (v, [ span ]) ] ->
                Alcotest.(check bool) "non-root" true (v <> T.root a.Extract.tree);
                feq "near" 0.0 span.Coupling.near;
                feq_rel "far = full wire" ~eps:1e-9 2e-3 span.Coupling.far;
                feq "lambda at pitch" 0.35 span.Coupling.lambda
            | _ -> Alcotest.fail "expected one span on one wire")
        | _ -> Alcotest.fail "expected two nets");
    case "no self or far coupling" (fun () ->
        match bus ~bits:3 ~pitch:5_000 () with
        | [ a; _; c ] ->
            (* 10 um apart: outside the window *)
            Alcotest.(check int) "none" 0 (List.length (spans_of a [ c ]))
        | _ -> Alcotest.fail "expected three nets");
    case "middle bit of a bus sees both neighbours, shielded beyond" (fun () ->
        let routed = bus ~bits:5 () in
        let victim = List.nth routed 2 in
        let aggressors = List.filteri (fun i _ -> i <> 2) routed in
        match spans_of victim aggressors with
        | [ (_, ss) ] ->
            Alcotest.(check int) "exactly the two nearest couple" 2 (List.length ss);
            List.iter (fun (s : Coupling.span) -> feq "lambda" 0.35 s.Coupling.lambda) ss
        | _ -> Alcotest.fail "expected spans on the single wire");
    case "edge bit sees one neighbour" (fun () ->
        let routed = bus ~bits:4 () in
        let victim = List.hd routed in
        match spans_of victim (List.tl routed) with
        | [ (_, ss) ] -> Alcotest.(check int) "one side only" 1 (List.length ss)
        | _ -> Alcotest.fail "expected spans");
    case "annotate matches estimation mode for a squeezed victim" (fun () ->
        (* both nearest neighbours at pitch: extracted coupling equals the
           estimation-mode lambda = 0.7 corner, so the metrics agree *)
        let routed = bus ~bits:3 ~len:4_000_000 () in
        let victim = List.nth routed 1 in
        let ann =
          Extract.annotate cfg ~victim ~aggressors:[ List.nth routed 0; List.nth routed 2 ]
        in
        let est =
          Steiner.Build.tree_of_net process (Workload.parallel_bus ~bits:1 ~len:4_000_000 () |> List.hd)
        in
        let extracted_noise =
          match Noise.leaf_noise (Coupling.tree ann) with (_, n, _) :: _ -> n | [] -> nan
        in
        let est_noise = match Noise.leaf_noise est with (_, n, _) :: _ -> n | [] -> nan in
        feq_rel "same corner" ~eps:1e-6 est_noise extracted_noise);
    case "staggered wires couple only over the overlap" (fun () ->
        let mk name x0 x1 y =
          Extract.route process
            (Steiner.Net.make ~name ~source:(P.make x0 y) ~r_drv:100.0 ~d_drv:0.0
               ~pins:
                 [
                   { Steiner.Net.pname = name ^ "s"; at = P.make x1 y; c_sink = 1e-15; rat = 1e-9; nm = 0.8 };
                 ])
        in
        let v = mk "v" 0 3_000_000 0 in
        let a = mk "a" 1_000_000 5_000_000 400 in
        (match spans_of v [ a ] with
        | [ (_, [ s ]) ] ->
            (* overlap x in [1 mm, 3 mm]; distance from the sink (x = 3 mm) *)
            feq_rel "near" ~eps:1e-9 0.0 s.Coupling.near;
            feq_rel "far" ~eps:1e-9 2e-3 s.Coupling.far
        | _ -> Alcotest.fail "expected one span");
        (* and the symmetric view from the aggressor's side *)
        match spans_of a [ v ] with
        | [ (_, [ s ]) ] -> feq_rel "length" ~eps:1e-9 2e-3 (s.Coupling.far -. s.Coupling.near)
        | _ -> Alcotest.fail "expected one span");
    case "orthogonal wires do not couple" (fun () ->
        let v =
          Extract.route process
            (Steiner.Net.make ~name:"v" ~source:(P.make 0 0) ~r_drv:100.0 ~d_drv:0.0
               ~pins:[ { Steiner.Net.pname = "vs"; at = P.make 2_000_000 0; c_sink = 1e-15; rat = 1e-9; nm = 0.8 } ])
        in
        let a =
          Extract.route process
            (Steiner.Net.make ~name:"a" ~source:(P.make 1_000_000 400) ~r_drv:100.0 ~d_drv:0.0
               ~pins:
                 [ { Steiner.Net.pname = "as"; at = P.make 1_000_000 2_000_000; c_sink = 1e-15; rat = 1e-9; nm = 0.8 } ])
        in
        Alcotest.(check int) "none" 0 (List.length (spans_of v [ a ])));
    case "normalization keeps total lambda below one" (fun () ->
        (* crowd four aggressors onto both sides at sub-pitch spacing *)
        let mk name y =
          Extract.route process
            (Steiner.Net.make ~name ~source:(P.make 0 y) ~r_drv:100.0 ~d_drv:0.0
               ~pins:[ { Steiner.Net.pname = name ^ "s"; at = P.make 1_000_000 y; c_sink = 1e-15; rat = 1e-9; nm = 0.8 } ])
        in
        let v = mk "v" 0 in
        let aggs = [ mk "a" 100; mk "b" (-100) ] in
        match spans_of v aggs with
        | [ (_, ss) ] ->
            let sum = List.fold_left (fun a (s : Coupling.span) -> a +. s.Coupling.lambda) 0.0 ss in
            Alcotest.(check bool) "normalized" true (sum <= 0.95 +. 1e-9)
        | _ -> Alcotest.fail "expected spans");
    case "extraction feeds buffopt end to end" (fun () ->
        let routed = bus ~bits:3 ~len:9_000_000 () in
        let victim = List.nth routed 1 in
        let ann =
          Extract.annotate cfg ~victim ~aggressors:[ List.nth routed 0; List.nth routed 2 ]
        in
        let tree = Coupling.tree ann in
        Alcotest.(check bool) "violates before" true (Noise.violations tree <> []);
        (* Algorithm 2 places continuously on the annotated tree itself,
           so the coupling densities can follow the solution *)
        let r = Bufins.Alg2.run ~lib tree in
        let ann' = Coupling.buffered ann r.Bufins.Alg2.placements in
        Alcotest.(check bool) "clean after" true
          (Noise.violations (Coupling.tree ann') = []);
        (* verify with the multi-aggressor transient decks *)
        let v =
          Noisesim.Verify.net ~density:(Coupling.density ann') process (Coupling.tree ann')
        in
        Alcotest.(check int) "sim clean" 0 v.Noisesim.Verify.sim_violations;
        Alcotest.(check bool) "bound holds" true v.Noisesim.Verify.bound_ok);
    case "total coupled exposure scales with bus length" (fun () ->
        let short = bus ~bits:2 ~len:1_000_000 () in
        let long = bus ~bits:2 ~len:4_000_000 () in
        let expo nets = total_lambda_length (spans_of (List.hd nets) (List.tl nets)) in
        feq_rel "4x" ~eps:1e-6 (4.0 *. expo short) (expo long));
  ]

let suites = [ ("extract", tests) ]
