open Helpers

let rng_tests =
  [
    case "same seed, same stream" (fun () ->
        let a = Util.Rng.create 42 and b = Util.Rng.create 42 in
        for _ = 1 to 100 do
          Alcotest.(check int64) "bits" (Util.Rng.bits64 a) (Util.Rng.bits64 b)
        done);
    case "different seeds differ" (fun () ->
        let a = Util.Rng.create 1 and b = Util.Rng.create 2 in
        Alcotest.(check bool) "differ" true (Util.Rng.bits64 a <> Util.Rng.bits64 b));
    case "copy is independent" (fun () ->
        let a = Util.Rng.create 7 in
        let b = Util.Rng.copy a in
        let x = Util.Rng.bits64 a in
        Alcotest.(check int64) "copy replays" x (Util.Rng.bits64 b));
    case "split decorrelates" (fun () ->
        let a = Util.Rng.create 7 in
        let b = Util.Rng.split a in
        Alcotest.(check bool) "streams differ" true (Util.Rng.bits64 a <> Util.Rng.bits64 b));
    case "split streams share no values" (fun () ->
        (* independence, not just a differing first draw: the child's
           stream and the parent's continued stream never collide over a
           window (2^-56-ish collision odds for honest 64-bit streams) *)
        let parent = Util.Rng.create 99 in
        let child = Util.Rng.split parent in
        let draw r = List.init 256 (fun _ -> Util.Rng.bits64 r) in
        let from_child = draw child and from_parent = draw parent in
        List.iter
          (fun v ->
            Alcotest.(check bool) "value reappears in parent stream" false
              (List.mem v from_parent))
          from_child);
    case "copy replays the source byte for byte" (fun () ->
        (* not just the next draw: after burning part of the stream, a
           copy must track the original over a long window and across
           every derived draw kind *)
        let a = Util.Rng.create 13 in
        for _ = 1 to 10 do
          ignore (Util.Rng.bits64 a)
        done;
        let b = Util.Rng.copy a in
        for i = 1 to 100 do
          Alcotest.(check int64)
            (Printf.sprintf "draw %d" i)
            (Util.Rng.bits64 a) (Util.Rng.bits64 b)
        done;
        Alcotest.(check int) "int draw" (Util.Rng.int a 1000) (Util.Rng.int b 1000);
        Alcotest.(check (float 0.0)) "float draw" (Util.Rng.float a 1.0) (Util.Rng.float b 1.0);
        Alcotest.(check bool) "bool draw" (Util.Rng.bool a) (Util.Rng.bool b));
    qcase "int in range" QCheck2.Gen.(pair small_int (int_range 1 1000)) (fun (seed, n) ->
        let r = Util.Rng.create seed in
        let v = Util.Rng.int r n in
        v >= 0 && v < n);
    qcase "float in range" QCheck2.Gen.(pair small_int (float_range 1e-6 1e6)) (fun (seed, x) ->
        let r = Util.Rng.create seed in
        let v = Util.Rng.float r x in
        v >= 0.0 && v < x);
    qcase "range bounds" QCheck2.Gen.(triple small_int (float_range (-100.) 100.) (float_range 0.1 50.))
      (fun (seed, lo, span) ->
        let r = Util.Rng.create seed in
        let v = Util.Rng.range r lo (lo +. span) in
        v >= lo && v < lo +. span);
    case "gaussian moments" (fun () ->
        let r = Util.Rng.create 5 in
        let s = Util.Stats.create () in
        for _ = 1 to 20000 do
          Util.Stats.add s (Util.Rng.gaussian r ~mu:3.0 ~sigma:2.0)
        done;
        feq "mean" ~eps:0.1 3.0 (Util.Stats.mean s);
        feq "sigma" ~eps:0.1 2.0 (Util.Stats.stddev s));
    case "shuffle permutes" (fun () ->
        let r = Util.Rng.create 9 in
        let a = Array.init 50 (fun i -> i) in
        Util.Rng.shuffle r a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "same multiset" (Array.init 50 (fun i -> i)) sorted);
    case "choice picks member" (fun () ->
        let r = Util.Rng.create 11 in
        for _ = 1 to 50 do
          let v = Util.Rng.choice r [| 2; 4; 8 |] in
          Alcotest.(check bool) "member" true (List.mem v [ 2; 4; 8 ])
        done);
  ]

let stats_tests =
  [
    case "mean/std/min/max" (fun () ->
        let s = Util.Stats.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
        feq "mean" 2.5 (Util.Stats.mean s);
        feq "min" 1.0 (Util.Stats.min s);
        feq "max" 4.0 (Util.Stats.max s);
        feq "std" ~eps:1e-6 (sqrt 1.25) (Util.Stats.stddev s);
        feq "total" 10.0 (Util.Stats.total s);
        Alcotest.(check int) "count" 4 (Util.Stats.count s));
    case "empty accumulator" (fun () ->
        let s = Util.Stats.create () in
        Alcotest.(check int) "count" 0 (Util.Stats.count s);
        Alcotest.(check bool) "mean nan" true (Float.is_nan (Util.Stats.mean s)));
    case "percentile endpoints" (fun () ->
        let xs = [ 5.0; 1.0; 3.0 ] in
        feq "p0" 1.0 (Util.Stats.percentile xs 0.0);
        feq "p100" 5.0 (Util.Stats.percentile xs 100.0);
        feq "p50" 3.0 (Util.Stats.percentile xs 50.0));
    case "percentile interpolates" (fun () ->
        feq "p25" 1.5 (Util.Stats.percentile [ 1.0; 2.0; 3.0 ] 25.0));
    case "histogram buckets" (fun () ->
        let h = Util.Stats.histogram ~bounds:[ 1.0; 2.0 ] [ 0.5; 1.0; 1.5; 2.5; 3.0 ] in
        Alcotest.(check (array int)) "counts" [| 2; 1; 2 |] h);
    qcase "stddev non-negative" QCheck2.Gen.(list_size (int_range 2 40) (float_range (-1e3) 1e3))
      (fun xs ->
        let s = Util.Stats.of_list xs in
        Util.Stats.stddev s >= 0.0);
  ]

let fx_tests =
  [
    case "approx relative" (fun () ->
        Alcotest.(check bool) "close" true (Util.Fx.approx 1.0 (1.0 +. 1e-12));
        Alcotest.(check bool) "far" false (Util.Fx.approx 1.0 1.1));
    case "approx absolute near zero" (fun () ->
        Alcotest.(check bool) "tiny" true (Util.Fx.approx 0.0 1e-13));
    case "clamp" (fun () ->
        feq "below" 1.0 (Util.Fx.clamp ~lo:1.0 ~hi:2.0 0.0);
        feq "above" 2.0 (Util.Fx.clamp ~lo:1.0 ~hi:2.0 3.0);
        feq "inside" 1.5 (Util.Fx.clamp ~lo:1.0 ~hi:2.0 1.5));
    case "si prefixes" (fun () ->
        Alcotest.(check string) "pico" "3.200p" (Util.Fx.si 3.2e-12);
        Alcotest.(check string) "kilo" "2.000k" (Util.Fx.si 2e3);
        Alcotest.(check string) "zero" "0" (Util.Fx.si 0.0));
    case "pct" (fun () ->
        feq "plus" 10.0 (Util.Fx.pct 100.0 110.0);
        feq "zero base" 0.0 (Util.Fx.pct 0.0 5.0));
  ]

let ftab_tests =
  [
    case "render contains cells" (fun () ->
        let t = Util.Ftab.create ~title:"T" ~headers:[ "a"; "bb" ] in
        Util.Ftab.add_row t [ "x"; "y" ];
        let s = Util.Ftab.render t in
        Alcotest.(check bool) "title" true (String.length s > 0 && s.[0] = 'T');
        Alcotest.(check bool) "has x" true (String.index_opt s 'x' <> None);
        Alcotest.(check bool) "has header" true (String.index_opt s 'b' <> None));
    case "rows align" (fun () ->
        let t = Util.Ftab.create ~title:"T" ~headers:[ "col" ] in
        Util.Ftab.add_row t [ "longvalue" ];
        Util.Ftab.add_row t [ "s" ];
        let lines = String.split_on_char '\n' (Util.Ftab.render t) in
        let widths = List.filter_map (fun l -> if l <> "" && l.[0] = '|' then Some (String.length l) else None) lines in
        match widths with
        | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "width" w w') rest
        | [] -> Alcotest.fail "no rows");
  ]


(* appended: dominance-pruning properties for the shared candidate ops *)

(* random trace-construction programs, mirroring every arena constructor *)
type trace_op =
  | OLeaf
  | OBuf of int * trace_op
  | OResize of int * trace_op
  | OJoin of trace_op * trace_op

let trace_op_gen =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then return OLeaf
           else
             frequency
               [
                 (1, return OLeaf);
                 (3, map2 (fun i t -> OBuf (i, t)) (int_range 0 20) (self (n - 1)));
                 (2, map2 (fun i t -> OResize (i, t)) (int_range 0 20) (self (n - 1)));
                 (2, map2 (fun l r -> OJoin (l, r)) (self (n / 2)) (self (n / 2)));
               ]))

let candidate_tests =
  let mk c q = { Bufins.Candidate.c; q; i = 0.0; ns = 1.0; p = 0.0; meta = 0.0; tr = 0.0 } in
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 30)
        (map (fun (c, q) -> mk c q) (pair (float_range 1e-15 1e-12) (float_range 0.0 1e-9))))
  in
  (* candidates varying in all four pruning coordinates; coarse grids keep
     dominance chains and equal-cost ties frequent *)
  let gen4 =
    QCheck2.Gen.(
      list_size (int_range 1 30)
        (map
           (fun (c, q, i, ns) ->
             { (mk (float_of_int c *. 1e-15) (float_of_int q *. 1e-10)) with
               Bufins.Candidate.i = float_of_int i *. 1e-3;
               ns = float_of_int ns *. 0.1;
             })
           (quad (int_range 1 6) (int_range 0 6) (int_range 0 6) (int_range 0 6))))
  in
  let cost (a : Bufins.Candidate.t) = a.Bufins.Candidate.c in
  let value (a : Bufins.Candidate.t) = a.Bufins.Candidate.q in
  [
    qcase ~count:80 "pareto2 keeps only the pareto front" gen (fun cands ->
        let kept, dropped = Bufins.Frontier.pareto2 ~cost ~value cands in
        (* no survivor dominated by another survivor *)
        List.for_all
          (fun a -> List.for_all (fun b -> a == b || not (Bufins.Candidate.dominates a b)) kept)
          kept
        (* nothing dropped that wasn't dominated by a survivor *)
        && List.for_all
             (fun d ->
               List.memq d kept
               || List.exists (fun k -> Bufins.Candidate.dominates k d) kept)
             cands
        && dropped = List.length cands - List.length kept);
    qcase ~count:80 "pareto2 is idempotent" gen (fun cands ->
        let once, _ = Bufins.Frontier.pareto2 ~cost ~value cands in
        let twice, dropped = Bufins.Frontier.pareto2 ~cost ~value once in
        List.length once = List.length twice && dropped = 0);
    qcase ~count:80 "specialized sweeps match the generic frontier" gen4 (fun cands ->
        (* the DP's monomorphic fast paths must be observationally the
           generic Frontier algorithms *)
        let sorted = List.sort Bufins.Candidate.cmp_frontier cands in
        let gd, nd = (Bufins.Frontier.sweep2 ~cost ~value sorted, Bufins.Candidate.sweep_delay sorted) in
        let gn, nn =
          ( Bufins.Frontier.sweep_dom ~cost ~dominates:Bufins.Candidate.dominates_full sorted,
            Bufins.Candidate.sweep_noise sorted )
        in
        gd = nd && gn = nn);
    qcase ~count:80 "specialized merge matches the generic walk" gen (fun cands ->
        let l = List.sort Bufins.Candidate.cmp_frontier cands in
        let r = List.rev (List.rev_map (fun a -> { a with Bufins.Candidate.c = a.Bufins.Candidate.c *. 1.5 }) l) in
        (* fresh arena each: identical pairing order means identical
           handle sequences, so whole records must compare equal *)
        let ga = Bufins.Trace.create () and fa = Bufins.Trace.create () in
        let generic = Bufins.Frontier.merge2 ~value ~join:(Bufins.Candidate.merge ~arena:ga) l r in
        let fast, n = Bufins.Candidate.merge_delay ~arena:fa l r in
        generic = fast && n = List.length fast);
    qcase ~count:80 "pareto_dom on full dominance keeps only the 4D front" gen4 (fun cands ->
        let dom = Bufins.Candidate.dominates_full in
        let kept, _ =
          Bufins.Frontier.pareto_dom ~cmp:Bufins.Candidate.cmp_frontier ~cost ~dominates:dom
            cands
        in
        List.for_all
          (fun a -> List.for_all (fun b -> a == b || not (dom a b)) kept)
          kept
        && List.for_all
             (fun d -> List.memq d kept || List.exists (fun k -> dom k d) kept)
             cands);
    case "merge adds loads and takes worst slacks" (fun () ->
        let a = mk 1e-15 5e-10 and b = mk 2e-15 3e-10 in
        let m = Bufins.Candidate.merge ~arena:(Bufins.Trace.create ()) a b in
        feq_rel "c" ~eps:1e-12 3e-15 m.Bufins.Candidate.c;
        feq_rel "q" ~eps:1e-12 3e-10 m.Bufins.Candidate.q);
    case "wire step matches eq. 2 and eq. 8" (fun () ->
        let w = Rctree.Tree.make_wire ~length:1e-3 ~res:80.0 ~cap:2e-13 ~cur:1e-3 in
        let a = { (mk 10e-15 1e-9) with Bufins.Candidate.i = 2e-3; ns = 0.8 } in
        let r = Bufins.Candidate.add_wire w a in
        feq_rel "c" ~eps:1e-12 2.1e-13 r.Bufins.Candidate.c;
        feq_rel "q" ~eps:1e-9 (1e-9 -. (80.0 *. (1e-13 +. 10e-15))) r.Bufins.Candidate.q;
        feq_rel "i" ~eps:1e-12 3e-3 r.Bufins.Candidate.i;
        feq_rel "ns" ~eps:1e-9 (0.8 -. (80.0 *. (2e-3 +. 0.5e-3))) r.Bufins.Candidate.ns);
    case "inverting buffer flips parity" (fun () ->
        let inv = Tech.Lib.find Tech.Lib.default_library "invx4" |> Option.get in
        let arena = Bufins.Trace.create () in
        let r = Bufins.Candidate.add_buffer ~arena ~at:3 inv (mk 1e-14 1e-9) in
        Alcotest.(check int) "parity" 1 (Bufins.Candidate.parity r);
        Alcotest.(check int) "count" 1 (Bufins.Candidate.count r);
        feq_rel "load reset" ~eps:1e-12 inv.Tech.Buffer.c_in r.Bufins.Candidate.c);
    case "meta packing survives merges of buffered branches" (fun () ->
        let inv = Tech.Lib.find Tech.Lib.default_library "invx4" |> Option.get in
        let buf = Tech.Lib.find Tech.Lib.default_library "bufx4" |> Option.get in
        let arena = Bufins.Trace.create () in
        let a =
          Bufins.Candidate.add_buffer ~arena ~at:1 inv
            (Bufins.Candidate.add_buffer ~arena ~at:0 inv (mk 1e-14 1e-9))
        in
        let b = Bufins.Candidate.add_buffer ~arena ~at:2 buf (mk 2e-14 2e-9) in
        (* two inversions cancel: both sides sit at parity 0 *)
        let m = Bufins.Candidate.merge ~arena a b in
        Alcotest.(check int) "parity" 0 (Bufins.Candidate.parity m);
        Alcotest.(check int) "count" 3 (Bufins.Candidate.count m));
    qcase ~count:200 "trace reconstruction matches the eager list semantics" trace_op_gen
      (fun prog ->
        (* the arena walk must reproduce, list for list, what the old
           eager representation built: cons per buffer/sizing, rev_append
           per join, a final reverse for placements only *)
        let lib = Array.of_list Tech.Lib.default_library in
        let buf_of i = lib.(i mod Array.length lib) in
        let arena = Bufins.Trace.create () in
        let rec build = function
          | OLeaf -> (Bufins.Trace.leaf, [], [])
          | OBuf (i, sub) ->
              let h, sol, sizes = build sub in
              let b = buf_of i in
              let dist = float_of_int i *. 1e-6 in
              let p = { Rctree.Surgery.node = i; dist; buffer = b } in
              (Bufins.Trace.buf arena ~node:i ~dist ~buffer:b ~pred:h, p :: sol, sizes)
          | OResize (i, sub) ->
              let h, sol, sizes = build sub in
              let w = 1.0 +. float_of_int (i mod 3) in
              (Bufins.Trace.resize arena ~node:i ~width:w ~pred:h, sol, (i, w) :: sizes)
          | OJoin (l, r) ->
              let hl, soll, sizesl = build l in
              let hr, solr, sizesr = build r in
              ( Bufins.Trace.join arena ~left:hl ~right:hr,
                List.rev_append soll solr,
                List.rev_append sizesl sizesr )
        in
        let h, sol, sizes = build prog in
        Bufins.Trace.placements arena h = List.rev sol
        && Bufins.Trace.sizes arena h = sizes);
  ]

let clock_tests =
  [
    case "now is non-decreasing within a domain" (fun () ->
        let last = ref (Util.Clock.now ()) in
        for _ = 1 to 50_000 do
          let t = Util.Clock.now () in
          Alcotest.(check bool) "monotone" true (t >= !last);
          last := t
        done);
    case "timed elapses non-negatively" (fun () ->
        let v, dt = Util.Clock.timed (fun () -> 42) in
        Alcotest.(check int) "value" 42 v;
        Alcotest.(check bool) "elapsed >= 0" true (dt >= 0.0));
    case "concurrent domains each see a monotone clock" (fun () ->
        (* the high-water mark is Domain.DLS-local: workers hammering
           [now] concurrently must each observe a non-decreasing stream,
           with no cross-domain interference through a shared mark *)
        let ok = Array.init 4 (fun _ -> Atomic.make true) in
        let sample slot =
          let last = ref neg_infinity in
          for _ = 1 to 20_000 do
            let t = Util.Clock.now () in
            if t < !last then Atomic.set ok.(slot) false;
            last := t
          done
        in
        let helpers =
          List.init 3 (fun i -> Domain.spawn (fun () -> sample (i + 1)))
        in
        sample 0;
        List.iter Domain.join helpers;
        Array.iteri
          (fun i o ->
            Alcotest.(check bool) (Printf.sprintf "domain %d monotone" i) true
              (Atomic.get o))
          ok);
  ]

let suites =
  [
    ("util.rng", rng_tests);
    ("util.stats", stats_tests);
    ("util.fx", fx_tests);
    ("util.ftab", ftab_tests);
    ("util.clock", clock_tests);
    ("bufins.candidate", candidate_tests);
  ]
