open Helpers
module N = Circuit.Netlist

let workload_tree_gen =
  QCheck2.Gen.(
    map
      (fun seed ->
        let cfg = { Workload.default_config with nets = 1; seed } in
        snd (List.hd (Workload.trees process (Workload.generate cfg))))
      small_int)

let acmoments_tests =
  [
    case "rc divider transfer moments" (fun () ->
        (* source - R - out - C - ground: H(s) = 1/(1+sRC),
           h0 = 1, h1 = -RC, h2 = (RC)^2 *)
        let nl = N.create () in
        let src = N.fresh nl and out = N.fresh nl in
        let r = 1000.0 and c = 1e-12 in
        N.resistor nl src out r;
        N.capacitor nl out N.ground c;
        N.drive nl src (Circuit.Waveform.dc 1.0);
        match Circuit.Acmoments.transfer_moments nl ~order:2 ~probes:[ out ] with
        | [ m ] ->
            feq_rel "h0" ~eps:1e-12 1.0 m.Circuit.Acmoments.moments.(0).(0);
            feq_rel "h1" ~eps:1e-12 (-.(r *. c)) m.Circuit.Acmoments.moments.(1).(0);
            feq_rel "h2" ~eps:1e-12 ((r *. c) ** 2.0) m.Circuit.Acmoments.moments.(2).(0)
        | _ -> Alcotest.fail "expected one source");
    case "capacitive coupling has zero dc transfer" (fun () ->
        let nl = N.create () in
        let agg = N.fresh nl and vic = N.fresh nl in
        N.resistor nl vic N.ground 200.0;
        N.capacitor nl vic agg 50e-15;
        N.drive nl agg (Circuit.Waveform.dc 1.0);
        match Circuit.Acmoments.transfer_moments nl ~order:1 ~probes:[ vic ] with
        | [ m ] ->
            feq "h0 = 0" 0.0 m.Circuit.Acmoments.moments.(0).(0);
            (* h1 = R * Cc: the injected-current transfer *)
            feq_rel "h1 = R*Cc" ~eps:1e-12 (200.0 *. 50e-15) m.Circuit.Acmoments.moments.(1).(0)
        | _ -> Alcotest.fail "expected one source");
    case "one entry per driven source" (fun () ->
        let nl = N.create () in
        let a = N.fresh nl and b = N.fresh nl and vic = N.fresh nl in
        N.resistor nl vic N.ground 100.0;
        N.capacitor nl vic a 10e-15;
        N.capacitor nl vic b 20e-15;
        N.drive nl a (Circuit.Waveform.dc 1.0);
        N.drive nl b (Circuit.Waveform.dc 1.0);
        let ms = Circuit.Acmoments.transfer_moments nl ~order:1 ~probes:[ vic ] in
        Alcotest.(check int) "two sources" 2 (List.length ms);
        let total = List.fold_left (fun acc (m : Circuit.Acmoments.t) -> acc +. m.Circuit.Acmoments.moments.(1).(0)) 0.0 ms in
        feq_rel "superposition" ~eps:1e-12 (100.0 *. 30e-15) total);
    case "negative order rejected" (fun () ->
        let nl = N.create () in
        ignore (N.fresh nl);
        Alcotest.(check bool) "raises" true
          (match Circuit.Acmoments.transfer_moments nl ~order:(-1) ~probes:[] with
          | exception Invalid_argument _ -> true
          | _ -> false));
  ]

let awe_tests =
  [
    case "plateau equals devgan metric on a uniform line" (fun () ->
        (* distributed steady-ramp noise == the metric's pi-model value on
           a single wire (they lump identically) *)
        List.iter
          (fun len ->
            let t = Fixtures.two_pin process ~len in
            let metric = match Noise.leaf_noise t with [ (_, n, _) ] -> n | _ -> assert false in
            let _, est = List.hd (Noisesim.Awe.net process t) in
            feq_rel "plateau" ~eps:2e-3 metric est.Noisesim.Awe.plateau)
          [ 1e-3; 3e-3; 6e-3 ]);
    qcase ~count:12 "awe peak tracks the transient within 20%" workload_tree_gen (fun t ->
        let sim = Noisesim.Verify.net process t in
        let awe = Noisesim.Awe.net process t in
        List.for_all
          (fun (l : Noisesim.Verify.leaf_report) ->
            match List.assoc_opt l.Noisesim.Verify.leaf awe with
            | Some est ->
                l.Noisesim.Verify.peak < 1e-3
                || Float.abs (est.Noisesim.Awe.peak -. l.Noisesim.Verify.peak)
                   /. l.Noisesim.Verify.peak
                   < 0.20
            | None -> false)
          sim.Noisesim.Verify.leaves);
    qcase ~count:12 "devgan metric bounds the awe plateau" workload_tree_gen (fun t ->
        let metric = Hashtbl.create 16 in
        List.iter (fun (v, n, _) -> Hashtbl.replace metric v n) (Noise.leaf_noise t);
        List.for_all
          (fun (leaf, est) ->
            match Hashtbl.find_opt metric leaf with
            | Some m -> m >= est.Noisesim.Awe.plateau -. 1e-4
            | None -> false)
          (Noisesim.Awe.net process t));
    qcase ~count:12 "peak never exceeds plateau" workload_tree_gen (fun t ->
        List.for_all
          (fun (_, est) -> est.Noisesim.Awe.peak <= est.Noisesim.Awe.plateau +. 1e-12)
          (Noisesim.Awe.net process t));
    case "multi-aggressor estimate superposes" (fun () ->
        let t = Fixtures.two_pin process ~len:3e-3 in
        let slope = Tech.Process.slope process in
        (* wipe the estimation current, then add two explicit aggressors *)
        let bare = Rctree.Tree.map_wires t (fun _ w -> { w with Rctree.Tree.cur = 0.0 }) in
        let ann =
          Coupling.annotate bare
            ~spans:
              [
                ( 1,
                  [
                    { Coupling.near = 0.0; far = 3e-3; lambda = 0.35; slope };
                    { Coupling.near = 0.0; far = 3e-3; lambda = 0.35; slope = slope /. 2.0 };
                  ] );
              ]
        in
        let tr = Coupling.tree ann in
        let ests = Noisesim.Awe.net ~density:(Coupling.density ann) process tr in
        let _, est = List.hd ests in
        (* the plateau must equal the single-aggressor lambda=0.7 case:
           0.35*slope + 0.35*slope/2 = 0.525*slope of coupling-weighted
           current -> compare against the metric on the annotated tree *)
        let metric = match Noise.leaf_noise tr with [ (_, n, _) ] -> n | _ -> assert false in
        feq_rel "superposed plateau" ~eps:5e-3 metric est.Noisesim.Awe.plateau);
  ]

let suites = [ ("circuit.acmoments", acmoments_tests); ("noisesim.awe", awe_tests) ]
