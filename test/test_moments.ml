open Helpers
module T = Rctree.Tree

(* Random trees with zero intrinsic gate delay so that -m1 at a sink must
   equal its Elmore arrival time exactly. *)
let delayless_gen =
  QCheck2.Gen.(
    map
      (fun seed ->
        let rng = Util.Rng.create seed in
        let b = Rctree.Builder.create () in
        let so = Rctree.Builder.add_source b ~r_drv:(Util.Rng.range rng 20.0 300.0) ~d_drv:0.0 in
        let n = 1 + Util.Rng.int rng 4 in
        let attach = ref [ so ] in
        for k = 0 to n - 1 do
          let parent = List.nth !attach (Util.Rng.int rng (List.length !attach)) in
          let parent =
            if Util.Rng.bool rng then begin
              let v =
                Rctree.Builder.add_internal b ~parent
                  ~wire:(T.wire_of_length process (Util.Rng.range rng 1e-4 3e-3))
                  ()
              in
              attach := v :: !attach;
              v
            end
            else parent
          in
          ignore
            (Rctree.Builder.add_sink b ~parent
               ~wire:(T.wire_of_length process (Util.Rng.range rng 1e-4 3e-3))
               ~name:(Printf.sprintf "s%d" k)
               ~c_sink:(Util.Rng.range rng 1e-15 50e-15)
               ~rat:1e-9 ~nm:0.8)
        done;
        Rctree.Builder.finish b)
      small_int)

let tests =
  [
    qcase ~count:60 "-m1 equals Elmore arrival" delayless_gen (fun t ->
        let m = Moments.stage_moments t ~order:1 in
        let arr = Elmore.arrivals t in
        List.for_all
          (fun s -> Util.Fx.approx ~rel:1e-9 (Moments.elmore_delay ~m1:m.(0).(s)) arr.(s))
          (T.sinks t));
    qcase ~count:60 "moment signs alternate" delayless_gen (fun t ->
        let m = Moments.stage_moments t ~order:3 in
        List.for_all (fun s -> m.(0).(s) < 0.0 && m.(1).(s) > 0.0 && m.(2).(s) < 0.0) (T.sinks t));
    qcase ~count:60 "d2m does not exceed Elmore" delayless_gen (fun t ->
        (* ln2 * m1^2/sqrt(m2) <= -m1 because m2 <= m1^2 on RC trees *)
        let m = Moments.stage_moments t ~order:2 in
        List.for_all
          (fun s ->
            Moments.d2m ~m1:m.(0).(s) ~m2:m.(1).(s)
            <= Moments.elmore_delay ~m1:m.(0).(s) +. 1e-18)
          (T.sinks t));
    qcase ~count:40 "two-pole 50% delay below Elmore, above zero" delayless_gen (fun t ->
        let m = Moments.stage_moments t ~order:3 in
        List.for_all
          (fun s ->
            let d = Moments.two_pole_delay50 ~m1:m.(0).(s) ~m2:m.(1).(s) ~m3:m.(2).(s) in
            d > 0.0 && d <= Moments.elmore_delay ~m1:m.(0).(s) +. 1e-15)
          (T.sinks t));
    case "two-pole matches transient on an RC line" (fun () ->
        (* 4 mm uncoupled line: compare the 50% delay of the two-pole model
           against the full simulator *)
        let len = 4e-3 in
        let r_drv = 150.0 in
        let b = Rctree.Builder.create () in
        let so = Rctree.Builder.add_source b ~r_drv ~d_drv:0.0 in
        let w =
          T.make_wire ~length:len ~res:(Tech.Process.wire_r process len)
            ~cap:(Tech.Process.wire_c process len) ~cur:0.0
        in
        ignore (Rctree.Builder.add_sink b ~parent:so ~wire:w ~name:"s" ~c_sink:20e-15 ~rat:1e-9 ~nm:0.8);
        let t = Rctree.Builder.finish b in
        let m = Moments.stage_moments t ~order:3 in
        let sink = List.hd (T.sinks t) in
        let two_pole = Moments.two_pole_delay50 ~m1:m.(0).(sink) ~m2:m.(1).(sink) ~m3:m.(2).(sink) in
        (* build the same line as a 40-segment circuit driven by a step *)
        let nl = Circuit.Netlist.create () in
        let src = Circuit.Netlist.fresh nl in
        Circuit.Netlist.drive nl src (Circuit.Waveform.ramp ~t0:0.0 ~t_rise:1e-13 ~v0:0.0 ~v1:1.0);
        let n = 40 in
        let seg_r = w.T.res /. float_of_int n and seg_c = w.T.cap /. float_of_int n in
        let first = Circuit.Netlist.fresh nl in
        Circuit.Netlist.resistor nl src first r_drv;
        let last =
          List.fold_left
            (fun prev _ ->
              let next = Circuit.Netlist.fresh nl in
              Circuit.Netlist.resistor nl prev next seg_r;
              Circuit.Netlist.capacitor nl next Circuit.Netlist.ground seg_c;
              next)
            first
            (List.init n (fun i -> i))
        in
        Circuit.Netlist.capacitor nl last Circuit.Netlist.ground 20e-15;
        let res =
          Circuit.Transient.simulate ~record:true nl ~dt:2e-12 ~t_end:2e-9 ~probes:[ last ]
        in
        let tr = match res.Circuit.Transient.traces with Some x -> x.(0) | None -> assert false in
        let crossing = ref nan in
        Array.iteri
          (fun k v -> if Float.is_nan !crossing && v >= 0.5 then crossing := res.Circuit.Transient.times.(k))
          tr;
        feq_rel "two-pole vs simulation" ~eps:0.12 !crossing two_pole);
    case "order must be positive" (fun () ->
        Alcotest.(check bool) "raises" true
          (match Moments.stage_moments (Fixtures.fig3 ()) ~order:0 with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "buffers reset moments per stage" (fun () ->
        let t = Fixtures.two_pin process ~len:6e-3 in
        let buf = Tech.Lib.min_resistance lib in
        let t' = Rctree.Surgery.apply t [ { Rctree.Surgery.node = 1; dist = 3e-3; buffer = buf } ] in
        let m = Moments.stage_moments t' ~order:1 in
        let sink = List.hd (T.sinks t') in
        let unbuffered = Moments.stage_moments t ~order:1 in
        let sink0 = List.hd (T.sinks t) in
        (* per-stage m1 at the sink is far below the whole-line m1 *)
        Alcotest.(check bool) "reset" true
          (Moments.elmore_delay ~m1:m.(0).(sink)
          < 0.5 *. Moments.elmore_delay ~m1:unbuffered.(0).(sink0)));
    case "step response is monotone and saturates" (fun () ->
        let t = Fixtures.two_pin process ~len:4e-3 in
        let m = Moments.stage_moments t ~order:3 in
        let sink = List.hd (T.sinks t) in
        let f x = Moments.step_response_two_pole ~m1:m.(0).(sink) ~m2:m.(1).(sink) ~m3:m.(2).(sink) x in
        feq "starts near 0" ~eps:0.02 0.0 (f 0.0);
        Alcotest.(check bool) "monotone" true (f 1e-10 < f 3e-10 && f 3e-10 < f 1e-9);
        feq "saturates" ~eps:0.01 1.0 (f 1e-8));
  ]

let suites = [ ("moments", tests) ]
