open Helpers

let small_cfg = { Workload.default_config with nets = 40 }

let tests =
  [
    case "deterministic in the seed" (fun () ->
        let a = Workload.generate small_cfg and b = Workload.generate small_cfg in
        List.iter2
          (fun (x : Steiner.Net.t) (y : Steiner.Net.t) ->
            Alcotest.(check string) "name" x.Steiner.Net.nname y.Steiner.Net.nname;
            Alcotest.(check int) "degree" (Steiner.Net.degree x) (Steiner.Net.degree y);
            Alcotest.(check int) "hpwl" (Steiner.Net.hpwl x) (Steiner.Net.hpwl y);
            feq "r_drv" x.Steiner.Net.r_drv y.Steiner.Net.r_drv)
          a b);
    case "different seeds differ" (fun () ->
        let a = Workload.generate small_cfg in
        let b = Workload.generate { small_cfg with seed = 2024 } in
        Alcotest.(check bool) "hpwl differs somewhere" true
          (List.exists2 (fun x y -> Steiner.Net.hpwl x <> Steiner.Net.hpwl y) a b));
    case "net count honored" (fun () ->
        Alcotest.(check int) "40" 40 (List.length (Workload.generate small_cfg)));
    case "histogram covers every net" (fun () ->
        let nets = Workload.generate small_cfg in
        let h = Workload.sink_histogram ~buckets:Workload.default_mix nets in
        Alcotest.(check int) "total" 40 (List.fold_left (fun a (_, n) -> a + n) 0 h));
    case "sink counts inside the mix" (fun () ->
        List.iter
          (fun net ->
            let d = Steiner.Net.degree net in
            Alcotest.(check bool) "1..20" true (d >= 1 && d <= 20))
          (Workload.generate small_cfg));
    case "bounding boxes within configured half-perimeter" (fun () ->
        List.iter
          (fun net ->
            Alcotest.(check bool) "hp bound" true
              (Steiner.Net.hpwl net <= Workload.default_config.Workload.hp_max))
          (Workload.generate small_cfg));
    case "sinks are global-distance from the driver" (fun () ->
        List.iter
          (fun (net : Steiner.Net.t) ->
            List.iter
              (fun (p : Steiner.Net.pin) ->
                Alcotest.(check bool) "far enough" true
                  (Geometry.Point.manhattan net.Steiner.Net.source p.Steiner.Net.at
                   >= Workload.default_config.Workload.hp_min / 4))
              net.Steiner.Net.pins)
          (Workload.generate small_cfg));
    case "noise margins model static and dynamic sinks" (fun () ->
        let margins =
          List.concat_map
            (fun (net : Steiner.Net.t) -> List.map (fun p -> p.Steiner.Net.nm) net.Steiner.Net.pins)
            (Workload.generate { small_cfg with nets = 120 })
        in
        List.iter
          (fun m -> Alcotest.(check bool) "known margin" true (List.mem m [ 0.8; 0.65; 0.5 ]))
          margins;
        Alcotest.(check bool) "both classes occur" true
          (List.mem 0.8 margins && List.mem 0.5 margins));
    case "trees build and validate" (fun () ->
        List.iter
          (fun (_, t) ->
            Alcotest.(check (result unit string)) "valid" (Ok ()) (Rctree.Tree.validate t))
          (Workload.trees process (Workload.generate small_cfg)));
    case "required arrival times are positive and finite" (fun () ->
        List.iter
          (fun (net : Steiner.Net.t) ->
            List.iter
              (fun (p : Steiner.Net.pin) ->
                Alcotest.(check bool) "sane rat" true
                  (p.Steiner.Net.rat > 0.0 && p.Steiner.Net.rat < 1e-6))
              net.Steiner.Net.pins)
          (Workload.generate small_cfg));
  ]

let suites = [ ("workload", tests) ]
