open Helpers
module I = Check.Instance

(* the committed counterexample corpus, staged next to the test binary by
   the dune [deps] glob *)
let corpus_dir = "corpus"

let instance_gen =
  QCheck2.Gen.(map (fun seed -> Check.Gen.instance (Util.Rng.create seed)) small_int)

(* The PR-1 Alg3 counterexamples (test_alg3's regression case) as
   instances: (load, slack)-pruning made the DP report infeasibility on
   these while brute force finds a noise-clean buffering. *)
let pr1_instances =
  List.map
    (fun seed ->
      let rng = Util.Rng.create seed in
      I.make ~tree:(Check.Gen.lowmargin_tree rng) ~lib:Check.Gen.mixed_lib ~seg_len:1.5e-3
        I.Alg3_vs_brute)
    [ 0; 1; 2; 3; 4 ]

let corpus_tests =
  [
    qcase ~count:60 "serialization round-trips" instance_gen (fun inst ->
        let text = Check.Corpus.to_string inst in
        match Check.Corpus.of_string text with
        | Error m -> QCheck2.Test.fail_reportf "parse failed: %s" m
        | Ok inst' ->
            (* the fixpoint is the real invariant: re-serializing the
               parse reproduces the text byte for byte *)
            String.equal text (Check.Corpus.to_string inst'))
    ;
    case "parser rejects junk without raising" (fun () ->
        List.iter
          (fun junk ->
            match Check.Corpus.of_string junk with
            | Ok _ -> Alcotest.failf "accepted junk: %S" junk
            | Error _ -> ())
          [
            "";
            "(";
            ")";
            "(instance";
            "(instance (oracle nonsense) (seg-len 1) (lib) (tree))";
            "(instance (oracle alg3-vs-brute) (seg-len 0.001) (lib (buffer b maybe 1 1 1 1)) \
             (tree (source 100 0)))";
            "(instance (oracle alg3-vs-brute) (seg-len 0.001))";
            "(instance (oracle alg3-vs-brute) (seg-len nan) (lib (buffer b ninv 1 1 1 1)) \
             (tree (source 100 0)))";
            "(instance (oracle alg3-vs-brute) (seg-len 0.001) (lib (buffer b ninv 1 1 1 1)) \
             (tree (source 100 0) (sink 7 s 1e-15 1e-9 0.5 (wire 1e-3 1 1e-13 1e-3))))";
          ]);
    case "generation is deterministic" (fun () ->
        let text seed =
          Check.Corpus.to_string (Check.Gen.instance (Util.Rng.create seed))
        in
        List.iter
          (fun seed -> Alcotest.(check string) "same seed, same instance" (text seed) (text seed))
          (seeds 10));
    case "committed corpus replays clean on the healthy engine" (fun () ->
        let results = Check.Fuzz.replay corpus_dir in
        Alcotest.(check bool) "corpus is not empty" true (results <> []);
        List.iter
          (fun (file, verdict) ->
            match verdict with
            | Check.Diff.Pass -> ()
            | Check.Diff.Skip m -> Alcotest.failf "%s skipped: %s" file m
            | Check.Diff.Fail m -> Alcotest.failf "%s failed: %s" file m)
          results);
  ]

let invariant_tests =
  let vangin_case seed =
    let rng = Util.Rng.create seed in
    let seg =
      Rctree.Segment.refine (Check.Gen.theorem5_tree rng) ~max_len:1.5e-3
    in
    (seg, Bufins.Vangin.run ~lib:Check.Gen.single_lib seg)
  in
  let dp_expect (r : Bufins.Dp.result) =
    {
      Check.Invariant.count = Some r.Bufins.Dp.count;
      slack = Some r.Bufins.Dp.slack;
      noise_clean = false;
      feasible_only = true;
    }
  in
  let codes = function
    | Ok _ -> []
    | Error vs -> List.map (fun v -> v.Check.Invariant.code) vs
  in
  [
    case "accepts a DP solution with its own claims" (fun () ->
        List.iter
          (fun seed ->
            let seg, r = vangin_case seed in
            match
              Check.Invariant.check ~expect:(dp_expect r) seg r.Bufins.Dp.placements
            with
            | Ok report ->
                Alcotest.(check int)
                  "buffer count" r.Bufins.Dp.count report.Bufins.Eval.buffers
            | Error vs ->
                Alcotest.failf "seed %d: %s" seed
                  (String.concat "; " (List.map Check.Invariant.pp_violation vs)))
          (seeds 10));
    case "flags a corrupted buffer count" (fun () ->
        let seg, r = vangin_case 1000 in
        let expect = { (dp_expect r) with Check.Invariant.count = Some (r.Bufins.Dp.count + 1) } in
        Alcotest.(check (list string))
          "violation" [ "count-mismatch" ]
          (codes (Check.Invariant.check ~expect seg r.Bufins.Dp.placements)));
    case "flags an inflated slack claim" (fun () ->
        let seg, r = vangin_case 1001 in
        let expect =
          { (dp_expect r) with Check.Invariant.slack = Some (r.Bufins.Dp.slack +. 1e-10) }
        in
        Alcotest.(check (list string))
          "violation" [ "slack-mismatch" ]
          (codes (Check.Invariant.check ~expect seg r.Bufins.Dp.placements)));
    case "flags illegal placements" (fun () ->
        let seg, _ = vangin_case 1002 in
        let place node dist = { Rctree.Surgery.node; dist; buffer = Check.Gen.small_buffer } in
        let root = Rctree.Tree.root seg in
        Alcotest.(check (list string))
          "root" [ "placement-root" ]
          (codes (Check.Invariant.check seg [ place root 0.0 ]));
        Alcotest.(check (list string))
          "range" [ "placement-range" ]
          (codes (Check.Invariant.check seg [ place (Rctree.Tree.node_count seg) 0.0 ]));
        let sink = List.hd (Rctree.Tree.sinks seg) in
        Alcotest.(check (list string))
          "beyond the wire" [ "placement-dist" ]
          (codes
             (Check.Invariant.check seg
                [ place sink ((Rctree.Tree.wire_to seg sink).Rctree.Tree.length +. 1.0) ]));
        Alcotest.(check (list string))
          "duplicate" [ "placement-duplicate" ]
          (codes (Check.Invariant.check seg [ place sink 0.0; place sink 0.0 ])));
    case "feasible-only forbids offset and infeasible placements" (fun () ->
        (* segmenting a two-pin net leaves dummy/source structure plus
           feasible internals; a mid-wire placement is fine for Alg1 but
           not for a DP claim *)
        let seg = Rctree.Segment.refine (Fixtures.two_pin process ~len:4e-3) ~max_len:1e-3 in
        let sink = List.hd (Rctree.Tree.sinks seg) in
        let place =
          {
            Rctree.Surgery.node = sink;
            dist = (Rctree.Tree.wire_to seg sink).Rctree.Tree.length /. 2.0;
            buffer = Check.Gen.small_buffer;
          }
        in
        let expect = { Check.Invariant.default_expect with feasible_only = true } in
        let got =
          match Check.Invariant.check ~expect seg [ place ] with
          | Ok _ -> []
          | Error vs ->
              List.sort_uniq compare (List.map (fun v -> v.Check.Invariant.code) vs)
        in
        Alcotest.(check (list string))
          "violations" [ "placement-infeasible"; "placement-offset" ] got;
        (* and the same placement is legal for the climbing algorithms *)
        match Check.Invariant.check seg [ place ] with
        | Ok _ -> ()
        | Error vs ->
            Alcotest.failf "unrestricted check rejected: %s"
              (String.concat "; " (List.map Check.Invariant.pp_violation vs)));
    case "flags noise violations when cleanliness is claimed" (fun () ->
        (* a 12 mm unbuffered two-pin net is far beyond any margin *)
        let t = Fixtures.two_pin process ~len:12e-3 in
        let expect = { Check.Invariant.default_expect with noise_clean = true } in
        let got = codes (Check.Invariant.check ~expect t []) in
        Alcotest.(check bool) "noise-violation reported" true
          (List.mem "noise-violation" got);
        Alcotest.(check bool) "gate drive check fires" true
          (List.mem "gate-drive-noise" got);
        (* without the claim the same tree just evaluates *)
        match Check.Invariant.check t [] with
        | Ok _ -> ()
        | Error vs ->
            Alcotest.failf "unclaimed check rejected: %s"
              (String.concat "; " (List.map Check.Invariant.pp_violation vs)));
  ]

let diff_tests =
  [
    qcase ~count:80 "random instances pass every oracle" instance_gen (fun inst ->
        match Check.Diff.run inst with
        | Check.Diff.Pass | Check.Diff.Skip _ -> true
        | Check.Diff.Fail m -> QCheck2.Test.fail_reportf "%s" m);
    case "regression: the checker catches the PR-1 pruning bug" (fun () ->
        (* the exact instances of test_alg3's regression case, run
           differentially: healthy engine passes, the reintroduced
           (load, slack)-pruning defect must be caught on every one *)
        List.iter
          (fun inst ->
            (match Check.Diff.run inst with
            | Check.Diff.Pass -> ()
            | Check.Diff.Skip m -> Alcotest.failf "healthy run skipped: %s" m
            | Check.Diff.Fail m -> Alcotest.failf "healthy run failed: %s" m);
            match Check.Diff.run ~mutation:Bufins.Dp.Cq_noise_prune inst with
            | Check.Diff.Fail _ -> ()
            | Check.Diff.Pass | Check.Diff.Skip _ ->
                Alcotest.fail "mutated engine escaped the checker")
          pr1_instances);
  ]

let shrink_tests =
  [
    case "an always-failing instance shrinks to the floor" (fun () ->
        let inst =
          Check.Gen.instance_for I.Alg3_vs_brute (Util.Rng.create 77)
        in
        let r = Check.Shrink.shrink ~fails:(fun _ -> Some "always") inst ~message:"always" in
        Alcotest.(check int) "one sink left" 1 (I.sink_count r.Check.Shrink.instance);
        Alcotest.(check int)
          "one buffer left" 1
          (List.length r.Check.Shrink.instance.I.lib);
        Alcotest.(check bool) "made progress" true (r.Check.Shrink.steps > 0));
    case "a never-failing instance is returned unchanged" (fun () ->
        let inst = Check.Gen.instance_for I.Dp_invariants (Util.Rng.create 78) in
        let r = Check.Shrink.shrink ~fails:(fun _ -> None) inst ~message:"original" in
        Alcotest.(check string) "message kept" "original" r.Check.Shrink.message;
        Alcotest.(check int) "no steps" 0 r.Check.Shrink.steps);
  ]

let fuzz_tests =
  [
    case "bounded healthy campaign finds nothing" (fun () ->
        let r = Check.Fuzz.campaign ~jobs:1 ~seed:1 ~count:40 () in
        Alcotest.(check int) "tested" 40 r.Check.Fuzz.tested;
        Alcotest.(check (list string)) "failures" []
          (List.map (fun f -> f.Check.Fuzz.message) r.Check.Fuzz.failures));
    case "campaign verdicts do not depend on the job count" (fun () ->
        let run jobs =
          let r = Check.Fuzz.campaign ~jobs ~seed:5 ~count:30 () in
          (r.Check.Fuzz.tested, r.Check.Fuzz.passed, r.Check.Fuzz.skipped)
        in
        Alcotest.(check (triple int int int)) "1 vs 2 jobs" (run 1) (run 2));
    case "mutation smoke: campaigns catch a broken pruning rule" (fun () ->
        (* DESIGN.md section 10: re-introduce the PR-1 defect and demand a
           shrunk counterexample of at most 4 sinks that fails mutated,
           passes healthy, and replays from its corpus text *)
        let r =
          Check.Fuzz.campaign ~mutation:Bufins.Dp.Cq_noise_prune ~jobs:1 ~seed:5 ~count:60
            ()
        in
        Alcotest.(check bool) "campaign failed" true (r.Check.Fuzz.failures <> []);
        List.iter
          (fun (f : Check.Fuzz.failure) ->
            let shrunk = f.Check.Fuzz.shrunk in
            Alcotest.(check bool)
              (Printf.sprintf "instance %d shrunk to <= 4 sinks" f.Check.Fuzz.index)
              true
              (I.sink_count shrunk <= 4);
            (match Check.Diff.run ~mutation:Bufins.Dp.Cq_noise_prune shrunk with
            | Check.Diff.Fail _ -> ()
            | _ -> Alcotest.fail "shrunk instance no longer fails mutated");
            (match Check.Diff.run shrunk with
            | Check.Diff.Pass | Check.Diff.Skip _ -> ()
            | Check.Diff.Fail m -> Alcotest.failf "shrunk instance fails healthy: %s" m);
            (* round-trip through the corpus format and fail again *)
            match Check.Corpus.of_string (Check.Corpus.to_string shrunk) with
            | Error m -> Alcotest.failf "repro does not parse: %s" m
            | Ok replayed -> (
                match Check.Diff.run ~mutation:Bufins.Dp.Cq_noise_prune replayed with
                | Check.Diff.Fail _ -> ()
                | _ -> Alcotest.fail "replayed repro no longer fails mutated"))
          r.Check.Fuzz.failures);
    case "mutation smoke: missing attach guard is caught too" (fun () ->
        let r =
          Check.Fuzz.campaign ~mutation:Bufins.Dp.No_attach_guard ~jobs:1 ~seed:1
            ~count:40 ()
        in
        Alcotest.(check bool) "campaign failed" true (r.Check.Fuzz.failures <> []));
    case "mutation smoke: a weakened predictive bound is caught" (fun () ->
        (* DESIGN.md section 12: inflate the upstream-resistance bound by
           25% so the slope rule over-prunes; the predictive engine's
           outcomes drift from the sweep-only reference and the
           pred-vs-sweep oracle must flag it, with a shrunk repro of at
           most 4 sinks that fails mutated and passes healthy *)
        let r =
          Check.Fuzz.campaign ~mutation:Bufins.Dp.Loose_pred_bound ~jobs:1 ~seed:1
            ~count:80 ()
        in
        Alcotest.(check bool) "campaign failed" true (r.Check.Fuzz.failures <> []);
        List.iter
          (fun (f : Check.Fuzz.failure) ->
            let shrunk = f.Check.Fuzz.shrunk in
            Alcotest.(check bool)
              (Printf.sprintf "instance %d shrunk to <= 4 sinks" f.Check.Fuzz.index)
              true
              (I.sink_count shrunk <= 4);
            (match Check.Diff.run ~mutation:Bufins.Dp.Loose_pred_bound shrunk with
            | Check.Diff.Fail _ -> ()
            | _ -> Alcotest.fail "shrunk instance no longer fails mutated");
            match Check.Diff.run shrunk with
            | Check.Diff.Pass | Check.Diff.Skip _ -> ()
            | Check.Diff.Fail m -> Alcotest.failf "shrunk instance fails healthy: %s" m)
          r.Check.Fuzz.failures);
    case "mutation smoke: a stale incremental memo is caught" (fun () ->
        (* DESIGN.md section 14: under-invalidate the DP memo (the edited
           node only, ancestors keep tables computed for the old subtree)
           and the incremental-vs-scratch oracle must see the replayed
           edit sequence diverge from the scratch reference, with a
           shrunk repro that fails mutated and passes healthy *)
        let r =
          Check.Fuzz.campaign ~mutation:Bufins.Dp.Stale_memo ~jobs:1 ~seed:1 ~count:60
            ()
        in
        Alcotest.(check bool) "campaign failed" true (r.Check.Fuzz.failures <> []);
        List.iter
          (fun (f : Check.Fuzz.failure) ->
            let shrunk = f.Check.Fuzz.shrunk in
            (match Check.Diff.run ~mutation:Bufins.Dp.Stale_memo shrunk with
            | Check.Diff.Fail _ -> ()
            | _ -> Alcotest.fail "shrunk instance no longer fails mutated");
            match Check.Diff.run shrunk with
            | Check.Diff.Pass | Check.Diff.Skip _ -> ()
            | Check.Diff.Fail m -> Alcotest.failf "shrunk instance fails healthy: %s" m)
          r.Check.Fuzz.failures);
    case "mutation smoke: a loosened power bound is caught" (fun () ->
        (* DESIGN.md section 16: inflate the energy budget by 25% at every
           admission point, so the DP returns solutions the real budget
           forbids; the power oracles must flag the over-budget winner,
           with a shrunk repro that fails mutated and passes healthy *)
        let r =
          Check.Fuzz.campaign ~mutation:Bufins.Dp.Bad_power_bound
            ~oracle:Check.Instance.Power_vs_brute ~jobs:1 ~seed:1 ~count:40 ()
        in
        Alcotest.(check bool) "campaign failed" true (r.Check.Fuzz.failures <> []);
        List.iter
          (fun (f : Check.Fuzz.failure) ->
            let shrunk = f.Check.Fuzz.shrunk in
            (match Check.Diff.run ~mutation:Bufins.Dp.Bad_power_bound shrunk with
            | Check.Diff.Fail _ -> ()
            | _ -> Alcotest.fail "shrunk instance no longer fails mutated");
            match Check.Diff.run shrunk with
            | Check.Diff.Pass | Check.Diff.Skip _ -> ()
            | Check.Diff.Fail m -> Alcotest.failf "shrunk instance fails healthy: %s" m)
          r.Check.Fuzz.failures);
  ]

let suites =
  [
    ("check.corpus", corpus_tests);
    ("check.invariant", invariant_tests);
    ("check.diff", diff_tests);
    ("check.shrink", shrink_tests);
    ("check.fuzz", fuzz_tests);
  ]
