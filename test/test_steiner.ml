open Helpers
module P = Geometry.Point
module T = Rctree.Tree

let net_gen =
  QCheck2.Gen.(
    map
      (fun seed ->
        let rng = Util.Rng.create seed in
        let seen = Hashtbl.create 16 in
        let rec fresh () =
          let p = P.make (Util.Rng.int rng 4_000_000) (Util.Rng.int rng 4_000_000) in
          if Hashtbl.mem seen p then fresh ()
          else begin
            Hashtbl.replace seen p ();
            p
          end
        in
        let source = fresh () in
        let n = 1 + Util.Rng.int rng 12 in
        let pins =
          List.init n (fun k ->
              {
                Steiner.Net.pname = Printf.sprintf "p%d" k;
                at = fresh ();
                c_sink = 10e-15;
                rat = 1e-9;
                nm = 0.8;
              })
        in
        Steiner.Net.make ~name:"t" ~source ~r_drv:100.0 ~d_drv:30e-12 ~pins)
      small_int)

let mst_tests =
  [
    case "three collinear points" (fun () ->
        let pts = [| P.make 0 0; P.make 10 0; P.make 4 0 |] in
        let edges = Steiner.Mst.prim pts in
        Alcotest.(check int) "n-1 edges" 2 (Array.length edges);
        Alcotest.(check int) "length" 10 (Steiner.Mst.length pts edges));
    case "square has mst of three sides" (fun () ->
        let pts = [| P.make 0 0; P.make 1 0; P.make 1 1; P.make 0 1 |] in
        Alcotest.(check int) "length" 3 (Steiner.Mst.length pts (Steiner.Mst.prim pts)));
    qcase ~count:60 "edge count and bounds" net_gen (fun net ->
        let pts = Steiner.Net.all_points net in
        let edges = Steiner.Mst.prim pts in
        let star =
          Array.fold_left (fun acc p -> acc + P.manhattan pts.(0) p) 0 pts
        in
        Array.length edges = Array.length pts - 1 && Steiner.Mst.length pts edges <= star);
  ]

let build_tests =
  [
    qcase ~count:80 "steiner length never exceeds the mst" net_gen (fun net ->
        let g = Steiner.Build.of_net net in
        let pts = Steiner.Net.all_points net in
        Steiner.Build.wirelength g <= Steiner.Mst.length pts (Steiner.Mst.prim pts));
    qcase ~count:80 "hpwl lower-bounds the steiner tree" net_gen (fun net ->
        Steiner.Build.wirelength (Steiner.Build.of_net net) >= Steiner.Net.hpwl net);
    qcase ~count:80 "conversion produces valid trees with all sinks" net_gen (fun net ->
        let t = Steiner.Build.tree_of_net process net in
        T.validate t = Ok ()
        && List.length (T.sinks t) = Steiner.Net.degree net);
    qcase ~count:60 "tree wirelength matches the graph" net_gen (fun net ->
        let g = Steiner.Build.of_net net in
        let t = Steiner.Build.to_rctree process net g in
        Util.Fx.approx ~rel:1e-9 ~abs:1e-12
          (T.total_wirelength t)
          (float_of_int (Steiner.Build.wirelength g) *. 1e-9));
    qcase ~count:60 "sink names survive" net_gen (fun net ->
        let t = Steiner.Build.tree_of_net process net in
        let names =
          List.filter_map
            (fun v -> match T.kind t v with T.Sink s -> Some s.T.sname | _ -> None)
            (T.sinks t)
          |> List.sort compare
        in
        names = List.sort compare (List.map (fun p -> p.Steiner.Net.pname) net.Steiner.Net.pins));
    case "single pin gives an L route" (fun () ->
        let net =
          Steiner.Net.make ~name:"l" ~source:(P.make 0 0) ~r_drv:100.0 ~d_drv:0.0
            ~pins:[ { Steiner.Net.pname = "a"; at = P.make 300 400; c_sink = 1e-15; rat = 1e-9; nm = 0.8 } ]
        in
        Alcotest.(check int) "manhattan length" 700 (Steiner.Build.wirelength (Steiner.Build.of_net net)));
    case "aligned pins share a spine" (fun () ->
        let pin name x y = { Steiner.Net.pname = name; at = P.make x y; c_sink = 1e-15; rat = 1e-9; nm = 0.8 } in
        let net =
          Steiner.Net.make ~name:"spine" ~source:(P.make 0 0) ~r_drv:100.0 ~d_drv:0.0
            ~pins:[ pin "a" 100 0; pin "b" 200 0; pin "c" 300 0 ]
        in
        Alcotest.(check int) "no duplicated track" 300 (Steiner.Build.wirelength (Steiner.Build.of_net net)));
    case "t-shape earns a steiner point" (fun () ->
        (* source left, two pins right-up and right-down: the vertical leg
           must branch from a steiner point on the horizontal spine *)
        let pin name x y = { Steiner.Net.pname = name; at = P.make x y; c_sink = 1e-15; rat = 1e-9; nm = 0.8 } in
        let net =
          Steiner.Net.make ~name:"t" ~source:(P.make 0 0) ~r_drv:100.0 ~d_drv:0.0
            ~pins:[ pin "up" 100 50; pin "down" 100 (-50) ]
        in
        let wl = Steiner.Build.wirelength (Steiner.Build.of_net net) in
        Alcotest.(check bool) "shares the trunk" true (wl <= 200);
        let t = Steiner.Build.tree_of_net process net in
        Alcotest.(check (result unit string)) "valid" (Ok ()) (T.validate t));
    case "coincident pins rejected at net creation" (fun () ->
        let pin name x y = { Steiner.Net.pname = name; at = P.make x y; c_sink = 1e-15; rat = 1e-9; nm = 0.8 } in
        Alcotest.(check bool) "raises" true
          (match
             Steiner.Net.make ~name:"dup" ~source:(P.make 0 0) ~r_drv:1.0 ~d_drv:0.0
               ~pins:[ pin "a" 5 5; pin "b" 5 5 ]
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "empty pin list rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (match Steiner.Net.make ~name:"e" ~source:(P.make 0 0) ~r_drv:1.0 ~d_drv:0.0 ~pins:[] with
          | exception Invalid_argument _ -> true
          | _ -> false));
  ]

let suites = [ ("steiner.mst", mst_tests); ("steiner.build", build_tests) ]
