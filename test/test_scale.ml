open Helpers

(* Scale smoke tests: the optimizers stay well-behaved on nets an order
   of magnitude beyond the workload's typical size. *)

let big_tree sinks =
  let rng = Util.Rng.create 99 in
  let b = Rctree.Builder.create () in
  let so = Rctree.Builder.add_source b ~r_drv:100.0 ~d_drv:30e-12 in
  let attach = ref [ so ] in
  for k = 0 to sinks - 1 do
    let parent = List.nth !attach (Util.Rng.int rng (List.length !attach)) in
    let v =
      Rctree.Builder.add_internal b ~parent
        ~wire:(Rctree.Tree.wire_of_length process (Util.Rng.range rng 0.2e-3 1.5e-3))
        ()
    in
    attach := v :: !attach;
    ignore
      (Rctree.Builder.add_sink b ~parent:v
         ~wire:(Rctree.Tree.wire_of_length process (Util.Rng.range rng 0.2e-3 1e-3))
         ~name:(Printf.sprintf "s%d" k) ~c_sink:15e-15 ~rat:4e-9 ~nm:0.8)
  done;
  Rctree.Builder.finish b

let tests =
  [
    Alcotest.test_case "alg2 clears a 200-sink tree" `Slow (fun () ->
        let t = big_tree 200 in
        let r = Bufins.Alg2.run ~lib t in
        Alcotest.(check bool) "clean" true
          (Bufins.Eval.noise_clean (Bufins.Eval.apply t r.Bufins.Alg2.placements)));
    Alcotest.test_case "alg3 handles a 200-sink segmented tree" `Slow (fun () ->
        let t = Rctree.Segment.refine (big_tree 200) ~max_len:500e-6 in
        match Bufins.Alg3.run ~lib t with
        | Some r ->
            Alcotest.(check bool) "clean" true
              (Bufins.Eval.noise_clean (Bufins.Eval.apply t r.Bufins.Dp.placements))
        | None -> Alcotest.fail "infeasible");
    Alcotest.test_case "buffopt problem 3 at scale" `Slow (fun () ->
        let t = big_tree 100 in
        match Bufins.Buffopt.optimize Bufins.Buffopt.Buffopt ~lib t with
        | Some r ->
            Alcotest.(check bool) "clean" true (Bufins.Eval.noise_clean r.Bufins.Buffopt.report)
        | None -> Alcotest.fail "infeasible");
    Alcotest.test_case "transient deck with a thousand unknowns" `Slow (fun () ->
        let t = Fixtures.two_pin process ~len:20e-3 in
        let cfg = { (Noisesim.Deck.default_config process) with Noisesim.Deck.n_seg = 1000 } in
        let deck = Noisesim.Deck.of_stage cfg t ~gate:(Rctree.Tree.root t) in
        match Noisesim.Deck.peak_noise cfg deck with
        | [ (_, peak) ] -> Alcotest.(check bool) "positive" true (peak > 0.0)
        | _ -> Alcotest.fail "one probe expected");
  ]

let suites = [ ("scale", tests) ]
