open Helpers
module T = Rctree.Tree

let workload_gen =
  QCheck2.Gen.(
    map
      (fun seed ->
        let cfg = { Workload.default_config with nets = 1; seed } in
        snd (List.hd (Workload.trees process (Workload.generate cfg))))
      small_int)

let relax_rats tree rat =
  (* rebuild with every sink's required arrival time replaced *)
  let b = Rctree.Builder.create () in
  let rec copy v parent =
    let id =
      match T.kind tree v with
      | T.Source d -> Rctree.Builder.add_source b ~r_drv:d.T.r_drv ~d_drv:d.T.d_drv
      | T.Sink s ->
          Rctree.Builder.add_sink b ~parent ~wire:(T.wire_to tree v) ~name:s.T.sname
            ~c_sink:s.T.c_sink ~rat ~nm:s.T.nm
      | T.Internal ->
          Rctree.Builder.add_internal b ~parent ~wire:(T.wire_to tree v) ~feasible:(T.feasible tree v) ()
      | T.Buffered bu -> Rctree.Builder.add_buffered b ~parent ~wire:(T.wire_to tree v) bu
    in
    List.iter (fun c -> copy c id) (T.children tree v)
  in
  copy (T.root tree) (-1);
  Rctree.Builder.finish b

let tests =
  [
    qcase ~count:40 "problem 3 result is noise-clean and reports honestly" workload_gen (fun t ->
        match Bufins.Buffopt.optimize Bufins.Buffopt.Buffopt ~lib t with
        | Some r ->
            Bufins.Eval.noise_clean r.Bufins.Buffopt.report
            && Util.Fx.approx ~rel:1e-9 ~abs:1e-16 r.Bufins.Buffopt.predicted_slack
                 r.Bufins.Buffopt.report.Bufins.Eval.slack
            && r.Bufins.Buffopt.count = r.Bufins.Buffopt.report.Bufins.Eval.buffers
        | None -> false);
    qcase ~count:30 "problem 3 minimizes buffers among timing-feasible counts" workload_gen
      (fun t ->
        let seg = Rctree.Segment.refine t ~max_len:500e-6 in
        match Bufins.Buffopt.problem3 ~kmax:10 ~lib seg with
        | Some { Bufins.Buffopt.result; timing_met = true } ->
            (* no smaller count in the count-indexed table meets timing *)
            let by = Bufins.Alg3.by_count ~kmax:10 ~lib seg in
            Array.to_list by.Bufins.Dp.by_count
            |> List.for_all (function
                 | Some (r : Bufins.Dp.result) ->
                     r.Bufins.Dp.count >= result.Bufins.Dp.count || r.Bufins.Dp.slack < 0.0
                 | None -> true)
        | Some { timing_met = false; _ } -> true
        | None -> true);
    case "regression: a zero-margin sink yields an infinite ratio, never nan" (fun () ->
        (* worst_noise_ratio divides noise by the sink margin; a margin of
           zero (or a denormal) used to produce nan/inf garbage that broke
           every downstream max-fold comparison. Pinned behavior: any
           noise into a zero margin is an infinite ratio (never clean),
           zero noise into a zero margin is a ratio of zero (clean). *)
        let noisy_zero_margin = Fixtures.two_pin ~nm:0.0 process ~len:2e-3 in
        let r = Bufins.Eval.of_tree noisy_zero_margin in
        Alcotest.(check bool)
          "noisy ratio is +inf" true
          (r.Bufins.Eval.worst_noise_ratio = Float.infinity);
        Alcotest.(check bool) "not clean" false (Bufins.Eval.noise_clean r);
        let b = Rctree.Builder.create () in
        let so = Rctree.Builder.add_source b ~r_drv:100.0 ~d_drv:0.0 in
        let quiet = T.make_wire ~length:1e-3 ~res:100.0 ~cap:1e-13 ~cur:0.0 in
        ignore
          (Rctree.Builder.add_sink b ~parent:so ~wire:quiet ~name:"s" ~c_sink:1e-14
             ~rat:1e-9 ~nm:0.0);
        let r = Bufins.Eval.of_tree (Rctree.Builder.finish b) in
        Alcotest.(check (float 0.0))
          "quiet ratio is 0" 0.0 r.Bufins.Eval.worst_noise_ratio;
        Alcotest.(check bool) "clean" true (Bufins.Eval.noise_clean r);
        (* denormal margins behave like zero, not like a 1e300-ish ratio *)
        let denormal = Fixtures.two_pin ~nm:1e-320 process ~len:2e-3 in
        let r = Bufins.Eval.of_tree denormal in
        Alcotest.(check bool)
          "denormal margin is +inf too" true
          (r.Bufins.Eval.worst_noise_ratio = Float.infinity));
    case "relaxed timing needs fewer buffers than tight timing" (fun () ->
        let t = Fixtures.two_pin process ~len:10e-3 in
        let loose = relax_rats t 10e-9 in
        let run tree =
          match Bufins.Buffopt.optimize Bufins.Buffopt.Buffopt ~lib tree with
          | Some r -> r.Bufins.Buffopt.count
          | None -> Alcotest.fail "infeasible"
        in
        let tight = relax_rats t 0.65e-9 in
        Alcotest.(check bool) "loose <= tight" true (run loose <= run tight);
        (* with 10 ns of slack only noise forces buffers: 3 on a 12 mm line *)
        Alcotest.(check bool) "loose uses the noise minimum" true (run loose <= 3));
    case "unreachable timing falls back to max slack" (fun () ->
        let t = relax_rats (Fixtures.two_pin process ~len:10e-3) (-1.0) in
        let seg = Rctree.Segment.refine t ~max_len:500e-6 in
        match Bufins.Buffopt.problem3 ~kmax:10 ~lib seg with
        | Some { Bufins.Buffopt.result; timing_met } ->
            Alcotest.(check bool) "timing not met" false timing_met;
            (match Bufins.Alg3.run ~lib seg with
            | Some best ->
                feq_rel "matches problem 2 slack" ~eps:1e-9 best.Bufins.Dp.slack
                  result.Bufins.Dp.slack
            | None -> Alcotest.fail "alg3 infeasible")
        | None -> Alcotest.fail "problem3 infeasible");
    qcase ~count:25 "delayopt(k) inserts at most k" workload_gen (fun t ->
        List.for_all
          (fun k ->
            match Bufins.Buffopt.optimize (Bufins.Buffopt.Delayopt k) ~lib t with
            | Some r -> r.Bufins.Buffopt.count <= k
            | None -> false)
          [ 1; 3 ]);
    case "optimize retries with finer segmenting" (fun () ->
        (* 6 mm spans are hopeless (see alg3 tests); starting there must
           fall back to a finer grid and succeed *)
        let t = Fixtures.two_pin process ~len:12e-3 in
        match Bufins.Buffopt.optimize ~seg_len:6e-3 ~retries:3 Bufins.Buffopt.Buffopt ~lib t with
        | Some r -> Alcotest.(check bool) "clean" true (Bufins.Eval.noise_clean r.Bufins.Buffopt.report)
        | None -> Alcotest.fail "retries exhausted");
    case "no retries means failure at coarse segmenting" (fun () ->
        let t = Fixtures.two_pin process ~len:12e-3 in
        Alcotest.(check bool) "none" true
          (Bufins.Buffopt.optimize ~seg_len:6e-3 ~retries:0 Bufins.Buffopt.Buffopt ~lib t = None));
    qcase ~count:25 "buffopt uses no more buffers than alg3 max-slack" workload_gen (fun t ->
        match
          ( Bufins.Buffopt.optimize Bufins.Buffopt.Buffopt ~lib t,
            Bufins.Buffopt.optimize Bufins.Buffopt.Alg3_max_slack ~lib t )
        with
        | Some bo, Some a3 -> bo.Bufins.Buffopt.count <= a3.Bufins.Buffopt.count
        | _, _ -> true);
    qcase ~count:25 "power budget caps energy; generous budget recovers delayopt" workload_gen
      (fun t ->
        (* the budgeted mode is count-bucketed at kmax (16), so its
           generous-budget optimum is Delayopt 16's, not the unbounded
           vangin one *)
        match Bufins.Buffopt.optimize (Bufins.Buffopt.Delayopt 16) ~lib t with
        | None -> false
        | Some unc ->
            let run b = Bufins.Buffopt.optimize (Bufins.Buffopt.Power_bounded b) ~lib t in
            let half = unc.Bufins.Buffopt.energy *. 0.5 in
            (match run half with
            | Some r ->
                r.Bufins.Buffopt.energy <= half +. 1e-27
                && Util.Fx.approx ~rel:1e-12 ~abs:1e-27 r.Bufins.Buffopt.energy
                     (Bufins.Buffopt.placements_energy r.Bufins.Buffopt.placements)
            | None -> false)
            &&
            match run (unc.Bufins.Buffopt.energy *. 2.0 +. 1e-15) with
            | Some r -> r.Bufins.Buffopt.predicted_slack >= unc.Bufins.Buffopt.predicted_slack
            | None -> false);
    qcase ~count:25 "downsize never raises energy and respects its floors" workload_gen
      (fun t ->
        match Bufins.Buffopt.optimize Bufins.Buffopt.Vangin_max_slack ~lib t with
        | None -> false
        | Some r ->
            let d = Bufins.Buffopt.downsize ~lib r in
            let floor = Float.min r.Bufins.Buffopt.report.Bufins.Eval.slack 0.0 in
            let cap = Float.max r.Bufins.Buffopt.report.Bufins.Eval.worst_noise_ratio 1.0 in
            d.Bufins.Buffopt.energy <= r.Bufins.Buffopt.energy +. 1e-27
            && d.Bufins.Buffopt.count <= r.Bufins.Buffopt.count
            && d.Bufins.Buffopt.report.Bufins.Eval.slack >= floor -. 1e-15
            && d.Bufins.Buffopt.report.Bufins.Eval.worst_noise_ratio <= cap +. 1e-9
            && Util.Fx.approx ~rel:1e-12 ~abs:1e-27 d.Bufins.Buffopt.energy
                 (Bufins.Buffopt.placements_energy d.Bufins.Buffopt.placements));
    case "downsize shrinks gratuitous repeaters but keeps load-bearing ones" (fun () ->
        (* a relaxed 6 mm net: max-slack picks four invx16 repeaters that
           a 10 ns RAT does not need. Removal would flip polarity
           (inverters only leave in pairs), so downsize shrinks them to
           the cheapest inverter instead — a large energy cut at the same
           count, even with the floor disabled *)
        let t = relax_rats (Fixtures.two_pin process ~len:6e-3) 10e-9 in
        (match Bufins.Buffopt.optimize Bufins.Buffopt.Vangin_max_slack ~lib t with
        | Some r when r.Bufins.Buffopt.count > 0 ->
            let d = Bufins.Buffopt.downsize ~slack_floor:neg_infinity ~lib r in
            Alcotest.(check int) "count unchanged (polarity)" r.Bufins.Buffopt.count
              d.Bufins.Buffopt.count;
            Alcotest.(check bool) "energy strictly cut" true
              (d.Bufins.Buffopt.energy < r.Bufins.Buffopt.energy *. 0.5)
        | Some _ -> Alcotest.fail "expected max-slack to insert buffers"
        | None -> Alcotest.fail "infeasible");
        (* a long noisy net: buffers are load-bearing (noise-clean needs
           them), so the default guards must keep the solution clean *)
        let t = Fixtures.two_pin process ~len:10e-3 in
        match Bufins.Buffopt.optimize Bufins.Buffopt.Buffopt ~lib t with
        | Some r ->
            let d = Bufins.Buffopt.downsize ~lib r in
            Alcotest.(check bool) "still noise-clean" true
              (Bufins.Eval.noise_clean d.Bufins.Buffopt.report);
            Alcotest.(check bool) "kept some buffers" true (d.Bufins.Buffopt.count > 0)
        | None -> Alcotest.fail "infeasible");
  ]

let suites = [ ("bufins.buffopt", tests) ]
