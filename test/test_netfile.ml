open Helpers

let tmp content =
  let path = Filename.temp_file "buffopt_net" ".net" in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

let tests =
  [
    case "sample parses" (fun () ->
        let path = tmp Steiner.Netfile.sample in
        let net = Steiner.Netfile.read path in
        Sys.remove path;
        Alcotest.(check int) "three sinks" 3 (Steiner.Net.degree net);
        Alcotest.(check string) "name" "sample" net.Steiner.Net.nname);
    case "round trip preserves electricals" (fun () ->
        let cfg = { Workload.default_config with nets = 5 } in
        List.iter
          (fun net ->
            let path = tmp (Steiner.Netfile.to_string net) in
            let net' = Steiner.Netfile.read path in
            Sys.remove path;
            let tree = Steiner.Build.tree_of_net process net in
            let tree' = Steiner.Build.tree_of_net process net' in
            feq_rel "delay" ~eps:1e-6 (Elmore.worst_delay tree) (Elmore.worst_delay tree');
            Alcotest.(check int) "sinks" (Steiner.Net.degree net) (Steiner.Net.degree net'))
          (Workload.generate cfg));
    case "missing source rejected" (fun () ->
        let path = tmp "sink a 1 1 10 100 0.8\n" in
        let r = match Steiner.Netfile.read path with exception Steiner.Netfile.Parse _ -> true | _ -> false in
        Sys.remove path;
        Alcotest.(check bool) "raises" true r);
    case "bad numbers carry a location" (fun () ->
        let path = tmp "source 0 0 oops 30\n" in
        let r =
          match Steiner.Netfile.read path with
          | exception Steiner.Netfile.Parse m ->
              String.length m > 0 && String.contains m ':'
          | _ -> false
        in
        Sys.remove path;
        Alcotest.(check bool) "raises with location" true r);
    case "unknown directive rejected" (fun () ->
        let path = tmp "source 0 0 100 30\nfrobnicate\n" in
        let r = match Steiner.Netfile.read path with exception Steiner.Netfile.Parse _ -> true | _ -> false in
        Sys.remove path;
        Alcotest.(check bool) "raises" true r);
    case "coincident pins rejected as parse error" (fun () ->
        let path = tmp "source 0 0 100 30\nsink a 5 5 10 100 0.8\nsink b 5 5 10 100 0.8\n" in
        let r = match Steiner.Netfile.read path with exception Steiner.Netfile.Parse _ -> true | _ -> false in
        Sys.remove path;
        Alcotest.(check bool) "raises" true r);
  ]


(* appended: parser robustness — junk input must fail cleanly *)
let fuzz_tests =
  let junk_gen =
    QCheck2.Gen.(
      list_size (int_range 0 12)
        (oneof
           [
             string_size ~gen:printable (int_range 0 40);
             return "net x";
             return "source 0 0 100 30";
             return "sink a 1 2 10 100 0.8";
             return "sink a nope 2 10 100 0.8";
             return "# comment";
           ]))
  in
  let write_lines lines =
    let path = Filename.temp_file "buffopt_fuzz" ".net" in
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    path
  in
  [
    qcase ~count:150 "net parser never crashes on junk" junk_gen (fun lines ->
        let path = write_lines lines in
        let ok =
          match Steiner.Netfile.read path with
          | _ -> true
          | exception Steiner.Netfile.Parse _ -> true
          | exception _ -> false
        in
        Sys.remove path;
        ok);
    qcase ~count:150 "design parser never crashes on junk" junk_gen (fun lines ->
        let path = write_lines lines in
        let ok =
          match Sta.Netfmt.read path with
          | _ -> true
          | exception Sta.Netfmt.Parse _ -> true
          | exception _ -> false
        in
        Sys.remove path;
        ok);
  ]

let suites = [ ("steiner.netfile", tests); ("parsers.fuzz", fuzz_tests) ]
