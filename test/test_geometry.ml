open Helpers
module P = Geometry.Point

let point_gen = QCheck2.Gen.(map (fun (x, y) -> P.make x y) (pair (int_range (-1000) 1000) (int_range (-1000) 1000)))

let tests =
  [
    case "manhattan known" (fun () ->
        Alcotest.(check int) "dist" 7 (P.manhattan (P.make 0 0) (P.make 3 4)));
    qcase "manhattan symmetric" QCheck2.Gen.(pair point_gen point_gen) (fun (a, b) ->
        P.manhattan a b = P.manhattan b a);
    qcase "manhattan identity" point_gen (fun a -> P.manhattan a a = 0);
    qcase "triangle inequality" QCheck2.Gen.(triple point_gen point_gen point_gen)
      (fun (a, b, c) -> P.manhattan a c <= P.manhattan a b + P.manhattan b c);
    case "compare orders lexicographically" (fun () ->
        Alcotest.(check bool) "lt" true (P.compare (P.make 0 5) (P.make 1 0) < 0);
        Alcotest.(check bool) "y tiebreak" true (P.compare (P.make 1 0) (P.make 1 2) < 0));
    qcase "bbox contains its points" QCheck2.Gen.(list_size (int_range 1 20) point_gen)
      (fun pts ->
        let b = Geometry.Bbox.of_points pts in
        List.for_all (Geometry.Bbox.contains b) pts);
    case "half perimeter known" (fun () ->
        let b = Geometry.Bbox.of_points [ P.make 0 0; P.make 3 4 ] in
        Alcotest.(check int) "hp" 7 (Geometry.Bbox.half_perimeter b));
    case "bbox of empty rejected" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Bbox.of_points: empty") (fun () ->
            ignore (Geometry.Bbox.of_points [])));
    qcase "expand grows hp by 4*margin" QCheck2.Gen.(pair (list_size (int_range 1 10) point_gen) (int_range 0 100))
      (fun (pts, m) ->
        let b = Geometry.Bbox.of_points pts in
        Geometry.Bbox.half_perimeter (Geometry.Bbox.expand b m)
        = Geometry.Bbox.half_perimeter b + (4 * m));
  ]

let suites = [ ("geometry", tests) ]
