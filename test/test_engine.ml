(* The batch engine (lib/engine): pool coverage, scheduling-independent
   determinism, fault isolation, and the retry knob. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let pool_covers_every_index () =
  let n = 101 in
  let hits = Array.make n 0 in
  Engine.Pool.parallel_for ~domains:4 ~chunk:3 ~n (fun i -> hits.(i) <- hits.(i) + 1);
  Array.iteri
    (fun i h -> Alcotest.(check int) (Printf.sprintf "index %d hit once" i) 1 h)
    hits

let pool_edges () =
  (* n = 0: no calls, no spawn *)
  Engine.Pool.parallel_for ~domains:4 ~n:0 (fun _ -> Alcotest.fail "body on n=0");
  (* more domains than work; chunk larger than n *)
  let hits = Array.make 3 0 in
  Engine.Pool.parallel_for ~domains:16 ~chunk:100 ~n:3 (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check (list int)) "each once" [ 1; 1; 1 ] (Array.to_list hits);
  Alcotest.check_raises "domains < 1" (Invalid_argument "Pool.parallel_for: domains < 1")
    (fun () -> Engine.Pool.parallel_for ~domains:0 ~n:1 ignore);
  Alcotest.check_raises "chunk < 1" (Invalid_argument "Pool.parallel_for: chunk < 1")
    (fun () -> Engine.Pool.parallel_for ~domains:1 ~chunk:0 ~n:1 ignore)

let pool_propagates_exception () =
  match Engine.Pool.parallel_for ~domains:3 ~n:50 (fun i -> if i = 17 then failwith "boom")
  with
  | () -> Alcotest.fail "expected the worker's exception to surface"
  | exception Failure m -> Alcotest.(check string) "message" "boom" m

(* every index in [0, n) exactly once, across randomized (n, domains,
   chunk, costs) including chunk > n, domains > n and n = 0 — the
   contract no sharding or stealing scheme may bend *)
let pool_coverage_property () =
  let rng = Util.Rng.create 0xb0ff in
  let cases = ref [ (0, 4, None, None); (3, 16, Some 100, None); (1, 7, None, Some [| 0 |]); (7, 7, Some 1, None) ] in
  for _ = 1 to 60 do
    let n = Util.Rng.int rng 41 in
    let domains = 1 + Util.Rng.int rng 8 in
    let chunk = if Util.Rng.int rng 2 = 0 then None else Some (1 + Util.Rng.int rng (n + 5)) in
    let costs =
      if chunk <> None || Util.Rng.int rng 2 = 0 then None
      else Some (Array.init n (fun _ -> Util.Rng.int rng 30))
    in
    cases := (n, domains, chunk, costs) :: !cases
  done;
  List.iter
    (fun (n, domains, chunk, costs) ->
      let name = Printf.sprintf "n=%d domains=%d chunk=%s costs=%b" n domains
          (match chunk with None -> "-" | Some c -> string_of_int c)
          (costs <> None)
      in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      let states, stats =
        Engine.Pool.run ~domains ?chunk ?costs ~n
          ~init:(fun w -> w)
          (fun _ i -> Atomic.incr hits.(i))
      in
      Array.iteri
        (fun i h ->
          Alcotest.(check int) (name ^ Printf.sprintf ": index %d once" i) 1 (Atomic.get h))
        hits;
      let expected_workers = if n = 0 then 0 else min domains n in
      Alcotest.(check int) (name ^ ": workers") expected_workers stats.Engine.Pool.workers;
      Alcotest.(check int) (name ^ ": states are per-worker")
        expected_workers (Array.length states);
      Array.iteri (fun w st -> Alcotest.(check int) (name ^ ": state identity") w st) states;
      Alcotest.(check int) (name ^ ": jobs sum to n") n
        (Array.fold_left ( + ) 0 stats.Engine.Pool.jobs);
      Array.iter
        (fun u ->
          Alcotest.(check bool) (name ^ ": utilization in [0, 1]") true
            (u >= 0.0 && u <= 1.000001))
        (Engine.Pool.utilization stats))
    !cases

(* an exception in one worker must still join every helper: one
   exception surfaces, nothing runs twice, and the pool is immediately
   reusable (a leaked domain would wedge or crash the next run) *)
let pool_exception_joins_all () =
  let n = 64 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  (match
     Engine.Pool.parallel_for ~domains:5 ~chunk:2 ~n (fun i ->
         Atomic.incr hits.(i);
         if i mod 11 = 3 then failwith "several workers raise")
   with
  | () -> Alcotest.fail "expected an exception"
  | exception Failure m -> Alcotest.(check string) "message" "several workers raise" m);
  Array.iteri
    (fun i h ->
      Alcotest.(check bool) (Printf.sprintf "index %d at most once" i) true
        (Atomic.get h <= 1))
    hits;
  let again = Array.make n 0 in
  Engine.Pool.parallel_for ~domains:5 ~n (fun i -> again.(i) <- again.(i) + 1);
  Array.iteri
    (fun i h -> Alcotest.(check int) (Printf.sprintf "reusable: index %d" i) 1 h)
    again

let pool_cost_sharding_balances () =
  (* one net 100x the others: LPT must not let chunk order serialize the
     heavy job behind everything else on one worker *)
  let n = 40 in
  let costs = Array.init n (fun i -> if i = 0 then 400 else 4) in
  let sum_by_worker = Array.init 4 (fun _ -> Atomic.make 0) in
  let _, stats =
    Engine.Pool.run ~domains:4 ~costs ~n
      ~init:(fun w -> w)
      (fun w i -> ignore (Atomic.fetch_and_add sum_by_worker.(w) costs.(i)))
  in
  Alcotest.(check int) "all cost executed" (400 + (4 * 39))
    (Array.fold_left (fun a c -> a + Atomic.get c) 0 sum_by_worker);
  Alcotest.(check bool) "several chunks planned" true (stats.Engine.Pool.chunks >= 4)

(* ------------------------------------------------------------------ *)
(* Persistent pool handle                                              *)

let handle_exec_covers_every_worker () =
  let p = Engine.Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Engine.Pool.shutdown p)
    (fun () ->
      Alcotest.(check int) "size" 4 (Engine.Pool.size p);
      let hits = Array.init 4 (fun _ -> Atomic.make 0) in
      (* regions are reusable: the same handle serves many barriers *)
      for _ = 1 to 6 do
        Engine.Pool.exec p (fun w -> Atomic.incr hits.(w))
      done;
      Array.iteri
        (fun w h ->
          Alcotest.(check int) (Printf.sprintf "worker %d ran each region" w) 6
            (Atomic.get h))
        hits)

let handle_caps_run_workers () =
  let p = Engine.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Engine.Pool.shutdown p)
    (fun () ->
      let n = 37 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      let _, stats =
        Engine.Pool.run ~domains:8 ~pool:p ~n
          ~init:(fun w -> w)
          (fun _ i -> Atomic.incr hits.(i))
      in
      Alcotest.(check int) "workers capped at pool size" 2 stats.Engine.Pool.workers;
      Array.iteri
        (fun i h ->
          Alcotest.(check int) (Printf.sprintf "index %d once" i) 1 (Atomic.get h))
        hits;
      (* exceptions surface exactly as without a pool, and the handle
         survives them *)
      (match
         Engine.Pool.parallel_for ~domains:2 ~pool:p ~n:20 (fun i ->
             if i = 7 then failwith "pooled boom")
       with
      | () -> Alcotest.fail "expected the worker's exception to surface"
      | exception Failure m -> Alcotest.(check string) "message" "pooled boom" m);
      let again = Array.make n 0 in
      Engine.Pool.parallel_for ~domains:2 ~pool:p ~n (fun i -> again.(i) <- again.(i) + 1);
      Array.iteri
        (fun i h -> Alcotest.(check int) (Printf.sprintf "reusable: index %d" i) 1 h)
        again)

let handle_shutdown_is_final_and_idempotent () =
  let p = Engine.Pool.create ~domains:3 () in
  Engine.Pool.exec p ignore;
  Engine.Pool.shutdown p;
  Engine.Pool.shutdown p;
  Alcotest.check_raises "exec after shutdown"
    (Invalid_argument "Pool.exec: pool is shut down") (fun () ->
      Engine.Pool.exec p ignore)

(* ------------------------------------------------------------------ *)
(* Engine.map: order, determinism, isolation, retries                  *)

let outcome_int =
  Alcotest.testable
    (fun ppf -> function
      | Engine.Done v -> Format.fprintf ppf "Done %d" v
      | Engine.Failed { attempts; error } ->
          Format.fprintf ppf "Failed(%d,%s)" attempts error)
    ( = )

let map_is_order_preserving () =
  let xs = List.init 257 (fun i -> i) in
  let f x = x * x in
  let seq, _ = Engine.map ~domains:1 f xs in
  let par, _ = Engine.map ~domains:4 ~chunk:2 f xs in
  Alcotest.(check (array outcome_int))
    "1 domain = 4 domains, in input order" seq par;
  Array.iteri
    (fun i o -> Alcotest.check outcome_int "value" (Engine.Done (i * i)) o)
    par

let map_isolates_failures () =
  let xs = List.init 40 (fun i -> i) in
  let f x = if x mod 13 = 7 then failwith (Printf.sprintf "poisoned %d" x) else x in
  let out, _ = Engine.map ~domains:4 f xs in
  Array.iteri
    (fun i o ->
      match o with
      | Engine.Done v -> Alcotest.(check int) "survivor" i v
      | Engine.Failed { attempts; error } ->
          Alcotest.(check bool) "only the poisoned indices fail" true (i mod 13 = 7);
          Alcotest.(check int) "no retries by default" 1 attempts;
          Alcotest.(check string) "error text" (Printf.sprintf "Failure(\"poisoned %d\")" i) error)
    out

let map_retries_flaky_jobs () =
  (* every element fails its first two attempts, then succeeds *)
  let tries = Array.init 20 (fun _ -> Atomic.make 0) in
  let f i =
    if Atomic.fetch_and_add tries.(i) 1 < 2 then failwith "flaky" else i
  in
  let out, _ = Engine.map ~domains:4 ~retries:2 f (List.init 20 (fun i -> i)) in
  Array.iteri (fun i o -> Alcotest.check outcome_int "recovered" (Engine.Done i) o) out;
  (* with retries exhausted one attempt short, every job fails after 2 runs *)
  Array.iter (fun a -> Atomic.set a 0) tries;
  let out, _ = Engine.map ~domains:1 ~retries:1 f (List.init 20 (fun i -> i)) in
  Array.iter
    (fun o ->
      match o with
      | Engine.Failed { attempts; _ } -> Alcotest.(check int) "attempts" 2 attempts
      | Engine.Done _ -> Alcotest.fail "should have exhausted retries")
    out

let map_never_retries_infeasible () =
  let calls = Atomic.make 0 in
  let f () =
    ignore (Atomic.fetch_and_add calls 1);
    raise (Engine.Infeasible "verdict is deterministic")
  in
  let out, _ = Engine.map ~domains:1 ~retries:5 f [ () ] in
  (match out.(0) with
  | Engine.Failed { attempts; error } ->
      Alcotest.(check int) "one attempt" 1 attempts;
      Alcotest.(check string) "message" "verdict is deterministic" error
  | Engine.Done _ -> Alcotest.fail "infeasible job cannot succeed");
  Alcotest.(check int) "called exactly once" 1 (Atomic.get calls)

(* ------------------------------------------------------------------ *)
(* Batch BuffOpt over workload nets                                    *)

let workload_jobs n seed =
  Workload.trees process
    (Workload.generate { Workload.default_config with Workload.nets = n; seed })

let batch_parallel_equals_sequential () =
  let jobs = workload_jobs 30 1998 in
  let r1 = Engine.optimize ~domains:1 ~algorithm:Bufins.Buffopt.Buffopt ~lib jobs in
  let r4 = Engine.optimize ~domains:4 ~chunk:1 ~algorithm:Bufins.Buffopt.Buffopt ~lib jobs in
  Alcotest.(check string)
    "byte-identical aggregate signature at 1 vs 4 domains"
    (Engine.signature r1) (Engine.signature r4);
  (* the same batch through a resident pool handle: byte-identical too,
     twice in a row through the same warm domains *)
  let p = Engine.Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Engine.Pool.shutdown p)
    (fun () ->
      let rp = Engine.optimize ~pool:p ~chunk:1 ~algorithm:Bufins.Buffopt.Buffopt ~lib jobs in
      Alcotest.(check string)
        "byte-identical through the resident pool"
        (Engine.signature r1) (Engine.signature rp);
      let rp2 = Engine.optimize ~pool:p ~algorithm:Bufins.Buffopt.Buffopt ~lib jobs in
      Alcotest.(check string)
        "and again through the same warm handle"
        (Engine.signature r1) (Engine.signature rp2));
  Alcotest.(check int) "ok" r1.Engine.ok r4.Engine.ok;
  Alcotest.(check int) "buffers" r1.Engine.buffers r4.Engine.buffers;
  Array.iteri
    (fun i (nr1 : Engine.net_result) ->
      let nr4 = r4.Engine.results.(i) in
      Alcotest.(check string) "net order" nr1.Engine.net nr4.Engine.net;
      match (nr1.Engine.outcome, nr4.Engine.outcome) with
      | Engine.Done a, Engine.Done b ->
          Alcotest.(check int) "count" a.Bufins.Buffopt.count b.Bufins.Buffopt.count;
          feq "predicted slack" a.Bufins.Buffopt.predicted_slack b.Bufins.Buffopt.predicted_slack;
          Alcotest.(check bool) "identical placements" true
            (a.Bufins.Buffopt.placements = b.Bufins.Buffopt.placements)
      | _ -> Alcotest.fail "outcome kind differs between domain counts")
    r1.Engine.results

(* a tree that already carries a buffer makes Buffopt.optimize raise, so
   poisoning every job yields an all-failed batch *)
let poison (net, tree) =
  let sink = List.hd (Rctree.Tree.sinks tree) in
  ( net,
    Rctree.Surgery.apply tree
      [ { Rctree.Surgery.node = sink; dist = 0.0; buffer = small_buffer } ] )

let summary_all_infeasible_prints_na () =
  let jobs = List.map poison (workload_jobs 5 11) in
  let r = Engine.optimize ~domains:2 ~algorithm:Bufins.Buffopt.Buffopt ~lib jobs in
  Alcotest.(check int) "nothing succeeded" 0 r.Engine.ok;
  let s = Engine.summary r in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "worst slack prints n/a" true
    (contains "worst predicted slack n/a" s);
  Alcotest.(check bool) "no nan anywhere" false (contains "nan" s)

(* Dp.stats allocation words are domain-local flushed-window deltas:
   the batch-summed minor words must be bit-identical at every domain
   count — Gc.quick_stat deltas used to charge each run with every
   concurrent domain's allocation *)
let alloc_words_not_cross_contaminated () =
  let jobs = workload_jobs 24 2024 in
  let minor d =
    (Engine.optimize ~domains:d ~algorithm:Bufins.Buffopt.Buffopt ~lib jobs)
      .Engine.dp.Bufins.Dp.minor_words
  in
  let m1 = minor 1 in
  Alcotest.(check bool) "a real run allocates" true (m1 > 1e5);
  feq ~eps:0.0 "2-domain batch minor sum = 1-domain sum" m1 (minor 2);
  (* the paranoid oversubscribed case, per the issue gated on actually
     having cores to disagree on *)
  if Engine.Pool.default_domains () > 1 then
    feq ~eps:0.0 "4-domain batch minor sum = 1-domain sum" m1 (minor 4)

(* at a single domain, the domain-local counter and the old
   Gc.quick_stat delta measure the same thing. quick_stat's in-progress
   young-region term is only exact right after a minor collection on
   this runtime, so the external window flushes at both edges; the
   windows then differ only by the optimizer's own bookkeeping *)
let alloc_counter_matches_quick_stat_single_domain () =
  let by_size (_, a) (_, b) =
    compare (Rctree.Tree.node_count b) (Rctree.Tree.node_count a)
  in
  let _, tree = List.hd (List.sort by_size (workload_jobs 10 77)) in
  Gc.minor ();
  let q0 = Gc.quick_stat () in
  let outcome =
    Bufins.Dp.run ~noise:false ~mode:(Bufins.Dp.Per_count 8) ~lib tree
  in
  Gc.minor ();
  let q1 = Gc.quick_stat () in
  let internal = outcome.Bufins.Dp.stats.Bufins.Dp.minor_words in
  let external_ = q1.Gc.minor_words -. q0.Gc.minor_words in
  Alcotest.(check bool) "a real run allocates" true (internal > 1e4);
  Alcotest.(check bool)
    (Printf.sprintf "quick_stat delta %.0f within 1%% of counter %.0f" external_
       internal)
    true
    (Float.abs (external_ -. internal) <= 0.01 *. internal)

let batch_isolates_poisoned_job () =
  let jobs = workload_jobs 8 7 in
  let jobs = List.mapi (fun i job -> if i = 3 then poison job else job) jobs in
  let r = Engine.optimize ~domains:3 ~algorithm:Bufins.Buffopt.Buffopt ~lib jobs in
  Alcotest.(check int) "one failure" 1 r.Engine.failed;
  Alcotest.(check int) "everything else succeeded" 7 r.Engine.ok;
  Alcotest.(check (list string))
    "the failing net is named"
    [ (fst (List.nth jobs 3)).Steiner.Net.nname ]
    (Engine.failed_nets r);
  match r.Engine.results.(3).Engine.outcome with
  | Engine.Failed { error; _ } ->
      Alcotest.(check bool) "Invalid_argument surfaced" true
        (String.length error > 0)
  | Engine.Done _ -> Alcotest.fail "poisoned job cannot succeed"

let suites =
  [
    ( "engine",
      [
        case "pool: every index exactly once" pool_covers_every_index;
        case "pool: edge cases" pool_edges;
        case "pool: worker exception surfaces after join" pool_propagates_exception;
        case "pool: randomized coverage property" pool_coverage_property;
        case "pool: exception still joins all helpers" pool_exception_joins_all;
        case "pool: cost sharding balances queues" pool_cost_sharding_balances;
        case "pool handle: exec covers every worker, regions reusable"
          handle_exec_covers_every_worker;
        case "pool handle: run caps workers at pool size" handle_caps_run_workers;
        case "pool handle: shutdown idempotent, exec then raises"
          handle_shutdown_is_final_and_idempotent;
        case "map: order-preserving, 1 = 4 domains" map_is_order_preserving;
        case "map: poisoned elements fail alone" map_isolates_failures;
        case "map: retry knob" map_retries_flaky_jobs;
        case "map: Infeasible is never retried" map_never_retries_infeasible;
        case "batch: 1 vs 4 domains byte-identical" batch_parallel_equals_sequential;
        case "batch: poisoned job isolated, others succeed" batch_isolates_poisoned_job;
        case "summary: all-infeasible batch prints n/a, not nan"
          summary_all_infeasible_prints_na;
        case "dp stats: minor words identical across domain counts"
          alloc_words_not_cross_contaminated;
        case "dp stats: counter matches quick_stat at one domain"
          alloc_counter_matches_quick_stat_single_domain;
      ] );
  ]
