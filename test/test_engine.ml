(* The batch engine (lib/engine): pool coverage, scheduling-independent
   determinism, fault isolation, and the retry knob. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let pool_covers_every_index () =
  let n = 101 in
  let hits = Array.make n 0 in
  Engine.Pool.parallel_for ~domains:4 ~chunk:3 ~n (fun i -> hits.(i) <- hits.(i) + 1);
  Array.iteri
    (fun i h -> Alcotest.(check int) (Printf.sprintf "index %d hit once" i) 1 h)
    hits

let pool_edges () =
  (* n = 0: no calls, no spawn *)
  Engine.Pool.parallel_for ~domains:4 ~n:0 (fun _ -> Alcotest.fail "body on n=0");
  (* more domains than work; chunk larger than n *)
  let hits = Array.make 3 0 in
  Engine.Pool.parallel_for ~domains:16 ~chunk:100 ~n:3 (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check (list int)) "each once" [ 1; 1; 1 ] (Array.to_list hits);
  Alcotest.check_raises "domains < 1" (Invalid_argument "Pool.parallel_for: domains < 1")
    (fun () -> Engine.Pool.parallel_for ~domains:0 ~n:1 ignore);
  Alcotest.check_raises "chunk < 1" (Invalid_argument "Pool.parallel_for: chunk < 1")
    (fun () -> Engine.Pool.parallel_for ~domains:1 ~chunk:0 ~n:1 ignore)

let pool_propagates_exception () =
  match Engine.Pool.parallel_for ~domains:3 ~n:50 (fun i -> if i = 17 then failwith "boom")
  with
  | () -> Alcotest.fail "expected the worker's exception to surface"
  | exception Failure m -> Alcotest.(check string) "message" "boom" m

(* ------------------------------------------------------------------ *)
(* Engine.map: order, determinism, isolation, retries                  *)

let outcome_int =
  Alcotest.testable
    (fun ppf -> function
      | Engine.Done v -> Format.fprintf ppf "Done %d" v
      | Engine.Failed { attempts; error } ->
          Format.fprintf ppf "Failed(%d,%s)" attempts error)
    ( = )

let map_is_order_preserving () =
  let xs = List.init 257 (fun i -> i) in
  let f x = x * x in
  let seq, _ = Engine.map ~domains:1 f xs in
  let par, _ = Engine.map ~domains:4 ~chunk:2 f xs in
  Alcotest.(check (array outcome_int))
    "1 domain = 4 domains, in input order" seq par;
  Array.iteri
    (fun i o -> Alcotest.check outcome_int "value" (Engine.Done (i * i)) o)
    par

let map_isolates_failures () =
  let xs = List.init 40 (fun i -> i) in
  let f x = if x mod 13 = 7 then failwith (Printf.sprintf "poisoned %d" x) else x in
  let out, _ = Engine.map ~domains:4 f xs in
  Array.iteri
    (fun i o ->
      match o with
      | Engine.Done v -> Alcotest.(check int) "survivor" i v
      | Engine.Failed { attempts; error } ->
          Alcotest.(check bool) "only the poisoned indices fail" true (i mod 13 = 7);
          Alcotest.(check int) "no retries by default" 1 attempts;
          Alcotest.(check string) "error text" (Printf.sprintf "Failure(\"poisoned %d\")" i) error)
    out

let map_retries_flaky_jobs () =
  (* every element fails its first two attempts, then succeeds *)
  let tries = Array.init 20 (fun _ -> Atomic.make 0) in
  let f i =
    if Atomic.fetch_and_add tries.(i) 1 < 2 then failwith "flaky" else i
  in
  let out, _ = Engine.map ~domains:4 ~retries:2 f (List.init 20 (fun i -> i)) in
  Array.iteri (fun i o -> Alcotest.check outcome_int "recovered" (Engine.Done i) o) out;
  (* with retries exhausted one attempt short, every job fails after 2 runs *)
  Array.iter (fun a -> Atomic.set a 0) tries;
  let out, _ = Engine.map ~domains:1 ~retries:1 f (List.init 20 (fun i -> i)) in
  Array.iter
    (fun o ->
      match o with
      | Engine.Failed { attempts; _ } -> Alcotest.(check int) "attempts" 2 attempts
      | Engine.Done _ -> Alcotest.fail "should have exhausted retries")
    out

let map_never_retries_infeasible () =
  let calls = Atomic.make 0 in
  let f () =
    ignore (Atomic.fetch_and_add calls 1);
    raise (Engine.Infeasible "verdict is deterministic")
  in
  let out, _ = Engine.map ~domains:1 ~retries:5 f [ () ] in
  (match out.(0) with
  | Engine.Failed { attempts; error } ->
      Alcotest.(check int) "one attempt" 1 attempts;
      Alcotest.(check string) "message" "verdict is deterministic" error
  | Engine.Done _ -> Alcotest.fail "infeasible job cannot succeed");
  Alcotest.(check int) "called exactly once" 1 (Atomic.get calls)

(* ------------------------------------------------------------------ *)
(* Batch BuffOpt over workload nets                                    *)

let workload_jobs n seed =
  Workload.trees process
    (Workload.generate { Workload.default_config with Workload.nets = n; seed })

let batch_parallel_equals_sequential () =
  let jobs = workload_jobs 30 1998 in
  let r1 = Engine.optimize ~domains:1 ~algorithm:Bufins.Buffopt.Buffopt ~lib jobs in
  let r4 = Engine.optimize ~domains:4 ~chunk:1 ~algorithm:Bufins.Buffopt.Buffopt ~lib jobs in
  Alcotest.(check string)
    "byte-identical aggregate signature at 1 vs 4 domains"
    (Engine.signature r1) (Engine.signature r4);
  Alcotest.(check int) "ok" r1.Engine.ok r4.Engine.ok;
  Alcotest.(check int) "buffers" r1.Engine.buffers r4.Engine.buffers;
  Array.iteri
    (fun i (nr1 : Engine.net_result) ->
      let nr4 = r4.Engine.results.(i) in
      Alcotest.(check string) "net order" nr1.Engine.net nr4.Engine.net;
      match (nr1.Engine.outcome, nr4.Engine.outcome) with
      | Engine.Done a, Engine.Done b ->
          Alcotest.(check int) "count" a.Bufins.Buffopt.count b.Bufins.Buffopt.count;
          feq "predicted slack" a.Bufins.Buffopt.predicted_slack b.Bufins.Buffopt.predicted_slack;
          Alcotest.(check bool) "identical placements" true
            (a.Bufins.Buffopt.placements = b.Bufins.Buffopt.placements)
      | _ -> Alcotest.fail "outcome kind differs between domain counts")
    r1.Engine.results

let batch_isolates_poisoned_job () =
  let jobs = workload_jobs 8 7 in
  (* poison job 3: a tree that already contains a buffer makes
     Buffopt.optimize raise Invalid_argument *)
  let jobs =
    List.mapi
      (fun i ((net, tree) as job) ->
        if i <> 3 then job
        else
          let sink = List.hd (Rctree.Tree.sinks tree) in
          ( net,
            Rctree.Surgery.apply tree
              [ { Rctree.Surgery.node = sink; dist = 0.0; buffer = small_buffer } ] ))
      jobs
  in
  let r = Engine.optimize ~domains:3 ~algorithm:Bufins.Buffopt.Buffopt ~lib jobs in
  Alcotest.(check int) "one failure" 1 r.Engine.failed;
  Alcotest.(check int) "everything else succeeded" 7 r.Engine.ok;
  Alcotest.(check (list string))
    "the failing net is named"
    [ (fst (List.nth jobs 3)).Steiner.Net.nname ]
    (Engine.failed_nets r);
  match r.Engine.results.(3).Engine.outcome with
  | Engine.Failed { error; _ } ->
      Alcotest.(check bool) "Invalid_argument surfaced" true
        (String.length error > 0)
  | Engine.Done _ -> Alcotest.fail "poisoned job cannot succeed"

let suites =
  [
    ( "engine",
      [
        case "pool: every index exactly once" pool_covers_every_index;
        case "pool: edge cases" pool_edges;
        case "pool: worker exception surfaces after join" pool_propagates_exception;
        case "map: order-preserving, 1 = 4 domains" map_is_order_preserving;
        case "map: poisoned elements fail alone" map_isolates_failures;
        case "map: retry knob" map_retries_flaky_jobs;
        case "map: Infeasible is never retried" map_never_retries_infeasible;
        case "batch: 1 vs 4 domains byte-identical" batch_parallel_equals_sequential;
        case "batch: poisoned job isolated, others succeed" batch_isolates_poisoned_job;
      ] );
  ]
