open Helpers
module T = Rctree.Tree

let buf = Tech.Lib.min_resistance lib

let metric_tests =
  [
    case "fig3 currents" (fun () ->
        let t = Fixtures.fig3 () in
        let curs = Noise.cur_at t in
        feq "I(v1)" 8.0 curs.(1);
        feq "I(s1)" 0.0 curs.(2);
        feq "driver current" 12.0 (Noise.drive_current t curs (T.root t)));
    case "fig3 wire noise" (fun () ->
        let t = Fixtures.fig3 () in
        let curs = Noise.cur_at t in
        feq "Noise(w1)" 20.0 (Noise.wire_noise (T.wire_to t 1) ~downstream:curs.(1));
        feq "Noise(w2)" 3.0 (Noise.wire_noise (T.wire_to t 2) ~downstream:curs.(2));
        feq "Noise(w3)" 6.0 (Noise.wire_noise (T.wire_to t 3) ~downstream:curs.(3)));
    case "fig3 sink noise (worked example)" (fun () ->
        let t = Fixtures.fig3 () in
        match Noise.leaf_noise t with
        | [ (2, n1, m1); (3, n2, m2) ] ->
            feq "noise s1" 143.0 n1;
            feq "margin s1" 200.0 m1;
            feq "noise s2" 146.0 n2;
            feq "margin s2" 150.0 m2
        | _ -> Alcotest.fail "unexpected leaf set");
    case "fig3 noise slack (eq. 12)" (fun () ->
        let t = Fixtures.fig3 () in
        let ns = Noise.noise_slack t in
        feq "ns(v1)" 144.0 ns.(1);
        feq "ns(so)" 124.0 ns.(0);
        feq "ns(sink) = margin" 200.0 ns.(2));
    case "fig3 has no violation" (fun () ->
        Alcotest.(check int) "none" 0 (List.length (Noise.violations (Fixtures.fig3 ()))));
    case "violation appears when margin shrinks" (fun () ->
        let b = Rctree.Builder.create () in
        let so = Rctree.Builder.add_source b ~r_drv:10.0 ~d_drv:0.0 in
        let w = T.make_wire ~length:1.0 ~res:2.0 ~cap:1.0 ~cur:4.0 in
        ignore (Rctree.Builder.add_sink b ~parent:so ~wire:w ~name:"s" ~c_sink:1.0 ~rat:1.0 ~nm:43.9);
        let t = Rctree.Builder.finish b in
        (* noise = 10*4 + 2*(0+2) = 44 > 43.9 *)
        Alcotest.(check int) "one violation" 1 (List.length (Noise.violations t)));
    case "buffers reset noise accumulation" (fun () ->
        let t = Fixtures.two_pin process ~len:8e-3 in
        let before = List.hd (Noise.leaf_noise t) in
        let t' = Rctree.Surgery.apply t [ { Rctree.Surgery.node = 1; dist = 4e-3; buffer = buf } ] in
        let leaves = Noise.leaf_noise t' in
        Alcotest.(check int) "two leaves" 2 (List.length leaves);
        List.iter
          (fun (_, noise, _) ->
            let _, n0, _ = before in
            Alcotest.(check bool) "smaller than unbuffered" true (noise < n0))
          leaves);
    case "margin accessor" (fun () ->
        let t = Fixtures.fig3 () in
        feq "sink margin" 200.0 (Noise.margin t 2);
        Alcotest.(check bool) "internal rejected" true
          (match Noise.margin t 1 with exception Invalid_argument _ -> true | _ -> false));
  ]

let params_gen =
  QCheck2.Gen.(
    let* r_b = float_range 5.0 1000.0 in
    let* i_down = float_range 0.0 5e-3 in
    let* slack_over = float_range 0.01 2.0 in
    let* r_per_m = float_range 1e3 2e5 in
    let* i_per_m = float_range 1e-2 5.0 in
    (* guarantee feasibility: ns exceeds the r_b * i_down floor *)
    return (r_b, i_down, (r_b *. i_down) +. slack_over, r_per_m, i_per_m))

let noise_at ~r_b ~i_down ~r_per_m ~i_per_m l =
  (r_b *. (i_down +. (i_per_m *. l))) +. (r_per_m *. l *. (i_down +. (i_per_m *. l /. 2.0)))

let maxlen_tests =
  [
    qcase ~count:200 "theorem 1 boundary is exact" params_gen
      (fun (r_b, i_down, ns, r_per_m, i_per_m) ->
        match Noise.max_safe_length ~r_b ~i_down ~ns ~r_per_m ~i_per_m with
        | Some l when Float.is_finite l ->
            Util.Fx.approx ~rel:1e-6 (noise_at ~r_b ~i_down ~r_per_m ~i_per_m l) ns
        | Some _ -> i_per_m = 0.0 (* only current-free wires are unbounded *)
        | None -> false);
    qcase ~count:200 "below the bound is safe, above violates" params_gen
      (fun (r_b, i_down, ns, r_per_m, i_per_m) ->
        match Noise.max_safe_length ~r_b ~i_down ~ns ~r_per_m ~i_per_m with
        | Some l when Float.is_finite l ->
            noise_at ~r_b ~i_down ~r_per_m ~i_per_m (l *. 0.99) <= ns
            && noise_at ~r_b ~i_down ~r_per_m ~i_per_m (l *. 1.01) >= ns
        | Some _ | None -> true);
    case "infeasible state returns None" (fun () ->
        Alcotest.(check bool) "none" true
          (Noise.max_safe_length ~r_b:100.0 ~i_down:1.0 ~ns:50.0 ~r_per_m:1e4 ~i_per_m:1.0 = None));
    case "no coupling and no downstream current is unbounded" (fun () ->
        Alcotest.(check bool) "infinite" true
          (Noise.max_safe_length ~r_b:100.0 ~i_down:0.0 ~ns:0.5 ~r_per_m:1e4 ~i_per_m:0.0
          = Some infinity));
    case "matches the simple approximation at r_b = 0" (fun () ->
        let r_per_m = process.Tech.Process.r_per_m and i_per_m = Tech.Process.i_per_m process in
        match Noise.max_safe_length ~r_b:0.0 ~i_down:0.0 ~ns:0.8 ~r_per_m ~i_per_m with
        | Some l -> feq_rel "sqrt(2 ns / r i)" ~eps:1e-9 (sqrt (2.0 *. 0.8 /. (r_per_m *. i_per_m))) l
        | None -> Alcotest.fail "unexpected None");
    qcase ~count:100 "monotone in driver resistance" params_gen
      (fun (r_b, i_down, ns, r_per_m, i_per_m) ->
        match
          ( Noise.max_safe_length ~r_b ~i_down ~ns ~r_per_m ~i_per_m,
            Noise.max_safe_length ~r_b:(r_b *. 2.0) ~i_down ~ns ~r_per_m ~i_per_m )
        with
        | Some l1, Some l2 -> l2 <= l1 +. 1e-12
        | Some _, None -> true
        | None, _ -> false);
    qcase ~count:100 "monotone in noise slack" params_gen
      (fun (r_b, i_down, ns, r_per_m, i_per_m) ->
        match
          ( Noise.max_safe_length ~r_b ~i_down ~ns ~r_per_m ~i_per_m,
            Noise.max_safe_length ~r_b ~i_down ~ns:(ns *. 2.0) ~r_per_m ~i_per_m )
        with
        | Some l1, Some l2 -> l2 >= l1 -. 1e-12
        | _, None | None, _ -> false);
    case "lambda_bound is critical" (fun () ->
        let r_b = 100.0 and i_down = 1e-4 and ns = 0.8 and length = 2e-3 in
        let r_per_m = process.Tech.Process.r_per_m
        and c_per_m = process.Tech.Process.c_per_m
        and slope = Tech.Process.slope process in
        let lambda = Noise.lambda_bound ~r_b ~i_down ~ns ~r_per_m ~c_per_m ~slope ~length in
        Alcotest.(check bool) "positive" true (lambda > 0.0);
        let i_per_m = lambda *. c_per_m *. slope in
        feq_rel "exactly at slack" ~eps:1e-9 ns (noise_at ~r_b ~i_down ~r_per_m ~i_per_m length));
  ]

let devgan_vs_elmore_tests =
  [
    qcase ~count:60 "noise slack at source bounds the driver term"
      QCheck2.Gen.(map (fun s -> Fixtures.random_net (Util.Rng.create s) process ~max_sinks:5 ~max_len:2e-3) small_int)
      (fun t ->
        let ns = Noise.noise_slack t in
        let curs = Noise.cur_at t in
        let r_drv = match T.kind t (T.root t) with T.Source d -> d.T.r_drv | _ -> 0.0 in
        let driver_noise = r_drv *. Noise.drive_current t curs (T.root t) in
        let has_violation = Noise.violations t <> [] in
        (* eq. 11 <-> eq. 12 equivalence on a single unbuffered stage *)
        has_violation = (driver_noise > ns.(T.root t) +. 1e-9));
    qcase ~count:60 "currents scale with capacitance"
      QCheck2.Gen.(float_range 1e-4 1e-2)
      (fun len ->
        let t = Fixtures.two_pin process ~len in
        let curs = Noise.cur_at t in
        Util.Fx.approx ~rel:1e-9
          (Noise.drive_current t curs (T.root t))
          (Tech.Process.wire_i process len));
  ]


(* appended: attribution and crosstalk delta-delay *)
let extras =
  [
    case "attribution sums to the leaf noise (fig. 3)" (fun () ->
        let t = Fixtures.fig3 () in
        List.iter
          (fun (leaf, total, _) ->
            let parts = Noise.attribute t ~leaf in
            let sum = List.fold_left (fun a (c : Noise.contribution) -> a +. c.Noise.amount) 0.0 parts in
            feq_rel "additive" ~eps:1e-9 total sum;
            (* the 10-ohm driver's 120 dominates both sinks *)
            match parts with
            | { Noise.element = `Driver 0; amount } :: _ -> feq "driver term" 120.0 amount
            | _ -> Alcotest.fail "driver should dominate")
          (Noise.leaf_noise t));
    qcase ~count:40 "attribution is additive on random nets"
      QCheck2.Gen.(map (fun s -> Fixtures.random_net (Util.Rng.create s) process ~max_sinks:5 ~max_len:3e-3) small_int)
      (fun t ->
        List.for_all
          (fun (leaf, total, _) ->
            let sum =
              List.fold_left
                (fun a (c : Noise.contribution) -> a +. c.Noise.amount)
                0.0 (Noise.attribute t ~leaf)
            in
            Util.Fx.approx ~rel:1e-9 ~abs:1e-15 total sum)
          (Noise.leaf_noise t));
    case "attribute rejects non-leaves" (fun () ->
        let t = Fixtures.fig3 () in
        Alcotest.(check bool) "raises" true
          (match Noise.attribute t ~leaf:1 with exception Invalid_argument _ -> true | _ -> false));
    case "miller factor inflates delay but not noise" (fun () ->
        let t = Fixtures.two_pin process ~len:4e-3 in
        let slope = Tech.Process.slope process in
        let m2 = Noise.miller t ~slope ~factor:2.0 in
        Alcotest.(check bool) "slower" true (Elmore.worst_delay m2 > Elmore.worst_delay t);
        (* with lambda = 0.7 the cap grows by exactly 70% *)
        feq_rel "cap model" ~eps:1e-9
          (Rctree.Tree.total_wire_cap t *. 1.7)
          (Rctree.Tree.total_wire_cap m2);
        let n0 = match Noise.leaf_noise t with [ (_, n, _) ] -> n | _ -> nan in
        let n2 = match Noise.leaf_noise m2 with [ (_, n, _) ] -> n | _ -> nan in
        feq_rel "noise untouched" ~eps:1e-9 n0 n2);
    case "miller factor one is the identity" (fun () ->
        let t = Fixtures.two_pin process ~len:4e-3 in
        let m1 = Noise.miller t ~slope:(Tech.Process.slope process) ~factor:1.0 in
        feq_rel "same delay" ~eps:1e-12 (Elmore.worst_delay t) (Elmore.worst_delay m1));
    case "sta with miller reports a worse wns" (fun () ->
        let d = Sta.Gen.random { Sta.Gen.default_config with Sta.Gen.gates = 30; seed = 9 } in
        let plain = Sta.Engine.analyze process d in
        let xtalk = Sta.Engine.analyze ~miller:2.0 process d in
        Alcotest.(check bool) "pessimistic" true (xtalk.Sta.Engine.wns < plain.Sta.Engine.wns);
        Alcotest.(check int) "noise view unchanged" plain.Sta.Engine.noisy_nets
          xtalk.Sta.Engine.noisy_nets);
  ]

let suites =
  [
    ("noise.metric", metric_tests);
    ("noise.maxlen", maxlen_tests);
    ("noise.properties", devgan_vs_elmore_tests);
    ("noise.extras", extras);
  ]
