(* The ingest front end (lib/ingest): BLIF and Liberty parsing, design
   elaboration, write->read round-trips, malformed-input behavior, and
   the batch golden signature on the committed example netlists. *)

open Helpers

(* the committed BLIF corpus, staged into _build by the dune deps *)
let blif_dir = "../examples/blif"

let blif file = Filename.concat blif_dir file

let located loc m = String.starts_with ~prefix:loc m

(* ------------------------------------------------------------------ *)
(* Located errors: every malformed input names file and line           *)

let expect_blif ~loc text =
  match Ingest.Blif.of_string ~path:"f.blif" text with
  | _ -> Alcotest.failf "expected Blif.Parse at %s" loc
  | exception Ingest.Blif.Parse m ->
      Alcotest.(check bool) (Printf.sprintf "located %s: %s" loc m) true (located loc m)

let expect_elab ~loc text =
  match Ingest.Elab.design_of_blif (Ingest.Blif.of_string ~path:"f.blif" text) with
  | _ -> Alcotest.failf "expected Elab.Error at %s" loc
  | exception Ingest.Elab.Error m ->
      Alcotest.(check bool) (Printf.sprintf "located %s: %s" loc m) true (located loc m)

let expect_liberty ~loc text =
  match Ingest.Liberty.of_string ~path:"f.lib" text with
  | _ -> Alcotest.failf "expected Liberty.Parse at %s" loc
  | exception Ingest.Liberty.Parse m ->
      Alcotest.(check bool) (Printf.sprintf "located %s: %s" loc m) true (located loc m)

let blif_syntax_errors () =
  expect_blif ~loc:"f.blif:1:" ".inputs a\n";
  expect_blif ~loc:"f.blif:3:" ".model a\n.inputs x\n.model b\n";
  expect_blif ~loc:"f.blif:2:" ".model m\n.inputs a a\n";
  expect_blif ~loc:"f.blif:2:" ".model m\n.outputs y y\n";
  expect_blif ~loc:"f.blif:2:" ".model m\n.foo bar\n";
  expect_blif ~loc:"f.blif:2:" ".model m\n.names a a y\n";
  expect_blif ~loc:"f.blif:3:" ".model m\n.names a y\n11 1\n";
  expect_blif ~loc:"f.blif:3:" ".model m\n.names a y\n2 1\n";
  expect_blif ~loc:"f.blif:3:" ".model m\n.names a y\n1 x\n";
  expect_blif ~loc:"f.blif:2:" ".model m\n1 1\n";
  expect_blif ~loc:"f.blif:2:" ".model m\n.latch a b xx c 0\n";
  expect_blif ~loc:"f.blif:2:" ".model m\n.latch a b re c 7\n";
  expect_blif ~loc:"f.blif:2:" ".model m\n.subckt inv_x1\n";
  expect_blif ~loc:"f.blif:2:" ".model m\n.subckt inv_x1 a y=y\n";
  expect_blif ~loc:"f.blif:2:" ".model m\n.subckt inv_x1 y=a y=b\n";
  expect_blif ~loc:"f.blif:3:" ".model m\n.end\n.inputs a\n";
  (* missing .model reported one line past the end of the file *)
  expect_blif ~loc:"f.blif:4:" "# a comment\n# and another\n"

let elab_structure_errors () =
  expect_elab ~loc:"f.blif:4:"
    ".model m\n.inputs a\n.outputs y\n.subckt nosuch a=a y=y\n.end\n";
  expect_elab ~loc:"f.blif:4:"
    ".model m\n.inputs a b c d\n.outputs y\n.names a b c d y\n1111 1\n.end\n";
  expect_elab ~loc:"f.blif:4:" ".model m\n.inputs a\n.outputs y\n.names y\n1\n.end\n";
  (* arity mismatch on a .subckt instantiation *)
  expect_elab ~loc:"f.blif:4:"
    ".model m\n.inputs a b\n.outputs y\n.subckt inv_x1 a=a b=b y=y\n.end\n";
  (* y driven by both gates; reported at the second driver *)
  expect_elab ~loc:"f.blif:6:"
    ".model m\n.inputs a b\n.outputs y\n.names a y\n1 1\n.names b y\n1 1\n.end\n";
  (* x never driven *)
  expect_elab ~loc:"f.blif:4:" ".model m\n.inputs a\n.outputs y\n.names x y\n1 1\n.end\n";
  (* one signal on both inputs of one gate *)
  expect_elab ~loc:"f.blif:4:"
    ".model m\n.inputs x\n.outputs y\n.subckt nand2_x1 a=x b=x y=y\n.end\n";
  (* a combinational cycle survives to Design.validate *)
  expect_elab ~loc:"f.blif:1:"
    ".model m\n.outputs y\n.names a b\n1 1\n.names b a\n1 1\n.names a y\n1 1\n.end\n"

let liberty_syntax_errors () =
  expect_liberty ~loc:"f.lib:1:" "foo (x) { }\n";
  expect_liberty ~loc:"f.lib:2:" "library (l) { cell (c) {\n";
  expect_liberty ~loc:"f.lib:2:" "library (l) {\n/* no end\n";
  expect_liberty ~loc:"f.lib:2:" "library (l) {\ntime_unit : \"1ps\n}\n";
  expect_liberty ~loc:"f.lib:3:" "library (l) {\ncell (c) { }\ncell (c) { }\n}\n";
  expect_liberty ~loc:"f.lib:2:" "library (l) { }\nlibrary (m) { }\n";
  expect_liberty ~loc:"f.lib:2:" "library (l) {\ntime_unit : \"1furlong\";\n}\n"

(* a pathological input must come back as a located error fast — one
   10 MB line, no terminator *)
let huge_single_line () =
  let junk = String.make 10_000_000 'x' in
  expect_blif ~loc:"f.blif:2:" (".model m\n" ^ junk);
  expect_liberty ~loc:"f.lib:1:" junk

(* the crash class the parser fuzz oracle caught: a syntactically valid
   1-input cell whose function says "buffer" but whose electricals are
   garbage (zero driving resistance) must be skipped with a warning, not
   die in Tech.Buffer.make's assertion *)
let liberty_unusable_buffer_is_skipped () =
  let text =
    "library (l) {\n\
    \  time_unit : \"1ps\";\n\
    \  capacitive_load_unit (1, ff);\n\
    \  cell (b) {\n\
    \    pin (a) { direction : input; capacitance : 1; }\n\
    \    pin (y) {\n\
    \      direction : output;\n\
    \      function : \"a\";\n\
    \      timing () {\n\
    \        related_pin : \"a\";\n\
    \        intrinsic_rise : 1;\n\
    \        intrinsic_fall : 1;\n\
    \        rise_resistance : 0;\n\
    \        fall_resistance : 0;\n\
    \      }\n\
    \    }\n\
    \  }\n\
     }\n"
  in
  let lib = Ingest.Liberty.of_string text in
  Alcotest.(check int) "no buffer modeled" 0 (List.length lib.Ingest.Liberty.buffers);
  Alcotest.(check int) "still a cell" 1 (List.length lib.Ingest.Liberty.cells);
  Alcotest.(check bool) "warned" true (lib.Ingest.Liberty.warnings > 0)

(* ------------------------------------------------------------------ *)
(* Error messages name the identifier and the candidate-set size       *)

let netfmt_errors_name_candidates () =
  let expect ~msg text =
    match Sta.Netfmt.of_string ~path:"f.net" text with
    | _ -> Alcotest.failf "expected Netfmt.Parse %s" msg
    | exception Sta.Netfmt.Parse m -> Alcotest.(check string) "message" msg m
  in
  expect ~msg:"f.net:1: unknown cell nosuch (8 in library)" "inst g1 nosuch 0 0\n";
  (* sinks resolve before the source, so give the source tests a
     legal sink *)
  expect ~msg:"f.net:3: unknown PI b as net source (1 declared)"
    "pi a 0 0 0 50 10\npo q 0 0 100 30 0.8\nnet n pi:b po:q\n";
  expect ~msg:"f.net:2: unknown PO q as net sink (0 declared)"
    "pi a 0 0 0 50 10\nnet n pi:a po:q\n";
  expect ~msg:"f.net:3: unknown instance g2 as net sink (1 declared)"
    "pi a 0 0 0 50 10\ninst g1 inv_x1 1 1\nnet n pi:a g2:0\n";
  expect ~msg:"f.net:2: unknown instance g9 as net source (0 declared)"
    "po q 0 0 100 30 0.8\nnet n g9 po:q\n"

let cellfile_errors_name_candidates () =
  let expect ~msg text =
    match Sta.Cellfile.of_string ~path:"f.cells" text with
    | _ -> Alcotest.failf "expected Cellfile.Parse %s" msg
    | exception Sta.Cellfile.Parse m -> Alcotest.(check string) "message" msg m
  in
  expect ~msg:"f.cells:2: duplicate cell a" "cell a 2 1 1 1 1\ncell a 2 1 1 1 1\n";
  expect ~msg:"f.cells:1: unknown directive gate" "gate a 2 1 1 1 1\n";
  expect ~msg:"f.cells:1: non-physical parameters for a" "cell a 2 -1 1 1 1\n"

(* ------------------------------------------------------------------ *)
(* Write -> read round-trips on random inputs                          *)

let netfmt_roundtrip_fixpoint () =
  List.iter
    (fun seed ->
      let d = Check.Gen.random_design (Util.Rng.create seed) in
      let text = Sta.Netfmt.to_string d in
      let d2 = Sta.Netfmt.of_string ~path:"r.net" text in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: rendering is a fixpoint" seed)
        text (Sta.Netfmt.to_string d2))
    (seeds 10)

let cellfile_roundtrip_exact () =
  List.iter
    (fun seed ->
      let cells = Check.Gen.random_cells (Util.Rng.create seed) in
      let back = Sta.Cellfile.of_string (Sta.Cellfile.to_string cells) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: bit-identical library" seed)
        true (back = cells))
    (seeds 20)

let liberty_roundtrip_exact () =
  List.iter
    (fun seed ->
      let rng = Util.Rng.create seed in
      let cells = Check.Gen.random_cells rng in
      let buffers = Check.Gen.random_buffers rng in
      let lib = Ingest.Liberty.of_string (Ingest.Liberty.to_string ~buffers cells) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: buffers bit-identical" seed)
        true
        (lib.Ingest.Liberty.buffers = buffers);
      let prefix =
        List.filteri (fun i _ -> i < List.length cells) lib.Ingest.Liberty.cells
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: cells bit-identical" seed)
        true (prefix = cells);
      Alcotest.(check int) (Printf.sprintf "seed %d: no warnings" seed) 0
        lib.Ingest.Liberty.warnings)
    (seeds 20)

let blif_roundtrip_deterministic () =
  List.iter
    (fun seed ->
      let d = Check.Gen.random_design (Util.Rng.create seed) in
      let b = Ingest.Elab.blif_of_design d in
      let text = Ingest.Blif.to_string b in
      let b2 = Ingest.Blif.of_string text in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: rendering is a fixpoint" seed)
        text (Ingest.Blif.to_string b2);
      let elab x = Sta.Netfmt.to_string (fst (Ingest.Elab.design_of_blif x)) in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: elaboration is reproducible" seed)
        (elab b) (elab b2))
    (seeds 10)

(* ------------------------------------------------------------------ *)
(* The committed example corpus                                        *)

let fulladder_loads () =
  let design, buffers, warnings =
    Ingest.Elab.load ~liberty:(blif "cells.lib") (blif "fulladder.blif")
  in
  Alcotest.(check int) "instances" 5 (Array.length design.Sta.Design.instances);
  Alcotest.(check int) "nets" 8 (Array.length design.Sta.Design.nets);
  Alcotest.(check int) "PIs" 3 (Array.length design.Sta.Design.pis);
  Alcotest.(check int) "POs" 2 (Array.length design.Sta.Design.pos);
  Alcotest.(check int) "no warnings" 0 warnings;
  Alcotest.(check int) "buffer library from liberty" 11 (List.length buffers)

let carryripple_latch_cuts_the_graph () =
  let design, _, warnings = Ingest.Elab.load (blif "carryripple.blif") in
  Alcotest.(check int) "no warnings" 0 warnings;
  (* 8 model inputs + clk dropped... clk feeds only the latch control,
     so it is dropped with a warning-free pseudo-PI for the latch output *)
  Alcotest.(check int) "instances" 14 (Array.length design.Sta.Design.instances);
  Alcotest.(check int) "nets" 24 (Array.length design.Sta.Design.nets);
  Alcotest.(check int) "PIs (incl. latch output)" 10 (Array.length design.Sta.Design.pis);
  Alcotest.(check int) "POs (incl. latch input)" 6 (Array.length design.Sta.Design.pos)

(* the committed cells.lib is the writer's own output: reading it back
   must reproduce the built-in libraries exactly *)
let committed_liberty_matches_builtin () =
  let lib = Ingest.Liberty.read (blif "cells.lib") in
  Alcotest.(check int) "no warnings" 0 lib.Ingest.Liberty.warnings;
  Alcotest.(check bool) "buffers = Tech.Lib.default_library" true
    (lib.Ingest.Liberty.buffers = Tech.Lib.default_library);
  let prefix =
    List.filteri
      (fun i _ -> i < List.length Sta.Cell.library)
      lib.Ingest.Liberty.cells
  in
  Alcotest.(check bool) "cells prefix = Sta.Cell.library" true
    (prefix = Sta.Cell.library)

(* same seed, same file -> byte-identical designs (placement synthesis
   is deterministic) *)
let elaboration_is_deterministic () =
  let once () =
    let design, _, _ = Ingest.Elab.load (blif "carryripple.blif") in
    Sta.Netfmt.to_string design
  in
  Alcotest.(check string) "byte-identical designs" (once ()) (once ())

(* ------------------------------------------------------------------ *)
(* Batch golden signature: the full DP stack over the BLIF corpus       *)

let batch_signature_domain_invariant () =
  List.iter
    (fun file ->
      let design, lib, _ =
        Ingest.Elab.load ~liberty:(blif "cells.lib") (blif file)
      in
      let jobs = Sta.Engine.batch_jobs process design in
      let r1 = Engine.optimize ~domains:1 ~algorithm:Bufins.Buffopt.Buffopt ~lib jobs in
      Alcotest.(check int)
        (file ^ ": every net optimized")
        (List.length jobs) r1.Engine.ok;
      Alcotest.(check bool) (file ^ ": buffers inserted") true (r1.Engine.buffers > 0);
      let s = r1.Engine.dp in
      Alcotest.(check int)
        (file ^ ": dp stats conservation")
        (Bufins.Dp.considered s)
        (Bufins.Dp.survivors s + s.Bufins.Dp.pruned + s.Bufins.Dp.pred_pruned);
      List.iter
        (fun domains ->
          let rd =
            Engine.optimize ~domains ~chunk:1 ~algorithm:Bufins.Buffopt.Buffopt ~lib jobs
          in
          Alcotest.(check string)
            (Printf.sprintf "%s: signature at %d domains" file domains)
            (Engine.signature r1) (Engine.signature rd))
        [ 2; 4 ])
    [ "fulladder.blif"; "carryripple.blif"; "block200.blif" ]

(* ------------------------------------------------------------------ *)
(* The parser fuzz oracle                                              *)

let parser_oracle_campaign_is_clean () =
  let r =
    Check.Fuzz.campaign ~oracle:Check.Instance.Parser_roundtrip ~jobs:2 ~seed:5
      ~count:150 ()
  in
  Alcotest.(check int) "tested" 150 r.Check.Fuzz.tested;
  Alcotest.(check int) "passed" 150 r.Check.Fuzz.passed;
  Alcotest.(check int) "skipped" 0 r.Check.Fuzz.skipped;
  Alcotest.(check int) "failed" 0 (List.length r.Check.Fuzz.failures)

(* DP mutations have no parser side: the oracle must skip, not vacuously
   pass, so mutation campaigns keep their catch-everything contract *)
let parser_oracle_skips_dp_mutations () =
  let inst =
    Check.Gen.instance_for Check.Instance.Parser_roundtrip (Util.Rng.create 1)
  in
  List.iter
    (fun mutation ->
      match Check.Diff.run ~mutation inst with
      | Check.Diff.Skip _ -> ()
      | Check.Diff.Pass -> Alcotest.fail "mutation run must skip, not pass"
      | Check.Diff.Fail m -> Alcotest.failf "mutation run must skip, not fail: %s" m)
    [ Bufins.Dp.Cq_noise_prune; Bufins.Dp.Stale_memo ]

let parser_corpus_replays () =
  let entries =
    Sys.readdir "corpus" |> Array.to_list
    |> List.filter (String.starts_with ~prefix:"parser-")
    |> List.sort compare
  in
  Alcotest.(check bool)
    (Printf.sprintf "at least 6 committed entries (got %d)" (List.length entries))
    true
    (List.length entries >= 6);
  List.iter
    (fun f ->
      match Check.Fuzz.replay (Filename.concat "corpus" f) with
      | [ (_, Check.Diff.Pass) ] -> ()
      | [ (_, Check.Diff.Skip m) ] | [ (_, Check.Diff.Fail m) ] ->
          Alcotest.failf "%s: %s" f m
      | _ -> Alcotest.failf "%s: expected exactly one entry" f)
    entries

let suites =
  [
    ( "ingest.parse",
      [
        case "blif: malformed inputs raise located Parse" blif_syntax_errors;
        case "blif: structural nonsense raises located Error" elab_structure_errors;
        case "liberty: malformed inputs raise located Parse" liberty_syntax_errors;
        case "10 MB single line: located error, no hang" huge_single_line;
        case "liberty: garbage buffer electricals skipped, not crashed"
          liberty_unusable_buffer_is_skipped;
        case "netfmt: errors name identifier and candidate count"
          netfmt_errors_name_candidates;
        case "cellfile: errors name identifier and candidate count"
          cellfile_errors_name_candidates;
      ] );
    ( "ingest.roundtrip",
      [
        case "netfmt: random designs render to a fixpoint" netfmt_roundtrip_fixpoint;
        case "cellfile: random libraries round-trip bit-identically"
          cellfile_roundtrip_exact;
        case "liberty: random libraries round-trip bit-identically"
          liberty_roundtrip_exact;
        case "blif: random designs round-trip deterministically"
          blif_roundtrip_deterministic;
      ] );
    ( "ingest.examples",
      [
        case "fulladder elaborates with the committed liberty" fulladder_loads;
        case "carryripple: latches cut the combinational graph"
          carryripple_latch_cuts_the_graph;
        case "committed cells.lib reproduces the built-in libraries"
          committed_liberty_matches_builtin;
        case "elaboration is deterministic" elaboration_is_deterministic;
        case "batch signature byte-identical across domain counts"
          batch_signature_domain_invariant;
      ] );
    ( "ingest.fuzz",
      [
        case "parser oracle: 150-instance campaign is clean"
          parser_oracle_campaign_is_clean;
        case "parser oracle: DP mutations skip" parser_oracle_skips_dp_mutations;
        case "committed parser corpus replays clean" parser_corpus_replays;
      ] );
  ]
