open Helpers

let tests =
  [
    case "gate delay is linear" (fun () ->
        let b = Tech.Buffer.make ~name:"x" ~inverting:false ~c_in:1e-15 ~r_b:100.0 ~d_b:10e-12 ~nm:0.8 () in
        feq_rel "delay" ~eps:1e-12 (10e-12 +. (100.0 *. 50e-15)) (Tech.Buffer.gate_delay b ~load:50e-15));
    case "default library shape" (fun () ->
        Alcotest.(check int) "eleven buffers" 11 (List.length lib);
        Alcotest.(check int) "five inverting" 5 (List.length (Tech.Lib.inverting lib));
        Alcotest.(check int) "six non-inverting" 6 (List.length (Tech.Lib.non_inverting lib)));
    case "library margins uniform" (fun () ->
        List.iter (fun (b : Tech.Buffer.t) -> feq "nm" 0.8 b.Tech.Buffer.nm) lib);
    case "min_resistance picks strongest" (fun () ->
        Alcotest.(check string) "bufx32" "bufx32" (Tech.Lib.min_resistance lib).Tech.Buffer.name);
    case "find by name" (fun () ->
        Alcotest.(check bool) "hit" true (Tech.Lib.find lib "invx4" <> None);
        Alcotest.(check bool) "miss" true (Tech.Lib.find lib "nope" = None));
    case "stronger buffers cost more input cap" (fun () ->
        let sorted =
          List.sort
            (fun (a : Tech.Buffer.t) (b : Tech.Buffer.t) -> compare b.Tech.Buffer.r_b a.Tech.Buffer.r_b)
            (Tech.Lib.non_inverting lib)
        in
        let rec increasing = function
          | (a : Tech.Buffer.t) :: (b :: _ as rest) ->
              a.Tech.Buffer.c_in < b.Tech.Buffer.c_in && increasing rest
          | [] | [ _ ] -> true
        in
        Alcotest.(check bool) "monotone" true (increasing sorted));
    case "process defaults match the paper" (fun () ->
        feq_rel "slope 7.2 V/ns" ~eps:1e-12 7.2e9 (Tech.Process.slope process);
        feq "vdd" 1.8 process.Tech.Process.vdd;
        feq "lambda" 0.7 process.Tech.Process.lambda;
        feq "nm" 0.8 process.Tech.Process.nm_default);
    case "per-length quantities scale" (fun () ->
        feq_rel "r" ~eps:1e-12 (2.0 *. Tech.Process.wire_r process 1e-3) (Tech.Process.wire_r process 2e-3);
        feq_rel "c" ~eps:1e-12 (2.0 *. Tech.Process.wire_c process 1e-3) (Tech.Process.wire_c process 2e-3);
        feq_rel "i" ~eps:1e-12 (2.0 *. Tech.Process.wire_i process 1e-3) (Tech.Process.wire_i process 2e-3));
    case "estimation current follows eq. 6" (fun () ->
        feq_rel "i_per_m" ~eps:1e-12
          (process.Tech.Process.lambda *. process.Tech.Process.c_per_m *. Tech.Process.slope process)
          (Tech.Process.i_per_m process));
    case "nm grid conversion" (fun () ->
        feq_rel "1 um" ~eps:1e-12 1e-6 (Tech.Process.of_nm 1000));
    case "copper corner halves-ish the resistance only" (fun () ->
        let cu = Tech.Process.copper and al = Tech.Process.default in
        feq_rel "resistance" ~eps:1e-12 (0.55 *. al.Tech.Process.r_per_m) cu.Tech.Process.r_per_m;
        feq_rel "capacitance unchanged" ~eps:1e-12 al.Tech.Process.c_per_m cu.Tech.Process.c_per_m;
        (* lower wire resistance stretches Theorem 1's safe span *)
        let span p =
          match
            Noise.max_safe_length ~r_b:36.0 ~i_down:0.0 ~ns:0.8 ~r_per_m:p.Tech.Process.r_per_m
              ~i_per_m:(Tech.Process.i_per_m p)
          with
          | Some l -> l
          | None -> nan
        in
        Alcotest.(check bool) "longer span" true (span cu > span al));
    case "buffer validation" (fun () ->
        Alcotest.(check bool) "bad r" true
          (match Tech.Buffer.make ~name:"x" ~inverting:false ~c_in:1e-15 ~r_b:0.0 ~d_b:0.0 ~nm:0.8 () with
          | exception Assert_failure _ -> true
          | _ -> false));
  ]

let suites = [ ("tech", tests) ]
